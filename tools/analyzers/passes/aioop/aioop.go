// Package aioop enforces asynchronous-I/O operation hygiene on the aio
// engine API:
//
//  1. Every aio.Submit*/SubmitDelete result must be Waited, stored, or
//     passed onward. A dropped *aio.Op is an in-flight operation nothing
//     can wait for — it slips past Drain's accounting exactly like the
//     leaked in-flight writes PR 1 fixed and the un-waited error-path
//     submissions PR 2 fixed.
//  2. Submissions must carry an explicit priority Class
//     (SubmitReadClass/SubmitWriteClass/SubmitDelete), never the
//     classless SubmitRead/SubmitWrite wrappers: the multi-level
//     scheduler is only as good as the classes call sites declare.
//  3. A discarded Wait error (`_ = op.Wait()`) must be annotated with
//     //mlpvet:allow aioop <reason>, so deliberately-ignored errors are
//     documented decisions instead of accidents.
package aioop

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
	"github.com/datastates/mlpoffload/tools/analyzers/directive"
)

// Analyzer enforces aio submission and completion hygiene.
var Analyzer = &analysis.Analyzer{
	Name: "aioop",
	Doc: `require aio submissions to be waited/stored, classed, and Wait errors handled

A dropped *aio.Op leaks an in-flight operation past Drain accounting;
classless submissions bypass the priority scheduler; a silently
discarded Wait error hides I/O failures.`,
	Run: run,
}

// aioSuffix identifies the aio package (real tree and fixtures).
const aioSuffix = "internal/aio"

var classed = map[string]bool{"SubmitReadClass": true, "SubmitWriteClass": true, "SubmitDelete": true, "SubmitReadVecClass": true}
var classless = map[string]bool{"SubmitRead": true, "SubmitWrite": true}
var waiters = map[string]bool{"Wait": true, "WaitCtx": true}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), aioSuffix) {
		return nil, nil
	}
	sheet := directive.Collect(pass.Fset, pass.Files, pass.Analyzer.Name)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := submitName(pass, call); ok {
					if !sheet.Allowed(call.Pos()) {
						pass.Reportf(call.Pos(), "result of %s dropped: the *aio.Op must be Waited, stored, or passed onward — a dropped op is an in-flight operation Drain cannot account for", name)
					}
				} else if name, ok := waitName(pass, call); ok {
					if !sheet.Allowed(call.Pos()) {
						pass.Reportf(call.Pos(), "%s error discarded: handle it or annotate with //mlpvet:allow aioop <reason>", name)
					}
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := submitName(pass, call); ok && isBlank(n.Lhs[0]) {
					if !sheet.Allowed(call.Pos()) {
						pass.Reportf(call.Pos(), "*aio.Op from %s assigned to _: the op must be Waited, stored, or passed onward", name)
					}
				}
				if name, ok := waitName(pass, call); ok && len(n.Lhs) == 1 && isBlank(n.Lhs[0]) {
					if !sheet.Allowed(call.Pos()) {
						pass.Reportf(call.Pos(), "%s error discarded: handle it or annotate with //mlpvet:allow aioop <reason>", name)
					}
				}
			case *ast.CallExpr:
				if name, ok := submitCallee(pass, n, classless); ok {
					if !sheet.Allowed(n.Pos()) {
						pass.Reportf(n.Pos(), "implicit-class submission %s: use %sClass with an explicit aio.Class so the priority scheduler sees the caller's intent", name, name)
					}
				}
			}
			return true
		})
	}
	sheet.Flush(pass)
	return nil, nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// aioMethod resolves call to a method of the aio package with the given
// receiver type name, returning the method name.
func aioMethod(pass *analysis.Pass, call *ast.CallExpr, recv string, names map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), aioSuffix) || !names[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != recv {
		return "", false
	}
	return fn.Name(), true
}

// submitName matches any Engine submission method (classed or not).
func submitName(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if name, ok := aioMethod(pass, call, "Engine", classed); ok {
		return name, true
	}
	return aioMethod(pass, call, "Engine", classless)
}

// submitCallee matches an Engine submission method restricted to names.
func submitCallee(pass *analysis.Pass, call *ast.CallExpr, names map[string]bool) (string, bool) {
	return aioMethod(pass, call, "Engine", names)
}

// waitName matches Op.Wait / Op.WaitCtx.
func waitName(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	return aioMethod(pass, call, "Op", waiters)
}
