// Package directives exercises aioop's allow machinery: an annotated
// discarded Wait is a documented decision; an annotation that suppresses
// nothing is stale.
package directives

import "mlp/internal/aio"

func annotated(e *aio.Engine, buf []byte) {
	op, err := e.SubmitWriteClass(aio.Checkpoint, "k", buf)
	if err != nil {
		return
	}
	//mlpvet:allow aioop drain on shutdown; the error already surfaced on the submit path
	_ = op.Wait()
}

//mlpvet:allow aioop nothing below discards a wait // want `stale mlpvet:allow aioop directive`
func stale(op *aio.Op) error { return op.Wait() }
