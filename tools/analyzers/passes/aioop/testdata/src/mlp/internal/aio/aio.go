// Package aio is a hermetic stub of the engine's async-I/O package for
// analysistest fixtures.
package aio

type Class int

const (
	DemandFetch Class = iota
	Checkpoint
	Flush
	Migration
)

type Op struct{}

func (o *Op) Wait() error           { return nil }
func (o *Op) WaitCtx(ctx any) error { return nil }

type Engine struct{}

func (e *Engine) SubmitReadClass(c Class, key string, dst []byte) (*Op, error) { return nil, nil }
func (e *Engine) SubmitReadVecClass(c Class, keys []string, dsts [][]byte) (*Op, error) {
	return nil, nil
}
func (e *Engine) SubmitWriteClass(c Class, key string, src []byte) (*Op, error) { return nil, nil }
func (e *Engine) SubmitDelete(c Class, key string) (*Op, error)                 { return nil, nil }
func (e *Engine) SubmitRead(key string, dst []byte) (*Op, error)                { return nil, nil }
func (e *Engine) SubmitWrite(key string, src []byte) (*Op, error)               { return nil, nil }
