// Package a exercises aioop: submissions must be waited/stored, carry an
// explicit class, and Wait errors must be handled.
package a

import "mlp/internal/aio"

// dropped discards the op entirely: nothing can ever wait for it.
func dropped(e *aio.Engine, buf []byte) {
	e.SubmitWriteClass(aio.Checkpoint, "k", buf) // want `result of SubmitWriteClass dropped`
}

// blankOp keeps the error but throws the op away.
func blankOp(e *aio.Engine, buf []byte) error {
	_, err := e.SubmitReadClass(aio.DemandFetch, "k", buf) // want `\*aio\.Op from SubmitReadClass assigned to _`
	return err
}

// classless bypasses the priority scheduler.
func classless(e *aio.Engine, buf []byte) error {
	op, err := e.SubmitRead("k", buf) // want `implicit-class submission SubmitRead`
	if err != nil {
		return err
	}
	return op.Wait()
}

// discardedWait silences an I/O error without a documented reason.
func discardedWait(op *aio.Op) {
	_ = op.Wait() // want `Wait error discarded`
	op.Wait()     // want `Wait error discarded`
}

// droppedVec discards a coalesced batch op: every member's completion is
// unobservable.
func droppedVec(e *aio.Engine, keys []string, dsts [][]byte) {
	e.SubmitReadVecClass(aio.DemandFetch, keys, dsts) // want `result of SubmitReadVecClass dropped`
}

// blankVecOp keeps the error but throws the batch op away.
func blankVecOp(e *aio.Engine, keys []string, dsts [][]byte) error {
	_, err := e.SubmitReadVecClass(aio.DemandFetch, keys, dsts) // want `\*aio\.Op from SubmitReadVecClass assigned to _`
	return err
}

// okVec: one classed vectored submission for the whole run, waited once.
func okVec(e *aio.Engine, keys []string, dsts [][]byte) error {
	op, err := e.SubmitReadVecClass(aio.DemandFetch, keys, dsts)
	if err != nil {
		return err
	}
	return op.Wait()
}

// ok: classed submission, op waited, error propagated.
func ok(e *aio.Engine, buf []byte) error {
	op, err := e.SubmitReadClass(aio.DemandFetch, "k", buf)
	if err != nil {
		return err
	}
	return op.Wait()
}

// okStored: ops stored for a later collector are fine.
func okStored(e *aio.Engine, keys []string, buf []byte) ([]*aio.Op, error) {
	var pending []*aio.Op
	for _, k := range keys {
		op, err := e.SubmitWriteClass(aio.Flush, k, buf)
		if err != nil {
			return pending, err
		}
		pending = append(pending, op)
	}
	return pending, nil
}
