package aioop_test

import (
	"testing"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis/analysistest"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/aioop"
)

func Test(t *testing.T) {
	analysistest.Run(t, aioop.Analyzer, "a", "directives")
}
