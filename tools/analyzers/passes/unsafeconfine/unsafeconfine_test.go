package unsafeconfine_test

import (
	"testing"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis/analysistest"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/unsafeconfine"
)

func Test(t *testing.T) {
	analysistest.Run(t, unsafeconfine.Analyzer,
		"a",                    // breach
		"mlp/internal/f32view", // the confinement boundary itself
		"directives",           // annotated breach + stale annotation
	)
}
