// Package directives: an annotated unsafe import (a test asserting alias
// layout) is allowed; a directive with nothing to suppress is stale.
package directives

//mlpvet:allow unsafeconfine this fixture asserts the alias layout the contract depends on
import "unsafe"

//mlpvet:allow unsafeconfine no unsafe import follows // want `stale mlpvet:allow unsafeconfine directive`
type pointer = unsafe.Pointer
