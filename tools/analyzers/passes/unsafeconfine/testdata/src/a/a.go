// Package a imports unsafe outside the confinement boundary.
package a

import "unsafe" // want `unsafe imported outside internal/f32view`

type pointer = unsafe.Pointer
