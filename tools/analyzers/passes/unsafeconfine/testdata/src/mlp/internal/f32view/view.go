// Package f32view stands in for the engine's aliasing package: the one
// import of unsafe the confinement invariant allows.
package f32view

import "unsafe"

func addr(b []byte) unsafe.Pointer { return unsafe.Pointer(&b[0]) }
