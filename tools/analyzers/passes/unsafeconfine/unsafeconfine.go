// Package unsafeconfine enforces the zero-copy containment invariant:
// the unsafe package may be imported only by internal/f32view, the one
// package whose whole job is the alignment-checked []byte↔[]float32
// aliasing contract. Everywhere else, unsafe erodes the guarantee that
// buffer-ownership bugs are at worst use-after-Put on a []byte, never
// type confusion.
package unsafeconfine

import (
	"strconv"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
	"github.com/datastates/mlpoffload/tools/analyzers/directive"
)

// Analyzer flags unsafe imports outside internal/f32view.
var Analyzer = &analysis.Analyzer{
	Name: "unsafeconfine",
	Doc: `confine unsafe imports to internal/f32view

The engine's aliasing tricks (serialized optimizer state viewed in place
as []float32) are concentrated in internal/f32view behind alignment and
endianness checks. Any other unsafe import is a containment breach.`,
	Run: run,
}

// allowedSuffix is the one package path allowed to import unsafe.
const allowedSuffix = "internal/f32view"

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), allowedSuffix) {
		return nil, nil
	}
	sheet := directive.Collect(pass.Fset, pass.Files, pass.Analyzer.Name)
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "unsafe" {
				continue
			}
			if sheet.Allowed(imp.Pos()) {
				continue
			}
			pass.Reportf(imp.Pos(), "unsafe imported outside %s: keep aliasing tricks behind the f32view contract", allowedSuffix)
		}
	}
	sheet.Flush(pass)
	return nil, nil
}
