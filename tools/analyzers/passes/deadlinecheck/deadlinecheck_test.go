package deadlinecheck_test

import (
	"testing"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis/analysistest"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/deadlinecheck"
)

func Test(t *testing.T) {
	analysistest.Run(t, deadlinecheck.Analyzer,
		"a",          // flagged wall deadlines, clock-derived and cleared ones clean
		"directives", // allow, reasonless, stale
	)
}
