// Package deadlinecheck enforces the wire-transport deadline
// discipline: every net.Conn deadline (SetDeadline, SetReadDeadline,
// SetWriteDeadline) must be computed from an injected
// internal/clock.Clock — clk.Now().Add(timeout) — or be the explicit
// time.Time{} clear. A deadline built from time.Now() (or any other
// source) splits the transport's notion of time from the engine's
// injectable clock: the timeout tests that assert exact virtual
// durations (internal/wire) silently fall back to wall-clock behavior,
// and a virtual-clock run can arm kernel deadlines that fire mid-test.
//
// Genuinely wall-clock sites are annotated:
//
//	//mlpvet:allow deadlinecheck <reason>      one site
//	//mlpvet:allowfile deadlinecheck <reason>  a whole file
package deadlinecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
	"github.com/datastates/mlpoffload/tools/analyzers/directive"
)

// Analyzer flags net deadlines not derived from the injected clock.
var Analyzer = &analysis.Analyzer{
	Name: "deadlinecheck",
	Doc: `require net.Conn deadlines to derive from an injected clock.Clock

A socket deadline is a timestamp, and timestamps come from the engine's
single injectable time source. Passing anything but clk.Now().Add(...)
(or the time.Time{} clear) re-couples the transport to the wall clock
behind the clock abstraction's back.`,
	Run: run,
}

// clockSuffix identifies the injectable clock package.
const clockSuffix = "internal/clock"

// deadlineMethods are the net.Conn deadline setters.
var deadlineMethods = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

func run(pass *analysis.Pass) (any, error) {
	sheet := directive.Collect(pass.Fset, pass.Files, pass.Analyzer.Name)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !deadlineMethods[fn.Name()] {
				return true
			}
			// Only the net package's deadline setters (net.Conn and the
			// concrete net types); a same-named method elsewhere is not a
			// socket deadline.
			if fn.Pkg() == nil || fn.Pkg().Path() != "net" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || len(call.Args) != 1 {
				return true
			}
			arg := call.Args[0]
			if clockDerived(pass, arg) || isZeroTimeClear(pass, arg) {
				return true
			}
			if sheet.Allowed(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "net deadline in %s not derived from the injected clock: compute it as clk.Now().Add(timeout) on a clock.Clock, or clear it with time.Time{} (or annotate with //mlpvet:allow deadlinecheck <reason>)", fn.Name())
			return true
		})
	}
	sheet.Flush(pass)
	return nil, nil
}

// clockDerived reports whether the expression contains a call to a Now
// method defined in internal/clock — the Clock interface's, or a
// concrete clock implementation's.
func clockDerived(pass *analysis.Pass, expr ast.Expr) bool {
	derived := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != "Now" || fn.Pkg() == nil {
			return true
		}
		if strings.HasSuffix(fn.Pkg().Path(), clockSuffix) {
			derived = true
			return false
		}
		return true
	})
	return derived
}

// isZeroTimeClear reports whether the argument is the literal
// time.Time{} — the documented way to clear a deadline, which involves
// no clock at all.
func isZeroTimeClear(pass *analysis.Pass, expr ast.Expr) bool {
	lit, ok := expr.(*ast.CompositeLit)
	if !ok || len(lit.Elts) != 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}
