// Package net is a hermetic stub of the standard library's net package:
// the Conn deadline setters deadlinecheck recognizes by defining
// package, plus a concrete type exercising the method-set path.
package net

import "time"

type Conn interface {
	SetDeadline(t time.Time) error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

type TCPConn struct{}

func (c *TCPConn) SetDeadline(t time.Time) error      { return nil }
func (c *TCPConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *TCPConn) SetWriteDeadline(t time.Time) error { return nil }
