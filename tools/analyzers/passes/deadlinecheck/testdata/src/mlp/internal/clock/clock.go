// Package clock stands in for the engine's internal/clock package. Its
// Now — on the interface or any implementation — is the one legitimate
// source for a socket deadline; deadlinecheck recognizes it by package
// path suffix.
package clock

import "time"

type Clock interface {
	Now() time.Time
}

type Wall struct{}

func (Wall) Now() time.Time { return time.Now() }
