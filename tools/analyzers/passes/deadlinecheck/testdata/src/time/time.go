// Package time is a hermetic stub of the standard library's time package
// for analysistest fixtures: just enough surface for the fixtures to
// type-check without a GOROOT source tree.
package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

type Time struct{}

func (t Time) Add(d Duration) Time { return t }
func (t Time) Sub(u Time) Duration { return 0 }

func Now() Time { return Time{} }
