// Package a exercises deadlinecheck: net deadlines must derive from the
// injected clock (clk.Now().Add) or be the time.Time{} clear; anything
// else — time.Now, a bare Time variable — is flagged. Same-named
// methods outside the net package are not socket deadlines.
package a

import (
	"mlp/internal/clock"
	"net"
	"time"
)

func bad(c net.Conn, d time.Duration) {
	_ = c.SetReadDeadline(time.Now().Add(d)) // want `net deadline in SetReadDeadline not derived from the injected clock`
	var t time.Time
	_ = c.SetDeadline(t)               // want `net deadline in SetDeadline not derived from the injected clock`
	_ = c.SetWriteDeadline(time.Now()) // want `net deadline in SetWriteDeadline not derived from the injected clock`
}

func badConcrete(c *net.TCPConn, d time.Duration) {
	_ = c.SetWriteDeadline(time.Now().Add(d)) // want `net deadline in SetWriteDeadline not derived from the injected clock`
}

func good(c net.Conn, clk clock.Clock, d time.Duration) {
	_ = c.SetWriteDeadline(clk.Now().Add(d))
	_ = c.SetReadDeadline(clk.Now().Add(2 * d))
	_ = c.SetReadDeadline(time.Time{}) // clearing involves no clock
}

func goodConcrete(c *net.TCPConn, w clock.Wall, d time.Duration) {
	_ = c.SetDeadline(w.Now().Add(d)) // a concrete clock's Now counts too
}

// notASocket has a deadline setter of its own; deadlinecheck only cares
// about the net package's.
type notASocket struct{}

func (notASocket) SetDeadline(t time.Time) error { return nil }

func unrelated(n notASocket) {
	_ = n.SetDeadline(time.Now())
}
