// Package directives exercises the mlpvet:allow machinery for
// deadlinecheck: a reasoned directive suppresses its finding, a
// reasonless one suppresses nothing, and an unmatched one is stale.
package directives

import (
	"net"
	"time"
)

func annotated(c net.Conn) {
	//mlpvet:allow deadlinecheck wall-deadline probe in a throwaway diagnostic tool
	_ = c.SetReadDeadline(time.Now())
}

func reasonless(c net.Conn) {
	//mlpvet:allow deadlinecheck // want `directive has no reason`
	_ = c.SetReadDeadline(time.Now()) // want `net deadline in SetReadDeadline not derived from the injected clock`
}

//mlpvet:allow deadlinecheck nothing below sets a deadline // want `stale mlpvet:allow deadlinecheck directive`
func stale(d time.Duration) time.Duration { return 2 * d }
