// Package bufpool is a hermetic stub of the engine's buffer pool for
// analysistest fixtures.
package bufpool

func Get(n int) []byte { return make([]byte, n) }

func Put(b []byte) {}
