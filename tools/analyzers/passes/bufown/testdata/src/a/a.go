// Package a exercises bufown: pooled buffers must be Put or reach an
// ownership sink on every path, and must not be used after Put.
package a

import "mlp/internal/bufpool"

type holder struct{ backing []byte }

func work(b []byte) {}
func fill(b []byte) {}

// leakOnError drops the buffer on the early-return path.
func leakOnError(fail bool) bool {
	buf := bufpool.Get(64) // want `leaks on a return path`
	if fail {
		return false
	}
	bufpool.Put(buf)
	return true
}

// dropped discards the Get result outright.
func dropped() {
	bufpool.Get(8)     // want `result of bufpool.Get dropped`
	_ = bufpool.Get(8) // want `result of bufpool.Get dropped`
}

// overwritten loses the first buffer by reassigning the variable.
func overwritten() {
	buf := bufpool.Get(8) // want `leaks on overwritten`
	buf = bufpool.Get(16)
	bufpool.Put(buf)
}

// useAfterPut touches the buffer once the pool may have recycled it.
func useAfterPut() int {
	buf := bufpool.Get(8)
	bufpool.Put(buf)
	return len(buf) // want `buf used after bufpool\.Put`
}

// okLinear, okDefer: plain discharge.
func okLinear() {
	buf := bufpool.Get(8)
	fill(buf)
	bufpool.Put(buf)
}

func okDefer(loops int) {
	buf := bufpool.Get(8)
	defer bufpool.Put(buf)
	for i := 0; i < loops; i++ {
		work(buf)
	}
}

// okSinks: each of these transfers ownership, so no Put is required.
func okReturn() []byte {
	buf := bufpool.Get(8)
	fill(buf)
	return buf
}

func okCallSink() {
	buf := bufpool.Get(8)
	work(buf) // callee owns the release now
}

func okSend(ch chan []byte) {
	buf := bufpool.Get(8)
	ch <- buf
}

func okAdopt(h *holder) {
	buf := bufpool.Get(8)
	h.backing = buf
}

func okComposite() holder {
	buf := bufpool.Get(8)
	return holder{backing: buf}
}

func okClosure() func() {
	buf := bufpool.Get(8)
	return func() { bufpool.Put(buf) }
}

// okSliceRelease: Put of a reslice releases the same backing array.
func okSliceRelease(n int) {
	buf := bufpool.Get(64)
	fill(buf[:n])
	bufpool.Put(buf[:n])
}

// okCoalesced: the coalesced-fetch shape — one pooled buffer per batch
// member, sub-sliced destination views gathered into a batch and handed
// together to one vectored submission; storing into the slice is the
// adoption point, and the submission's owner releases every member.
func okCoalesced(n int, submitVec func(dsts [][]byte) error) error {
	dsts := make([][]byte, n)
	for i := 0; i < n; i++ {
		buf := bufpool.Get(64)
		dsts[i] = buf[:32]
	}
	return submitVec(dsts)
}

// coalescedAbortLeak: a batch assembled member-by-member but abandoned on
// a mid-assembly failure drops the members acquired so far.
func coalescedAbortLeak(n int, fail func(int) bool) [][]byte {
	dsts := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		buf := bufpool.Get(64) // want `leaks on a return path`
		if fail(i) {
			return nil // members already in dsts are dropped unreleased
		}
		dsts = append(dsts, buf[:32])
	}
	return dsts
}

// annotated: a deliberate leak (buffer handed to an untracked registry)
// is documented instead of flagged.
var registry [][]byte

func annotatedLeak() {
	//mlpvet:allow bufown the registry entry is released by the test's global teardown
	buf := bufpool.Get(8)
	if len(registry) < 4 {
		registry = append(registry, buf)
	}
}
