package bufown_test

import (
	"testing"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis/analysistest"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/bufown"
)

func Test(t *testing.T) {
	analysistest.Run(t, bufown.Analyzer, "a")
}
