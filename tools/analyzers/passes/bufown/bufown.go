// Package bufown tracks the ownership lifecycle of pooled buffers,
// intra-procedurally: a slice obtained from bufpool.Get must, on every
// control-flow path to a return, either be recycled with bufpool.Put or
// reach a recognized ownership sink — and must never be used after Put.
//
// Ownership sinks are the ways a buffer legitimately leaves the local
// function's custody: submission to a tier write (any call taking the
// buffer), adoption into a struct (Subgroup.Backing, a staged{} literal),
// a channel send, a return, or capture by a closure. After a sink the
// callee/holder owns the release, so the analyzer stops tracking; after
// bufpool.Put the buffer may be handed to another goroutine at any
// moment, so any further use is the same bug as a use-after-free — the
// PR 5 zero-copy bug shape.
//
// A path that neither Puts nor sinks the buffer is reported at the Get:
// semantically legal (Put is optional by bufpool's contract) but an
// allocation the pool can never recycle, which is exactly the regression
// the zero-copy work removed from the hot path.
package bufown

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
	"github.com/datastates/mlpoffload/tools/analyzers/analysis/cfg"
	"github.com/datastates/mlpoffload/tools/analyzers/directive"
)

// Analyzer enforces the Get→sink/Put buffer lifecycle.
var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc: `track bufpool.Get buffers: Put or sink on every path, no use after Put

Every bufpool.Get result must reach bufpool.Put or an ownership sink
(write submission, struct adoption, channel send, return, closure
capture) on all return paths, and must not be touched once Put.`,
	Run: run,
}

// bufpoolSuffix identifies the pool package (real tree and fixtures).
const bufpoolSuffix = "internal/bufpool"

type effect int

const (
	effNone effect = iota
	effLocal
	effReassign
	effPut
	effEscape
)

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), bufpoolSuffix) {
		return nil, nil
	}
	sheet := directive.Collect(pass.Fset, pass.Files, pass.Analyzer.Name)
	for _, f := range pass.Files {
		for _, body := range functionBodies(f) {
			analyzeBody(pass, sheet, body)
		}
	}
	sheet.Flush(pass)
	return nil, nil
}

// functionBodies yields every function body in the file: declarations
// and function literals, each analyzed as its own function.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// point is a position inside the CFG: the idx-th node of a block.
type point struct {
	block *cfg.Block
	idx   int
}

type tracker struct {
	pass    *analysis.Pass
	sheet   *directive.Sheet
	graph   *cfg.CFG
	parents map[ast.Node]ast.Node
}

func analyzeBody(pass *analysis.Pass, sheet *directive.Sheet, body *ast.BlockStmt) {
	tr := &tracker{
		pass:    pass,
		sheet:   sheet,
		graph:   cfg.New(body, nil),
		parents: buildParents(body),
	}

	for _, b := range tr.graph.Blocks {
		for i, n := range b.Nodes {
			// Gets and Puts nested in a function literal belong to that
			// literal's own analysis pass.
			for _, get := range tr.getEvents(n) {
				if get.v == nil {
					if !sheet.Allowed(get.call.Pos()) {
						pass.Reportf(get.call.Pos(), "result of bufpool.Get dropped: the buffer can never be recycled")
					}
					continue
				}
				tr.checkLeak(get, point{b, i + 1})
			}
			for _, put := range tr.putEvents(n) {
				tr.checkUseAfterPut(put, point{b, i + 1})
			}
		}
	}
}

type getEvent struct {
	call *ast.CallExpr
	v    types.Object // nil when the result is discarded
}

// getEvents finds bufpool.Get calls in node (not inside nested function
// literals) whose result defines a trackable local, or is dropped.
func (tr *tracker) getEvents(node ast.Node) []getEvent {
	var events []getEvent
	inspectSkipFuncLit(node, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !tr.isBufpoolCall(call, "Get") {
			return
		}
		switch p := tr.parents[call].(type) {
		case *ast.AssignStmt:
			if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) == 1 {
				if id, ok := p.Lhs[0].(*ast.Ident); ok {
					if id.Name == "_" {
						events = append(events, getEvent{call: call})
						return
					}
					if v := tr.objOf(id); v != nil {
						events = append(events, getEvent{call: call, v: v})
						return
					}
				}
			}
			// Get feeding a larger expression or multi-assign: treat as
			// immediately sunk (a holder exists).
		case *ast.ExprStmt:
			events = append(events, getEvent{call: call})
		}
	})
	return events
}

type putEvent struct {
	call *ast.CallExpr
	v    types.Object
}

// putEvents finds non-deferred bufpool.Put(v) calls on a plain local in
// node, excluding nested function literals.
func (tr *tracker) putEvents(node ast.Node) []putEvent {
	var events []putEvent
	inspectSkipFuncLit(node, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !tr.isBufpoolCall(call, "Put") || len(call.Args) != 1 {
			return
		}
		if tr.insideDefer(call) {
			return // runs at exit: later uses on the path are fine
		}
		if id := baseIdent(call.Args[0]); id != nil {
			if v := tr.objOf(id); v != nil {
				events = append(events, putEvent{call: call, v: v})
			}
		}
	})
	return events
}

// checkLeak walks forward from the Get: every path must discharge the
// buffer (Put or escape) before reaching Exit.
func (tr *tracker) checkLeak(get getEvent, start point) {
	visited := map[*cfg.Block]bool{}
	var walk func(p point) bool // true when a leaking path was found
	walk = func(p point) bool {
		for i := p.idx; i < len(p.block.Nodes); i++ {
			switch tr.classify(p.block.Nodes[i], get.v) {
			case effPut, effEscape:
				return false
			case effReassign:
				return tr.reportLeak(get, "overwritten")
			}
		}
		for _, s := range p.block.Succs {
			if s == tr.graph.Exit() {
				return tr.reportLeak(get, "a return path")
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(point{s, 0}) {
				return true
			}
		}
		return false
	}
	walk(start)
}

func (tr *tracker) reportLeak(get getEvent, where string) bool {
	if !tr.sheet.Allowed(get.call.Pos()) {
		tr.pass.Reportf(get.call.Pos(), "buffer from bufpool.Get leaks on %s: no bufpool.Put and no ownership sink (write submission, adoption, send, return)", where)
	}
	return true
}

// checkUseAfterPut walks forward from a Put: any use of the buffer
// before reassignment is a use-after-free against the pool.
func (tr *tracker) checkUseAfterPut(put putEvent, start point) {
	visited := map[*cfg.Block]bool{}
	var walk func(p point) bool
	walk = func(p point) bool {
		for i := p.idx; i < len(p.block.Nodes); i++ {
			n := p.block.Nodes[i]
			switch tr.classify(n, put.v) {
			case effReassign:
				return false
			case effLocal, effPut, effEscape:
				if !tr.sheet.Allowed(n.Pos()) {
					tr.pass.Reportf(n.Pos(), "%s used after bufpool.Put: the pool may already have recycled it", put.v.Name())
				}
				return true
			}
		}
		for _, s := range p.block.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(point{s, 0}) {
				return true
			}
		}
		return false
	}
	walk(start)
}

// classify aggregates v's uses inside one executed node. Escape
// dominates (ownership moved), then Put, then reassignment, then plain
// local reads.
func (tr *tracker) classify(node ast.Node, v types.Object) effect {
	agg := effNone
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || tr.pass.TypesInfo.Uses[id] != v {
			return true
		}
		e := tr.climb(id, node)
		if e > agg {
			agg = e
		}
		return true
	})
	return agg
}

// climb walks from an occurrence of the tracked variable up to the
// enclosing executed node, classifying the use by the first significant
// context.
func (tr *tracker) climb(id *ast.Ident, root ast.Node) effect {
	var child ast.Node = id
	for node := tr.parents[child]; child != root && node != nil; child, node = node, tr.parents[node] {
		switch p := node.(type) {
		case *ast.CallExpr:
			if p.Fun == child {
				return effLocal
			}
			if tr.isBufpoolCall(p, "Put") && len(p.Args) == 1 && baseIdent(p.Args[0]) == id {
				return effPut
			}
			if isLenCap(p) {
				return effLocal
			}
			return effEscape
		case *ast.FuncLit:
			return effEscape // captured by a closure
		case *ast.ReturnStmt:
			return effEscape
		case *ast.SendStmt:
			if p.Value == child {
				return effEscape
			}
			return effLocal
		case *ast.CompositeLit:
			return effEscape
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				return effEscape
			}
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == child {
					if child == ast.Node(id) {
						return effReassign
					}
					return effLocal // buf[i] = x, buf.field = x
				}
			}
			// v on the right-hand side: aliasing into another variable
			// (or a field) transfers ownership conservatively.
			for _, l := range p.Lhs {
				if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
					_ = id
					return effEscape
				}
			}
			return effLocal // _ = buf discards
		}
	}
	return effLocal
}

func (tr *tracker) objOf(id *ast.Ident) types.Object {
	if o := tr.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return tr.pass.TypesInfo.Uses[id]
}

// isBufpoolCall matches package-level bufpool.<name> calls.
func (tr *tracker) isBufpoolCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := tr.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), bufpoolSuffix)
}

// insideDefer reports whether n sits under a DeferStmt within the same
// function body.
func (tr *tracker) insideDefer(n ast.Node) bool {
	for node := tr.parents[n]; node != nil; node = tr.parents[node] {
		switch node.(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

func isLenCap(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && (id.Name == "len" || id.Name == "cap")
}

// baseIdent unwraps slicing/parens down to a plain identifier, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// inspectSkipFuncLit visits nodes without descending into nested
// function literals.
func inspectSkipFuncLit(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// buildParents maps every node in root's subtree to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
