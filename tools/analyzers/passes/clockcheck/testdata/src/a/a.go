// Package a exercises clockcheck: direct wall-clock reads are flagged,
// pure time arithmetic and Time methods are not.
package a

import "time"

func bad() {
	t := time.Now()                  // want `direct time\.Now outside internal/clock`
	time.Sleep(time.Second)          // want `direct time\.Sleep outside internal/clock`
	<-time.After(time.Millisecond)   // want `direct time\.After outside internal/clock`
	tm := time.NewTimer(time.Second) // want `direct time\.NewTimer outside internal/clock`
	tm.Stop()
	_ = t
}

// good uses only time as data: the Duration type, constants, and Time
// methods (time.Time.After is arithmetic, not a clock read).
func good(deadline time.Time, now time.Time) (bool, time.Duration) {
	d := 5 * time.Millisecond
	return now.After(deadline), d
}
