// Package directives exercises the mlpvet:allow machinery: a reasoned
// directive suppresses the finding on its line or the line below, a
// reasonless directive suppresses nothing and is itself reported, and a
// directive that matches no finding is reported as stale.
package directives

import "time"

func annotatedTrailing() time.Time {
	return time.Now() //mlpvet:allow clockcheck report timestamp, wall time is the point
}

func annotatedAbove() {
	//mlpvet:allow clockcheck coordination spin in a benchmark harness
	time.Sleep(time.Millisecond)
}

func reasonless() time.Time {
	//mlpvet:allow clockcheck // want `directive has no reason`
	return time.Now() // want `direct time\.Now outside internal/clock`
}

//mlpvet:allow clockcheck nothing on the next line uses the clock // want `stale mlpvet:allow clockcheck directive`
func stale(d time.Duration) time.Duration { return 2 * d }
