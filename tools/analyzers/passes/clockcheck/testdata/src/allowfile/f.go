// Package allowfile is wall-clock by design (a report generator): one
// file-scoped directive covers every clock read in the file.
package allowfile

//mlpvet:allowfile clockcheck report generation runs on real time end to end

import "time"

func stamp() time.Time { return time.Now() }

func pace() {
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
}
