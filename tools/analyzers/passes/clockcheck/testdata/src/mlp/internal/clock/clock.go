// Package clock stands in for the engine's internal/clock package: the
// one place allowed to read the wall clock directly. clockcheck exempts
// it by package-path suffix, so nothing here is flagged.
package clock

import "time"

func Now() time.Time { return time.Now() }

func Sleep(d time.Duration) { time.Sleep(d) }
