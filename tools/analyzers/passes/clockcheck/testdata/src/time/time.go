// Package time is a hermetic stub of the standard library's time package
// for analysistest fixtures: just enough surface for the fixtures to
// type-check without a GOROOT source tree.
package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

type Time struct{}

func (t Time) After(u Time) bool   { return false }
func (t Time) Before(u Time) bool  { return false }
func (t Time) Add(d Duration) Time { return t }
func (t Time) Sub(u Time) Duration { return 0 }

type Timer struct{ C <-chan Time }

func (t *Timer) Stop() bool { return false }

type Ticker struct{ C <-chan Time }

func Now() Time                             { return Time{} }
func Since(t Time) Duration                 { return 0 }
func Until(t Time) Duration                 { return 0 }
func Sleep(d Duration)                      {}
func After(d Duration) <-chan Time          { return nil }
func AfterFunc(d Duration, f func()) *Timer { return nil }
func Tick(d Duration) <-chan Time           { return nil }
func NewTimer(d Duration) *Timer            { return nil }
func NewTicker(d Duration) *Ticker          { return nil }
