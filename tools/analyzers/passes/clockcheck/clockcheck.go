// Package clockcheck enforces the engine-wide clock discipline: every
// timestamp, sleep and timer goes through internal/clock so that timing
// behavior is injectable and tests run on exact virtual time. A direct
// time.Now (or friends) anywhere else reintroduces the wall clock behind
// the abstraction's back — the exact bug class PR 6 removed, and the one
// that made cmd/iobench's checkpoint-backlog gate nondeterministic on
// loaded CI machines.
//
// Genuinely wall-clock sites (a report's generation timestamp, a
// real-I/O throughput measurement) are annotated:
//
//	//mlpvet:allow clockcheck <reason>      one site
//	//mlpvet:allowfile clockcheck <reason>  a whole wall-clock file
package clockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
	"github.com/datastates/mlpoffload/tools/analyzers/directive"
)

// Analyzer flags direct wall-clock reads outside internal/clock.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc: `forbid direct time.Now/Sleep/timers outside internal/clock

The injectable clock (internal/clock.Clock) is the engine's single time
source. Wall-clock reads anywhere else cannot be virtualized, so timing
tests regress to sleeps and tolerance bands.`,
	Run: run,
}

// exemptSuffix is the clock package itself — the one place the wall
// clock is read on purpose.
const exemptSuffix = "internal/clock"

// banned are the package-level time functions that read or schedule
// against the wall clock. Pure data (time.Duration, time.Time as a
// type, constants) stays legal everywhere.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), exemptSuffix) {
		return nil, nil
	}
	sheet := directive.Collect(pass.Fset, pass.Files, pass.Analyzer.Name)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc || !banned[obj.Name()] {
				return true
			}
			// Methods named like the banned functions (time.Time.After,
			// time.Time.Sub's friends) are pure arithmetic, not clock reads.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if sheet.Allowed(id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(), "direct time.%s outside %s: thread a clock.Clock through instead (or annotate a genuinely wall-clock site with //mlpvet:allow clockcheck <reason>)", obj.Name(), exemptSuffix)
			return true
		})
	}
	sheet.Flush(pass)
	return nil, nil
}
