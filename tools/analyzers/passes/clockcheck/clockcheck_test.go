package clockcheck_test

import (
	"testing"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis/analysistest"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/clockcheck"
)

func Test(t *testing.T) {
	analysistest.Run(t, clockcheck.Analyzer,
		"a",                  // flagged wall-clock reads, clean Time arithmetic
		"mlp/internal/clock", // the exempt package itself
		"directives",         // allow, reasonless, stale
		"allowfile",          // file-scoped allow
	)
}
