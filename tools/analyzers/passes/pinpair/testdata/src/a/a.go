// Package a exercises pinpair: every Pin must be Unpinned on every
// return path, or annotated as a cross-function handoff.
package a

import "mlp/internal/hostcache"

type engine struct {
	lru   *hostcache.LRU
	other *hostcache.LRU
}

// leakNoUnpin never unpins: either a leak or an unannotated handoff.
func (e *engine) leakNoUnpin(sg int) {
	e.lru.Pin(sg) // want `Pin\(sg\) with no Unpin on e\.lru anywhere in this function`
}

// leakPath unpins on one path but returns early on the other.
func (e *engine) leakPath(sg int, fail bool) bool {
	e.lru.Pin(sg) // want `Pin\(sg\) may reach a return without Unpin\(sg\)`
	if fail {
		return false
	}
	e.lru.Unpin(sg)
	return true
}

// leakWrongReceiver unpins a different cache: no match.
func (e *engine) leakWrongReceiver(sg int) {
	e.lru.Pin(sg) // want `Pin\(sg\) with no Unpin on e\.lru anywhere in this function`
	e.other.Unpin(sg)
}

// okLinear and okBranches release on every path.
func (e *engine) okLinear(sg int) {
	e.lru.Pin(sg)
	e.lru.Unpin(sg)
}

func (e *engine) okBranches(sg int, fast bool) {
	e.lru.Pin(sg)
	if fast {
		e.lru.Unpin(sg)
		return
	}
	e.lru.Unpin(sg)
}

// okDefer releases via defer, which covers every return beyond it.
func (e *engine) okDefer(sg int, fail bool) bool {
	e.lru.Pin(sg)
	defer e.lru.Unpin(sg)
	if fail {
		return false
	}
	return true
}

// okClosureRelease registers the unpin inside a deferred closure.
func (e *engine) okClosureRelease(sg int) {
	e.lru.Pin(sg)
	defer func() {
		e.lru.Unpin(sg)
	}()
}

// okHandoff documents that another function releases the pin.
func (e *engine) okHandoff(sg int) {
	//mlpvet:allow pinpair the committer unpins after the flush lands
	e.lru.Pin(sg)
}

// closurePin: a pin inside a function literal is the literal's own
// responsibility — and this one leaks there.
func (e *engine) closurePin(sg int) func() {
	return func() {
		e.lru.Pin(sg) // want `Pin\(sg\) with no Unpin on e\.lru anywhere in this function`
	}
}
