// Package hostcache is a hermetic stub of the engine's host cache for
// analysistest fixtures.
package hostcache

type LRU struct{}

func (l *LRU) Pin(sg int)   {}
func (l *LRU) Unpin(sg int) {}
