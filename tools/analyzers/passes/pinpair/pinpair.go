// Package pinpair checks that every hostcache pin is balanced: an
// LRU.Pin(sg) must be matched by an LRU.Unpin on every control-flow path
// out of the function (modeled on go vet's lostcancel). A subgroup whose
// pin count never returns to zero is immortal in the host cache — the
// LRU can never evict it, which silently shrinks the effective cache
// until fetches thrash.
//
// Two rules, in order:
//
//  1. If the enclosing function contains no Unpin on the same receiver
//     at all, the pin either leaks or is handed to another function to
//     release. Cross-function handoffs are legal but must be annotated
//     (//mlpvet:allow pinpair <who unpins>) so the contract is written
//     down where the pin happens.
//  2. Otherwise the function does release locally, and the analyzer
//     walks the CFG: every path from the Pin to a return must pass an
//     Unpin with the same receiver and argument (a deferred Unpin
//     covers every path beyond its defer statement).
package pinpair

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
	"github.com/datastates/mlpoffload/tools/analyzers/analysis/cfg"
	"github.com/datastates/mlpoffload/tools/analyzers/directive"
)

// Analyzer flags hostcache pins without a matching unpin.
var Analyzer = &analysis.Analyzer{
	Name: "pinpair",
	Doc: `require hostcache Pin to be matched by Unpin on every return path

An unbalanced pin makes the subgroup unevictable forever, shrinking the
effective host cache. Cross-function unpin handoffs must be annotated
with //mlpvet:allow pinpair <reason>.`,
	Run: run,
}

// hostcacheSuffix identifies the cache package (real tree and fixtures).
const hostcacheSuffix = "internal/hostcache"

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), hostcacheSuffix) {
		return nil, nil
	}
	sheet := directive.Collect(pass.Fset, pass.Files, pass.Analyzer.Name)
	for _, f := range pass.Files {
		for _, body := range functionBodies(f) {
			analyzeBody(pass, sheet, body)
		}
	}
	sheet.Flush(pass)
	return nil, nil
}

// functionBodies yields every function body in the file; a Pin inside a
// closure is the closure's responsibility, not its enclosing function's.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// pinCall is one Pin or Unpin occurrence, keyed by the printed receiver
// and argument expressions so l.Pin(sg) pairs with l.Unpin(sg) and with
// defer l.Unpin(sg), but not with other.Unpin(sg).
type pinCall struct {
	call *ast.CallExpr
	recv string
	arg  string
}

func analyzeBody(pass *analysis.Pass, sheet *directive.Sheet, body *ast.BlockStmt) {
	// Unpins anywhere in the body — including inside closures and
	// defers — satisfy rule 1: the function does participate in release.
	unpins := findPinCalls(pass, body, "Unpin", true)

	graph := cfg.New(body, nil)
	for _, b := range graph.Blocks {
		for i, n := range b.Nodes {
			// Pins inside a nested closure belong to that closure's own
			// body pass.
			for _, pin := range findPinCalls(pass, n, "Pin", false) {
				checkPin(pass, sheet, graph, pin, unpins, b, i+1)
			}
		}
	}
}

func checkPin(pass *analysis.Pass, sheet *directive.Sheet, graph *cfg.CFG, pin pinCall, unpins []pinCall, from *cfg.Block, idx int) {
	sameRecv := false
	for _, u := range unpins {
		if u.recv == pin.recv {
			sameRecv = true
			break
		}
	}
	if !sameRecv {
		if !sheet.Allowed(pin.call.Pos()) {
			pass.Reportf(pin.call.Pos(), "Pin(%s) with no Unpin on %s anywhere in this function: unpin on every return path, or annotate the cross-function handoff with //mlpvet:allow pinpair <who unpins>", pin.arg, pin.recv)
		}
		return
	}

	// Rule 2: path-sensitive check from the pin to every return.
	visited := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block, idx int) bool // true when a leaking path exists
	walk = func(b *cfg.Block, idx int) bool {
		for i := idx; i < len(b.Nodes); i++ {
			if dischargesPin(pass, b.Nodes[i], pin) {
				return false
			}
		}
		for _, s := range b.Succs {
			if s == graph.Exit() {
				if !sheet.Allowed(pin.call.Pos()) {
					pass.Reportf(pin.call.Pos(), "Pin(%s) may reach a return without Unpin(%s): the subgroup stays unevictable on that path", pin.arg, pin.arg)
				}
				return true
			}
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	walk(from, idx)
}

// dischargesPin reports whether executing node releases pin: an Unpin
// with the same receiver and argument, reached directly, registered by a
// defer on this path, or delegated to a closure created here.
func dischargesPin(pass *analysis.Pass, node ast.Node, pin pinCall) bool {
	for _, u := range findPinCalls(pass, node, "Unpin", true) {
		if u.recv == pin.recv && u.arg == pin.arg {
			return true
		}
	}
	return false
}

// findPinCalls collects LRU.<name> calls inside node, optionally
// descending into nested function literals.
func findPinCalls(pass *analysis.Pass, node ast.Node, name string, intoFuncLit bool) []pinCall {
	var calls []pinCall
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != node && !intoFuncLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isLRUMethod(pass, sel, name) {
			return true
		}
		calls = append(calls, pinCall{
			call: call,
			recv: types.ExprString(sel.X),
			arg:  types.ExprString(call.Args[0]),
		})
		return true
	})
	return calls
}

// isLRUMethod matches hostcache LRU.Pin / LRU.Unpin.
func isLRUMethod(pass *analysis.Pass, sel *ast.SelectorExpr, name string) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), hostcacheSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "LRU"
}
