package pinpair_test

import (
	"testing"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis/analysistest"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/pinpair"
)

func Test(t *testing.T) {
	analysistest.Run(t, pinpair.Analyzer, "a")
}
