module github.com/datastates/mlpoffload/tools/analyzers

go 1.24
