// Package directive implements the mlpvet suppression comments:
//
//	//mlpvet:allow <analyzer> <reason>      line-scoped
//	//mlpvet:allowfile <analyzer> <reason>  file-scoped
//
// A line-scoped directive suppresses findings of the named analyzer on
// its own line (trailing comment) or on the line immediately below (a
// directive on its own line). A file-scoped directive suppresses every
// finding of that analyzer in the file — the clockcheck allowlist for
// genuinely wall-clock files like benchmerge's report timestamp.
//
// Suppressions cannot rot: a directive that suppresses nothing in a run
// that analyzed its file is itself reported as stale, and a directive
// with no reason is reported as undocumented. Both reports are
// unsuppressable — the escape hatch cannot hide its own misuse.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
)

const (
	linePrefix = "mlpvet:allow "
	filePrefix = "mlpvet:allowfile "
)

type entry struct {
	pos       token.Pos
	file      string
	line      int
	fileScope bool
	reason    string
	used      bool
}

// Sheet is the set of directives for one analyzer across one package's
// files.
type Sheet struct {
	analyzer string
	entries  []*entry
	fset     *token.FileSet
}

// Collect gathers the directives naming analyzer from every comment in
// files.
func Collect(fset *token.FileSet, files []*ast.File, analyzer string) *Sheet {
	s := &Sheet{analyzer: analyzer, fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /*…*/ comments are not directives
				}
				var rest string
				fileScope := false
				switch {
				case strings.HasPrefix(text, filePrefix):
					rest, fileScope = text[len(filePrefix):], true
				case strings.HasPrefix(text, linePrefix):
					rest = text[len(linePrefix):]
				default:
					continue
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name != analyzer {
					continue
				}
				// Fixture files carry analysistest expectations inside
				// the directive comment; they are not part of the reason.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = reason[:i]
				}
				pos := fset.Position(c.Pos())
				s.entries = append(s.entries, &entry{
					pos:       c.Pos(),
					file:      pos.Filename,
					line:      pos.Line,
					fileScope: fileScope,
					reason:    strings.TrimSpace(reason),
				})
			}
		}
	}
	return s
}

// Allowed reports whether a finding at pos is suppressed, consuming the
// matching directive so it cannot also be reported stale.
func (s *Sheet) Allowed(pos token.Pos) bool {
	p := s.fset.Position(pos)
	allowed := false
	for _, e := range s.entries {
		if e.file != p.Filename || e.reason == "" {
			continue
		}
		if e.fileScope || e.line == p.Line || e.line == p.Line-1 {
			e.used = true
			allowed = true
		}
	}
	return allowed
}

// Flush reports directive misuse through pass: directives with no reason
// and directives that suppressed nothing. Call after the analyzer has
// finished reporting.
func (s *Sheet) Flush(pass *analysis.Pass) {
	for _, e := range s.entries {
		switch {
		case e.reason == "":
			pass.Reportf(e.pos, "mlpvet:allow %s directive has no reason: document why this site is exempt", s.analyzer)
		case !e.used:
			pass.Reportf(e.pos, "stale mlpvet:allow %s directive: it suppresses no %s finding — remove it", s.analyzer, s.analyzer)
		}
	}
}
