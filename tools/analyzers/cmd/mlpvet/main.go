// Command mlpvet runs the repository's invariant analyzers — clockcheck,
// bufown, pinpair, aioop, unsafeconfine — over Go package patterns.
//
// Standalone (must run from inside the module under analysis):
//
//	go run ./tools/analyzers/cmd/mlpvet ./...          # non-test files
//	go run ./tools/analyzers/cmd/mlpvet -tests ./...   # plus _test.go
//
// Or as a vet tool, which analyzes whatever the build analyzes:
//
//	go build -o mlpvet ./tools/analyzers/cmd/mlpvet
//	go vet -vettool=./mlpvet ./...
//
// Diagnostics print as file:line:col: [analyzer] message; the exit code
// is 1 (standalone) or 2 (vet mode) when any finding is reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
	"github.com/datastates/mlpoffload/tools/analyzers/loader"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/aioop"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/bufown"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/clockcheck"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/deadlinecheck"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/pinpair"
	"github.com/datastates/mlpoffload/tools/analyzers/passes/unsafeconfine"
)

var analyzers = []*analysis.Analyzer{
	clockcheck.Analyzer,
	deadlinecheck.Analyzer,
	bufown.Analyzer,
	pinpair.Analyzer,
	aioop.Analyzer,
	unsafeconfine.Analyzer,
}

func main() {
	// The go vet driver probes its tool before use: -V=full must print a
	// version line, -flags the extra flags the tool accepts (none).
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// The go command derives a tool ID from this line and requires
			// the buildID= token; hash the binary so rebuilding mlpvet
			// invalidates vet's caches.
			exe, _ := os.Executable()
			data, _ := os.ReadFile(exe)
			fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(exe), sha256.Sum256(data))
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}

	tests := flag.Bool("tests", false, "also analyze _test.go files")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loader.Load(patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlpvet:", err)
		os.Exit(1)
	}
	n := 0
	for _, pkg := range pkgs {
		n += runAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, os.Stdout)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "mlpvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// runAnalyzers applies every analyzer to one package and prints its
// diagnostics sorted by position, returning the count.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, w io.Writer) int {
	type finding struct {
		pos      token.Position
		analyzer string
		message  string
	}
	var findings []finding
	for _, a := range analyzers {
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, finding{fset.Position(d.Pos), name, d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "mlpvet: %s on %s: %v\n", a.Name, pkg.Path(), err)
			os.Exit(1)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		fmt.Fprintf(w, "%s: [%s] %s\n", f.pos, f.analyzer, f.message)
	}
	return len(findings)
}

// vetConfig is the subset of the go vet unitchecker config mlpvet reads.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// vetUnit analyzes one compilation unit handed over by `go vet
// -vettool`. mlpvet keeps no cross-package facts, so the vetx exchange
// file is always empty; VetxOnly units (dependencies loaded for facts
// only) are satisfied by just writing it.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlpvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mlpvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "mlpvet:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	// The source importer resolves in-module paths relative to the
	// working directory; run from the unit's own directory.
	if cfg.Dir != "" {
		if err := os.Chdir(cfg.Dir); err != nil {
			fmt.Fprintln(os.Stderr, "mlpvet:", err)
			return 1
		}
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlpvet:", err)
			return 1
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlpvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	n := runAnalyzers(fset, files, pkg, info, os.Stderr)
	writeVetx()
	if n > 0 {
		return 2
	}
	return 0
}
