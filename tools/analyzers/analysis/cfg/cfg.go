// Package cfg builds intra-procedural control-flow graphs over Go
// function bodies, in the spirit of golang.org/x/tools/go/cfg. The
// path-sensitive mlpvet analyzers (bufown's buffer-ownership tracking,
// pinpair's Pin/Unpin pairing) walk these graphs instead of the raw AST
// so that "on every path to a return" means exactly that.
//
// A Block holds the atomic nodes executed in order when control enters
// it: simple statements, and the evaluated sub-parts of composite
// statements (an if condition, a for post statement, a range operand).
// Composite statements never appear whole in a block — their bodies live
// in successor blocks — so an analyzer may ast.Inspect every node of a
// block without double-visiting controlled code. Function literals are
// not inlined: a FuncLit appears inside the statement that mentions it,
// and its body is a separate function for analysis purposes.
//
// Terminator calls (panic, os.Exit) end a path without an edge to Exit:
// an obligation still pending on a panicking path is not a "leaks before
// return" finding, the process is unwinding.
package cfg

import (
	"go/ast"
)

// Block is one basic block: nodes executed in order, then a transfer to
// one of Succs (an empty Succs on a non-Exit block means the path ends —
// a terminator call or unreachable code).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks[0] is Entry, Blocks[1] is Exit. Exit has no nodes; every
	// return statement and the fall-off-the-end path edge into it.
	Blocks []*Block

	// Defers are the defer statements seen anywhere in the body. They
	// run at every exit from the function, so analyzers treat an
	// obligation discharged in a defer as discharged on all paths.
	Defers []*ast.DeferStmt
}

// Entry is the block control enters first.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// Exit is the synthetic block every return reaches.
func (c *CFG) Exit() *Block { return c.Blocks[1] }

// New builds the CFG of one function body. isTerminator reports whether
// a call expression ends the path without returning (panic, os.Exit);
// pass nil for the default (panic and os.Exit only — the decision uses
// syntax, not types, so "os" must be the package name in source).
func New(body *ast.BlockStmt, isTerminator func(*ast.CallExpr) bool) *CFG {
	if isTerminator == nil {
		isTerminator = defaultTerminator
	}
	b := &builder{
		cfg:          &CFG{},
		labelBlocks:  map[string]*Block{},
		isTerminator: isTerminator,
	}
	entry := b.newBlock()
	exit := b.newBlock()
	b.exit = exit
	b.cur = entry
	b.stmtList(body.List)
	b.jump(exit)
	return b.cfg
}

// defaultTerminator recognizes panic(...) and os.Exit(...) syntactically.
func defaultTerminator(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// loopCtx is one enclosing breakable construct: loops also accept
// continue (cont non-nil); switch/select accept only break.
type loopCtx struct {
	label string
	brk   *Block
	cont  *Block
}

type builder struct {
	cfg          *CFG
	cur          *Block // nil while the current point is unreachable
	exit         *Block
	loops        []loopCtx
	labelBlocks  map[string]*Block // goto/label targets
	pendingLabel string
	fallTarget   *Block // next case body during switch construction
	isTerminator func(*ast.CallExpr) bool
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends an executed node to the current block.
func (b *builder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// edge adds from→to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump edges the current block to target and leaves the current point
// unreachable.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
	b.cur = nil
}

// startBlock makes a fresh block the current point, with an edge from
// the previous current block when it was reachable.
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// labelBlock returns (creating on first use) the block a label names, so
// forward gotos resolve without a second pass.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labelBlocks[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labelBlocks[name] = blk
	return blk
}

func (b *builder) findLoop(label string, needCont bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := &b.loops[i]
		if label != "" && l.label != label {
			continue
		}
		if needCont && l.cont == nil {
			continue
		}
		return l
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label attached to the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.EmptyStmt:
		// nothing

	case *ast.LabeledStmt:
		blk := b.labelBlock(s.Label.Name)
		b.jump(blk)
		b.cur = blk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isTerminator(call) {
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.exit)

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if l := b.findLoop(label, false); l != nil {
				b.jump(l.brk)
			} else {
				b.cur = nil
			}
		case "continue":
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if l := b.findLoop(label, true); l != nil {
				b.jump(l.cont)
			} else {
				b.cur = nil
			}
		case "goto":
			b.jump(b.labelBlock(s.Label.Name))
		case "fallthrough":
			if b.fallTarget != nil {
				b.jump(b.fallTarget)
			} else {
				b.cur = nil
			}
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		// then
		b.startBlock()
		b.stmtList(s.Body.List)
		b.jump(join)
		// else
		if s.Else != nil {
			b.cur = b.newBlock()
			if cond != nil {
				edge(cond, b.cur)
			}
			b.stmt(s.Else)
			b.jump(join)
		} else if cond != nil {
			edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			edge(head, after)
		}
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
		} else {
			post = head
		}
		b.loops = append(b.loops, loopCtx{label: label, brk: after, cont: post})
		b.cur = b.newBlock()
		edge(head, b.cur)
		b.stmtList(s.Body.List)
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		// The per-iteration key/value assignment happens at the head.
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		after := b.newBlock()
		edge(head, after)
		b.loops = append(b.loops, loopCtx{label: label, brk: after, cont: head})
		b.cur = b.newBlock()
		edge(head, b.cur)
		b.stmtList(s.Body.List)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, func(c *ast.CaseClause) {
			for _, e := range c.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		join := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, brk: join})
		anyClause := false
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			anyClause = true
			b.cur = b.newBlock()
			if head != nil {
				edge(head, b.cur)
			}
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if !anyClause {
			// select{} blocks forever.
			b.cur = nil
			return
		}
		b.cur = join

	default:
		// AssignStmt, DeclStmt, SendStmt, IncDecStmt, GoStmt, and
		// anything exotic: a straight-line node.
		b.add(s)
	}
}

// switchBody builds the clause blocks of a switch or type switch. Every
// clause gets an edge from the dispatch block; fallthrough edges to the
// next clause's body. A missing default adds a dispatch→join edge.
func (b *builder) switchBody(label string, body *ast.BlockStmt, caseExprs func(*ast.CaseClause)) {
	dispatch := b.cur
	join := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, brk: join})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		if dispatch != nil {
			edge(dispatch, blocks[i])
		}
	}
	hasDefault := false
	for i, c := range clauses {
		if c.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		if caseExprs != nil && c.List != nil {
			caseExprs(c)
		}
		if i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmtList(c.Body)
		b.fallTarget = nil
		b.jump(join)
	}
	if !hasDefault && dispatch != nil {
		edge(dispatch, join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}
