package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function and returns its CFG plus a
// renderer for assertions.
func build(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body, nil), fset
}

// render prints "i: node; node → succs" per block for debugging and
// shape assertions.
func render(c *CFG, fset *token.FileSet) string {
	var out strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&out, "%d:", b.Index)
		for _, n := range b.Nodes {
			var buf bytes.Buffer
			printer.Fprint(&buf, fset, n)
			fmt.Fprintf(&out, " [%s]", strings.Join(strings.Fields(buf.String()), " "))
		}
		fmt.Fprintf(&out, " ->")
		for _, s := range b.Succs {
			fmt.Fprintf(&out, " %d", s.Index)
		}
		fmt.Fprintln(&out)
	}
	return out.String()
}

// reaches reports whether dst is reachable from src.
func reaches(src, dst *Block) bool {
	seen := map[*Block]bool{}
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == dst {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(src)
}

// blockOf finds the block containing a node whose printed form contains
// needle.
func blockOf(t *testing.T, c *CFG, fset *token.FileSet, needle string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			var buf bytes.Buffer
			printer.Fprint(&buf, fset, n)
			if strings.Contains(buf.String(), needle) {
				return b
			}
		}
	}
	t.Fatalf("no block contains %q in:\n%s", needle, render(c, fset))
	return nil
}

func TestIfEarlyReturn(t *testing.T) {
	c, fset := build(t, `
		a()
		if cond() {
			return
		}
		b()
	`)
	aB := blockOf(t, c, fset, "a()")
	bB := blockOf(t, c, fset, "b()")
	if !reaches(aB, bB) {
		t.Errorf("a() should reach b():\n%s", render(c, fset))
	}
	if !reaches(aB, c.Exit()) {
		t.Errorf("a() should reach exit")
	}
	// The then-branch returns: its block must reach exit without b().
	retB := blockOf(t, c, fset, "return")
	if reaches(retB, bB) {
		t.Errorf("return path must not reach b():\n%s", render(c, fset))
	}
}

func TestForBreakContinue(t *testing.T) {
	c, fset := build(t, `
		for i := 0; i < n; i++ {
			if x() {
				continue
			}
			if y() {
				break
			}
			body()
		}
		after()
	`)
	bodyB := blockOf(t, c, fset, "body()")
	afterB := blockOf(t, c, fset, "after()")
	incB := blockOf(t, c, fset, "i++")
	if !reaches(bodyB, incB) {
		t.Errorf("body() should reach i++ (loop back):\n%s", render(c, fset))
	}
	if !reaches(bodyB, afterB) {
		t.Errorf("body() should reach after() via loop exit")
	}
	// continue skips y()/body() on its path: the continue edge lands on
	// the post statement.
	xB := blockOf(t, c, fset, "x()")
	if !reaches(xB, incB) {
		t.Errorf("continue should reach i++")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	c, fset := build(t, `
		switch v {
		case 1:
			one()
			fallthrough
		case 2:
			two()
		default:
			def()
		}
		after()
	`)
	oneB := blockOf(t, c, fset, "one()")
	twoB := blockOf(t, c, fset, "two()")
	defB := blockOf(t, c, fset, "def()")
	if !reaches(oneB, twoB) {
		t.Errorf("fallthrough: one() should reach two():\n%s", render(c, fset))
	}
	if reaches(oneB, defB) {
		t.Errorf("one() must not reach def()")
	}
	afterB := blockOf(t, c, fset, "after()")
	for _, b := range []*Block{oneB, twoB, defB} {
		if !reaches(b, afterB) {
			t.Errorf("case should reach after():\n%s", render(c, fset))
		}
	}
}

func TestTerminatorEndsPath(t *testing.T) {
	c, fset := build(t, `
		a()
		if bad {
			panic("x")
		}
		b()
	`)
	panicB := blockOf(t, c, fset, `panic("x")`)
	if reaches(panicB, c.Exit()) {
		t.Errorf("panic path must not reach exit:\n%s", render(c, fset))
	}
	if reaches(panicB, blockOf(t, c, fset, "b()")) {
		t.Errorf("panic path must not reach b()")
	}
}

func TestDefersCollected(t *testing.T) {
	c, _ := build(t, `
		defer cleanup()
		if x {
			defer other()
		}
	`)
	if len(c.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(c.Defers))
	}
}

func TestGotoForward(t *testing.T) {
	c, fset := build(t, `
		a()
		if bad {
			goto out
		}
		b()
	out:
		after()
	`)
	aB := blockOf(t, c, fset, "a()")
	bB := blockOf(t, c, fset, "b()")
	afterB := blockOf(t, c, fset, "after()")
	if !reaches(aB, afterB) || !reaches(bB, afterB) {
		t.Errorf("goto target should be reachable:\n%s", render(c, fset))
	}
	// The goto path skips b().
	gotoSrc := blockOf(t, c, fset, "bad")
	_ = gotoSrc
	if !reaches(aB, bB) {
		t.Errorf("fallthrough path should reach b()")
	}
}

func TestRangeLoop(t *testing.T) {
	c, fset := build(t, `
		for _, v := range xs {
			if skip(v) {
				continue
			}
			use(v)
		}
		after()
	`)
	useB := blockOf(t, c, fset, "use(v)")
	afterB := blockOf(t, c, fset, "after()")
	if !reaches(useB, afterB) {
		t.Errorf("range body should reach after():\n%s", render(c, fset))
	}
	if !reaches(useB, useB) {
		t.Errorf("range body should loop back to itself")
	}
}

func TestSelect(t *testing.T) {
	c, fset := build(t, `
		select {
		case <-ch:
			a()
		case v := <-other:
			b(v)
		}
		after()
	`)
	aB := blockOf(t, c, fset, "a()")
	bB := blockOf(t, c, fset, "b(v)")
	afterB := blockOf(t, c, fset, "after()")
	if !reaches(aB, afterB) || !reaches(bB, afterB) {
		t.Errorf("select branches should reach after():\n%s", render(c, fset))
	}
	if reaches(aB, bB) {
		t.Errorf("select branches must be exclusive")
	}
}
