// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures resolve imports GOPATH-style: import "a/b" loads
// testdata/src/a/b. The harness is hermetic — stdlib packages a fixture
// mentions (time, …) are stub packages in testdata too, so suites run
// without a module proxy, a GOROOT source tree, or the go command. Only
// "unsafe" is built in. Stub functions may be bodiless; the type checker
// does not mind.
//
// Expectations attach to the line of the comment:
//
//	time.Now() // want `direct time\.Now`
//
// Multiple expectations: // want `re1` `re2`. An expectation may also sit
// inside another comment (a //mlpvet:allow directive under test appends
// `// want ...` to its text; package directive strips it from the
// reason).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/datastates/mlpoffload/tools/analyzers/analysis"
)

// Run loads each fixture package and applies a, failing t on any
// mismatch between reported diagnostics and // want expectations in that
// package's files.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range pkgpaths {
		t.Run(path, func(t *testing.T) {
			runOne(t, testdata, a, path)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{testdata: testdata, fset: fset, pkgs: map[string]*types.Package{}}

	files, info, pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

// loader resolves fixture packages from testdata/src, caching by import
// path so mutually-importing fixtures type-check once.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*types.Package
	// infoFor captures the last loaded package's syntax and info for the
	// package under test; dependency loads discard theirs.
}

func (l *loader) load(path string) ([]*ast.File, *types.Info, *types.Package, error) {
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files under %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*fixtureImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pkgs[path] = pkg
	return files, info, pkg, nil
}

type fixtureImporter loader

func (f *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := (*loader)(f)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	_, _, pkg, err := l.load(path)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q (add a stub under testdata/src/%s): %w", path, path, err)
	}
	return pkg, nil
}

// wantSet maps "file:line" to pending expectations.
type wantSet struct {
	fset    *token.FileSet
	pending map[string][]*wantExp
}

type wantExp struct {
	re      *regexp.Regexp
	raw     string
	pos     token.Position
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")
var tokenRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{fset: fset, pending: map[string][]*wantExp{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, tok := range tokenRE.FindAllString(m[1], -1) {
					raw := tok[1 : len(tok)-1]
					if tok[0] == '"' {
						raw = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(raw)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					ws.pending[key] = append(ws.pending[key], &wantExp{re: re, raw: raw, pos: pos})
				}
			}
		}
	}
	return ws
}

func (w *wantSet) match(key, message string) bool {
	for _, exp := range w.pending[key] {
		if !exp.matched && exp.re.MatchString(message) {
			exp.matched = true
			return true
		}
	}
	return false
}

func (w *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, exps := range w.pending {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matched want %q", exp.pos, exp.raw)
			}
		}
	}
}
