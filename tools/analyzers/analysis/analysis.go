// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check with a
// Run function over one type-checked package, and a Pass carries the
// syntax, type information and diagnostic sink for one (analyzer,
// package) pair.
//
// The repository's main module is deliberately zero-dependency and this
// tools module keeps the same discipline (the build environment has no
// module proxy), so instead of importing x/tools we vendor the small
// slice of its surface the mlpvet analyzers need. The shapes are kept
// API-compatible on purpose: if the toolchain ever grows a vendored
// x/tools, each analyzer ports by swapping this import for
// golang.org/x/tools/go/analysis and deleting nothing else.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mlpvet:allow directives. By convention it is the package name.
	Name string

	// Doc is the analyzer's documentation: first line is a summary, the
	// rest explains the invariant it enforces.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// Pass.Report and returns an optional result (unused by mlpvet) and
	// an error for analysis failures (not findings).
	Run func(*Pass) (any, error)
}

// Pass is the interface between the driver and one analyzer run over one
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
