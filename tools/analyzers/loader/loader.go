// Package loader resolves Go package patterns (./...) into parsed,
// type-checked packages for the mlpvet analyzers, using only the go
// command and the standard library: `go list -json` enumerates the
// packages, and go/importer's source importer type-checks imports
// straight from their sources — no export data, no module proxy.
//
// The source importer resolves in-module import paths through go/build,
// which consults the go command relative to the process working
// directory: mlpvet must therefore run from inside the module it
// analyzes (as `go vet` and CI both naturally do).
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output mlpvet needs.
type listEntry struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Load enumerates patterns with the go command and type-checks each
// package. By default only non-test sources are analyzed; includeTests
// adds in-package _test.go files and external _test packages, which
// carry their own allow-directives for legitimate wall-clock use.
func Load(patterns []string, includeTests bool) ([]*Package, error) {
	entries, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
		}
		sets := [][]string{e.GoFiles}
		if includeTests {
			sets = [][]string{append(append([]string{}, e.GoFiles...), e.TestGoFiles...)}
			if len(e.XTestGoFiles) > 0 {
				sets = append(sets, e.XTestGoFiles)
			}
		}
		for i, names := range sets {
			if len(names) == 0 {
				continue
			}
			path := e.ImportPath
			if i > 0 {
				path += "_test"
			}
			pkg, err := check(fset, imp, path, e.Dir, names)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func goList(patterns []string) ([]listEntry, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func check(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
