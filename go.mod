module github.com/datastates/mlpoffload

go 1.24
