// Realmodel: pre-train a real (tiny) GPT through the full MLP-Offload
// pipeline. The transformer's forward and hand-written backward passes
// (gradient-checked in the test suite) produce the gradients; the engine
// keeps the FP16 working copy "on device", offloads the FP32 Adam state
// across two storage tiers, and the next-token loss falls — demonstrating
// that the offloading machinery is transparent to real training.
package main

import (
	"fmt"
	"log"

	mlpoffload "github.com/datastates/mlpoffload"
)

func main() {
	gpt, err := mlpoffload.NewGPT(mlpoffload.GPTConfig{
		Vocab: 32, Seq: 16, Dim: 32, Heads: 4, Layers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := gpt.ParamCount()
	fmt.Printf("GPT: %d parameters (optimizer state: %d bytes FP32 P/M/V)\n",
		params, params*12)

	// Training corpus: a deterministic token pattern the model can learn.
	tokens := make([]int, 16)
	for i := range tokens {
		tokens[i] = (i*5 + 3) % 32
	}

	init := make([]float32, params)
	if err := gpt.Init(init, 1234); err != nil {
		log.Fatal(err)
	}
	scratch := make([]float32, params)

	tiers := []mlpoffload.TierSpec{
		{Tier: mlpoffload.NewMemTier("nvme"), ReadBW: 2e9, WriteBW: 2e9},
		{Tier: mlpoffload.NewMemTier("pfs"), ReadBW: 1e9, WriteBW: 1e9, Persistent: true},
	}
	cfg := mlpoffload.MLPConfig(0, params, params/8+1, tiers, mlpoffload.NewNodeLocks(true))
	cfg.InitParams = func(i int64) float32 { return init[i] }
	cfg.Hyper.LR = 3e-3
	cfg.ClipNorm = 5
	cfg.BatchGrad = func(_ int, p16 []mlpoffload.FP16, out []float32) error {
		mlpoffload.DecodeFP16(scratch, p16)
		for i := range out {
			out[i] = 0
		}
		_, err := gpt.Backward(scratch, tokens, out)
		return err
	}

	eng, err := mlpoffload.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	loss := func() float64 {
		mlpoffload.DecodeFP16(scratch, eng.Params16())
		l, err := gpt.Loss(scratch, tokens)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}

	fmt.Printf("initial LM loss: %.4f (ln(32) = 3.47 would be uniform)\n", loss())
	for i := 0; i < 400; i++ {
		if _, err := eng.TrainIteration(i); err != nil {
			log.Fatal(err)
		}
		if (i+1)%100 == 0 {
			fmt.Printf("iter %3d: loss %.4f\n", i+1, loss())
		}
	}
	m := eng.Series().Mean()
	fmt.Printf("\noffload machinery during training: %.0f KB fetched/iter, hit rate %.0f%%, placement %s\n",
		m.BytesRead/1024, m.HitRate()*100, eng.Plan().Ratio())
	if final := loss(); final < 1.0 {
		fmt.Printf("OK: model memorized the sequence (loss %.4f) with its optimizer state offloaded\n", final)
	} else {
		fmt.Printf("loss %.4f — expected < 1.0\n", final)
	}
}
