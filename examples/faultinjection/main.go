// Command faultinjection demonstrates — and smoke-tests in CI — the tier
// middleware's resilience story end to end:
//
//  1. Transient corruption (bit flips in flight, injected under the
//     codec): CRC32-C integrity detects each one, the engine's retry
//     path re-reads the intact stored object, and training finishes with
//     exactly the same parameters as an unfaulted run.
//  2. Persistent corruption (bit rot in the stored object): every
//     re-read fails the checksum, and the engine fails the iteration
//     cleanly with the typed ErrCorruptObject instead of consuming
//     garbage.
//  3. Injected I/O errors: a failing write surfaces as a clean phase
//     error through the same path.
//
// The process exits non-zero if any of those behaviours is violated, so
// running it on every push pins the corruption-handling contract.
package main

import (
	"errors"
	"fmt"
	"os"

	mlpoffload "github.com/datastates/mlpoffload"
)

const (
	params   = 800
	subgroup = 100
	iters    = 4
)

var codec = mlpoffload.CodecSpec{Compression: "flate", Integrity: true}

// mkConfig builds a single-tier MLP configuration over the given store.
func mkConfig(tier mlpoffload.Tier) mlpoffload.EngineConfig {
	cfg := mlpoffload.MLPConfig(0, params, subgroup,
		[]mlpoffload.TierSpec{{Tier: tier, ReadBW: 500e6, WriteBW: 500e6, Codec: codec}}, nil)
	cfg.AdaptivePlacement = false
	cfg.Grad = mlpoffload.QuadraticGradFn(3)
	// The fault tier's every-Nth counter is shared by all readers, so a
	// retry's own re-read can (rarely) land on a multiple of N and be
	// flipped again; a generous retry budget keeps this CI gate
	// deterministic while still proving persistent rot is not retried
	// forever (scenario 2 fails within the same budget).
	cfg.CorruptRetries = 8
	return cfg
}

// train runs the full loop and gathers the final parameters; it returns
// the first iteration error instead of failing, so callers can assert on
// both clean and failing runs.
func train(eng *mlpoffload.Engine) ([]float32, error) {
	for i := 0; i < iters; i++ {
		if _, err := eng.TrainIteration(i); err != nil {
			return nil, err
		}
	}
	out := make([]float32, params)
	if err := eng.GatherParams(out); err != nil {
		return nil, err
	}
	return out, nil
}

func main() {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "faultinjection: "+format+"\n", args...)
		os.Exit(1)
	}

	// Reference: no faults.
	ref, err := mlpoffload.NewEngine(mkConfig(mlpoffload.NewMemTier("nvme")))
	if err != nil {
		fail("%v", err)
	}
	want, err := train(ref)
	if err != nil {
		fail("reference run: %v", err)
	}
	ref.Close()

	// 1. Transient corruption: every 4th read is flipped in flight.
	fault := mlpoffload.NewFaultTier(mlpoffload.NewMemTier("nvme"),
		mlpoffload.FaultConfig{CorruptReadEvery: 4})
	eng, err := mlpoffload.NewEngine(mkConfig(fault))
	if err != nil {
		fail("%v", err)
	}
	got, err := train(eng)
	if err != nil {
		fail("training under transient corruption must survive, got: %v", err)
	}
	retries := eng.IntegrityRetries()
	if retries == 0 {
		fail("no integrity retries despite injected corruption (%+v)", fault.FaultStats())
	}
	for i := range want {
		if got[i] != want[i] {
			fail("param %d differs under transient corruption: %v vs %v", i, got[i], want[i])
		}
	}
	eng.Close()
	fmt.Printf("transient corruption: %d flips injected, %d retried, parameters bit-identical\n",
		fault.FaultStats().CorruptReads, retries)

	// 2. Persistent corruption: every 3rd stored object is bit-rotted.
	rot := mlpoffload.NewFaultTier(mlpoffload.NewMemTier("nvme"),
		mlpoffload.FaultConfig{CorruptWriteEvery: 3})
	eng2, err := mlpoffload.NewEngine(mkConfig(rot))
	if err != nil {
		fail("%v", err)
	}
	_, err = train(eng2)
	if err == nil {
		fail("training over bit-rotted objects must fail, not consume garbage")
	}
	if !errors.Is(err, mlpoffload.ErrCorruptObject) {
		fail("persistent corruption surfaced as %v, want ErrCorruptObject", err)
	}
	eng2.Close()
	fmt.Printf("persistent corruption: detected and failed cleanly: %v\n", err)

	// 3. Injected write errors fail the phase cleanly too.
	flaky := mlpoffload.NewFaultTier(mlpoffload.NewMemTier("nvme"),
		mlpoffload.FaultConfig{FailWriteEvery: 5})
	eng3, err := mlpoffload.NewEngine(mkConfig(flaky))
	if err == nil {
		_, err = train(eng3)
		eng3.Close()
	}
	if err == nil {
		fail("training over a failing tier must surface the error")
	}
	fmt.Printf("injected write error: surfaced cleanly: %v\n", err)
	fmt.Println("fault-injection smoke passed")
}
