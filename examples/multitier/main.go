// Multitier: the laptop-scale analogue of the paper's headline experiment.
// Four worker engines (one per simulated GPU) share bandwidth-throttled
// NVMe and PFS tiers on one "node"; we train the same scaled-down shard
// under the DeepSpeed-ZeRO-3 baseline and under MLP-Offload and compare
// iteration times — every byte really moves through the throttled tiers.
//
// The second act demonstrates plan convergence: mid-run, the PFS slows to
// a crawl (external load on the shared file system); adaptive placement
// replans toward the NVMe and the live migrator moves the displaced
// subgroups at Migration priority until reality matches the plan again.
package main

import (
	"fmt"
	"log"
	"sync"

	mlpoffload "github.com/datastates/mlpoffload"
)

const (
	paramsPerWorker = 1_500_000
	subgroupParams  = 150_000
	iterations      = 5
	workers         = 4
)

// Table-1 bandwidth ratios scaled to ~1/10000 so an iteration takes
// milliseconds: NVMe 690/530 KB/s -> use MB/s scale for speed.
func tiers(includePFS bool) []mlpoffload.TierSpec {
	nvme := mlpoffload.NewThrottledTier(mlpoffload.NewMemTier("nvme"),
		mlpoffload.ThrottleSpec{ReadBW: 69e6, WriteBW: 53e6, InterferenceAlpha: 0.2})
	out := []mlpoffload.TierSpec{{Tier: nvme, ReadBW: 69e6, WriteBW: 53e6}}
	if includePFS {
		pfs := mlpoffload.NewThrottledTier(mlpoffload.NewMemTier("pfs"),
			mlpoffload.ThrottleSpec{ReadBW: 36e6, WriteBW: 36e6, InterferenceAlpha: 0.1})
		out = append(out, mlpoffload.TierSpec{Tier: pfs, ReadBW: 36e6, WriteBW: 36e6})
	}
	return out
}

// trainNode runs `workers` engines concurrently and returns the mean
// iteration time across workers.
func trainNode(mode string) float64 {
	ts := tiers(mode == "mlp")
	locks := mlpoffload.NewNodeLocks(mode == "mlp")
	var wg sync.WaitGroup
	totals := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var cfg mlpoffload.EngineConfig
			if mode == "mlp" {
				cfg = mlpoffload.MLPConfig(rank, paramsPerWorker, subgroupParams, ts, locks)
			} else {
				cfg = mlpoffload.BaselineConfig(rank, paramsPerWorker, subgroupParams, ts)
			}
			eng, err := mlpoffload.NewEngine(cfg)
			if err != nil {
				log.Fatal(err)
			}
			defer eng.Close()
			for i := 0; i < iterations; i++ {
				if _, err := eng.TrainIteration(i); err != nil {
					log.Fatal(err)
				}
			}
			totals[rank] = eng.Series().Mean().Phases.Total()
		}(w)
	}
	wg.Wait()
	sum := 0.0
	for _, t := range totals {
		sum += t
	}
	return sum / workers
}

// convergenceDemo trains one MLP-Offload worker, slows the PFS mid-run,
// and traces how the placement plan and the live migrator converge the
// subgroup layout onto the new bandwidth reality.
func convergenceDemo() {
	// Bursts below one subgroup object (1.8 MB here) so the *observed*
	// per-transfer bandwidth tracks the configured rates and the
	// estimator sees the slowdown.
	const burst = 1 << 20
	nvme := mlpoffload.NewThrottledTier(mlpoffload.NewMemTier("nvme"),
		mlpoffload.ThrottleSpec{ReadBW: 200e6, WriteBW: 200e6, ReadBurst: burst, WriteBurst: burst})
	pfs := mlpoffload.NewThrottledTier(mlpoffload.NewMemTier("pfs"),
		mlpoffload.ThrottleSpec{ReadBW: 100e6, WriteBW: 100e6, ReadBurst: burst, WriteBurst: burst})
	ts := []mlpoffload.TierSpec{
		{Tier: nvme, ReadBW: 200e6, WriteBW: 200e6},
		{Tier: pfs, ReadBW: 100e6, WriteBW: 100e6},
	}
	cfg := mlpoffload.MLPConfig(0, paramsPerWorker, subgroupParams, ts, nil)
	eng, err := mlpoffload.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Println("\nplan convergence under a mid-run PFS slowdown (1 worker):")
	fmt.Printf("%-5s %-22s %-11s %-11s\n", "iter", "plan", "misplaced", "migrations")
	const slowdownAt = 3
	for i := 0; i < 10; i++ {
		if i == slowdownAt {
			pfs.SetRates(10e6, 10e6) // external load: PFS drops to 1/10th
			fmt.Println("      >>> pfs collapses to 10 MB/s <<<")
		}
		if _, err := eng.TrainIteration(i); err != nil {
			log.Fatal(err)
		}
		eng.Drain() // quiesce migrations so the placement snapshot is stable
		st := eng.MigrationStats()
		fmt.Printf("%-5d %-22s %-11d %-11d\n",
			i, eng.Plan().Ratio(), eng.MisplacedSubgroups(), st.Moves)
	}
	if eng.MisplacedSubgroups() == 0 {
		fmt.Println("placement converged: every subgroup is on its planned tier")
	}
}

func main() {
	fmt.Println("training 4 workers x 1.5M params on one throttled node...")
	base := trainNode("baseline")
	fmt.Printf("DeepSpeed ZeRO-3 (NVMe only, sequential, grad flush): %.3fs/iter\n", base)
	mlp := trainNode("mlp")
	fmt.Printf("MLP-Offload (NVMe+PFS, alternating, skip grads):      %.3fs/iter\n", mlp)
	fmt.Printf("speedup: %.2fx (paper reports ~2.5x at 40B-280B scale)\n", base/mlp)
	convergenceDemo()
}
