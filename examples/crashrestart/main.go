// Crashrestart: checkpoint/resume as a first-class workload. A two-worker
// training node runs on file-backed tiers, commits a coordinated
// checkpoint mid-run, and then "crashes": the node is torn down and the
// volatile node-local NVMe directory is wiped, leaving only the persistent
// PFS (holding the pre-staged snapshots) and the checkpoint directory. A
// freshly built node resumes from the manifests and trains to the end —
// and the result must be bit-identical to a run that was never
// interrupted.
//
// The gradients depend on the parameters (quadratic objective), so any
// state the restore got wrong — master params, Adam moments, step count,
// update-phase order — would diverge immediately.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	mlpoffload "github.com/datastates/mlpoffload"
)

const (
	workers         = 2
	paramsPerWorker = 600
	subgroupParams  = 100
	totalIters      = 6
	crashAfter      = 3
	prefix          = "crashdemo"
)

// buildNode assembles a two-tier MLP-Offload node under base: a volatile
// "nvme" directory and a persistent "pfs" directory (checkpoint
// pre-staging needs at least one tier that survives teardown).
func buildNode(base string) *mlpoffload.TrainNode {
	nvme, err := mlpoffload.NewFileTier("nvme", filepath.Join(base, "nvme"))
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := mlpoffload.NewFileTier("pfs", filepath.Join(base, "pfs"))
	if err != nil {
		log.Fatal(err)
	}
	n, err := mlpoffload.NewTrainNode(mlpoffload.TrainNodeConfig{
		Workers:         workers,
		ParamsPerWorker: paramsPerWorker,
		SubgroupParams:  subgroupParams,
		Tiers: []mlpoffload.TierSpec{
			{Tier: nvme, ReadBW: 690e6, WriteBW: 530e6},
			{Tier: pfs, ReadBW: 360e6, WriteBW: 360e6, Persistent: true},
		},
		MLP: true,
		Mutate: func(_ int, cfg *mlpoffload.EngineConfig) {
			cfg.Grad = mlpoffload.QuadraticGradFn(2)
			cfg.Hyper.LR = 0.02
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func train(n *mlpoffload.TrainNode, iters int) {
	for i := 0; i < iters; i++ {
		if _, err := n.TrainIteration(); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	ctx := context.Background()
	base, err := os.MkdirTemp("", "crashrestart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// Reference: the same training, never interrupted.
	ref := buildNode(filepath.Join(base, "ref"))
	train(ref, totalIters)
	want, err := ref.GatherAll()
	if err != nil {
		log.Fatal(err)
	}
	ref.Close()

	// Interrupted run: train, checkpoint, crash.
	runDir := filepath.Join(base, "run")
	n := buildNode(runDir)
	train(n, crashAfter)
	ckptTier, err := mlpoffload.NewFileTier("ckpt", filepath.Join(runDir, "ckpt"))
	if err != nil {
		log.Fatal(err)
	}
	mans, err := n.Checkpoint(ctx, ckptTier, prefix)
	if err != nil {
		log.Fatal(err)
	}
	for rank, m := range mans {
		fmt.Printf("rank %d checkpoint step %d: pre-staging saved %.0f%% of checkpoint I/O\n",
			rank, m.Step, m.Savings()*100)
	}
	n.Close()
	// The crash takes the node-local NVMe with it; only the PFS and the
	// checkpoint directory survive.
	if err := os.RemoveAll(filepath.Join(runDir, "nvme")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed after iteration %d (nvme wiped)\n", crashAfter)

	// Restart: a fresh node resumes from the manifests.
	n2 := buildNode(runDir)
	defer n2.Close()
	ckptTier2, err := mlpoffload.NewFileTier("ckpt", filepath.Join(runDir, "ckpt"))
	if err != nil {
		log.Fatal(err)
	}
	step, err := n2.Resume(ctx, ckptTier2, prefix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed at iteration %d\n", step)
	train(n2, totalIters-step)

	got, err := n2.GatherAll()
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			fmt.Printf("MISMATCH at param %d: resumed %v vs uninterrupted %v\n", i, got[i], want[i])
			os.Exit(1)
		}
	}
	fmt.Printf("resumed run is bit-identical to the uninterrupted run (%d params across %d workers)\n",
		len(want), workers)
}
