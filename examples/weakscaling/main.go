// Weakscaling: reproduce the paper's Figure 11/12 sweep with the
// paper-scale simulator — model size grows with node count on Testbed-2
// (Polaris, 4xA100-40GB per node) up to 280B parameters on 32 GPUs.
package main

import (
	"fmt"
	"log"

	mlpoffload "github.com/datastates/mlpoffload"
)

func main() {
	cases := []struct {
		model string
		nodes int
	}{
		{"40B", 1}, {"70B", 2}, {"100B", 3}, {"130B", 4}, {"280B", 8},
	}
	fmt.Printf("%-6s %-6s %-22s %-22s %-8s\n", "model", "gpus", "DeepSpeed ZeRO-3 (s)", "MLP-Offload (s)", "speedup")
	for _, c := range cases {
		m, err := mlpoffload.ModelByName(c.model)
		if err != nil {
			log.Fatal(err)
		}
		run := func(ap mlpoffload.SimApproach) *mlpoffload.SimResult {
			r, err := mlpoffload.RunSim(mlpoffload.SimConfig{
				Testbed: mlpoffload.Testbed2(), Model: m, Nodes: c.nodes,
				Approach: ap, Iterations: 6, Warmup: 2, TraceIteration: -1,
			})
			if err != nil {
				log.Fatal(err)
			}
			return r
		}
		ds := run(mlpoffload.DeepSpeedZeRO3())
		mlp := run(mlpoffload.MLPOffload())
		fmt.Printf("%-6s %-6d %-22.1f %-22.1f %.2fx\n",
			c.model, c.nodes*4, ds.IterTime(), mlp.IterTime(), ds.IterTime()/mlp.IterTime())
	}
	fmt.Println("\npaper: MLP-Offload sustains ~2x faster iterations at scale (Fig. 11)")
}
