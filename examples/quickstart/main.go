// Quickstart: build an MLP-Offload engine over two in-memory storage
// tiers, train a few iterations with a quadratic objective, and verify
// that every parameter converged through the full offload path
// (serialization → tier → fetch → FP16→FP32 conversion → Adam → FP16 h2d).
package main

import (
	"fmt"
	"log"

	mlpoffload "github.com/datastates/mlpoffload"
)

func main() {
	// Two storage paths form the virtual third-level tier; nominal
	// bandwidths drive the Eq. 1 subgroup placement (here 2:1).
	tiers := []mlpoffload.TierSpec{
		{Tier: mlpoffload.NewMemTier("nvme"), ReadBW: 2e9, WriteBW: 2e9},
		{Tier: mlpoffload.NewMemTier("pfs"), ReadBW: 1e9, WriteBW: 1e9},
	}
	locks := mlpoffload.NewNodeLocks(true)

	const params, subgroup = 100_000, 10_000
	cfg := mlpoffload.MLPConfig(0, params, subgroup, tiers, locks)
	cfg.Hyper.LR = 0.05
	cfg.Grad = mlpoffload.QuadraticGradFn(1.5) // train every param toward 1.5

	eng, err := mlpoffload.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Printf("subgroups: %d, placement: %s\n", eng.Subgroups(), eng.Plan().Ratio())
	for i := 0; i < 150; i++ {
		it, err := eng.TrainIteration(i)
		if err != nil {
			log.Fatal(err)
		}
		if i%30 == 0 {
			fmt.Printf("iter %3d: update %.4fs, cache hits %d/%d\n",
				i, it.Phases.Update, it.CacheHits, it.CacheHits+it.CacheMisses)
		}
	}

	// Pull back the FP32 master parameters and check convergence.
	out := make([]float32, params)
	if err := eng.GatherParams(out); err != nil {
		log.Fatal(err)
	}
	var worst float64
	for _, p := range out {
		d := float64(p) - 1.5
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("max |param - target| after training: %.4f (want < 0.05)\n", worst)
	if worst > 0.05 {
		log.Fatal("convergence failed — the offload path corrupted state")
	}
	fmt.Println("OK: all parameters converged through the offload path")
}
