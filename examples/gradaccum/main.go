// Gradaccum: gradient accumulation on the real engine — several backward
// passes per update phase amortize the expensive offloaded update (the
// paper's Figure 13 scenario), and the accumulated FP16 gradients remain
// numerically correct through the offload path.
package main

import (
	"fmt"
	"log"

	mlpoffload "github.com/datastates/mlpoffload"
)

func main() {
	const params, subgroup = 400_000, 50_000
	for _, accum := range []int{1, 2, 4, 8} {
		tiers := []mlpoffload.TierSpec{{
			Tier: mlpoffload.NewThrottledTier(mlpoffload.NewMemTier("nvme"),
				mlpoffload.ThrottleSpec{ReadBW: 50e6, WriteBW: 40e6}),
			ReadBW: 50e6, WriteBW: 40e6,
		}}
		cfg := mlpoffload.MLPConfig(0, params, subgroup, tiers, mlpoffload.NewNodeLocks(true))
		cfg.GradAccumSteps = accum
		// Constant gradient of 1/accum: the accumulated total is 1.0
		// regardless of accum, so the parameter trajectory is identical.
		step := float32(1.0) / float32(accum)
		cfg.Grad = func(_ int, _ int64, _ float32) float32 { return step }

		eng, err := mlpoffload.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := eng.TrainIteration(i); err != nil {
				log.Fatal(err)
			}
		}
		m := eng.Series().Mean()
		out := make([]float32, params)
		if err := eng.GatherParams(out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("accum=%d (batch x%d): iter=%.3fs bwd=%.3fs upd=%.3fs  param[0]=%.6f\n",
			accum, accum, m.Phases.Total(), m.Phases.Backward, m.Phases.Update, out[0])
		eng.Close()
	}
	fmt.Println("\nparam[0] is identical across accumulation settings: the update")
	fmt.Println("phase cost is amortized over larger effective batches (Fig. 13).")
}
