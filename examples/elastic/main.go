// Elastic: dead-rank recovery as a first-class workload. Three training
// members join a coordinator over loopback TCP and train in lockstep,
// checkpointing every second iteration. After computing iteration 3,
// rank 2 falls silent — heartbeats stop, the connection stays open, as a
// hung process would. The coordinator must detect the death by missed
// heartbeats, pause the survivors at the iteration barrier, roll every
// rank back to the newest checkpoint step all of them hold (step 2: the
// step-4 checkpoint was never coordinated), re-shard the dead rank onto
// a survivor, and finish the run.
//
// The verdict is exact: every rank's final parameters — the adopted
// rank's included — must be bit-identical to a fault-free reference run,
// and the coordinator's per-iteration gradient digests cross-check every
// re-executed iteration on the wire as it happens.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	mlpoffload "github.com/datastates/mlpoffload"
)

const (
	workers   = 3
	params    = 400
	subgroup  = 100
	iters     = 6
	ckptEvery = 2
	killAt    = 3
)

// engineFor builds the deterministic per-rank engine config every
// member (and the reference run) shares: quadratic gradients, a private
// in-memory "nvme" tier per engine.
func engineFor(rank int) (mlpoffload.EngineConfig, error) {
	tiers := []mlpoffload.TierSpec{
		{Tier: mlpoffload.NewMemTier("nvme"), ReadBW: 500e6, WriteBW: 500e6},
	}
	cfg := mlpoffload.MLPConfig(rank, params, subgroup, tiers, nil)
	cfg.AdaptivePlacement = false
	cfg.Grad = mlpoffload.QuadraticGradFn(3)
	return cfg, nil
}

// reference trains one rank standalone, fault-free, and returns its
// final FP32 master parameters.
func reference(rank int) []float32 {
	cfg, err := engineFor(rank)
	if err != nil {
		log.Fatal(err)
	}
	e, err := mlpoffload.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < iters; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			log.Fatalf("reference rank %d iteration %d: %v", rank, i, err)
		}
	}
	out := make([]float32, params)
	if err := e.GatherParams(out); err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	ctx := context.Background()
	coord, err := mlpoffload.NewElasticCoordinator(mlpoffload.ElasticCoordinatorConfig{
		Workers:          workers,
		Iters:            iters,
		CheckpointEvery:  ckptEvery,
		Heartbeat:        10 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		Timeout:          10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator on %s: %d members, %d iters, checkpoint every %d, kill rank 2 after iteration %d\n",
		coord.Addr(), workers, iters, ckptEvery, killAt)

	reportCh := make(chan mlpoffload.ElasticRunReport, 1)
	go func() {
		rep, err := coord.Run(ctx)
		if err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		reportCh <- rep
	}()

	ckpt := mlpoffload.NewMemTier("ckpt")
	members := make([]*mlpoffload.ElasticMember, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := mlpoffload.ElasticMemberConfig{
				Rank:      rank,
				Addr:      coord.Addr(),
				EngineFor: engineFor,
				Ckpt:      ckpt,
				Prefix:    "elastic",
				Timeout:   10 * time.Second,
			}
			if rank == 2 {
				cfg.KillAtIter = killAt
			}
			m, err := mlpoffload.RunElasticMember(ctx, cfg)
			if err != nil {
				log.Fatalf("member %d: %v", rank, err)
			}
			members[rank] = m
		}(rank)
	}
	wg.Wait()
	rep := <-reportCh
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()

	if len(rep.Recoveries) != 1 {
		log.Fatalf("expected exactly one recovery, got %+v", rep.Recoveries)
	}
	rec := rep.Recoveries[0]
	fmt.Printf("death of member %v detected at iteration %d; rolled back to step %d; adoptions %v\n",
		rec.Dead, rec.AtIter, rec.Step, rec.Adoptions)
	if !members[2].Killed() {
		log.Fatal("rank 2 was not killed by the fault hook")
	}
	adopter := rec.Adoptions[2]

	// The exact verdict: every rank bit-identical to its fault-free
	// reference, the adopted rank read back from its adopter.
	for rank := 0; rank < workers; rank++ {
		owner := members[rank]
		if rank == 2 {
			owner = members[adopter]
		}
		got, err := owner.GatherRank(rank)
		if err != nil {
			log.Fatalf("gather rank %d: %v", rank, err)
		}
		want := reference(rank)
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("rank %d param %d: %v != %v — recovery is NOT bit-identical", rank, i, got[i], want[i])
			}
		}
		fmt.Printf("rank %d: %d params bit-identical to the fault-free reference\n", rank, len(want))
	}
	fmt.Printf("OK: %d iterations executed (%d + rollback re-runs), recovery bit-exact\n",
		rep.Iterations, iters)
}
