package des

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var end float64
	s.Spawn("p", func(p *Proc) {
		p.Sleep(1.5)
		p.Sleep(2.5)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 4.0, 1e-12) {
		t.Errorf("end time = %v, want 4.0", end)
	}
}

func TestSpawnAtAndInterleaving(t *testing.T) {
	s := New()
	var order []string
	log := func(tag string, p *Proc) {
		order = append(order, fmt.Sprintf("%s@%.1f", tag, p.Now()))
	}
	s.Spawn("a", func(p *Proc) {
		log("a0", p)
		p.Sleep(2)
		log("a2", p)
	})
	s.SpawnAt(1, "b", func(p *Proc) {
		log("b1", p)
		p.Sleep(2)
		log("b3", p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a0@0.0 b1@1.0 a2@2.0 b3@3.0"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestDeterminismSameSeedSameTrace(t *testing.T) {
	run := func() []float64 {
		s := New()
		var trace []float64
		for i := 0; i < 5; i++ {
			i := i
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(float64(i+1) * 0.1)
					trace = append(trace, p.Now())
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	s := New()
	m := s.NewMutex()
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		s.SpawnAt(float64(i)*0.1, fmt.Sprintf("w%d", i), func(p *Proc) {
			m.Lock(p)
			order = append(order, fmt.Sprintf("%s@%.2f", p.Name(), p.Now()))
			p.Sleep(1)
			m.Unlock(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "w0@0.00 w1@1.00 w2@2.00"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
	if m.TotalWait() <= 0 {
		t.Error("expected queued wait time")
	}
}

func TestMutexTryLock(t *testing.T) {
	s := New()
	m := s.NewMutex()
	var got []bool
	s.Spawn("a", func(p *Proc) {
		got = append(got, m.TryLock(p))
		p.Sleep(1)
		m.Unlock(p)
	})
	s.SpawnAt(0.5, "b", func(p *Proc) {
		got = append(got, m.TryLock(p)) // held by a -> false
		p.Sleep(1)
		got = append(got, m.TryLock(p)) // free at t=1.5 -> true
		m.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryLock results = %v, want %v", got, want)
		}
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	s := New()
	m := s.NewMutex()
	s.Spawn("a", func(p *Proc) { m.Lock(p) })
	s.Spawn("b", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		m.Unlock(p)
	})
	_ = s.Run()
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(2)
	inside := 0
	peak := 0
	for i := 0; i < 6; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			sem.Acquire(p, 1)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(1)
			inside--
			sem.Release(1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
	if s.Now() != 3.0 {
		t.Errorf("end time = %v, want 3 (6 procs / 2 slots * 1s)", s.Now())
	}
	if sem.Available() != 2 {
		t.Errorf("available = %d, want 2", sem.Available())
	}
}

func TestSemaphoreFIFOLargeWaiterNotStarved(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(2)
	var order []string
	s.Spawn("hold", func(p *Proc) {
		sem.Acquire(p, 2)
		p.Sleep(1)
		sem.Release(2)
	})
	s.SpawnAt(0.1, "big", func(p *Proc) {
		sem.Acquire(p, 2)
		order = append(order, fmt.Sprintf("big@%.1f", p.Now()))
		p.Sleep(1)
		sem.Release(2)
	})
	s.SpawnAt(0.2, "small", func(p *Proc) {
		sem.Acquire(p, 1)
		order = append(order, fmt.Sprintf("small@%.1f", p.Now()))
		sem.Release(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO: big (queued first) must be served before small even though
	// small's request could have been satisfied earlier.
	want := "big@1.0 small@2.0"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	m1, m2 := s.NewMutex(), s.NewMutex()
	s.Spawn("a", func(p *Proc) {
		m1.Lock(p)
		p.Sleep(1)
		m2.Lock(p)
	})
	s.Spawn("b", func(p *Proc) {
		m2.Lock(p)
		p.Sleep(1)
		m1.Lock(p)
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q should mention deadlock", err)
	}
}

func TestLinkSingleTransferAtPeak(t *testing.T) {
	s := New()
	l := s.NewLink("nvme", 100, nil) // 100 B/s
	var dur float64
	s.Spawn("p", func(p *Proc) {
		dur = l.Transfer(p, 250)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dur, 2.5, 1e-9) {
		t.Errorf("duration = %v, want 2.5", dur)
	}
	if !almostEqual(l.BytesMoved(), 250, 1e-9) {
		t.Errorf("bytes = %v", l.BytesMoved())
	}
	if !almostEqual(l.BusyTime(), 2.5, 1e-9) {
		t.Errorf("busy = %v", l.BusyTime())
	}
}

func TestLinkFairSharing(t *testing.T) {
	// Two equal transfers started together on an ideal link: each sees
	// half bandwidth, both finish at the same time = 2x single duration.
	s := New()
	l := s.NewLink("x", 100, nil)
	var d1, d2 float64
	s.Spawn("a", func(p *Proc) { d1 = l.Transfer(p, 100) })
	s.Spawn("b", func(p *Proc) { d2 = l.Transfer(p, 100) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d1, 2.0, 1e-9) || !almostEqual(d2, 2.0, 1e-9) {
		t.Errorf("durations = %v, %v, want 2.0 each", d1, d2)
	}
}

func TestLinkLateArrivalSharing(t *testing.T) {
	// a starts a 100B transfer at t=0 (alone: rate 100). b arrives at
	// t=0.5 with 100B. From 0.5 both share 50 B/s. a has 50B left ->
	// finishes at 1.5. Then b alone, 50B left at 100 B/s -> t=2.0.
	s := New()
	l := s.NewLink("x", 100, nil)
	var aEnd, bEnd float64
	s.Spawn("a", func(p *Proc) {
		l.Transfer(p, 100)
		aEnd = p.Now()
	})
	s.SpawnAt(0.5, "b", func(p *Proc) {
		l.Transfer(p, 100)
		bEnd = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(aEnd, 1.5, 1e-9) {
		t.Errorf("a end = %v, want 1.5", aEnd)
	}
	if !almostEqual(bEnd, 2.0, 1e-9) {
		t.Errorf("b end = %v, want 2.0", bEnd)
	}
}

func TestLinkInterferenceCurve(t *testing.T) {
	// With alpha=0.25 and 2 streams, aggregate = 100*1/1.25 = 80, each
	// stream gets 40 B/s. Two 80B transfers -> 2s each.
	s := New()
	l := s.NewLink("x", 100, Interference(0.25))
	var d1, d2 float64
	s.Spawn("a", func(p *Proc) { d1 = l.Transfer(p, 80) })
	s.Spawn("b", func(p *Proc) { d2 = l.Transfer(p, 80) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d1, 2.0, 1e-9) || !almostEqual(d2, 2.0, 1e-9) {
		t.Errorf("durations = %v, %v, want 2.0", d1, d2)
	}
}

func TestLinkSetPeakMidTransfer(t *testing.T) {
	// 200B at 100 B/s; at t=1 the link drops to 50 B/s. 100B remain ->
	// 2 more seconds -> finish at t=3.
	s := New()
	l := s.NewLink("pfs", 100, nil)
	var end float64
	s.Spawn("a", func(p *Proc) {
		l.Transfer(p, 200)
		end = p.Now()
	})
	s.SpawnAt(1, "ctl", func(p *Proc) {
		l.SetPeak(50)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 3.0, 1e-9) {
		t.Errorf("end = %v, want 3.0", end)
	}
}

func TestLinkConservation(t *testing.T) {
	// Property: total bytes moved equals sum of requests, and busy time is
	// at least totalBytes/peak (work conservation bound).
	f := func(sizes [6]uint16, stagger uint8) bool {
		s := New()
		l := s.NewLink("x", 1000, nil)
		total := 0.0
		for i, raw := range sizes {
			size := float64(raw%5000) + 1
			total += size
			delay := float64(i) * float64(stagger%10) * 0.01
			s.SpawnAt(delay, fmt.Sprintf("p%d", i), func(p *Proc) {
				l.Transfer(p, size)
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if !almostEqual(l.BytesMoved(), total, 1e-6) {
			return false
		}
		minBusy := total / 1000
		return l.BusyTime() >= minBusy-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinkExclusiveViaMutexFasterPerOp(t *testing.T) {
	// The core concurrency-control claim: with interference, serializing
	// access via a mutex completes the same total work no slower (and each
	// op at full bandwidth), while uncoordinated sharing pays the
	// efficiency penalty.
	run := func(exclusive bool) float64 {
		s := New()
		l := s.NewLink("nvme", 100, Interference(0.5))
		m := s.NewMutex()
		for i := 0; i < 4; i++ {
			s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				if exclusive {
					m.Lock(p)
					l.Transfer(p, 100)
					m.Unlock(p)
				} else {
					l.Transfer(p, 100)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	shared := run(false)
	exclusive := run(true)
	if exclusive >= shared {
		t.Errorf("exclusive (%v) should beat contended shared (%v)", exclusive, shared)
	}
	if !almostEqual(exclusive, 4.0, 1e-9) {
		t.Errorf("exclusive total = %v, want 4.0 (4 serialized 1s ops)", exclusive)
	}
	// Shared: 4 streams, eff(4)=1/(1+1.5)=0.4 -> aggregate 40 B/s for
	// 400 B -> 10 s.
	if !almostEqual(shared, 10.0, 1e-9) {
		t.Errorf("shared total = %v, want 10.0", shared)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	s := New()
	l := s.NewLink("x", 100, nil)
	var d float64 = -1
	s.Spawn("p", func(p *Proc) { d = l.Transfer(p, 0) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("zero transfer duration = %v", d)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	s.schedule(-1, func() {})
}

func BenchmarkSimThroughput(b *testing.B) {
	// Measures scheduler overhead: many procs ping-ponging sleeps.
	for i := 0; i < b.N; i++ {
		s := New()
		l := s.NewLink("x", 1e9, Interference(0.1))
		for w := 0; w < 8; w++ {
			s.Spawn(fmt.Sprintf("w%d", w), func(p *Proc) {
				for k := 0; k < 50; k++ {
					l.Transfer(p, 1e6)
					p.Sleep(0.001)
				}
			})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLinkAccessors(t *testing.T) {
	s := New()
	l := s.NewLink("nvme", 123, nil)
	if l.Name() != "nvme" || l.Peak() != 123 {
		t.Errorf("accessors: %q %v", l.Name(), l.Peak())
	}
	if l.Active() != 0 || l.Transfers() != 0 {
		t.Error("fresh link not idle")
	}
	s.Spawn("p", func(p *Proc) { l.Transfer(p, 123) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Transfers() != 1 {
		t.Errorf("transfers = %d", l.Transfers())
	}
}

func TestLinkSetPeakValidation(t *testing.T) {
	s := New()
	l := s.NewLink("x", 10, nil)
	defer func() {
		if recover() == nil {
			t.Error("SetPeak(0) should panic")
		}
	}()
	l.SetPeak(0)
}

func TestCappedInterference(t *testing.T) {
	eff := CappedInterference(0.1, 4)
	if eff(1) != 1 {
		t.Errorf("eff(1) = %v", eff(1))
	}
	if eff(4) != eff(16) {
		t.Errorf("cap not applied: eff(4)=%v eff(16)=%v", eff(4), eff(16))
	}
	if eff(2) >= eff(1) || eff(4) >= eff(2) {
		t.Error("not monotone below cap")
	}
	// Degenerate cap.
	if CappedInterference(0.5, 0)(10) != 1 {
		t.Error("cap<1 should clamp to a single process (eff 1)")
	}
}

func TestMutexHolderAccessor(t *testing.T) {
	s := New()
	m := s.NewMutex()
	s.Spawn("a", func(p *Proc) {
		m.Lock(p)
		if m.Holder() != p {
			t.Error("holder mismatch")
		}
		m.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Holder() != nil {
		t.Error("holder not cleared")
	}
	if m.Acquires() != 1 {
		t.Errorf("acquires = %d", m.Acquires())
	}
}
