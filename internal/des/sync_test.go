package des

import (
	"fmt"
	"testing"
)

func TestEventReleasesWaiters(t *testing.T) {
	s := New()
	ev := s.NewEvent()
	var times []float64
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			times = append(times, p.Now())
		})
	}
	s.SpawnAt(2, "firer", func(p *Proc) {
		ev.Fire()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("only %d waiters released", len(times))
	}
	for _, tm := range times {
		if tm != 2 {
			t.Errorf("waiter released at %v, want 2", tm)
		}
	}
	if !ev.Fired() {
		t.Error("Fired() false")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	s := New()
	ev := s.NewEvent()
	var end float64 = -1
	s.Spawn("firer", func(p *Proc) { ev.Fire() })
	s.SpawnAt(5, "late", func(p *Proc) {
		ev.Wait(p) // returns immediately
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 5 {
		t.Errorf("late waiter at %v, want 5", end)
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	s := New()
	ev := s.NewEvent()
	s.Spawn("p", func(p *Proc) {
		ev.Fire()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		ev.Fire()
	})
	_ = s.Run()
}

func TestBarrierSynchronizes(t *testing.T) {
	s := New()
	b := s.NewBarrier(3)
	var releases []float64
	for i := 0; i < 3; i++ {
		delay := float64(i)
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(delay)
			b.Await(p)
			releases = append(releases, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range releases {
		if r != 2 {
			t.Errorf("released at %v, want 2 (slowest arriver)", r)
		}
	}
	if b.Cycles() != 1 {
		t.Errorf("cycles = %d", b.Cycles())
	}
}

func TestBarrierCyclic(t *testing.T) {
	s := New()
	b := s.NewBarrier(2)
	laps := make(map[string][]float64)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i)
		sleep := float64(i + 1)
		s.Spawn(name, func(p *Proc) {
			for k := 0; k < 3; k++ {
				p.Sleep(sleep)
				b.Await(p)
				laps[name] = append(laps[name], p.Now())
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Each cycle gated by the slower (2s) worker: trips at 2, 4, 6.
	for name, ts := range laps {
		want := []float64{2, 4, 6}
		for i := range want {
			if ts[i] != want[i] {
				t.Errorf("%s lap %d at %v, want %v", name, i, ts[i], want[i])
			}
		}
	}
	if b.Cycles() != 3 {
		t.Errorf("cycles = %d", b.Cycles())
	}
}

func TestBarrierSingleParty(t *testing.T) {
	s := New()
	b := s.NewBarrier(1)
	s.Spawn("solo", func(p *Proc) {
		b.Await(p)
		b.Await(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Cycles() != 2 {
		t.Errorf("cycles = %d", b.Cycles())
	}
}

func TestBarrierValidation(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.NewBarrier(0)
}
