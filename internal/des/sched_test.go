package des

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

var testClasses = []string{"demand-fetch", "grad-read", "prefetch", "flush", "checkpoint", "migration"}

// TestSchedPriorityOrder: with one worker busy, a later-submitted urgent op
// overtakes earlier low-priority ops.
func TestSchedPriorityOrder(t *testing.T) {
	sim := New()
	sched := sim.NewSched("disk", SchedConfig{Workers: 1, Classes: testClasses})
	var order []string
	mk := func(name string) func(p *Proc) {
		return func(p *Proc) {
			p.Sleep(0.01)
			order = append(order, name)
		}
	}
	sim.Spawn("client", func(p *Proc) {
		// First op occupies the worker; the rest queue.
		first := sched.Submit(5, "m0", 1, mk("m0"))
		p.Sleep(0.001)
		c1 := sched.Submit(4, "c1", 1, mk("c1"))
		f1 := sched.Submit(3, "f1", 1, mk("f1"))
		d1 := sched.Submit(0, "d1", 1, mk("d1"))
		for _, op := range []*SchedOp{first, c1, f1, d1} {
			op.Wait(p)
		}
		sched.Close()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"m0", "d1", "f1", "c1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("service order = %v, want %v", order, want)
	}
}

// TestSchedAging: an op past the aging threshold is served before a more
// urgent newcomer.
func TestSchedAging(t *testing.T) {
	sim := New()
	sched := sim.NewSched("disk", SchedConfig{Workers: 1, Classes: testClasses, Aging: 0.05})
	var order []string
	mk := func(name string) func(p *Proc) {
		return func(p *Proc) {
			p.Sleep(0.01)
			order = append(order, name)
		}
	}
	sim.Spawn("client", func(p *Proc) {
		busy := sched.Submit(0, "busy", 1, func(p *Proc) { p.Sleep(0.2) })
		p.Sleep(0.001)
		old := sched.Submit(5, "old-migration", 1, mk("old-migration"))
		p.Sleep(0.15) // old-migration has now aged past 50ms
		young := sched.Submit(0, "young-demand", 1, mk("young-demand"))
		for _, op := range []*SchedOp{busy, old, young} {
			op.Wait(p)
		}
		sched.Close()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"old-migration", "young-demand"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("service order = %v, want %v", order, want)
	}
	if qd := sched.ClassStats(5).QueueDelay; qd < 0.05 {
		t.Fatalf("aged op queue delay = %v, want >= aging threshold", qd)
	}
}

// TestSchedPromote: a queued prefetch promoted to demand overtakes flushes.
func TestSchedPromote(t *testing.T) {
	sim := New()
	sched := sim.NewSched("disk", SchedConfig{Workers: 1, Classes: testClasses})
	var order []string
	mk := func(name string) func(p *Proc) {
		return func(p *Proc) {
			p.Sleep(0.01)
			order = append(order, name)
		}
	}
	sim.Spawn("client", func(p *Proc) {
		busy := sched.Submit(0, "busy", 1, func(p *Proc) { p.Sleep(0.05) })
		p.Sleep(0.001)
		f1 := sched.Submit(3, "f1", 1, mk("f1"))
		pf := sched.Submit(2, "pf", 1, mk("pf"))
		sched.Promote(pf) // consumer caught up: prefetch is now demand
		for _, op := range []*SchedOp{busy, f1, pf} {
			op.Wait(p)
		}
		sched.Close()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"pf", "f1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("service order = %v, want %v", order, want)
	}
}

// TestSchedOverheadCoalescing: per-op overhead makes k separate ops cost
// k*overhead while one coalesced op of the same bytes pays it once — the
// economics of PR 8's vectored fetch batching, visible in the sim.
func TestSchedOverheadCoalescing(t *testing.T) {
	const overhead = 0.001
	run := func(batch bool) float64 {
		sim := New()
		link := sim.NewLink("dev", 1e9, nil)
		sched := sim.NewSched("disk", SchedConfig{Workers: 1, Classes: testClasses, Overhead: overhead})
		var elapsed float64
		sim.Spawn("client", func(p *Proc) {
			t0 := p.Now()
			var ops []*SchedOp
			if batch {
				ops = append(ops, sched.Submit(2, "batch", 8e6, func(p *Proc) { link.Transfer(p, 8e6) }))
			} else {
				for i := 0; i < 8; i++ {
					ops = append(ops, sched.Submit(2, fmt.Sprintf("op%d", i), 1e6, func(p *Proc) { link.Transfer(p, 1e6) }))
				}
			}
			for _, op := range ops {
				op.Wait(p)
			}
			elapsed = p.Now() - t0
			sched.Close()
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	separate, coalesced := run(false), run(true)
	wantSaved := 7 * overhead
	if saved := separate - coalesced; saved < wantSaved*0.99 || saved > wantSaved*1.01 {
		t.Fatalf("coalescing saved %v, want ~%v (separate=%v coalesced=%v)",
			saved, wantSaved, separate, coalesced)
	}
}

// TestSchedStarvedClassDeadlockReport: a wedged device (zero workers) leaves
// the waiter in the deadlock report with its scheduler and class named.
func TestSchedStarvedClassDeadlockReport(t *testing.T) {
	sim := New()
	sched := sim.NewSched("pfs", SchedConfig{Workers: 0, Classes: testClasses})
	sim.Spawn("ckpt-job", func(p *Proc) {
		op := sched.Submit(4, "snapshot", 1<<20, nil)
		op.Wait(p)
	})
	err := sim.Run()
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "ckpt-job", "sched-wait:pfs:checkpoint"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock report %q missing %q", msg, want)
		}
	}
}

// TestSchedTraceDeterministic: two identical runs with mixed classes, aging,
// and contention produce bit-identical traces.
func TestSchedTraceDeterministic(t *testing.T) {
	run := func() []string {
		var trace []string
		sim := New()
		link := sim.NewLink("dev", 1e8, Interference(0.4))
		sched := sim.NewSched("disk", SchedConfig{
			Workers: 2, Classes: testClasses, Aging: 0.01, Overhead: 1e-4,
			Trace: func(line string) { trace = append(trace, line) },
		})
		clients := 3
		done := 0
		for c := 0; c < clients; c++ {
			cid := c
			sim.Spawn(fmt.Sprintf("client%d", cid), func(p *Proc) {
				for i := 0; i < 5; i++ {
					class := (cid + i) % len(testClasses)
					op := sched.Submit(class, fmt.Sprintf("c%d.%d", cid, i), float64(1e5*(i+1)),
						func(p *Proc) { link.Transfer(p, float64(1e5*(i+1))) })
					op.Wait(p)
				}
				done++
				if done == clients {
					sched.Close()
				}
			})
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("traces differ:\n%v\n%v", a, b)
	}
}

// TestSchedCloseDrainsQueue: Close with ops still queued lets workers drain
// before exiting.
func TestSchedCloseDrainsQueue(t *testing.T) {
	sim := New()
	sched := sim.NewSched("disk", SchedConfig{Workers: 1, Classes: testClasses})
	var last *SchedOp
	sim.Spawn("client", func(p *Proc) {
		for i := 0; i < 4; i++ {
			last = sched.Submit(3, fmt.Sprintf("f%d", i), 1, func(p *Proc) { p.Sleep(0.01) })
		}
		sched.Close()
		last.Wait(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !last.Done() {
		t.Fatal("queued op not drained after Close")
	}
	if got := sched.ClassStats(3).Ops; got != 4 {
		t.Fatalf("flush ops = %d, want 4", got)
	}
}
