// Package des is a deterministic discrete-event simulation kernel used to
// run the MLP-Offload and DeepSpeed-ZeRO-3 offloading pipelines at paper
// scale (40B-280B parameter models, terabytes of optimizer state) where the
// real engine cannot allocate the data.
//
// Simulated processes are goroutines scheduled cooperatively with a baton:
// exactly one goroutine (either the scheduler or one process) runs at any
// moment, so simulation state needs no locking and runs are bit-for-bit
// reproducible. Time is a float64 in seconds.
//
// The kernel provides:
//   - Proc: a simulated process with Sleep/Now,
//   - Mutex: a FIFO exclusive resource (models the paper's node-level
//     process-exclusive tier access),
//   - Semaphore: counted resource (models bounded host buffer slots),
//   - Link: a processor-sharing bandwidth resource with a contention
//     efficiency curve (models NVMe/PFS/PCIe under concurrent streams).
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Sim is a discrete-event simulation. Create with New, add processes with
// Spawn, then call Run.
type Sim struct {
	now     float64
	seq     int64
	events  eventHeap
	yield   chan struct{}
	live    int
	blocked map[*Proc]string // parked procs and why, for deadlock reports
}

// New creates an empty simulation at time 0.
func New() *Sim {
	return &Sim{
		yield:   make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// event is a scheduled callback. Canceled events stay in the heap and are
// skipped when popped (lazy deletion).
type event struct {
	t        float64
	seq      int64
	fn       func()
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// schedule registers fn to run at now+delay and returns a handle that can
// be canceled. delay must be >= 0.
func (s *Sim) schedule(delay float64, fn func()) *event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: negative or NaN delay %v", delay))
	}
	s.seq++
	e := &event{t: s.now + delay, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return e
}

func (s *Sim) cancel(e *event) {
	if e != nil {
		e.canceled = true
	}
}

// Proc is a simulated process. All Proc methods must be called from the
// process's own function (the goroutine started by Spawn).
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current simulation time.
func (p *Proc) Now() float64 { return p.sim.now }

// Spawn adds a process to the simulation, starting at the current time.
// The process function runs in its own goroutine but only ever concurrently
// with nothing else (baton discipline).
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, wake: make(chan struct{})}
	s.live++
	go func() {
		<-p.wake // wait for first dispatch
		fn(p)
		s.live--
		delete(s.blocked, p)
		s.yield <- struct{}{}
	}()
	s.schedule(0, func() { s.runProc(p) })
	return p
}

// SpawnAt is Spawn with a start delay.
func (s *Sim) SpawnAt(delay float64, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, wake: make(chan struct{})}
	s.live++
	go func() {
		<-p.wake
		fn(p)
		s.live--
		delete(s.blocked, p)
		s.yield <- struct{}{}
	}()
	s.schedule(delay, func() { s.runProc(p) })
	return p
}

// runProc hands the baton to p and waits until p parks or finishes.
// Must be called from scheduler context (inside an event fn).
func (s *Sim) runProc(p *Proc) {
	delete(s.blocked, p)
	p.wake <- struct{}{}
	<-s.yield
}

// park suspends the calling process until someone schedules a runProc for
// it. reason is recorded for deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.sim.blocked[p] = reason
	p.sim.yield <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d simulated seconds. Negative durations
// are treated as zero.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.schedule(d, func() { s.runProc(p) })
	p.park(fmt.Sprintf("sleep(%g)", d))
}

// Run executes events until none remain. It returns an error if live
// processes are still blocked (deadlock).
func (s *Sim) Run() error {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.canceled {
			continue
		}
		if e.t < s.now {
			panic("des: time went backwards")
		}
		s.now = e.t
		e.fn()
	}
	if s.live > 0 {
		names := make([]string, 0, len(s.blocked))
		for p, why := range s.blocked {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, why))
		}
		sort.Strings(names)
		return fmt.Errorf("des: deadlock at t=%.6f, %d blocked: %v", s.now, s.live, names)
	}
	return nil
}

// Mutex is a FIFO exclusive resource. It models the node-level
// process-exclusive tier access of MLP-Offload's concurrency control: a
// worker holding the mutex owns the full bandwidth of the tier; others
// queue in arrival order.
type Mutex struct {
	sim     *Sim
	holder  *Proc
	waiters []*Proc
	// stats
	waitTime float64
	acquires int64
}

// NewMutex creates a mutex owned by sim.
func (s *Sim) NewMutex() *Mutex { return &Mutex{sim: s} }

// Lock acquires the mutex, parking p until it is granted.
func (m *Mutex) Lock(p *Proc) {
	m.acquires++
	if m.holder == nil {
		m.holder = p
		return
	}
	t0 := m.sim.now
	m.waiters = append(m.waiters, p)
	p.park("mutex")
	m.waitTime += m.sim.now - t0
}

// TryLock acquires the mutex if free, reporting success.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.holder == nil {
		m.acquires++
		m.holder = p
		return true
	}
	return false
}

// Unlock releases the mutex. Granting to the next waiter happens via a
// zero-delay event so the releaser keeps running first (FIFO, deterministic).
func (m *Mutex) Unlock(p *Proc) {
	if m.holder != p {
		panic("des: unlock by non-holder " + p.name)
	}
	if len(m.waiters) == 0 {
		m.holder = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.holder = next
	m.sim.schedule(0, func() { m.sim.runProc(next) })
}

// Holder returns the current holder (nil when free). Exposed for tests.
func (m *Mutex) Holder() *Proc { return m.holder }

// TotalWait returns the accumulated simulated time processes spent queued.
func (m *Mutex) TotalWait() float64 { return m.waitTime }

// Acquires returns the number of Lock/TryLock grants attempted.
func (m *Mutex) Acquires() int64 { return m.acquires }

// Semaphore is a counted FIFO resource, used for bounded host buffer slots
// (e.g. "host memory can hold K subgroups at a time").
type Semaphore struct {
	sim     *Sim
	avail   int
	waiters []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore creates a semaphore with n initial permits.
func (s *Sim) NewSemaphore(n int) *Semaphore {
	if n < 0 {
		panic("des: negative semaphore capacity")
	}
	return &Semaphore{sim: s, avail: n}
}

// Acquire takes n permits, parking until available. FIFO: a large waiter at
// the head blocks later small waiters (no starvation).
func (sem *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if len(sem.waiters) == 0 && sem.avail >= n {
		sem.avail -= n
		return
	}
	sem.waiters = append(sem.waiters, semWaiter{p, n})
	p.park("semaphore")
}

// Release returns n permits and wakes eligible waiters in order.
func (sem *Semaphore) Release(n int) {
	sem.avail += n
	for len(sem.waiters) > 0 && sem.avail >= sem.waiters[0].n {
		w := sem.waiters[0]
		sem.waiters = sem.waiters[1:]
		sem.avail -= w.n
		wp := w.p
		sem.sim.schedule(0, func() { sem.sim.runProc(wp) })
	}
}

// Available returns the current number of free permits.
func (sem *Semaphore) Available() int { return sem.avail }
