package des

import (
	"math"
	"sort"
)

// EfficiencyCurve maps the number of concurrent streams on a device to its
// aggregate efficiency in (0,1]. It models the interference the paper
// measures in Figure 4: a shared NVMe's aggregate throughput plateaus (or
// sags) while per-process latency worsens as processes are added.
type EfficiencyCurve func(n int) float64

// FlatEfficiency is an ideal device: eff(n) = 1.
func FlatEfficiency(int) float64 { return 1 }

// Interference returns eff(n) = 1/(1+alpha*(n-1)).
func Interference(alpha float64) EfficiencyCurve {
	return func(n int) float64 {
		if n <= 1 {
			return 1
		}
		return 1 / (1 + alpha*float64(n-1))
	}
}

// CappedInterference returns eff(n) = 1/(1+alpha*(min(n,cap)-1)): the
// device degrades with the number of *competing processes* (cap = workers
// per node), while additional in-flight operations beyond that merely
// queue — deep I/O queues do not collapse an NVMe the way independent
// uncoordinated clients do (Fig. 4 measures processes, not ops).
func CappedInterference(alpha float64, cap int) EfficiencyCurve {
	if cap < 1 {
		cap = 1
	}
	return func(n int) float64 {
		if n > cap {
			n = cap
		}
		if n <= 1 {
			return 1
		}
		return 1 / (1 + alpha*float64(n-1))
	}
}

// Link is a processor-sharing bandwidth resource: all active transfers
// progress simultaneously, each at rate peak*eff(n)/n bytes per second.
// Arrival and departure of transfers trigger recomputation of completion
// times. This reproduces the behaviour of concurrent un-coordinated I/O
// (the DeepSpeed baseline) whereas Mutex-guarded exclusive access (the
// MLP-Offload design) sees the full peak bandwidth per transfer.
type Link struct {
	sim  *Sim
	name string
	peak float64 // bytes per second
	eff  EfficiencyCurve

	active  []*transfer
	lastT   float64
	pending *event

	// stats
	bytesMoved float64
	busyFrom   float64
	busyTime   float64
	transfers  int64
}

type transfer struct {
	remaining float64
	total     float64
	proc      *Proc
	started   float64
	done      bool
}

// finished reports whether a transfer's residue is negligible: an absolute
// epsilon for tiny transfers plus a relative one for large transfers whose
// float64 residue can never be burned down exactly.
func (t *transfer) finished() bool {
	return t.remaining <= 1e-6+t.total*1e-12
}

// NewLink creates a bandwidth link. peak is in bytes/second; eff may be nil
// for an ideal device.
func (s *Sim) NewLink(name string, peak float64, eff EfficiencyCurve) *Link {
	if peak <= 0 {
		panic("des: link peak bandwidth must be positive")
	}
	if eff == nil {
		eff = FlatEfficiency
	}
	return &Link{sim: s, name: name, peak: peak, eff: eff}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Peak returns the link's peak bandwidth in bytes/second.
func (l *Link) Peak() float64 { return l.peak }

// SetPeak changes the link's peak bandwidth (e.g. modelling a PFS whose
// delivered bandwidth shifts under external load). In-flight transfers
// proceed at the new rate from now on.
func (l *Link) SetPeak(peak float64) {
	if peak <= 0 {
		panic("des: link peak bandwidth must be positive")
	}
	l.advance()
	l.peak = peak
	l.reschedule()
}

// rate returns the current per-stream rate.
func (l *Link) rate() float64 {
	n := len(l.active)
	if n == 0 {
		return l.peak
	}
	return l.peak * l.eff(n) / float64(n)
}

// advance applies progress to all active transfers up to sim.now.
func (l *Link) advance() {
	now := l.sim.now
	if now <= l.lastT {
		l.lastT = now
		return
	}
	if n := len(l.active); n > 0 {
		r := l.rate()
		dt := now - l.lastT
		for _, t := range l.active {
			t.remaining -= r * dt
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
	}
	l.lastT = now
}

// reschedule cancels the pending completion event and schedules the next
// one based on current membership.
func (l *Link) reschedule() {
	l.sim.cancel(l.pending)
	l.pending = nil
	if len(l.active) == 0 {
		return
	}
	r := l.rate()
	minRem := math.Inf(1)
	for _, t := range l.active {
		if t.remaining < minRem {
			minRem = t.remaining
		}
	}
	l.pending = l.sim.schedule(minRem/r, l.onTimer)
}

// onTimer fires when the earliest in-flight transfer should complete.
func (l *Link) onTimer() {
	l.pending = nil
	l.advance()
	var still []*transfer
	var finished []*transfer
	for _, t := range l.active {
		if t.finished() {
			t.done = true
			finished = append(finished, t)
		} else {
			still = append(still, t)
		}
	}
	if len(finished) == 0 && len(still) > 0 {
		// Nothing crossed the epsilon, yet the timer fired: the residue is
		// too small for simulated time to advance (now + rem/rate == now in
		// float64). Force-complete the minimum-remaining transfer to
		// guarantee progress.
		minIdx := 0
		for i, t := range still {
			if t.remaining < still[minIdx].remaining {
				minIdx = i
			}
		}
		t := still[minIdx]
		if l.sim.now+t.remaining/l.rate() == l.sim.now {
			t.done = true
			finished = append(finished, t)
			still = append(still[:minIdx], still[minIdx+1:]...)
		}
	}
	l.active = still
	if len(l.active) == 0 && len(finished) > 0 {
		l.busyTime += l.sim.now - l.busyFrom
	}
	// Wake finished transfers' processes. Each wake runs the process to
	// its next blocking point; it may start new transfers on this link,
	// which re-advances and reschedules safely.
	for _, t := range finished {
		l.sim.runProc(t.proc)
	}
	l.reschedule()
}

// Transfer moves bytes through the link on behalf of p, blocking until the
// transfer completes under processor sharing. It returns the elapsed
// simulated time.
func (l *Link) Transfer(p *Proc, bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	l.advance()
	if len(l.active) == 0 {
		l.busyFrom = l.sim.now
	}
	t := &transfer{remaining: bytes, total: bytes, proc: p, started: l.sim.now}
	l.active = append(l.active, t)
	l.bytesMoved += bytes
	l.transfers++
	l.reschedule()
	p.park("link:" + l.name)
	return l.sim.now - t.started
}

// Active returns the number of in-flight transfers.
func (l *Link) Active() int { return len(l.active) }

// BytesMoved returns the cumulative bytes transferred (including in-flight
// bytes already admitted).
func (l *Link) BytesMoved() float64 { return l.bytesMoved }

// BusyTime returns the total simulated time during which the link had at
// least one active transfer, counted through the last time it went idle.
func (l *Link) BusyTime() float64 {
	if len(l.active) > 0 {
		return l.busyTime + (l.sim.now - l.busyFrom)
	}
	return l.busyTime
}

// Transfers returns the number of Transfer calls admitted.
func (l *Link) Transfers() int64 { return l.transfers }

// SortProcsByName is a small helper for deterministic iteration in callers
// that collect procs in maps.
func SortProcsByName(ps []*Proc) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].name < ps[j].name })
}
