package des

import (
	"fmt"
	"sort"
)

// Sched is a class-based priority scheduler: the DES analogue of the aio
// engine's multi-level queue (demand fetch > grad read > prefetch > flush >
// checkpoint > migration, with aging). A fixed pool of worker processes
// drains per-class FIFO queues, always serving the most urgent non-empty
// class, except that any op older than the aging threshold is served
// oldest-first regardless of class — the same starvation guard the real
// engine applies.
//
// Ops carry an execution closure (typically a Mutex-guarded Link transfer
// plus codec sleeps) so the scheduler composes with the existing DES
// resources instead of duplicating them.
type Sched struct {
	sim    *Sim
	name   string
	cfg    SchedConfig
	queues [][]*SchedOp
	idle   []*Proc
	closed bool
	stats  []ClassStats
	lat    [][]float64 // per-class completion latency samples (seconds)
	trace  func(line string)
}

// SchedConfig configures a Sched.
type SchedConfig struct {
	// Workers is the number of concurrent service processes. Zero is
	// allowed and models a wedged device: submitted ops never execute, so
	// waiters show up in the deadlock report with their class named.
	Workers int
	// Classes names the priority classes; index 0 is the most urgent.
	Classes []string
	// Aging is the starvation threshold in seconds: a queued op older than
	// this is served oldest-first regardless of class. <= 0 disables aging.
	Aging float64
	// Overhead is a fixed per-op setup cost in seconds paid by the worker
	// before the op's Exec runs (submission syscall + queue handling in the
	// real engine). This is exactly the cost vectored coalescing amortizes:
	// a batch of k fetches submitted as one op pays it once instead of k
	// times.
	Overhead float64
	// Trace, when set, receives one deterministic line per completed op.
	Trace func(line string)
}

// ClassStats aggregates completed-op accounting for one class.
type ClassStats struct {
	Ops        int64
	Bytes      float64
	QueueDelay float64 // total seconds spent queued before service
	Service    float64 // total seconds of service (overhead + exec)
}

// SchedOp is one submitted operation.
type SchedOp struct {
	sched  *Sched
	class  int
	name   string
	bytes  float64
	queued float64
	exec   func(p *Proc)

	started  float64
	finished float64
	done     *Event
}

// NewSched creates a scheduler owned by sim. Worker processes are spawned
// immediately and park idle until ops arrive. Call Close when no more ops
// will be submitted, or idle workers count as deadlocked at Run's end.
func (s *Sim) NewSched(name string, cfg SchedConfig) *Sched {
	if len(cfg.Classes) == 0 {
		panic("des: sched needs at least one class")
	}
	if cfg.Workers < 0 {
		panic("des: negative sched worker count")
	}
	sc := &Sched{
		sim:    s,
		name:   name,
		cfg:    cfg,
		queues: make([][]*SchedOp, len(cfg.Classes)),
		stats:  make([]ClassStats, len(cfg.Classes)),
		lat:    make([][]float64, len(cfg.Classes)),
		trace:  cfg.Trace,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.Spawn(fmt.Sprintf("%s.w%d", name, i), sc.worker)
	}
	return sc
}

// Name returns the scheduler's name.
func (sc *Sched) Name() string { return sc.name }

// Submit queues an op and returns it. exec runs in a worker process's
// context and may block on any DES resource; nil exec completes after just
// the configured overhead. Panics if the scheduler is closed.
func (sc *Sched) Submit(class int, name string, bytes float64, exec func(p *Proc)) *SchedOp {
	if sc.closed {
		panic("des: submit on closed sched " + sc.name)
	}
	if class < 0 || class >= len(sc.queues) {
		panic(fmt.Sprintf("des: sched %s: class %d out of range", sc.name, class))
	}
	op := &SchedOp{
		sched:  sc,
		class:  class,
		name:   name,
		bytes:  bytes,
		queued: sc.sim.now,
		exec:   exec,
		done:   sc.sim.NewEvent(),
	}
	sc.queues[class] = append(sc.queues[class], op)
	sc.wakeOne()
	return op
}

// Promote moves a still-queued op to the most urgent class (a prefetch that
// became a demand fetch). No-op once service has started or if the op is
// already at class 0.
func (sc *Sched) Promote(op *SchedOp) {
	if op.sched != sc || op.class == 0 || op.done.Fired() || op.started > 0 {
		return
	}
	q := sc.queues[op.class]
	for i, o := range q {
		if o == op {
			sc.queues[op.class] = append(q[:i], q[i+1:]...)
			op.class = 0
			sc.queues[0] = append(sc.queues[0], op)
			return
		}
	}
}

// Close marks the scheduler finished: idle workers exit once all queues are
// drained. Safe to call once; Submit afterwards panics.
func (sc *Sched) Close() {
	if sc.closed {
		return
	}
	sc.closed = true
	sc.wakeAll()
}

// ClassStats returns the completed-op accounting for one class.
func (sc *Sched) ClassStats(class int) ClassStats { return sc.stats[class] }

// Latencies returns a copy of the completion-latency samples (queue + service
// seconds) recorded for one class, in completion order.
func (sc *Sched) Latencies(class int) []float64 {
	return append([]float64(nil), sc.lat[class]...)
}

// Percentile returns the q-th percentile (0-100) of a sample set, or 0 for
// an empty set. Exposed so reports use one definition.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(q / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// wakeOne unparks one idle worker via a zero-delay event.
func (sc *Sched) wakeOne() {
	if len(sc.idle) == 0 {
		return
	}
	w := sc.idle[0]
	sc.idle = sc.idle[1:]
	sc.sim.schedule(0, func() { sc.sim.runProc(w) })
}

func (sc *Sched) wakeAll() {
	for _, w := range sc.idle {
		wp := w
		sc.sim.schedule(0, func() { sc.sim.runProc(wp) })
	}
	sc.idle = nil
}

// pick dequeues the next op under the aging-then-priority policy, or nil.
func (sc *Sched) pick() *SchedOp {
	now := sc.sim.now
	if sc.cfg.Aging > 0 {
		bestClass, bestIdx := -1, -1
		bestT := now - sc.cfg.Aging
		for c, q := range sc.queues {
			// FIFO per class: the head is the oldest of its class.
			if len(q) > 0 && q[0].queued <= bestT {
				bestT = q[0].queued
				bestClass, bestIdx = c, 0
			}
		}
		if bestClass >= 0 {
			return sc.dequeue(bestClass, bestIdx)
		}
	}
	for c, q := range sc.queues {
		if len(q) > 0 {
			return sc.dequeue(c, 0)
		}
	}
	return nil
}

func (sc *Sched) dequeue(class, idx int) *SchedOp {
	q := sc.queues[class]
	op := q[idx]
	sc.queues[class] = append(q[:idx], q[idx+1:]...)
	return op
}

// worker is the service loop: pick, pay overhead, exec, account, signal.
func (sc *Sched) worker(p *Proc) {
	for {
		op := sc.pick()
		if op == nil {
			if sc.closed {
				return
			}
			sc.idle = append(sc.idle, p)
			p.park("sched-idle:" + sc.name)
			continue
		}
		op.started = p.Now()
		if sc.cfg.Overhead > 0 {
			p.Sleep(sc.cfg.Overhead)
		}
		if op.exec != nil {
			op.exec(p)
		}
		op.finished = p.Now()
		st := &sc.stats[op.class]
		st.Ops++
		st.Bytes += op.bytes
		st.QueueDelay += op.started - op.queued
		st.Service += op.finished - op.started
		sc.lat[op.class] = append(sc.lat[op.class], op.finished-op.queued)
		if sc.trace != nil {
			sc.trace(fmt.Sprintf("%.9f %s %s %s %.0f q=%.9f s=%.9f",
				op.finished, sc.name, sc.cfg.Classes[op.class], op.name,
				op.bytes, op.started-op.queued, op.finished-op.started))
		}
		op.done.Fire()
	}
}

// Wait parks p until the op completes. The park reason names the scheduler
// and class so a starved class is identifiable in deadlock reports.
func (op *SchedOp) Wait(p *Proc) {
	op.done.waitReason(p, fmt.Sprintf("sched-wait:%s:%s",
		op.sched.name, op.sched.cfg.Classes[op.class]))
}

// Done reports whether the op has completed.
func (op *SchedOp) Done() bool { return op.done.Fired() }

// Class returns the op's current class (promotion changes it).
func (op *SchedOp) Class() int { return op.class }

// QueueDelay returns seconds spent queued before service (valid once done).
func (op *SchedOp) QueueDelay() float64 { return op.started - op.queued }

// Latency returns queue + service seconds (valid once done).
func (op *SchedOp) Latency() float64 { return op.finished - op.queued }
