package des

// Event is a one-shot completion signal (a future): processes Wait on it,
// and a single Fire releases all current and future waiters. It is the DES
// analogue of the aio package's operation futures.
type Event struct {
	sim     *Sim
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func (s *Sim) NewEvent() *Event { return &Event{sim: s} }

// Fired reports whether Fire has been called.
func (e *Event) Fired() bool { return e.fired }

// Fire releases all waiters. Firing twice panics — a completion signal
// must have exactly one producer.
func (e *Event) Fire() {
	if e.fired {
		panic("des: event fired twice")
	}
	e.fired = true
	for _, w := range e.waiters {
		wp := w
		e.sim.schedule(0, func() { e.sim.runProc(wp) })
	}
	e.waiters = nil
}

// Wait parks p until the event fires (returns immediately if already
// fired).
func (e *Event) Wait(p *Proc) {
	e.waitReason(p, "event")
}

// waitReason is Wait with a custom park reason so higher-level primitives
// (Sched) can label blocked waiters usefully in deadlock reports.
func (e *Event) waitReason(p *Proc, reason string) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.park(reason)
}

// Barrier is a cyclic synchronization barrier for n parties, used to model
// the data-parallel synchronization at iteration boundaries.
type Barrier struct {
	sim     *Sim
	parties int
	arrived []*Proc
	cycles  int64
}

// NewBarrier creates a barrier for n parties (n >= 1).
func (s *Sim) NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("des: barrier needs at least one party")
	}
	return &Barrier{sim: s, parties: n}
}

// Await blocks p until all parties have arrived, then releases everyone
// and resets for the next cycle.
func (b *Barrier) Await(p *Proc) {
	if b.parties == 1 {
		b.cycles++
		return
	}
	b.arrived = append(b.arrived, p)
	if len(b.arrived) < b.parties {
		p.park("barrier")
		return
	}
	// Last arriver releases the others and proceeds.
	b.cycles++
	waiters := b.arrived[:len(b.arrived)-1]
	b.arrived = nil
	for _, w := range waiters {
		wp := w
		b.sim.schedule(0, func() { b.sim.runProc(wp) })
	}
}

// Cycles returns how many times the barrier has tripped.
func (b *Barrier) Cycles() int64 { return b.cycles }
