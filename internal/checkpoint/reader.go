package checkpoint

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tiercodec"
)

// Reader is the restore side of the checkpoint package: it discovers
// committed checkpoints through their manifests on the checkpoint tier,
// deserializes them, and reads back checkpoint-tier objects. Entries that
// live on a named training tier (pre-staged snapshots) are read by the
// engine through its own tier handles.
type Reader struct {
	tier   storage.Tier
	prefix string
}

// NewReader creates a reader over the checkpoint tier with the same key
// prefix the Writer used.
func NewReader(tier storage.Tier, prefix string) *Reader {
	return &Reader{tier: tier, prefix: prefix}
}

// Prefix returns the reader's key prefix.
func (r *Reader) Prefix() string { return r.prefix }

// Steps lists the steps that have a committed manifest, ascending. A
// checkpoint whose data objects landed but whose manifest did not is
// invisible here — by design, it is not a checkpoint.
func (r *Reader) Steps(ctx context.Context) ([]int, error) {
	keys, err := r.tier.Keys(ctx)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list manifests: %w", err)
	}
	var steps []int
	for _, k := range keys {
		if !strings.HasPrefix(k, r.prefix+"-step") || !strings.HasSuffix(k, ".manifest") {
			continue
		}
		var step int
		if _, err := fmt.Sscanf(k[len(r.prefix):], "-step%d.manifest", &step); err != nil {
			continue
		}
		steps = append(steps, step)
	}
	sort.Ints(steps)
	return steps, nil
}

// ValidSteps lists the steps whose manifest not only exists but reads,
// parses, and validates, ascending. Steps discovers manifests by key
// alone, so a torn manifest — truncated JSON from a rank that died
// mid-commit — still shows up there; elastic recovery must not select
// it. ValidSteps is the content-checked listing recovery feeds into
// NewestCommonStep.
func (r *Reader) ValidSteps(ctx context.Context) ([]int, error) {
	steps, err := r.Steps(ctx)
	if err != nil {
		return nil, err
	}
	valid := steps[:0]
	for _, s := range steps {
		if _, err := r.ReadManifest(ctx, s); err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			continue // torn, unparsable, or mismatched — not restorable
		}
		valid = append(valid, s)
	}
	return valid, nil
}

// NewestCommonStep returns the newest step present in every set — the
// restore point elastic recovery rolls the job back to. Each set is one
// rank's ValidSteps (any order, duplicates tolerated). It returns ok ==
// false when the intersection is empty, including when sets itself is
// empty.
func NewestCommonStep(sets [][]int) (int, bool) {
	if len(sets) == 0 {
		return 0, false
	}
	counts := make(map[int]int)
	for _, set := range sets {
		seen := make(map[int]bool, len(set))
		for _, s := range set {
			if !seen[s] {
				seen[s] = true
				counts[s]++
			}
		}
	}
	best, ok := 0, false
	for s, n := range counts {
		if n == len(sets) && (!ok || s > best) {
			best, ok = s, true
		}
	}
	return best, ok
}

// LatestStep returns the newest step with a committed manifest, or
// storage.ErrNotFound when no checkpoint exists under the prefix.
func (r *Reader) LatestStep(ctx context.Context) (int, error) {
	steps, err := r.Steps(ctx)
	if err != nil {
		return 0, err
	}
	if len(steps) == 0 {
		return 0, fmt.Errorf("checkpoint: no manifest under prefix %q: %w", r.prefix, storage.ErrNotFound)
	}
	return steps[len(steps)-1], nil
}

// ReadManifest reads and validates the manifest committed at step.
func (r *Reader) ReadManifest(ctx context.Context, step int) (Manifest, error) {
	key := ManifestKey(r.prefix, step)
	buf, err := storage.ReadWholeObject(ctx, r.tier, key)
	if err != nil {
		// A raw (pre-codec) manifest behind a codec-wrapped checkpoint
		// tier surfaces as ErrCorrupt ("no codec header"); the manifest is
		// fine — the tier handle is wrong. Say so.
		if errors.Is(err, tiercodec.ErrCorrupt) && tiercodec.Describe(r.tier) != "" {
			return Manifest{}, fmt.Errorf("checkpoint: manifest step %d: %w — if this checkpoint was written without codec middleware, read it through the raw (unwrapped) checkpoint tier", step, err)
		}
		return Manifest{}, fmt.Errorf("checkpoint: read manifest step %d: %w", step, err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		// The manifest itself is the bootstrap object, so the engine's
		// manifest-driven codec check cannot protect it: reading an
		// encoded manifest through a codec-less tier yields codec bytes
		// where JSON was expected. Name the actual problem.
		if len(buf) >= 4 && binary.LittleEndian.Uint32(buf) == tiercodec.Magic {
			return Manifest{}, fmt.Errorf("checkpoint: manifest step %d is codec-encoded — the checkpoint was written through codec middleware; wrap the checkpoint tier (e.g. NewCodecTier) to read it", step)
		}
		return Manifest{}, fmt.Errorf("checkpoint: parse manifest step %d: %w", step, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	if m.Step != step {
		return Manifest{}, fmt.Errorf("checkpoint: manifest under step %d records step %d", step, m.Step)
	}
	return m, nil
}

// ReadObject reads a checkpoint-tier object (an Entry with Tier == "")
// into dst, whose length must equal the entry's Bytes.
func (r *Reader) ReadObject(ctx context.Context, key string, dst []byte) error {
	return r.tier.Read(ctx, key, dst)
}

// entryTier resolves the tier an entry's object lives on: the checkpoint
// tier for flushed objects, the named training tier (via resolve) for
// pre-staged snapshots.
func (r *Reader) entryTier(e Entry, resolve func(name string) storage.Tier) (storage.Tier, error) {
	if e.Tier == "" {
		return r.tier, nil
	}
	if resolve == nil {
		return nil, fmt.Errorf("checkpoint: subgroup %d lives on tier %q but no resolver given", e.SubgroupID, e.Tier)
	}
	t := resolve(e.Tier)
	if t == nil {
		return nil, fmt.Errorf("checkpoint: subgroup %d references unknown tier %q", e.SubgroupID, e.Tier)
	}
	return t, nil
}

// Remove deletes a committed checkpoint. The manifest is deleted first —
// a crash mid-removal must uncommit the checkpoint before any data object
// disappears, never leave a manifest referencing deleted objects — then
// every object the manifest references (checkpoint-tier objects and
// pre-staged snapshots via resolve). Deleting an already-missing object
// is not an error.
func (r *Reader) Remove(ctx context.Context, m Manifest, resolve func(name string) storage.Tier) error {
	if err := r.tier.Delete(ctx, ManifestKey(r.prefix, m.Step)); err != nil {
		return fmt.Errorf("checkpoint: remove manifest step %d: %w", m.Step, err)
	}
	for _, e := range m.Entries {
		tier, err := r.entryTier(e, resolve)
		if err != nil {
			return err
		}
		if err := tier.Delete(ctx, e.Key); err != nil {
			return fmt.Errorf("checkpoint: remove step %d subgroup %d: %w", m.Step, e.SubgroupID, err)
		}
	}
	return nil
}

// Prune removes committed checkpoints beyond the newest keep, oldest
// first, returning the removed steps. Without pruning, every checkpoint
// leaves a full optimizer-state copy behind (flushed objects plus
// snapshots on the persistent tiers) and storage grows without bound.
// keep <= 0 is a no-op. Objects of a checkpoint whose manifest never
// landed are not discoverable here and are not touched.
func (r *Reader) Prune(ctx context.Context, keep int, resolve func(name string) storage.Tier) ([]int, error) {
	if keep <= 0 {
		return nil, nil
	}
	steps, err := r.Steps(ctx)
	if err != nil {
		return nil, err
	}
	var removed []int
	for len(steps) > keep {
		m, err := r.ReadManifest(ctx, steps[0])
		if err != nil {
			return removed, err
		}
		if err := r.Remove(ctx, m, resolve); err != nil {
			return removed, err
		}
		removed = append(removed, steps[0])
		steps = steps[1:]
	}
	return removed, nil
}

// SweepOrphans deletes step-tagged data objects left behind by
// checkpoints whose manifest never landed (a crash or error
// mid-checkpoint): such objects are invisible to the Reader and would
// otherwise leak a full optimizer-state copy per failed attempt. Only
// steps strictly older than the newest committed manifest are swept — an
// in-progress checkpoint always targets a newer step, so it is never
// touched; with no committed manifest at all the sweep is a no-op.
// tiers lists the training tiers to sweep for orphaned snapshots in
// addition to the checkpoint tier. It returns the deleted keys.
func (r *Reader) SweepOrphans(ctx context.Context, tiers []storage.Tier) ([]string, error) {
	steps, err := r.Steps(ctx)
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		return nil, nil
	}
	latest := steps[len(steps)-1]
	committed := make(map[int]bool, len(steps))
	for _, s := range steps {
		committed[s] = true
	}
	var deleted []string
	sweep := func(t storage.Tier) error {
		keys, err := t.Keys(ctx)
		if err != nil {
			return fmt.Errorf("checkpoint: sweep %s: %w", t.Name(), err)
		}
		for _, k := range keys {
			if !strings.HasPrefix(k, r.prefix+"-step") || strings.HasSuffix(k, ".manifest") {
				continue
			}
			var step, sg int
			rest := k[len(r.prefix):]
			if _, err := fmt.Sscanf(rest, "-step%d-sg%d.ckpt", &step, &sg); err != nil {
				if _, err := fmt.Sscanf(rest, "-step%d-sg%d.snap", &step, &sg); err != nil {
					continue
				}
			}
			if step >= latest || committed[step] {
				continue
			}
			if err := t.Delete(ctx, k); err != nil {
				return fmt.Errorf("checkpoint: sweep %s/%s: %w", t.Name(), k, err)
			}
			deleted = append(deleted, k)
		}
		return nil
	}
	if err := sweep(r.tier); err != nil {
		return deleted, err
	}
	for _, t := range tiers {
		if err := sweep(t); err != nil {
			return deleted, err
		}
	}
	return deleted, nil
}

// Verify checks that every object a manifest references still exists with
// the recorded size — the staleness check that a step-s checkpoint
// survives further training. resolve maps a named training tier to its
// handle; it is only consulted for pre-staged entries and may be nil when
// the manifest has none.
func (r *Reader) Verify(ctx context.Context, m Manifest, resolve func(name string) storage.Tier) error {
	for _, e := range m.Entries {
		tier, err := r.entryTier(e, resolve)
		if err != nil {
			return err
		}
		size, err := tier.Size(ctx, e.Key)
		if err != nil {
			return fmt.Errorf("checkpoint: subgroup %d object %s: %w", e.SubgroupID, e.Key, err)
		}
		if size != e.Bytes {
			return fmt.Errorf("checkpoint: subgroup %d object %s is %d bytes, manifest records %d",
				e.SubgroupID, e.Key, size, e.Bytes)
		}
	}
	return nil
}
