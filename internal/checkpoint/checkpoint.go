// Package checkpoint implements the checkpoint acceleration opportunity
// the paper describes at the end of §3.3: because MLP-Offload's virtual
// third-level tier includes *persistent* storage (the PFS), the fraction
// of the optimizer state already resident there is pre-staged "for free" —
// a checkpoint only needs to flush the remainder (host-cached subgroups
// and those on non-persistent node-local NVMe), in the style of multi-tier
// asynchronous checkpointing engines such as DataStates-LLM.
package checkpoint

import (
	"context"
	"fmt"
	"sync"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/storage"
)

// Location describes where one subgroup's state currently lives.
type Location struct {
	SubgroupID int
	// TierName is "" or "host" for host-resident state; otherwise a
	// storage tier name.
	TierName string
	// Persistent reports whether that tier survives job teardown.
	Persistent bool
	// Bytes is the serialized state size.
	Bytes int64
}

// Plan partitions subgroups into already-persistent (pre-staged) and
// to-flush sets.
type Plan struct {
	PreStaged []Location
	ToFlush   []Location
}

// BuildPlan classifies the current placement.
func BuildPlan(locs []Location) Plan {
	var p Plan
	for _, l := range locs {
		if l.Persistent && l.TierName != "" && l.TierName != "host" {
			p.PreStaged = append(p.PreStaged, l)
		} else {
			p.ToFlush = append(p.ToFlush, l)
		}
	}
	return p
}

// PreStagedBytes returns the bytes that need no I/O at checkpoint time.
func (p Plan) PreStagedBytes() int64 {
	var n int64
	for _, l := range p.PreStaged {
		n += l.Bytes
	}
	return n
}

// FlushBytes returns the bytes the checkpoint must still write.
func (p Plan) FlushBytes() int64 {
	var n int64
	for _, l := range p.ToFlush {
		n += l.Bytes
	}
	return n
}

// Savings returns the fraction of checkpoint I/O avoided by pre-staging.
func (p Plan) Savings() float64 {
	total := p.PreStagedBytes() + p.FlushBytes()
	if total == 0 {
		return 0
	}
	return float64(p.PreStagedBytes()) / float64(total)
}

// Writer flushes the ToFlush set of a plan to a persistent checkpoint
// tier asynchronously.
type Writer struct {
	engine *aio.Engine
	prefix string
}

// NewWriter creates a checkpoint writer over a persistent tier.
func NewWriter(tier storage.Tier, prefix string) *Writer {
	return &Writer{
		engine: aio.New(tier, aio.Config{Workers: 2, QueueDepth: 32}),
		prefix: prefix,
	}
}

// key returns the checkpoint object key for a subgroup.
func (w *Writer) key(step, sg int) string {
	return fmt.Sprintf("%s-step%06d-sg%05d.ckpt", w.prefix, step, sg)
}

// Fetcher retrieves a subgroup's serialized state for checkpointing (the
// engine supplies host-resident bytes or reads them back from a tier).
type Fetcher func(ctx context.Context, sg int) ([]byte, error)

// Write checkpoints the plan's ToFlush set at the given step, fetching
// each subgroup's bytes via fetch and writing them concurrently. It
// returns the number of bytes written.
func (w *Writer) Write(ctx context.Context, step int, plan Plan, fetch Fetcher) (int64, error) {
	var (
		mu       sync.Mutex
		written  int64
		firstErr error
	)
	ops := make([]*aio.Op, 0, len(plan.ToFlush))
	bufs := make([][]byte, 0, len(plan.ToFlush))
	for _, loc := range plan.ToFlush {
		data, err := fetch(ctx, loc.SubgroupID)
		if err != nil {
			return written, fmt.Errorf("checkpoint: fetch subgroup %d: %w", loc.SubgroupID, err)
		}
		op, err := w.engine.SubmitWrite(w.key(step, loc.SubgroupID), data)
		if err != nil {
			return written, err
		}
		ops = append(ops, op)
		bufs = append(bufs, data)
	}
	for i, op := range ops {
		if err := op.Wait(); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			continue
		}
		written += int64(len(bufs[i]))
	}
	return written, firstErr
}

// Manifest records a completed checkpoint: which subgroups were written
// fresh and which were satisfied by pre-staged tier objects.
type Manifest struct {
	Step      int
	Written   []int // subgroup IDs flushed by the checkpoint
	PreStaged []int // subgroup IDs already persistent
}

// BuildManifest derives the manifest from a plan.
func BuildManifest(step int, p Plan) Manifest {
	m := Manifest{Step: step}
	for _, l := range p.ToFlush {
		m.Written = append(m.Written, l.SubgroupID)
	}
	for _, l := range p.PreStaged {
		m.PreStaged = append(m.PreStaged, l.SubgroupID)
	}
	return m
}

// Close shuts down the writer.
func (w *Writer) Close() { w.engine.Close() }
