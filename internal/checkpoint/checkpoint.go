// Package checkpoint implements the checkpoint acceleration opportunity
// the paper describes at the end of §3.3, made restorable end to end.
//
// Because MLP-Offload's virtual third-level tier includes *persistent*
// storage (the PFS), the fraction of the optimizer state already resident
// there is pre-staged "for free" — a checkpoint only needs to flush the
// remainder (host-cached subgroups and those on non-persistent node-local
// NVMe), in the style of multi-tier asynchronous checkpointing engines
// such as DataStates-LLM.
//
// Pre-staged state must still be *versioned*: the live training object
// (rank…-sg….opt) is overwritten by the very next update phase, so a
// checkpoint that merely points at it goes stale immediately. At
// checkpoint time each pre-staged subgroup is therefore snapshotted into a
// step-tagged key on the same tier (a server-side copy, still far cheaper
// than re-writing host/NVMe state over the cross-tier path), and the
// Manifest records exactly which key on which tier holds every subgroup.
//
// The Manifest is the checkpoint's commit record: it is serialized and
// written to the checkpoint tier only after every data object (flushed and
// snapshotted alike) is durable. A checkpoint without a landed manifest is
// not a checkpoint — the Reader discovers checkpoints exclusively through
// manifests, reads them back for the restore path (engine.Restore,
// train.Node.Resume), verifies that every referenced object is still
// present and intact, and prunes old checkpoints (manifest first) so
// retained storage stays bounded.
package checkpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/storage"
)

// ManifestVersion is the serialized manifest format version.
const ManifestVersion = 1

// Location describes where one subgroup's state currently lives.
type Location struct {
	SubgroupID int
	// TierName is "" or "host" for host-resident state; otherwise a
	// storage tier name.
	TierName string
	// Key is the live training object's key on that tier ("" for
	// host-resident state). Live keys are overwritten by the next update
	// phase, which is why checkpoints snapshot them under step-tagged keys
	// instead of referencing them directly.
	Key string
	// Persistent reports whether that tier survives job teardown.
	Persistent bool
	// Bytes is the serialized state size.
	Bytes int64
}

// Plan partitions subgroups into already-persistent (pre-staged) and
// to-flush sets.
type Plan struct {
	PreStaged []Location
	ToFlush   []Location
}

// BuildPlan classifies the current placement.
func BuildPlan(locs []Location) Plan {
	var p Plan
	for _, l := range locs {
		if l.Persistent && l.TierName != "" && l.TierName != "host" {
			p.PreStaged = append(p.PreStaged, l)
		} else {
			p.ToFlush = append(p.ToFlush, l)
		}
	}
	return p
}

// PreStagedBytes returns the bytes that need no cross-tier I/O at
// checkpoint time (they are versioned by a same-tier snapshot copy).
func (p Plan) PreStagedBytes() int64 {
	var n int64
	for _, l := range p.PreStaged {
		n += l.Bytes
	}
	return n
}

// FlushBytes returns the bytes the checkpoint must still write.
func (p Plan) FlushBytes() int64 {
	var n int64
	for _, l := range p.ToFlush {
		n += l.Bytes
	}
	return n
}

// Savings returns the fraction of checkpoint I/O avoided by pre-staging.
func (p Plan) Savings() float64 {
	total := p.PreStagedBytes() + p.FlushBytes()
	if total == 0 {
		return 0
	}
	return float64(p.PreStagedBytes()) / float64(total)
}

// ObjectKey returns the checkpoint-tier object key for a flushed subgroup.
func ObjectKey(prefix string, step, sg int) string {
	return fmt.Sprintf("%s-step%06d-sg%05d.ckpt", prefix, step, sg)
}

// SnapshotKey returns the step-tagged key a pre-staged subgroup is
// snapshotted under on its own (persistent) tier.
func SnapshotKey(prefix string, step, sg int) string {
	return fmt.Sprintf("%s-step%06d-sg%05d.snap", prefix, step, sg)
}

// ManifestKey returns the checkpoint-tier key of the step's manifest.
func ManifestKey(prefix string, step int) string {
	return fmt.Sprintf("%s-step%06d.manifest", prefix, step)
}

// Writer flushes the ToFlush set of a plan to a persistent checkpoint
// tier asynchronously and commits manifests.
type Writer struct {
	engine *aio.Engine
	prefix string
}

// NewWriter creates a checkpoint writer over a persistent tier.
func NewWriter(tier storage.Tier, prefix string) *Writer {
	return &Writer{
		engine: aio.New(tier, aio.Config{Workers: 2, QueueDepth: 32}),
		prefix: prefix,
	}
}

// Prefix returns the writer's key prefix.
func (w *Writer) Prefix() string { return w.prefix }

// Tier returns the checkpoint tier the writer targets (manifest codec
// recording inspects it).
func (w *Writer) Tier() storage.Tier { return w.engine.Tier() }

// Fetcher retrieves a subgroup's serialized state for checkpointing (the
// engine supplies host-resident bytes or reads them back from a tier).
type Fetcher func(ctx context.Context, sg int) ([]byte, error)

// Release is invoked exactly once per buffer a Fetcher handed to Write,
// as soon as the buffer's write completes (or immediately if submission
// failed). It lets the caller bound checkpoint staging memory: the whole
// shard's optimizer state is, by this engine's premise, larger than host
// memory, so a checkpoint must never hold more than a small window of
// serialized subgroups at once. Calls may come from concurrent goroutines
// — release must not depend on Write's control flow (in particular it
// must not block until Write returns), or the staging window deadlocks.
// nil disables the callback.
type Release func(buf []byte)

// Write checkpoints the plan's ToFlush set at the given step, fetching
// each subgroup's bytes via fetch and writing them asynchronously. It
// returns the number of bytes written.
//
// On failure every operation already submitted is still waited before
// Write returns, so no in-flight write (or the buffer it reads from)
// outlives the call; release is still invoked for every fetched buffer.
func (w *Writer) Write(ctx context.Context, step int, plan Plan, fetch Fetcher, release Release) (int64, error) {
	var firstErr error
	type inflight struct {
		op *aio.Op
		n  int
	}
	// Buffers are released the moment their write lands (not when Write
	// gets around to checking it), so the caller's staging bound never
	// waits on this loop; the queue keeps only ops and sizes for the
	// error/byte accounting, waited sequentially on this one goroutine.
	var q []inflight
	for _, loc := range plan.ToFlush {
		data, err := fetch(ctx, loc.SubgroupID)
		if err != nil {
			firstErr = fmt.Errorf("checkpoint: fetch subgroup %d: %w", loc.SubgroupID, err)
			break
		}
		op, err := w.engine.SubmitWriteClass(aio.Checkpoint, ObjectKey(w.prefix, step, loc.SubgroupID), data)
		if err != nil {
			if release != nil {
				release(data)
			}
			firstErr = fmt.Errorf("checkpoint: submit subgroup %d: %w", loc.SubgroupID, err)
			break
		}
		if release != nil {
			go func(op *aio.Op, buf []byte) {
				//mlpvet:allow aioop completion only gates the buffer release; the op is on q and its error is collected below
				_ = op.Wait()
				release(buf)
			}(op, data)
		}
		q = append(q, inflight{op, len(data)})
	}
	var written int64
	for _, f := range q {
		if err := f.op.Wait(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		written += int64(f.n)
	}
	return written, firstErr
}

// WriteManifest serializes and synchronously writes the manifest — the
// checkpoint's commit record. Callers must only invoke it after every data
// object the manifest references is durable.
func (w *Writer) WriteManifest(m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	if err := w.engine.WriteSync(ManifestKey(w.prefix, m.Step), data); err != nil {
		return fmt.Errorf("checkpoint: write manifest step %d: %w", m.Step, err)
	}
	return nil
}

// Entry records where one subgroup's checkpointed bytes live.
type Entry struct {
	SubgroupID int `json:"sg"`
	// Tier is "" for objects written to the checkpoint tier; otherwise
	// the name of the persistent training tier holding the snapshot.
	Tier string `json:"tier,omitempty"`
	// Key is the step-tagged object key (never a live training key).
	Key   string `json:"key"`
	Bytes int64  `json:"bytes"`
	// PreStaged marks subgroups satisfied by a same-tier snapshot of
	// already-persistent state rather than a cross-tier flush.
	PreStaged bool `json:"preStaged,omitempty"`
	// Origin is where the live state resided at checkpoint time ("host"
	// or a tier name) — used to rebuild host-cache residency on restore.
	Origin string `json:"origin,omitempty"`
}

// Numerics records the training-numerics configuration a checkpoint was
// taken under. Restore refuses a mismatch: resuming under a different
// engine mode, accumulation depth, or optimizer hyperparameters would
// silently diverge from both the interrupted and an uninterrupted run.
// (Placement, caching and I/O knobs are deliberately absent — they are
// performance-only and may change freely across a restart.)
type Numerics struct {
	Order          string  `json:"order"`
	SkipGradFlush  bool    `json:"skipGradFlush"`
	LossScaling    bool    `json:"lossScaling"`
	GradAccumSteps int     `json:"gradAccumSteps"`
	ClipNorm       float64 `json:"clipNorm,omitempty"`
	LR             float64 `json:"lr"`
	Beta1          float64 `json:"beta1"`
	Beta2          float64 `json:"beta2"`
	Eps            float64 `json:"eps"`
	WeightDecay    float64 `json:"weightDecay,omitempty"`
}

// Manifest is a checkpoint's commit record: the step, the full
// subgroup→object map, the shard geometry, and the optimizer-progress
// state a restore needs to continue training bit-identically.
type Manifest struct {
	FormatVersion int `json:"version"`
	// Step is the caller's checkpoint step (training iterations
	// completed at this boundary); it tags every object key.
	Step int `json:"step"`
	Rank int `json:"rank"`
	// Params and SubgroupParams are the shard geometry; restore rejects
	// manifests that do not match the engine's configuration.
	Params         int64 `json:"params"`
	SubgroupParams int64 `json:"subgroupParams"`
	// AdamStep is the number of optimizer steps applied (Adam bias
	// correction depends on it).
	AdamStep int `json:"adamStep"`
	// Phase is the number of completed update phases (the alternating
	// update-order position).
	Phase        int                `json:"phase"`
	SkippedSteps int64              `json:"skippedSteps,omitempty"`
	Scaler       *optim.ScalerState `json:"scaler,omitempty"`
	Numerics     Numerics           `json:"numerics"`
	// TierCodecs records, per tier name (training tiers and the
	// checkpoint tier), the codec middleware active when the checkpoint
	// was written ("" = none). Objects are self-describing, so restore
	// works under *any* codec configuration as long as the tier is
	// codec-wrapped at all — Restore uses this map to reject the one
	// combination that cannot work (encoded objects behind a codec-less
	// tier, or raw objects behind a codec tier) with a clear error
	// instead of a size mismatch or bad-magic failure mid-restore.
	// nil on manifests from versions without codec support (no check).
	TierCodecs map[string]string `json:"tierCodecs,omitempty"`
	Entries    []Entry           `json:"entries"`
}

// BuildManifest derives the subgroup→object map from a plan: flushed
// subgroups point at checkpoint-tier objects, pre-staged subgroups at
// their step-tagged same-tier snapshots. Callers fill the geometry and
// optimizer-progress fields before committing.
func BuildManifest(step int, p Plan, prefix string) Manifest {
	m := Manifest{FormatVersion: ManifestVersion, Step: step}
	for _, l := range p.ToFlush {
		m.Entries = append(m.Entries, Entry{
			SubgroupID: l.SubgroupID,
			Key:        ObjectKey(prefix, step, l.SubgroupID),
			Bytes:      l.Bytes,
			Origin:     l.TierName,
		})
	}
	for _, l := range p.PreStaged {
		m.Entries = append(m.Entries, Entry{
			SubgroupID: l.SubgroupID,
			Tier:       l.TierName,
			Key:        SnapshotKey(prefix, step, l.SubgroupID),
			Bytes:      l.Bytes,
			PreStaged:  true,
			Origin:     l.TierName,
		})
	}
	sort.Slice(m.Entries, func(i, j int) bool {
		return m.Entries[i].SubgroupID < m.Entries[j].SubgroupID
	})
	return m
}

// Entry returns the entry for a subgroup.
func (m Manifest) Entry(sg int) (Entry, bool) {
	i := sort.Search(len(m.Entries), func(i int) bool {
		return m.Entries[i].SubgroupID >= sg
	})
	if i < len(m.Entries) && m.Entries[i].SubgroupID == sg {
		return m.Entries[i], true
	}
	return Entry{}, false
}

// Savings returns the fraction of checkpoint bytes satisfied by
// pre-staged snapshots instead of cross-tier flushes.
func (m Manifest) Savings() float64 {
	var pre, total int64
	for _, e := range m.Entries {
		total += e.Bytes
		if e.PreStaged {
			pre += e.Bytes
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pre) / float64(total)
}

// Validate performs structural checks: known format version and exactly
// one entry per subgroup, sorted by ID.
func (m Manifest) Validate() error {
	if m.FormatVersion != ManifestVersion {
		return fmt.Errorf("checkpoint: unsupported manifest version %d", m.FormatVersion)
	}
	for i, e := range m.Entries {
		if e.SubgroupID != i {
			return fmt.Errorf("checkpoint: manifest entries not dense at index %d (subgroup %d)", i, e.SubgroupID)
		}
		if e.Key == "" {
			return fmt.Errorf("checkpoint: subgroup %d has an empty object key", i)
		}
		if e.Bytes <= 0 {
			return fmt.Errorf("checkpoint: subgroup %d has size %d", i, e.Bytes)
		}
	}
	return nil
}

// Close shuts down the writer.
func (w *Writer) Close() { w.engine.Close() }
