package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/datastates/mlpoffload/internal/storage"
)

func mkLocs() []Location {
	return []Location{
		{SubgroupID: 0, TierName: "host", Persistent: false, Bytes: 100},
		{SubgroupID: 1, TierName: "nvme", Persistent: false, Bytes: 100},
		{SubgroupID: 2, TierName: "pfs", Persistent: true, Bytes: 100},
		{SubgroupID: 3, TierName: "pfs", Persistent: true, Bytes: 100},
		{SubgroupID: 4, TierName: "", Persistent: false, Bytes: 100},
	}
}

func TestBuildPlan(t *testing.T) {
	p := BuildPlan(mkLocs())
	if len(p.PreStaged) != 2 || len(p.ToFlush) != 3 {
		t.Fatalf("plan = %d pre-staged, %d to flush", len(p.PreStaged), len(p.ToFlush))
	}
	if p.PreStagedBytes() != 200 || p.FlushBytes() != 300 {
		t.Errorf("bytes = %d/%d", p.PreStagedBytes(), p.FlushBytes())
	}
	if s := p.Savings(); s != 0.4 {
		t.Errorf("savings = %v, want 0.4", s)
	}
}

func TestEmptyPlanSavings(t *testing.T) {
	var p Plan
	if p.Savings() != 0 {
		t.Error("empty plan savings should be 0")
	}
}

func TestWriterFlushesRemainder(t *testing.T) {
	tier := storage.NewMemTier("pfs")
	w := NewWriter(tier, "ckpt")
	defer w.Close()
	plan := BuildPlan(mkLocs())
	fetch := func(_ context.Context, sg int) ([]byte, error) {
		return []byte(fmt.Sprintf("state-%d", sg)), nil
	}
	n, err := w.Write(context.Background(), 7, plan, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("state-0")+len("state-1")+len("state-4")) {
		t.Errorf("written = %d", n)
	}
	keys, _ := tier.Keys(context.Background())
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	// Pre-staged subgroups (2, 3) must NOT be rewritten.
	for _, k := range keys {
		if k == "ckpt-step000007-sg00002.ckpt" || k == "ckpt-step000007-sg00003.ckpt" {
			t.Errorf("pre-staged subgroup rewritten: %s", k)
		}
	}
	// Round-trip one object.
	dst := make([]byte, len("state-0"))
	if err := tier.Read(context.Background(), "ckpt-step000007-sg00000.ckpt", dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "state-0" {
		t.Errorf("payload = %q", dst)
	}
}

func TestWriterFetchError(t *testing.T) {
	w := NewWriter(storage.NewMemTier("pfs"), "ckpt")
	defer w.Close()
	boom := errors.New("fetch failed")
	plan := BuildPlan(mkLocs())
	_, err := w.Write(context.Background(), 1, plan, func(_ context.Context, sg int) ([]byte, error) {
		if sg == 1 {
			return nil, boom
		}
		return []byte{1}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestManifest(t *testing.T) {
	m := BuildManifest(5, BuildPlan(mkLocs()))
	if m.Step != 5 {
		t.Error("step lost")
	}
	if len(m.Written) != 3 || len(m.PreStaged) != 2 {
		t.Errorf("manifest = %+v", m)
	}
}

func TestSavingsGrowWithPFSShare(t *testing.T) {
	// The more subgroups the placement model sends to the persistent
	// path, the cheaper checkpoints get — the §3.3 claim.
	mk := func(pfsCount int) Plan {
		locs := make([]Location, 10)
		for i := range locs {
			locs[i] = Location{SubgroupID: i, TierName: "nvme", Bytes: 10}
			if i < pfsCount {
				locs[i] = Location{SubgroupID: i, TierName: "pfs", Persistent: true, Bytes: 10}
			}
		}
		return BuildPlan(locs)
	}
	if !(mk(6).Savings() > mk(3).Savings()) {
		t.Error("savings should grow with the PFS share")
	}
}
