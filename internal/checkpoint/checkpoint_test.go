package checkpoint

//mlpvet:allowfile clockcheck the test paces a slow tier with real sleeps and stamps with real time

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/storage"
)

// waitReleased polls for the asynchronous per-buffer release calls (they
// fire when a write lands, not when Write returns).
func waitReleased(t *testing.T, released *atomic.Int32, want int32) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for released.Load() != want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := released.Load(); got != want {
		t.Errorf("released %d buffers, want %d", got, want)
	}
}

func mkLocs() []Location {
	return []Location{
		{SubgroupID: 0, TierName: "host", Persistent: false, Bytes: 100},
		{SubgroupID: 1, TierName: "nvme", Key: "rank000-sg00001.opt", Persistent: false, Bytes: 100},
		{SubgroupID: 2, TierName: "pfs", Key: "rank000-sg00002.opt", Persistent: true, Bytes: 100},
		{SubgroupID: 3, TierName: "pfs", Key: "rank000-sg00003.opt", Persistent: true, Bytes: 100},
		{SubgroupID: 4, TierName: "", Persistent: false, Bytes: 100},
	}
}

func TestBuildPlan(t *testing.T) {
	p := BuildPlan(mkLocs())
	if len(p.PreStaged) != 2 || len(p.ToFlush) != 3 {
		t.Fatalf("plan = %d pre-staged, %d to flush", len(p.PreStaged), len(p.ToFlush))
	}
	if p.PreStagedBytes() != 200 || p.FlushBytes() != 300 {
		t.Errorf("bytes = %d/%d", p.PreStagedBytes(), p.FlushBytes())
	}
	if s := p.Savings(); s != 0.4 {
		t.Errorf("savings = %v, want 0.4", s)
	}
}

func TestEmptyPlanSavings(t *testing.T) {
	var p Plan
	if p.Savings() != 0 {
		t.Error("empty plan savings should be 0")
	}
}

func TestWriterFlushesRemainder(t *testing.T) {
	tier := storage.NewMemTier("pfs")
	w := NewWriter(tier, "ckpt")
	defer w.Close()
	plan := BuildPlan(mkLocs())
	fetched := 0
	fetch := func(_ context.Context, sg int) ([]byte, error) {
		fetched++
		return []byte(fmt.Sprintf("state-%d", sg)), nil
	}
	var released atomic.Int32
	n, err := w.Write(context.Background(), 7, plan, fetch, func([]byte) { released.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("state-0")+len("state-1")+len("state-4")) {
		t.Errorf("written = %d", n)
	}
	// Staging memory is bounded: every fetched buffer is released once its
	// write lands (asynchronously, so poll briefly).
	waitReleased(t, &released, int32(fetched))
	if fetched != 3 {
		t.Errorf("fetched = %d buffers, want 3", fetched)
	}
	keys, _ := tier.Keys(context.Background())
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	// Pre-staged subgroups (2, 3) must NOT be rewritten.
	for _, k := range keys {
		if k == ObjectKey("ckpt", 7, 2) || k == ObjectKey("ckpt", 7, 3) {
			t.Errorf("pre-staged subgroup rewritten: %s", k)
		}
	}
	// Round-trip one object.
	dst := make([]byte, len("state-0"))
	if err := tier.Read(context.Background(), ObjectKey("ckpt", 7, 0), dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "state-0" {
		t.Errorf("payload = %q", dst)
	}
}

func TestWriterFetchError(t *testing.T) {
	tier := storage.NewMemTier("pfs")
	w := NewWriter(tier, "ckpt")
	defer w.Close()
	boom := errors.New("fetch failed")
	plan := BuildPlan(mkLocs()) // ToFlush order: 0, 1, 4
	var released atomic.Int32
	_, err := w.Write(context.Background(), 1, plan, func(_ context.Context, sg int) ([]byte, error) {
		if sg == 1 {
			return nil, boom
		}
		return []byte{1}, nil
	}, func([]byte) { released.Add(1) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	waitReleased(t, &released, 1) // the one buffer fetched before the error
	// The write submitted before the failing fetch was waited, not
	// abandoned: it must be durable by the time Write returns.
	if _, err := tier.Size(context.Background(), ObjectKey("ckpt", 1, 0)); err != nil {
		t.Errorf("pre-error write not landed: %v", err)
	}
}

func TestWriterWriteErrorWaitsAllOps(t *testing.T) {
	boom := errors.New("disk full")
	ft := &storage.FaultTier{
		Tier:       storage.NewMemTier("pfs"),
		FailEvery:  2, // every second write fails
		Err:        boom,
		FailWrites: true,
	}
	w := NewWriter(ft, "ckpt")
	plan := BuildPlan(mkLocs())
	_, err := w.Write(context.Background(), 1, plan, func(_ context.Context, sg int) ([]byte, error) {
		return []byte{byte(sg)}, nil
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// All ops were waited before Write returned, so Close cannot hang on
	// leaked in-flight work.
	w.Close()
}

func TestManifestFromPlan(t *testing.T) {
	m := BuildManifest(5, BuildPlan(mkLocs()), "ckpt")
	if m.Step != 5 || m.FormatVersion != ManifestVersion {
		t.Errorf("header = %+v", m)
	}
	if len(m.Entries) != 5 {
		t.Fatalf("entries = %d", len(m.Entries))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pre-staged entries point at step-tagged snapshot keys on their own
	// tier — never at the live training keys the next phase overwrites.
	for _, sg := range []int{2, 3} {
		e, ok := m.Entry(sg)
		if !ok || !e.PreStaged {
			t.Fatalf("subgroup %d entry = %+v", sg, e)
		}
		if e.Tier != "pfs" || e.Key != SnapshotKey("ckpt", 5, sg) {
			t.Errorf("subgroup %d references %s/%s, want pfs snapshot", sg, e.Tier, e.Key)
		}
		if e.Key == fmt.Sprintf("rank000-sg%05d.opt", sg) {
			t.Errorf("subgroup %d references the live training key", sg)
		}
	}
	// Flushed entries land on the checkpoint tier under step-tagged keys,
	// remembering their origin for residency rebuild.
	e0, _ := m.Entry(0)
	if e0.Tier != "" || e0.Key != ObjectKey("ckpt", 5, 0) || e0.Origin != "host" {
		t.Errorf("host entry = %+v", e0)
	}
	if s := m.Savings(); s != 0.4 {
		t.Errorf("savings = %v, want 0.4", s)
	}
}

func TestManifestValidate(t *testing.T) {
	good := BuildManifest(1, BuildPlan(mkLocs()), "c")
	bad := good
	bad.FormatVersion = 99
	if bad.Validate() == nil {
		t.Error("unknown version accepted")
	}
	gap := good
	gap.Entries = gap.Entries[1:]
	if gap.Validate() == nil {
		t.Error("non-dense entries accepted")
	}
}

func TestManifestRoundTripAndReader(t *testing.T) {
	ctx := context.Background()
	tier := storage.NewMemTier("ckpt")
	w := NewWriter(tier, "run")
	defer w.Close()

	mk := func(step int) Manifest {
		m := BuildManifest(step, BuildPlan(mkLocs()), "run")
		m.Rank = 3
		m.Params = 500
		m.SubgroupParams = 100
		m.AdamStep = step
		m.Phase = step
		m.SkippedSteps = 1
		m.Scaler = &optim.ScalerState{Scale: 1024, SinceGrow: 7, GoodSteps: int64(step)}
		m.Numerics = Numerics{Order: "alternating", SkipGradFlush: true, GradAccumSteps: 2, LR: 6e-5, Beta1: 0.9, Beta2: 0.95, Eps: 1e-8}
		return m
	}
	for _, step := range []int{2, 5} {
		if err := w.WriteManifest(mk(step)); err != nil {
			t.Fatal(err)
		}
	}
	// Unrelated keys must not confuse discovery.
	_ = tier.Write(ctx, "run-step000002-sg00000.ckpt", []byte{1})
	_ = tier.Write(ctx, "other-step000009.manifest", []byte("{}"))

	r := NewReader(tier, "run")
	steps, err := r.Steps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0] != 2 || steps[1] != 5 {
		t.Fatalf("steps = %v", steps)
	}
	latest, err := r.LatestStep(ctx)
	if err != nil || latest != 5 {
		t.Fatalf("latest = %d, %v", latest, err)
	}
	got, err := r.ReadManifest(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := mk(5)
	if got.Rank != want.Rank || got.Params != want.Params || got.AdamStep != want.AdamStep ||
		got.Phase != want.Phase || got.SkippedSteps != want.SkippedSteps {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.Scaler == nil || *got.Scaler != *want.Scaler {
		t.Errorf("scaler state = %+v, want %+v", got.Scaler, want.Scaler)
	}
	if got.Numerics != want.Numerics {
		t.Errorf("numerics = %+v, want %+v", got.Numerics, want.Numerics)
	}
	if len(got.Entries) != len(want.Entries) || got.Entries[2] != want.Entries[2] {
		t.Errorf("entries differ: %+v", got.Entries)
	}
}

func TestReaderNoManifest(t *testing.T) {
	r := NewReader(storage.NewMemTier("ckpt"), "run")
	if _, err := r.LatestStep(context.Background()); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestReaderVerify(t *testing.T) {
	ctx := context.Background()
	ckpt := storage.NewMemTier("ckpt")
	pfs := storage.NewMemTier("pfs")
	resolve := func(name string) storage.Tier {
		if name == "pfs" {
			return pfs
		}
		return nil
	}
	m := BuildManifest(1, BuildPlan(mkLocs()), "run")
	r := NewReader(ckpt, "run")
	if err := r.Verify(ctx, m, resolve); err == nil {
		t.Fatal("verify passed with no objects present")
	}
	for _, e := range m.Entries {
		tier := storage.Tier(ckpt)
		if e.Tier != "" {
			tier = pfs
		}
		if err := tier.Write(ctx, e.Key, make([]byte, e.Bytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Verify(ctx, m, resolve); err != nil {
		t.Fatalf("verify failed with all objects present: %v", err)
	}
	// A size mismatch (torn or overwritten object) is staleness.
	if err := pfs.Write(ctx, m.Entries[2].Key, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(ctx, m, resolve); err == nil {
		t.Error("verify missed a size mismatch")
	}
}

// TestReaderPruneRetention: pruning keeps the newest checkpoints and
// deletes everything the removed manifests reference — including the
// snapshots on the persistent training tier — manifest first.
func TestReaderPruneRetention(t *testing.T) {
	ctx := context.Background()
	ckpt := storage.NewMemTier("ckpt")
	pfs := storage.NewMemTier("pfs")
	resolve := func(name string) storage.Tier {
		if name == "pfs" {
			return pfs
		}
		return nil
	}
	w := NewWriter(ckpt, "run")
	defer w.Close()
	plan := BuildPlan(mkLocs())
	write := func(step int) Manifest {
		if _, err := w.Write(ctx, step, plan, func(_ context.Context, sg int) ([]byte, error) {
			return make([]byte, 100), nil // matches mkLocs object sizes
		}, nil); err != nil {
			t.Fatal(err)
		}
		m := BuildManifest(step, plan, "run")
		for _, e := range m.Entries {
			if e.Tier != "" {
				if err := pfs.Write(ctx, e.Key, make([]byte, e.Bytes)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.WriteManifest(m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, step := range []int{1, 2, 3} {
		write(step)
	}

	r := NewReader(ckpt, "run")
	if removed, err := r.Prune(ctx, 0, resolve); err != nil || removed != nil {
		t.Fatalf("keep<=0 must be a no-op, got %v, %v", removed, err)
	}
	removed, err := r.Prune(ctx, 2, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != 1 {
		t.Fatalf("removed = %v, want [1]", removed)
	}
	steps, _ := r.Steps(ctx)
	if len(steps) != 2 || steps[0] != 2 || steps[1] != 3 {
		t.Fatalf("steps after prune = %v", steps)
	}
	// Step 1's objects are gone from both tiers; step 2/3's remain.
	m1 := BuildManifest(1, plan, "run")
	for _, e := range m1.Entries {
		tier := storage.Tier(ckpt)
		if e.Tier != "" {
			tier = pfs
		}
		if _, err := tier.Size(ctx, e.Key); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("pruned object %s still present (err=%v)", e.Key, err)
		}
	}
	for _, step := range []int{2, 3} {
		m, err := r.ReadManifest(ctx, step)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Verify(ctx, m, resolve); err != nil {
			t.Errorf("retained step %d damaged by prune: %v", step, err)
		}
	}
}

// TestSweepOrphans: data objects from checkpoints whose manifest never
// landed are deleted once a newer checkpoint commits; committed objects
// and steps at/above the newest manifest (possibly in progress) survive.
func TestSweepOrphans(t *testing.T) {
	ctx := context.Background()
	ckpt := storage.NewMemTier("ckpt")
	pfs := storage.NewMemTier("pfs")
	r := NewReader(ckpt, "run")

	// Orphans at step 1 (failed attempt): flushed object + snapshot.
	_ = ckpt.Write(ctx, ObjectKey("run", 1, 0), []byte{1})
	_ = pfs.Write(ctx, SnapshotKey("run", 1, 3), []byte{1})
	// Another prefix's orphan must not be touched.
	_ = ckpt.Write(ctx, ObjectKey("other", 1, 0), []byte{1})
	// Live training keys must never be touched.
	_ = pfs.Write(ctx, "rank000-sg00003.opt", []byte{1})

	// No committed manifest at all: sweeping is a no-op (the orphan could
	// be the very first checkpoint, still in progress).
	deleted, err := r.SweepOrphans(ctx, []storage.Tier{pfs})
	if err != nil || deleted != nil {
		t.Fatalf("sweep with no manifests = %v, %v; want no-op", deleted, err)
	}

	// Commit step 2, plus objects for a possibly-in-progress step 9.
	w := NewWriter(ckpt, "run")
	defer w.Close()
	m2 := BuildManifest(2, BuildPlan(mkLocs()), "run")
	_ = ckpt.Write(ctx, ObjectKey("run", 2, 0), make([]byte, 100))
	_ = pfs.Write(ctx, SnapshotKey("run", 2, 2), make([]byte, 100))
	if err := w.WriteManifest(m2); err != nil {
		t.Fatal(err)
	}
	_ = ckpt.Write(ctx, ObjectKey("run", 9, 0), []byte{1})

	deleted, err = r.SweepOrphans(ctx, []storage.Tier{pfs})
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("deleted = %v, want the two step-1 orphans", deleted)
	}
	for _, k := range []string{ObjectKey("run", 1, 0)} {
		if _, err := ckpt.Size(ctx, k); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("orphan %s survived sweep", k)
		}
	}
	if _, err := pfs.Size(ctx, SnapshotKey("run", 1, 3)); !errors.Is(err, storage.ErrNotFound) {
		t.Error("orphan snapshot survived sweep")
	}
	// Committed step 2, in-progress step 9, foreign prefix, and live
	// training keys all survive.
	for tier, key := range map[storage.Tier]string{
		ckpt: ObjectKey("run", 2, 0),
		pfs:  SnapshotKey("run", 2, 2),
	} {
		if _, err := tier.Size(ctx, key); err != nil {
			t.Errorf("committed object %s swept: %v", key, err)
		}
	}
	if _, err := ckpt.Size(ctx, ObjectKey("run", 9, 0)); err != nil {
		t.Error("in-progress (newer than latest manifest) object swept")
	}
	if _, err := ckpt.Size(ctx, ObjectKey("other", 1, 0)); err != nil {
		t.Error("foreign-prefix object swept")
	}
	if _, err := pfs.Size(ctx, "rank000-sg00003.opt"); err != nil {
		t.Error("live training key swept")
	}
}

func TestSavingsGrowWithPFSShare(t *testing.T) {
	// The more subgroups the placement model sends to the persistent
	// path, the cheaper checkpoints get — the §3.3 claim.
	mk := func(pfsCount int) Plan {
		locs := make([]Location, 10)
		for i := range locs {
			locs[i] = Location{SubgroupID: i, TierName: "nvme", Bytes: 10}
			if i < pfsCount {
				locs[i] = Location{SubgroupID: i, TierName: "pfs", Persistent: true, Bytes: 10}
			}
		}
		return BuildPlan(locs)
	}
	if !(mk(6).Savings() > mk(3).Savings()) {
		t.Error("savings should grow with the PFS share")
	}
}

// TestValidStepsSkipsTornManifest: a manifest key whose content is
// truncated JSON (a rank died mid-commit) appears in Steps but not in
// ValidSteps — recovery must never select it.
func TestValidStepsSkipsTornManifest(t *testing.T) {
	ctx := context.Background()
	tier := storage.NewMemTier("ckpt")
	w := NewWriter(tier, "run")
	defer w.Close()
	for _, step := range []int{2, 5} {
		m := BuildManifest(step, BuildPlan(mkLocs()), "run")
		if err := w.WriteManifest(m); err != nil {
			t.Fatal(err)
		}
	}
	// Step 8's manifest landed torn: truncated JSON.
	full := BuildManifest(8, BuildPlan(mkLocs()), "run")
	buf, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Write(ctx, ManifestKey("run", 8), buf[:len(buf)/2]); err != nil {
		t.Fatal(err)
	}
	// Step 9's manifest is intact JSON but records the wrong step — also
	// not restorable under key 9.
	if err := tier.Write(ctx, ManifestKey("run", 9), mustJSON(t, BuildManifest(7, BuildPlan(mkLocs()), "run"))); err != nil {
		t.Fatal(err)
	}

	r := NewReader(tier, "run")
	steps, err := r.Steps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 {
		t.Fatalf("Steps = %v, want the torn and mismatched manifests listed too", steps)
	}
	valid, err := r.ValidSteps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(valid) != 2 || valid[0] != 2 || valid[1] != 5 {
		t.Fatalf("ValidSteps = %v, want [2 5]", valid)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestNewestCommonStep(t *testing.T) {
	cases := []struct {
		name string
		sets [][]int
		want int
		ok   bool
	}{
		{"empty input", nil, 0, false},
		{"one empty rank", [][]int{{2, 5}, {}}, 0, false},
		{"no overlap", [][]int{{2}, {5}}, 0, false},
		{"identical", [][]int{{2, 5, 8}, {2, 5, 8}}, 8, true},
		{"differing sets", [][]int{{2, 5, 8}, {2, 5}, {5, 8}}, 5, true},
		{"single rank", [][]int{{3, 7}}, 7, true},
		{"duplicates in one set", [][]int{{5, 5, 2}, {5}}, 5, true},
		{"step zero common", [][]int{{0, 4}, {0}}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := NewestCommonStep(tc.sets)
			if got != tc.want || ok != tc.ok {
				t.Fatalf("NewestCommonStep(%v) = (%d, %v), want (%d, %v)", tc.sets, got, ok, tc.want, tc.ok)
			}
		})
	}
}
