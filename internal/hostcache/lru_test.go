package hostcache

import (
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU(2)
	if l.Capacity() != 2 || l.Len() != 0 || l.Contains(1) {
		t.Fatal("fresh LRU wrong")
	}
	if _, ev := l.Touch(1); ev {
		t.Error("unexpected eviction")
	}
	if _, ev := l.Touch(2); ev {
		t.Error("unexpected eviction")
	}
	v, ev := l.Touch(3)
	if !ev || v != 1 {
		t.Errorf("evicted %d (%v), want 1", v, ev)
	}
	if !l.Contains(2) || !l.Contains(3) || l.Contains(1) {
		t.Error("membership wrong after eviction")
	}
}

func TestLRUTouchRefreshes(t *testing.T) {
	l := NewLRU(2)
	l.Touch(1)
	l.Touch(2)
	l.Touch(1) // refresh: now 2 is oldest
	v, ev := l.Touch(3)
	if !ev || v != 2 {
		t.Errorf("evicted %d, want 2", v)
	}
	mem := l.Members()
	if len(mem) != 2 || mem[0] != 1 || mem[1] != 3 {
		t.Errorf("Members = %v", mem)
	}
}

func TestLRURemove(t *testing.T) {
	l := NewLRU(3)
	l.Touch(1)
	l.Touch(2)
	l.Remove(1)
	l.Remove(99) // no-op
	if l.Contains(1) || l.Len() != 1 {
		t.Error("remove failed")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	l := NewLRU(0)
	v, ev := l.Touch(5)
	if !ev || v != 5 {
		t.Errorf("zero-cap Touch = %d,%v; want immediate self-eviction", v, ev)
	}
	if l.Len() != 0 {
		t.Error("zero-cap retained something")
	}
}

// TestLRUReproducesPaperCacheBehaviour is the core behavioural check: the
// same LRU mechanism yields 0 hits under sequential ordering and K hits
// under alternating ordering, which is the entire "Enable Caching" effect.
func TestLRUReproducesPaperCacheBehaviour(t *testing.T) {
	const m, k = 20, 5
	countHits := func(policy Order) int {
		l := NewLRU(k)
		hits := 0
		for iter := 0; iter < 6; iter++ {
			for _, sg := range UpdateOrder(policy, m, iter) {
				if l.Contains(sg) {
					hits++
				}
				l.Touch(sg)
			}
		}
		return hits
	}
	seq := countHits(Sequential)
	alt := countHits(Alternating)
	if seq != 0 {
		t.Errorf("sequential hits = %d, want 0 (thrashing)", seq)
	}
	// 5 phase transitions after the first phase, k hits each.
	if alt != 5*k {
		t.Errorf("alternating hits = %d, want %d", alt, 5*k)
	}
}

func TestLRUNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLRU(-1)
}

// TestLRUPinShieldsFromEviction: a pinned member is skipped as eviction
// victim; the next unpinned LRU member goes instead.
func TestLRUPinShieldsFromEviction(t *testing.T) {
	l := NewLRU(2)
	l.Touch(1)
	l.Touch(2)
	l.Pin(1) // LRU member, but pinned
	ev := l.TouchEvict(3)
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2] (pinned 1 must survive)", ev)
	}
	if !l.Contains(1) || !l.Pinned(1) {
		t.Error("pinned member dropped")
	}
	l.Unpin(1)
}

// TestLRUPinOverflowDrains: when all older members are pinned, the
// just-touched subgroup itself is the victim — HostCacheSlots is a host
// memory budget, so eviction beats overflow. Only when every member
// including the new one is pinned does the set temporarily overflow, and
// the backlog drains on the first touch after unpinning.
func TestLRUPinOverflowDrains(t *testing.T) {
	l := NewLRU(2)
	l.Touch(1)
	l.Touch(2)
	l.Pin(1)
	l.Pin(2)
	// 1 and 2 pinned: the unpinned newcomer bounces straight back out.
	if ev := l.TouchEvict(3); len(ev) != 1 || ev[0] != 3 {
		t.Fatalf("evicted %v, want [3] (memory budget beats recency)", ev)
	}
	// Pinned newcomer: nothing evictable, set overflows.
	l.Pin(4)
	if ev := l.TouchEvict(4); len(ev) != 0 {
		t.Fatalf("evicted %v, want none (every member pinned)", ev)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3 (temporary overflow)", l.Len())
	}
	l.Unpin(1)
	l.Unpin(2)
	l.Unpin(4)
	ev := l.TouchEvict(5)
	if len(ev) != 2 || ev[0] != 1 || ev[1] != 2 {
		t.Fatalf("evicted %v, want [1 2] (overflow drains oldest-first)", ev)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2 after drain", l.Len())
	}
}

// TestLRUPinCounts: pins nest; eviction is blocked until the last unpin.
func TestLRUPinCounts(t *testing.T) {
	l := NewLRU(1)
	l.Touch(7)
	l.Pin(7)
	l.Pin(7)
	l.Unpin(7)
	if !l.Pinned(7) {
		t.Fatal("pin count dropped too early")
	}
	// 8 is unpinned and over budget: it is evicted, 7 survives.
	if ev := l.TouchEvict(8); len(ev) != 1 || ev[0] != 8 {
		t.Fatalf("evicted %v, want [8] (pinned 7 must survive)", ev)
	}
	if !l.Contains(7) {
		t.Fatal("pinned member dropped")
	}
	l.Unpin(7)
	if l.Pinned(7) {
		t.Fatal("still pinned after final unpin")
	}
}

func TestLRUUnpinUnpinnedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLRU(2).Unpin(3)
}

// TestLRUTouchEvictCapacityZero keeps the capacity-0 contract: nothing is
// retained and the touched subgroup itself is the victim.
func TestLRUTouchEvictCapacityZero(t *testing.T) {
	l := NewLRU(0)
	if ev := l.TouchEvict(5); len(ev) != 1 || ev[0] != 5 {
		t.Fatalf("evicted %v, want [5]", ev)
	}
	if l.Len() != 0 {
		t.Fatal("capacity-0 LRU retained a member")
	}
}

// TestLRUConcurrentPinTouch exercises the pin/unpin/touch surface from
// many goroutines; run under -race this guards the concurrent update
// pipeline's cache interactions.
func TestLRUConcurrentPinTouch(t *testing.T) {
	l := NewLRU(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sg := (g*200 + i) % 16
				l.Pin(sg)
				l.TouchEvict(sg)
				l.Contains(sg)
				l.Unpin(sg)
			}
		}(g)
	}
	wg.Wait()
	if l.Len() < 4 {
		t.Errorf("len = %d, want the cache full after the storm", l.Len())
	}
}
