package hostcache

import (
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU(2)
	if l.Capacity() != 2 || l.Len() != 0 || l.Contains(1) {
		t.Fatal("fresh LRU wrong")
	}
	if _, ev := l.Touch(1); ev {
		t.Error("unexpected eviction")
	}
	if _, ev := l.Touch(2); ev {
		t.Error("unexpected eviction")
	}
	v, ev := l.Touch(3)
	if !ev || v != 1 {
		t.Errorf("evicted %d (%v), want 1", v, ev)
	}
	if !l.Contains(2) || !l.Contains(3) || l.Contains(1) {
		t.Error("membership wrong after eviction")
	}
}

func TestLRUTouchRefreshes(t *testing.T) {
	l := NewLRU(2)
	l.Touch(1)
	l.Touch(2)
	l.Touch(1) // refresh: now 2 is oldest
	v, ev := l.Touch(3)
	if !ev || v != 2 {
		t.Errorf("evicted %d, want 2", v)
	}
	mem := l.Members()
	if len(mem) != 2 || mem[0] != 1 || mem[1] != 3 {
		t.Errorf("Members = %v", mem)
	}
}

func TestLRURemove(t *testing.T) {
	l := NewLRU(3)
	l.Touch(1)
	l.Touch(2)
	l.Remove(1)
	l.Remove(99) // no-op
	if l.Contains(1) || l.Len() != 1 {
		t.Error("remove failed")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	l := NewLRU(0)
	v, ev := l.Touch(5)
	if !ev || v != 5 {
		t.Errorf("zero-cap Touch = %d,%v; want immediate self-eviction", v, ev)
	}
	if l.Len() != 0 {
		t.Error("zero-cap retained something")
	}
}

// TestLRUReproducesPaperCacheBehaviour is the core behavioural check: the
// same LRU mechanism yields 0 hits under sequential ordering and K hits
// under alternating ordering, which is the entire "Enable Caching" effect.
func TestLRUReproducesPaperCacheBehaviour(t *testing.T) {
	const m, k = 20, 5
	countHits := func(policy Order) int {
		l := NewLRU(k)
		hits := 0
		for iter := 0; iter < 6; iter++ {
			for _, sg := range UpdateOrder(policy, m, iter) {
				if l.Contains(sg) {
					hits++
				}
				l.Touch(sg)
			}
		}
		return hits
	}
	seq := countHits(Sequential)
	alt := countHits(Alternating)
	if seq != 0 {
		t.Errorf("sequential hits = %d, want 0 (thrashing)", seq)
	}
	// 5 phase transitions after the first phase, k hits each.
	if alt != 5*k {
		t.Errorf("alternating hits = %d, want %d", alt, 5*k)
	}
}

func TestLRUNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLRU(-1)
}
