package hostcache

//mlpvet:allowfile clockcheck time.After here is a liveness timeout guard, not measured time

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestUpdateOrderSequential(t *testing.T) {
	for iter := 0; iter < 4; iter++ {
		order := UpdateOrder(Sequential, 5, iter)
		for i, sg := range order {
			if sg != i {
				t.Fatalf("iter %d: order = %v", iter, order)
			}
		}
	}
}

func TestUpdateOrderAlternating(t *testing.T) {
	asc := UpdateOrder(Alternating, 4, 0)
	desc := UpdateOrder(Alternating, 4, 1)
	asc2 := UpdateOrder(Alternating, 4, 2)
	wantAsc := []int{0, 1, 2, 3}
	wantDesc := []int{3, 2, 1, 0}
	for i := range wantAsc {
		if asc[i] != wantAsc[i] || desc[i] != wantDesc[i] || asc2[i] != wantAsc[i] {
			t.Fatalf("orders: %v %v %v", asc, desc, asc2)
		}
	}
}

func TestPropertyOrderIsPermutation(t *testing.T) {
	f := func(mSeed, iterSeed uint8, alt bool) bool {
		m := int(mSeed%50) + 1
		iter := int(iterSeed % 10)
		pol := Sequential
		if alt {
			pol = Alternating
		}
		order := UpdateOrder(pol, m, iter)
		seen := make(map[int]bool, m)
		for _, sg := range order {
			if sg < 0 || sg >= m || seen[sg] {
				return false
			}
			seen[sg] = true
		}
		return len(seen) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlternatingConsecutivePhasesOverlapAtBoundary(t *testing.T) {
	// The tail of phase k equals the head of phase k+1 — the property the
	// caching optimization exploits.
	m, cap := 10, 3
	for iter := 0; iter < 5; iter++ {
		cur := UpdateOrder(Alternating, m, iter)
		next := UpdateOrder(Alternating, m, iter+1)
		tail := cur[m-cap:]
		head := next[:cap]
		for i := 0; i < cap; i++ {
			if tail[cap-1-i] != head[i] {
				t.Fatalf("iter %d: tail %v vs head %v", iter, tail, head)
			}
		}
	}
}

func TestExpectedHits(t *testing.T) {
	if got := ExpectedHits(Alternating, 100, 30); got != 30 {
		t.Errorf("alternating hits = %d, want 30", got)
	}
	if got := ExpectedHits(Sequential, 100, 30); got != 0 {
		t.Errorf("sequential hits = %d, want 0 (thrashing)", got)
	}
	if got := ExpectedHits(Sequential, 10, 30); got != 10 {
		t.Errorf("all-fits hits = %d, want 10", got)
	}
	if got := ExpectedHits(Alternating, 10, 10); got != 10 {
		t.Errorf("exact-fit hits = %d, want 10", got)
	}
}

func TestResidencyBasics(t *testing.T) {
	r := NewResidency(2)
	if r.Contains(1) {
		t.Error("empty cache contains 1")
	}
	if _, ev := r.Insert(1, nil); ev {
		t.Error("unexpected eviction")
	}
	if _, ev := r.Insert(2, nil); ev {
		t.Error("unexpected eviction")
	}
	if !r.Contains(1) || !r.Contains(2) || r.Len() != 2 {
		t.Error("inserts lost")
	}
	// Duplicate insert is a no-op.
	if _, ev := r.Insert(1, nil); ev {
		t.Error("duplicate insert evicted")
	}
	r.Remove(1)
	if r.Contains(1) || r.Len() != 1 {
		t.Error("remove failed")
	}
	r.Remove(99) // no-op
}

func TestResidencyEvictsFurthestUse(t *testing.T) {
	r := NewResidency(2)
	r.Insert(1, nil)
	r.Insert(2, nil)
	// Next order uses 2 at position 0, 1 at position 5: evict 1.
	next := map[int]int{2: 0, 1: 5}
	ev, did := r.Insert(3, next)
	if !did || ev != 1 {
		t.Errorf("evicted %d (did=%v), want 1", ev, did)
	}
	if !r.Contains(2) || !r.Contains(3) {
		t.Error("wrong survivor set")
	}
}

func TestResidencyEvictsNeverUsedFirst(t *testing.T) {
	r := NewResidency(2)
	r.Insert(7, nil)
	r.Insert(8, nil)
	// 8 appears in the next order, 7 does not -> 7 goes.
	ev, did := r.Insert(9, map[int]int{8: 0})
	if !did || ev != 7 {
		t.Errorf("evicted %d, want 7", ev)
	}
}

func TestResidencyZeroCapacity(t *testing.T) {
	r := NewResidency(0)
	if _, did := r.Insert(1, nil); did {
		t.Error("zero-capacity cache evicted something")
	}
	if r.Contains(1) || r.Len() != 0 {
		t.Error("zero-capacity cache retained a subgroup")
	}
}

func TestResidencySnapshotAndNextUseIndex(t *testing.T) {
	r := NewResidency(3)
	r.Insert(5, nil)
	r.Insert(6, nil)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	idx := NextUseIndex([]int{4, 2, 0})
	if idx[4] != 0 || idx[2] != 1 || idx[0] != 2 {
		t.Errorf("NextUseIndex = %v", idx)
	}
}

func TestResidencyConcurrentSafety(t *testing.T) {
	r := NewResidency(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sg := (seed*31 + i) % 32
				r.Insert(sg, nil)
				r.Contains(sg)
				if i%3 == 0 {
					r.Remove(sg)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() > 8 {
		t.Errorf("capacity violated: %d", r.Len())
	}
}

func TestBufferPoolBlocking(t *testing.T) {
	p := NewBufferPool(1, 64)
	b := p.Get()
	if len(b) != 64 {
		t.Fatalf("buffer size %d", len(b))
	}
	if p.TryGet() != nil {
		t.Error("TryGet should fail when exhausted")
	}
	done := make(chan struct{})
	go func() {
		p.Get() // blocks until Put
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Get returned before Put")
	case <-time.After(10 * time.Millisecond):
	}
	p.Put(b)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Get never unblocked")
	}
}

func TestBufferPoolMisuse(t *testing.T) {
	p := NewBufferPool(1, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong-size Put should panic")
			}
		}()
		p.Put(make([]byte, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflow Put should panic")
			}
		}()
		p.Put(make([]byte, 8)) // pool already full
	}()
}

func TestBufferPoolAccounting(t *testing.T) {
	p := NewBufferPool(3, 16)
	if p.Free() != 3 || p.BufSize() != 16 {
		t.Fatalf("Free=%d BufSize=%d", p.Free(), p.BufSize())
	}
	a, b := p.Get(), p.Get()
	if p.Free() != 1 {
		t.Errorf("Free = %d, want 1", p.Free())
	}
	p.Put(a)
	p.Put(b)
	if p.Free() != 3 {
		t.Errorf("Free = %d, want 3", p.Free())
	}
}

func TestOrderStringer(t *testing.T) {
	if Sequential.String() != "sequential" || Alternating.String() != "alternating" {
		t.Error("Order.String broken")
	}
	if Order(9).String() == "" {
		t.Error("unknown order should still stringify")
	}
}
