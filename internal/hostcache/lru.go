package hostcache

import "sync"

// LRU models the host staging buffers as a least-recently-used set of
// subgroups, which is how DeepNVMe's rotating pinned buffers behave: after
// a subgroup is updated it stays in host memory until K more-recent
// subgroups displace it.
//
// This single mechanism produces both behaviours the paper contrasts:
// under the sequential order the tail cached at the end of a phase is
// displaced long before the next phase reaches it (zero hits — thrashing),
// while under the alternating order the tail is exactly the head of the
// next phase (K hits — the "Enable Caching" speedup).
type LRU struct {
	mu       sync.Mutex
	capacity int
	order    []int // front = least recently used
	member   map[int]bool
}

// NewLRU creates an LRU set with the given capacity (>= 0).
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		panic("hostcache: negative LRU capacity")
	}
	return &LRU{capacity: capacity, member: make(map[int]bool)}
}

// Capacity returns the maximum resident count.
func (l *LRU) Capacity() int { return l.capacity }

// Len returns the resident count.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// Contains reports residency without affecting recency.
func (l *LRU) Contains(sg int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.member[sg]
}

// Touch marks sg as most recently used, inserting it if absent. If the
// insertion overflows capacity the least recently used member is evicted
// and returned with true. With capacity 0 nothing is ever retained and
// Touch reports sg itself as evicted.
func (l *LRU) Touch(sg int) (evicted int, didEvict bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.capacity == 0 {
		return sg, true
	}
	if l.member[sg] {
		l.remove(sg)
	}
	l.order = append(l.order, sg)
	l.member[sg] = true
	if len(l.order) > l.capacity {
		victim := l.order[0]
		l.order = l.order[1:]
		delete(l.member, victim)
		return victim, true
	}
	return 0, false
}

// Remove drops sg from the set (no-op when absent).
func (l *LRU) Remove(sg int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.member[sg] {
		l.remove(sg)
		delete(l.member, sg)
	}
}

// remove deletes sg from the order slice. Caller holds mu.
func (l *LRU) remove(sg int) {
	for i, v := range l.order {
		if v == sg {
			l.order = append(l.order[:i], l.order[i+1:]...)
			return
		}
	}
}

// Members returns the resident subgroups from least to most recently used.
func (l *LRU) Members() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.order...)
}
