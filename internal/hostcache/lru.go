package hostcache

import "sync"

// LRU models the host staging buffers as a least-recently-used set of
// subgroups, which is how DeepNVMe's rotating pinned buffers behave: after
// a subgroup is updated it stays in host memory until K more-recent
// subgroups displace it.
//
// This single mechanism produces both behaviours the paper contrasts:
// under the sequential order the tail cached at the end of a phase is
// displaced long before the next phase reaches it (zero hits — thrashing),
// while under the alternating order the tail is exactly the head of the
// next phase (K hits — the "Enable Caching" speedup).
//
// Pinning supports the concurrent update pipeline: a subgroup that is in
// flight through the issuer→worker→committer stages is pinned, and pinned
// members are never chosen as eviction victims, so parallel update workers
// cannot flush each other's working set from under an in-progress Adam
// step. If every member is pinned the set temporarily exceeds capacity;
// later TouchEvict calls drain the overflow once pins are released.
type LRU struct {
	mu       sync.Mutex
	capacity int
	order    []int // front = least recently used
	member   map[int]bool
	pins     map[int]int // pin counts; pinned members are never evicted
}

// NewLRU creates an LRU set with the given capacity (>= 0).
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		panic("hostcache: negative LRU capacity")
	}
	return &LRU{capacity: capacity, member: make(map[int]bool), pins: make(map[int]int)}
}

// Capacity returns the maximum resident count.
func (l *LRU) Capacity() int { return l.capacity }

// Len returns the resident count.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// Contains reports residency without affecting recency.
func (l *LRU) Contains(sg int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.member[sg]
}

// Pin increments sg's pin count, shielding it from eviction. Pinning a
// non-member is allowed (the pin takes effect if sg is inserted later).
func (l *LRU) Pin(sg int) {
	l.mu.Lock()
	l.pins[sg]++
	l.mu.Unlock()
}

// Unpin decrements sg's pin count. Unpinning an unpinned subgroup is
// always an engine bug and panics.
func (l *LRU) Unpin(sg int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pins[sg] <= 0 {
		panic("hostcache: unpin of unpinned subgroup")
	}
	l.pins[sg]--
	if l.pins[sg] == 0 {
		delete(l.pins, sg)
	}
}

// Pinned reports whether sg currently holds at least one pin.
func (l *LRU) Pinned(sg int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pins[sg] > 0
}

// Touch marks sg as most recently used, inserting it if absent. If the
// insertion overflows capacity the least recently used unpinned member is
// evicted and returned with true. With capacity 0 nothing is ever retained
// and Touch reports sg itself as evicted.
func (l *LRU) Touch(sg int) (evicted int, didEvict bool) {
	ev := l.TouchEvict(sg)
	if len(ev) == 0 {
		return 0, false
	}
	return ev[0], true
}

// TouchEvict marks sg as most recently used, inserting it if absent, then
// evicts least-recently-used unpinned members while the set exceeds
// capacity. It returns every victim (usually zero or one; more after a
// period where all members were pinned). With capacity 0 nothing is ever
// retained and sg itself is the victim.
func (l *LRU) TouchEvict(sg int) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.capacity == 0 {
		return []int{sg}
	}
	if l.member[sg] {
		l.remove(sg)
	}
	l.order = append(l.order, sg)
	l.member[sg] = true
	var out []int
	for len(l.order) > l.capacity {
		victim, ok := l.victim()
		if !ok {
			break // every member pinned: temporary overflow
		}
		l.remove(victim)
		delete(l.member, victim)
		out = append(out, victim)
	}
	return out
}

// victim returns the least recently used unpinned member. Caller holds mu.
func (l *LRU) victim() (int, bool) {
	for _, sg := range l.order {
		if l.pins[sg] == 0 {
			return sg, true
		}
	}
	return 0, false
}

// Remove drops sg from the set (no-op when absent).
func (l *LRU) Remove(sg int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.member[sg] {
		l.remove(sg)
		delete(l.member, sg)
	}
}

// remove deletes sg from the order slice. Caller holds mu.
func (l *LRU) remove(sg int) {
	for i, v := range l.order {
		if v == sg {
			l.order = append(l.order[:i], l.order[i+1:]...)
			return
		}
	}
}

// Members returns the resident subgroups from least to most recently used.
func (l *LRU) Members() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.order...)
}
