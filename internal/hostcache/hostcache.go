// Package hostcache implements the host-memory subgroup cache and the
// cache-friendly update-ordering policy of MLP-Offload.
//
// The key observation (paper §3.2): Adam updates are embarrassingly
// parallel across subgroups, so the processing order is free. Processing in
// ascending ID order leaves the highest-ID subgroups resident in host
// memory at the end of the update phase; the next update phase therefore
// processes in *descending* order to hit those cached subgroups first, and
// so on, alternating every iteration. The sequential baseline re-processes
// in ascending order every time and thrashes the cache.
package hostcache

import (
	"fmt"
	"sync"
)

// Order is a subgroup processing-order policy.
type Order int

const (
	// Sequential always processes subgroups 0..M-1 (the DeepSpeed ZeRO-3
	// baseline).
	Sequential Order = iota
	// Alternating reverses the order on every update phase (MLP-Offload's
	// "Enable Caching" optimization).
	Alternating
)

func (o Order) String() string {
	switch o {
	case Sequential:
		return "sequential"
	case Alternating:
		return "alternating"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// UpdateOrder returns the subgroup processing order for a given update
// phase (iter counts update phases, starting at 0).
func UpdateOrder(policy Order, m, iter int) []int {
	out := make([]int, m)
	if policy == Alternating && iter%2 == 1 {
		for i := range out {
			out[i] = m - 1 - i
		}
		return out
	}
	for i := range out {
		out[i] = i
	}
	return out
}

// ExpectedHits returns how many of the first subgroups in the order for
// phase iter are host-resident given that capacity subgroups remained
// cached at the end of phase iter-1 under the same policy. For the
// alternating policy the last `capacity` subgroups processed in phase
// iter-1 are exactly the first `capacity` processed in phase iter, so the
// hit count equals min(capacity, m). For the sequential policy the cached
// tail (highest IDs) is processed last while fetches for low IDs evict it
// — zero hits (thrashing), unless everything fits.
func ExpectedHits(policy Order, m, capacity int) int {
	if capacity >= m {
		return m
	}
	if policy == Alternating {
		return capacity
	}
	return 0
}

// Residency tracks which subgroups currently live in host memory, with a
// bounded number of slots. It implements the eviction the engine needs:
// when full, Insert evicts the resident subgroup that will be used furthest
// in the future according to the *next* processing order (Belady-style for
// the known alternating schedule), falling back to lowest-priority.
type Residency struct {
	mu       sync.Mutex
	capacity int
	resident map[int]struct{}
}

// NewResidency creates a tracker with the given slot capacity (>= 0).
func NewResidency(capacity int) *Residency {
	if capacity < 0 {
		panic("hostcache: negative capacity")
	}
	return &Residency{capacity: capacity, resident: make(map[int]struct{})}
}

// Capacity returns the slot capacity.
func (r *Residency) Capacity() int { return r.capacity }

// Len returns the number of resident subgroups.
func (r *Residency) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.resident)
}

// Contains reports whether subgroup sg is host-resident.
func (r *Residency) Contains(sg int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.resident[sg]
	return ok
}

// Insert marks sg resident. If the cache is full it evicts according to
// nextUse: the resident subgroup with the largest nextUse value is evicted
// (use -1 / missing to mean "never used again", which evicts first).
// It returns the evicted subgroup ID and true, or 0,false when no eviction
// happened. Inserting an already-resident subgroup is a no-op.
func (r *Residency) Insert(sg int, nextUse map[int]int) (evicted int, didEvict bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.resident[sg]; ok {
		return 0, false
	}
	if r.capacity == 0 {
		return 0, false // nothing can ever be resident
	}
	if len(r.resident) >= r.capacity {
		victim, ok := r.pickVictim(nextUse)
		if !ok {
			return 0, false
		}
		delete(r.resident, victim)
		r.resident[sg] = struct{}{}
		return victim, true
	}
	r.resident[sg] = struct{}{}
	return 0, false
}

// pickVictim chooses the resident subgroup used furthest in the future.
// Missing entries in nextUse mean "never again" and win immediately.
// Ties break toward the larger ID for determinism. Caller holds mu.
func (r *Residency) pickVictim(nextUse map[int]int) (int, bool) {
	best := -1
	bestUse := -2
	for sg := range r.resident {
		use, ok := nextUse[sg]
		if !ok {
			use = 1 << 30 // never used again
		}
		if use > bestUse || (use == bestUse && sg > best) {
			best, bestUse = sg, use
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Remove explicitly drops sg from residency (e.g. after flushing it to a
// storage tier). Removing a non-resident subgroup is a no-op.
func (r *Residency) Remove(sg int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.resident, sg)
}

// Snapshot returns the resident set (unordered copy).
func (r *Residency) Snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.resident))
	for sg := range r.resident {
		out = append(out, sg)
	}
	return out
}

// NextUseIndex builds the map subgroup->position for an upcoming
// processing order, for use as the Insert eviction oracle.
func NextUseIndex(order []int) map[int]int {
	m := make(map[int]int, len(order))
	for pos, sg := range order {
		m[sg] = pos
	}
	return m
}

// BufferPool is a fixed-size pool of equally sized byte buffers standing in
// for the pinned host staging buffers DeepNVMe pre-allocates for
// asynchronous I/O. Get blocks when the pool is exhausted, which is exactly
// the backpressure that limits in-flight prefetches ("host memory can hold
// a minimum of three subgroups: one flushing, one updating, one
// prefetching").
type BufferPool struct {
	bufSize int
	ch      chan []byte
	mu      sync.Mutex
	spare   int // buffers the lazy pool may still create on demand
}

// NewBufferPool creates a pool of n buffers of bufSize bytes each,
// allocated eagerly (the DeepNVMe-style pre-pinned staging set).
func NewBufferPool(n, bufSize int) *BufferPool {
	p := newPool(n, bufSize)
	for i := 0; i < n; i++ {
		p.ch <- make([]byte, bufSize)
	}
	return p
}

// NewBufferPoolLazy creates a pool with the same blocking quota of n
// buffers, but allocates each buffer on first demand. Use it when the
// quota covers a worst case (e.g. a host cache large enough to hold the
// whole shard) that a given run may never reach — the pool then only
// ever materializes the buffers actually cycled through it.
func NewBufferPoolLazy(n, bufSize int) *BufferPool {
	p := newPool(n, bufSize)
	p.spare = n
	return p
}

func newPool(n, bufSize int) *BufferPool {
	if n <= 0 || bufSize <= 0 {
		panic("hostcache: pool dimensions must be positive")
	}
	return &BufferPool{bufSize: bufSize, ch: make(chan []byte, n)}
}

// Get blocks until a buffer is available (creating one when the lazy
// allowance permits).
func (p *BufferPool) Get() []byte {
	if b := p.TryGet(); b != nil {
		return b
	}
	return <-p.ch
}

// TryGet returns a buffer or nil without blocking.
func (p *BufferPool) TryGet() []byte {
	select {
	case b := <-p.ch:
		return b
	default:
		return p.takeSpare()
	}
}

// takeSpare consumes one unit of the lazy allowance, returning a fresh
// buffer, or nil when the pool is fully materialized.
func (p *BufferPool) takeSpare() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spare == 0 {
		return nil
	}
	p.spare--
	return make([]byte, p.bufSize)
}

// Put returns a buffer to the pool. Buffers of the wrong size panic —
// that is always a bug.
func (p *BufferPool) Put(b []byte) {
	if len(b) != p.bufSize {
		panic("hostcache: returning wrong-size buffer to pool")
	}
	select {
	case p.ch <- b:
	default:
		panic("hostcache: pool overflow — double Put?")
	}
}

// Free returns the number of currently available buffers (counting the
// lazy pool's not-yet-created allowance).
func (p *BufferPool) Free() int {
	p.mu.Lock()
	s := p.spare
	p.mu.Unlock()
	return len(p.ch) + s
}

// BufSize returns the size of each pooled buffer.
func (p *BufferPool) BufSize() int { return p.bufSize }
