package engine

import (
	"context"
	"errors"
	"fmt"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/subgroup"
	"github.com/datastates/mlpoffload/internal/tiercodec"
)

// Restore rebuilds the engine's training state from a checkpoint manifest:
// per-subgroup residency (loc and the host cache), the FP16 working copy,
// the live tier objects, and the optimizer-progress counters (Adam step,
// update-phase position, loss-scaler state). Whatever state the engine
// held before the call is discarded, so a freshly constructed engine —
// after a crash, in a new process — resumes training bit-identically to a
// run that was never interrupted.
//
// Re-placement follows the *current* plan: a subgroup the manifest found
// on one tier may be re-materialized on another if the placement changed
// across the restart (different tier set ordering, adaptive re-planning);
// only tier *names* referenced by pre-staged entries must still exist.
// Host-cache residency is rebuilt by replaying the checkpointed phase's
// commit order over the host-origin subgroups, so recency matches what
// training had produced; subgroups that no longer fit (a smaller cache
// after restart) are flushed to their planned tiers.
//
// Restore must run at an iteration boundary (no update phase in flight).
// On error the engine may be partially restored: retry Restore (possibly
// from another manifest) or rebuild the engine before training further.
func (e *Engine) Restore(ctx context.Context, r *checkpoint.Reader, m checkpoint.Manifest) error {
	if e.closed {
		return fmt.Errorf("engine: closed")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Rank != e.cfg.Rank || m.Params != e.cfg.Params || m.SubgroupParams != e.cfg.SubgroupParams {
		return fmt.Errorf("engine: manifest geometry (rank %d, %d params, %d/subgroup) does not match engine (rank %d, %d params, %d/subgroup)",
			m.Rank, m.Params, m.SubgroupParams, e.cfg.Rank, e.cfg.Params, e.cfg.SubgroupParams)
	}
	if num := e.numerics(); m.Numerics != num {
		return fmt.Errorf("engine: manifest numerics %+v do not match engine %+v — resuming under a different mode or hyperparameters would silently diverge",
			m.Numerics, num)
	}
	if len(m.Entries) != len(e.shard.Subgroups) {
		return fmt.Errorf("engine: manifest has %d subgroups, engine holds %d", len(m.Entries), len(e.shard.Subgroups))
	}
	// Codec-presence check: encoded objects are self-describing, so any
	// codec reads any codec's objects — but a codec-less tier cannot
	// decode encoded snapshots, and a codec tier rejects raw ones. Catch
	// the mismatch before touching any data. Manifests without the map
	// (pre-codec versions) skip the check.
	if m.TierCodecs != nil {
		for i, name := range e.names {
			want, recorded := m.TierCodecs[name]
			if !recorded {
				continue
			}
			have := tiercodec.Describe(e.cfg.Tiers[i].Tier)
			if (want == "") != (have == "") {
				return fmt.Errorf("engine: checkpoint step %d wrote tier %q with codec %q but the engine has %q — configure codec middleware consistently (any codec decodes any codec's objects; only presence matters)",
					m.Step, name, want, have)
			}
		}
	}
	if err := e.drain(); err != nil {
		return err
	}

	// Discard pre-restore residency; everything is rebuilt below. Live
	// keys surviving on tiers the rebuilt placement will not use are
	// reclaimed per subgroup in restoreSubgroup. States that aliased a
	// pooled fetch buffer return it — nothing references the bytes once
	// State drops.
	e.lru = hostcache.NewLRU(e.cfg.HostCacheSlots)
	for i, sg := range e.shard.Subgroups {
		e.dropState(sg)
		e.gradLoc[i] = -1
		e.staleTier[i] = -1
	}

	// Replay the checkpointed phase's commit order so host-cache recency
	// matches the interrupted run (phase p committed in the order of phase
	// index p-1; a fresh engine restores in ascending order).
	lastPhase := m.Phase - 1
	if lastPhase < 0 {
		lastPhase = 0
	}
	order := hostcache.UpdateOrder(e.cfg.Order, len(e.shard.Subgroups), lastPhase)
	// Live-key writes are submitted asynchronously so the next subgroup's
	// checkpoint read overlaps them; the fetch pool bounds the in-flight
	// window (a staging buffer returns to the pool only when its write
	// lands). All writes are verified before Restore returns.
	var writes []*aio.Op
	waitWrites := func() error {
		var firstErr error
		for _, op := range writes {
			if err := op.Wait(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("engine: restore flush: %w", err)
			}
		}
		return firstErr
	}
	for _, sgID := range order {
		ent, _ := m.Entry(sgID) // dense per Validate
		op, err := e.restoreSubgroup(ctx, r, ent)
		if err != nil {
			_ = waitWrites() // no in-flight work may outlive the call
			return err
		}
		if op != nil {
			writes = append(writes, op)
		}
	}
	if err := waitWrites(); err != nil {
		return err
	}

	e.step = m.AdamStep
	e.phase = m.Phase
	e.skippedSteps = m.SkippedSteps
	if e.scaler != nil && m.Scaler != nil {
		if err := e.scaler.SetState(*m.Scaler); err != nil {
			return fmt.Errorf("engine: restore: %w", err)
		}
	}
	for i := range e.partialNorms {
		e.partialNorms[i] = 0
	}
	return nil
}

// restoreSubgroup materializes one subgroup from its checkpoint entry:
// host-origin subgroups come back into host memory (evicting through the
// cache as training would), everything else is rewritten to its live key
// on the tier the current plan assigns. Both paths refresh the FP16
// working copy from the serialized master parameters. The returned op,
// when non-nil, is the in-flight live-key write; its staging buffer
// returns to the pool on completion and the caller must verify it.
func (e *Engine) restoreSubgroup(ctx context.Context, r *checkpoint.Reader, ent checkpoint.Entry) (*aio.Op, error) {
	sgID := ent.SubgroupID
	sg := e.shard.Subgroups[sgID]
	size := subgroup.StateBytes(sg.Len())
	if ent.Bytes != int64(size) {
		return nil, fmt.Errorf("engine: restore subgroup %d: object is %d bytes, want %d", sgID, ent.Bytes, size)
	}
	buf := e.fetchPool.Get()
	if err := e.readEntry(ctx, r, ent, buf[:size]); err != nil {
		e.fetchPool.Put(buf)
		return nil, fmt.Errorf("engine: restore subgroup %d: %w", sgID, err)
	}
	id, n, _, err := subgroup.PeekHeader(buf[:size])
	if err != nil {
		e.fetchPool.Put(buf)
		return nil, fmt.Errorf("engine: restore subgroup %d: %w", sgID, err)
	}
	if id != sgID || n != sg.Len() {
		e.fetchPool.Put(buf)
		return nil, fmt.Errorf("engine: restore subgroup %d: object is subgroup %d with %d params", sgID, id, n)
	}

	if ent.Origin == "host" {
		// Adopt the checkpoint bytes zero-copy where possible: the
		// restored state aliases the fetched buffer exactly as a
		// training-time fetch would (adoptState consumes buf), so the
		// resumed run re-enters the allocation-free steady state
		// immediately.
		if err := e.adoptState(sg, buf, size); err != nil {
			return nil, fmt.Errorf("engine: restore subgroup %d: %w", sgID, err)
		}
		off := e.sgOffset[sgID]
		fp16.Encode(e.params16[off:off+int64(sg.Len())], sg.State.Params)
		e.loc[sgID] = locHost
		e.reclaimLiveKey(sgID, locHost)
		for _, v := range e.lru.TouchEvict(sgID) {
			if err := e.flushSync(v, e.shard.Subgroups[v]); err != nil {
				return nil, fmt.Errorf("engine: restore eviction flush of subgroup %d: %w", v, err)
			}
		}
		return nil, nil
	}

	// Offloaded at checkpoint time: extract the master parameters for the
	// FP16 working copy straight from the serialized layout (bulk,
	// header-validated), then rewrite the object under its live key on
	// the currently planned tier.
	p32 := e.grad32[:sg.Len()]
	if err := sg.ReadParams(p32, buf[:size]); err != nil {
		e.fetchPool.Put(buf)
		return nil, fmt.Errorf("engine: restore subgroup %d: %w", sgID, err)
	}
	off := e.sgOffset[sgID]
	fp16.Encode(e.params16[off:off+int64(sg.Len())], p32)
	tier := e.plan.TierFor(sgID)
	op, err := e.aios[tier].SubmitWriteClass(aio.Flush, e.key(sgID), buf[:size])
	if err != nil {
		e.fetchPool.Put(buf)
		return nil, fmt.Errorf("engine: restore flush of subgroup %d: %w", sgID, err)
	}
	go func() {
		//mlpvet:allow aioop completion only gates the buffer return; the op is returned and the caller collects the error
		_ = op.Wait()
		e.fetchPool.Put(buf)
	}()
	e.loc[sgID] = tier
	e.reclaimLiveKey(sgID, tier)
	return op, nil
}

// reclaimLiveKey deletes the subgroup's live-key object from every tier
// except keep (pass locHost to reclaim all): the pre-crash run may have
// left copies under a different placement, and restore re-establishes the
// one-object-one-tier invariant. Deletes are synchronous (restore is not
// a hot path), best-effort (a survivor orphans bytes, never corrupts),
// and must not touch step-tagged snapshot keys — only the live key.
func (e *Engine) reclaimLiveKey(sgID, keep int) {
	for ti := range e.aios {
		if ti == keep {
			continue
		}
		if op, err := e.aios[ti].SubmitDelete(aio.Flush, e.key(sgID)); err == nil {
			//mlpvet:allow aioop best-effort reclamation; a failed delete orphans bytes, never corrupts (see function comment)
			_ = op.Wait()
		}
	}
}

// readEntry reads a checkpoint entry's bytes: checkpoint-tier objects via
// the reader, pre-staged snapshots from the engine's own tier of the
// recorded name. Both paths apply the update phase's corrupt-retry
// discipline — a transient in-flight flip must not fail the restore.
func (e *Engine) readEntry(ctx context.Context, r *checkpoint.Reader, ent checkpoint.Entry, dst []byte) error {
	if ent.Tier == "" {
		err := r.ReadObject(ctx, ent.Key, dst)
		for n := 0; err != nil && errors.Is(err, tiercodec.ErrCorrupt) && n < e.cfg.CorruptRetries; n++ {
			e.corruptRetries.Add(1)
			e.clk.Sleep(e.cfg.RetryBackoff.Delay(n))
			err = r.ReadObject(ctx, ent.Key, dst)
		}
		return err
	}
	for i, name := range e.names {
		if name == ent.Tier {
			return e.readSyncRetry(i, ent.Key, dst)
		}
	}
	return fmt.Errorf("manifest references tier %q, which this engine does not have", ent.Tier)
}
