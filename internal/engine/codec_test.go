package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/metrics"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tiercodec"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// codecSpec is the recommended middleware configuration the tests run
// under: compression plus integrity.
var codecSpec = tiercodec.Spec{Compression: "flate", Integrity: true}

// withCodec returns a copy of specs with the codec enabled on every tier.
func withCodec(specs []TierSpec, spec tiercodec.Spec) []TierSpec {
	out := append([]TierSpec(nil), specs...)
	for i := range out {
		out[i].Codec = spec
	}
	return out
}

// TestCodecBitIdenticalTraining: the codec is a transport optimization
// only — training with per-tier compression+integrity enabled must
// produce bit-identical parameters to training without it, on the MLP
// path (sequential and parallel workers) and on the baseline path (whose
// FP32 gradient objects cross the codec as well).
func TestCodecBitIdenticalTraining(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		mk      func() Config
	}{
		{"mlp", 1, func() Config {
			return MLPConfig(0, 1100, 100, memTiers(500, 300), tierlock.NewManager(true))
		}},
		{"mlp-4-workers", 4, func() Config {
			return MLPConfig(0, 1100, 100, memTiers(500, 300), tierlock.NewManager(true))
		}},
		{"baseline", 1, func() Config {
			return BaselineConfig(0, 1100, 100, memTiers(500))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(codec bool) []float32 {
				cfg := tc.mk()
				cfg.AdaptivePlacement = false // same placement for every run
				cfg.UpdateWorkers = tc.workers
				if codec {
					cfg.Tiers = withCodec(cfg.Tiers, codecSpec)
				}
				return gatherAfter(t, cfg, 5)
			}
			plain, compressed := mk(false), mk(true)
			for i := range plain {
				if plain[i] != compressed[i] {
					t.Fatalf("param %d differs with codec on: %v vs %v", i, compressed[i], plain[i])
				}
			}
		})
	}
}

// TestCodecWireAccounting: with compression enabled the iteration metrics
// must report fewer wire bytes than raw bytes, the estimator keeps
// functioning (placement still splits), and CompressionRatio > 1.
func TestCodecWireAccounting(t *testing.T) {
	cfg := MLPConfig(0, 4000, 400, withCodec(memTiers(500, 300), codecSpec), nil)
	cfg.AdaptivePlacement = false
	// A convergent objective produces clustered optimizer state — the
	// distribution compression exists for; the pseudo-random default
	// gradient generator is a worst case the bypass handles instead.
	cfg.Grad = QuadraticGradFn(3)
	cfg.Hyper.LR = 0.02
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var last metrics.Iteration
	for i := 0; i < 4; i++ {
		it, err := e.TrainIteration(i)
		if err != nil {
			t.Fatal(err)
		}
		last = it
	}
	if last.BytesRead <= 0 || last.WireBytesRead <= 0 {
		t.Fatalf("no read accounting: %+v", last)
	}
	if last.WireBytesRead >= last.BytesRead {
		t.Fatalf("wire reads %.0f not below raw %.0f — codec not on the wire path",
			last.WireBytesRead, last.BytesRead)
	}
	if r := last.CompressionRatio(); r <= 1.0 {
		t.Fatalf("compression ratio %.3f, want > 1", r)
	}
	for class, c := range last.ClassIO {
		// Wire bytes are recorded per class; an incompressible object may
		// exceed its raw size by one header, never more.
		if c.WireBytes <= 0 || c.WireBytes > c.Bytes+float64(c.Ops*tiercodec.HeaderSize) {
			t.Fatalf("class %s wire accounting inconsistent: %+v", class, c)
		}
	}
}

// TestCodecResumeAcrossCodecChange: a checkpoint written under one codec
// restores bit-identically under a *different* codec (objects are
// self-describing), including the pre-staged snapshots on the persistent
// tier. The continued run must match an uninterrupted codec-less run.
func TestCodecResumeAcrossCodecChange(t *testing.T) {
	const (
		params = 600
		sub    = 100
		k      = 3
		n      = 6
	)
	mk := func(p storage.Tier, spec tiercodec.Spec) Config {
		tiers := []TierSpec{
			{Tier: storage.NewMemTier("nvme"), ReadBW: 690, WriteBW: 530},
			{Tier: p, ReadBW: 360, WriteBW: 360, Persistent: true},
		}
		cfg := MLPConfig(0, params, sub, withCodec(tiers, spec), nil)
		cfg.AdaptivePlacement = false
		cfg.Grad = QuadraticGradFn(3)
		cfg.Hyper.LR = 0.02
		return cfg
	}

	// Uninterrupted reference without any codec.
	ref, err := New(mk(storage.NewMemTier("pfs"), tiercodec.Spec{}))
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, ref, 0, n)
	want := gather(t, ref)
	ref.Close()

	// Interrupted run under flate+crc; the checkpoint tier is wrapped too.
	writeSpec := codecSpec
	pfs := storage.NewMemTier("pfs") // persistent backing store, survives
	e1, err := New(mk(pfs, writeSpec))
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, e1, 0, k)
	ckptBacking := storage.NewMemTier("ckpt")
	ckptW, err := tiercodec.New(ckptBacking, writeSpec)
	if err != nil {
		t.Fatal(err)
	}
	w := checkpoint.NewWriter(ckptW, "run")
	m, err := e1.Checkpoint(context.Background(), k, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if m.TierCodecs["pfs"] != writeSpec.String() || m.TierCodecs["ckpt"] != writeSpec.String() {
		t.Fatalf("manifest did not record tier codecs: %+v", m.TierCodecs)
	}
	// Verify through the engine's wrapped handles: sizes are raw.
	r := checkpoint.NewReader(ckptW, "run")
	if err := r.Verify(context.Background(), m, e1.TierHandle); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Restart under a different codec: integrity-only middleware. The
	// stored flate objects must decode through it transparently.
	readSpec := tiercodec.Spec{Integrity: true}
	e2, err := New(mk(pfs, readSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	ckptR, err := tiercodec.New(ckptBacking, readSpec)
	if err != nil {
		t.Fatal(err)
	}
	restoreLatest(t, e2, checkpoint.NewReader(ckptR, "run"))
	trainRange(t, e2, k, n)
	got := gather(t, e2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("param %d differs after cross-codec resume: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestCodecManifestTierNameCollision: when the checkpoint writer is
// handed the *raw* handle of a tier the engine codec-wraps (same name),
// the manifest must keep the engine's codec record for that name — the
// authoritative one for Restore's presence check — instead of letting
// the writer's codec-less view overwrite it and falsely reject the very
// configuration that wrote the checkpoint.
func TestCodecManifestTierNameCollision(t *testing.T) {
	pfs := storage.NewMemTier("pfs")
	mk := func() Config {
		tiers := []TierSpec{{Tier: pfs, ReadBW: 500, WriteBW: 500, Persistent: true, Codec: codecSpec}}
		cfg := MLPConfig(0, 400, 100, tiers, nil)
		cfg.AdaptivePlacement = false
		return cfg
	}
	e1, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, e1, 0, 2)
	w := checkpoint.NewWriter(pfs, "run") // raw handle, same tier name
	defer w.Close()
	m, err := e1.Checkpoint(context.Background(), 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TierCodecs["pfs"]; got != codecSpec.String() {
		t.Fatalf("manifest records pfs codec %q, want the engine's %q", got, codecSpec.String())
	}
	e1.Close()

	e2, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.Restore(context.Background(), checkpoint.NewReader(pfs, "run"), m); err != nil {
		t.Fatalf("restore under the writing configuration rejected: %v", err)
	}
}

// TestCodecRestoreRejectsPresenceMismatch: a checkpoint whose tiers were
// codec-wrapped must not restore into an engine whose tiers are not (and
// the error names the codec, not a size mismatch deep in the restore).
func TestCodecRestoreRejectsPresenceMismatch(t *testing.T) {
	const params, sub = 400, 100
	mk := func(p storage.Tier, spec tiercodec.Spec) Config {
		tiers := []TierSpec{
			{Tier: storage.NewMemTier("nvme"), ReadBW: 690, WriteBW: 530},
			{Tier: p, ReadBW: 360, WriteBW: 360, Persistent: true},
		}
		cfg := MLPConfig(0, params, sub, withCodec(tiers, spec), nil)
		cfg.AdaptivePlacement = false
		return cfg
	}
	pfs := storage.NewMemTier("pfs")
	e1, err := New(mk(pfs, codecSpec))
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, e1, 0, 2)
	ckptTier := storage.NewMemTier("ckpt") // manifest itself stays readable
	w := checkpoint.NewWriter(ckptTier, "run")
	m, err := e1.Checkpoint(context.Background(), 2, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	e1.Close()

	e2, err := New(mk(pfs, tiercodec.Spec{})) // codec-less restart
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	err = e2.Restore(context.Background(), checkpoint.NewReader(ckptTier, "run"), m)
	if err == nil {
		t.Fatal("restore under codec-less tiers of an encoded checkpoint must fail")
	}
	if got := err.Error(); !strings.Contains(got, "codec") || !strings.Contains(got, "nvme") {
		t.Fatalf("error does not explain the codec mismatch: %v", err)
	}
}

// TestCodecMidMigrationCheckpointRestore is the mid-migration variant of
// the bit-identical guarantee with compression on: a bandwidth shift
// queues migrations, a checkpoint drains them mid-convergence, and a
// fresh codec-wrapped engine restored from it continues bit-identically
// to an uninterrupted codec-less reference.
func TestCodecMidMigrationCheckpointRestore(t *testing.T) {
	const (
		params = 1000
		sub    = 100
		k      = 4
		n      = 8
	)
	mk := func(tiers []TierSpec, spec tiercodec.Spec) Config {
		cfg := MLPConfig(0, params, sub, withCodec(tiers, spec), nil)
		cfg.Grad = QuadraticGradFn(3)
		cfg.Hyper.LR = 0.02
		return cfg
	}

	// Codec-less uninterrupted reference with the same bandwidth shift.
	refTiers, _, refPFS := throttledPair(2e6, 1e6)
	ref, err := New(mk(refTiers, tiercodec.Spec{}))
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, ref, 0, k-1)
	refPFS.SetRates(2e5, 2e5)
	trainRange(t, ref, k-1, n)
	want := gather(t, ref)
	ref.Close()

	// Codec-wrapped interrupted run: shift bandwidth, let the replan
	// queue migrations, checkpoint while they drain.
	tiers, _, pfs := throttledPair(2e6, 1e6)
	e1, err := New(mk(tiers, codecSpec))
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, e1, 0, k-1)
	pfs.SetRates(2e5, 2e5)
	trainRange(t, e1, k-1, k)
	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "rank000")
	defer w.Close()
	if _, err := e1.Checkpoint(context.Background(), k, w); err != nil {
		t.Fatal(err)
	}
	if st := e1.MigrationStats(); st.Err != nil {
		t.Fatal(st.Err)
	}
	e1.Close()

	e2, err := New(mk(tiers, codecSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	restoreLatest(t, e2, checkpoint.NewReader(ckptTier, "rank000"))
	trainRange(t, e2, k, n)
	got := gather(t, e2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("param %d diverged after codec mid-migration resume: %v != %v", i, got[i], want[i])
		}
	}
	placementConsistent(t, e2)
}

// TestCodecTransientCorruptionRetried: corruption injected on the read
// path (in-flight bit flip under the codec) is detected by the CRC and
// absorbed by the engine's retry — training completes with the same
// parameters as an unfaulted run, and the retry is counted.
func TestCodecTransientCorruptionRetried(t *testing.T) {
	mk := func(fault *tiercodec.FaultTier) Config {
		inner := storage.Tier(storage.NewMemTier("nvme"))
		if fault != nil {
			inner = fault
		}
		tiers := []TierSpec{{Tier: inner, ReadBW: 500, WriteBW: 500, Codec: codecSpec}}
		cfg := MLPConfig(0, 800, 100, tiers, nil)
		cfg.AdaptivePlacement = false
		// Generous budget: a retry's own re-read can land on the shared
		// every-Nth fault counter again (see examples/faultinjection).
		cfg.CorruptRetries = 8
		return cfg
	}
	want := gatherAfter(t, mk(nil), 4)

	fault := tiercodec.NewFaultTier(storage.NewMemTier("nvme"), tiercodec.FaultConfig{
		CorruptReadEvery: 5, // every fifth read of encoded bytes is hit in flight
	})
	cfg := mk(fault)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 4; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			t.Fatalf("iteration %d under transient corruption: %v", i, err)
		}
	}
	if e.IntegrityRetries() == 0 {
		t.Fatal("no integrity retries counted despite injected corruption")
	}
	got := gather(t, e)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("param %d differs under transient corruption: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestCodecTransientCorruptionCheckpointRestore: the corrupt-retry
// discipline covers the checkpoint staging reads and restore reads too —
// a transient flip under the codec must not fail a checkpoint or a
// restore that a re-read would complete.
func TestCodecTransientCorruptionCheckpointRestore(t *testing.T) {
	fault := tiercodec.NewFaultTier(storage.NewMemTier("pfs"), tiercodec.FaultConfig{
		CorruptReadEvery: 4,
	})
	tiers := []TierSpec{
		{Tier: storage.NewMemTier("nvme"), ReadBW: 690, WriteBW: 530, Codec: codecSpec},
		{Tier: fault, ReadBW: 360, WriteBW: 360, Persistent: true, Codec: codecSpec},
	}
	cfg := MLPConfig(0, 800, 100, tiers, nil)
	cfg.AdaptivePlacement = false
	cfg.Grad = QuadraticGradFn(3)
	cfg.CorruptRetries = 8 // see examples/faultinjection on the budget
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	trainRange(t, e, 0, 3)
	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "run")
	defer w.Close()
	if _, err := e.Checkpoint(context.Background(), 3, w); err != nil {
		t.Fatalf("checkpoint under transient corruption: %v", err)
	}
	restoreLatest(t, e, checkpoint.NewReader(ckptTier, "run"))
	trainRange(t, e, 3, 5)
	if e.IntegrityRetries() == 0 {
		t.Fatal("no integrity retries despite injected corruption")
	}
}

// TestCodecPersistentCorruptionFailsCleanly: corruption at rest keeps
// failing across retries; the phase must fail with ErrCorrupt — never
// consume garbage — and the error must be the typed one so callers can
// react.
func TestCodecPersistentCorruptionFailsCleanly(t *testing.T) {
	fault := tiercodec.NewFaultTier(storage.NewMemTier("nvme"), tiercodec.FaultConfig{
		CorruptWriteEvery: 3, // every third stored object is bit-rotted
	})
	tiers := []TierSpec{{Tier: fault, ReadBW: 500, WriteBW: 500, Codec: codecSpec}}
	cfg := MLPConfig(0, 800, 100, tiers, nil)
	cfg.AdaptivePlacement = false
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var iterErr error
	for i := 0; i < 6 && iterErr == nil; i++ {
		_, iterErr = e.TrainIteration(i)
	}
	if iterErr == nil {
		t.Fatal("training consumed persistently corrupted objects without failing")
	}
	if !errors.Is(iterErr, tiercodec.ErrCorrupt) {
		t.Fatalf("failure is %v, want ErrCorrupt", iterErr)
	}
}
