package engine

import (
	"testing"

	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/nn"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// TestRealTransformerThroughOffloadPath is the deepest integration test in
// the repository: a real GPT (forward + hand-written backward, verified by
// finite differences in internal/nn) trains through the full MLP-Offload
// pipeline — FP16 working copy, multi-path offloaded FP32 optimizer state,
// alternating order, delayed gradient conversion — and the language-model
// loss must drop substantially.
func TestRealTransformerThroughOffloadPath(t *testing.T) {
	gpt, err := nn.NewGPT(nn.GPTConfig{Vocab: 13, Seq: 10, Dim: 16, Heads: 4, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := gpt.ParamCount()
	tokens := []int{1, 3, 5, 7, 9, 11, 1, 3, 5, 7} // learnable repeating pattern

	scratch := make([]float32, params)
	batchGrad := func(_ int, p16 []fp16.Bits, out []float32) error {
		fp16.Decode(scratch, p16)
		for i := range out {
			out[i] = 0
		}
		_, err := gpt.Backward(scratch, tokens, out)
		return err
	}
	lossOf := func(p16 []fp16.Bits) float64 {
		fp16.Decode(scratch, p16)
		l, err := gpt.Loss(scratch, tokens)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	initVals := make([]float32, params)
	if err := gpt.Init(initVals, 99); err != nil {
		t.Fatal(err)
	}
	cfg := MLPConfig(0, params, params/7+1, memTiers(2e9, 1e9), tierlock.NewManager(true))
	cfg.BatchGrad = batchGrad
	cfg.Hyper.LR = 3e-3
	cfg.ClipNorm = 5
	cfg.InitParams = func(i int64) float32 { return initVals[i] }
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	first := lossOf(eng.Params16())
	for i := 0; i < 250; i++ {
		if _, err := eng.TrainIteration(i); err != nil {
			t.Fatal(err)
		}
	}
	last := lossOf(eng.Params16())
	if last > first*0.6 {
		t.Errorf("LM loss did not drop 40%% through the offload path: %.4f -> %.4f", first, last)
	}
	// The offload machinery must actually have been used.
	m := eng.Series().Mean()
	if m.BytesRead == 0 || m.CacheMisses == 0 {
		t.Error("real-model training bypassed the offload path")
	}
}
