// Package engine implements the offloading runtime itself: the real,
// concurrent fetch/update/flush pipeline of Algorithm 1, operating on real
// FP32 optimizer state, real FP16 gradients, and real storage tiers.
//
// Two modes share one pipeline:
//
//   - Baseline (DeepSpeed ZeRO-3 + DeepNVMe): sequential subgroup order,
//     FP32 gradients upscaled and flushed during the backward pass and
//     re-fetched with the optimizer state (16 B/param), single storage
//     path, uncoordinated concurrent tier access.
//
//   - MLPOffload: alternating cache-friendly order, FP16 gradients held in
//     the host accumulation buffer and converted in place during the update
//     (12 B/param fetches, no backward flush), multi-path virtual tier with
//     bandwidth-proportional placement (Eq. 1), node-exclusive tier access.
//
// Every optimization is independently toggleable for the ablation studies
// (paper Figures 14 and 15).
package engine

import (
	"fmt"
	"runtime"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tiercodec"
	"github.com/datastates/mlpoffload/internal/tierlock"
	"github.com/datastates/mlpoffload/internal/wire"
)

// TierSpec couples a storage tier with its nominal bandwidths for
// placement seeding (the microbenchmark numbers of the paper's §3.3).
type TierSpec struct {
	Tier    storage.Tier
	ReadBW  float64 // bytes/second, nominal
	WriteBW float64 // bytes/second, nominal
	// Persistent marks tiers that survive job teardown (a PFS); subgroups
	// resident there are pre-staged for checkpoints (§3.3).
	Persistent bool
	// Codec, when enabled, wraps Tier in the transparent tiercodec
	// middleware at engine construction: objects cross this tier
	// compressed and/or CRC32-C-protected while the engine keeps
	// operating on raw subgroup bytes. The nominal bandwidths stay the
	// *device* rates — the placement estimator observes wire bytes, so
	// compression raises effective throughput without skewing the
	// bandwidth-proportional split.
	Codec tiercodec.Spec
}

// MinBW returns min(read, write), the Eq. 1 placement input.
func (t TierSpec) MinBW() float64 {
	if t.ReadBW < t.WriteBW {
		return t.ReadBW
	}
	return t.WriteBW
}

// GradFn produces the synthetic FP32 gradient for global parameter index i
// at a given iteration — the stand-in for the GPU backward pass.
type GradFn func(iter int, globalIndex int64, param float32) float32

// BatchGradFn computes a full shard's gradients at once from the FP16
// working copy of the parameters (the "GPU" view).
type BatchGradFn func(iter int, params16 []fp16.Bits, out []float32) error

// QuadraticGradFn returns gradients of 0.5*(p-target)^2, making end-to-end
// training converge to target — the integration-test objective that
// validates the whole offload path numerically.
func QuadraticGradFn(target float32) GradFn {
	return func(_ int, _ int64, p float32) float32 { return p - target }
}

// Config configures one engine instance (one worker process / one GPU in
// the paper's deployment).
type Config struct {
	// Rank identifies this worker (storage key namespace).
	Rank int
	// Params is this rank's shard size in parameters.
	Params int64
	// SubgroupParams is the subgroup size (paper methodology: 100e6 at
	// scale; tests use small values).
	SubgroupParams int64

	// Tiers are the third-level storage paths. One tier = NVMe-only
	// (baseline); several = MLP-Offload's multi-path virtual tier.
	Tiers []TierSpec

	// Order is the subgroup processing order policy.
	Order hostcache.Order
	// SkipGradFlush enables delayed in-place FP16→FP32 gradient
	// conversion ("Skip Gradients" ablation). When false the baseline
	// path upscales and flushes FP32 gradients during backward.
	SkipGradFlush bool
	// Locks is the node-scoped exclusive-access manager shared by all
	// engines on a node ("Process Atomic R/W" ablation). nil disables
	// concurrency control.
	Locks *tierlock.Manager
	// AdaptivePlacement re-plans the subgroup→tier split each iteration
	// from observed bandwidths (EWMA); otherwise the nominal split is
	// kept.
	AdaptivePlacement bool
	// MigrationWindow bounds the staging buffers (and concurrent copies)
	// of the live migrator that moves offloaded subgroups to their newly
	// planned tiers after an adaptive replan. Without it a replanned
	// subgroup's bytes only move when it happens to pass through the host
	// cache, so cold subgroups can stay on the wrong tier indefinitely.
	// 0 defaults to 2; negative disables live migration (plan drift is
	// then only repaired by eviction traffic, the pre-migration
	// behaviour). Ignored unless AdaptivePlacement is set.
	MigrationWindow int

	// HostCacheSlots is the number of subgroups the host can keep resident
	// between phases (the paper's "minimum of three": flushing, updating,
	// prefetching).
	HostCacheSlots int
	// PrefetchDepth bounds in-flight fetches during the update phase.
	// 0 auto-tunes to max(2, UpdateWorkers+len(Tiers)) — enough read-ahead
	// to keep every update worker fed with one fetch in flight per storage
	// path; negative pins the pre-auto-tune default of 2.
	PrefetchDepth int
	// IOWorkers is the per-tier async I/O parallelism.
	IOWorkers int
	// CPUWorkers is the legacy per-call update-kernel parallelism (each
	// StepFP16Parallel call spawns its own goroutines). Superseded by
	// KernelWorkers; kept for the ablation of pooled vs per-call fan-out.
	CPUWorkers int
	// KernelWorkers sizes the engine-wide kernel worker pool that the
	// Adam update and the FP16/BF16 bulk codecs draw from — one shared
	// pool instead of per-call goroutine churn, and one knob instead of
	// per-site CPUWorkers. Chunk boundaries are fixed (kernpool.ChunkElems),
	// so parameters are bit-identical at any worker count. 0 auto-tunes to
	// min(GOMAXPROCS, 16); 1 or negative runs kernels serially on the
	// calling goroutine (the pre-pool behaviour).
	KernelWorkers int
	// CoalesceFetches bounds the issuer's read-ahead coalescing: runs of
	// up to this many adjacent same-tier subgroup fetches are submitted as
	// one vectored tier operation (aio.SubmitReadVecClass) instead of one
	// op each — one scheduling decision, cached descriptors, one device
	// pass for the run. Only active in SkipGradFlush mode (the baseline's
	// interleaved gradient reads break up runs anyway). 0 auto-tunes to
	// min(4, PrefetchDepth); 1 or negative disables coalescing.
	CoalesceFetches int
	// UpdateWorkers is the update-phase pipeline parallelism: how many
	// subgroups may run their Adam update concurrently while the issuer
	// keeps PrefetchDepth fetches in flight. 1 reproduces the sequential
	// single-goroutine update phase exactly; higher values overlap the
	// CPU-side update of subgroup k with tier reads for k+1..k+d and the
	// async flush of k-1, which pays off whenever the phase is I/O-bound
	// on a slow or asymmetric multi-path tier. The commit order (and thus
	// the cache-friendly alternating-order residency) is preserved at any
	// worker count. 0 auto-tunes to GOMAXPROCS/2 clamped to [1, 4];
	// negative pins 1 (strictly sequential).
	UpdateWorkers int

	// Hyper are the Adam hyperparameters.
	Hyper optim.Hyper
	// Grad generates synthetic gradients (nil = deterministic pseudo
	// gradients). Ignored when BatchGrad is set.
	Grad GradFn
	// BatchGrad, when non-nil, computes the whole shard's gradients in
	// one pass — the hook that connects a real model (e.g. internal/nn's
	// transformer) to the offloading engine. It receives the iteration
	// number and the FP16 working copy of the parameters and must fill
	// out (len == Params) with FP32 gradients.
	BatchGrad BatchGradFn
	// GradAccumSteps is the number of forward/backward passes per update
	// phase (>= 1).
	GradAccumSteps int
	// InitParams, when non-nil, initializes the FP32 master parameter at
	// each global index (nil = zeros). Real models need their proper
	// initialization (layernorm gains of 1 etc.).
	InitParams func(globalIndex int64) float32

	// D2HBandwidth throttles device<->host transfers in bytes/second
	// (0 = unthrottled). Each engine owns its link (one PCIe per GPU).
	D2HBandwidth float64

	// CorruptRetries bounds how many times an update-phase fetch that
	// failed integrity validation (tiercodec.ErrCorrupt) is re-read
	// before the phase fails. Corruption injected in flight (a flaky
	// link, a torn transfer) re-reads clean; corruption at rest keeps
	// failing and surfaces as a clean phase error instead of a silently
	// consumed garbage update. 0 defaults to 2; negative disables
	// retries.
	CorruptRetries int
	// RetryBackoff paces the corrupt re-reads: the same clock-driven
	// jittered-exponential policy (internal/wire) the elastic transport
	// uses, so a burst of transient corruption backs off instead of
	// hammering the tier with immediate re-reads. The zero value defaults
	// to Base 1ms / Max 20ms / Factor 2, seeded with the rank; sleeps run
	// on Clock, so virtual-clock tests assert exact pacing.
	RetryBackoff wire.Backoff

	// LossScaling enables dynamic loss scaling: gradient overflow (FP16
	// Inf/NaN) skips the optimizer step and halves the scale, as
	// mixed-precision training requires. Disabled by default because the
	// synthetic gradient generators produce finite values.
	LossScaling bool
	// ClipNorm applies global gradient-norm clipping across all
	// subgroups before the update (0 disables). Partial norms are
	// computed per subgroup during the backward pass; the global factor
	// is applied inside the update kernel's gradient view.
	ClipNorm float64

	// Clock is the engine-wide time source: it reaches the aio engines'
	// op stamps and aging pick, the D2H limiter's pacing, and the phase
	// stopwatches. nil means the wall clock (production); a virtual clock
	// (internal/clock) runs the whole engine on simulated time, which is
	// how the timing test suites and `iobench -virtual` finish bandwidth
	// scenarios in milliseconds.
	Clock clock.Clock
}

// BaselineConfig returns a DeepSpeed-ZeRO-3-shaped configuration over the
// given tiers (callers normally pass exactly one, the NVMe).
func BaselineConfig(rank int, params, subgroupParams int64, tiers []TierSpec) Config {
	return Config{
		Rank:           rank,
		Params:         params,
		SubgroupParams: subgroupParams,
		Tiers:          tiers,
		Order:          hostcache.Sequential,
		SkipGradFlush:  false,
		Locks:          nil,
		HostCacheSlots: 3,
		PrefetchDepth:  2,
		IOWorkers:      2,
		CPUWorkers:     1,
		UpdateWorkers:  1,
		KernelWorkers:  1,
		Hyper:          optim.DefaultHyper(),
		GradAccumSteps: 1,
	}
}

// MLPConfig returns an MLP-Offload configuration with every optimization
// enabled. The pipeline widths are left at 0 — auto-tuned from
// GOMAXPROCS and the tier count by validate — where the baseline pins
// the paper's fixed knobs; numerics are unaffected either way (commit
// order and kernel chunking are deterministic at any width).
func MLPConfig(rank int, params, subgroupParams int64, tiers []TierSpec, locks *tierlock.Manager) Config {
	c := BaselineConfig(rank, params, subgroupParams, tiers)
	c.Order = hostcache.Alternating
	c.SkipGradFlush = true
	c.Locks = locks
	c.AdaptivePlacement = true
	c.UpdateWorkers = 0
	c.PrefetchDepth = 0
	c.KernelWorkers = 0
	c.CoalesceFetches = 0
	return c
}

// validate normalizes and checks the configuration.
func (c *Config) validate() error {
	if c.Params <= 0 {
		return fmt.Errorf("engine: Params must be positive, got %d", c.Params)
	}
	if c.SubgroupParams <= 0 {
		return fmt.Errorf("engine: SubgroupParams must be positive, got %d", c.SubgroupParams)
	}
	if len(c.Tiers) == 0 {
		return fmt.Errorf("engine: at least one storage tier required")
	}
	for i, t := range c.Tiers {
		if t.Tier == nil {
			return fmt.Errorf("engine: tier %d has nil storage", i)
		}
		if t.MinBW() <= 0 {
			return fmt.Errorf("engine: tier %d (%s) needs positive nominal bandwidths", i, t.Tier.Name())
		}
	}
	if err := c.Hyper.Validate(); err != nil {
		return err
	}
	if c.HostCacheSlots < 0 {
		return fmt.Errorf("engine: negative HostCacheSlots")
	}
	c.autotune()
	if c.IOWorkers <= 0 {
		c.IOWorkers = 2
	}
	if c.CPUWorkers <= 0 {
		c.CPUWorkers = 1
	}
	if c.MigrationWindow == 0 {
		c.MigrationWindow = 2
	}
	if c.CorruptRetries == 0 {
		c.CorruptRetries = 2
	}
	if c.CorruptRetries < 0 {
		c.CorruptRetries = 0
	}
	if c.RetryBackoff == (wire.Backoff{}) {
		c.RetryBackoff = wire.Backoff{
			Base:   time.Millisecond,
			Max:    20 * time.Millisecond,
			Factor: 2,
			Seed:   uint64(c.Rank),
		}
	}
	if c.GradAccumSteps <= 0 {
		c.GradAccumSteps = 1
	}
	if c.Grad == nil && c.BatchGrad == nil {
		c.Grad = defaultGrad
	}
	return nil
}

// autotune resolves the zero-valued pipeline widths from GOMAXPROCS
// and the tier count — measurement-free derivations, so the resolved
// config is reproducible on a given machine shape. Negative values pin
// the conservative pre-auto-tune defaults; positive values are taken
// as-is. None of the knobs affect numerics (deterministic chunking and
// commit order), only overlap.
func (c *Config) autotune() {
	procs := runtime.GOMAXPROCS(0)
	if c.UpdateWorkers == 0 {
		// Half the cores drive subgroup pipelines; the rest serve kernel
		// fan-out and I/O completion. Past ~4 the update phase is
		// tier-bandwidth-bound, not pipeline-bound.
		c.UpdateWorkers = min(max(procs/2, 1), 4)
	} else if c.UpdateWorkers < 0 {
		c.UpdateWorkers = 1
	}
	if c.PrefetchDepth == 0 {
		// One in-flight fetch per update worker plus one per storage path
		// keeps every consumer and every device busy.
		c.PrefetchDepth = max(2, c.UpdateWorkers+len(c.Tiers))
	} else if c.PrefetchDepth < 0 {
		c.PrefetchDepth = 2
	}
	if c.KernelWorkers == 0 {
		// The kernels are memory-bandwidth-bound; past ~16 workers extra
		// chunk handoffs outweigh the remaining bandwidth.
		c.KernelWorkers = min(procs, 16)
	} else if c.KernelWorkers < 0 {
		c.KernelWorkers = 1
	}
	if c.CoalesceFetches == 0 {
		if c.SkipGradFlush {
			c.CoalesceFetches = min(4, c.PrefetchDepth)
		} else {
			c.CoalesceFetches = 1
		}
	} else if c.CoalesceFetches < 0 {
		c.CoalesceFetches = 1
	}
	if c.CoalesceFetches > c.PrefetchDepth {
		// A batch wider than the prefetch window could not assemble
		// without stalling the issuer.
		c.CoalesceFetches = c.PrefetchDepth
	}
}

// defaultGrad is a deterministic pseudo-gradient: bounded, varies with
// iteration and index, exercises FP16 rounding.
func defaultGrad(iter int, i int64, _ float32) float32 {
	h := uint64(i)*2654435761 + uint64(iter)*40503
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return (float32(h&0xFFFF)/65535 - 0.5) * 0.02
}
