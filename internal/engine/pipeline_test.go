package engine

import (
	"errors"
	"testing"

	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// gatherAfter trains an engine for iters iterations and returns the final
// FP32 master parameters.
func gatherAfter(t *testing.T, cfg Config, iters int) []float32 {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < iters; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	out := make([]float32, cfg.Params)
	if err := e.GatherParams(out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestUpdateWorkersIdenticalParams: the worker pool is a performance
// feature only — any worker count must produce bit-identical parameters,
// on both the delayed-conversion and the baseline gradient paths.
func TestUpdateWorkersIdenticalParams(t *testing.T) {
	for _, mode := range []string{"mlp", "baseline"} {
		t.Run(mode, func(t *testing.T) {
			mk := func(workers int) []float32 {
				var cfg Config
				if mode == "mlp" {
					cfg = MLPConfig(0, 1100, 100, memTiers(500, 300), tierlock.NewManager(true))
				} else {
					cfg = BaselineConfig(0, 1100, 100, memTiers(500))
				}
				cfg.AdaptivePlacement = false // same placement for every run
				cfg.UpdateWorkers = workers
				return gatherAfter(t, cfg, 5)
			}
			one := mk(1)
			for _, w := range []int{2, 4} {
				got := mk(w)
				for i := range one {
					if one[i] != got[i] {
						t.Fatalf("param %d differs at UpdateWorkers=%d: %v vs %v",
							i, w, one[i], got[i])
					}
				}
			}
		})
	}
}

// TestUpdateWorkersClipAndScaling: gradient clipping and dynamic loss
// scaling are phase-level decisions taken before the pipeline fans out, so
// they too must be identical at any worker count.
func TestUpdateWorkersClipAndScaling(t *testing.T) {
	mk := func(workers int) ([]float32, int64) {
		cfg := BaselineConfig(0, 600, 64, memTiers(800))
		cfg.SkipGradFlush = true
		cfg.ClipNorm = 0.01 // low enough that clipping engages
		cfg.LossScaling = true
		cfg.UpdateWorkers = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 6; i++ {
			if _, err := e.TrainIteration(i); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
		out := make([]float32, cfg.Params)
		if err := e.GatherParams(out); err != nil {
			t.Fatal(err)
		}
		return out, e.SkippedSteps()
	}
	one, skipped1 := mk(1)
	four, skipped4 := mk(4)
	if skipped1 != skipped4 {
		t.Fatalf("skipped steps differ: %d vs %d", skipped1, skipped4)
	}
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("param %d differs under clip+scaling: %v vs %v", i, one[i], four[i])
		}
	}
}

// TestUpdateWorkersTierErrorCancels: a mid-phase tier failure must surface
// from TrainIteration, cancel the in-flight workers without deadlock or
// leaked buffers, and leave the engine closable.
func TestUpdateWorkersTierErrorCancels(t *testing.T) {
	boom := errors.New("tier failed mid-phase")
	tier := &storage.FaultTier{
		Tier:      storage.NewMemTier("flaky"),
		FailEvery: 7,
		Err:       boom,
		FailReads: true,
	}
	cfg := BaselineConfig(0, 1200, 60, []TierSpec{{Tier: tier, ReadBW: 100, WriteBW: 100}})
	cfg.UpdateWorkers = 4
	cfg.PrefetchDepth = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var sawErr bool
	for i := 0; i < 6; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected read faults never surfaced through the pipeline")
	}
	// The engine must still drain and close cleanly after a failed phase;
	// the deferred Close above would deadlock on leaked buffers or hung
	// workers if cancellation were not clean.
}

// TestUpdateWorkersWriteErrorCancels: eviction-flush failures propagate
// too (the committer-side error path).
func TestUpdateWorkersWriteErrorCancels(t *testing.T) {
	boom := errors.New("write burned out")
	tier := &storage.FaultTier{
		Tier:       storage.NewMemTier("flaky"),
		FailEvery:  9,
		Err:        boom,
		FailWrites: true,
	}
	cfg := BaselineConfig(0, 1200, 60, []TierSpec{{Tier: tier, ReadBW: 100, WriteBW: 100}})
	cfg.SkipGradFlush = true
	cfg.UpdateWorkers = 4
	e, err := New(cfg)
	if err != nil {
		// Initial offload may already trip the fault — acceptable.
		if !errors.Is(err, boom) {
			t.Fatalf("unexpected error type: %v", err)
		}
		return
	}
	defer e.Close()
	// Fault didn't fire during init; it must surface during training.
	var sawErr bool
	for i := 0; i < 8; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected write faults never surfaced through the pipeline")
	}
}

// TestUpdateWorkersConvergence: the full numeric integration test through
// the parallel pipeline — every parameter converges to the target through
// serialization, offload, refetch and FP16 transfers.
func TestUpdateWorkersConvergence(t *testing.T) {
	cfg := MLPConfig(0, 500, 64, memTiers(1000, 600), tierlock.NewManager(true))
	cfg.Hyper.LR = 0.05
	cfg.Grad = QuadraticGradFn(3)
	cfg.UpdateWorkers = 4
	params := gatherAfter(t, cfg, 300)
	for i, p := range params {
		if p < 2.9 || p > 3.1 {
			t.Fatalf("param %d = %v, want ~3 (parallel pipeline corrupts state?)", i, p)
		}
	}
}

// TestUpdateWorkersCacheAccounting: every subgroup is processed exactly
// once per phase at any worker count.
func TestUpdateWorkersCacheAccounting(t *testing.T) {
	cfg := MLPConfig(0, 1000, 100, memTiers(500, 300), nil)
	cfg.UpdateWorkers = 3
	cfg.HostCacheSlots = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 4; i++ {
		it, err := e.TrainIteration(i)
		if err != nil {
			t.Fatal(err)
		}
		if got := it.CacheHits + it.CacheMisses; got != e.Subgroups() {
			t.Fatalf("iteration %d processed %d subgroups, want %d", i, got, e.Subgroups())
		}
		if it.ParamsUpdated != 1000 {
			t.Fatalf("iteration %d updated %d params, want 1000", i, it.ParamsUpdated)
		}
	}
}
