package engine

import (
	"fmt"
	"sync"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/subgroup"
)

// Live subgroup migration (§3.3 replanning, made an enforced contract).
//
// AdaptivePlacement recomputes the subgroup→tier split every iteration,
// but historically a replanned subgroup's bytes only moved when it
// happened to pass through the host cache and get flush-evicted: cold
// subgroups stayed on the wrong tier indefinitely, so the plan and
// reality drifted apart. The migrator closes that gap. After each replan
// the update phase enqueues every offloaded subgroup whose actual backing
// tier (loc) disagrees with the plan; MigrationWindow background workers
// drain the queue at aio.Migration priority — the lowest class, so
// migration traffic can never delay a demand fetch, while the scheduler's
// aging still guarantees it progresses.
//
// Lifecycle of one migration (read old → write new → flip → delete old):
//
//	1. Under cacheMu: skip if the subgroup became host-resident, is
//	   pinned (a fetch is in flight or imminent), or is already being
//	   migrated; otherwise resolve from=loc, to=plan.TierFor and publish
//	   a migrating ticket. From here the issuer waits on the ticket
//	   before classifying the subgroup, so no fetch can target a tier
//	   the migrator is about to abandon.
//	2. Honor the subgroup's flush ticket: if an eviction flush to the
//	   source tier is still in flight, wait until it is durable
//	   (read-after-write on the tier, same ordering the issuer uses for
//	   same-phase refetches).
//	3. Copy: read the state object from the source tier and write it to
//	   the destination, both at Migration class, staged through one of
//	   MigrationWindow pooled buffers (the bound on migration memory and
//	   concurrency).
//	4. Under cacheMu: flip loc to the destination and clear the ticket —
//	   only after the copy landed, so a failure at any earlier point
//	   leaves the source object authoritative and the subgroup simply
//	   re-enqueues at the next replan.
//	5. Delete the stale source object (best effort; a failed delete
//	   orphans bytes but can never corrupt, and is counted).
//
// Gradient objects are never migrated: they are per-iteration transients
// whose location is tracked in gradLoc, and backward reclaims a stale
// gradient object itself when the state has moved between iterations.
//
// drain() quiesces the queue completely, so checkpoint manifests always
// record a consistent (possibly still partially un-converged) placement
// and Restore stays bit-identical.

// migrationTicket marks an in-flight cross-tier copy; done is closed when
// loc has been flipped (or the migration abandoned).
type migrationTicket struct {
	done chan struct{}
}

// migStatsCell accumulates migrator counters.
type migStatsCell struct {
	mu        sync.Mutex
	moves     int64
	bytes     int64
	abandoned int64
	orphans   int64
	firstErr  error
}

// MigrationStats is a snapshot of the live migrator's counters.
type MigrationStats struct {
	// Moves counts completed migrations; Bytes the payload moved.
	Moves int64
	Bytes int64
	// Abandoned counts migrations skipped because the subgroup was
	// fetched, pinned, evicted or re-planned before the copy started, or
	// because the copy failed (the source object stays authoritative).
	Abandoned int64
	// Orphans counts stale source objects whose post-copy delete failed.
	Orphans int64
	// Err is the first copy failure observed (nil when all clean).
	Err error
}

// MigrationStats returns a snapshot of the migrator's counters.
func (e *Engine) MigrationStats() MigrationStats {
	e.migStats.mu.Lock()
	defer e.migStats.mu.Unlock()
	return MigrationStats{
		Moves:     e.migStats.moves,
		Bytes:     e.migStats.bytes,
		Abandoned: e.migStats.abandoned,
		Orphans:   e.migStats.orphans,
		Err:       e.migStats.firstErr,
	}
}

// MisplacedSubgroups reports how many offloaded subgroups currently
// reside on a tier other than the one the plan assigns — the divergence
// the migrator exists to drive to zero.
func (e *Engine) MisplacedSubgroups() int {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	n := 0
	for sg, l := range e.loc {
		if l != locHost && l != e.plan.TierFor(sg) {
			n++
		}
	}
	return n
}

// scheduleMigrations enqueues every offloaded subgroup whose backing tier
// disagrees with the (fresh) plan. Called by the update phase right after
// an adaptive replan; a no-op when live migration is disabled.
func (e *Engine) scheduleMigrations() {
	if e.migPool == nil {
		return
	}
	e.cacheMu.Lock()
	var due []int
	for sg, l := range e.loc {
		if l != locHost && l != e.plan.TierFor(sg) {
			due = append(due, sg)
		}
	}
	e.cacheMu.Unlock()
	if len(due) == 0 {
		return
	}
	e.migMu.Lock()
	for _, sg := range due {
		if !e.migQueued[sg] {
			e.migQueued[sg] = true
			e.migOrder = append(e.migOrder, sg)
		}
	}
	e.migCond.Broadcast()
	e.migMu.Unlock()
}

// nextMigration blocks until a migration is queued (returning it and
// true) or the migrator is stopped (false). It marks the migration
// in-flight; the caller must call migrationDone when finished.
func (e *Engine) nextMigration() (int, bool) {
	e.migMu.Lock()
	defer e.migMu.Unlock()
	for len(e.migOrder) == 0 {
		if e.migClosed {
			return 0, false
		}
		e.migCond.Wait()
	}
	sg := e.migOrder[0]
	e.migOrder = e.migOrder[1:]
	delete(e.migQueued, sg)
	e.migInflight++
	return sg, true
}

// migrationDone retires an in-flight migration and wakes drainers.
func (e *Engine) migrationDone() {
	e.migMu.Lock()
	e.migInflight--
	e.migCond.Broadcast()
	e.migMu.Unlock()
}

// drainMigrations blocks until the migration queue is empty and no copy
// is in flight. A no-op when live migration is disabled.
func (e *Engine) drainMigrations() {
	if e.migPool == nil {
		return
	}
	e.migMu.Lock()
	for len(e.migOrder) > 0 || e.migInflight > 0 {
		e.migCond.Wait()
	}
	e.migMu.Unlock()
}

// stopMigrators shuts the migrator workers down (Close path).
func (e *Engine) stopMigrators() {
	e.migMu.Lock()
	e.migClosed = true
	e.migCond.Broadcast()
	e.migMu.Unlock()
	e.migWG.Wait()
}

// migrator is one background migration worker; MigrationWindow of them
// run per engine, each staging through one pooled buffer at a time.
func (e *Engine) migrator() {
	defer e.migWG.Done()
	for {
		sg, ok := e.nextMigration()
		if !ok {
			return
		}
		e.migrateOne(sg)
		e.migrationDone()
	}
}

// migrateOne moves one subgroup's state object to its planned tier,
// following the lifecycle documented at the top of this file. All
// failure paths leave the source object authoritative.
func (e *Engine) migrateOne(sg int) {
	e.cacheMu.Lock()
	from := e.loc[sg]
	if from == locHost || e.migrating[sg] != nil || e.lru.Pinned(sg) {
		// Host-resident (an eviction will already flush to the planned
		// tier), mid-migration by another worker, or wanted by the update
		// pipeline right now — in every case the move is moot or unsafe.
		e.cacheMu.Unlock()
		e.abandonMigration(nil)
		return
	}
	to := e.plan.TierFor(sg)
	if to == from {
		e.cacheMu.Unlock()
		return // converged since it was enqueued
	}
	tk := &migrationTicket{done: make(chan struct{})}
	e.migrating[sg] = tk
	e.cacheMu.Unlock()

	err := e.copyState(sg, from, to)

	e.cacheMu.Lock()
	if err == nil {
		e.loc[sg] = to
	}
	delete(e.migrating, sg)
	e.cacheMu.Unlock()
	close(tk.done)

	if err != nil {
		e.abandonMigration(fmt.Errorf("engine: migrate subgroup %d %s→%s: %w",
			sg, e.names[from], e.names[to], err))
		return
	}

	// The destination copy is authoritative; reclaim the source object.
	// Failure here can only orphan bytes, never corrupt. Recorded as the
	// subgroup's delete ticket and waited inline: a later eviction or
	// migration writing this key back to the source tier orders behind it
	// (phase-start waitDeletes, or the ticket wait in copyState).
	if dop, derr := e.aios[from].SubmitDelete(aio.Migration, e.key(sg)); derr == nil {
		e.recordDelete(sg, dop)
		if dop.Wait() != nil {
			e.countOrphan()
		}
	} else {
		e.countOrphan()
	}

	size := subgroup.StateBytes(e.shard.Subgroups[sg].Len())
	e.migStats.mu.Lock()
	e.migStats.moves++
	e.migStats.bytes += int64(size)
	e.migStats.mu.Unlock()
}

// copyState stages the subgroup's state object through a pooled buffer:
// read from the source tier, write to the destination, both at Migration
// priority. The write is waited before return, so the caller can flip loc
// knowing the destination object is durable.
func (e *Engine) copyState(sg, from, to int) error {
	// Read-after-write: an eviction flush of this subgroup to the source
	// tier may still be in flight; its ticket orders the migration read
	// after the write is durable, exactly like a same-phase refetch.
	e.mu.Lock()
	ft := e.flushTickets[sg]
	e.mu.Unlock()
	if ft != nil {
		<-ft.done
		if ft.op == nil {
			return fmt.Errorf("source flush failed to submit")
		}
		if err := ft.op.Wait(); err != nil {
			return fmt.Errorf("source flush: %w", err)
		}
	}

	// Delete-after-write hazard on the destination: a previous eviction or
	// migration may still have a reclamation delete of this key in flight
	// on the destination tier; the write must not land under it.
	e.mu.Lock()
	dt := e.deleteTickets[sg]
	e.mu.Unlock()
	if dt != nil {
		//mlpvet:allow aioop ordering barrier only: the migration must not write under an in-flight delete; the delete's outcome is irrelevant
		_ = dt.Wait()
	}

	size := subgroup.StateBytes(e.shard.Subgroups[sg].Len())
	buf := e.migPool.Get()
	defer e.migPool.Put(buf)
	key := e.key(sg)
	rop, err := e.aios[from].SubmitReadClass(aio.Migration, key, buf[:size])
	if err != nil {
		return err
	}
	// Same corrupt-retry discipline as the update phase: a transient
	// in-flight flip must not permanently record MigrationStats.Err for
	// a migration the next read would complete fine.
	if rop, err = e.awaitRead(from, rop, key, buf[:size]); err != nil {
		return err
	}
	// Zero-copy header peek before the destination write: a wrong or
	// malformed object must never become the subgroup's authoritative
	// copy (the source stays authoritative on any failure here).
	if id, n, _, err := subgroup.PeekHeader(buf[:size]); err != nil {
		return err
	} else if id != sg || n != e.shard.Subgroups[sg].Len() {
		return fmt.Errorf("source object is subgroup %d with %d params", id, n)
	}
	wop, err := e.aios[to].SubmitWriteClass(aio.Migration, key, buf[:size])
	if err != nil {
		return err
	}
	if err := wop.Wait(); err != nil {
		return err
	}
	// Feed the replanner and the per-iteration class breakdown. The
	// estimator observes wire bytes — device bandwidth, not the
	// codec-inflated effective rate.
	e.est.ObserveRead(e.names[from], float64(rop.WireBytes()), rop.TransferTime().Seconds())
	e.est.ObserveWrite(e.names[to], float64(wop.WireBytes()), wop.TransferTime().Seconds())
	e.recordAsyncOp(rop, float64(size))
	e.recordAsyncOp(wop, float64(size))
	return nil
}

// abandonMigration counts a skipped or failed migration, recording the
// first real failure for MigrationStats.
func (e *Engine) abandonMigration(err error) {
	e.migStats.mu.Lock()
	e.migStats.abandoned++
	if err != nil && e.migStats.firstErr == nil {
		e.migStats.firstErr = err
	}
	e.migStats.mu.Unlock()
}

func (e *Engine) countOrphan() {
	e.migStats.mu.Lock()
	e.migStats.orphans++
	e.migStats.mu.Unlock()
}
