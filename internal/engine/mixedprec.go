package engine

import (
	"context"
	"fmt"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/subgroup"
)

// Mixed-precision safety machinery (loss scaling, global gradient-norm
// clipping) and checkpoint pre-staging integration.

// scalerCheck runs the dynamic loss-scaling overflow check over every
// subgroup's FP16 gradients. It returns false when the step must be
// skipped. Without LossScaling it always returns true.
func (e *Engine) scalerCheck() bool {
	if e.scaler == nil {
		return true
	}
	for _, sg := range e.shard.Subgroups {
		if optim.HasOverflow(sg.Grads16) {
			// One overflowing subgroup invalidates the whole step; let the
			// scaler back off exactly once for the step.
			e.scaler.Check(sg.Grads16)
			return false
		}
	}
	// No overflow anywhere: feed one clean observation.
	if len(e.shard.Subgroups) > 0 {
		e.scaler.Check(e.shard.Subgroups[0].Grads16)
	}
	return true
}

// Scaler exposes the loss scaler (nil when LossScaling is disabled).
func (e *Engine) Scaler() *optim.LossScaler { return e.scaler }

// SkippedSteps returns how many update phases were skipped by loss-scaling
// overflow checks.
func (e *Engine) SkippedSteps() int64 { return e.skippedSteps }

// computeClipFactor derives the global clip factor from the per-subgroup
// partial norms recorded during the backward pass. Returns 1 when clipping
// is disabled or the norm is within bounds.
func (e *Engine) computeClipFactor() float32 {
	if e.cfg.ClipNorm <= 0 {
		return 1
	}
	global := optim.GlobalGradNorm(e.partialNorms)
	if global <= e.cfg.ClipNorm || global == 0 {
		return 1
	}
	return float32(e.cfg.ClipNorm / global)
}

// applyClip scales one subgroup's gradient view in place by the global
// clip factor: the FP16 accumulation buffer on the delayed-conversion path,
// the fetched FP32 buffer on the baseline path.
func applyClip(sg *subgroup.Subgroup, factor float32, fp16Path bool) {
	if factor >= 1 {
		return
	}
	if fp16Path {
		for i, g := range sg.Grads16 {
			sg.Grads16[i] = fp16.FromFloat32(fp16.ToFloat32(g) * factor)
		}
		return
	}
	for i := range sg.Grads32 {
		sg.Grads32[i] *= factor
	}
}

// GradNorm returns the most recent global gradient norm (0 before the
// first backward pass or when clipping is disabled).
func (e *Engine) GradNorm() float64 {
	return optim.GlobalGradNorm(e.partialNorms)
}

// CheckpointLocations classifies every subgroup's current placement for
// checkpoint planning: subgroups already resident on a persistent tier are
// pre-staged and need no checkpoint I/O (§3.3).
func (e *Engine) CheckpointLocations() []checkpoint.Location {
	out := make([]checkpoint.Location, len(e.shard.Subgroups))
	for i, sg := range e.shard.Subgroups {
		loc := checkpoint.Location{
			SubgroupID: i,
			Bytes:      int64(subgroup.StateBytes(sg.Len())),
		}
		if e.loc[i] == locHost {
			loc.TierName = "host"
		} else {
			loc.TierName = e.names[e.loc[i]]
			loc.Persistent = e.cfg.Tiers[e.loc[i]].Persistent
		}
		out[i] = loc
	}
	return out
}

// FetchSubgroupBytes returns the serialized optimizer state of one
// subgroup for checkpointing — marshalled from memory when host-resident,
// read back from its tier otherwise. The returned buffer is freshly
// allocated (checkpoint writers hold it across async writes).
func (e *Engine) FetchSubgroupBytes(ctx context.Context, sgID int) ([]byte, error) {
	if sgID < 0 || sgID >= len(e.shard.Subgroups) {
		return nil, fmt.Errorf("engine: subgroup %d out of range", sgID)
	}
	e.Drain() // pending lazy flushes must land first
	sg := e.shard.Subgroups[sgID]
	size := subgroup.StateBytes(sg.Len())
	buf := make([]byte, size)
	if e.loc[sgID] == locHost {
		if _, err := sg.Marshal(buf, false); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if err := e.aios[e.loc[sgID]].ReadSync(e.key(sgID), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Checkpoint writes the non-pre-staged subgroups to the given writer and
// returns the plan's savings fraction (how much I/O pre-staging avoided).
func (e *Engine) Checkpoint(ctx context.Context, step int, w *checkpoint.Writer) (float64, error) {
	plan := checkpoint.BuildPlan(e.CheckpointLocations())
	_, err := w.Write(ctx, step, plan, e.FetchSubgroupBytes)
	return plan.Savings(), err
}
