package engine

import (
	"context"
	"fmt"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/bufpool"
	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/subgroup"
	"github.com/datastates/mlpoffload/internal/tiercodec"
)

// Mixed-precision safety machinery (loss scaling, global gradient-norm
// clipping) and checkpoint pre-staging integration.

// scalerCheck runs the dynamic loss-scaling overflow check over every
// subgroup's FP16 gradients. It returns false when the step must be
// skipped. Without LossScaling it always returns true.
func (e *Engine) scalerCheck() bool {
	if e.scaler == nil {
		return true
	}
	for _, sg := range e.shard.Subgroups {
		if optim.HasOverflow(sg.Grads16) {
			// One overflowing subgroup invalidates the whole step; let the
			// scaler back off exactly once for the step.
			e.scaler.Check(sg.Grads16)
			return false
		}
	}
	// No overflow anywhere: feed one clean observation.
	if len(e.shard.Subgroups) > 0 {
		e.scaler.Check(e.shard.Subgroups[0].Grads16)
	}
	return true
}

// Scaler exposes the loss scaler (nil when LossScaling is disabled).
func (e *Engine) Scaler() *optim.LossScaler { return e.scaler }

// SkippedSteps returns how many update phases were skipped by loss-scaling
// overflow checks.
func (e *Engine) SkippedSteps() int64 { return e.skippedSteps }

// computeClipFactor derives the global clip factor from the per-subgroup
// partial norms recorded during the backward pass. Returns 1 when clipping
// is disabled or the norm is within bounds.
func (e *Engine) computeClipFactor() float32 {
	if e.cfg.ClipNorm <= 0 {
		return 1
	}
	global := optim.GlobalGradNorm(e.partialNorms)
	if global <= e.cfg.ClipNorm || global == 0 {
		return 1
	}
	return float32(e.cfg.ClipNorm / global)
}

// applyClip scales one subgroup's gradient view in place by the global
// clip factor: the FP16 accumulation buffer on the delayed-conversion path,
// the fetched FP32 buffer on the baseline path.
func applyClip(sg *subgroup.Subgroup, factor float32, fp16Path bool) {
	if factor >= 1 {
		return
	}
	if fp16Path {
		for i, g := range sg.Grads16 {
			sg.Grads16[i] = fp16.FromFloat32(fp16.ToFloat32(g) * factor)
		}
		return
	}
	for i := range sg.Grads32 {
		sg.Grads32[i] *= factor
	}
}

// GradNorm returns the most recent global gradient norm (0 before the
// first backward pass or when clipping is disabled).
func (e *Engine) GradNorm() float64 {
	return optim.GlobalGradNorm(e.partialNorms)
}

// CheckpointLocations classifies every subgroup's current placement for
// checkpoint planning: subgroups already resident on a persistent tier are
// pre-staged and need no cross-tier checkpoint I/O (§3.3). Callers must
// have drained the engine (Engine.Checkpoint does), which also quiesces
// the live migrator — the manifest then records the exact, possibly
// mid-convergence, placement and Restore reproduces training
// bit-identically from it.
func (e *Engine) CheckpointLocations() []checkpoint.Location {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	out := make([]checkpoint.Location, len(e.shard.Subgroups))
	for i, sg := range e.shard.Subgroups {
		loc := checkpoint.Location{
			SubgroupID: i,
			Bytes:      int64(subgroup.StateBytes(sg.Len())),
		}
		if e.loc[i] == locHost {
			loc.TierName = "host"
		} else {
			loc.TierName = e.names[e.loc[i]]
			loc.Key = e.key(i)
			loc.Persistent = e.cfg.Tiers[e.loc[i]].Persistent
		}
		out[i] = loc
	}
	return out
}

// numerics captures the configuration knobs that determine training
// values (as opposed to performance); a checkpoint resumed under
// different numerics is rejected by Restore.
func (e *Engine) numerics() checkpoint.Numerics {
	return checkpoint.Numerics{
		Order:          e.cfg.Order.String(),
		SkipGradFlush:  e.cfg.SkipGradFlush,
		LossScaling:    e.cfg.LossScaling,
		GradAccumSteps: e.cfg.GradAccumSteps,
		ClipNorm:       e.cfg.ClipNorm,
		LR:             e.cfg.Hyper.LR,
		Beta1:          e.cfg.Hyper.Beta1,
		Beta2:          e.cfg.Hyper.Beta2,
		Eps:            e.cfg.Hyper.Eps,
		WeightDecay:    e.cfg.Hyper.WeightDecay,
	}
}

// marshalHostSubgroup serializes a host-resident subgroup into a pooled
// buffer (checkpoint writers hold it across async writes; the buffer
// returns to internal/bufpool via the caller's release path). A state
// that aliases its fetched buffer is already serialized, so the pooled
// copy is one memmove — never a conversion pass.
func (e *Engine) marshalHostSubgroup(sgID int) ([]byte, error) {
	sg := e.shard.Subgroups[sgID]
	if sg.State == nil {
		return nil, fmt.Errorf("engine: subgroup %d not host-resident", sgID)
	}
	size := subgroup.StateBytes(sg.Len())
	buf := bufpool.Get(size)
	if sg.Backing != nil {
		copy(buf, sg.Backing[:size])
		return buf, nil
	}
	if _, err := sg.Marshal(buf, false); err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// FetchSubgroupBytes returns the serialized optimizer state of one
// subgroup — marshalled from memory when host-resident, read back from its
// tier otherwise. The caller must Drain the engine first so pending lazy
// flushes have landed; Engine.Checkpoint drains once for its whole plan
// instead of once per subgroup. The returned buffer is caller-owned and
// comes from internal/bufpool; callers that are done with it may recycle
// it with bufpool.Put (dropping it is also fine).
func (e *Engine) FetchSubgroupBytes(ctx context.Context, sgID int) ([]byte, error) {
	if sgID < 0 || sgID >= len(e.shard.Subgroups) {
		return nil, fmt.Errorf("engine: subgroup %d out of range", sgID)
	}
	if e.loc[sgID] == locHost {
		return e.marshalHostSubgroup(sgID)
	}
	buf := bufpool.Get(subgroup.StateBytes(e.shard.Subgroups[sgID].Len()))
	if err := e.readSyncRetry(e.loc[sgID], e.key(sgID), buf); err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// Checkpoint writes a restorable checkpoint at the given step and commits
// its manifest. Three transfer streams overlap: step-tagged snapshot
// copies of the pre-staged subgroups on their own persistent tiers (so the
// next update phase cannot overwrite what the manifest references),
// asynchronous tier reads for the offloaded part of the ToFlush set, and
// the writer's checkpoint-tier writes. The manifest lands last — it is the
// commit record, and without it the checkpoint does not exist.
//
// Checkpoint must be called at an iteration boundary (no update phase in
// flight), like GatherParams.
func (e *Engine) Checkpoint(ctx context.Context, step int, w *checkpoint.Writer) (checkpoint.Manifest, error) {
	if e.closed {
		return checkpoint.Manifest{}, fmt.Errorf("engine: closed")
	}
	// One drain for the whole checkpoint (not one per subgroup): every
	// lazy eviction flush and gradient write lands before tier reads. A
	// failed flush fails the checkpoint — the live key still holds the
	// previous object (tier writes are atomic), and committing a manifest
	// over it would silently capture stale state.
	if err := e.drain(); err != nil {
		return checkpoint.Manifest{}, err
	}

	plan := checkpoint.BuildPlan(e.CheckpointLocations())
	prefix := w.Prefix()

	// The whole shard's serialized state cannot be staged at once — by
	// this engine's premise it exceeds host memory. sem bounds the live
	// checkpoint staging buffers across all three streams (snapshot
	// copies, flush fetches, in-flight checkpoint writes); a token is
	// held from buffer allocation until its last write lands.
	window := e.cfg.PrefetchDepth + 2
	sem := make(chan struct{}, window)

	// Snapshot stream: step-tagged same-tier copies of the pre-staged
	// subgroups, pipelined on a side goroutine while the writer flushes.
	// A tier that supports server-side copies (FileTier hard links,
	// MemTier aliases) versions the object with no data movement at all —
	// the §3.3 "for free" pre-staging; otherwise the bytes make a
	// same-tier round trip through the bounded staging window.
	var snapErr error
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		var writes []*aio.Op
		for _, l := range plan.PreStaged {
			tier := e.loc[l.SubgroupID]
			snapKey := checkpoint.SnapshotKey(prefix, step, l.SubgroupID)
			if copied, err := storage.TryCopy(ctx, e.cfg.Tiers[tier].Tier, l.Key, snapKey); copied {
				if err != nil {
					snapErr = fmt.Errorf("engine: checkpoint snapshot copy subgroup %d: %w", l.SubgroupID, err)
					break
				}
				continue
			}
			sem <- struct{}{}
			buf := bufpool.Get(int(l.Bytes))
			rop, err := e.aios[tier].SubmitReadClass(aio.Checkpoint, l.Key, buf)
			if err == nil {
				// Corrupt-retry, as everywhere the engine reads state.
				_, err = e.awaitRead(tier, rop, l.Key, buf)
			}
			if err != nil {
				bufpool.Put(buf)
				<-sem
				snapErr = fmt.Errorf("engine: checkpoint snapshot read subgroup %d: %w", l.SubgroupID, err)
				break // fall through: already-submitted writes must be waited
			}
			wop, err := e.aios[tier].SubmitWriteClass(aio.Checkpoint, snapKey, buf)
			if err != nil {
				bufpool.Put(buf)
				<-sem
				snapErr = fmt.Errorf("engine: checkpoint snapshot write subgroup %d: %w", l.SubgroupID, err)
				break
			}
			writes = append(writes, wop)
			//mlpvet:allow aioop completion only gates the buffer return; the op is on writes and its error is collected below
			go func(op *aio.Op, buf []byte) { _ = op.Wait(); bufpool.Put(buf); <-sem }(wop, buf)
		}
		for _, op := range writes {
			if err := op.Wait(); err != nil && snapErr == nil {
				snapErr = fmt.Errorf("engine: checkpoint snapshot write: %w", err)
			}
		}
	}()

	// Flush stream: an issuer keeps a bounded read-ahead of ToFlush
	// subgroups in front of the writer, so checkpoint writes overlap the
	// tier reads without ever staging more than the window.
	type staged struct {
		sg   int
		op   *aio.Op // nil for host-marshalled subgroups
		tier int     // tier op reads from (corrupt-retry target)
		buf  []byte
		err  error
	}
	stageCh := make(chan staged, len(plan.ToFlush))
	stop := make(chan struct{})
	go func() {
		defer close(stageCh)
		for _, l := range plan.ToFlush {
			select {
			case sem <- struct{}{}:
			case <-stop:
				return
			}
			if e.loc[l.SubgroupID] == locHost {
				buf, err := e.marshalHostSubgroup(l.SubgroupID)
				if err != nil {
					<-sem
					stageCh <- staged{sg: l.SubgroupID, err: err}
					return
				}
				stageCh <- staged{sg: l.SubgroupID, buf: buf}
				continue
			}
			buf := bufpool.Get(int(l.Bytes))
			tier := e.loc[l.SubgroupID]
			op, err := e.aios[tier].SubmitReadClass(aio.Checkpoint, l.Key, buf)
			if err != nil {
				bufpool.Put(buf)
				<-sem
				stageCh <- staged{sg: l.SubgroupID, err: err}
				return
			}
			stageCh <- staged{sg: l.SubgroupID, op: op, tier: tier, buf: buf}
		}
	}()
	fetch := func(_ context.Context, sgID int) ([]byte, error) {
		s, ok := <-stageCh
		if !ok || s.sg != sgID {
			return nil, fmt.Errorf("engine: checkpoint staging desynchronized at subgroup %d", sgID)
		}
		if s.err != nil {
			return nil, s.err
		}
		if s.op != nil {
			if _, err := e.awaitRead(s.tier, s.op, e.key(s.sg), s.buf); err != nil {
				bufpool.Put(s.buf)
				<-sem // the writer never sees this buffer
				return nil, err
			}
		}
		return s.buf, nil
	}
	release := func(buf []byte) { bufpool.Put(buf); <-sem }

	_, werr := w.Write(ctx, step, plan, fetch, release)
	// Abandon staging the writer never consumed (its loop stops at the
	// first error): stop the issuer, then wait the orphaned reads.
	close(stop)
	for s := range stageCh {
		if s.op != nil {
			//mlpvet:allow aioop abandoned staging read; waiting only quiesces the buffer before pooling
			_ = s.op.Wait()
		}
		if s.err == nil {
			bufpool.Put(s.buf)
			<-sem
		}
	}
	<-snapDone
	if werr != nil {
		return checkpoint.Manifest{}, werr
	}
	if snapErr != nil {
		return checkpoint.Manifest{}, snapErr
	}

	m := checkpoint.BuildManifest(step, plan, prefix)
	m.Rank = e.cfg.Rank
	m.Params = e.cfg.Params
	m.SubgroupParams = e.cfg.SubgroupParams
	m.Numerics = e.numerics()
	// Record the codec middleware active on every tier the manifest's
	// objects can live on, so a restore under a mismatched (codec vs
	// codec-less) configuration fails with a clear message up front.
	m.TierCodecs = make(map[string]string, len(e.cfg.Tiers)+1)
	for i, t := range e.cfg.Tiers {
		m.TierCodecs[e.names[i]] = tiercodec.Describe(t.Tier)
	}
	// The checkpoint tier may share a name with a training tier (e.g. a
	// writer handed the persistent tier's raw handle); the engine's
	// wrapped handle is the authoritative record for Restore's check, so
	// never overwrite it.
	if _, taken := m.TierCodecs[w.Tier().Name()]; !taken {
		m.TierCodecs[w.Tier().Name()] = tiercodec.Describe(w.Tier())
	}
	m.AdamStep = e.step
	m.Phase = e.phase
	m.SkippedSteps = e.skippedSteps
	if e.scaler != nil {
		st := e.scaler.State()
		m.Scaler = &st
	}
	if err := w.WriteManifest(m); err != nil {
		return checkpoint.Manifest{}, err
	}
	return m, nil
}
