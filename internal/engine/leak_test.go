package engine

//mlpvet:allowfile clockcheck time.After here is a liveness timeout guard, not measured time

import (
	"errors"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/storage"
)

// TestAdoptedStateSurvivesTransientFaults guards the fetch-pool
// ownership discipline of the zero-copy path: when an item fails
// *after* its state was adopted over the pooled fetch buffer (a
// gradient-read fault on the baseline path, a flush-submit fault on the
// eviction path), the buffer must return to the pool. Before the
// dropState release was added, every such failure leaked one buffer
// from the bounded pool and a handful of transient faults stalled
// training forever in fetchPool.Get — this test would time out.
func TestAdoptedStateSurvivesTransientFaults(t *testing.T) {
	for _, mode := range []struct {
		name              string
		reads, writes     bool
		skipGradFlush     bool
		every             int64
		wantTrainFailures bool
	}{
		// Baseline path: periodic read faults hit gradient fetches of
		// subgroups whose state already adopted its buffer.
		{name: "grad-read-faults", reads: true, every: 5},
		// Eviction path: periodic write faults hit flushes of adopted
		// buffers (WriteSync during init may trip too; retried below).
		{name: "flush-write-faults", writes: true, skipGradFlush: true, every: 7},
	} {
		t.Run(mode.name, func(t *testing.T) {
			boom := errors.New("transient tier fault")
			tier := &storage.FaultTier{
				Tier:       storage.NewMemTier("flaky"),
				Err:        boom,
				FailReads:  mode.reads,
				FailWrites: mode.writes,
			}
			cfg := BaselineConfig(0, 1200, 60, []TierSpec{{Tier: tier, ReadBW: 1e6, WriteBW: 1e6}})
			cfg.SkipGradFlush = mode.skipGradFlush
			cfg.UpdateWorkers = 2
			cfg.PrefetchDepth = 2
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			// Arm the injector only after the initial offload.
			tier.SetFailEvery(mode.every)

			// Drive many iterations through repeated failures. Liveness:
			// progress must continue (a permanently leaking pool stalls
			// the issuer in fetchPool.Get).
			done := make(chan struct{})
			go func() {
				defer close(done)
				failures := 0
				for i := 0; i < 40; i++ {
					if _, err := e.TrainIteration(i); err != nil {
						if !errors.Is(err, boom) {
							t.Errorf("unexpected error: %v", err)
							return
						}
						failures++
					}
				}
				if failures == 0 {
					t.Error("fault injection never fired; test exercised nothing")
				}
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("training stalled: adopted fetch-pool buffers leaked on failed items")
			}

			// Exact pool accounting: disarm the injector, quiesce, and
			// check every fetch-pool buffer is either available or
			// held by exactly one host-resident adopted state. Any
			// error path that dropped an adopted buffer without
			// returning it (or double-returned one) breaks the
			// equation.
			// Grad-flush goroutines from the last iterations may still be
			// in flight; the locked setter keeps the disarm race-free.
			tier.SetFailEvery(0)
			e.Drain()
			quota := (cfg.PrefetchDepth + cfg.UpdateWorkers) + e.Subgroups() + 2
			if slots := cfg.HostCacheSlots; slots < e.Subgroups() {
				quota = (cfg.PrefetchDepth + cfg.UpdateWorkers) + slots + 2
			}
			held := 0
			for _, sg := range e.shard.Subgroups {
				if sg.Backing != nil {
					held++
				}
			}
			if free := e.fetchPool.Free(); free+held != quota {
				t.Fatalf("fetch-pool accounting broken: free %d + held-by-residents %d != quota %d (leaked %d)",
					free, held, quota, quota-free-held)
			}
		})
	}
}
