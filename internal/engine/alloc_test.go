package engine

import (
	"runtime"
	"testing"

	"github.com/datastates/mlpoffload/internal/storage"
)

// TestUpdatePhaseSteadyStateAllocs is the CI smoke gate for the
// zero-copy steady state: after warmup, a full training iteration over
// unthrottled in-memory tiers (the BenchmarkUpdatePhaseUnthrottled
// configuration) must stay under fixed per-iteration allocation
// ceilings. The ceilings are far above today's fully-warmed measurement
// (~250 allocs, ~20 KB per iteration at 1M params; the benchmark's
// B/op reads higher — 0.2–0.7 MB depending on -benchtime — because it
// amortizes the lazy pool materialization of its warmup iterations)
// but far below what any per-byte regression produces — reintroducing
// one serialize pass or one staging copy on this workload costs
// megabytes per iteration (the pre-zero-copy engine allocated ~20
// MB/iteration here).
func TestUpdatePhaseSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	if testing.Short() {
		t.Skip("steady-state measurement needs full iterations")
	}
	tiers := []TierSpec{
		{Tier: storage.NewMemTier("nvme"), ReadBW: 2e9, WriteBW: 2e9},
		{Tier: storage.NewMemTier("pfs"), ReadBW: 1e9, WriteBW: 1e9},
	}
	cfg := MLPConfig(0, 1_000_000, 100_000, tiers, nil)
	cfg.AdaptivePlacement = false
	cfg.UpdateWorkers = 2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Warmup: materialize lazy pools, populate the host cache, settle
	// the pipeline into its steady state.
	iter := 0
	for ; iter < 4; iter++ {
		if _, err := eng.TrainIteration(iter); err != nil {
			t.Fatal(err)
		}
	}

	const measured = 6
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for end := iter + measured; iter < end; iter++ {
		if _, err := eng.TrainIteration(iter); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)

	allocsPerIter := float64(after.Mallocs-before.Mallocs) / measured
	bytesPerIter := float64(after.TotalAlloc-before.TotalAlloc) / measured
	t.Logf("steady state: %.0f allocs/iter, %.0f B/iter", allocsPerIter, bytesPerIter)

	// Fixed ceilings (see doc comment): per-op bookkeeping is allowed,
	// per-byte staging is not.
	const (
		maxAllocsPerIter = 2000
		maxBytesPerIter  = 4 << 20
	)
	if allocsPerIter > maxAllocsPerIter {
		t.Errorf("steady-state allocations regressed: %.0f allocs/iter > ceiling %d", allocsPerIter, maxAllocsPerIter)
	}
	if bytesPerIter > maxBytesPerIter {
		t.Errorf("steady-state allocation volume regressed: %.0f B/iter > ceiling %d", bytesPerIter, maxBytesPerIter)
	}
}
