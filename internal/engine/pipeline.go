package engine

import (
	"context"
	"fmt"
	"sync"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/f32view"
	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/metrics"
	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/placement"
	"github.com/datastates/mlpoffload/internal/subgroup"
)

// The update phase runs as a three-stage pipeline (paper §3: the CPU-side
// Adam update is overlapped with multi-path tier traffic):
//
//	issuer    — walks the phase's subgroup order, classifies each subgroup
//	            as cache hit or miss, pins it, and keeps up to
//	            PrefetchDepth+UpdateWorkers fetches/items in flight.
//	workers   — UpdateWorkers goroutines consume items, wait for their
//	            fetches, and run the Adam update + FP16 re-encode, so the
//	            update of subgroup k overlaps with tier reads for k+1..k+d.
//	committer — consumes items strictly in order: merges per-item metrics,
//	            unpins, touches the LRU, and lazily flushes the displaced
//	            victims, preserving the cache-friendly alternating-order
//	            residency semantics of the single-threaded engine.
//
// Errors propagate per subgroup: the first failure cancels the phase
// context; the issuer stops issuing and in-flight workers skip their
// update, release their staging buffers, and drain cleanly.

// pendingFetch tracks one in-flight subgroup fetch.
type pendingFetch struct {
	stateOp  *aio.Op
	stateBuf []byte
	gradOp   *aio.Op
	gradBuf  []byte
	tier     int
	gradTier int
	// co links members of one coalesced vectored fetch: they share
	// stateOp (the batch op) while keeping their own stateBuf, fetch
	// slot, and item. nil for plain single-object fetches.
	co *coalescedFetch
}

// coalescedFetch is the shared half of one vectored read-ahead batch:
// the aio op covering every member and the batch's total payload size,
// so members can attribute proportional shares of the op's wire bytes
// and device time to their own metrics. The estimator sees the transfer
// exactly once (obs), at full size — it tracks device bandwidth, and
// the device made one pass.
type coalescedFetch struct {
	op    *aio.Op
	total int
	obs   sync.Once
}

// updateItem carries one subgroup through the pipeline stages.
type updateItem struct {
	sgID int
	hit  bool          // host-resident at issue time
	pf   *pendingFetch // nil on a hit
	err  error
	m    metrics.Iteration // per-item measurements, merged at commit
	done chan struct{}     // closed by the worker
}

// flushTicket orders a same-phase refetch after an eviction flush: the
// issuer waits for done (and then the op) before submitting a read for a
// subgroup whose flush may still be in flight. op is nil when the flush
// failed to submit.
type flushTicket struct {
	done chan struct{}
	op   *aio.Op
}

// phaseRun is the shared state of one update phase's pipeline.
type phaseRun struct {
	ctx    context.Context
	cancel context.CancelFunc
	clip   float32

	mu  sync.Mutex
	err error // first failure; cancels the phase
}

func (p *phaseRun) fail(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
		p.cancel()
	}
	p.mu.Unlock()
}

func (p *phaseRun) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// updatePhase runs Algorithm 1 over all subgroups through the pipeline.
func (e *Engine) updatePhase(it *metrics.Iteration) error {
	m := len(e.shard.Subgroups)
	order := hostcache.UpdateOrder(e.cfg.Order, m, e.phase)
	if !e.scalerCheck() {
		// Dynamic loss scaling detected an overflow: skip the whole update
		// phase (the scale has been halved); subgroups stay where they are.
		e.skippedSteps++
		return nil
	}
	clip := e.computeClipFactor()
	e.step++

	// Previous phase's lazy flushes and this phase's gradient objects must
	// be durable before we fetch them back. The flush-ticket map is reset
	// only *after* the flushes are waited: the live migrator keys its
	// read-after-write ordering off those tickets, so an in-flight flush
	// must stay discoverable until it is durable.
	e.mu.Lock()
	flushes := e.pendingFlush
	e.pendingFlush = nil
	e.mu.Unlock()
	for _, op := range flushes {
		if err := op.Wait(); err != nil {
			return fmt.Errorf("engine: lazy flush failed: %w", err)
		}
	}
	e.mu.Lock()
	e.flushTickets = make(map[int]*flushTicket)
	e.mu.Unlock()
	for _, op := range e.pendingGrads {
		if err := op.Wait(); err != nil {
			return fmt.Errorf("engine: gradient flush failed: %w", err)
		}
	}
	e.pendingGrads = nil
	// Reclamation deletes must land before this phase can write the same
	// keys again (errors ignored — an orphan never corrupts).
	e.waitDeletes()

	run := &phaseRun{clip: clip}
	run.ctx, run.cancel = context.WithCancel(context.Background())
	defer run.cancel()

	// window bounds items in flight (and therefore pinned subgroups);
	// workCh never blocks the issuer because its capacity matches.
	inflight := e.cfg.PrefetchDepth + e.cfg.UpdateWorkers
	window := make(chan struct{}, inflight)
	workCh := make(chan *updateItem, inflight)
	orderCh := make(chan *updateItem, m)

	var workerWG sync.WaitGroup
	for w := 0; w < e.cfg.UpdateWorkers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			e.updateWorker(run, workCh)
		}()
	}
	var commitWG sync.WaitGroup
	commitWG.Add(1)
	go func() {
		defer commitWG.Done()
		e.commitItems(run, it, window, orderCh)
	}()

	e.issueItems(run, order, window, workCh, orderCh)
	workerWG.Wait()
	commitWG.Wait()
	if err := run.firstErr(); err != nil {
		return err
	}

	e.phase++
	it.ParamsUpdated += e.shard.Params()

	// Fold in async flush/migration metrics completed so far; ops still in
	// flight land in the next iteration's fold (see asyncFlushStats).
	e.mu.Lock()
	it.BytesWritten += e.asyncFlushStats.bytes
	it.WireBytesWritten += e.asyncFlushStats.wire
	it.WriteTime += e.asyncFlushStats.secs
	e.asyncFlushStats.bytes = 0
	e.asyncFlushStats.wire = 0
	e.asyncFlushStats.secs = 0
	for k, v := range e.asyncFlushStats.class {
		if it.ClassIO == nil {
			it.ClassIO = make(map[string]metrics.ClassIO)
		}
		it.ClassIO[k] = it.ClassIO[k].Add(v)
	}
	e.asyncFlushStats.class = nil
	e.mu.Unlock()

	// Adaptive replanning from observed bandwidths (§3.3), then live
	// migration of every offloaded subgroup the new plan displaced — the
	// migrator converges reality onto the plan in the background instead
	// of waiting for eviction traffic to happen to pass by.
	if e.cfg.AdaptivePlacement {
		newPlan := placement.NewPlan(m, e.bandwidths())
		e.cacheMu.Lock()
		e.plan = newPlan
		e.cacheMu.Unlock()
		e.scheduleMigrations()
	}
	return nil
}

// recordAsyncOp folds one completed asynchronous op (eviction flush,
// migration copy) into the per-class accumulator the next update-phase
// fold publishes to metrics.Iteration.ClassIO.
func (e *Engine) recordAsyncOp(op *aio.Op, bytes float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.asyncFlushStats.class == nil {
		e.asyncFlushStats.class = make(map[string]metrics.ClassIO)
	}
	k := op.Class().String()
	c := e.asyncFlushStats.class[k]
	c.Ops++
	c.Bytes += bytes
	c.WireBytes += float64(op.WireBytes())
	c.QueueDelay += op.QueueTime().Seconds()
	c.Transfer += op.TransferTime().Seconds()
	e.asyncFlushStats.class[k] = c
}

// issueItems is the issuer stage: it classifies and pins each subgroup in
// order, submits prefetch reads for misses, and hands items to the workers
// (via workCh) and the committer (via orderCh). It closes both channels
// when done or when the phase is cancelled.
//
// Read-ahead coalescing (CoalesceFetches > 1, SkipGradFlush mode):
// instead of one aio op per miss, the issuer detects runs of adjacent
// misses on the same tier and submits each run as one vectored read —
// one scheduling decision and one device pass for the run, split into
// per-member zero-copy buffer views. A run breaks on a cache hit, a
// tier change, a pending flush ticket (read-after-write stays a
// single-fetch concern), or the batch cap. Members of an unflushed run
// hold window slots but no fetch slots, and the cap never exceeds
// PrefetchDepth, so batch assembly cannot exhaust the window the
// committer needs to drain (inflight = PrefetchDepth + UpdateWorkers).
func (e *Engine) issueItems(run *phaseRun, order []int, window chan struct{}, workCh, orderCh chan *updateItem) {
	defer close(workCh)
	defer close(orderCh)
	maxRun := e.cfg.CoalesceFetches
	if !e.cfg.SkipGradFlush {
		// Baseline mode interleaves per-subgroup gradient reads anyway;
		// runs would be length 1.
		maxRun = 1
	}
	var batch []*updateItem
	var batchTier int
	// flush submits the pending run (vectored for >= 2 members) and
	// emits its items downstream in commit order. Always called before
	// returning: batched items hold window slots and pins that only the
	// committer releases.
	flush := func() {
		if len(batch) == 0 {
			return
		}
		e.issueCoalesced(run, batch, batchTier)
		for _, item := range batch {
			orderCh <- item
			workCh <- item
		}
		batch = batch[:0]
	}
	for _, sgID := range order {
		if run.ctx.Err() != nil {
			flush()
			return
		}
		window <- struct{}{} // released by the committer
		item := &updateItem{sgID: sgID, done: make(chan struct{})}
		e.cacheMu.Lock()
		// A subgroup mid-migration is between tiers: wait for the copy to
		// land (or abort) so the fetch targets the object's real home. The
		// migrator skips pinned subgroups, so once we pin below no new
		// migration can start under this fetch.
		for {
			mt := e.migrating[sgID]
			if mt == nil {
				break
			}
			e.cacheMu.Unlock()
			<-mt.done
			e.cacheMu.Lock()
		}
		//mlpvet:allow pinpair pinned for the whole fetch-update-commit pipeline; the committer unpins after flushEvicted
		e.lru.Pin(sgID)
		tier := e.loc[sgID]
		e.cacheMu.Unlock()
		if tier == locHost {
			item.hit = true // pinned, so it stays resident until commit
			flush()
			orderCh <- item
			workCh <- item
			continue
		}
		if maxRun > 1 && !e.hasFlushTicket(sgID) {
			// Pinned and ticketless: no eviction (and so no new ticket)
			// can appear under this subgroup until the committer unpins
			// it, so the coalesced read has no write to order after.
			if len(batch) > 0 && tier != batchTier {
				flush()
			}
			batch = append(batch, item)
			batchTier = tier
			if len(batch) >= maxRun {
				flush()
			}
			continue
		}
		flush()
		if err := e.issueFetch(item, tier); err != nil {
			item.err = err
			run.fail(err)
		}
		orderCh <- item
		workCh <- item
	}
	flush()
}

// hasFlushTicket reports whether a same-phase eviction flush of sgID is
// (or was) in flight — the read-after-write hazard that routes a fetch
// down the single-object path, which waits the ticket out.
func (e *Engine) hasFlushTicket(sgID int) bool {
	e.mu.Lock()
	_, ok := e.flushTickets[sgID]
	e.mu.Unlock()
	return ok
}

// issueCoalesced submits one run of adjacent same-tier misses. A
// single-member run degrades to the plain fetch path; longer runs take
// one fetch slot and one fetch-pool buffer per member (buffer ownership
// is exactly as in issueFetch — one owner per buffer, returned by
// processItem/releaseFetch) and share one vectored aio op at Prefetch
// class. On submission failure every member is failed and its resources
// returned; mid-run corruption recovers per member via awaitRead's
// single-read retry discipline.
func (e *Engine) issueCoalesced(run *phaseRun, batch []*updateItem, tier int) {
	if len(batch) == 1 {
		item := batch[0]
		if err := e.issueFetch(item, tier); err != nil {
			item.err = err
			run.fail(err)
		}
		return
	}
	keys := make([]string, len(batch))
	bufs := make([][]byte, len(batch))
	dsts := make([][]byte, len(batch))
	total := 0
	for i, item := range batch {
		e.fetchSem <- struct{}{} // the batch cap keeps this ≤ PrefetchDepth
		size := subgroup.StateBytes(e.shard.Subgroups[item.sgID].Len())
		keys[i] = e.key(item.sgID)
		bufs[i] = e.fetchPool.Get()
		dsts[i] = bufs[i][:size]
		total += size
	}
	op, err := e.aios[tier].SubmitReadVecClass(aio.Prefetch, keys, dsts)
	if err != nil {
		for i, item := range batch {
			e.fetchPool.Put(bufs[i])
			<-e.fetchSem
			item.err = err
		}
		run.fail(err)
		return
	}
	co := &coalescedFetch{op: op, total: total}
	for i, item := range batch {
		item.pf = &pendingFetch{stateOp: op, stateBuf: bufs[i], tier: tier, co: co}
	}
}

// issueFetch submits the asynchronous state (and, on the baseline path,
// gradient) reads for one offloaded subgroup.
func (e *Engine) issueFetch(item *updateItem, tier int) error {
	sgID := item.sgID
	sg := e.shard.Subgroups[sgID]
	// Read-after-write: if this phase evicted the subgroup earlier, its
	// flush must be durable before the refetch is submitted.
	e.mu.Lock()
	tk := e.flushTickets[sgID]
	e.mu.Unlock()
	if tk != nil {
		<-tk.done
		if tk.op == nil {
			return fmt.Errorf("engine: refetch of subgroup %d after failed flush", sgID)
		}
		if err := tk.op.Wait(); err != nil {
			return fmt.Errorf("engine: flush before refetch of subgroup %d: %w", sgID, err)
		}
	}
	e.fetchSem <- struct{}{} // PrefetchDepth bounds in-flight fetches
	buf := e.fetchPool.Get()
	size := subgroup.StateBytes(sg.Len())
	// Issued as Prefetch: the issuer runs ahead of the workers, so at
	// submission time this is speculative read-ahead. The worker that
	// blocks on it promotes it to DemandFetch (processItem), which is what
	// keeps the critical path ahead of flush/checkpoint/migration traffic
	// without starving them.
	op, err := e.aios[tier].SubmitReadClass(aio.Prefetch, e.key(sgID), buf[:size])
	if err != nil {
		e.fetchPool.Put(buf)
		<-e.fetchSem
		return err
	}
	pf := &pendingFetch{stateOp: op, stateBuf: buf, tier: tier}
	if !e.cfg.SkipGradFlush {
		// Gradients live where backward flushed them (gradLoc), which can
		// differ from the state's tier once a migration has run.
		gtier := e.gradLoc[sgID]
		if gtier < 0 {
			gtier = tier
		}
		gbuf := e.gradPool.Get()
		gop, err := e.aios[gtier].SubmitReadClass(aio.GradRead, e.gradKey(sgID), gbuf[:4*sg.Len()])
		if err != nil {
			e.gradPool.Put(gbuf)
			e.releaseFetch(pf) // waits the state op; buffer must be idle
			return err
		}
		pf.gradOp = gop
		pf.gradBuf = gbuf
		pf.gradTier = gtier
	}
	item.pf = pf
	return nil
}

// updateWorker consumes items and runs the fetch-wait + Adam update stage.
func (e *Engine) updateWorker(run *phaseRun, workCh chan *updateItem) {
	for item := range workCh {
		if item.err == nil {
			if err := e.processItem(run, item); err != nil {
				item.err = err
				run.fail(err)
			}
		}
		close(item.done)
	}
}

// dropState releases a subgroup's in-memory state: an adopted backing
// buffer returns to the fetch pool (nothing references its bytes once
// State drops), an owned state is left to the garbage collector.
func (e *Engine) dropState(sg *subgroup.Subgroup) {
	sg.State = nil
	if sg.Backing != nil {
		e.fetchPool.Put(sg.Backing)
		sg.Backing = nil
	}
}

// adoptState hands a fetched serialized state object (in the fetch-pool
// buffer buf, object length size) to the subgroup: zero-copy aliasing
// via MapState where the platform allows — buf is then retained as
// sg.Backing until the state is flushed or dropped — and the copying
// Unmarshal fallback otherwise. adoptState consumes buf on every path
// (kept, or returned to the fetch pool on fallback and on error), and
// releases any stale adopted state a previously failed phase left
// behind, so callers never touch the buffer again.
func (e *Engine) adoptState(sg *subgroup.Subgroup, buf []byte, size int) error {
	e.dropState(sg)
	aliased, err := sg.MapState(buf[:size])
	if err != nil {
		e.fetchPool.Put(buf)
		return err
	}
	if aliased {
		sg.Backing = buf
		return nil
	}
	err = sg.Unmarshal(buf[:size])
	e.fetchPool.Put(buf)
	if err != nil {
		sg.State = nil
		return err
	}
	return nil
}

// adoptGrads hands a fetched FP32 gradient object to the subgroup: on
// viewable buffers Grads32 aliases the bytes in place and the pooled
// buffer is returned for the caller to release *after* the update
// kernel; otherwise the gradients are bulk-decoded into an owned
// Grads32, the buffer recycles immediately, and nil is returned.
func (e *Engine) adoptGrads(sg *subgroup.Subgroup, gbuf []byte) []byte {
	n := sg.Len()
	if v, ok := f32view.View(gbuf[:4*n]); ok {
		sg.Grads32 = v[0:n:n]
		return gbuf
	}
	sg.EnsureGrads32()
	f32view.Decode(sg.Grads32, gbuf[:4*n])
	e.gradPool.Put(gbuf)
	return nil
}

// releaseFetch abandons an item's fetch: it returns the staging buffers to
// their pools, waiting for the ops first (a pooled buffer must never have
// a transfer in flight), and frees the fetch slot. Waiting an op that
// already completed — or was already waited — returns immediately.
func (e *Engine) releaseFetch(pf *pendingFetch) {
	//mlpvet:allow aioop the fetch is being abandoned; waiting only quiesces the buffer before pooling
	_ = pf.stateOp.Wait()
	e.fetchPool.Put(pf.stateBuf)
	if pf.gradOp != nil {
		//mlpvet:allow aioop the fetch is being abandoned; waiting only quiesces the buffer before pooling
		_ = pf.gradOp.Wait()
		e.gradPool.Put(pf.gradBuf)
	}
	<-e.fetchSem
}

// processItem performs one subgroup's fetch-completion, state adoption,
// clip, Adam step and FP16 re-encode. All engine state it mutates is
// private to the subgroup (pinning keeps eviction away); shared
// structures (estimator, rate limiters, pools) are concurrency-safe.
//
// Zero-copy steady state: a fetched state object is not deserialized —
// MapState validates its header and points optim.State's Params/M/V
// directly at the fetched bytes, the Adam kernel runs in place, and the
// very same buffer is later flushed back by the committer's eviction
// path (flushEvicted), eliminating Marshal/Unmarshal and both staging
// copies from the hot path. The buffer's ownership follows the state:
// it is recorded in sg.Backing and returns to the fetch pool only after
// the flush lands. FP32 gradient objects get the same treatment: the
// fetched buffer is viewed in place as sg.Grads32 for the duration of
// the kernel. Platforms where viewing is impossible (big-endian,
// misaligned buffer) fall back to the copying path with bulk
// conversion kernels — bit-identical either way.
func (e *Engine) processItem(run *phaseRun, item *updateItem) error {
	sg := e.shard.Subgroups[item.sgID]
	it := &item.m
	var gradBacking []byte // pooled buffer Grads32 aliases, if any
	if pf := item.pf; pf != nil {
		// This worker is now blocked on the fetch: it stops being
		// speculative. Promote it past flush/checkpoint/migration traffic
		// (a no-op if it already started executing).
		e.aios[pf.tier].Promote(pf.stateOp, aio.DemandFetch)
		size := subgroup.StateBytes(sg.Len())
		stateOp, err := e.awaitRead(pf.tier, pf.stateOp, e.key(item.sgID), pf.stateBuf[:size])
		pf.stateOp = stateOp // releaseFetch must wait the live op
		if err != nil {
			e.releaseFetch(pf)
			return fmt.Errorf("engine: fetch subgroup %d: %w", item.sgID, err)
		}
		if err := run.ctx.Err(); err != nil {
			// Phase cancelled while the fetch was in flight: release the
			// buffers untouched and drain.
			e.releaseFetch(pf)
			return err
		}
		// Adopt the fetched object in place; the copying fallback keeps
		// unaligned/big-endian hosts correct with one bulk conversion.
		// adoptState consumes the state buffer, so this and every later
		// error path release only the grad fetch and the prefetch slot.
		if err := e.adoptState(sg, pf.stateBuf, size); err != nil {
			if pf.gradOp != nil {
				//mlpvet:allow aioop adoption failed and the grad fetch is abandoned; waiting only quiesces the buffer before pooling
				_ = pf.gradOp.Wait()
				e.gradPool.Put(pf.gradBuf)
			}
			<-e.fetchSem
			return err
		}
		secs := pf.stateOp.TransferTime().Seconds()
		wire := float64(pf.stateOp.WireBytes())
		queue := pf.stateOp.QueueTime().Seconds()
		if co := pf.co; co != nil && pf.stateOp == co.op {
			// Member of a coalesced vectored read (and still riding the
			// batch op — a corrupt-retry in awaitRead would have replaced
			// it with a private single read). The op's wire bytes and
			// times cover the whole batch; attribute this member its
			// proportional share so per-item metrics still sum to the
			// true totals, and let exactly one member show the estimator the
			// full transfer — the device made one pass.
			frac := float64(size) / float64(co.total)
			wire *= frac
			secs *= frac
			queue *= frac
			co.obs.Do(func() {
				e.est.ObserveRead(e.names[pf.tier], float64(pf.stateOp.WireBytes()),
					pf.stateOp.TransferTime().Seconds())
			})
		} else {
			// The estimator tracks *device* bandwidth, so it observes wire
			// bytes: under compression the raw count would inflate the
			// tier's apparent speed by the (data-dependent) ratio and
			// destabilize the bandwidth-proportional split.
			e.est.ObserveRead(e.names[pf.tier], wire, secs)
		}
		it.BytesRead += float64(size)
		it.WireBytesRead += wire
		it.ReadTime += secs
		it.RecordClassIO(pf.stateOp.Class().String(), float64(size), wire, queue, secs)
		if pf.gradOp != nil {
			gradOp, err := e.awaitRead(pf.gradTier, pf.gradOp, e.gradKey(item.sgID), pf.gradBuf[:4*sg.Len()])
			pf.gradOp = gradOp
			if err != nil {
				// The item fails: release the just-adopted state too, so
				// its backing buffer returns to the fetch pool promptly
				// (the adoption prelude would also reclaim it, but only
				// at the next refetch).
				e.gradPool.Put(pf.gradBuf)
				e.dropState(sg)
				<-e.fetchSem
				return fmt.Errorf("engine: grad fetch subgroup %d: %w", item.sgID, err)
			}
			gradBacking = e.adoptGrads(sg, pf.gradBuf)
			gsecs := pf.gradOp.TransferTime().Seconds()
			gwire := float64(pf.gradOp.WireBytes())
			it.BytesRead += float64(4 * sg.Len())
			it.WireBytesRead += gwire
			it.ReadTime += gsecs
			it.RecordClassIO(pf.gradOp.Class().String(), float64(4*sg.Len()), gwire,
				pf.gradOp.QueueTime().Seconds(), gsecs)
			e.est.ObserveRead(e.names[pf.gradTier], gwire, gsecs)
		}
		<-e.fetchSem // fetch fully consumed: free the prefetch slot
		it.CacheMisses++
	} else {
		if err := run.ctx.Err(); err != nil {
			return err
		}
		it.CacheHits++
		if !e.cfg.SkipGradFlush && sg.Grads32 == nil {
			// Rare: baseline hit still needs grads from storage — from
			// wherever backward flushed them this iteration.
			gtier := e.gradLoc[item.sgID]
			if gtier < 0 {
				e.cacheMu.Lock()
				gtier = e.plan.TierFor(item.sgID)
				e.cacheMu.Unlock()
			}
			gbuf := e.gradPool.Get()
			gop, err := e.aios[gtier].SubmitReadClass(aio.GradRead, e.gradKey(item.sgID), gbuf[:4*sg.Len()])
			if err == nil {
				_, err = e.awaitRead(gtier, gop, e.gradKey(item.sgID), gbuf[:4*sg.Len()])
			}
			if err != nil {
				e.gradPool.Put(gbuf)
				return err
			}
			gradBacking = e.adoptGrads(sg, gbuf)
		}
	}

	// Update kernel: delayed in-place conversion vs pre-upscaled. With an
	// adopted state the kernel writes straight into the serialized bytes.
	var sw metrics.Stopwatch
	sw.StartOn(e.clk)
	applyClip(sg, run.clip, e.cfg.SkipGradFlush)
	if e.kern != nil {
		// Intra-subgroup parallelism: the update's element range is mined
		// in fixed-size chunks by the shared kernel pool, so one subgroup's
		// Adam step uses every kernel worker. Chunk boundaries are
		// identical at any worker count (and on the serial path), so the
		// parameters are bit-identical regardless of KernelWorkers.
		if e.cfg.SkipGradFlush {
			optim.StepFP16On(e.kern, sg.State, sg.Grads16, e.cfg.Hyper, e.step)
		} else {
			optim.StepFP32On(e.kern, sg.State, sg.Grads32, e.cfg.Hyper, e.step)
			sg.Grads32 = nil // discarded after the update, as in ZeRO-3
		}
	} else if e.cfg.SkipGradFlush {
		optim.StepFP16Parallel(sg.State, sg.Grads16, e.cfg.Hyper, e.step, e.cfg.CPUWorkers)
	} else {
		optim.StepFP32Parallel(sg.State, sg.Grads32, e.cfg.Hyper, e.step, e.cfg.CPUWorkers)
		sg.Grads32 = nil // discarded after the update, as in ZeRO-3
	}
	if gradBacking != nil {
		// The kernel is done with the viewed gradient bytes; the buffer
		// may recycle now (Grads32 no longer references it).
		sg.Grads32 = nil
		e.gradPool.Put(gradBacking)
	}
	it.UpdateComputeTime += sw.Lap()

	// H2D: the refreshed FP16 parameters return to the device.
	off := e.sgOffset[item.sgID]
	fp16.EncodeOn(e.kern, e.params16[off:off+int64(sg.Len())], sg.State.Params)
	e.d2hTransfer(int64(sg.Len()) * 2)
	return nil
}

// commitItems is the committer stage: strictly in order, it merges each
// item's metrics, makes the subgroup's residency official, and lazily
// flushes LRU victims. Successful items are committed even after a phase
// failure so the engine's residency bookkeeping matches the updates that
// actually happened.
func (e *Engine) commitItems(run *phaseRun, it *metrics.Iteration, window chan struct{}, orderCh chan *updateItem) {
	for item := range orderCh {
		<-item.done
		if item.err != nil {
			e.cacheMu.Lock()
			e.lru.Unpin(item.sgID)
			e.cacheMu.Unlock()
			run.fail(item.err)
			<-window
			continue
		}
		it.Merge(item.m)

		// Cache decision: most-recently-updated subgroups stay resident;
		// displaced victims are lazily flushed to their (re)assigned tiers.
		// loc, pins, eviction and ticket publication change atomically so
		// the issuer always sees a consistent residency picture.
		e.cacheMu.Lock()
		if !item.hit {
			e.loc[item.sgID] = locHost
			// The fetched-from tier still holds the pre-update object;
			// remember it so the eventual eviction can reclaim it if it
			// lands on a different tier.
			e.staleTier[item.sgID] = item.pf.tier
		}
		e.lru.Unpin(item.sgID)
		victims := e.lru.TouchEvict(item.sgID)
		tickets := make([]*flushTicket, len(victims))
		stales := make([]int, len(victims))
		for i, v := range victims {
			tickets[i] = &flushTicket{done: make(chan struct{})}
			e.mu.Lock()
			e.flushTickets[v] = tickets[i]
			e.mu.Unlock()
			e.loc[v] = e.plan.TierFor(v)
			stales[i] = e.staleTier[v]
			e.staleTier[v] = -1
		}
		e.cacheMu.Unlock()
		for i, v := range victims {
			if err := e.flushEvicted(v, tickets[i], stales[i]); err != nil {
				run.fail(err)
			}
		}
		<-window
	}
}

// flushEvicted asynchronously flushes an evicted subgroup to the tier
// already recorded in loc, fulfilling its ticket so a same-phase refetch
// orders after the write. A state adopted over its fetched buffer
// (sg.Backing) is *already* serialized — the in-place update kept the
// buffer the live serialized form — so the very same buffer is submitted
// with no marshal pass and no staging copy; it returns to the fetch pool
// when the write lands. The copying fallback marshals into a flush-pool
// buffer as before. Either way the subgroup's state is freed immediately.
// stale, when >= 0 and different from the destination, is a tier still
// holding the subgroup's pre-update object; it is reclaimed so the object
// lives on exactly one tier (a failed delete only orphans bytes, never
// corrupts).
func (e *Engine) flushEvicted(v int, tk *flushTicket, stale int) error {
	sg := e.shard.Subgroups[v]
	tier := e.loc[v]
	if sg.State == nil {
		close(tk.done)
		return fmt.Errorf("engine: flush of non-resident subgroup %d", v)
	}
	var buf []byte
	var n int
	aliased := sg.Backing != nil
	if aliased {
		buf = sg.Backing
		n = subgroup.StateBytes(sg.Len())
	} else {
		buf = e.flushPool.Get() // backpressure: at most 2 concurrent copy-flushes
		var err error
		n, err = sg.Marshal(buf, false)
		if err != nil {
			e.flushPool.Put(buf)
			e.dropState(sg)
			close(tk.done)
			return err
		}
	}
	op, err := e.aios[tier].SubmitWriteClass(aio.Flush, e.key(v), buf[:n])
	if err != nil {
		// The phase fails and the in-memory update is lost either way
		// (the ticket carries no op, so a refetch fails too); drop the
		// state so an adopted backing buffer returns to the fetch pool
		// promptly instead of waiting for a later re-adoption.
		if !aliased {
			e.flushPool.Put(buf)
		}
		e.dropState(sg)
		close(tk.done)
		return err
	}
	sg.State = nil
	sg.Backing = nil
	tk.op = op
	close(tk.done)
	if stale >= 0 && stale != tier {
		// Tracked on pendingDeletes (not pendingFlush): the next phase
		// start waits it — so no later write of this key can race a slow
		// delete — but a failed delete must not fail the phase. The
		// delete ticket orders a concurrent migration's destination write
		// behind it.
		if dop, derr := e.aios[stale].SubmitDelete(aio.Flush, e.key(v)); derr == nil {
			e.recordDelete(v, dop)
		}
	}
	name := e.names[tier]
	nb := float64(n)
	putBuf := func() {
		if aliased {
			e.fetchPool.Put(buf)
		} else {
			e.flushPool.Put(buf)
		}
	}
	e.flushWG.Add(1)
	go func() {
		defer e.flushWG.Done()
		if op.Wait() != nil {
			putBuf()
			return // error surfaces via pendingFlush/ticket waiters
		}
		secs := op.TransferTime().Seconds()
		// Device bandwidth observes wire bytes (see processItem).
		e.est.ObserveWrite(name, float64(op.WireBytes()), secs)
		e.recordAsyncOp(op, nb)
		e.mu.Lock()
		e.asyncFlushStats.bytes += nb
		e.asyncFlushStats.wire += float64(op.WireBytes())
		e.asyncFlushStats.secs += secs
		e.mu.Unlock()
		putBuf()
	}()
	e.mu.Lock()
	e.pendingFlush = append(e.pendingFlush, op)
	e.mu.Unlock()
	return nil
}
