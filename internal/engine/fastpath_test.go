package engine

import (
	"math"
	"runtime"
	"testing"

	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// fileTiers returns n directory-backed tiers under t.TempDir, closed on
// test cleanup — the coalescing and vectored-read paths exercised over a
// real filesystem rather than the in-memory tier.
func fileTiers(t *testing.T, bws ...float64) []TierSpec {
	t.Helper()
	out := make([]TierSpec, len(bws))
	for i, bw := range bws {
		ft, err := storage.NewFileTier("file"+string(rune('a'+i)), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ft.Close() })
		out[i] = TierSpec{Tier: ft, ReadBW: bw, WriteBW: bw}
	}
	return out
}

// TestCoalescedFetchIdenticalParams: read-ahead coalescing is a transport
// optimization only — batching adjacent fetches into one vectored op must
// not change which bytes arrive or in what commit order they are
// consumed, so parameters are bit-identical at any CoalesceFetches.
func TestCoalescedFetchIdenticalParams(t *testing.T) {
	mk := func(coalesce int, tiers []TierSpec) []float32 {
		cfg := MLPConfig(0, 2500, 100, tiers, tierlock.NewManager(true))
		cfg.AdaptivePlacement = false // same placement for every run
		cfg.HostCacheSlots = 3        // most subgroups miss every phase
		cfg.UpdateWorkers = 2
		cfg.PrefetchDepth = 6
		cfg.KernelWorkers = 1
		cfg.CoalesceFetches = coalesce
		return gatherAfter(t, cfg, 5)
	}
	t.Run("mem", func(t *testing.T) {
		one := mk(1, memTiers(500, 300))
		for _, c := range []int{2, 4, 6} {
			got := mk(c, memTiers(500, 300))
			for i := range one {
				if one[i] != got[i] {
					t.Fatalf("param %d differs at CoalesceFetches=%d: %v vs %v",
						i, c, one[i], got[i])
				}
			}
		}
	})
	t.Run("file", func(t *testing.T) {
		one := mk(1, fileTiers(t, 500, 300))
		got := mk(4, fileTiers(t, 500, 300))
		for i := range one {
			if one[i] != got[i] {
				t.Fatalf("param %d differs with coalesced file reads: %v vs %v",
					i, one[i], got[i])
			}
		}
	})
}

// TestCoalescedFetchAccounting: with coalescing on, every subgroup is
// still processed exactly once per phase, and the per-iteration read
// bytes equal the baseline's — members attribute proportional shares of
// each batched op, so nothing is double-counted or dropped.
func TestCoalescedFetchAccounting(t *testing.T) {
	cfg := MLPConfig(0, 2000, 100, memTiers(500), tierlock.NewManager(true))
	cfg.AdaptivePlacement = false
	cfg.HostCacheSlots = 3
	cfg.UpdateWorkers = 2
	cfg.PrefetchDepth = 4
	cfg.CoalesceFetches = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 4; i++ {
		it, err := e.TrainIteration(i)
		if err != nil {
			t.Fatal(err)
		}
		if got := it.CacheHits + it.CacheMisses; got != e.Subgroups() {
			t.Fatalf("iteration %d processed %d subgroups, want %d", i, got, e.Subgroups())
		}
		if it.CacheMisses > 0 && it.BytesRead <= 0 {
			t.Fatalf("iteration %d: %d misses but no read bytes accounted", i, it.CacheMisses)
		}
	}
}

// TestCoalescedFetchConvergence: the numeric integration test through
// coalesced vectored reads on a real filesystem — convergence proves the
// batched buffers were split to the right subgroups.
func TestCoalescedFetchConvergence(t *testing.T) {
	cfg := MLPConfig(0, 600, 64, fileTiers(t, 1000, 600), tierlock.NewManager(true))
	cfg.Hyper.LR = 0.05
	cfg.Grad = QuadraticGradFn(3)
	cfg.AdaptivePlacement = false
	cfg.HostCacheSlots = 3
	cfg.CoalesceFetches = 4
	cfg.PrefetchDepth = 4
	cfg.UpdateWorkers = 2
	params := gatherAfter(t, cfg, 300)
	for i, p := range params {
		if p < 2.9 || p > 3.1 {
			t.Fatalf("param %d = %v, want ~3 (coalesced fetch corrupts buffers?)", i, p)
		}
	}
}

// TestKernelWorkersIdenticalParams: the shared kernel pool mines fixed
// ChunkElems chunks, so the Adam step and the bulk codecs must produce
// bit-identical parameters at any KernelWorkers — including worker
// counts that don't divide the subgroup, odd subgroup sizes larger than
// several chunks, and the copying baseline path.
func TestKernelWorkersIdenticalParams(t *testing.T) {
	for _, mode := range []string{"mlp", "baseline"} {
		t.Run(mode, func(t *testing.T) {
			mk := func(workers int) []float32 {
				// 70001-param subgroups: > 2 chunks each, odd tail.
				var cfg Config
				if mode == "mlp" {
					cfg = MLPConfig(0, 200003, 70001, memTiers(500, 300), tierlock.NewManager(true))
				} else {
					cfg = BaselineConfig(0, 200003, 70001, memTiers(500))
				}
				cfg.AdaptivePlacement = false
				cfg.UpdateWorkers = 1
				cfg.PrefetchDepth = 2
				cfg.CoalesceFetches = 1
				cfg.KernelWorkers = workers
				return gatherAfter(t, cfg, 3)
			}
			one := mk(1)
			for _, w := range []int{2, 7} {
				got := mk(w)
				for i := range one {
					if one[i] != got[i] {
						t.Fatalf("param %d differs at KernelWorkers=%d: %v vs %v",
							i, w, one[i], got[i])
					}
				}
			}
		})
	}
}

// TestKernelWorkersNonFiniteGrads: loss-scaling skip decisions and the
// treatment of subnormal/Inf/NaN gradients must not depend on the kernel
// worker count — the overflow scan and the update see the same values in
// the same chunks either way.
func TestKernelWorkersNonFiniteGrads(t *testing.T) {
	nastyGrad := func(iter int, i int64, _ float32) float32 {
		switch {
		case iter%4 == 2 && i == 1:
			return float32(math.Inf(1)) // overflows FP16: skip + halve scale
		case iter%4 == 3 && i == 2:
			return float32(math.NaN()) // NaN must also trip the scaler
		case i%3 == 0:
			return 1e-5 // subnormal in FP16
		case i%3 == 1:
			return -6.0e-8 // below FP16 subnormal range: flushes to zero
		default:
			return 1e-3
		}
	}
	mk := func(workers int) ([]float32, int64) {
		cfg := MLPConfig(0, 1100, 100, memTiers(800), tierlock.NewManager(true))
		cfg.AdaptivePlacement = false
		cfg.LossScaling = true
		cfg.Grad = nastyGrad
		cfg.UpdateWorkers = 1
		cfg.PrefetchDepth = 2
		cfg.CoalesceFetches = 1
		cfg.KernelWorkers = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 8; i++ {
			if _, err := e.TrainIteration(i); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
		out := make([]float32, cfg.Params)
		if err := e.GatherParams(out); err != nil {
			t.Fatal(err)
		}
		return out, e.SkippedSteps()
	}
	one, skipped1 := mk(1)
	if skipped1 == 0 {
		t.Fatal("non-finite gradients never tripped loss scaling; test is vacuous")
	}
	for _, w := range []int{2, 7} {
		got, skipped := mk(w)
		if skipped != skipped1 {
			t.Fatalf("skipped steps differ at KernelWorkers=%d: %d vs %d", w, skipped, skipped1)
		}
		for i := range one {
			a, b := one[i], got[i]
			if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
				t.Fatalf("param %d differs at KernelWorkers=%d: %v vs %v", i, w, a, b)
			}
		}
	}
}

// TestAutotuneWidths: the measurement-free derivations of the pipeline
// widths from GOMAXPROCS and the tier count, and the pin/passthrough
// semantics of negative and positive values.
func TestAutotuneWidths(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	base := func() Config {
		c := MLPConfig(0, 1000, 100, memTiers(500, 300), nil)
		return c
	}

	c := base()
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	wantUW := min(max(procs/2, 1), 4)
	if c.UpdateWorkers != wantUW {
		t.Fatalf("UpdateWorkers auto = %d, want %d", c.UpdateWorkers, wantUW)
	}
	wantPD := max(2, wantUW+2)
	if c.PrefetchDepth != wantPD {
		t.Fatalf("PrefetchDepth auto = %d, want %d", c.PrefetchDepth, wantPD)
	}
	if want := min(procs, 16); c.KernelWorkers != want {
		t.Fatalf("KernelWorkers auto = %d, want %d", c.KernelWorkers, want)
	}
	if want := min(4, wantPD); c.CoalesceFetches != want {
		t.Fatalf("CoalesceFetches auto = %d, want %d", c.CoalesceFetches, want)
	}

	// Negative pins the conservative pre-auto-tune defaults.
	c = base()
	c.UpdateWorkers, c.PrefetchDepth, c.KernelWorkers, c.CoalesceFetches = -1, -1, -1, -1
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	if c.UpdateWorkers != 1 || c.PrefetchDepth != 2 || c.KernelWorkers != 1 || c.CoalesceFetches != 1 {
		t.Fatalf("negative pins = (%d,%d,%d,%d), want (1,2,1,1)",
			c.UpdateWorkers, c.PrefetchDepth, c.KernelWorkers, c.CoalesceFetches)
	}

	// Positive passes through, except CoalesceFetches clamps to the
	// prefetch window it must assemble inside.
	c = base()
	c.UpdateWorkers, c.PrefetchDepth, c.KernelWorkers, c.CoalesceFetches = 3, 2, 5, 9
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	if c.UpdateWorkers != 3 || c.KernelWorkers != 5 {
		t.Fatalf("explicit widths rewritten: UW=%d KW=%d", c.UpdateWorkers, c.KernelWorkers)
	}
	if c.CoalesceFetches != 2 {
		t.Fatalf("CoalesceFetches = %d, want clamp to PrefetchDepth=2", c.CoalesceFetches)
	}

	// Baseline mode auto-resolves coalescing off.
	b := BaselineConfig(0, 1000, 100, memTiers(500))
	b.CoalesceFetches = 0
	if err := b.validate(); err != nil {
		t.Fatal(err)
	}
	if b.CoalesceFetches != 1 {
		t.Fatalf("baseline CoalesceFetches auto = %d, want 1", b.CoalesceFetches)
	}
}
