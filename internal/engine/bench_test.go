package engine

import (
	"fmt"
	"testing"

	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tiercodec"
)

// benchTiers builds the throttled asymmetric multi-path configuration the
// pipeline benchmark runs on: a fast "nvme" path and a slower "pfs" path,
// as in the paper's testbeds.
func benchTiers(readBW, writeBW, slowFactor float64) []TierSpec {
	mk := func(name string, r, w float64) TierSpec {
		t := storage.NewThrottled(storage.NewMemTier(name), storage.ThrottleConfig{
			ReadBW:  r,
			WriteBW: w,
		})
		return TierSpec{Tier: t, ReadBW: r, WriteBW: w}
	}
	return []TierSpec{
		mk("nvme", readBW, writeBW),
		mk("pfs", readBW/slowFactor, writeBW/slowFactor),
	}
}

// BenchmarkUpdatePhase measures full training iterations of the MLP-Offload
// pipeline on throttled tiers at different UpdateWorkers settings. The
// interesting comparison is workers=1 vs workers=4: with the Adam kernels a
// significant fraction of the phase, the worker pool overlaps independent
// subgroup updates across cores while tier traffic stays in flight, so on
// a multi-core host workers=4 should deliver >=1.3x iteration throughput.
//
// On a single-core host expect ~1.0x: with GOMAXPROCS=1 the kernels
// serialize anyway, and the issuer's prefetching already overlaps the
// single worker's compute with the (bandwidth-paced, in-order) tier
// traffic, so there is no stall left for extra workers to absorb. That the
// worker pool adds no measurable overhead in that degenerate case is
// itself worth tracking (see also BenchmarkUpdatePhaseUnthrottled).
func BenchmarkUpdatePhase(b *testing.B) {
	const (
		params   = 2_000_000
		subgroup = 100_000
	)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := MLPConfig(0, params, subgroup, benchTiers(1e9, 1e9, 4), nil)
			cfg.AdaptivePlacement = false // identical placement across runs
			cfg.UpdateWorkers = workers
			cfg.PrefetchDepth = 6
			cfg.IOWorkers = 4
			cfg.HostCacheSlots = 3
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(eng.Close)
			b.SetBytes(params * 12) // optimizer-state bytes fetched per iteration
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TrainIteration(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpdatePhaseMigration measures full iterations under migration
// churn: adaptive placement is on and the two tiers swap speeds every
// iteration, so every replan displaces subgroups and the live migrator
// moves them at Migration priority while the next iteration's fetches,
// updates and flushes run. The interesting comparison is against
// BenchmarkUpdatePhase (no churn): the gap bounds the cost of keeping the
// plan an enforced contract.
func BenchmarkUpdatePhaseMigration(b *testing.B) {
	const (
		params   = 2_000_000
		subgroup = 100_000
	)
	mkTier := func(name string, bw float64) *storage.Throttled {
		return storage.NewThrottled(storage.NewMemTier(name), storage.ThrottleConfig{
			ReadBW: bw, WriteBW: bw,
			ReadBurst: 64 * 1024, WriteBurst: 64 * 1024,
		})
	}
	for _, window := range []int{2, 4} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			nvme := mkTier("nvme", 1e9)
			pfs := mkTier("pfs", 5e8)
			tiers := []TierSpec{
				{Tier: nvme, ReadBW: 1e9, WriteBW: 1e9},
				{Tier: pfs, ReadBW: 5e8, WriteBW: 5e8},
			}
			cfg := MLPConfig(0, params, subgroup, tiers, nil)
			cfg.AdaptivePlacement = true
			cfg.MigrationWindow = window
			cfg.PrefetchDepth = 6
			cfg.IOWorkers = 4
			cfg.HostCacheSlots = 3
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(eng.Close)
			b.SetBytes(params * 12)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					nvme.SetRates(25e7, 25e7)
					pfs.SetRates(1e9, 1e9)
				} else {
					nvme.SetRates(1e9, 1e9)
					pfs.SetRates(25e7, 25e7)
				}
				if _, err := eng.TrainIteration(i); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := eng.MigrationStats()
			if st.Err != nil {
				b.Fatal(st.Err)
			}
			b.ReportMetric(float64(st.Moves)/float64(b.N), "migrations/iter")
		})
	}
}

// benchHash spreads a parameter index into 32 pseudo-random bits
// (per-parameter convergence targets for the compressed benchmark).
func benchHash(i int64) uint32 {
	h := uint64(i)*2654435761 + 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint32(h)
}

// BenchmarkUpdatePhaseCompressed quantifies the tier-codec win on
// bandwidth-starved asymmetric tiers: the same training run with the
// codec off and with flate+crc on every tier. The throttle (48/32 MB/s
// nvme, 12 MB/s pfs) keeps the update phase wire-bound — the regime the
// codec targets; every parameter converges to its own benchHash-derived
// target so the optimizer state has the clustered-exponent,
// varied-mantissa distribution real training produces. Expected:
// codec=flate+crc sustains >= 1.3x the iteration throughput of
// codec=off (the compression ratio of the fetched+flushed state, minus
// codec CPU), reported per run alongside the achieved ratio.
func BenchmarkUpdatePhaseCompressed(b *testing.B) {
	const (
		params   = 1_000_000
		subgroup = 100_000
	)
	specs := map[string]tiercodec.Spec{
		"off":       {},
		"flate+crc": {Compression: "flate", Integrity: true},
	}
	for _, name := range []string{"off", "flate+crc"} {
		b.Run("codec="+name, func(b *testing.B) {
			tiers := benchTiers(48e6, 32e6, 4)
			for i := range tiers {
				tiers[i].Codec = specs[name]
			}
			cfg := MLPConfig(0, params, subgroup, tiers, nil)
			cfg.AdaptivePlacement = false
			cfg.UpdateWorkers = 2
			cfg.PrefetchDepth = 4
			cfg.IOWorkers = 4
			cfg.HostCacheSlots = 3
			// Converge every parameter to its own target: the state ends up
			// clustered in exponent but fully varied in mantissa — the
			// realistic distribution, unlike a single shared target (whose
			// near-constant state compresses absurdly well) or the
			// pseudo-random default gradients (near-incompressible noise).
			cfg.Grad = func(_ int, i int64, p float32) float32 {
				return p - (0.5 + float32(benchHash(i))/float32(1<<32))
			}
			cfg.Hyper.LR = 0.02
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(eng.Close)
			b.SetBytes(params * 12)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TrainIteration(i); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if m := eng.Series().Mean(); m.CompressionRatio() > 0 {
				b.ReportMetric(m.CompressionRatio(), "compression-ratio")
			}
		})
	}
}

// BenchmarkUpdatePhaseUnthrottled isolates the pipeline's own overhead on
// unthrottled in-memory tiers (no I/O wait to overlap, so this bounds the
// coordination cost the worker pool adds).
func BenchmarkUpdatePhaseUnthrottled(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tiers := []TierSpec{
				{Tier: storage.NewMemTier("nvme"), ReadBW: 2e9, WriteBW: 2e9},
				{Tier: storage.NewMemTier("pfs"), ReadBW: 1e9, WriteBW: 1e9},
			}
			cfg := MLPConfig(0, 1_000_000, 100_000, tiers, nil)
			cfg.AdaptivePlacement = false
			cfg.UpdateWorkers = workers
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(eng.Close)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TrainIteration(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
