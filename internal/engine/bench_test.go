package engine

import (
	"fmt"
	"testing"

	"github.com/datastates/mlpoffload/internal/storage"
)

// benchTiers builds the throttled asymmetric multi-path configuration the
// pipeline benchmark runs on: a fast "nvme" path and a slower "pfs" path,
// as in the paper's testbeds.
func benchTiers(readBW, writeBW, slowFactor float64) []TierSpec {
	mk := func(name string, r, w float64) TierSpec {
		t := storage.NewThrottled(storage.NewMemTier(name), storage.ThrottleConfig{
			ReadBW:  r,
			WriteBW: w,
		})
		return TierSpec{Tier: t, ReadBW: r, WriteBW: w}
	}
	return []TierSpec{
		mk("nvme", readBW, writeBW),
		mk("pfs", readBW/slowFactor, writeBW/slowFactor),
	}
}

// BenchmarkUpdatePhase measures full training iterations of the MLP-Offload
// pipeline on throttled tiers at different UpdateWorkers settings. The
// interesting comparison is workers=1 vs workers=4: with the Adam kernels a
// significant fraction of the phase, the worker pool overlaps independent
// subgroup updates across cores while tier traffic stays in flight, so on
// a multi-core host workers=4 should deliver >=1.3x iteration throughput.
//
// On a single-core host expect ~1.0x: with GOMAXPROCS=1 the kernels
// serialize anyway, and the issuer's prefetching already overlaps the
// single worker's compute with the (bandwidth-paced, in-order) tier
// traffic, so there is no stall left for extra workers to absorb. That the
// worker pool adds no measurable overhead in that degenerate case is
// itself worth tracking (see also BenchmarkUpdatePhaseUnthrottled).
func BenchmarkUpdatePhase(b *testing.B) {
	const (
		params   = 2_000_000
		subgroup = 100_000
	)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := MLPConfig(0, params, subgroup, benchTiers(1e9, 1e9, 4), nil)
			cfg.AdaptivePlacement = false // identical placement across runs
			cfg.UpdateWorkers = workers
			cfg.PrefetchDepth = 6
			cfg.IOWorkers = 4
			cfg.HostCacheSlots = 3
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(eng.Close)
			b.SetBytes(params * 12) // optimizer-state bytes fetched per iteration
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TrainIteration(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpdatePhaseMigration measures full iterations under migration
// churn: adaptive placement is on and the two tiers swap speeds every
// iteration, so every replan displaces subgroups and the live migrator
// moves them at Migration priority while the next iteration's fetches,
// updates and flushes run. The interesting comparison is against
// BenchmarkUpdatePhase (no churn): the gap bounds the cost of keeping the
// plan an enforced contract.
func BenchmarkUpdatePhaseMigration(b *testing.B) {
	const (
		params   = 2_000_000
		subgroup = 100_000
	)
	mkTier := func(name string, bw float64) *storage.Throttled {
		return storage.NewThrottled(storage.NewMemTier(name), storage.ThrottleConfig{
			ReadBW: bw, WriteBW: bw,
			ReadBurst: 64 * 1024, WriteBurst: 64 * 1024,
		})
	}
	for _, window := range []int{2, 4} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			nvme := mkTier("nvme", 1e9)
			pfs := mkTier("pfs", 5e8)
			tiers := []TierSpec{
				{Tier: nvme, ReadBW: 1e9, WriteBW: 1e9},
				{Tier: pfs, ReadBW: 5e8, WriteBW: 5e8},
			}
			cfg := MLPConfig(0, params, subgroup, tiers, nil)
			cfg.AdaptivePlacement = true
			cfg.MigrationWindow = window
			cfg.PrefetchDepth = 6
			cfg.IOWorkers = 4
			cfg.HostCacheSlots = 3
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(eng.Close)
			b.SetBytes(params * 12)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					nvme.SetRates(25e7, 25e7)
					pfs.SetRates(1e9, 1e9)
				} else {
					nvme.SetRates(1e9, 1e9)
					pfs.SetRates(25e7, 25e7)
				}
				if _, err := eng.TrainIteration(i); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := eng.MigrationStats()
			if st.Err != nil {
				b.Fatal(st.Err)
			}
			b.ReportMetric(float64(st.Moves)/float64(b.N), "migrations/iter")
		})
	}
}

// BenchmarkUpdatePhaseUnthrottled isolates the pipeline's own overhead on
// unthrottled in-memory tiers (no I/O wait to overlap, so this bounds the
// coordination cost the worker pool adds).
func BenchmarkUpdatePhaseUnthrottled(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tiers := []TierSpec{
				{Tier: storage.NewMemTier("nvme"), ReadBW: 2e9, WriteBW: 2e9},
				{Tier: storage.NewMemTier("pfs"), ReadBW: 1e9, WriteBW: 1e9},
			}
			cfg := MLPConfig(0, 1_000_000, 100_000, tiers, nil)
			cfg.AdaptivePlacement = false
			cfg.UpdateWorkers = workers
			eng, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(eng.Close)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.TrainIteration(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
