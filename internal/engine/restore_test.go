package engine

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/storage"
)

// gather returns the engine's full FP32 master parameter vector.
func gather(t *testing.T, e *Engine) []float32 {
	t.Helper()
	out := make([]float32, e.cfg.Params)
	if err := e.GatherParams(out); err != nil {
		t.Fatal(err)
	}
	return out
}

// trainRange runs iterations [from, to).
func trainRange(t *testing.T, e *Engine, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// restoreLatest restores e from the newest checkpoint under the reader.
func restoreLatest(t *testing.T, e *Engine, r *checkpoint.Reader) checkpoint.Manifest {
	t.Helper()
	ctx := context.Background()
	step, err := r.LatestStep(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.ReadManifest(ctx, step)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(ctx, r, m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestResumeBitIdentical is the round-trip correctness test: train k
// iterations, checkpoint, rebuild a fresh engine (fresh volatile tiers,
// shared persistent ones), restore, continue to n — parameters must be
// bit-identical to an uninterrupted n-iteration run. Gradients depend on
// the parameters, so any restore defect compounds immediately.
func TestResumeBitIdentical(t *testing.T) {
	const (
		params = 600
		sub    = 100
		k      = 3
		n      = 6
	)
	// mkCfg builds one run's config; persistent is the shared PFS-like
	// tier that survives the simulated crash (nil for the baseline case).
	cases := []struct {
		name  string
		mkCfg func(persistent storage.Tier) Config
	}{
		{"baseline", func(_ storage.Tier) Config {
			return BaselineConfig(0, params, sub, memTiers(1000))
		}},
		{"mlp", func(p storage.Tier) Config {
			tiers := []TierSpec{
				{Tier: storage.NewMemTier("nvme"), ReadBW: 690, WriteBW: 530},
				{Tier: p, ReadBW: 360, WriteBW: 360, Persistent: true},
			}
			cfg := MLPConfig(0, params, sub, tiers, nil)
			cfg.AdaptivePlacement = false
			return cfg
		}},
		{"adaptive", func(p storage.Tier) Config {
			// The slow tier lies about its bandwidth, so adaptive
			// replanning shifts subgroups away from it during training:
			// the restored engine starts from the nominal plan and must
			// rebuild state under a placement that differs from the one
			// the checkpoint was taken under.
			slow := storage.NewThrottled(p, storage.ThrottleConfig{
				ReadBW: 200 * 1024, WriteBW: 200 * 1024,
			})
			tiers := []TierSpec{
				{Tier: storage.NewMemTier("fast"), ReadBW: 1000, WriteBW: 1000},
				{Tier: slow, ReadBW: 1000, WriteBW: 1000, Persistent: true},
			}
			cfg := MLPConfig(0, params, sub, tiers, nil)
			cfg.AdaptivePlacement = true
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(p storage.Tier) Config {
				cfg := tc.mkCfg(p)
				cfg.Grad = QuadraticGradFn(3)
				cfg.Hyper.LR = 0.02
				return cfg
			}

			// Uninterrupted reference run on its own tiers.
			ref, err := New(mk(storage.NewMemTier("pfs")))
			if err != nil {
				t.Fatal(err)
			}
			trainRange(t, ref, 0, n)
			want := gather(t, ref)
			ref.Close()

			// Interrupted run: train k, checkpoint, crash.
			pfs := storage.NewMemTier("pfs") // survives the crash
			e1, err := New(mk(pfs))
			if err != nil {
				t.Fatal(err)
			}
			trainRange(t, e1, 0, k)
			ckptTier := storage.NewMemTier("ckpt")
			w := checkpoint.NewWriter(ckptTier, "run")
			m, err := e1.Checkpoint(context.Background(), k, w)
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
			e1.Close() // crash: volatile tiers are rebuilt from scratch below

			// Restart: fresh engine, restore, continue.
			e2, err := New(mk(pfs))
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			got := restoreLatest(t, e2, checkpoint.NewReader(ckptTier, "run"))
			if got.Step != m.Step || got.AdamStep != k {
				t.Fatalf("restored manifest step %d/adam %d, want %d/%d", got.Step, got.AdamStep, m.Step, k)
			}
			// Host-cache residency was rebuilt from the manifest.
			hostOrigin := 0
			for _, ent := range got.Entries {
				if ent.Origin == "host" {
					hostOrigin++
				}
			}
			resident := 0
			for _, l := range e2.loc {
				if l == locHost {
					resident++
				}
			}
			if hostOrigin > 0 && resident == 0 {
				t.Errorf("no subgroup host-resident after restore (%d were at checkpoint time)", hostOrigin)
			}
			trainRange(t, e2, k, n)
			after := gather(t, e2)
			for i := range want {
				if after[i] != want[i] {
					t.Fatalf("%s: param %d differs after resume: %v vs uninterrupted %v",
						tc.name, i, after[i], want[i])
				}
			}
		})
	}
}

// TestCheckpointSnapshotSurvivesTraining is the staleness test: a
// checkpoint taken at step s must remain fully readable — manifest and
// every referenced object — after further update phases overwrite the
// live tier objects it was derived from.
func TestCheckpointSnapshotSurvivesTraining(t *testing.T) {
	ctx := context.Background()
	nvme := storage.NewMemTier("nvme")
	pfs := storage.NewMemTier("pfs")
	tiers := []TierSpec{
		{Tier: nvme, ReadBW: 2e9, WriteBW: 2e9},
		{Tier: pfs, ReadBW: 1e9, WriteBW: 1e9, Persistent: true},
	}
	mkCfg := func() Config {
		cfg := MLPConfig(0, 1000, 100, tiers, nil)
		cfg.AdaptivePlacement = false
		cfg.Grad = QuadraticGradFn(2)
		cfg.Hyper.LR = 0.05
		return cfg
	}
	e, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	trainRange(t, e, 0, 2)
	truth := gather(t, e) // parameters at the checkpoint boundary

	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "run")
	defer w.Close()
	m, err := e.Checkpoint(ctx, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Savings() <= 0 {
		t.Fatal("no pre-staged subgroups — test needs a persistent tier share")
	}

	// Further training overwrites every live tier object...
	trainRange(t, e, 2, 5)

	// ...but the step-2 checkpoint must still verify and restore.
	resolve := func(name string) storage.Tier {
		switch name {
		case "nvme":
			return nvme
		case "pfs":
			return pfs
		}
		return nil
	}
	r := checkpoint.NewReader(ckptTier, "run")
	if err := r.Verify(ctx, m, resolve); err != nil {
		t.Fatalf("step-2 checkpoint corrupted by later training: %v", err)
	}
	// Restoring into a fresh engine (sharing the persistent tier) yields
	// the step-2 parameters, not the later ones. The fresh engine's tiers
	// must include the persistent one that holds the snapshots; its
	// volatile nvme starts empty.
	tiers2 := []TierSpec{
		{Tier: storage.NewMemTier("nvme"), ReadBW: 2e9, WriteBW: 2e9},
		{Tier: pfs, ReadBW: 1e9, WriteBW: 1e9, Persistent: true},
	}
	cfg2 := mkCfg()
	cfg2.Tiers = tiers2
	e2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	m2, err := r.ReadManifest(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(ctx, r, m2); err != nil {
		t.Fatal(err)
	}
	restored := gather(t, e2)
	for i := range truth {
		if restored[i] != truth[i] {
			t.Fatalf("param %d = %v after restore, want step-2 value %v", i, restored[i], truth[i])
		}
	}
}

// TestRestoreScalerAndCounters: loss-scaling state (scale, skip counters)
// and the Adam step count survive the round trip even when they diverge
// from the iteration count via a skipped step.
func TestRestoreScalerAndCounters(t *testing.T) {
	mkCfg := func() Config {
		cfg := BaselineConfig(0, 200, 50, memTiers(1000))
		cfg.SkipGradFlush = true
		cfg.LossScaling = true
		cfg.Grad = func(iter int, _ int64, _ float32) float32 {
			if iter == 1 {
				return float32(math.Inf(1)) // overflow: skip + halve scale
			}
			return 0.5
		}
		return cfg
	}
	ref, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, ref, 0, 5)
	want := gather(t, ref)
	ref.Close()

	e1, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, e1, 0, 3) // includes the skipped step
	wantScale := e1.Scaler().Scale()
	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "run")
	m, err := e1.Checkpoint(context.Background(), 3, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	e1.Close()
	if m.AdamStep != 2 || m.SkippedSteps != 1 {
		t.Fatalf("manifest adamStep=%d skipped=%d, want 2/1", m.AdamStep, m.SkippedSteps)
	}

	e2, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	restoreLatest(t, e2, checkpoint.NewReader(ckptTier, "run"))
	if e2.Scaler().Scale() != wantScale {
		t.Errorf("restored scale = %g, want %g", e2.Scaler().Scale(), wantScale)
	}
	if e2.SkippedSteps() != 1 {
		t.Errorf("restored skipped steps = %d, want 1", e2.SkippedSteps())
	}
	trainRange(t, e2, 3, 5)
	after := gather(t, e2)
	for i := range want {
		if after[i] != want[i] {
			t.Fatalf("param %d differs after resume: %v vs %v", i, after[i], want[i])
		}
	}
}

// TestCheckpointFailsOnFailedEvictionFlush: a lazy eviction flush that
// fails asynchronously must fail the next checkpoint (and land no
// manifest) instead of being silently swallowed by the drain — the live
// key still holds the previous object, so committing would capture stale
// state.
func TestCheckpointFailsOnFailedEvictionFlush(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("flush died")
	ft := &storage.FaultTier{
		Tier: storage.NewMemTier("t"),
		// Writes: 10 synchronous initial offloads, then 7 async eviction
		// flushes during iteration 0's update phase; the 17th write — one
		// of the eviction flushes — fails.
		FailEvery:  17,
		Err:        boom,
		FailWrites: true,
	}
	cfg := BaselineConfig(0, 1000, 100, []TierSpec{{Tier: ft, ReadBW: 100, WriteBW: 100}})
	cfg.SkipGradFlush = true // keep the write stream to offloads + eviction flushes
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// The flush failure is asynchronous: the iteration itself succeeds.
	if _, err := e.TrainIteration(0); err != nil {
		t.Fatalf("iteration: %v", err)
	}
	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "run")
	defer w.Close()
	if _, err := e.Checkpoint(ctx, 1, w); !errors.Is(err, boom) {
		t.Fatalf("checkpoint err = %v, want the swallowed flush error", err)
	}
	r := checkpoint.NewReader(ckptTier, "run")
	if _, err := r.LatestStep(ctx); err == nil {
		t.Error("a manifest landed despite the failed flush")
	}
}

// TestRestoreRejectsMismatchedManifest: geometry and training numerics
// must match the engine.
func TestRestoreRejectsMismatchedManifest(t *testing.T) {
	ctx := context.Background()
	e1, err := New(BaselineConfig(0, 200, 50, memTiers(1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	run(t, e1, 1)
	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "run")
	defer w.Close()
	m, err := e1.Checkpoint(ctx, 1, w)
	if err != nil {
		t.Fatal(err)
	}
	r := checkpoint.NewReader(ckptTier, "run")

	other, err := New(BaselineConfig(0, 400, 50, memTiers(1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Restore(ctx, r, m); err == nil {
		t.Error("restore accepted a manifest with mismatched geometry")
	}

	wrongRank, err := New(BaselineConfig(1, 200, 50, memTiers(1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer wrongRank.Close()
	if err := wrongRank.Restore(ctx, r, m); err == nil {
		t.Error("restore accepted another rank's manifest")
	}

	// Same geometry, different mode (numerics): silent divergence, reject.
	modeCfg := BaselineConfig(0, 200, 50, memTiers(1000))
	modeCfg.SkipGradFlush = true
	wrongMode, err := New(modeCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer wrongMode.Close()
	if err := wrongMode.Restore(ctx, r, m); err == nil {
		t.Error("restore accepted a manifest taken under different numerics")
	}
}
