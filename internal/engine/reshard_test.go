package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/subgroup"
	"github.com/datastates/mlpoffload/internal/tiercodec"
	"github.com/datastates/mlpoffload/internal/wire"
)

// TestNewRestoredAdoptsDeadRankShard: the elastic re-shard path — a
// fresh engine built with the dead rank's config, restored from that
// rank's manifest on the surviving node's tiers, reproduces the dead
// rank's parameters exactly and keeps training bit-identically.
func TestNewRestoredAdoptsDeadRankShard(t *testing.T) {
	ctx := context.Background()
	mkCfg := func() Config {
		tiers := []TierSpec{{Tier: storage.NewMemTier("nvme"), ReadBW: 500, WriteBW: 500}}
		cfg := MLPConfig(7, 400, 100, tiers, nil)
		cfg.AdaptivePlacement = false
		cfg.Grad = QuadraticGradFn(3)
		return cfg
	}

	// The "dead" rank trains, checkpoints, keeps training, and we record
	// its final parameters as the reference.
	dead, err := New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, dead, 0, 3)
	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "run-rank007")
	m, err := dead.Checkpoint(ctx, 3, w)
	w.Close()
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, dead, 3, 6)
	want := gather(t, dead)
	dead.Close()

	// A survivor adopts the shard: NewRestored with the dead rank's
	// geometry, its own (fresh) tier handles, restored from the manifest.
	r := checkpoint.NewReader(ckptTier, "run-rank007")
	adopted, err := NewRestored(ctx, mkCfg(), r, m)
	if err != nil {
		t.Fatal(err)
	}
	defer adopted.Close()
	trainRange(t, adopted, 3, 6)
	got := gather(t, adopted)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("param %d differs after re-shard adoption: %v vs %v", i, got[i], want[i])
		}
	}

	// Geometry mismatch must fail construction and leak nothing.
	bad := mkCfg()
	bad.Rank = 3
	if _, err := NewRestored(ctx, bad, r, m); err == nil {
		t.Fatal("NewRestored accepted a manifest for a different rank")
	}
}

// TestCorruptRetryBackoffExactVirtual: corrupt re-reads are paced by the
// shared wire.Backoff policy on the engine clock — on a virtual clock
// the elapsed time of an exhausted retry budget is exact.
func TestCorruptRetryBackoffExactVirtual(t *testing.T) {
	clk := clock.NewVirtualAuto()
	fault := tiercodec.NewFaultTier(storage.NewMemTier("nvme"), tiercodec.FaultConfig{
		CorruptReadEvery: 1, // every read corrupt: the budget always exhausts
	})
	tiers := []TierSpec{{Tier: fault, ReadBW: 500, WriteBW: 500, Codec: codecSpec}}
	cfg := MLPConfig(0, 400, 100, tiers, nil)
	cfg.AdaptivePlacement = false
	cfg.Clock = clk
	cfg.CorruptRetries = 3
	cfg.RetryBackoff = wire.Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Pick an offloaded subgroup (host-resident ones never touch the
	// faulty tier).
	sgID := -1
	for i := range e.shard.Subgroups {
		if e.loc[i] != locHost {
			sgID = i
			break
		}
	}
	if sgID < 0 {
		t.Fatal("no offloaded subgroup to read")
	}
	size := subgroup.StateBytes(e.shard.Subgroups[sgID].Len())
	buf := make([]byte, size)
	start := clk.Now()
	err = e.readSyncRetry(e.loc[sgID], e.key(sgID), buf)
	if !errors.Is(err, tiercodec.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt after exhausted retries", err)
	}
	// Three paced re-reads: 10 + 20 + 40 ms, exact on the virtual clock.
	if got, want := clk.Since(start), 70*time.Millisecond; got != want {
		t.Fatalf("retry pacing = %v, want exactly %v", got, want)
	}
	if got := e.IntegrityRetries(); got != 3 {
		t.Fatalf("IntegrityRetries = %d, want 3", got)
	}
}
