package engine

import (
	"context"
	"testing"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/storage"
)

// throttledPair builds a fast "nvme" and a slow "pfs" throttled tier and
// returns the specs plus the handles for mid-run bandwidth shifts. Bursts
// are kept below one subgroup object so observed bandwidth tracks the
// configured rate (a burst-dominated transfer completes at memory speed
// and would feed the estimator garbage).
func throttledPair(nvmeBW, pfsBW float64) ([]TierSpec, *storage.Throttled, *storage.Throttled) {
	const burst = 1024
	nvme := storage.NewThrottled(storage.NewMemTier("nvme"), storage.ThrottleConfig{
		ReadBW: nvmeBW, WriteBW: nvmeBW, ReadBurst: burst, WriteBurst: burst,
	})
	pfs := storage.NewThrottled(storage.NewMemTier("pfs"), storage.ThrottleConfig{
		ReadBW: pfsBW, WriteBW: pfsBW, ReadBurst: burst, WriteBurst: burst,
	})
	specs := []TierSpec{
		{Tier: nvme, ReadBW: nvmeBW, WriteBW: nvmeBW},
		{Tier: pfs, ReadBW: pfsBW, WriteBW: pfsBW, Persistent: true},
	}
	return specs, nvme, pfs
}

// placementConsistent verifies the physical invariant behind loc[]: every
// offloaded subgroup's state object exists on exactly the tier loc
// records and on no other — eviction and migration both delete the stale
// source copy. Host-resident subgroups are skipped: their tier copy goes
// stale at the update and is reclaimed only when they are evicted.
func placementConsistent(t *testing.T, e *Engine) {
	t.Helper()
	ctx := context.Background()
	onTier := make([]map[string]bool, len(e.cfg.Tiers))
	for i, ts := range e.cfg.Tiers {
		keys, err := ts.Tier.Keys(ctx)
		if err != nil {
			t.Fatal(err)
		}
		onTier[i] = make(map[string]bool, len(keys))
		for _, k := range keys {
			onTier[i][k] = true
		}
	}
	e.cacheMu.Lock()
	loc := append([]int(nil), e.loc...)
	e.cacheMu.Unlock()
	for sg, l := range loc {
		if l == locHost {
			continue
		}
		key := e.key(sg)
		for ti := range onTier {
			if has := onTier[ti][key]; has != (ti == l) {
				t.Errorf("subgroup %d: loc says %s, object on %s = %v", sg, e.names[l], e.names[ti], has)
			}
		}
	}
}

// TestMigrationConvergesAfterBandwidthShift is the acceptance test: with
// AdaptivePlacement on and a mid-run tier slowdown, every subgroup's
// backing object must reach its planned tier within a bounded number of
// iterations — through live migration, not by waiting for eviction
// traffic to happen to touch it — and the parameters must stay
// bit-identical to a run that never migrated anything.
func TestMigrationConvergesAfterBandwidthShift(t *testing.T) {
	const (
		params = 2400
		sub    = 200
		warm   = 3
		bound  = 10 // convergence bound (iterations after the shift)
	)
	mkCfg := func(tiers []TierSpec) Config {
		cfg := MLPConfig(0, params, sub, tiers, nil)
		cfg.Grad = QuadraticGradFn(2)
		cfg.Hyper.LR = 0.05
		return cfg
	}

	// Reference: same numerics on unthrottled tiers, no adaptive
	// placement, no migration. Placement must never affect values.
	refCfg := mkCfg(memTiers(1000, 600))
	refCfg.AdaptivePlacement = false
	refCfg.MigrationWindow = -1
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	tiers, _, pfs := throttledPair(2e6, 1e6)
	e, err := New(mkCfg(tiers))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	trainRange(t, ref, 0, warm)
	trainRange(t, e, 0, warm)

	// The PFS collapses to 1/20th of its nominal bandwidth: the plan must
	// shift toward NVMe and the migrator must move the cold subgroups.
	pfs.SetRates(5e4, 5e4)

	// Converged means: at a post-shift iteration boundary, with migrations
	// quiesced, zero subgroups sit on a tier the plan does not assign. The
	// plan itself keeps replanning while the EWMA digests the shift, so
	// the assertion is on the state at the end of the bounded window.
	for iter := warm; iter < warm+bound; iter++ {
		trainRange(t, ref, iter, iter+1)
		trainRange(t, e, iter, iter+1)
	}
	e.Drain() // quiesce migrations before inspecting placement
	if n := e.MisplacedSubgroups(); n != 0 {
		t.Fatalf("placement did not converge within %d iterations after the shift (misplaced=%d)", bound, n)
	}
	st := e.MigrationStats()
	if st.Moves == 0 {
		t.Error("no live migrations ran; convergence came from eviction traffic only")
	}
	if st.Err != nil {
		t.Errorf("migration error: %v", st.Err)
	}
	placementConsistent(t, e)

	// The plan actually moved away from the collapsed tier.
	plan := e.Plan()
	if plan.Counts[1] >= plan.Counts[0] {
		t.Errorf("plan did not shift toward nvme: %s", plan.Ratio())
	}

	// Bit-identical parameters despite replanning and migration churn.
	want := gather(t, ref)
	got := gather(t, e)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("param %d diverged: %v != %v", i, got[i], want[i])
		}
	}
}

// TestMigrationDisabledKeepsLegacyBehaviour pins the MigrationWindow<0
// escape hatch: plan drift is then only repaired by eviction traffic and
// the migrator never runs.
func TestMigrationDisabledKeepsLegacyBehaviour(t *testing.T) {
	tiers, _, pfs := throttledPair(2e6, 1e6)
	cfg := MLPConfig(0, 1200, 100, tiers, nil)
	cfg.Grad = QuadraticGradFn(2)
	cfg.MigrationWindow = -1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	trainRange(t, e, 0, 3)
	pfs.SetRates(1e5, 1e5)
	trainRange(t, e, 3, 8)
	e.Drain()
	if st := e.MigrationStats(); st.Moves != 0 || st.Abandoned != 0 {
		t.Errorf("migrator ran while disabled: %+v", st)
	}
}

// TestCheckpointRestoreMidMigration takes a checkpoint immediately after
// a bandwidth shift queued a burst of migrations — the drain inside
// Checkpoint completes them, the manifest records the resulting
// placement, and a fresh engine restored from it must continue training
// bit-identically to an uninterrupted run.
func TestCheckpointRestoreMidMigration(t *testing.T) {
	const (
		params = 1000
		sub    = 100
		k      = 4 // checkpoint step
		n      = 8
	)
	mk := func(tiers []TierSpec) Config {
		cfg := MLPConfig(0, params, sub, tiers, nil)
		cfg.Grad = QuadraticGradFn(3)
		cfg.Hyper.LR = 0.02
		return cfg
	}

	// Uninterrupted reference with identical numerics and tier shape
	// (including the same bandwidth shift, so adaptive replanning sees the
	// same world — values must not depend on it, but keep it faithful).
	refTiers, _, refPFS := throttledPair(2e6, 1e6)
	ref, err := New(mk(refTiers))
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, ref, 0, k-1)
	refPFS.SetRates(2e5, 2e5)
	trainRange(t, ref, k-1, n)
	want := gather(t, ref)
	ref.Close()

	// Interrupted run: shift bandwidth right before iteration k so the
	// replan at the end of iteration k queues migrations, then checkpoint
	// while that queue is still draining.
	tiers, _, pfs := throttledPair(2e6, 1e6)
	ckptTier := storage.NewMemTier("ckpt") // survives the crash
	e1, err := New(mk(tiers))
	if err != nil {
		t.Fatal(err)
	}
	trainRange(t, e1, 0, k-1)
	pfs.SetRates(2e5, 2e5)
	trainRange(t, e1, k-1, k)
	w := checkpoint.NewWriter(ckptTier, "rank000")
	defer w.Close()
	m, err := e1.Checkpoint(context.Background(), k, w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Step != k {
		t.Fatalf("manifest step %d", m.Step)
	}
	// The persistent tier's pre-staged snapshots plus checkpoint objects
	// must all verify against the manifest.
	r := checkpoint.NewReader(ckptTier, "rank000")
	resolve := func(name string) storage.Tier {
		for _, ts := range tiers {
			if ts.Tier.Name() == name {
				return ts.Tier
			}
		}
		return nil
	}
	if err := r.Verify(context.Background(), m, resolve); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Crash: rebuild on the same (persistent) tiers and restore. The
	// restored engine replans and re-migrates on its own.
	e2, err := New(mk(tiers))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	restoreLatest(t, e2, r)
	trainRange(t, e2, k, n)

	got := gather(t, e2)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("param %d diverged after mid-migration resume: %v != %v", i, got[i], want[i])
		}
	}
	placementConsistent(t, e2)
}

// TestMigrationChurnRaces drives the migrator against concurrent fetches,
// eviction flushes and checkpoints while the plan flip-flops every
// iteration (run under -race in CI). Values must match a churn-free
// reference bit for bit.
func TestMigrationChurnRaces(t *testing.T) {
	const (
		params = 1500
		sub    = 100
		iters  = 10
	)
	mk := func(tiers []TierSpec) Config {
		cfg := MLPConfig(0, params, sub, tiers, nil)
		cfg.Grad = QuadraticGradFn(1)
		cfg.Hyper.LR = 0.03
		cfg.UpdateWorkers = 2
		cfg.PrefetchDepth = 3
		return cfg
	}

	refCfg := mk(memTiers(1000, 600))
	refCfg.AdaptivePlacement = false
	refCfg.MigrationWindow = -1
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	trainRange(t, ref, 0, iters)
	want := gather(t, ref)

	tiers, nvme, pfs := throttledPair(2e6, 1.5e6)
	e, err := New(mk(tiers))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "rank000")
	defer w.Close()
	for i := 0; i < iters; i++ {
		// Flip which tier looks fast so every replan displaces subgroups
		// and migrations overlap the next iteration's fetch/flush traffic.
		if i%2 == 0 {
			nvme.SetRates(2e5, 2e5)
			pfs.SetRates(2e6, 2e6)
		} else {
			nvme.SetRates(2e6, 2e6)
			pfs.SetRates(2e5, 2e5)
		}
		trainRange(t, e, i, i+1)
		if i == iters/2 {
			// Checkpoint concurrent with the migration backlog.
			if _, err := e.Checkpoint(context.Background(), i+1, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := e.MigrationStats(); st.Err != nil {
		t.Errorf("migration error under churn: %v", st.Err)
	}
	got := gather(t, e)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("param %d diverged under churn: %v != %v", i, got[i], want[i])
		}
	}
	e.Drain()
	placementConsistent(t, e)
}
