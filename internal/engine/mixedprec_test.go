package engine

import (
	"context"
	"math"
	"testing"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/storage"
)

func TestLossScalingSkipsOverflowStep(t *testing.T) {
	cfg := BaselineConfig(0, 200, 50, memTiers(1000))
	cfg.SkipGradFlush = true
	cfg.LossScaling = true
	// Iteration 1 produces overflowing gradients; others are fine.
	cfg.Grad = func(iter int, _ int64, _ float32) float32 {
		if iter == 1 {
			return float32(math.Inf(1))
		}
		return 0.5
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	startScale := e.Scaler().Scale()
	run(t, e, 3)
	if e.SkippedSteps() != 1 {
		t.Errorf("skipped steps = %d, want 1", e.SkippedSteps())
	}
	if e.Scaler().Scale() != startScale/2 {
		t.Errorf("scale = %g, want halved %g", e.Scaler().Scale(), startScale/2)
	}
	// Parameters must have moved only for the two clean iterations.
	params := make([]float32, 200)
	if err := e.GatherParams(params); err != nil {
		t.Fatal(err)
	}
	if params[0] == 0 {
		t.Error("clean steps did not apply")
	}
}

func TestLossScalingDisabledByDefault(t *testing.T) {
	cfg := BaselineConfig(0, 100, 50, memTiers(1000))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Scaler() != nil {
		t.Error("scaler should be nil when disabled")
	}
	run(t, e, 1)
	if e.SkippedSteps() != 0 {
		t.Error("no steps should be skipped")
	}
}

func TestGlobalGradClipping(t *testing.T) {
	// Gradients of constant 1.0 over 400 params have global norm 20.
	// With ClipNorm 2 the applied gradients scale by 0.1, so the first
	// Adam step (mhat/sqrt(vhat) invariant to scale!) — use sign check
	// via norm instead: verify GradNorm reports pre-clip value and params
	// move as with scaled grads.
	mk := func(clip float64) (*Engine, []float32) {
		cfg := BaselineConfig(0, 400, 100, memTiers(1000))
		cfg.SkipGradFlush = true
		cfg.ClipNorm = clip
		cfg.Grad = func(_ int, i int64, _ float32) float32 {
			if i == 0 {
				return 10 // one large component dominates the norm
			}
			return 0.001
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run(t, e, 1)
		out := make([]float32, 400)
		if err := e.GatherParams(out); err != nil {
			t.Fatal(err)
		}
		return e, out
	}
	eClip, clipped := mk(0.1)
	defer eClip.Close()
	eFree, free := mk(0)
	defer eFree.Close()
	if eClip.GradNorm() < 9.9 {
		t.Errorf("pre-clip global norm = %v, want ~10", eClip.GradNorm())
	}
	// Small components: clipping shrinks their effective gradient by
	// ~100x; with Adam's normalization the small-component step shrinks
	// dramatically relative to the unclipped run.
	if math.Abs(float64(clipped[1])) >= math.Abs(float64(free[1])) {
		t.Errorf("clipping did not damp small components: %v vs %v", clipped[1], free[1])
	}
}

func TestCheckpointPreStaging(t *testing.T) {
	// MLP engine with NVMe (volatile) + PFS (persistent): subgroups on the
	// PFS must be pre-staged; host + NVMe subgroups get flushed.
	tiers := []TierSpec{
		{Tier: storage.NewMemTier("nvme"), ReadBW: 2e9, WriteBW: 2e9},
		{Tier: storage.NewMemTier("pfs"), ReadBW: 1e9, WriteBW: 1e9, Persistent: true},
	}
	cfg := MLPConfig(0, 1000, 100, tiers, nil)
	cfg.AdaptivePlacement = false
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	run(t, e, 2)

	locs := e.CheckpointLocations()
	if len(locs) != 10 {
		t.Fatalf("locations = %d", len(locs))
	}
	plan := checkpoint.BuildPlan(locs)
	if len(plan.PreStaged) == 0 {
		t.Fatal("no subgroups pre-staged despite a persistent tier")
	}
	if len(plan.ToFlush) == 0 {
		t.Fatal("nothing to flush — host/NVMe subgroups missing")
	}
	if s := plan.Savings(); s <= 0 || s >= 1 {
		t.Errorf("savings = %v, want in (0,1)", s)
	}

	ckptTier := storage.NewMemTier("ckpt")
	w := checkpoint.NewWriter(ckptTier, "run1")
	defer w.Close()
	m, err := e.Checkpoint(context.Background(), 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if m.Savings() != plan.Savings() {
		t.Errorf("savings mismatch: %v vs %v", m.Savings(), plan.Savings())
	}
	// The checkpoint tier holds the flushed objects plus the manifest.
	keys, _ := ckptTier.Keys(context.Background())
	if len(keys) != len(plan.ToFlush)+1 {
		t.Errorf("checkpoint tier holds %d objects, want %d + manifest", len(keys), len(plan.ToFlush))
	}
	// Pre-staged subgroups were snapshotted under step-tagged keys on
	// their own tier, and every referenced object checks out.
	r := checkpoint.NewReader(ckptTier, "run1")
	if err := r.Verify(context.Background(), m, func(name string) storage.Tier {
		for _, ts := range tiers {
			if ts.Tier.Name() == name {
				return ts.Tier
			}
		}
		return nil
	}); err != nil {
		t.Errorf("manifest verify: %v", err)
	}
}

func TestFetchSubgroupBytesMatchesState(t *testing.T) {
	cfg := BaselineConfig(0, 200, 50, memTiers(1000))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	run(t, e, 2)
	// Both host-resident and offloaded subgroups are fetchable and carry
	// the current parameters.
	want := make([]float32, 200)
	if err := e.GatherParams(want); err != nil {
		t.Fatal(err)
	}
	for sgID := 0; sgID < 4; sgID++ {
		buf, err := e.FetchSubgroupBytes(context.Background(), sgID)
		if err != nil {
			t.Fatalf("subgroup %d: %v", sgID, err)
		}
		if len(buf) == 0 {
			t.Fatalf("subgroup %d empty", sgID)
		}
	}
	if _, err := e.FetchSubgroupBytes(context.Background(), 99); err == nil {
		t.Error("out-of-range subgroup accepted")
	}
}
