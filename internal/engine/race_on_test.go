//go:build race

package engine

// raceEnabled reports whether the race detector is active; allocation
// ceilings are skipped under -race (instrumentation allocates).
const raceEnabled = true
