package engine

import (
	"context"
	"fmt"

	"github.com/datastates/mlpoffload/internal/checkpoint"
)

// NewRestored constructs an engine directly in a checkpointed state: New
// followed by Restore, closing the engine on any failure. This is the
// elastic re-shard entry point — when a rank dies, the survivor that
// adopts its shard builds a second engine with cfg.Rank set to the dead
// rank and restores it from that rank's manifest on the shared
// checkpoint tier. The construction-time initial offload is immediately
// overwritten by Restore, and the adopted shard's subgroups then land on
// the adopter's tiers under the *current* placement plan; the background
// live-migration machinery converges them to the planned tiers as
// training resumes.
//
// cfg must describe the dead rank's geometry and numerics exactly
// (Restore enforces both); the tier *handles* are the adopter's own.
func NewRestored(ctx context.Context, cfg Config, r *checkpoint.Reader, m checkpoint.Manifest) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: re-shard rank %d: %w", cfg.Rank, err)
	}
	if err := e.Restore(ctx, r, m); err != nil {
		e.Close()
		return nil, fmt.Errorf("engine: re-shard rank %d restore step %d: %w", cfg.Rank, m.Step, err)
	}
	return e, nil
}
