package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// memTiers returns n in-memory tiers with distinct names and bandwidths.
func memTiers(bws ...float64) []TierSpec {
	out := make([]TierSpec, len(bws))
	for i, bw := range bws {
		out[i] = TierSpec{
			Tier:    storage.NewMemTier(fmt.Sprintf("tier%d", i)),
			ReadBW:  bw,
			WriteBW: bw,
		}
	}
	return out
}

func run(t *testing.T, e *Engine, iters int) {
	t.Helper()
	for i := 0; i < iters; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	bad := []Config{
		{},
		{Params: 10},                    // no subgroup size
		{Params: 10, SubgroupParams: 5}, // no tiers
		{Params: -1, SubgroupParams: 5, Tiers: memTiers(1)}, // bad params
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	// Tier with zero bandwidth rejected.
	cfg := BaselineConfig(0, 100, 10, []TierSpec{{Tier: storage.NewMemTier("x")}})
	if _, err := New(cfg); err == nil {
		t.Error("zero-bandwidth tier accepted")
	}
}

func TestBaselineTrainsAndOffloads(t *testing.T) {
	cfg := BaselineConfig(0, 1000, 100, memTiers(100))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Subgroups() != 10 {
		t.Fatalf("subgroups = %d", e.Subgroups())
	}
	run(t, e, 3)
	m := e.Series().Mean()
	if m.ParamsUpdated != 1000 {
		t.Errorf("params updated = %d", m.ParamsUpdated)
	}
	if m.BytesRead == 0 || m.BytesWritten == 0 {
		t.Error("no storage I/O recorded — offloading not exercised")
	}
	// Baseline reads 16 B/param (12 state + 4 grads) for every miss.
	st := cfg.Tiers[0].Tier.Stats()
	if st.BytesRead == 0 {
		t.Error("tier saw no reads")
	}
}

func TestConvergenceThroughOffloadPath(t *testing.T) {
	// End-to-end numeric check: quadratic objective drives every param to
	// the target *through* serialization, offload, fetch, FP16 h2d.
	for _, mode := range []string{"baseline", "mlp"} {
		t.Run(mode, func(t *testing.T) {
			var cfg Config
			if mode == "baseline" {
				cfg = BaselineConfig(0, 500, 64, memTiers(1000))
			} else {
				cfg = MLPConfig(0, 500, 64, memTiers(1000, 600), tierlock.NewManager(true))
			}
			cfg.Hyper.LR = 0.05
			cfg.Grad = QuadraticGradFn(3)
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			run(t, e, 300)
			params := make([]float32, 500)
			if err := e.GatherParams(params); err != nil {
				t.Fatal(err)
			}
			for i, p := range params {
				if math.Abs(float64(p)-3) > 0.1 {
					t.Fatalf("param %d = %v, want ~3 (offload path corrupts state?)", i, p)
				}
			}
		})
	}
}

func TestModesNumericallyEquivalent(t *testing.T) {
	// The paper's optimizations are performance-only: identical gradients
	// must yield identical master parameters in both modes.
	mk := func(mlp bool) []float32 {
		var cfg Config
		if mlp {
			cfg = MLPConfig(0, 300, 37, memTiers(500, 300), tierlock.NewManager(true))
		} else {
			cfg = BaselineConfig(0, 300, 37, memTiers(500))
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 5; i++ {
			if _, err := e.TrainIteration(i); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float32, 300)
		if err := e.GatherParams(out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := mk(false)
	ours := mk(true)
	for i := range base {
		if base[i] != ours[i] {
			t.Fatalf("param %d differs: baseline %v vs mlp %v", i, base[i], ours[i])
		}
	}
}

func TestCacheHitsAlternatingVsSequential(t *testing.T) {
	mkRun := func(order hostcache.Order) (hits, misses int) {
		cfg := BaselineConfig(0, 1000, 100, memTiers(1000))
		cfg.Order = order
		cfg.SkipGradFlush = true // isolate ordering effect
		cfg.HostCacheSlots = 4
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 4; i++ {
			it, err := e.TrainIteration(i)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 { // skip cold first iteration
				hits += it.CacheHits
				misses += it.CacheMisses
			}
		}
		return
	}
	seqHits, _ := mkRun(hostcache.Sequential)
	altHits, altMisses := mkRun(hostcache.Alternating)
	if seqHits != 0 {
		t.Errorf("sequential hits = %d, want 0 (thrashing)", seqHits)
	}
	// 3 measured iterations, 4 slots each.
	if altHits != 12 {
		t.Errorf("alternating hits = %d, want 12", altHits)
	}
	if altMisses != 3*(10-4) {
		t.Errorf("alternating misses = %d, want 18", altMisses)
	}
}

func TestMultiPathPlacementDistribution(t *testing.T) {
	locks := tierlock.NewManager(true)
	cfg := MLPConfig(0, 3000, 100, memTiers(530, 360), locks)
	cfg.AdaptivePlacement = false
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	run(t, e, 2)
	it := e.Series().Iterations()[1]
	// Both storage paths plus host must hold state.
	if it.TierBytes["tier0"] == 0 || it.TierBytes["tier1"] == 0 {
		t.Errorf("tier distribution = %v; both paths should be used", it.TierBytes)
	}
	if it.TierBytes["host"] == 0 {
		t.Errorf("host cache empty: %v", it.TierBytes)
	}
	// Roughly bandwidth-proportional: tier0/tier1 ≈ 530/360 ≈ 1.47.
	ratio := it.TierBytes["tier0"] / it.TierBytes["tier1"]
	if ratio < 1.0 || ratio > 2.2 {
		t.Errorf("placement ratio = %.2f, want ~1.5", ratio)
	}
}

func TestGradientAccumulation(t *testing.T) {
	cfg := BaselineConfig(0, 200, 50, memTiers(1000))
	cfg.GradAccumSteps = 4
	cfg.Grad = func(_ int, _ int64, _ float32) float32 { return 0.25 }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	run(t, e, 1)
	// 4 accumulation steps of 0.25 = total gradient 1.0 per element; the
	// first Adam step with g=1 moves params by ~ -lr (mhat/vhat ≈ 1).
	params := make([]float32, 200)
	if err := e.GatherParams(params); err != nil {
		t.Fatal(err)
	}
	wantMove := cfg.Hyper.LR
	for i, p := range params {
		if math.Abs(float64(p)+wantMove) > wantMove*0.2 {
			t.Fatalf("param %d = %v, want ~%v (accumulated grad wrong)", i, p, -wantMove)
		}
	}
}

func TestUnevenLastSubgroup(t *testing.T) {
	cfg := BaselineConfig(0, 250, 100, memTiers(1000)) // 100+100+50
	cfg.Grad = QuadraticGradFn(1)
	cfg.Hyper.LR = 0.05
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	run(t, e, 50)
	params := make([]float32, 250)
	if err := e.GatherParams(params); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 250; i++ {
		if math.Abs(float64(params[i])-1) > 0.2 {
			t.Fatalf("tail subgroup param %d = %v not trained", i, params[i])
		}
	}
}

func TestFourWorkersSharedNode(t *testing.T) {
	// Four engines (one per "GPU") share two tiers and the node lock
	// manager, as on one Testbed node.
	nvme := storage.NewMemTier("nvme")
	pfs := storage.NewMemTier("pfs")
	locks := tierlock.NewManager(true)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tiers := []TierSpec{
				{Tier: nvme, ReadBW: 690, WriteBW: 530},
				{Tier: pfs, ReadBW: 360, WriteBW: 360},
			}
			cfg := MLPConfig(rank, 400, 80, tiers, locks)
			e, err := New(cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			defer e.Close()
			for i := 0; i < 3; i++ {
				if _, err := e.TrainIteration(i); err != nil {
					errs[rank] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Exclusive access must have been exercised.
	if locks.Stats("nvme").Grants == 0 || locks.Stats("pfs").Grants == 0 {
		t.Error("tier locks never taken")
	}
	// Keys from all ranks coexist without collision.
	keys, _ := nvme.Keys(context.Background())
	if len(keys) == 0 {
		t.Error("nvme holds no objects")
	}
}

func TestFaultInjectionSurfacesErrors(t *testing.T) {
	boom := errors.New("disk on fire")
	tier := &storage.FaultTier{
		Tier:      storage.NewMemTier("flaky"),
		FailEvery: 3,
		Err:       boom,
		FailReads: true,
	}
	cfg := BaselineConfig(0, 400, 50, []TierSpec{{Tier: tier, ReadBW: 100, WriteBW: 100}})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var sawErr bool
	for i := 0; i < 4; i++ {
		if _, err := e.TrainIteration(i); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected read faults never surfaced")
	}
}

func TestAdaptivePlacementReactsToSlowTier(t *testing.T) {
	// tier1 claims high nominal bandwidth but is actually 50x slower;
	// adaptive placement should shift subgroups to tier0 over iterations.
	fast := storage.NewMemTier("fast")
	slowInner := storage.NewMemTier("slow")
	slow := storage.NewThrottled(slowInner, storage.ThrottleConfig{
		ReadBW: 200 * 1024, WriteBW: 200 * 1024,
	})
	tiers := []TierSpec{
		{Tier: fast, ReadBW: 1000, WriteBW: 1000},
		{Tier: slow, ReadBW: 1000, WriteBW: 1000}, // lying nominal figures
	}
	cfg := MLPConfig(0, 2000, 100, tiers, nil)
	cfg.HostCacheSlots = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Plan().Counts[1]
	run(t, e, 3)
	after := e.Plan().Counts[1]
	if after >= before {
		t.Errorf("slow tier share did not shrink: %d -> %d", before, after)
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	cfg := BaselineConfig(0, 100, 50, memTiers(100))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if _, err := e.TrainIteration(0); err == nil {
		t.Error("closed engine accepted work")
	}
}

func TestGatherParamsValidatesLength(t *testing.T) {
	cfg := BaselineConfig(0, 100, 50, memTiers(100))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.GatherParams(make([]float32, 99)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEffectiveIOMetricPopulated(t *testing.T) {
	// Throttled tier gives measurable transfer durations, so EffectiveIO
	// must be finite and positive.
	inner := storage.NewMemTier("nvme")
	th := storage.NewThrottled(inner, storage.ThrottleConfig{
		ReadBW: 4 << 20, WriteBW: 2 << 20,
	})
	cfg := BaselineConfig(0, 30000, 3000, []TierSpec{{Tier: th, ReadBW: 4 << 20, WriteBW: 2 << 20}})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	run(t, e, 2)
	it := e.Series().Iterations()[1]
	if eio := it.EffectiveIO(); eio <= 0 || math.IsInf(eio, 0) {
		t.Errorf("EffectiveIO = %v", eio)
	}
	if it.Phases.Update <= 0 {
		t.Error("update phase not timed")
	}
}
