package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/f32view"
	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/kernpool"
	"github.com/datastates/mlpoffload/internal/metrics"
	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/placement"
	"github.com/datastates/mlpoffload/internal/ratelimit"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/subgroup"
	"github.com/datastates/mlpoffload/internal/tiercodec"
)

// locHost marks a subgroup whose FP32 state is resident in host memory.
const locHost = -1

// Engine is one worker's offloading runtime.
type Engine struct {
	cfg   Config
	clk   clock.Clock
	shard *subgroup.Shard
	aios  []*aio.Engine
	names []string

	est  *placement.Estimator
	plan placement.Plan

	lru *hostcache.LRU
	// loc is the *actual* backing location of each subgroup (locHost or a
	// tier index) — reality, where plan is intent. The live migrator's job
	// is to converge loc onto plan. Guarded by cacheMu wherever it can
	// race the migrator; plain reads are safe only in code that runs with
	// migrations quiesced (after drain) or for pinned subgroups.
	loc []int
	// gradLoc is the tier each subgroup's FP32 gradient object was written
	// to during the latest backward pass (-1 = none yet). Gradients are
	// per-iteration transients, so they are never migrated; fetches read
	// them from where backward put them even if the state object moved.
	gradLoc []int
	// staleTier is the tier still holding a host-resident subgroup's
	// now-stale state object from before its fetch (-1 = none). When the
	// subgroup is later evicted to a *different* tier, the stale source is
	// deleted — the same delete discipline the migrator follows, so an
	// offloaded subgroup's object lives on exactly one tier. Guarded by
	// cacheMu.
	staleTier []int

	fetchPool *hostcache.BufferPool
	flushPool *hostcache.BufferPool
	gradPool  *hostcache.BufferPool
	// fetchSem enforces the config contract that PrefetchDepth bounds
	// in-flight fetches: the buffer pools are sized generously to avoid
	// pipeline deadlocks, so they cannot double as the fetch bound.
	fetchSem chan struct{}

	d2h *ratelimit.Limiter

	// kern is the engine-wide kernel worker pool (KernelWorkers > 1):
	// the Adam update and the FP16/BF16 bulk codecs fan their fixed-size
	// chunks across it instead of spawning goroutines per call. nil runs
	// every kernel serially on the calling goroutine.
	kern *kernpool.Pool

	// params16 is the FP16 working copy of the model (the GPU-resident
	// parameters driving forward/backward).
	params16 []fp16.Bits
	// sgOffset[i] is the global parameter offset of subgroup i.
	sgOffset []int64

	grad32   []float32 // backward scratch
	fullGrad []float32 // whole-shard gradient buffer (BatchGrad mode)

	step  int // optimizer step (1-based at first update)
	phase int // update phases completed

	pendingFlush []*aio.Op
	pendingGrads []*aio.Op
	flushWG      sync.WaitGroup
	mu           sync.Mutex // guards pendingFlush/flushTickets/async-stats bookkeeping
	// asyncFlushStats accumulates *write* metrics (bytes, transfer time)
	// from asynchronous eviction flushes as they complete, plus the
	// per-priority-class breakdown of every asynchronous op (flushes and
	// migrations). An op still in flight when updatePhase folds the
	// accumulator is attributed to the next iteration's fold —
	// per-iteration totals are approximate at the boundary, while the
	// series total stays exact.
	asyncFlushStats struct {
		bytes float64 // raw bytes flushed
		wire  float64 // device-level bytes (encoded under a codec tier)
		secs  float64
		class map[string]metrics.ClassIO
	}

	// cacheMu serializes the compound residency transitions of the update
	// pipeline: {read loc, pin} in the issuer, {set loc, unpin, touch,
	// pick victims, publish flush tickets} in the committer, and
	// {check pin, mark migrating, flip loc} in the migrator. loc, lru,
	// plan and migrating must change together or the issuer could classify
	// a subgroup as a cache hit while the committer is evicting it (or
	// fetch from a tier the migrator is abandoning).
	cacheMu sync.Mutex
	// flushTickets orders a refetch (or a migration read) after an
	// in-flight eviction flush of the same subgroup (read-after-write on
	// the tier). Entries persist until the next update phase has waited
	// the flushes durable.
	flushTickets map[int]*flushTicket
	// pendingDeletes are best-effort reclamation deletes of stale state
	// and gradient objects. They are waited — errors ignored, a failed
	// delete only orphans bytes — at the next update-phase start, before
	// any write could target the same key on the same tier again (a slow
	// delete landing after a fresh write would destroy a live object).
	// deleteTickets lets the migrator, which runs between those barriers,
	// order its destination write after a subgroup's in-flight delete.
	// Both guarded by mu.
	pendingDeletes []*aio.Op
	deleteTickets  map[int]*aio.Op
	// migrating marks subgroups whose backing object is mid-copy between
	// tiers; the issuer waits for the ticket before classifying them.
	// Guarded by cacheMu.
	migrating map[int]*migrationTicket
	// Migration queue state (see migrate.go). migMu guards the queue and
	// in-flight count; migCond signals enqueue/completion/close.
	migMu       sync.Mutex
	migCond     *sync.Cond
	migQueued   map[int]bool
	migOrder    []int
	migInflight int
	migClosed   bool
	migWG       sync.WaitGroup
	migPool     *hostcache.BufferPool
	migStats    migStatsCell

	series metrics.Series
	closed bool

	// corruptRetries counts update-phase fetches re-read after a
	// tiercodec.ErrCorrupt (transient corruption absorbed by retry).
	corruptRetries atomic.Int64

	// Mixed-precision safety state.
	scaler       *optim.LossScaler
	skippedSteps int64
	partialNorms []float64
}

// New constructs and initializes an engine: the shard is created, the
// initial placement computed, and every subgroup's optimizer state flushed
// to its assigned tier (the paper's initialization step).
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Private copy of the tier slice: codec wrapping below must never
	// mutate the caller's TierSpec backing array.
	cfg.Tiers = append([]TierSpec(nil), cfg.Tiers...)
	for i, t := range cfg.Tiers {
		if !t.Codec.Enabled() {
			continue
		}
		ct, err := tiercodec.New(t.Tier, t.Codec)
		if err != nil {
			return nil, fmt.Errorf("engine: tier %d (%s) codec: %w", i, t.Tier.Name(), err)
		}
		// The wrapped handle replaces the raw one for every engine path —
		// aio submissions, checkpoint snapshot copies, restore — so the
		// tier's objects are uniformly encoded.
		cfg.Tiers[i].Tier = ct
	}
	e := &Engine{cfg: cfg, clk: clock.Or(cfg.Clock)}
	if cfg.KernelWorkers > 1 {
		e.kern = kernpool.New(cfg.KernelWorkers)
	}
	e.shard = subgroup.NewShard(cfg.Rank, cfg.Params, cfg.SubgroupParams, cfg.InitParams)
	m := len(e.shard.Subgroups)

	maxLen := e.shard.MaxSubgroupLen()
	stateBuf := subgroup.StateBytes(maxLen)
	// inflight bounds fetches issued ahead of the update workers; the grad
	// pool holds UpdateWorkers extra buffers so a worker's synchronous
	// gradient read can never deadlock against queued prefetches.
	inflight := cfg.PrefetchDepth + cfg.UpdateWorkers
	// The fetch pool also backs the zero-copy states of host-resident
	// subgroups (a fetched buffer is adopted in place and returned only
	// when its eviction flush lands), so its quota covers the in-flight
	// window plus the largest possible resident set. Lazy: a buffer is
	// materialized only when training actually cycles it, so a cache
	// sized "whole shard fits" does not preallocate the shard. The quota
	// replaces — not adds to — the per-fetch State allocations of the
	// copying path: resident state used to be heap-allocated anyway.
	resident := cfg.HostCacheSlots
	if m < resident {
		resident = m
	}
	e.fetchPool = hostcache.NewBufferPoolLazy(inflight+resident+2, stateBuf)
	e.flushPool = hostcache.NewBufferPool(2, stateBuf)
	e.gradPool = hostcache.NewBufferPool(inflight+cfg.UpdateWorkers+1, 4*maxLen)
	e.fetchSem = make(chan struct{}, cfg.PrefetchDepth)
	e.flushTickets = make(map[int]*flushTicket)
	e.deleteTickets = make(map[int]*aio.Op)

	e.names = make([]string, len(cfg.Tiers))
	e.est = placement.NewEstimator(0.5)
	for i, t := range cfg.Tiers {
		e.names[i] = t.Tier.Name()
		e.est.Seed(t.Tier.Name(), t.ReadBW, t.WriteBW)
		e.aios = append(e.aios, aio.New(t.Tier, aio.Config{
			Workers:    cfg.IOWorkers,
			QueueDepth: 4 * cfg.PrefetchDepth,
			Locks:      cfg.Locks,
			Clock:      e.clk,
		}))
	}
	e.plan = placement.NewPlan(m, e.bandwidths())

	e.lru = hostcache.NewLRU(cfg.HostCacheSlots)
	e.loc = make([]int, m)
	e.gradLoc = make([]int, m)
	e.staleTier = make([]int, m)
	for i := range e.gradLoc {
		e.gradLoc[i] = -1
		e.staleTier[i] = -1
	}
	e.migrating = make(map[int]*migrationTicket)
	e.migQueued = make(map[int]bool)
	e.migCond = sync.NewCond(&e.migMu)
	if cfg.AdaptivePlacement && cfg.MigrationWindow > 0 {
		e.migPool = hostcache.NewBufferPool(cfg.MigrationWindow, stateBuf)
		for i := 0; i < cfg.MigrationWindow; i++ {
			e.migWG.Add(1)
			go e.migrator()
		}
	}
	e.params16 = make([]fp16.Bits, cfg.Params)
	e.sgOffset = make([]int64, m)
	e.grad32 = make([]float32, maxLen)
	if cfg.BatchGrad != nil {
		e.fullGrad = make([]float32, cfg.Params)
	}
	var off int64
	for i, sg := range e.shard.Subgroups {
		e.sgOffset[i] = off
		fp16.EncodeOn(e.kern, e.params16[off:off+int64(sg.Len())], sg.State.Params)
		off += int64(sg.Len())
	}
	if cfg.D2HBandwidth > 0 {
		e.d2h = ratelimit.NewLimiter(cfg.D2HBandwidth, cfg.D2HBandwidth/4, e.clk)
	}
	if cfg.LossScaling {
		e.scaler = optim.NewLossScaler()
	}
	e.partialNorms = make([]float64, m)
	e.series.Warmup = 2

	// Initial offload: flush every subgroup to its planned tier.
	for i, sg := range e.shard.Subgroups {
		if err := e.flushSync(i, sg); err != nil {
			e.Close()
			return nil, fmt.Errorf("engine: initial offload of subgroup %d: %w", i, err)
		}
	}
	return e, nil
}

// bandwidths materializes the estimator's view of the tiers.
func (e *Engine) bandwidths() []placement.TierBandwidth {
	return e.est.Bandwidths(e.names, 1)
}

// Subgroups returns the shard's subgroup count.
func (e *Engine) Subgroups() int { return len(e.shard.Subgroups) }

// TierHandle returns the engine's handle for the named tier — the
// codec-wrapped decorator when TierSpec.Codec is enabled, the configured
// tier otherwise — or nil for unknown names. Checkpoint tooling
// (Reader.Verify, Remove) must resolve manifest tier names through it so
// size checks and reads cross the same middleware the engine's own
// traffic does; Delete/Keys-only callers may keep raw handles.
func (e *Engine) TierHandle(name string) storage.Tier {
	for i, n := range e.names {
		if n == name {
			return e.cfg.Tiers[i].Tier
		}
	}
	return nil
}

// Plan returns the current placement plan.
func (e *Engine) Plan() placement.Plan {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.plan
}

// Series returns the recorded iteration metrics.
func (e *Engine) Series() *metrics.Series { return &e.series }

// Params16 returns the FP16 working copy (read-only use by callers).
func (e *Engine) Params16() []fp16.Bits { return e.params16 }

// key returns the optimizer-state storage key for subgroup i.
func (e *Engine) key(i int) string { return subgroup.Key(e.cfg.Rank, i) }

// gradKey returns the FP32-gradient object key for subgroup i (baseline).
func (e *Engine) gradKey(i int) string {
	return fmt.Sprintf("rank%03d-sg%05d.grad", e.cfg.Rank, i)
}

// recordDelete tracks a best-effort reclamation delete until the next
// phase-boundary wait. sg >= 0 additionally publishes it as the
// subgroup's delete ticket so a concurrent migration orders its
// destination write after it.
func (e *Engine) recordDelete(sg int, op *aio.Op) {
	e.mu.Lock()
	e.pendingDeletes = append(e.pendingDeletes, op)
	if sg >= 0 {
		e.deleteTickets[sg] = op
	}
	e.mu.Unlock()
}

// waitDeletes waits every pending reclamation delete — errors ignored, a
// failed delete only orphans bytes — then drops the tickets (all waited,
// so nothing needs ordering against them anymore).
func (e *Engine) waitDeletes() {
	e.mu.Lock()
	dels := e.pendingDeletes
	e.pendingDeletes = nil
	e.mu.Unlock()
	for _, op := range dels {
		//mlpvet:allow aioop a failed reclamation delete only orphans bytes; see the function comment
		_ = op.Wait()
	}
	e.mu.Lock()
	e.deleteTickets = make(map[int]*aio.Op)
	e.mu.Unlock()
}

// IntegrityRetries reports how many update-phase fetches were re-read
// after failing integrity validation (tiercodec.ErrCorrupt) — transient
// corruption the retry path absorbed.
func (e *Engine) IntegrityRetries() int64 { return e.corruptRetries.Load() }

// awaitRead waits for a submitted read, re-reading on integrity failure:
// a fetch that completed with tiercodec.ErrCorrupt is resubmitted at
// DemandFetch priority up to CorruptRetries times, paced by the
// RetryBackoff policy on the engine clock (immediate re-reads hammer a
// tier that is momentarily flaky; the jittered-exponential pause is the
// same discipline network retries use). In-flight corruption (a flaky
// transfer) re-reads clean from the intact stored object; corruption at
// rest keeps failing and the final ErrCorrupt propagates — the caller
// fails cleanly, never consuming garbage. The returned op is the one
// that completed last (its timing/wire accounting is the fetch's true
// cost); it equals op when no retry happened.
func (e *Engine) awaitRead(tier int, op *aio.Op, key string, dst []byte) (*aio.Op, error) {
	err := op.Wait()
	for r := 0; err != nil && errors.Is(err, tiercodec.ErrCorrupt) && r < e.cfg.CorruptRetries; r++ {
		e.corruptRetries.Add(1)
		e.clk.Sleep(e.cfg.RetryBackoff.Delay(r))
		rop, rerr := e.aios[tier].SubmitReadClass(aio.DemandFetch, key, dst)
		if rerr != nil {
			return op, err // cannot resubmit; surface the corruption
		}
		op, err = rop, rop.Wait()
	}
	return op, err
}

// readSyncRetry reads key into dst synchronously at DemandFetch
// priority with the awaitRead corrupt-retry discipline — the one
// synchronous read path every cold-path reader (gather, checkpoint
// staging fetch, restore) shares.
func (e *Engine) readSyncRetry(tier int, key string, dst []byte) error {
	op, err := e.aios[tier].SubmitReadClass(aio.DemandFetch, key, dst)
	if err != nil {
		return err
	}
	_, err = e.awaitRead(tier, op, key, dst)
	return err
}

// d2hTransfer charges a device<->host transfer against the PCIe budget.
func (e *Engine) d2hTransfer(bytes int64) {
	if e.d2h != nil {
		_ = e.d2h.WaitN(context.Background(), bytes)
	}
}

// flushSync serializes subgroup i's state and writes it synchronously,
// releasing the in-memory state. Used during initialization and restore
// evictions. A state aliasing its fetched buffer (sg.Backing) is
// already serialized — the buffer is written as-is and returned to the
// fetch pool, no marshal pass at all.
func (e *Engine) flushSync(i int, sg *subgroup.Subgroup) error {
	tier := e.plan.TierFor(i)
	if sg.Backing != nil {
		n := subgroup.StateBytes(sg.Len())
		backing := sg.Backing
		if err := e.aios[tier].WriteSync(e.key(i), backing[:n]); err != nil {
			return err
		}
		sg.State = nil
		sg.Backing = nil
		e.fetchPool.Put(backing)
		e.loc[i] = tier
		return nil
	}
	buf := e.flushPool.Get()
	n, err := sg.Marshal(buf, false)
	if err != nil {
		e.flushPool.Put(buf)
		return err
	}
	err = e.aios[tier].WriteSync(e.key(i), buf[:n])
	e.flushPool.Put(buf)
	if err != nil {
		return err
	}
	sg.State = nil
	e.loc[i] = tier
	return nil
}

// Forward runs the forward pass. With the model held as the FP16 working
// copy, the synthetic forward is a full sweep over the parameters (the
// cost stands in for activation computation; the paper's forward is
// likewise negligible next to the update phase).
func (e *Engine) forward() {
	var acc float32
	for _, h := range e.params16 {
		acc += float32(h & 1)
	}
	_ = acc
}

// backward generates this iteration's synthetic gradients subgroup by
// subgroup, accumulating into the host FP16 buffers, and — on the baseline
// path — upscales and flushes FP32 gradients to storage.
func (e *Engine) backward(iter int, accumStep int, lastAccum bool) error {
	if e.cfg.BatchGrad != nil {
		// Real-model path: one backward pass computes the whole shard's
		// gradients from the FP16 working copy.
		if err := e.cfg.BatchGrad(iter, e.params16, e.fullGrad); err != nil {
			return fmt.Errorf("engine: batch gradient: %w", err)
		}
	}
	for i, sg := range e.shard.Subgroups {
		n := sg.Len()
		off := e.sgOffset[i]
		g32 := e.grad32[:n]
		if e.cfg.BatchGrad != nil {
			copy(g32, e.fullGrad[off:off+int64(n)])
		} else {
			for j := 0; j < n; j++ {
				p := fp16.ToFloat32(e.params16[off+int64(j)])
				g32[j] = e.cfg.Grad(iter, off+int64(j), p)
			}
		}
		// D2H: FP16 gradients leave the device.
		e.d2hTransfer(int64(n) * 2)
		if accumStep == 0 {
			fp16.EncodeOn(e.kern, sg.Grads16, g32)
		} else {
			// Accumulate: widen current buffer, add, re-narrow.
			for j := 0; j < n; j++ {
				g32[j] += fp16.ToFloat32(sg.Grads16[j])
			}
			fp16.EncodeOn(e.kern, sg.Grads16, g32)
		}
		if lastAccum && e.cfg.ClipNorm > 0 {
			// Partial L2 norm of the rounded FP16 values actually used by
			// the update; combined globally before clipping.
			var sum float64
			for _, h := range sg.Grads16 {
				v := float64(fp16.ToFloat32(h))
				sum += v * v
			}
			e.partialNorms[i] = math.Sqrt(sum)
		}
		if !e.cfg.SkipGradFlush && lastAccum {
			// Baseline: upscale the FP16 accumulation buffer to FP32 and
			// flush it. Upscaling from Grads16 (not the wider scratch)
			// keeps both gradient paths numerically identical — the
			// correctness argument for delayed conversion.
			fp16.DecodeOn(e.kern, g32, sg.Grads16)
			gbuf := e.gradPool.Get()
			wide := gbuf[:4*n]
			encodeF32(wide, g32)
			// loc can be flipped concurrently by the live migrator; the
			// gradient co-locates with wherever the state is *now*, and
			// gradLoc records that so the update-phase fetch follows the
			// gradient even if the state object migrates again before it.
			e.cacheMu.Lock()
			tier := e.loc[i]
			if tier == locHost {
				tier = e.plan.TierFor(i)
			}
			e.cacheMu.Unlock()
			op, err := e.aios[tier].SubmitWriteClass(aio.Flush, e.gradKey(i), wide)
			if err != nil {
				e.gradPool.Put(gbuf)
				return err
			}
			if old := e.gradLoc[i]; old >= 0 && old != tier {
				// The previous iteration's gradient object lives on another
				// tier (the state migrated since): reclaim it so migration
				// churn cannot accumulate orphaned grad objects. Tracked on
				// pendingDeletes — waited at the next phase start but never
				// fatal, and durable before any later backward could write
				// this grad key on that tier again.
				if dop, derr := e.aios[old].SubmitDelete(aio.Flush, e.gradKey(i)); derr == nil {
					e.recordDelete(-1, dop)
				}
			}
			e.gradLoc[i] = tier
			e.pendingGrads = append(e.pendingGrads, op)
			buf := gbuf
			e.flushWG.Add(1)
			go func() {
				defer e.flushWG.Done()
				//mlpvet:allow aioop completion only gates the buffer return; the op sits on pendingGrads and its error is collected at the phase barrier
				_ = op.Wait()
				e.gradPool.Put(buf)
			}()
		}
	}
	return nil
}

// encodeF32 moves an FP32 payload through the f32view bulk kernel: a
// single memmove on aligned little-endian buffers, an 8-wide unrolled
// conversion otherwise.
func encodeF32(dst []byte, src []float32) { f32view.Encode(dst, src) }

// TrainIteration runs one full iteration: forward and backward passes
// (GradAccumSteps of each) followed by the update phase, recording a
// metrics.Iteration.
func (e *Engine) TrainIteration(iter int) (metrics.Iteration, error) {
	if e.closed {
		return metrics.Iteration{}, fmt.Errorf("engine: closed")
	}
	var it metrics.Iteration
	var sw metrics.Stopwatch

	sw.StartOn(e.clk)
	for a := 0; a < e.cfg.GradAccumSteps; a++ {
		e.forward()
	}
	it.Phases.Forward = sw.Lap()

	for a := 0; a < e.cfg.GradAccumSteps; a++ {
		if err := e.backward(iter, a, a == e.cfg.GradAccumSteps-1); err != nil {
			return it, err
		}
	}
	it.Phases.Backward = sw.Lap()

	if err := e.updatePhase(&it); err != nil {
		return it, err
	}
	it.Phases.Update = sw.Lap()

	it.TierBytes = e.tierBytes()
	e.series.Append(it)
	return it, nil
}

// tierBytes reports where the optimizer state lives right now. The
// migrator may be flipping loc concurrently, so the snapshot is taken
// under cacheMu.
func (e *Engine) tierBytes() map[string]float64 {
	out := make(map[string]float64, len(e.names)+1)
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	for i, sg := range e.shard.Subgroups {
		b := float64(subgroup.StateBytes(sg.Len()))
		if e.loc[i] == locHost {
			out["host"] += b
		} else {
			out[e.names[e.loc[i]]] += b
		}
	}
	return out
}

// GatherParams fetches the full FP32 master parameter vector (host-resident
// and offloaded subgroups alike) for verification. It does not disturb the
// cache: offloaded subgroups are read into temporary buffers.
func (e *Engine) GatherParams(dst []float32) error {
	if int64(len(dst)) != e.cfg.Params {
		return fmt.Errorf("engine: dst len %d != params %d", len(dst), e.cfg.Params)
	}
	// Lazy flushes must land — successfully — before we read tiers.
	if err := e.drain(); err != nil {
		return err
	}
	for i, sg := range e.shard.Subgroups {
		off := e.sgOffset[i]
		if e.loc[i] == locHost {
			copy(dst[off:], sg.State.Params)
			continue
		}
		size := subgroup.StateBytes(sg.Len())
		buf := e.fetchPool.Get()
		if err := e.readSyncRetry(e.loc[i], e.key(i), buf[:size]); err != nil {
			e.fetchPool.Put(buf)
			return err
		}
		// Header-validated bulk extraction of the Params section only —
		// no temporary subgroup, no M/V materialization.
		if err := sg.ReadParams(dst[off:off+int64(sg.Len())], buf[:size]); err != nil {
			e.fetchPool.Put(buf)
			return err
		}
		e.fetchPool.Put(buf)
	}
	return nil
}

// Drain waits for all outstanding asynchronous work, discarding errors.
func (e *Engine) Drain() { _ = e.drain() }

// drain waits for all outstanding asynchronous work and reports the first
// failure it absorbed. Draining clears the pending-op lists, so a caller
// that then reads tier state (checkpoint, restore, gather) MUST use this
// form: with the plain Drain the failed flush would never surface — the
// next updatePhase has nothing left to wait on — and the reader would see
// the previous, stale object under the live key.
//
// drain also quiesces the live migrator: every queued migration completes
// (or is abandoned) before it returns, so callers see a stable loc[] and
// no in-flight cross-tier copies. Migration failures do not fail drain —
// the source object stays authoritative and the next replan retries.
func (e *Engine) drain() error {
	e.drainMigrations()
	e.mu.Lock()
	flushes := e.pendingFlush
	e.pendingFlush = nil
	e.mu.Unlock()
	var firstErr error
	for _, op := range flushes {
		if err := op.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: lazy flush failed: %w", err)
		}
	}
	for _, op := range e.pendingGrads {
		if err := op.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: gradient flush failed: %w", err)
		}
	}
	e.pendingGrads = nil
	e.flushWG.Wait()
	e.waitDeletes()
	return firstErr
}

// Close drains and shuts down the engine. Idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.Drain()
	e.stopMigrators()
	for _, a := range e.aios {
		a.Close()
	}
	if e.kern != nil {
		e.kern.Close()
	}
}
