package wire

import (
	"context"
	"net"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

// Dial connects to addr with the retry policy b pacing reconnection
// attempts on clk — the member side of the elastic protocol, where the
// coordinator may not be listening yet. timeout becomes both the
// per-attempt connect budget and the framed connection's per-message
// deadline. Returns the framed connection, or the last dial error once
// b's attempts are exhausted (or ctx cancels between attempts).
func Dial(ctx context.Context, clk clock.Clock, addr string, timeout time.Duration, b Backoff) (*Conn, error) {
	clk = clock.Or(clk)
	var conn *Conn
	err := b.Retry(ctx, clk, func(int) error {
		d := net.Dialer{Timeout: timeout}
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return err
		}
		conn = NewConn(nc, clk, timeout)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// Listen opens a TCP listener on addr (":0" picks a free port — tests
// and single-host examples read the chosen address back via
// Listener.Addr).
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
