package wire

import (
	"sort"
	"sync"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

// Liveness tracks the last heartbeat seen from each rank and decides
// death by elapsed clock time. A rank is dead once clk.Since(lastBeat)
// >= timeout — the boundary is inclusive, matching the repo's aio aging
// convention, so a virtual-clock test that advances exactly timeout
// observes the transition with an exact (==) assertion.
//
// Liveness is pure bookkeeping: it never reads sockets. The owner calls
// Beat when a heartbeat (or any frame — all traffic proves liveness)
// arrives, and polls Dead from its monitor loop.
type Liveness struct {
	clk     clock.Clock
	timeout time.Duration

	mu   sync.Mutex
	last map[int]time.Time
}

// NewLiveness tracks peers against timeout on clk (nil clk = wall).
func NewLiveness(clk clock.Clock, timeout time.Duration) *Liveness {
	return &Liveness{clk: clock.Or(clk), timeout: timeout, last: make(map[int]time.Time)}
}

// Track starts watching rank, counting its join as a beat.
func (l *Liveness) Track(rank int) { l.Beat(rank) }

// Beat records a sign of life from rank at the current clock time.
func (l *Liveness) Beat(rank int) {
	now := l.clk.Now()
	l.mu.Lock()
	l.last[rank] = now
	l.mu.Unlock()
}

// Forget stops watching rank (it left cleanly or was declared dead and
// handled).
func (l *Liveness) Forget(rank int) {
	l.mu.Lock()
	delete(l.last, rank)
	l.mu.Unlock()
}

// Alive reports whether rank is tracked and within the timeout.
func (l *Liveness) Alive(rank int) bool {
	l.mu.Lock()
	last, ok := l.last[rank]
	l.mu.Unlock()
	return ok && l.clk.Since(last) < l.timeout
}

// Dead returns the tracked ranks whose last beat is at least timeout
// old, ascending. The caller decides what death means (recovery,
// eviction); Liveness keeps reporting them until Forget.
func (l *Liveness) Dead() []int {
	l.mu.Lock()
	var dead []int
	for rank, last := range l.last {
		if l.clk.Since(last) >= l.timeout {
			dead = append(dead, rank)
		}
	}
	l.mu.Unlock()
	sort.Ints(dead)
	return dead
}

// LastBeat returns when rank last proved liveness.
func (l *Liveness) LastBeat(rank int) (time.Time, bool) {
	l.mu.Lock()
	last, ok := l.last[rank]
	l.mu.Unlock()
	return last, ok
}

// Heartbeat sends empty frames of type t on c every interval until stop
// closes (returning nil) or a send fails (returning the error). Run it
// in its own goroutine; Conn serializes writers, so heartbeats interleave
// safely with the owner's request traffic.
func Heartbeat(clk clock.Clock, c *Conn, t byte, interval time.Duration, stop <-chan struct{}) error {
	clk = clock.Or(clk)
	for {
		select {
		case <-stop:
			return nil
		case <-clk.After(interval):
		}
		// stop may have closed while the tick was pending; a final
		// heartbeat then is harmless, but checking keeps shutdown prompt.
		select {
		case <-stop:
			return nil
		default:
		}
		if err := c.Send(t, nil); err != nil {
			return err
		}
	}
}
