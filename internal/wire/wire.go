// Package wire is the control-plane transport of elastic multi-rank
// training: a length-prefixed framed protocol over stdlib net.Conn, a
// clock-driven retry/backoff policy, and heartbeat-based liveness
// tracking. The module stays zero-dependency — everything here is stdlib
// net plus the repository's injectable clock.
//
// # Frame layout
//
// Every message on the wire is one frame:
//
//	offset  size  field
//	0       4     payload length N, big-endian uint32 (type byte included)
//	4       1     frame type (application-defined; see internal/train)
//	5       N-1   payload bytes (the application's encoding; train uses JSON)
//
// N counts the type byte plus the payload, so an empty message (a
// heartbeat) is N=1. Frames larger than MaxFrame are rejected on both
// send and receive — the control plane carries flags, digests and
// manifests metadata, never bulk tensor data, so an oversized frame is a
// protocol error (or garbage from a port scanner), not a workload.
//
// # Deadlines and the clock
//
// Per-message deadlines derive from the injected clock.Clock
// (clk.Now().Add(timeout), the discipline mlpvet's deadlinecheck
// enforces) and are armed on the net.Conn only when the clock is the
// wall clock: a virtual clock's timestamps mean nothing to the kernel,
// so under virtual time the deadline enforcement belongs to the liveness
// layer (Liveness, Backoff), which is exactly the part timing tests
// assert on with exact virtual durations.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

// MaxFrame bounds one frame's length field (type byte + payload). The
// control plane's largest messages are step lists and recovery
// assignments — kilobytes — so 1 MiB is generous headroom and a cheap
// guard against unbounded allocation from a corrupt or hostile peer.
const MaxFrame = 1 << 20

// headerLen is the fixed frame prefix: 4-byte length + 1-byte type.
const headerLen = 5

// Conn is a framed connection: Send and Recv move whole frames with
// per-message deadlines. Send and Recv are each serialized internally
// and may be used from different goroutines concurrently (the member's
// heartbeat loop sends while its training loop blocks in Recv).
type Conn struct {
	nc      net.Conn
	clk     clock.Clock
	wall    bool
	timeout time.Duration

	wmu sync.Mutex
	rmu sync.Mutex
}

// NewConn frames an accepted or dialed net.Conn. timeout is the
// per-message send deadline (and the default Recv idle budget); <= 0
// disables deadlines. Deadlines are armed only under the wall clock —
// see the package comment.
func NewConn(nc net.Conn, clk clock.Clock, timeout time.Duration) *Conn {
	clk = clock.Or(clk)
	return &Conn{nc: nc, clk: clk, wall: clock.IsWall(clk), timeout: timeout}
}

// Send writes one frame. The write deadline is timeout from now.
func (c *Conn) Send(t byte, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame type %d payload %d bytes exceeds MaxFrame %d", t, len(payload), MaxFrame)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wall && c.timeout > 0 {
		if err := c.nc.SetWriteDeadline(c.clk.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = t
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: send type %d: %w", t, err)
	}
	// Zero-length writes are skipped, not passed through: net.Pipe (used
	// by virtual-clock tests) blocks an empty Write until a reader
	// consumes it, and no reader ever issues a zero-byte read.
	if len(payload) > 0 {
		if _, err := c.nc.Write(payload); err != nil {
			return fmt.Errorf("wire: send type %d: %w", t, err)
		}
	}
	return nil
}

// Recv reads one frame, waiting up to idle for it to begin arriving
// (0 uses the connection's default timeout; negative blocks forever).
// A peer that stays silent past the budget surfaces as a timeout error
// — the reader treats it like a dead connection.
func (c *Conn) Recv(idle time.Duration) (byte, []byte, error) {
	if idle == 0 {
		idle = c.timeout
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.wall && idle > 0 {
		if err := c.nc.SetReadDeadline(c.clk.Now().Add(idle)); err != nil {
			return 0, nil, err
		}
	} else if c.wall {
		if err := c.nc.SetReadDeadline(time.Time{}); err != nil {
			return 0, nil, err
		}
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: recv header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range [1, %d]", n, MaxFrame)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(c.nc, payload); err != nil {
		return hdr[4], nil, fmt.Errorf("wire: recv type %d payload: %w", hdr[4], err)
	}
	return hdr[4], payload, nil
}

// RemoteAddr names the peer, for diagnostics.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// Close closes the underlying connection; blocked Send/Recv calls
// return with an error.
func (c *Conn) Close() error { return c.nc.Close() }
