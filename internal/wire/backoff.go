package wire

import (
	"context"
	"errors"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

// Backoff is a jittered exponential retry policy: delay(r) for retry r
// grows by Factor from Base, is capped at Max, and is then shrunk by a
// deterministic jitter fraction. Delays are *pure functions* of
// (policy, Seed, retry index) — no hidden RNG state — so two properties
// hold at once: peers decorrelate (seed with the rank) and timing tests
// on a virtual clock assert exact (==) simulated durations.
//
// The zero value is usable: withDefaults fills Base 5ms, Max 1s,
// Factor 2, Attempts 5, no jitter.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the exponential growth (applied before jitter).
	Max time.Duration
	// Factor is the per-retry growth multiplier.
	Factor float64
	// Jitter in [0, 1) shrinks each delay by up to that fraction,
	// deterministically per (Seed, retry): delay' ∈ ((1-Jitter)·delay,
	// delay]. 0 disables jitter (exact exponential pacing).
	Jitter float64
	// Attempts bounds Retry's total tries (first call included). 0
	// defaults to 5; negative retries forever (until ctx cancels or the
	// error is Permanent).
	Attempts int
	// Seed decorrelates independent retriers (e.g. one per rank). Two
	// policies differing only in Seed produce different jitter streams.
	Seed uint64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 5 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Attempts == 0 {
		b.Attempts = 5
	}
	return b
}

// Delay returns the pause before retry number r (0-based: Delay(0) is
// the wait after the first failure).
func (b Backoff) Delay(r int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < r && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		d -= b.Jitter * d * unit(b.Seed, uint64(r))
	}
	return time.Duration(d)
}

// unit maps (seed, n) to a uniform value in [0, 1) via splitmix64 — a
// stateless, platform-independent hash, so jitter is reproducible
// everywhere.
func unit(seed, n uint64) float64 {
	x := seed + 0x9E3779B97F4A7C15*(n+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// errPermanent marks an error Retry must not retry.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// Permanent wraps an error so Retry stops immediately and returns it
// (still matching the wrapped error via errors.Is/As). Use it for
// failures more tries cannot fix: a protocol version mismatch, a rank
// already registered.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return errPermanent{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var p errPermanent
	return errors.As(err, &p)
}

// Retry runs op until it succeeds, pacing retries with the policy on
// clk. It returns nil on success, the last error when Attempts is
// exhausted, immediately on a Permanent error, and the last error (or
// ctx.Err before the first try) when ctx is canceled. Cancellation is
// observed between attempts — an in-flight op is not interrupted, and a
// wall-clock sleep finishes before the check, so cancellation latency
// is bounded by Max.
func (b Backoff) Retry(ctx context.Context, clk clock.Clock, op func(attempt int) error) error {
	b = b.withDefaults()
	clk = clock.Or(clk)
	var err error
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			if err != nil {
				return err
			}
			return ctx.Err()
		}
		if err = op(attempt); err == nil {
			return nil
		}
		if IsPermanent(err) {
			return err
		}
		if b.Attempts > 0 && attempt+1 >= b.Attempts {
			return err
		}
		clk.Sleep(b.Delay(attempt))
	}
}
