package wire

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

func TestBackoffDelayExact(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for r, w := range want {
		if got := b.Delay(r); got != w {
			t.Errorf("Delay(%d) = %v, want %v", r, got, w)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	base := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	a := base
	a.Seed = 1
	c := base
	c.Seed = 2
	sawDiff := false
	for r := 0; r < 6; r++ {
		full := Backoff{Base: base.Base, Max: base.Max, Factor: base.Factor}.Delay(r)
		da := a.Delay(r)
		if da2 := a.Delay(r); da2 != da {
			t.Fatalf("Delay(%d) not deterministic: %v then %v", r, da, da2)
		}
		lo := time.Duration(float64(full) * (1 - base.Jitter))
		if da <= lo || da > full {
			t.Errorf("seed 1 Delay(%d) = %v outside (%v, %v]", r, da, lo, full)
		}
		if c.Delay(r) != da {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Error("seeds 1 and 2 produced identical jitter streams")
	}
}

func TestBackoffRetryPacingExactVirtual(t *testing.T) {
	clk := clock.NewVirtualAuto()
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Attempts: 5}
	start := clk.Now()
	calls := 0
	err := b.Retry(context.Background(), clk, func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt = %d, want %d", attempt, calls)
		}
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	// Three retries paced 10+20+40 ms — exact on the virtual clock.
	if got, want := clk.Since(start), 70*time.Millisecond; got != want {
		t.Fatalf("elapsed = %v, want exactly %v", got, want)
	}
}

func TestBackoffRetryExhaustsAttempts(t *testing.T) {
	clk := clock.NewVirtualAuto()
	b := Backoff{Base: time.Millisecond, Factor: 2, Attempts: 3}
	start := clk.Now()
	calls := 0
	sentinel := errors.New("still down")
	err := b.Retry(context.Background(), clk, func(int) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Two sleeps (1ms, 2ms) happen between the three attempts; no sleep
	// after the last failure.
	if got, want := clk.Since(start), 3*time.Millisecond; got != want {
		t.Fatalf("elapsed = %v, want exactly %v", got, want)
	}
}

func TestBackoffRetryPermanentStopsImmediately(t *testing.T) {
	clk := clock.NewVirtualAuto()
	start := clk.Now()
	calls := 0
	sentinel := errors.New("version mismatch")
	err := Backoff{Attempts: -1}.Retry(context.Background(), clk, func(int) error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) || !IsPermanent(err) {
		t.Fatalf("err = %v (permanent=%v), want permanent %v", err, IsPermanent(err), sentinel)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if got := clk.Since(start); got != 0 {
		t.Fatalf("elapsed = %v, want 0", got)
	}
}

func TestBackoffRetryContextCancel(t *testing.T) {
	clk := clock.NewVirtualAuto()
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("down")
	calls := 0
	err := Backoff{Base: time.Millisecond, Attempts: -1}.Retry(ctx, clk, func(int) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want last op error %v", err, sentinel)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}

	if err := (Backoff{}).Retry(ctx, clk, func(int) error { t.Fatal("op ran under canceled ctx"); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Retry err = %v, want context.Canceled", err)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got, want := b.Delay(0), 5*time.Millisecond; got != want {
		t.Fatalf("zero-value Delay(0) = %v, want %v", got, want)
	}
	if got, want := b.Delay(100), time.Second; got != want {
		t.Fatalf("zero-value Delay(100) = %v, want cap %v", got, want)
	}
}
