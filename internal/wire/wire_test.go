package wire

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// tcpPair returns two framed ends of a loopback TCP connection.
func tcpPair(t *testing.T, timeout time.Duration) (*Conn, *Conn) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type accepted struct {
		nc  net.Conn
		err error
	}
	acc := make(chan accepted, 1)
	go func() {
		nc, err := ln.Accept()
		acc <- accepted{nc, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	a := <-acc
	if a.err != nil {
		t.Fatalf("accept: %v", a.err)
	}
	c1 := NewConn(client, nil, timeout)
	c2 := NewConn(a.nc, nil, timeout)
	t.Cleanup(func() { c1.Close(); c2.Close() })
	return c1, c2
}

func TestConnRoundTrip(t *testing.T) {
	c1, c2 := tcpPair(t, 2*time.Second)
	msgs := []struct {
		typ     byte
		payload []byte
	}{
		{1, []byte(`{"rank":2,"iter":17}`)},
		{0x7F, nil}, // heartbeat: empty payload, frame length 1
		{9, bytes.Repeat([]byte{0xAB}, 64*1024)},
	}
	for _, m := range msgs {
		if err := c1.Send(m.typ, m.payload); err != nil {
			t.Fatalf("send type %d: %v", m.typ, err)
		}
		typ, payload, err := c2.Recv(0)
		if err != nil {
			t.Fatalf("recv type %d: %v", m.typ, err)
		}
		if typ != m.typ || !bytes.Equal(payload, m.payload) {
			t.Fatalf("recv = (%d, %d bytes), want (%d, %d bytes)", typ, len(payload), m.typ, len(m.payload))
		}
	}
	// Full duplex: the server side sends too.
	if err := c2.Send(3, []byte("ack")); err != nil {
		t.Fatalf("reverse send: %v", err)
	}
	if typ, payload, err := c1.Recv(0); err != nil || typ != 3 || string(payload) != "ack" {
		t.Fatalf("reverse recv = (%d, %q, %v)", typ, payload, err)
	}
}

func TestConnRejectsOversizedSend(t *testing.T) {
	c1, _ := tcpPair(t, time.Second)
	if err := c1.Send(1, make([]byte, MaxFrame)); err == nil {
		t.Fatal("Send accepted a frame exceeding MaxFrame")
	}
}

func TestConnRejectsBadLengthOnRecv(t *testing.T) {
	for name, hdr := range map[string][]byte{
		"zero":     {0, 0, 0, 0, 1},
		"oversize": {0xFF, 0xFF, 0xFF, 0xFF, 1},
	} {
		t.Run(name, func(t *testing.T) {
			ln, err := Listen("127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			defer ln.Close()
			go func() {
				nc, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					return
				}
				nc.Write(hdr)
				nc.Close()
			}()
			nc, err := ln.Accept()
			if err != nil {
				t.Fatalf("accept: %v", err)
			}
			c := NewConn(nc, nil, time.Second)
			defer c.Close()
			if _, _, err := c.Recv(0); err == nil || !strings.Contains(err.Error(), "out of range") {
				t.Fatalf("Recv err = %v, want length-out-of-range", err)
			}
		})
	}
}

func TestConnRecvIdleTimeout(t *testing.T) {
	c1, _ := tcpPair(t, time.Second)
	start := time.Now() //mlpvet:allow clockcheck kernel deadline test: the socket timeout is real wall time
	_, _, err := c1.Recv(30 * time.Millisecond)
	if err == nil {
		t.Fatal("Recv returned nil with a silent peer")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("Recv err = %v, not a timeout", err)
	}
	//mlpvet:allow clockcheck sanity bound on the same wall-clock kernel deadline
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Recv took %v, deadline did not arm", elapsed)
	}
}

func TestConnConcurrentSendersInterleaveWhole(t *testing.T) {
	c1, c2 := tcpPair(t, 5*time.Second)
	const perSender, senders = 50, 4
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(s)}, 777)
			for i := 0; i < perSender; i++ {
				if err := c1.Send(byte(s), payload); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	counts := make(map[byte]int)
	for i := 0; i < perSender*senders; i++ {
		typ, payload, err := c2.Recv(0)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(payload) != 777 {
			t.Fatalf("frame %d: %d bytes, want 777 (torn interleave)", i, len(payload))
		}
		for _, b := range payload {
			if b != typ {
				t.Fatalf("frame %d type %d contains byte %d: frames interleaved mid-write", i, typ, b)
			}
		}
		counts[typ]++
	}
	wg.Wait()
	for s := byte(0); s < senders; s++ {
		if counts[s] != perSender {
			t.Fatalf("sender %d delivered %d frames, want %d", s, counts[s], perSender)
		}
	}
}

func TestDialRetriesUntilListenerAppears(t *testing.T) {
	// Reserve a port, close it, and only start listening after the first
	// dial attempts have failed.
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ready := make(chan net.Listener, 1)
	go func() {
		//mlpvet:allow clockcheck real dial retries against a real late listener
		time.Sleep(50 * time.Millisecond)
		ln2, err := Listen(addr)
		if err != nil {
			ready <- nil
			return
		}
		go func() {
			if nc, err := ln2.Accept(); err == nil {
				nc.Close()
			}
		}()
		ready <- ln2
	}()

	b := Backoff{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Attempts: 50}
	c, err := Dial(t.Context(), nil, addr, time.Second, b)
	ln2 := <-ready
	if ln2 != nil {
		defer ln2.Close()
	}
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	c.Close()
}
