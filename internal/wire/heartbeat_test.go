package wire

import (
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

func TestLivenessExactTimeoutBoundary(t *testing.T) {
	clk := clock.NewVirtual()
	const timeout = 100 * time.Millisecond
	l := NewLiveness(clk, timeout)
	l.Track(3)

	// One nanosecond short of the timeout: still alive.
	clk.Advance(timeout - time.Nanosecond)
	if !l.Alive(3) {
		t.Fatal("rank 3 dead at timeout-1ns")
	}
	if dead := l.Dead(); len(dead) != 0 {
		t.Fatalf("Dead() = %v at timeout-1ns, want none", dead)
	}

	// Exactly at the timeout: dead (inclusive boundary).
	clk.Advance(time.Nanosecond)
	if l.Alive(3) {
		t.Fatal("rank 3 alive at exactly timeout")
	}
	if dead := l.Dead(); !reflect.DeepEqual(dead, []int{3}) {
		t.Fatalf("Dead() = %v at exactly timeout, want [3]", dead)
	}
}

func TestLivenessBeatResetsAndForget(t *testing.T) {
	clk := clock.NewVirtual()
	const timeout = 50 * time.Millisecond
	l := NewLiveness(clk, timeout)
	l.Track(0)
	l.Track(1)

	clk.Advance(40 * time.Millisecond)
	l.Beat(1) // rank 1 refreshed; rank 0's clock keeps running
	clk.Advance(10 * time.Millisecond)
	if dead := l.Dead(); !reflect.DeepEqual(dead, []int{0}) {
		t.Fatalf("Dead() = %v, want [0]", dead)
	}
	if !l.Alive(1) {
		t.Fatal("rank 1 dead 10ms after its beat")
	}

	l.Forget(0)
	if dead := l.Dead(); len(dead) != 0 {
		t.Fatalf("Dead() after Forget = %v, want none", dead)
	}
	if _, ok := l.LastBeat(0); ok {
		t.Fatal("LastBeat(0) still tracked after Forget")
	}

	clk.Advance(40 * time.Millisecond)
	if dead := l.Dead(); !reflect.DeepEqual(dead, []int{1}) {
		t.Fatalf("Dead() = %v, want [1]", dead)
	}
}

func TestLivenessDeadSortedMultiRank(t *testing.T) {
	clk := clock.NewVirtual()
	l := NewLiveness(clk, 10*time.Millisecond)
	for _, r := range []int{5, 1, 9} {
		l.Track(r)
	}
	clk.Advance(10 * time.Millisecond)
	if dead := l.Dead(); !reflect.DeepEqual(dead, []int{1, 5, 9}) {
		t.Fatalf("Dead() = %v, want sorted [1 5 9]", dead)
	}
}

// TestHeartbeatCadenceVirtual drives the sender loop on a manual
// virtual clock: each Advance of exactly one interval emits exactly one
// heartbeat frame.
func TestHeartbeatCadenceVirtual(t *testing.T) {
	clk := clock.NewVirtual()
	const interval = 20 * time.Millisecond
	a, b := net.Pipe()
	sender := NewConn(a, clk, 0)
	receiver := NewConn(b, clk, 0)
	defer sender.Close()
	defer receiver.Close()

	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- Heartbeat(clk, sender, 0x7F, interval, stop) }()

	for i := 0; i < 3; i++ {
		clk.BlockUntil(1) // sender parked on After(interval)
		clk.Advance(interval)
		typ, payload, err := receiver.Recv(-1)
		if err != nil {
			t.Fatalf("beat %d: %v", i, err)
		}
		if typ != 0x7F || len(payload) != 0 {
			t.Fatalf("beat %d: type %#x payload %d bytes, want 0x7f empty", i, typ, len(payload))
		}
	}

	close(stop)
	clk.BlockUntil(1)
	clk.Advance(interval) // release the parked After so the loop sees stop
	if err := <-errc; err != nil {
		t.Fatalf("Heartbeat returned %v after stop, want nil", err)
	}
}

func TestHeartbeatReturnsSendError(t *testing.T) {
	clk := clock.NewVirtual()
	a, b := net.Pipe()
	sender := NewConn(a, clk, 0)
	b.Close() // peer gone: first send must fail

	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- Heartbeat(clk, sender, 1, time.Millisecond, stop) }()
	clk.BlockUntil(1)
	clk.Advance(time.Millisecond)
	if err := <-errc; err == nil {
		t.Fatal("Heartbeat returned nil with a closed peer")
	}
	sender.Close()
}
