// Package cluster models the hardware testbeds of the paper (Table 1):
// GPU nodes, host memory, D2H links, node-local NVMe, remote PFS, and the
// compute-rate constants needed to convert work into simulated time.
//
// Calibration policy: bandwidths are the Table 1 numbers verbatim. The two
// compute-rate anchors the paper quotes are encoded explicitly — the
// no-offload GPU update rate (~40000 Mparams/s) and the in-host CPU update
// rate (~8000 Mparams/s per node) — plus the FP16→FP32 CPU conversion
// throughput (65 GB/s on Testbed-1). Everything else is derived.
package cluster

import "fmt"

// GiB and friends express byte quantities.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// GB is the decimal gigabyte used for bandwidth figures (GB/s in the paper
// are decimal).
const GB = 1e9

// GPU describes one accelerator.
type GPU struct {
	Name     string
	MemBytes int64
	// D2HBandwidth is the pinned device<->host transfer bandwidth in
	// bytes/second (per GPU).
	D2HBandwidth float64
	// TFLOPS is the sustained mixed-precision training throughput used by
	// the compute-time model.
	TFLOPS float64
}

// StorageTierSpec describes one storage path of a node.
type StorageTierSpec struct {
	Name       string
	ReadBW     float64 // bytes/second
	WriteBW    float64 // bytes/second
	SharedNode bool    // true when all workers on a node share the device
	// InterferenceAlpha parameterizes the efficiency curve
	// eff(n)=1/(1+alpha*(n-1)) observed under concurrent access (Fig. 4).
	InterferenceAlpha float64
	// Persistent reports whether data survives job teardown (PFS yes,
	// node-local NVMe no) — relevant for checkpoint pre-staging.
	Persistent bool
}

// MinBW returns min(read, write) — the bandwidth the paper's performance
// model (Eq. 1) uses for subgroup placement.
func (s StorageTierSpec) MinBW() float64 {
	if s.ReadBW < s.WriteBW {
		return s.ReadBW
	}
	return s.WriteBW
}

// Testbed is one evaluation platform (Table 1).
type Testbed struct {
	Name         string
	GPUsPerNode  int
	GPU          GPU
	CPUCores     int
	HostMemBytes int64
	NVMe         StorageTierSpec
	PFS          StorageTierSpec
	// CPUUpdateParamsPerSec is the full-node Adam update rate when all
	// state is resident in host memory (paper: ~8000 Mparams/s).
	CPUUpdateParamsPerSec float64
	// GPUUpdateParamsPerSec is the on-GPU update rate (paper: ~40000
	// Mparams/s), used only for no-offload reference points.
	GPUUpdateParamsPerSec float64
	// CPUConvertBytesPerSec is the FP16->FP32 conversion throughput
	// (paper: 65 GB/s on Testbed-1).
	CPUConvertBytesPerSec float64
	// InterconnectBW is the per-node injection bandwidth for inter-node
	// collectives (Slingshot/Infiniband class), bytes/second.
	InterconnectBW float64
}

// Testbed1 returns the JLSE 4xH100-80GB platform.
func Testbed1() Testbed {
	return Testbed{
		Name:         "Testbed-1 (JLSE 4xH100)",
		GPUsPerNode:  4,
		GPU:          GPU{Name: "H100-80GB", MemBytes: 80 * GiB, D2HBandwidth: 55 * GB, TFLOPS: 273},
		CPUCores:     96,
		HostMemBytes: 512 * GiB,
		NVMe: StorageTierSpec{
			Name: "nvme", ReadBW: 6.9 * GB, WriteBW: 5.3 * GB,
			SharedNode: true, InterferenceAlpha: 0.08, Persistent: false,
		},
		PFS: StorageTierSpec{
			Name: "pfs", ReadBW: 3.6 * GB, WriteBW: 3.6 * GB,
			SharedNode: true, InterferenceAlpha: 0.05, Persistent: true,
		},
		CPUUpdateParamsPerSec: 8000e6,
		GPUUpdateParamsPerSec: 40000e6,
		CPUConvertBytesPerSec: 65 * GB,
		InterconnectBW:        25 * GB,
	}
}

// Testbed2 returns the ALCF Polaris 4xA100-40GB platform.
func Testbed2() Testbed {
	return Testbed{
		Name:         "Testbed-2 (Polaris 4xA100)",
		GPUsPerNode:  4,
		GPU:          GPU{Name: "A100-40GB", MemBytes: 40 * GiB, D2HBandwidth: 25 * GB, TFLOPS: 85},
		CPUCores:     32,
		HostMemBytes: 512 * GiB,
		NVMe: StorageTierSpec{
			Name: "nvme", ReadBW: 13.5 * GB, WriteBW: 4.8 * GB,
			SharedNode: true, InterferenceAlpha: 0.08, Persistent: false,
		},
		PFS: StorageTierSpec{
			Name: "pfs", ReadBW: 6.9 * GB, WriteBW: 13.7 * GB,
			SharedNode: true, InterferenceAlpha: 0.05, Persistent: true,
		},
		CPUUpdateParamsPerSec: 6000e6, // 32 EPYC cores vs 96 Xeon cores
		GPUUpdateParamsPerSec: 30000e6,
		CPUConvertBytesPerSec: 40 * GB,
		InterconnectBW:        25 * GB, // Slingshot-10 class
	}
}

// ByName looks up a testbed.
func ByName(name string) (Testbed, error) {
	switch name {
	case "testbed1", "Testbed-1", "1":
		return Testbed1(), nil
	case "testbed2", "Testbed-2", "2":
		return Testbed2(), nil
	}
	return Testbed{}, fmt.Errorf("cluster: unknown testbed %q", name)
}

// AggregateGPUMem returns total GPU memory of one node.
func (t Testbed) AggregateGPUMem() int64 {
	return int64(t.GPUsPerNode) * t.GPU.MemBytes
}

// RuntimeReservedHostBytes estimates the host memory consumed by ZeRO-3
// runtime structures (gradient accumulation, all-reduce buckets, pinned
// staging). The paper reports 250-350 GB proportional to model size for
// 40B-120B models; we interpolate linearly in parameter count.
func (t Testbed) RuntimeReservedHostBytes(params int64) int64 {
	// 300 GiB at 40B params, 350 GiB at 120B params, clamped (the paper
	// reports 250-350 GB of ZeRO-3 runtime structures plus pinned staging).
	const (
		loP = 40e9
		hiP = 120e9
		loB = 300.0 * GiB
		hiB = 350.0 * GiB
	)
	p := float64(params)
	frac := (p - loP) / (hiP - loP)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return int64(loB + frac*(hiB-loB))
}

// HostCacheBytes returns the host memory available for caching optimizer
// subgroups after runtime reservations and the FP16 gradient-accumulation
// buffer (kept on host by MLP-Offload) are subtracted. Never negative.
func (t Testbed) HostCacheBytes(params int64, keepFP16Grads bool) int64 {
	free := t.HostMemBytes - t.RuntimeReservedHostBytes(params)
	if keepFP16Grads {
		free -= params * 2
	}
	if free < 0 {
		free = 0
	}
	return free
}

// CollectiveTime returns the cost of a ring all-gather/reduce-scatter of
// size bytes across n participants at linkBW bytes/s per participant:
// (n-1)/n * size / linkBW. n <= 1 costs zero.
func CollectiveTime(size float64, n int, linkBW float64) float64 {
	if n <= 1 || linkBW <= 0 {
		return 0
	}
	return float64(n-1) / float64(n) * size / linkBW
}
