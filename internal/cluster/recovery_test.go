package cluster

import (
	"math"
	"testing"
)

func TestOptimalIntervalYoungDaly(t *testing.T) {
	s := RecoverySpec{MTBF: 7200, CheckpointTime: 4}
	// sqrt(2·4·7200) = 240s.
	if got := s.OptimalInterval(); math.Abs(got-240) > 1e-9 {
		t.Fatalf("OptimalInterval = %g, want 240", got)
	}
	// No failures → never checkpoint for fault tolerance.
	if got := (RecoverySpec{CheckpointTime: 4}).OptimalInterval(); !math.IsInf(got, 1) {
		t.Fatalf("failure-free OptimalInterval = %g, want +Inf", got)
	}
	// Free checkpoints → checkpoint continuously.
	if got := (RecoverySpec{MTBF: 7200}).OptimalInterval(); got != 0 {
		t.Fatalf("free-checkpoint OptimalInterval = %g, want 0", got)
	}
}

// TestOptimalIntervalMinimizesOverhead: the closed form must beat every
// other interval on a fine grid of the model it claims to minimize.
func TestOptimalIntervalMinimizesOverhead(t *testing.T) {
	s := RecoverySpec{MTBF: 3600, CheckpointTime: 6, DetectTime: 0.06, RestoreTime: 2}
	opt := s.OptimalInterval()
	best := s.OverheadFraction(opt)
	for interval := 10.0; interval <= 2000; interval += 10 {
		if f := s.OverheadFraction(interval); f < best-1e-12 {
			t.Fatalf("OverheadFraction(%g) = %g beats the claimed optimum %g at %g",
				interval, f, best, opt)
		}
	}
}

// TestExpectedRollbackBounded: the elastic design's core claim — a
// death costs at most one interval plus detection plus restore, never
// grows with job length.
func TestExpectedRollbackBounded(t *testing.T) {
	s := RecoverySpec{MTBF: 3600, CheckpointTime: 6, DetectTime: 0.06, RestoreTime: 2}
	interval := s.OptimalInterval()
	rb := s.ExpectedRollback(interval)
	bound := interval + s.DetectTime + s.RestoreTime
	if rb > bound {
		t.Fatalf("ExpectedRollback = %g exceeds the bound %g", rb, bound)
	}
	// Expected run time is finite and monotone in work.
	if t1, t2 := s.ExpectedRunTime(1000, interval), s.ExpectedRunTime(2000, interval); !(t2 > t1) || math.IsInf(t2, 1) {
		t.Fatalf("ExpectedRunTime not monotone/finite: %g, %g", t1, t2)
	}
	// Cheaper checkpoints (pre-staging) shorten the optimal interval and
	// the expected rollback with it.
	cheap := s
	cheap.CheckpointTime = 1.5
	if !(cheap.OptimalInterval() < s.OptimalInterval()) {
		t.Fatal("cheaper checkpoints should shorten the optimal interval")
	}
	if !(cheap.ExpectedRollback(cheap.OptimalInterval()) < rb) {
		t.Fatal("cheaper checkpoints should shrink the expected rollback")
	}
}

func TestOptimalIters(t *testing.T) {
	s := RecoverySpec{MTBF: 7200, CheckpointTime: 4}
	// 240s optimum at 50s iterations → 5 iterations.
	if got := s.OptimalIters(50); got != 5 {
		t.Fatalf("OptimalIters(50) = %d, want 5", got)
	}
	// Optimum below one iteration clamps to every iteration.
	if got := s.OptimalIters(1e6); got != 1 {
		t.Fatalf("OptimalIters(1e6) = %d, want 1", got)
	}
	// Failure-free: no fault-tolerance checkpointing.
	if got := (RecoverySpec{CheckpointTime: 4}).OptimalIters(50); got != 0 {
		t.Fatalf("failure-free OptimalIters = %d, want 0", got)
	}
}
