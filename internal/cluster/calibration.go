package cluster

// Calibration carries machine-measured rates derived from a BENCH_*.json
// trajectory document (see simrun.CalibrationFromBench). Zero fields mean
// "no measurement available — keep the testbed's Table 1 value".
type Calibration struct {
	// UpdateParamsPerSec is the measured CPU Adam kernel rate in
	// parameters/second (from the StepFP16KernelPool benchmark).
	UpdateParamsPerSec float64
	// OpOverheadSec is the fixed per-I/O-op submission cost in seconds —
	// the cost vectored coalescing amortizes (from the iobench-seq-fetch
	// report's per-op vs coalesced-per-member latencies).
	OpOverheadSec float64
	// CodecRatio is the measured compression ratio (raw/wire) and
	// CodecEncBW/CodecDecBW the CPU encode/decode throughputs in raw
	// bytes/second (from the iobench-codec report).
	CodecRatio float64
	CodecEncBW float64
	CodecDecBW float64
}

// IsZero reports whether no measurement was derived.
func (c Calibration) IsZero() bool {
	return c == Calibration{}
}

// Calibrated returns a copy of the testbed with measured rates substituted
// for the spec-sheet values where the calibration has them.
func (t Testbed) Calibrated(c Calibration) Testbed {
	if c.UpdateParamsPerSec > 0 {
		t.CPUUpdateParamsPerSec = c.UpdateParamsPerSec
	}
	return t
}
