package cluster

import "math"

// RecoverySpec models the failure/recovery economics of an elastic run
// on a testbed: how often ranks die, what a death costs, and how much
// each checkpoint costs to take. All times are seconds. It answers the
// question the elastic protocol (internal/train, internal/wire) turns
// from a policy into a mechanism: with heartbeat detection and
// newest-common-step rollback, what checkpoint interval bounds the
// expected cost of a death — and what interval minimizes total run
// time?
type RecoverySpec struct {
	// MTBF is the whole-job mean time between rank failures. For N
	// identically flaky ranks this is the per-rank MTBF divided by N.
	MTBF float64
	// CheckpointTime is the coordinated-checkpoint commit time — the
	// paper's pre-staging (ROADMAP item on checkpoint savings) lowers
	// exactly this number, which through Young/Daly shortens the optimal
	// interval and shrinks the expected rollback.
	CheckpointTime float64
	// DetectTime is the death-detection latency: the heartbeat timeout
	// (wire.Liveness) plus the survivors' drain to the iteration barrier.
	DetectTime float64
	// RestoreTime is the rollback cost once detected: restoring every
	// rank from the newest common step and re-sharding the dead rank's
	// subgroups onto a survivor (engine.NewRestored + live migration).
	RestoreTime float64
}

// ExpectedRollback is the expected wall-clock cost of one death when
// checkpoints are taken every interval seconds of useful work: half an
// interval of lost compute on average, plus detection, plus restore.
// The bound the elastic design buys: a death costs at most
// interval + DetectTime + RestoreTime, never the whole job.
func (s RecoverySpec) ExpectedRollback(interval float64) float64 {
	return interval/2 + s.DetectTime + s.RestoreTime
}

// OverheadFraction is the expected fraction of extra run time added on
// top of useful work at a given checkpoint interval: the per-interval
// checkpoint tax plus the amortized cost of failures at rate 1/MTBF.
// MTBF <= 0 means failure-free (checkpoint tax only); interval <= 0 is
// meaningless and returns +Inf.
func (s RecoverySpec) OverheadFraction(interval float64) float64 {
	if interval <= 0 {
		return math.Inf(1)
	}
	frac := s.CheckpointTime / interval
	if s.MTBF > 0 {
		frac += s.ExpectedRollback(interval) / s.MTBF
	}
	return frac
}

// ExpectedRunTime is the expected wall-clock time to complete work
// seconds of useful compute at the given checkpoint interval.
func (s RecoverySpec) ExpectedRunTime(work, interval float64) float64 {
	return work * (1 + s.OverheadFraction(interval))
}

// OptimalInterval is the checkpoint interval minimizing
// OverheadFraction — the Young/Daly first-order optimum
// sqrt(2·CheckpointTime·MTBF), which balances the checkpoint tax
// (∝ 1/interval) against expected lost work (∝ interval/2·MTBF).
// Returns +Inf when failures are off (never checkpoint for fault
// tolerance alone) and 0 when checkpoints are free.
func (s RecoverySpec) OptimalInterval() float64 {
	if s.MTBF <= 0 {
		return math.Inf(1)
	}
	if s.CheckpointTime <= 0 {
		return 0
	}
	return math.Sqrt(2 * s.CheckpointTime * s.MTBF)
}

// OptimalIters converts OptimalInterval into a whole number of
// iterations of the given duration (minimum 1) — the value to hand to
// the elastic coordinator's CheckpointEvery.
func (s RecoverySpec) OptimalIters(iterTime float64) int {
	opt := s.OptimalInterval()
	if math.IsInf(opt, 1) || iterTime <= 0 {
		return 0 // checkpointing for fault tolerance is pointless here
	}
	n := int(math.Round(opt / iterTime))
	if n < 1 {
		n = 1
	}
	return n
}
