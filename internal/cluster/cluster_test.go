package cluster

import (
	"math"
	"testing"
)

func TestTable1Values(t *testing.T) {
	t1 := Testbed1()
	if t1.GPUsPerNode != 4 || t1.GPU.Name != "H100-80GB" {
		t.Errorf("testbed1 GPUs wrong: %+v", t1.GPU)
	}
	if t1.GPU.D2HBandwidth != 55*GB {
		t.Errorf("testbed1 D2H = %g", t1.GPU.D2HBandwidth)
	}
	if t1.CPUCores != 96 || t1.HostMemBytes != 512*GiB {
		t.Errorf("testbed1 CPU/mem wrong")
	}
	if t1.NVMe.ReadBW != 6.9*GB || t1.NVMe.WriteBW != 5.3*GB {
		t.Errorf("testbed1 NVMe = %g/%g", t1.NVMe.ReadBW, t1.NVMe.WriteBW)
	}
	if t1.PFS.ReadBW != 3.6*GB || t1.PFS.WriteBW != 3.6*GB {
		t.Errorf("testbed1 PFS = %g/%g", t1.PFS.ReadBW, t1.PFS.WriteBW)
	}

	t2 := Testbed2()
	if t2.GPU.D2HBandwidth != 25*GB || t2.CPUCores != 32 {
		t.Errorf("testbed2 wrong: %+v", t2)
	}
	if t2.NVMe.ReadBW != 13.5*GB || t2.NVMe.WriteBW != 4.8*GB {
		t.Errorf("testbed2 NVMe = %g/%g", t2.NVMe.ReadBW, t2.NVMe.WriteBW)
	}
	if t2.PFS.ReadBW != 6.9*GB || t2.PFS.WriteBW != 13.7*GB {
		t.Errorf("testbed2 PFS = %g/%g", t2.PFS.ReadBW, t2.PFS.WriteBW)
	}
}

func TestMinBW(t *testing.T) {
	s := StorageTierSpec{ReadBW: 10, WriteBW: 5}
	if s.MinBW() != 5 {
		t.Errorf("MinBW = %g", s.MinBW())
	}
	s = StorageTierSpec{ReadBW: 3, WriteBW: 5}
	if s.MinBW() != 3 {
		t.Errorf("MinBW = %g", s.MinBW())
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"testbed1", "Testbed-1", "1"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("testbed9"); err == nil {
		t.Error("expected error")
	}
}

func TestHostMemRatios(t *testing.T) {
	// Paper: host:GPU memory ratios are 1.6:1 (Testbed-1) and 3.2:1
	// (Testbed-2).
	t1 := Testbed1()
	r1 := float64(t1.HostMemBytes) / float64(t1.AggregateGPUMem())
	if math.Abs(r1-1.6) > 0.01 {
		t.Errorf("testbed1 host:GPU = %.2f, want 1.6", r1)
	}
	t2 := Testbed2()
	r2 := float64(t2.HostMemBytes) / float64(t2.AggregateGPUMem())
	if math.Abs(r2-3.2) > 0.01 {
		t.Errorf("testbed2 host:GPU = %.2f, want 3.2", r2)
	}
}

func TestRuntimeReservedInterpolation(t *testing.T) {
	tb := Testbed1()
	lo := tb.RuntimeReservedHostBytes(40e9)
	hi := tb.RuntimeReservedHostBytes(120e9)
	if lo != 300*GiB {
		t.Errorf("reserved@40B = %d GiB, want 300", lo/GiB)
	}
	if hi != 350*GiB {
		t.Errorf("reserved@120B = %d GiB", hi/GiB)
	}
	mid := tb.RuntimeReservedHostBytes(80e9)
	if mid <= lo || mid >= hi {
		t.Errorf("reserved@80B = %d GiB not between", mid/GiB)
	}
	// Clamped outside the range.
	if tb.RuntimeReservedHostBytes(10e9) != lo || tb.RuntimeReservedHostBytes(300e9) != hi {
		t.Error("reservation not clamped")
	}
}

func TestHostCacheBytesNonNegative(t *testing.T) {
	tb := Testbed1()
	got := tb.HostCacheBytes(120e9, true)
	if got < 0 {
		t.Errorf("HostCacheBytes negative: %d", got)
	}
	// Keeping FP16 grads on host must reduce the cache budget by 2B/param.
	with := tb.HostCacheBytes(40e9, true)
	without := tb.HostCacheBytes(40e9, false)
	if without-with != 40e9*2 {
		t.Errorf("fp16 grad reservation = %d, want %d", without-with, int64(40e9*2))
	}
}

func TestCollectiveTime(t *testing.T) {
	if CollectiveTime(1000, 1, 100) != 0 {
		t.Error("single participant should cost 0")
	}
	got := CollectiveTime(1000, 4, 100)
	want := 0.75 * 1000 / 100
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("collective = %g, want %g", got, want)
	}
	if CollectiveTime(1000, 4, 0) != 0 {
		t.Error("zero bandwidth should cost 0 (treated as local)")
	}
}

func TestCacheShrinksWithModel(t *testing.T) {
	tb := Testbed1()
	prev := tb.HostCacheBytes(40e9, true)
	for _, p := range []int64{52e9, 70e9, 100e9, 120e9} {
		cur := tb.HostCacheBytes(p, true)
		if cur > prev {
			t.Errorf("host cache grew from %d to %d at %dB params", prev, cur, p)
		}
		prev = cur
	}
}
