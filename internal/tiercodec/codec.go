package tiercodec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Codec identifiers recorded in the object header. Decoding is driven by
// the header, never by the reader's configuration, so any codec-aware
// tier can read objects written under any codec — the property that
// keeps checkpoints restorable across codec changes.
const (
	// CodecRaw stores the payload verbatim (no compression). Also the id
	// an incompressible object is demoted to by the bypass.
	CodecRaw uint8 = 0
	// CodecFlate stores the payload byte-plane transposed and
	// DEFLATE-compressed.
	CodecFlate uint8 = 1
)

// codecName renders a codec id for errors and manifests.
func codecName(id uint8) string {
	switch id {
	case CodecRaw:
		return "raw"
	case CodecFlate:
		return "flate"
	default:
		return fmt.Sprintf("codec(%d)", id)
	}
}

// transpose rewrites src into dst grouped by byte plane: with stride k,
// all byte-0s of the k-byte elements first, then all byte-1s, and so on;
// the tail (len % k bytes) is appended verbatim. FP32 optimizer state is
// a stream of little-endian 4-byte floats whose high (sign/exponent)
// bytes are strongly clustered while low mantissa bytes are near-random
// — transposing turns that into long runs DEFLATE actually compresses,
// where the interleaved original is close to incompressible. Stride 2
// does the same for FP16 payloads.
func transpose(dst, src []byte, stride int) {
	n := len(src) / stride
	for p := 0; p < stride; p++ {
		plane := dst[p*n : (p+1)*n]
		for i := 0; i < n; i++ {
			plane[i] = src[i*stride+p]
		}
	}
	copy(dst[n*stride:], src[n*stride:])
}

// untranspose inverts transpose.
func untranspose(dst, src []byte, stride int) {
	n := len(src) / stride
	for p := 0; p < stride; p++ {
		plane := src[p*n : (p+1)*n]
		for i := 0; i < n; i++ {
			dst[i*stride+p] = plane[i]
		}
	}
	copy(dst[n*stride:], src[n*stride:])
}

// scratch pools the transpose and compression staging buffers; objects
// are multi-megabyte subgroups, so per-op allocation would dominate.
var scratch = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

func getScratch(n int) *[]byte {
	bp := scratch.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putScratch(bp *[]byte) { scratch.Put(bp) }

// flateWriters pools DEFLATE compressors per level (Reset reuses the
// internal match tables, the expensive part of flate.NewWriter).
var flateWriters [10]sync.Pool

func getFlateWriter(level int, w io.Writer) *flate.Writer {
	if fw, _ := flateWriters[level].Get().(*flate.Writer); fw != nil {
		fw.Reset(w)
		return fw
	}
	fw, _ := flate.NewWriter(w, level) // level validated by Spec
	return fw
}

func putFlateWriter(level int, fw *flate.Writer) { flateWriters[level].Put(fw) }

// encodeFlate appends the transposed, DEFLATE-compressed form of src to
// dst and returns the extended slice, or ok=false when the result would
// not be smaller than src (the incompressible bypass: the caller then
// stores the payload raw, so a pathological object never grows and
// never pays decompression on the read path).
func encodeFlate(dst, src []byte, level, stride int) (out []byte, ok bool) {
	tp := getScratch(len(src))
	defer putScratch(tp)
	transpose(*tp, src, stride)

	base := len(dst)
	buf := bytes.NewBuffer(dst)
	fw := getFlateWriter(level, buf)
	_, werr := fw.Write(*tp)
	cerr := fw.Close()
	putFlateWriter(level, fw)
	if werr != nil || cerr != nil {
		return dst, false // bytes.Buffer cannot fail; defensive bypass
	}
	if buf.Len()-base >= len(src) {
		return dst, false
	}
	return buf.Bytes(), true
}

// decodeFlate decompresses and untransposes payload into dst, which must
// have the exact raw length recorded in the object header.
func decodeFlate(dst, payload []byte, stride int) error {
	tp := getScratch(len(dst))
	defer putScratch(tp)
	fr := flate.NewReader(bytes.NewReader(payload))
	n, err := io.ReadFull(fr, *tp)
	if err != nil {
		return fmt.Errorf("%w: flate payload truncated at %d/%d bytes: %v", ErrCorrupt, n, len(dst), err)
	}
	// The stream must end exactly at rawLen.
	var one [1]byte
	if m, _ := fr.Read(one[:]); m != 0 {
		return fmt.Errorf("%w: flate payload longer than raw length %d", ErrCorrupt, len(dst))
	}
	if err := fr.Close(); err != nil {
		return fmt.Errorf("%w: flate stream: %v", ErrCorrupt, err)
	}
	untranspose(dst, *tp, stride)
	return nil
}
