package tiercodec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/storage"
)

// ErrInjected is the default error FaultTier injects.
var ErrInjected = errors.New("tiercodec: injected fault")

// FaultConfig selects which faults a FaultTier injects. Every channel is
// counter-based — "every Nth operation of that kind" (1-based, 0
// disables) — so tests are deterministic regardless of goroutine
// interleaving of *other* channels. Channels are independent: a read
// error and a read corruption each advance their own counter.
type FaultConfig struct {
	// FailReadEvery / FailWriteEvery make every Nth read/write return
	// Err without touching the inner tier.
	FailReadEvery  int64
	FailWriteEvery int64
	// Err is the injected failure; nil means ErrInjected.
	Err error

	// CorruptReadEvery flips one byte of every Nth read's returned data
	// — *transient* corruption, as if the transfer was hit in flight:
	// the stored object stays intact, so a retry reads clean. A codec
	// tier with integrity stacked above detects it as ErrCorrupt.
	CorruptReadEvery int64
	// CorruptWriteEvery flips one byte of every Nth write's stored
	// object — *persistent* corruption (bit rot at rest): every later
	// read of the key observes it, so retries keep failing.
	CorruptWriteEvery int64
	// TornWriteEvery stores only the first three quarters of every Nth
	// write — a torn object, as if the writer crashed mid-flush on a
	// store without atomic replace.
	TornWriteEvery int64

	// LatencyEvery adds Latency to every Nth operation (reads and
	// writes share the counter) — tail-latency spikes for scheduler and
	// timeout testing.
	LatencyEvery int64
	Latency      time.Duration

	// Clock is the time source latency spikes sleep on (nil = wall
	// clock). On a virtual clock a spike advances exactly Latency of
	// virtual time and costs no real waiting.
	Clock clock.Clock

	// DownAfterOps puts the tier hard-down after that many operations
	// (reads, writes, deletes, sizes, key listings share one counter; 0
	// disables): every later operation of any kind fails with
	// storage.ErrTierDown and the tier never recovers — a device loss or
	// unmounted PFS, distinct from the transient channels above, whose
	// faults a retry can absorb. Down can also be forced at a chosen
	// moment with FaultTier.Down.
	DownAfterOps int64
}

// FaultStats counts the faults actually injected.
type FaultStats struct {
	ReadErrors    int64
	WriteErrors   int64
	CorruptReads  int64
	CorruptWrites int64
	TornWrites    int64
	LatencySpikes int64
	// DownFailures counts operations rejected because the tier was hard
	// down (the triggering operation included).
	DownFailures int64
}

// FaultTier is a storage.Tier decorator that injects faults for
// resilience testing: read/write errors, torn and corrupted objects,
// and latency spikes. Stack it *under* a codec tier to exercise
// integrity detection (the codec sees corrupted encoded bytes), or
// *over* one to fault the raw path. All other operations delegate.
type FaultTier struct {
	inner storage.Tier
	cfg   FaultConfig

	readOps    atomic.Int64
	writeOps   atomic.Int64
	readCorr   atomic.Int64
	writeCorr  atomic.Int64
	tornOps    atomic.Int64
	latencyOps atomic.Int64
	totalOps   atomic.Int64
	down       atomic.Bool

	stats struct {
		readErrs    atomic.Int64
		writeErrs   atomic.Int64
		corrReads   atomic.Int64
		corrWrites  atomic.Int64
		tornWrites  atomic.Int64
		latencyHits atomic.Int64
		downFails   atomic.Int64
	}
}

// NewFaultTier wraps inner with fault injection.
func NewFaultTier(inner storage.Tier, cfg FaultConfig) *FaultTier {
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	cfg.Clock = clock.Or(cfg.Clock)
	return &FaultTier{inner: inner, cfg: cfg}
}

// Unwrap returns the decorated tier.
func (f *FaultTier) Unwrap() storage.Tier { return f.inner }

// Stats implements storage.Tier (inner traffic; injected failures move
// no bytes).
func (f *FaultTier) Stats() storage.Stats { return f.inner.Stats() }

// FaultStats returns the injected-fault counters.
func (f *FaultTier) FaultStats() FaultStats {
	return FaultStats{
		ReadErrors:    f.stats.readErrs.Load(),
		WriteErrors:   f.stats.writeErrs.Load(),
		CorruptReads:  f.stats.corrReads.Load(),
		CorruptWrites: f.stats.corrWrites.Load(),
		TornWrites:    f.stats.tornWrites.Load(),
		LatencySpikes: f.stats.latencyHits.Load(),
		DownFailures:  f.stats.downFails.Load(),
	}
}

// Down forces the tier hard-down immediately (the outage trigger
// elastic-recovery tests pull at a chosen iteration). Irreversible.
func (f *FaultTier) Down() { f.down.Store(true) }

// IsDown reports whether the tier has gone hard-down.
func (f *FaultTier) IsDown() bool { return f.down.Load() }

// checkDown advances the shared op counter and returns the outage error
// once the tier is down — by trigger count or by Down(). Every
// operation calls it first: after the trigger, nothing reaches the
// inner tier again.
func (f *FaultTier) checkDown() error {
	if !f.down.Load() {
		if f.cfg.DownAfterOps <= 0 || f.totalOps.Add(1) <= f.cfg.DownAfterOps {
			return nil
		}
		f.down.Store(true)
	}
	f.stats.downFails.Add(1)
	return fmt.Errorf("tiercodec: tier %s: %w", f.inner.Name(), storage.ErrTierDown)
}

// due advances a channel counter and reports whether this operation is
// the every'th one.
func due(counter *atomic.Int64, every int64) bool {
	if every <= 0 {
		return false
	}
	return counter.Add(1)%every == 0
}

func (f *FaultTier) maybeDelay() {
	if due(&f.latencyOps, f.cfg.LatencyEvery) {
		f.stats.latencyHits.Add(1)
		f.cfg.Clock.Sleep(f.cfg.Latency)
	}
}

// flip corrupts one byte roughly mid-object (past any header, inside
// the payload).
func flip(b []byte) {
	if len(b) == 0 {
		return
	}
	b[len(b)/2] ^= 0xFF
}

// Name implements storage.Tier.
func (f *FaultTier) Name() string { return f.inner.Name() }

// Read implements storage.Tier with error and transient-corruption
// injection.
func (f *FaultTier) Read(ctx context.Context, key string, dst []byte) error {
	if err := f.checkDown(); err != nil {
		return err
	}
	f.maybeDelay()
	if due(&f.readOps, f.cfg.FailReadEvery) {
		f.stats.readErrs.Add(1)
		return f.cfg.Err
	}
	if err := f.inner.Read(ctx, key, dst); err != nil {
		return err
	}
	if due(&f.readCorr, f.cfg.CorruptReadEvery) {
		f.stats.corrReads.Add(1)
		flip(dst)
	}
	return nil
}

// ReadObject implements storage.ObjectReader so a codec tier stacked
// above keeps its atomic whole-object read path; the same read faults
// apply.
func (f *FaultTier) ReadObject(ctx context.Context, key string) ([]byte, error) {
	if err := f.checkDown(); err != nil {
		return nil, err
	}
	f.maybeDelay()
	if due(&f.readOps, f.cfg.FailReadEvery) {
		f.stats.readErrs.Add(1)
		return nil, f.cfg.Err
	}
	data, err := storage.ReadWholeObject(ctx, f.inner, key)
	if err != nil {
		return nil, err
	}
	if due(&f.readCorr, f.cfg.CorruptReadEvery) {
		f.stats.corrReads.Add(1)
		flip(data)
	}
	return data, nil
}

// Write implements storage.Tier with error, persistent-corruption and
// torn-object injection.
func (f *FaultTier) Write(ctx context.Context, key string, src []byte) error {
	if err := f.checkDown(); err != nil {
		return err
	}
	f.maybeDelay()
	if due(&f.writeOps, f.cfg.FailWriteEvery) {
		f.stats.writeErrs.Add(1)
		return f.cfg.Err
	}
	if due(&f.tornOps, f.cfg.TornWriteEvery) {
		f.stats.tornWrites.Add(1)
		return f.inner.Write(ctx, key, src[:len(src)*3/4])
	}
	if due(&f.writeCorr, f.cfg.CorruptWriteEvery) {
		f.stats.corrWrites.Add(1)
		bad := make([]byte, len(src))
		copy(bad, src)
		flip(bad)
		return f.inner.Write(ctx, key, bad)
	}
	return f.inner.Write(ctx, key, src)
}

// Delete implements storage.Tier.
func (f *FaultTier) Delete(ctx context.Context, key string) error {
	if err := f.checkDown(); err != nil {
		return err
	}
	return f.inner.Delete(ctx, key)
}

// Size implements storage.Tier.
func (f *FaultTier) Size(ctx context.Context, key string) (int64, error) {
	if err := f.checkDown(); err != nil {
		return 0, err
	}
	return f.inner.Size(ctx, key)
}

// Keys implements storage.Tier.
func (f *FaultTier) Keys(ctx context.Context) ([]string, error) {
	if err := f.checkDown(); err != nil {
		return nil, err
	}
	return f.inner.Keys(ctx)
}

// Copy implements storage.Copier by delegation; tiers without the
// capability report ErrCopyUnsupported (storage.TryCopy falls back).
func (f *FaultTier) Copy(ctx context.Context, srcKey, dstKey string) error {
	if err := f.checkDown(); err != nil {
		return err
	}
	if c, ok := f.inner.(storage.Copier); ok {
		return c.Copy(ctx, srcKey, dstKey)
	}
	return storage.ErrCopyUnsupported
}
