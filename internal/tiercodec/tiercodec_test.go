package tiercodec

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/storage"
)

// fp32Payload builds a synthetic optimizer-state-like payload: normally
// distributed floats around a common scale, so the sign/exponent bytes
// cluster the way real master parameters and Adam moments do — the
// distribution the byte-plane transpose targets.
func fp32Payload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		v := float32(0.25 + rng.NormFloat64()*0.01)
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// randomPayload is incompressible data for the bypass path.
func randomPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func mustTier(t *testing.T, inner storage.Tier, spec Spec) *Tier {
	t.Helper()
	ct, err := New(inner, spec)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestTransposeRoundTrip(t *testing.T) {
	for _, stride := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 3, 7, 8, 63, 64, 1000, 1001, 1002, 1003} {
			src := randomPayload(n, int64(stride*1000+n))
			tp := make([]byte, n)
			back := make([]byte, n)
			transpose(tp, src, stride)
			untranspose(back, tp, stride)
			if !bytes.Equal(src, back) {
				t.Fatalf("stride %d len %d: transpose round trip mismatch", stride, n)
			}
		}
	}
}

func TestRoundTripAllSpecs(t *testing.T) {
	ctx := context.Background()
	payloads := map[string][]byte{
		"fp32":  fp32Payload(10_000, 1),
		"rand":  randomPayload(40_000, 2),
		"tiny":  {1, 2, 3},
		"empty": {},
	}
	for _, spec := range []Spec{
		{Compression: "flate", Integrity: true},
		{Compression: "flate"},
		{Compression: "flate", Level: 6, Stride: 2},
		{Compression: "raw", Integrity: true},
		{Integrity: true},
	} {
		for name, payload := range payloads {
			inner := storage.NewMemTier("mem")
			ct := mustTier(t, inner, spec)
			key := "obj"
			if err := ct.Write(ctx, key, payload); err != nil {
				t.Fatalf("%v/%s: write: %v", spec, name, err)
			}
			got := make([]byte, len(payload))
			if err := ct.Read(ctx, key, got); err != nil {
				t.Fatalf("%v/%s: read: %v", spec, name, err)
			}
			if !bytes.Equal(payload, got) {
				t.Fatalf("%v/%s: round trip mismatch", spec, name)
			}
			if size, err := ct.Size(ctx, key); err != nil || size != int64(len(payload)) {
				t.Fatalf("%v/%s: Size = %d, %v; want raw %d", spec, name, size, err, len(payload))
			}
			enc, err := ct.EncodedSize(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			if enc > int64(len(payload)+HeaderSize) {
				t.Fatalf("%v/%s: encoded %d exceeds raw+header %d (bypass broken)",
					spec, name, enc, len(payload)+HeaderSize)
			}
		}
	}
}

func TestFlateCompressesFP32(t *testing.T) {
	ctx := context.Background()
	ct := mustTier(t, storage.NewMemTier("mem"), Spec{Compression: "flate", Integrity: true})
	payload := fp32Payload(100_000, 3)
	if err := ct.Write(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	enc, _ := ct.EncodedSize(ctx, "obj")
	ratio := float64(len(payload)) / float64(enc)
	if ratio < 1.2 {
		t.Fatalf("FP32 payload compressed only %.2fx (encoded %d / raw %d)", ratio, enc, len(payload))
	}
	st := ct.CodecStats()
	if st.Bypassed != 0 || st.Objects != 1 || st.WriteRatio < 1.2 {
		t.Fatalf("unexpected codec stats: %+v", st)
	}
}

func TestIncompressibleBypass(t *testing.T) {
	ctx := context.Background()
	ct := mustTier(t, storage.NewMemTier("mem"), Spec{Compression: "flate", Integrity: true})
	payload := randomPayload(64_000, 4)
	if err := ct.Write(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	enc, _ := ct.EncodedSize(ctx, "obj")
	if enc != int64(len(payload)+HeaderSize) {
		t.Fatalf("bypassed object stored as %d bytes, want raw+header %d", enc, len(payload)+HeaderSize)
	}
	if st := ct.CodecStats(); st.Bypassed != 1 {
		t.Fatalf("bypass not counted: %+v", st)
	}
	got := make([]byte, len(payload))
	if err := ct.Read(ctx, "obj", got); err != nil || !bytes.Equal(payload, got) {
		t.Fatalf("bypassed object round trip failed: %v", err)
	}
}

// TestCrossCodecDecode proves decoding is header-driven: objects written
// under one spec read back through a tier configured with another, the
// property checkpoint restore relies on across codec changes.
func TestCrossCodecDecode(t *testing.T) {
	ctx := context.Background()
	inner := storage.NewMemTier("mem")
	payload := fp32Payload(5_000, 5)
	writer := mustTier(t, inner, Spec{Compression: "flate", Integrity: true})
	if err := writer.Write(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{{Integrity: true}, {Compression: "raw"}, {Compression: "flate", Level: 9}} {
		reader := mustTier(t, inner, spec)
		got := make([]byte, len(payload))
		if err := reader.Read(ctx, "obj", got); err != nil {
			t.Fatalf("reader %v: %v", spec, err)
		}
		if !bytes.Equal(payload, got) {
			t.Fatalf("reader %v: payload mismatch", spec)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	ctx := context.Background()
	payload := fp32Payload(5_000, 6)
	cases := []struct {
		name   string
		mutate func(obj []byte) []byte
	}{
		{"payload bit flip", func(obj []byte) []byte { obj[HeaderSize+len(obj)/2] ^= 1; return obj }},
		{"header raw-length", func(obj []byte) []byte { obj[8] ^= 1; return obj }},
		{"truncated object", func(obj []byte) []byte { return obj[:len(obj)*3/4] }},
		{"no codec header", func(obj []byte) []byte { return []byte("definitely not encoded") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inner := storage.NewMemTier("mem")
			ct := mustTier(t, inner, Spec{Compression: "flate", Integrity: true})
			if err := ct.Write(ctx, "obj", payload); err != nil {
				t.Fatal(err)
			}
			obj, err := inner.ReadObject(ctx, "obj")
			if err != nil {
				t.Fatal(err)
			}
			if err := inner.Write(ctx, "obj", tc.mutate(obj)); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			err = ct.Read(ctx, "obj", got)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupted read returned %v, want ErrCorrupt", err)
			}
			// Every header-driven entry point must fail typed — never
			// panic or allocate from a corrupted length field.
			if _, err := ct.ReadObject(ctx, "obj"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupted ReadObject returned %v, want ErrCorrupt", err)
			}
			if _, err := ct.Size(ctx, "obj"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupted Size returned %v, want ErrCorrupt", err)
			}
			if ct.CodecStats().IntegrityErrors == 0 {
				t.Fatal("integrity error not counted")
			}
		})
	}
}

// TestCorruptHeaderLengthNoPanic pins the bit-rotted-length backstop: a
// header claiming an absurd raw length must surface as ErrCorrupt from
// every entry point, never as a runaway allocation — with integrity
// (the CRC covers the header) and without it (the format bound and the
// raw-codec length cross-check).
func TestCorruptHeaderLengthNoPanic(t *testing.T) {
	ctx := context.Background()
	payload := fp32Payload(5_000, 20)
	for _, spec := range []Spec{
		{Compression: "flate", Integrity: true},
		{Compression: "flate"},
		{Compression: "raw"},
	} {
		inner := storage.NewMemTier("mem")
		ct := mustTier(t, inner, spec)
		if err := ct.Write(ctx, "obj", payload); err != nil {
			t.Fatal(err)
		}
		obj, _ := inner.ReadObject(ctx, "obj")
		obj[14] ^= 0xFF // rawLen byte 6: claims ~2^55 bytes
		if err := inner.Write(ctx, "obj", obj); err != nil {
			t.Fatal(err)
		}
		if _, err := ct.ReadObject(ctx, "obj"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%v: ReadObject on rotted length returned %v, want ErrCorrupt", spec, err)
		}
		if _, err := ct.Size(ctx, "obj"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%v: Size on rotted length returned %v, want ErrCorrupt", spec, err)
		}
	}
}

// TestCRCDetectsWhatFlateMisses: without integrity, a bit flip in the
// middle of a *raw-coded* payload round-trips silently; with integrity
// it is ErrCorrupt. This is the reason the two stages compose.
func TestCRCDetectsWhatFlateMisses(t *testing.T) {
	ctx := context.Background()
	payload := randomPayload(10_000, 7)
	for _, integrity := range []bool{false, true} {
		inner := storage.NewMemTier("mem")
		ct := mustTier(t, inner, Spec{Compression: "raw", Integrity: integrity})
		if err := ct.Write(ctx, "obj", payload); err != nil {
			t.Fatal(err)
		}
		obj, _ := inner.ReadObject(ctx, "obj")
		obj[HeaderSize+100] ^= 0xFF
		if err := inner.Write(ctx, "obj", obj); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		err := ct.Read(ctx, "obj", got)
		if integrity && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("integrity on: got %v, want ErrCorrupt", err)
		}
		if !integrity && err != nil {
			t.Fatalf("integrity off: raw codec cannot detect the flip, got %v", err)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    string // round-tripped String() of the normalized spec
		enabled bool
		wantErr bool
	}{
		{"", "", false, false},
		{"off", "", false, false},
		{"flate", "flate", true, false},
		{"flate+crc", "flate+crc", true, false},
		{"flate:6+crc", "flate:6+crc", true, false},
		{"crc", "raw+crc", true, false},
		{"raw", "raw", true, false},
		{"none", "raw", true, false},
		{"zstd", "", false, true},
		{"flate:11", "", false, true},
		{"flate+crc+crc+x", "", false, true},
	}
	for _, tc := range cases {
		s, err := ParseSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("ParseSpec(%q): expected error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if s.Enabled() != tc.enabled {
			t.Fatalf("ParseSpec(%q).Enabled() = %v", tc.in, s.Enabled())
		}
		ns, _ := s.normalize()
		if tc.enabled && ns.String() != tc.want {
			t.Fatalf("ParseSpec(%q).String() = %q, want %q", tc.in, ns.String(), tc.want)
		}
	}
}

func TestDescribe(t *testing.T) {
	mem := storage.NewMemTier("mem")
	if d := Describe(mem); d != "" {
		t.Fatalf("plain tier described as %q", d)
	}
	ct := mustTier(t, mem, Spec{Compression: "flate", Integrity: true})
	if d := Describe(ct); d != "flate+crc" {
		t.Fatalf("codec tier described as %q", d)
	}
	if ct.Name() != "mem" {
		t.Fatalf("codec tier must be name-transparent, got %q", ct.Name())
	}
}

func TestWireBytesRecorded(t *testing.T) {
	ctx0 := context.Background()
	ct := mustTier(t, storage.NewMemTier("mem"), Spec{Compression: "flate", Integrity: true})
	payload := fp32Payload(50_000, 8)

	ctx, wc := storage.WithWireCount(ctx0)
	if err := ct.Write(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	enc, _ := ct.EncodedSize(ctx0, "obj")
	if wc.Bytes() != enc {
		t.Fatalf("write recorded %d wire bytes, encoded object is %d", wc.Bytes(), enc)
	}
	if wc.Bytes() >= int64(len(payload)) {
		t.Fatalf("wire bytes %d not smaller than raw %d", wc.Bytes(), len(payload))
	}

	ctx, wc = storage.WithWireCount(ctx0)
	got := make([]byte, len(payload))
	if err := ct.Read(ctx, "obj", got); err != nil {
		t.Fatal(err)
	}
	if wc.Bytes() != enc {
		t.Fatalf("read recorded %d wire bytes, want %d", wc.Bytes(), enc)
	}
}

// TestWireBytesStackedCodecs: with codec layers stacked, the wire count
// reaching the caller's cell must be the *innermost* layer's — the
// bytes the device actually stored — in both stacking directions:
// flate-inside (inner layer shrinks the outer's object) and
// crc-inside (inner layer grows it by a header).
func TestWireBytesStackedCodecs(t *testing.T) {
	ctx0 := context.Background()
	payload := fp32Payload(50_000, 21)
	stacks := map[string]func(mem *storage.MemTier) *Tier{
		"crc-over-flate": func(mem *storage.MemTier) *Tier {
			inner := mustTier(t, mem, Spec{Compression: "flate"})
			return mustTier(t, inner, Spec{Integrity: true})
		},
		"flate-over-crc": func(mem *storage.MemTier) *Tier {
			inner := mustTier(t, mem, Spec{Integrity: true})
			return mustTier(t, inner, Spec{Compression: "flate"})
		},
	}
	for name, mk := range stacks {
		t.Run(name, func(t *testing.T) {
			mem := storage.NewMemTier("mem")
			stack := mk(mem)

			ctx, wc := storage.WithWireCount(ctx0)
			if err := stack.Write(ctx, "obj", payload); err != nil {
				t.Fatal(err)
			}
			stored, err := mem.Size(ctx0, "obj")
			if err != nil {
				t.Fatal(err)
			}
			if wc.Bytes() != stored {
				t.Fatalf("write recorded %d wire bytes, device stored %d", wc.Bytes(), stored)
			}

			ctx, wc = storage.WithWireCount(ctx0)
			got := make([]byte, len(payload))
			if err := stack.Read(ctx, "obj", got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(payload, got) {
				t.Fatal("stacked round trip mismatch")
			}
			if wc.Bytes() != stored {
				t.Fatalf("read recorded %d wire bytes, device stored %d", wc.Bytes(), stored)
			}
		})
	}
}

// TestCopierHardLinkFastPath: a codec-wrapped FileTier's server-side
// copy must preserve the encoded bytes and header exactly (the copy
// decodes identically) and still take the hard-link fast path.
func TestCopierHardLinkFastPath(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ft, err := storage.NewFileTier("nvme", dir)
	if err != nil {
		t.Fatal(err)
	}
	ct := mustTier(t, ft, Spec{Compression: "flate", Integrity: true})
	payload := fp32Payload(20_000, 9)
	if err := ct.Write(ctx, "live", payload); err != nil {
		t.Fatal(err)
	}

	copied, err := storage.TryCopy(ctx, ct, "live", "snap")
	if err != nil || !copied {
		t.Fatalf("TryCopy through codec tier: copied=%v err=%v", copied, err)
	}

	// Encoded bytes (header included) must be byte-identical.
	src, err := ft.ReadObject(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := ft.ReadObject(ctx, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("server-side copy altered encoded bytes")
	}

	// Still the hard-link fast path: same inode on disk.
	fi1, err1 := os.Stat(filepath.Join(dir, "live"))
	fi2, err2 := os.Stat(filepath.Join(dir, "snap"))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !os.SameFile(fi1, fi2) {
		t.Fatal("copy through codec tier lost the hard-link fast path")
	}

	// The snapshot decodes like the source, and survives an overwrite of
	// the live key (Write publishes a fresh inode).
	if err := ct.Write(ctx, "live", fp32Payload(20_000, 10)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := ct.Read(ctx, "snap", got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, got) {
		t.Fatal("snapshot no longer decodes to the original payload")
	}
}

// noCopyTier hides any Copier implementation of the wrapped tier.
type noCopyTier struct{ storage.Tier }

// TestCopierFallback: when the inner tier has no server-side copy, the
// codec tier reports ErrCopyUnsupported and storage.TryCopy signals the
// caller to fall back — and the staged read+write fallback through the
// codec still produces an object that decodes identically.
func TestCopierFallback(t *testing.T) {
	ctx := context.Background()
	ct := mustTier(t, noCopyTier{storage.NewMemTier("mem")}, Spec{Compression: "flate", Integrity: true})
	payload := fp32Payload(10_000, 11)
	if err := ct.Write(ctx, "live", payload); err != nil {
		t.Fatal(err)
	}
	copied, err := storage.TryCopy(ctx, ct, "live", "snap")
	if err != nil || copied {
		t.Fatalf("TryCopy over copy-less inner: copied=%v err=%v, want fallback", copied, err)
	}
	// The caller's fallback: read through the codec, write through the
	// codec (re-encoding is allowed — only decoded equality matters).
	buf := make([]byte, len(payload))
	if err := ct.Read(ctx, "live", buf); err != nil {
		t.Fatal(err)
	}
	if err := ct.Write(ctx, "snap", buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := ct.Read(ctx, "snap", got); err != nil || !bytes.Equal(payload, got) {
		t.Fatalf("fallback copy mismatch: %v", err)
	}
}

func TestFaultTierDeterminism(t *testing.T) {
	ctx := context.Background()
	payload := fp32Payload(1_000, 12)
	ft := NewFaultTier(storage.NewMemTier("mem"), FaultConfig{FailReadEvery: 3, FailWriteEvery: 2})
	for i := 0; i < 6; i++ {
		err := ft.Write(ctx, fmt.Sprintf("k%d", i), payload)
		wantErr := (i+1)%2 == 0
		if (err != nil) != wantErr {
			t.Fatalf("write %d: err=%v, want injected=%v", i, err, wantErr)
		}
		if wantErr && !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: %v, want ErrInjected", i, err)
		}
	}
	dst := make([]byte, len(payload))
	for i := 0; i < 6; i++ {
		err := ft.Read(ctx, "k0", dst)
		wantErr := (i+1)%3 == 0
		if (err != nil) != wantErr {
			t.Fatalf("read %d: err=%v, want injected=%v", i, err, wantErr)
		}
	}
	st := ft.FaultStats()
	if st.WriteErrors != 3 || st.ReadErrors != 2 {
		t.Fatalf("fault stats %+v", st)
	}
}

// TestFaultTransientVsPersistent: read corruption is transient (a retry
// reads clean), write corruption is persistent (every read fails) —
// through a codec tier with integrity, both surface as ErrCorrupt.
func TestFaultTransientVsPersistent(t *testing.T) {
	ctx := context.Background()
	payload := fp32Payload(5_000, 13)
	dst := make([]byte, len(payload))

	// Transient: first read corrupt, retry clean.
	fault := NewFaultTier(storage.NewMemTier("mem"), FaultConfig{CorruptReadEvery: 1})
	ct := mustTier(t, fault, Spec{Compression: "flate", Integrity: true})
	if err := ct.Write(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	fault.cfg.CorruptReadEvery = 2 // corrupt every second read from here
	if err := ct.Read(ctx, "obj", dst); err != nil {
		t.Fatalf("first read (clean per counter): %v", err)
	}
	if err := ct.Read(ctx, "obj", dst); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted read: %v, want ErrCorrupt", err)
	}
	if err := ct.Read(ctx, "obj", dst); err != nil {
		t.Fatalf("retry after transient corruption: %v", err)
	}
	if !bytes.Equal(payload, dst) {
		t.Fatal("retry returned wrong payload")
	}

	// Persistent: the stored object is corrupt; retries keep failing.
	fault2 := NewFaultTier(storage.NewMemTier("mem"), FaultConfig{CorruptWriteEvery: 1})
	ct2 := mustTier(t, fault2, Spec{Compression: "flate", Integrity: true})
	if err := ct2.Write(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ct2.Read(ctx, "obj", dst); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("read %d of persistently corrupt object: %v, want ErrCorrupt", i, err)
		}
	}

	// Torn: a truncated stored object is ErrCorrupt too.
	fault3 := NewFaultTier(storage.NewMemTier("mem"), FaultConfig{TornWriteEvery: 1})
	ct3 := mustTier(t, fault3, Spec{Compression: "flate", Integrity: true})
	if err := ct3.Write(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	if err := ct3.Read(ctx, "obj", dst); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of torn object: %v, want ErrCorrupt", err)
	}
}

// TestCodecTierConcurrency exercises the codec tier under the storage
// concurrency contract: concurrent distinct-key traffic plus same-key
// readers against a same-key writer (through the atomic ObjectReader
// path) must each observe some complete previously written object.
func TestCodecTierConcurrency(t *testing.T) {
	ctx := context.Background()
	ct := mustTier(t, storage.NewMemTier("mem"), Spec{Compression: "flate", Integrity: true})
	const n = 8
	versions := make([][]byte, 4)
	for v := range versions {
		versions[v] = fp32Payload(2_000, int64(100+v))
	}
	for k := 0; k < n; k++ {
		if err := ct.Write(ctx, fmt.Sprintf("k%d", k), versions[0]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]byte, len(versions[0]))
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%n)
				if i%5 == 0 {
					if err := ct.Write(ctx, key, versions[i%len(versions)]); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := ct.Read(ctx, key, dst); err != nil {
					t.Error(err)
					return
				}
				ok := false
				for _, v := range versions {
					if bytes.Equal(dst, v) {
						ok = true
						break
					}
				}
				if !ok {
					t.Error("read observed a torn object")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFaultLatencyExactOnVirtualClock pins the latency-spike channel to
// virtual time: every Nth operation advances the clock by exactly the
// configured spike, the rest advance it not at all, and no real waiting
// happens anywhere.
func TestFaultLatencyExactOnVirtualClock(t *testing.T) {
	clk := clock.NewVirtualAuto()
	ft := NewFaultTier(storage.NewMemTier("mem"), FaultConfig{
		LatencyEvery: 2,
		Latency:      3 * time.Millisecond,
		Clock:        clk,
	})
	ctx := context.Background()
	start := clk.Now()
	payload := []byte{1, 2, 3, 4}
	for i := 0; i < 3; i++ {
		if err := ft.Write(ctx, "k", payload); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, len(payload))
	if err := ft.Read(ctx, "k", dst); err != nil {
		t.Fatal(err)
	}
	// Reads and writes share the latency counter: ops 2 and 4 spiked.
	if got, want := clk.Now().Sub(start), 6*time.Millisecond; got != want {
		t.Errorf("virtual time advanced %v, want exactly %v (2 spikes x 3ms)", got, want)
	}
	if got := ft.FaultStats().LatencySpikes; got != 2 {
		t.Errorf("LatencySpikes = %d, want 2", got)
	}
}

// TestFaultTierHardDown: after the trigger count (or an explicit
// Down()), every operation of every kind fails with storage.ErrTierDown
// and never recovers — an outage, not a transient fault.
func TestFaultTierHardDown(t *testing.T) {
	ctx := context.Background()
	payload := fp32Payload(1_000, 7)
	ft := NewFaultTier(storage.NewMemTier("mem"), FaultConfig{DownAfterOps: 3})
	dst := make([]byte, len(payload))

	// Ops 1-3 succeed; the tier dies after the trigger.
	if err := ft.Write(ctx, "a", payload); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := ft.Write(ctx, "b", payload); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if err := ft.Read(ctx, "a", dst); err != nil {
		t.Fatalf("op 3: %v", err)
	}
	if ft.IsDown() {
		t.Fatal("tier down before the trigger count")
	}

	checks := []struct {
		name string
		op   func() error
	}{
		{"read", func() error { return ft.Read(ctx, "a", dst) }},
		{"write", func() error { return ft.Write(ctx, "c", payload) }},
		{"readObject", func() error { _, err := ft.ReadObject(ctx, "a"); return err }},
		{"delete", func() error { return ft.Delete(ctx, "a") }},
		{"size", func() error { _, err := ft.Size(ctx, "a"); return err }},
		{"keys", func() error { _, err := ft.Keys(ctx); return err }},
		{"copy", func() error { return ft.Copy(ctx, "a", "a2") }},
	}
	for _, c := range checks {
		if err := c.op(); !errors.Is(err, storage.ErrTierDown) {
			t.Fatalf("%s after outage: %v, want ErrTierDown", c.name, err)
		}
	}
	if !ft.IsDown() {
		t.Fatal("IsDown false after the trigger")
	}
	if got := ft.FaultStats().DownFailures; got != int64(len(checks)) {
		t.Fatalf("DownFailures = %d, want %d", got, len(checks))
	}
	// The stored object survives behind the outage (the tier is down,
	// the bytes are not gone — exactly how a lost mount behaves).
	if err := ft.Unwrap().Read(ctx, "a", dst); err != nil {
		t.Fatalf("inner tier lost data: %v", err)
	}
}

// TestFaultTierForcedDown: Down() kills the tier at a chosen moment with
// no op-count trigger configured.
func TestFaultTierForcedDown(t *testing.T) {
	ctx := context.Background()
	ft := NewFaultTier(storage.NewMemTier("mem"), FaultConfig{})
	if err := ft.Write(ctx, "a", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ft.Down()
	if err := ft.Write(ctx, "b", []byte{4}); !errors.Is(err, storage.ErrTierDown) {
		t.Fatalf("write after Down: %v, want ErrTierDown", err)
	}
}
