// Package tiercodec provides transparent, composable storage.Tier
// middleware: every object written through a codec tier is encoded —
// optionally compressed, optionally integrity-protected — and decoded
// back on read, so the layers above keep operating on raw subgroup
// objects while the device moves fewer, checksummed bytes. The engine is
// bandwidth-bound on exactly those transfers (fetch, flush, checkpoint,
// migration), so shrinking bytes-on-the-wire multiplies effective tier
// bandwidth across every path at once.
//
// # Object format
//
// Every encoded object is self-describing: a fixed 20-byte header
// (magic, format version, codec id, flags, transpose stride, raw length,
// CRC32-C) followed by the encoded payload. Decoding is driven entirely
// by the header — a codec tier configured for flate reads raw-coded
// objects and vice versa — which is what keeps checkpoints restorable
// bit-identically across codec reconfigurations: only the *presence* of
// the middleware matters, never which codec wrote an object.
//
//	offset size field
//	0      4    magic "MTC1"
//	4      1    format version (1)
//	5      1    codec id (0 = raw, 1 = flate)
//	6      1    flags (bit 0: payload has CRC32-C)
//	7      1    transpose stride (0/1 = none; 4 for FP32, 2 for FP16)
//	8      8    raw (decoded) object length, little-endian
//	16     4    CRC32-C over header[0:16] + payload, little-endian
//
// # Compression
//
// CodecFlate byte-plane transposes the payload (grouping the clustered
// sign/exponent bytes of FP32/FP16 streams into runs) and DEFLATE-
// compresses it. An object the codec cannot shrink is stored raw
// (codec id 0) — incompressible data never grows past one header and
// never pays decompression on read.
//
// # Integrity
//
// With Integrity enabled the writer records a CRC32-C (Castagnoli) over
// header and payload; the reader verifies it before decoding and returns
// ErrCorrupt on mismatch, so a bit-rotted or torn object is detected
// instead of silently consumed. The engine retries corrupt demand
// fetches (transient, in-flight corruption re-reads clean) and fails
// the phase cleanly when corruption is persistent.
//
// # Accounting
//
// The decorator is transparent to callers — Read/Write move raw bytes,
// Size reports raw lengths — but it records the encoded size of every
// operation through storage.RecordWireBytes, which the aio engine
// attaches to each op. Bandwidth consumers (the placement estimator,
// per-class metrics) therefore keep seeing true device throughput while
// the raw/wire ratio is reported as the compression win.
//
// FaultTier (fault.go) completes the middleware set: a decorator that
// injects read/write errors, torn and corrupted objects, and latency
// spikes for resilience testing.
package tiercodec

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/datastates/mlpoffload/internal/bufpool"
	"github.com/datastates/mlpoffload/internal/storage"
)

// Magic identifies encoded objects.
const Magic uint32 = 0x3143544D // "MTC1" little-endian

// Version is the object format version.
const Version uint8 = 1

// HeaderSize is the fixed encoded-object header length.
const HeaderSize = 20

// flagCRC marks objects whose header records a CRC32-C.
const flagCRC uint8 = 1 << 0

// ErrCorrupt reports an object that failed integrity or structural
// validation on read: bad magic, truncated payload, or checksum
// mismatch. Callers distinguish it from transport errors to retry or
// fail cleanly instead of consuming garbage.
var ErrCorrupt = errors.New("tiercodec: corrupt object")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Spec selects the middleware configuration for one tier. The zero
// value disables the codec entirely (Enabled reports false).
type Spec struct {
	// Compression selects the codec: "" or "raw" stores payloads
	// verbatim (headers and integrity only), "flate" enables the
	// byte-plane-transpose + DEFLATE codec.
	Compression string
	// Level is the DEFLATE level (1..9); 0 means flate.BestSpeed —
	// the codec exists to beat the device, not to win ratio contests.
	Level int
	// Stride is the byte-plane transpose stride: 4 (FP32, the default)
	// or 2 (FP16-dominant payloads). 1 disables the transpose.
	Stride int
	// Integrity records and verifies a CRC32-C per object.
	Integrity bool
}

// Enabled reports whether the spec selects any middleware at all.
func (s Spec) Enabled() bool { return s.Compression != "" || s.Integrity }

// String renders the spec in the form ParseSpec accepts.
func (s Spec) String() string {
	if !s.Enabled() {
		return ""
	}
	comp := s.Compression
	if comp == "" {
		comp = "raw"
	}
	if comp == "flate" && s.Level != 0 && s.Level != defaultLevel {
		comp += ":" + strconv.Itoa(s.Level)
	}
	if s.Integrity {
		comp += "+crc"
	}
	return comp
}

const defaultLevel = 1 // flate.BestSpeed

// normalize validates the spec and fills defaults.
func (s Spec) normalize() (Spec, error) {
	switch s.Compression {
	case "", "raw", "none", "flate":
		if s.Compression == "none" {
			s.Compression = "raw"
		}
	default:
		return s, fmt.Errorf("tiercodec: unknown compression %q (want raw or flate)", s.Compression)
	}
	if s.Level == 0 {
		s.Level = defaultLevel
	}
	if s.Level < 1 || s.Level > 9 {
		return s, fmt.Errorf("tiercodec: flate level %d out of range [1,9]", s.Level)
	}
	switch s.Stride {
	case 0:
		s.Stride = 4
	case 1, 2, 4, 8:
	default:
		return s, fmt.Errorf("tiercodec: transpose stride %d (want 1, 2, 4 or 8)", s.Stride)
	}
	return s, nil
}

// ParseSpec parses a textual codec spec: a compression name ("raw",
// "none", "flate", optionally "flate:9" for a level) with an optional
// "+crc" integrity suffix. "" and "off" yield a disabled spec.
//
//	flate+crc   compression and integrity (the recommended setting)
//	flate:6     compression only, DEFLATE level 6
//	crc         integrity only
//	raw         header only (accounting without compression or CRC)
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" || text == "off" {
		return s, nil
	}
	for i, part := range strings.Split(text, "+") {
		switch {
		case part == "crc":
			s.Integrity = true
		case i == 0:
			name, level, hasLevel := strings.Cut(part, ":")
			s.Compression = name
			if hasLevel {
				l, err := strconv.Atoi(level)
				if err != nil {
					return s, fmt.Errorf("tiercodec: bad level in spec %q", text)
				}
				s.Level = l
			}
		default:
			return s, fmt.Errorf("tiercodec: bad spec %q", text)
		}
	}
	if s.Compression == "crc" { // "crc" alone: integrity without compression
		s.Compression = ""
		s.Integrity = true
	}
	if _, err := s.normalize(); err != nil {
		return s, err
	}
	return s, nil
}

// Stats counts the codec's work. Raw bytes are what callers moved,
// encoded bytes what the device saw (headers included); their ratio is
// the effective-bandwidth multiplier the codec bought.
type Stats struct {
	Objects         int64 // objects encoded (writes)
	Bypassed        int64 // writes stored raw by the incompressible bypass
	RawBytesIn      int64 // raw bytes written by callers
	EncodedBytesOut int64 // encoded bytes handed to the device
	RawBytesOut     int64 // raw bytes returned to readers
	EncodedBytesIn  int64 // encoded bytes read from the device
	IntegrityErrors int64 // reads failed by checksum/structure validation
	WriteRatio      float64
	ReadRatio       float64
}

// Tier is the codec middleware: a storage.Tier decorator encoding every
// object per its Spec on write and decoding by header on read. It
// preserves the inner tier's name (it is transparent to placement) and
// delegates server-side copies, which duplicate encoded bytes verbatim.
type Tier struct {
	inner storage.Tier
	spec  Spec

	objects  atomic.Int64
	bypassed atomic.Int64
	rawIn    atomic.Int64
	encOut   atomic.Int64
	rawOut   atomic.Int64
	encIn    atomic.Int64
	corrupt  atomic.Int64
	reads    atomic.Int64
	writes   atomic.Int64
}

// New wraps inner with the given codec spec. A disabled spec is
// rejected: wrap conditionally at the call site instead.
func New(inner storage.Tier, spec Spec) (*Tier, error) {
	if !spec.Enabled() {
		return nil, fmt.Errorf("tiercodec: spec selects no middleware")
	}
	ns, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	return &Tier{inner: inner, spec: ns}, nil
}

// Unwrap returns the decorated tier.
func (t *Tier) Unwrap() storage.Tier { return t.inner }

// Spec returns the normalized codec spec.
func (t *Tier) Spec() Spec { return t.spec }

// Describe renders the tier's codec configuration ("flate+crc", ...).
func (t *Tier) Describe() string { return t.spec.String() }

// describer lets callers holding a plain storage.Tier ask whether it is
// codec middleware without importing this package's concrete type.
type describer interface{ Describe() string }

// Describe reports the codec configuration of a tier, "" when it is not
// codec middleware. Checkpoint manifests record it so a restore under a
// codec-less tier of encoded objects fails with a clear message instead
// of a size mismatch.
func Describe(t storage.Tier) string {
	if d, ok := t.(describer); ok {
		return d.Describe()
	}
	return ""
}

// Name implements storage.Tier; the decorator is transparent.
func (t *Tier) Name() string { return t.inner.Name() }

// Write implements storage.Tier: encode src per the spec and store the
// self-describing object.
func (t *Tier) Write(ctx context.Context, key string, src []byte) error {
	bp := getScratch(HeaderSize + len(src))
	defer putScratch(bp)
	buf := (*bp)[:HeaderSize]

	id := CodecRaw
	stride := t.spec.Stride
	if t.spec.Compression == "flate" {
		if enc, ok := encodeFlate(buf, src, t.spec.Level, stride); ok {
			id = CodecFlate
			buf = enc
		}
	}
	if id == CodecRaw {
		stride = 1
		buf = append(buf, src...)
		if t.spec.Compression == "flate" {
			t.bypassed.Add(1)
		}
	}
	t.putHeader(buf, id, uint8(stride), uint64(len(src)))

	// Run the inner write under a private wire cell: if a deeper codec
	// layer re-encodes this object, its (device-closer) count wins; the
	// resolved value propagates into the caller's cell exactly once.
	innerCtx, wc := storage.WithWireCount(ctx)
	if err := t.inner.Write(innerCtx, key, buf); err != nil {
		return err
	}
	wire := wc.Bytes()
	if wire == 0 {
		wire = int64(len(buf))
	}
	storage.RecordWireBytes(ctx, wire)
	t.objects.Add(1)
	t.writes.Add(1)
	t.rawIn.Add(int64(len(src)))
	t.encOut.Add(int64(len(buf)))
	return nil
}

// putHeader fills buf's header in place and stamps the CRC when
// integrity is enabled. buf is header + payload.
func (t *Tier) putHeader(buf []byte, id, stride uint8, rawLen uint64) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], Magic)
	buf[4] = Version
	buf[5] = id
	buf[6] = 0
	buf[7] = stride
	le.PutUint64(buf[8:], rawLen)
	le.PutUint32(buf[16:], 0)
	if t.spec.Integrity {
		buf[6] |= flagCRC
		crc := crc32.Update(0, castagnoli, buf[:16])
		crc = crc32.Update(crc, castagnoli, buf[HeaderSize:])
		le.PutUint32(buf[16:], crc)
	}
}

// Read implements storage.Tier: fetch the encoded object, validate it,
// and decode into dst (whose length must equal the raw object length,
// per the Tier contract). The encoded staging buffer is recycled through
// internal/bufpool — a steady-state fetch stream decodes with zero
// per-read allocation.
func (t *Tier) Read(ctx context.Context, key string, dst []byte) error {
	obj, err := t.readInner(ctx, key)
	if err != nil {
		return err
	}
	defer bufpool.Put(obj)
	hdr, err := t.parseHeader(key, obj)
	if err != nil {
		return err
	}
	if hdr.rawLen != int64(len(dst)) {
		return t.fail(key, "raw length %d, caller expects %d", hdr.rawLen, len(dst))
	}
	if err := t.decodePayload(key, hdr, obj[HeaderSize:], dst); err != nil {
		return err
	}
	t.reads.Add(1)
	t.rawOut.Add(int64(len(dst)))
	t.encIn.Add(int64(len(obj)))
	return nil
}

// maxFlateExpansion bounds how much larger than its compressed payload
// a flate object's raw length may legitimately be: DEFLATE's format
// cannot exceed ~1032:1 (one distance/length pair per 258 output bytes
// at ~2 input bits minimum), so a header claiming more is corrupt by
// definition. This keeps the un-checksummed-header backstop *real* — a
// bit-rotted length field is rejected before anything allocates from it
// — while integrity-enabled objects are caught exactly by the CRC
// (which covers the header).
const maxFlateExpansion = 1032

// objHeader is a validated object header.
type objHeader struct {
	id     uint8
	stride int
	rawLen int64
}

// fail counts and returns a corruption error for key.
func (t *Tier) fail(key, format string, args ...any) error {
	t.corrupt.Add(1)
	return fmt.Errorf("%w: %s/%s: %s", ErrCorrupt, t.Name(), key, fmt.Sprintf(format, args...))
}

// parseHeader validates obj's fixed header — structure, CRC when
// flagged, and a hard bound on the claimed raw length — BEFORE any
// caller allocates or decodes based on its fields, so a bit-rotted
// header surfaces as ErrCorrupt rather than a runaway allocation.
func (t *Tier) parseHeader(key string, obj []byte) (objHeader, error) {
	if len(obj) < HeaderSize {
		return objHeader{}, t.fail(key, "short object (%d bytes)", len(obj))
	}
	le := binary.LittleEndian
	if le.Uint32(obj[0:]) != Magic {
		return objHeader{}, t.fail(key, "no codec header (magic %#x; object not written through the codec tier?)", le.Uint32(obj[0:]))
	}
	if obj[4] != Version {
		return objHeader{}, t.fail(key, "unsupported format version %d", obj[4])
	}
	hdr := objHeader{id: obj[5], stride: int(obj[7])}
	flags := obj[6]
	rawLen := le.Uint64(obj[8:])
	if flags&flagCRC != 0 {
		want := le.Uint32(obj[16:])
		var h [16]byte
		copy(h[:], obj[:16])
		crc := crc32.Update(0, castagnoli, h[:])
		crc = crc32.Update(crc, castagnoli, obj[HeaderSize:])
		if crc != want {
			return objHeader{}, t.fail(key, "CRC32-C mismatch (stored %#x, computed %#x)", want, crc)
		}
	}
	payloadLen := int64(len(obj) - HeaderSize)
	// Structural length validation per codec — before any caller
	// allocates from the claimed length, so a rotted length field in an
	// un-checksummed header surfaces as ErrCorrupt, never as a runaway
	// allocation.
	switch hdr.id {
	case CodecRaw:
		if rawLen != uint64(payloadLen) {
			return objHeader{}, t.fail(key, "raw payload %d bytes, header claims %d", payloadLen, rawLen)
		}
	case CodecFlate:
		if rawLen > uint64(payloadLen)*maxFlateExpansion+64 {
			return objHeader{}, t.fail(key, "raw length %d impossible for a %d-byte flate payload", rawLen, payloadLen)
		}
	default:
		return objHeader{}, t.fail(key, "unknown codec id %d (%s)", hdr.id, codecName(hdr.id))
	}
	hdr.rawLen = int64(rawLen)
	if hdr.stride < 1 {
		hdr.stride = 1
	}
	return hdr, nil
}

// decodePayload decompresses payload into dst (len(dst) == hdr.rawLen)
// according to the validated header.
func (t *Tier) decodePayload(key string, hdr objHeader, payload, dst []byte) error {
	switch hdr.id {
	case CodecRaw:
		copy(dst, payload)
		return nil
	case CodecFlate:
		if err := decodeFlate(dst, payload, hdr.stride); err != nil {
			t.corrupt.Add(1)
			return fmt.Errorf("%s/%s: %w", t.Name(), key, err)
		}
		return nil
	default:
		return t.fail(key, "unknown codec id %d (%s)", hdr.id, codecName(hdr.id))
	}
}

// ReadObject implements storage.ObjectReader: one inner fetch, header
// validated (CRC included) before the raw buffer is allocated, decoded
// into a fresh buffer of the header's raw length. Size-then-Read
// callers going through storage.ReadWholeObject therefore move the
// encoded object across the device once, not twice, and keep the
// whole-object atomicity guarantee even through stacked codec layers.
func (t *Tier) ReadObject(ctx context.Context, key string) ([]byte, error) {
	obj, err := t.readInner(ctx, key)
	if err != nil {
		return nil, err
	}
	defer bufpool.Put(obj)
	hdr, err := t.parseHeader(key, obj)
	if err != nil {
		return nil, err
	}
	dst := bufpool.Get(int(hdr.rawLen))
	if err := t.decodePayload(key, hdr, obj[HeaderSize:], dst); err != nil {
		bufpool.Put(dst)
		return nil, err
	}
	t.reads.Add(1)
	t.rawOut.Add(int64(len(dst)))
	t.encIn.Add(int64(len(obj)))
	return dst, nil
}

// Delete implements storage.Tier.
func (t *Tier) Delete(ctx context.Context, key string) error {
	return t.inner.Delete(ctx, key)
}

// Size implements storage.Tier, reporting the *raw* (decoded) length so
// size-based callers (checkpoint Verify, tooling) stay codec-agnostic.
// It must fetch the object to read its header, so it is a cold-path
// call; EncodedSize returns the device-level size cheaply, and readers
// that want the bytes anyway should use ReadObject (one fetch).
func (t *Tier) Size(ctx context.Context, key string) (int64, error) {
	obj, err := t.readInner(ctx, key)
	if err != nil {
		return 0, err
	}
	defer bufpool.Put(obj)
	hdr, err := t.parseHeader(key, obj)
	if err != nil {
		return 0, err
	}
	return hdr.rawLen, nil
}

// readInner fetches this layer's whole encoded object from the inner
// tier and records the device-level wire count into the caller's cell:
// a deeper codec layer's measurement (taken under a private nested
// cell) wins over this layer's own object size, so stacked layers
// always propagate the count closest to the device.
func (t *Tier) readInner(ctx context.Context, key string) ([]byte, error) {
	innerCtx, wc := storage.WithWireCount(ctx)
	obj, err := storage.ReadWholeObject(innerCtx, t.inner, key)
	if err != nil {
		return nil, err
	}
	wire := wc.Bytes()
	if wire == 0 {
		wire = int64(len(obj))
	}
	storage.RecordWireBytes(ctx, wire)
	return obj, nil
}

// EncodedSize returns the stored (wire) size of key.
func (t *Tier) EncodedSize(ctx context.Context, key string) (int64, error) {
	return t.inner.Size(ctx, key)
}

// Keys implements storage.Tier.
func (t *Tier) Keys(ctx context.Context) ([]string, error) {
	return t.inner.Keys(ctx)
}

// Stats implements storage.Tier with *raw* byte counts — the decorator
// is transparent, so its traffic stats mirror what callers moved. The
// device-level view is WireStats; the codec's own win is CodecStats.
func (t *Tier) Stats() storage.Stats {
	return storage.Stats{
		BytesRead:    t.rawOut.Load(),
		BytesWritten: t.rawIn.Load(),
		Reads:        t.reads.Load(),
		Writes:       t.writes.Load(),
	}
}

// WireStats returns the inner tier's (encoded-byte) statistics.
func (t *Tier) WireStats() storage.Stats { return t.inner.Stats() }

// CodecStats returns the codec's raw-vs-encoded accounting.
func (t *Tier) CodecStats() Stats {
	s := Stats{
		Objects:         t.objects.Load(),
		Bypassed:        t.bypassed.Load(),
		RawBytesIn:      t.rawIn.Load(),
		EncodedBytesOut: t.encOut.Load(),
		RawBytesOut:     t.rawOut.Load(),
		EncodedBytesIn:  t.encIn.Load(),
		IntegrityErrors: t.corrupt.Load(),
	}
	if s.EncodedBytesOut > 0 {
		s.WriteRatio = float64(s.RawBytesIn) / float64(s.EncodedBytesOut)
	}
	if s.EncodedBytesIn > 0 {
		s.ReadRatio = float64(s.RawBytesOut) / float64(s.EncodedBytesIn)
	}
	return s
}

// Copy implements storage.Copier by delegating to the inner tier: a
// server-side copy duplicates the encoded bytes (header included)
// verbatim, which is exactly what a snapshot needs — the copy decodes
// identically to its source. Inner tiers without the capability report
// ErrCopyUnsupported so storage.TryCopy falls back to a staged
// read+write through the codec.
func (t *Tier) Copy(ctx context.Context, srcKey, dstKey string) error {
	if c, ok := t.inner.(storage.Copier); ok {
		return c.Copy(ctx, srcKey, dstKey)
	}
	return storage.ErrCopyUnsupported
}
