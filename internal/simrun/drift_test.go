package simrun

import (
	"math"
	"testing"

	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/cluster"
	"github.com/datastates/mlpoffload/internal/engine"
	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/metrics"
	"github.com/datastates/mlpoffload/internal/model"
	"github.com/datastates/mlpoffload/internal/optim"
	"github.com/datastates/mlpoffload/internal/storage"
)

// Sim-vs-real drift tolerances. The simulator and the engine share policy
// code (hostcache order and LRU, placement) but not mechanism: the sim
// models each tier as unit-capacity device links under processor sharing,
// while the engine moves real bytes through storage.Throttled token
// buckets with burst allowances, real goroutine scheduling, and per-object
// subgroup headers. Measured drift on the pinned rig below is ~0.1% on
// update-phase time and ~0.03% on raw bytes (the 16-byte header per
// 48 KiB object); the gates leave headroom over those observations
// without letting a mechanism-level regression (a mis-accounted link, a
// broken cache policy) slip through. Write bytes additionally get one
// flush quantum of slack — see the comment at the assertion.
const (
	driftTolTime  = 0.10  // relative, update phase and total iteration
	driftTolBytes = 0.005 // relative, raw bytes moved per iteration
)

func relDrift(sim, real float64) float64 {
	if real == 0 {
		return math.Abs(sim)
	}
	return math.Abs(sim-real) / real
}

// TestSimVsRealDrift cross-validates the scheduler-based simulator
// pipeline against the real engine running on a virtual clock. Both sides
// get the same rig: one full-duplex storage tier at asymmetric 4/3 MB/s,
// 8 subgroups of 4096 params, a 3-slot host cache, prefetch depth 3, two
// I/O workers, sequential updates, alternating order with skipped gradient
// flushes. Under the virtual clock the engine's CPU work takes zero
// simulated time, so the comparison isolates exactly what the simulator
// claims to model: tier I/O and cache behaviour.
func TestSimVsRealDrift(t *testing.T) {
	const (
		params   = int64(32768)
		sgParams = int64(4096) // M = 8 subgroups
		readBW   = 4e6
		writeBW  = 3e6
		iters    = 6
		warmup   = 2
	)

	// --- Real engine on a driven virtual clock. ---
	v := clock.NewVirtual()
	stopDrive := make(chan struct{})
	go v.Drive(stopDrive)
	defer close(stopDrive)

	// Bursts well below the 48 KiB object size so observed bandwidth
	// tracks the configured rate (see storage.ThrottleConfig).
	tier := storage.NewThrottled(storage.NewMemTier("nvme"), storage.ThrottleConfig{
		ReadBW: readBW, WriteBW: writeBW,
		ReadBurst: 4 << 10, WriteBurst: 4 << 10,
		Clock: v,
	})
	eng, err := engine.New(engine.Config{
		Rank:            0,
		Params:          params,
		SubgroupParams:  sgParams,
		Tiers:           []engine.TierSpec{{Tier: tier, ReadBW: readBW, WriteBW: writeBW}},
		Order:           hostcache.Alternating,
		SkipGradFlush:   true,
		HostCacheSlots:  3,
		PrefetchDepth:   3,
		IOWorkers:       2,
		CPUWorkers:      1,
		KernelWorkers:   1,  // serial kernels: zero virtual time either way
		UpdateWorkers:   -1, // sequential update phase, like the sim consumer
		CoalesceFetches: -1,
		Hyper:           optim.DefaultHyper(),
		GradAccumSteps:  1,
		Clock:           v,
	})
	if err != nil {
		t.Fatal(err)
	}
	realSeries := metrics.Series{Warmup: warmup}
	for i := 0; i < iters; i++ {
		it, iterErr := eng.TrainIteration(i)
		if iterErr != nil {
			eng.Close()
			t.Fatal(iterErr)
		}
		realSeries.Append(it)
	}
	eng.Close()
	real := realSeries.Mean()

	// --- Simulator on the same rig. ---
	// Compute rates are set absurdly high because engine CPU work costs
	// zero virtual time; FullDuplex mirrors Throttled's independent
	// read/write buckets; alpha 0 because a single worker never contends.
	tb := cluster.Testbed{
		Name:         "drift-rig",
		GPUsPerNode:  1,
		GPU:          cluster.GPU{Name: "virtual", MemBytes: 1 << 40, D2HBandwidth: 1e18, TFLOPS: 1e9},
		CPUCores:     8,
		HostMemBytes: 1 << 40,
		NVMe: cluster.StorageTierSpec{
			Name: "nvme", ReadBW: readBW, WriteBW: writeBW,
			SharedNode: true, InterferenceAlpha: 0,
		},
		CPUUpdateParamsPerSec: 1e18,
		GPUUpdateParamsPerSec: 1e18,
		CPUConvertBytesPerSec: 1e18,
		InterconnectBW:        1e18,
	}
	res, err := Run(Config{
		Testbed: tb,
		Model:   model.Config{Name: "drift-32k", NominalParams: params},
		Approach: Approach{
			Name:          "engine-mirror",
			Order:         hostcache.Alternating,
			SkipGradFlush: true,
			PriorityIO:    true,
		},
		SubgroupParams: sgParams,
		Iterations:     iters,
		Warmup:         warmup,
		FullDuplex:     true,
		CacheSlots:     3,
		PrefetchDepth:  3,
		IOWorkers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := res.Mean

	t.Logf("update: sim %.4fs real %.4fs (drift %.3f)", sim.Phases.Update, real.Phases.Update,
		relDrift(sim.Phases.Update, real.Phases.Update))
	t.Logf("total:  sim %.4fs real %.4fs (drift %.3f)", sim.Phases.Total(), real.Phases.Total(),
		relDrift(sim.Phases.Total(), real.Phases.Total()))
	t.Logf("read:   sim %.0fB real %.0fB (drift %.5f)", sim.BytesRead, real.BytesRead,
		relDrift(sim.BytesRead, real.BytesRead))
	t.Logf("write:  sim %.0fB real %.0fB (drift %.5f)", sim.BytesWritten, real.BytesWritten,
		relDrift(sim.BytesWritten, real.BytesWritten))
	t.Logf("cache:  sim %d/%d real %d/%d (hits/misses)",
		sim.CacheHits, sim.CacheMisses, real.CacheHits, real.CacheMisses)

	// The cache policy is shared code over identical order and capacity:
	// steady-state hits and misses must agree exactly.
	if sim.CacheHits != real.CacheHits || sim.CacheMisses != real.CacheMisses {
		t.Errorf("cache behaviour diverged: sim %d hits/%d misses, real %d hits/%d misses",
			sim.CacheHits, sim.CacheMisses, real.CacheHits, real.CacheMisses)
	}
	// Raw bytes differ only by the 16-byte subgroup header the sim omits.
	if d := relDrift(sim.BytesRead, real.BytesRead); d > driftTolBytes {
		t.Errorf("read-byte drift %.4f exceeds %.4f (sim %.0f, real %.0f)",
			d, driftTolBytes, sim.BytesRead, real.BytesRead)
	}
	// Writes carry one extra degree of freedom the reads don't: the
	// engine's flushes are asynchronous and accounted at completion, so
	// the flush of the last subgroup of a measured iteration can land
	// just past the measurement boundary — the post-warmup mean then
	// gains or loses up to one flush quantum depending on real-machine
	// scheduling. Allow exactly that, on top of the relative tolerance.
	flushSlack := (16 + 12*float64(sgParams)) / float64(iters-warmup)
	if d := math.Abs(sim.BytesWritten - real.BytesWritten); d > driftTolBytes*real.BytesWritten+flushSlack {
		t.Errorf("write-byte drift %.0fB exceeds %.0fB + one flush quantum (sim %.0f, real %.0f)",
			d, driftTolBytes*real.BytesWritten, sim.BytesWritten, real.BytesWritten)
	}
	// Timing: the update phase is where all modelled I/O lives.
	if d := relDrift(sim.Phases.Update, real.Phases.Update); d > driftTolTime {
		t.Errorf("update-phase drift %.3f exceeds %.2f (sim %.4fs, real %.4fs)",
			d, driftTolTime, sim.Phases.Update, real.Phases.Update)
	}
	if d := relDrift(sim.Phases.Total(), real.Phases.Total()); d > driftTolTime {
		t.Errorf("iteration drift %.3f exceeds %.2f (sim %.4fs, real %.4fs)",
			d, driftTolTime, sim.Phases.Total(), real.Phases.Total())
	}
	if real.Phases.Update <= 0 || sim.Phases.Update <= 0 {
		t.Errorf("degenerate run: sim update %.4fs, real update %.4fs",
			sim.Phases.Update, real.Phases.Update)
	}
}
