// The scenario matrix: named simulation cells sweeping regimes the paper
// never measured — bursty tier bandwidth, mid-run tier failure with a
// migration storm, codec on/off at 40B and 280B, checkpoint storms from
// hundreds of co-tenant jobs, and vectored-fetch economics in a
// small-object regime. Each cell emits one report in the stable BENCH
// schema (cmd/benchmerge, schema 1) under a distinct
// "simmatrix-<scenario>" name so CI tracks every cell as its own
// trajectory series.
package simrun

import (
	"fmt"

	"github.com/datastates/mlpoffload/internal/cluster"
	"github.com/datastates/mlpoffload/internal/model"
)

// MatrixOptions sizes a matrix run. Zero values keep each scenario's
// paper-scale defaults; CI passes smaller numbers.
type MatrixOptions struct {
	Iterations     int // per-cell iterations (0 = scenario default)
	Warmup         int // warmup iterations dropped from means
	CheckpointJobs int // storm size override (0 = scenario default)
	// Calibration substitutes machine-measured rates (kernel rate is NOT
	// applied to paper-scale cells — Table 1 hardware keeps its spec-sheet
	// update rate; overhead and codec quantities, which Table 1 does not
	// provide, are used wherever the scenario needs them).
	Calibration cluster.Calibration
}

// CellConfig identifies one scenario cell in its report.
type CellConfig struct {
	Scenario       string `json:"scenario"`
	Model          string `json:"model"`
	Testbed        string `json:"testbed"`
	Nodes          int    `json:"nodes"`
	Iterations     int    `json:"iterations"`
	Warmup         int    `json:"warmup"`
	SubgroupParams int64  `json:"subgroup_params"`
	Calibrated     bool   `json:"calibrated"`
}

// CellResult is one variant's measurements within a cell (stable flat
// keys for BENCH trajectory diffing).
type CellResult struct {
	Variant          string  `json:"variant"`
	IterSec          float64 `json:"iter_sec"`
	ForwardSec       float64 `json:"forward_sec"`
	BackwardSec      float64 `json:"backward_sec"`
	UpdateSec        float64 `json:"update_sec"`
	UpdateMParams    float64 `json:"update_mparams_per_sec"`
	ReadGB           float64 `json:"read_gb"`
	WriteGB          float64 `json:"write_gb"`
	WireReadGB       float64 `json:"wire_read_gb"`
	WireWriteGB      float64 `json:"wire_write_gb"`
	CompressionRatio float64 `json:"compression_ratio"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	FetchP50MS       float64 `json:"fetch_p50_ms"`
	FetchP95MS       float64 `json:"fetch_p95_ms"`
	Migrations       int64   `json:"migrations"`
	MisplacedEnd     int     `json:"misplaced_end"`
	CheckpointOps    int64   `json:"checkpoint_ops"`
	CheckpointP95S   float64 `json:"checkpoint_p95_sec"`
	PlanRatio        string  `json:"plan_ratio"`
}

// CellReport is one scenario cell's BENCH-schema report.
type CellReport struct {
	Benchmark     string       `json:"benchmark"`
	Config        CellConfig   `json:"config"`
	Results       []CellResult `json:"results"`
	Speedup       float64      `json:"speedup"`
	SpeedupMetric string       `json:"speedup_metric"`
}

// Scenario is one named cell of the matrix.
type Scenario struct {
	Name  string // report name is "simmatrix-"+Name
	Title string
	run   func(MatrixOptions) (*CellReport, error)
}

// Run executes the scenario.
func (s Scenario) Run(opts MatrixOptions) (*CellReport, error) {
	rep, err := s.run(opts)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	rep.Benchmark = "simmatrix-" + s.Name
	rep.Config.Scenario = s.Name
	return rep, nil
}

// cellResult flattens a simulation result into report keys.
func cellResult(variant string, res *Result) CellResult {
	m := res.Mean
	cr := CellResult{
		Variant:        variant,
		IterSec:        m.Phases.Total(),
		ForwardSec:     m.Phases.Forward,
		BackwardSec:    m.Phases.Backward,
		UpdateSec:      m.Phases.Update,
		ReadGB:         m.BytesRead / 1e9,
		WriteGB:        m.BytesWritten / 1e9,
		WireReadGB:     m.WireBytesRead / 1e9,
		WireWriteGB:    m.WireBytesWritten / 1e9,
		FetchP50MS:     res.FetchP50 * 1e3,
		FetchP95MS:     res.FetchP95 * 1e3,
		Migrations:     res.Migrations,
		MisplacedEnd:   res.MisplacedEnd,
		CheckpointOps:  res.CheckpointOps,
		CheckpointP95S: res.CheckpointP95,
		PlanRatio:      res.PlanRatio,
	}
	if m.Phases.Update > 0 {
		cr.UpdateMParams = float64(m.ParamsUpdated) / m.Phases.Update / 1e6
	}
	if wire := m.WireBytesRead + m.WireBytesWritten; wire > 0 {
		cr.CompressionRatio = (m.BytesRead + m.BytesWritten) / wire
	}
	if tot := m.CacheHits + m.CacheMisses; tot > 0 {
		cr.CacheHitRate = float64(m.CacheHits) / float64(tot)
	}
	return cr
}

// sized applies the option overrides to a cell's default iteration count.
func sized(opts MatrixOptions, defIters, defWarmup int) (iters, warmup int) {
	iters, warmup = defIters, defWarmup
	if opts.Iterations > 0 {
		iters = opts.Iterations
		warmup = min(defWarmup, iters-1)
	}
	if opts.Warmup > 0 && opts.Warmup < iters {
		warmup = opts.Warmup
	}
	return iters, warmup
}

// codecApproach applies the calibrated codec (or a representative bulk
// codec when no measurement is available) to an approach.
func codecApproach(ap Approach, cal cluster.Calibration) Approach {
	if cal.CodecRatio > 1 {
		ap.CodecRatio = cal.CodecRatio
		ap.CodecEncBW = cal.CodecEncBW
		ap.CodecDecBW = cal.CodecDecBW
	} else {
		// PR 4's byte-plane-transpose + DEFLATE on optimizer state:
		// ~1.5x ratio; bulk multi-core transform throughput.
		ap.CodecRatio = 1.5
		ap.CodecEncBW = 2e9
		ap.CodecDecBW = 3e9
	}
	return ap
}

// Scenarios returns the matrix. Every cell is deterministic: the same
// options produce bit-identical reports.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:  "baseline-40b",
			Title: "40B on Testbed-1: DeepSpeed baseline vs paper pipeline vs engine-true pipeline",
			run: func(opts MatrixOptions) (*CellReport, error) {
				iters, warm := sized(opts, 6, 1)
				m, err := model.ByName("40B")
				if err != nil {
					return nil, err
				}
				rep := &CellReport{
					Config:        CellConfig{Model: "40B", Testbed: "Testbed-1", Nodes: 1, Iterations: iters, Warmup: warm, SubgroupParams: 100e6, Calibrated: !opts.Calibration.IsZero()},
					SpeedupMetric: "iter_sec(DeepSpeed ZeRO-3 / engine)",
				}
				var first, last float64
				for _, ap := range []Approach{DeepSpeedZeRO3(), MLPOffload(), EngineTrue()} {
					res, err := Run(Config{Testbed: cluster.Testbed1(), Model: m, Approach: ap, Iterations: iters, Warmup: warm})
					if err != nil {
						return nil, err
					}
					cr := cellResult(ap.Name, res)
					rep.Results = append(rep.Results, cr)
					if first == 0 {
						first = cr.IterSec
					}
					last = cr.IterSec
				}
				rep.Speedup = first / last
				return rep, nil
			},
		},
		{
			Name:  "bursty-pfs-40b",
			Title: "PFS bandwidth drops to 30% mid-run: static plan vs adaptive replanning + live migration",
			run: func(opts MatrixOptions) (*CellReport, error) {
				iters, warm := sized(opts, 8, 1)
				m, err := model.ByName("40B")
				if err != nil {
					return nil, err
				}
				static := EngineTrue()
				static.Name = "static-plan"
				static.AdaptivePlacement = false
				static.LiveMigration = false
				adaptive := EngineTrue()
				adaptive.Name = "adaptive+migration"
				rep := &CellReport{
					Config:        CellConfig{Model: "40B", Testbed: "Testbed-1", Nodes: 1, Iterations: iters, Warmup: warm, SubgroupParams: 100e6, Calibrated: !opts.Calibration.IsZero()},
					SpeedupMetric: "iter_sec(static-plan / adaptive+migration)",
				}
				for _, ap := range []Approach{static, adaptive} {
					res, err := Run(Config{
						Testbed: cluster.Testbed1(), Model: m, Approach: ap,
						Iterations: iters, Warmup: warm,
						PFSLoadFactor: 0.3, PFSLoadAfter: min(2, iters-1),
					})
					if err != nil {
						return nil, err
					}
					rep.Results = append(rep.Results, cellResult(ap.Name, res))
				}
				rep.Speedup = rep.Results[0].IterSec / rep.Results[1].IterSec
				return rep, nil
			},
		},
		{
			Name:  "tier-failure-40b",
			Title: "NVMe collapses to 15% mid-run: replan only vs replan + migration storm",
			run: func(opts MatrixOptions) (*CellReport, error) {
				iters, warm := sized(opts, 8, 1)
				m, err := model.ByName("40B")
				if err != nil {
					return nil, err
				}
				nomig := EngineTrue()
				nomig.Name = "replan-only"
				nomig.LiveMigration = false
				mig := EngineTrue()
				mig.Name = "replan+migration"
				rep := &CellReport{
					Config:        CellConfig{Model: "40B", Testbed: "Testbed-1", Nodes: 1, Iterations: iters, Warmup: warm, SubgroupParams: 100e6, Calibrated: !opts.Calibration.IsZero()},
					SpeedupMetric: "iter_sec(replan-only / replan+migration)",
				}
				for _, ap := range []Approach{nomig, mig} {
					res, err := Run(Config{
						Testbed: cluster.Testbed1(), Model: m, Approach: ap,
						Iterations: iters, Warmup: warm,
						TierFailFactor: 0.15, TierFailTier: 0, TierFailAfter: min(2, iters-1),
					})
					if err != nil {
						return nil, err
					}
					rep.Results = append(rep.Results, cellResult(ap.Name, res))
				}
				rep.Speedup = rep.Results[0].IterSec / rep.Results[1].IterSec
				return rep, nil
			},
		},
		{
			Name:  "codec-40b",
			Title: "40B under congested PFS (25%): tier codec off vs on",
			run:   codecCell("40B", cluster.Testbed1, "Testbed-1", 1, 6),
		},
		{
			Name:  "codec-280b",
			Title: "280B on 8 Testbed-2 nodes under congested PFS (25%): tier codec off vs on",
			run:   codecCell("280B", cluster.Testbed2, "Testbed-2", 8, 4),
		},
		{
			Name:  "ckpt-storm-pfs",
			Title: "Co-tenant checkpoint storm against the shared PFS: FIFO engine vs classed priority",
			run: func(opts MatrixOptions) (*CellReport, error) {
				iters, warm := sized(opts, 6, 1)
				jobs := opts.CheckpointJobs
				if jobs <= 0 {
					jobs = 32
				}
				// Class priority matters exactly when queue waits stay under
				// the 50ms aging bound — beyond it, aged-oldest-first (in
				// the real engine and here) converges to FIFO by design, so
				// a closed-loop saturating storm shows nothing. This cell is
				// the regime classing exists for: small training state
				// objects (12MB) and an open-loop storm of 1MiB co-tenant
				// checkpoint writes at ~1/3 of PFS bandwidth, shallow enough
				// queues that nothing ages. The protected quantity is the
				// fetch tail, not throughput. The host cache is constrained
				// below the working set so every iteration keeps a live
				// fetch + flush stream contending with the storm.
				mdl := model.Config{Name: "1.3B", NominalParams: 13e8}
				fifo := EngineTrue()
				fifo.Name = "fifo"
				fifo.PriorityIO = false
				classed := EngineTrue()
				classed.Name = "classed-priority"
				rep := &CellReport{
					Config:        CellConfig{Model: "1.3B", Testbed: "Testbed-1", Nodes: 1, Iterations: iters, Warmup: warm, SubgroupParams: 1e6, Calibrated: !opts.Calibration.IsZero()},
					SpeedupMetric: "fetch_p95_ms(fifo / classed-priority)",
				}
				for _, ap := range []Approach{fifo, classed} {
					res, err := Run(Config{
						Testbed: cluster.Testbed1(), Model: mdl, Approach: ap,
						SubgroupParams: 1e6, Iterations: iters, Warmup: warm,
						CacheSlots: 96, PrefetchDepth: 2,
						CheckpointJobs: jobs, CheckpointBytes: 1 << 20,
						CheckpointInterval: 0.025,
					})
					if err != nil {
						return nil, err
					}
					rep.Results = append(rep.Results, cellResult(ap.Name, res))
				}
				if rep.Results[1].FetchP95MS > 0 {
					rep.Speedup = rep.Results[0].FetchP95MS / rep.Results[1].FetchP95MS
				}
				return rep, nil
			},
		},
		{
			Name:  "coalesce-microfetch",
			Title: "Cold working-set refill at iobench object scale: per-object fetches vs vectored batch=8",
			run: func(opts MatrixOptions) (*CellReport, error) {
				overhead := opts.Calibration.OpOverheadSec
				if overhead <= 0 {
					// iobench -seq per-object mode (open + submit per
					// object) measured ~8.3us/op on the committed
					// trajectory; the pooled vectored path pays it once per
					// batch.
					overhead = 8.3e-6
				}
				// 1365-param subgroups (~16KB of state, the iobench -seq
				// object scale): per-op cost rivals the transfer, the regime
				// coalescing exists for. One cold iteration on a single GPU
				// worker — the iobench shape itself (one submitter, queue
				// depth bounded) so per-op cost serializes instead of hiding
				// in device sharing — with the cache sized to the working
				// set: the measurement is the refill itself (restart /
				// post-migration repopulation), before the steady-state
				// flush stream takes over the critical path.
				mdl := model.Config{Name: "micro-1M", NominalParams: 1 << 20}
				tb := cluster.Testbed1()
				tb.GPUsPerNode = 1
				single := EngineTrue()
				single.Name = "batch-1"
				single.CoalesceFetches = 1
				batched := EngineTrue()
				batched.Name = "batch-8"
				batched.CoalesceFetches = 8
				rep := &CellReport{
					Config:        CellConfig{Model: "micro-1M", Testbed: "Testbed-1", Nodes: 1, Iterations: 1, Warmup: 0, SubgroupParams: 1365, Calibrated: !opts.Calibration.IsZero()},
					SpeedupMetric: "update_sec(batch-1 / batch-8)",
				}
				for _, ap := range []Approach{single, batched} {
					res, err := Run(Config{
						Testbed: tb, Model: mdl, Approach: ap,
						SubgroupParams: 1365, Iterations: 1, Warmup: 0,
						OpOverhead: overhead, IOWorkers: 1,
						CacheSlots: 1 << 10, PrefetchDepth: 32,
					})
					if err != nil {
						return nil, err
					}
					rep.Results = append(rep.Results, cellResult(ap.Name, res))
				}
				rep.Speedup = rep.Results[0].UpdateSec / rep.Results[1].UpdateSec
				return rep, nil
			},
		},
	}
}

// codecCell builds the codec on/off comparison for one model/testbed.
func codecCell(modelName string, tb func() cluster.Testbed, tbName string, nodes, defIters int) func(MatrixOptions) (*CellReport, error) {
	return func(opts MatrixOptions) (*CellReport, error) {
		iters, warm := sized(opts, defIters, 1)
		m, err := model.ByName(modelName)
		if err != nil {
			return nil, err
		}
		off := EngineTrue()
		off.Name = "codec-off"
		on := codecApproach(EngineTrue(), opts.Calibration)
		on.Name = "codec-on"
		rep := &CellReport{
			Config:        CellConfig{Model: modelName, Testbed: tbName, Nodes: nodes, Iterations: iters, Warmup: warm, SubgroupParams: 100e6, Calibrated: !opts.Calibration.IsZero()},
			SpeedupMetric: "iter_sec(codec-off / codec-on)",
		}
		for _, ap := range []Approach{off, on} {
			res, err := Run(Config{
				Testbed: tb(), Model: m, Approach: ap, Nodes: nodes,
				Iterations: iters, Warmup: warm,
				PFSLoadFactor: 0.25, PFSLoadAfter: 0,
			})
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, cellResult(ap.Name, res))
		}
		rep.Speedup = rep.Results[0].IterSec / rep.Results[1].IterSec
		return rep, nil
	}
}

// ScenarioByName finds one cell.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("simrun: unknown scenario %q", name)
}

// RunMatrix executes the named cells (nil/empty = all) and returns their
// reports in matrix order.
func RunMatrix(names []string, opts MatrixOptions) ([]*CellReport, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*CellReport
	for _, s := range Scenarios() {
		if len(want) > 0 && !want[s.Name] {
			continue
		}
		rep, err := s.Run(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
		delete(want, s.Name)
	}
	if len(want) > 0 {
		for n := range want {
			return nil, fmt.Errorf("simrun: unknown scenario %q", n)
		}
	}
	return out, nil
}
