package simrun

import (
	"testing"

	"github.com/datastates/mlpoffload/internal/cluster"
	"github.com/datastates/mlpoffload/internal/model"
)

func run40B(t *testing.T, ap Approach) *Result {
	t.Helper()
	m, err := model.ByName("40B")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Testbed: cluster.Testbed1(), Model: m, Approach: ap,
		Iterations: 4, Warmup: 1, TraceIteration: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHeadlineSpeedup(t *testing.T) {
	// The paper's headline: MLP-Offload runs iterations ~2.5x faster than
	// DeepSpeed ZeRO-3. Accept 2x-4.5x.
	ds := run40B(t, DeepSpeedZeRO3())
	mlp := run40B(t, MLPOffload())
	speedup := ds.IterTime() / mlp.IterTime()
	if speedup < 2.0 || speedup > 4.5 {
		t.Errorf("speedup = %.2fx (DS %.1fs vs MLP %.1fs), want ~2.5x",
			speedup, ds.IterTime(), mlp.IterTime())
	}
}

func TestUpdatePhaseDominatesBaseline(t *testing.T) {
	// Paper §3.1: at 40B the update phase is ~89% of the iteration and
	// forward is negligible.
	ds := run40B(t, DeepSpeedZeRO3())
	p := ds.Mean.Phases
	if frac := p.Update / p.Total(); frac < 0.75 {
		t.Errorf("update fraction = %.2f, want > 0.75", frac)
	}
	if p.Forward > 0.05*p.Total() {
		t.Errorf("forward = %.1fs of %.1fs — should be negligible", p.Forward, p.Total())
	}
}

func TestBackwardAcceleration(t *testing.T) {
	// Paper: backward accelerated ~13.5x by skipping the FP32 gradient
	// flush. Accept anything >= 5x.
	ds := run40B(t, DeepSpeedZeRO3())
	mlp := run40B(t, MLPOffload())
	ratio := ds.Mean.Phases.Backward / mlp.Mean.Phases.Backward
	if ratio < 5 {
		t.Errorf("backward speedup = %.1fx, want >= 5x", ratio)
	}
}

func TestForwardAnchor(t *testing.T) {
	// Calibration anchor: 40B forward ≈ 0.6s on Testbed-1.
	ds := run40B(t, DeepSpeedZeRO3())
	f := ds.Mean.Phases.Forward
	if f < 0.4 || f > 0.8 {
		t.Errorf("forward = %.2fs, want ~0.6s", f)
	}
}

func TestAblationLaddersMonotone(t *testing.T) {
	m, _ := model.ByName("70B")
	runOne := func(ap Approach) float64 {
		r, err := Run(Config{
			Testbed: cluster.Testbed1(), Model: m, Approach: ap,
			Iterations: 3, Warmup: 1, TraceIteration: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.IterTime()
	}
	prev := runOne(DeepSpeedZeRO3())
	for _, ap := range AblationLadderNVMe()[1:] {
		cur := runOne(ap)
		if cur >= prev {
			t.Errorf("NVMe ladder not monotone at %q: %.1f -> %.1f", ap.Name, prev, cur)
		}
		prev = cur
	}
	prev = runOne(AblationLadderMultiPath()[0])
	for _, ap := range AblationLadderMultiPath()[1:] {
		cur := runOne(ap)
		if cur >= prev {
			t.Errorf("multi-path ladder not monotone at %q: %.1f -> %.1f", ap.Name, prev, cur)
		}
		prev = cur
	}
}

func TestCPUOnly20B(t *testing.T) {
	// Figure 3 anchor: the 20B model's update runs from host memory in
	// ~2.3s with ~100% compute (no disk I/O).
	r, err := Run(Config{
		Testbed: cluster.Testbed1(), Model: model.Baseline20B(),
		Approach: DeepSpeedZeRO3(), CPUOnly: true,
		Iterations: 3, Warmup: 1, TraceIteration: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	upd := r.Mean.Phases.Update
	if upd < 1.5 || upd > 4 {
		t.Errorf("20B CPU update = %.2fs, want ~2.5s", upd)
	}
	if r.Mean.BytesRead != 0 || r.Mean.BytesWritten != 0 {
		t.Error("CPU-only run touched storage tiers")
	}
	if frac := DiskIOFraction(r.Mean, 4); frac > 0.2 {
		t.Errorf("disk fraction = %.2f, want ~0", frac)
	}
}

func TestDiskIOFractionHighWhenOffloaded(t *testing.T) {
	// Figure 3: with SSD offloading ~99% of the update is I/O.
	ds := run40B(t, DeepSpeedZeRO3())
	if frac := DiskIOFraction(ds.Mean, 4); frac < 0.9 {
		t.Errorf("disk I/O fraction = %.2f, want > 0.9", frac)
	}
}

func TestTierDistribution(t *testing.T) {
	mlp := run40B(t, MLPOffload())
	tb := mlp.Mean.TierBytes
	if tb["nvme"] <= 0 || tb["pfs"] <= 0 || tb["host"] <= 0 {
		t.Fatalf("distribution = %v; all three tiers should hold state", tb)
	}
	// NVMe:PFS placement should be bandwidth-proportional ~1.5:1
	// (Testbed-1: min BW 5.3 vs 3.6).
	ratio := tb["nvme"] / tb["pfs"]
	if ratio < 1.1 || ratio > 2.2 {
		t.Errorf("nvme:pfs bytes ratio = %.2f, want ~1.5", ratio)
	}
	// Baseline never touches the PFS.
	ds := run40B(t, DeepSpeedZeRO3())
	if ds.Mean.TierBytes["pfs"] != 0 {
		t.Error("baseline placed state on the PFS")
	}
}

func TestCacheHitsOnlyWithAlternating(t *testing.T) {
	ds := run40B(t, DeepSpeedZeRO3())
	if ds.Mean.CacheHits != 0 {
		t.Errorf("sequential baseline got %d cache hits, want 0", ds.Mean.CacheHits)
	}
	mlp := run40B(t, MLPOffload())
	if mlp.Mean.CacheHits == 0 {
		t.Error("alternating order got no cache hits")
	}
}

func TestUpdateThroughputRange(t *testing.T) {
	// Paper Figure 8: DS ~187 Mparams/s, MLP ~432 Mparams/s at 40B.
	ds := run40B(t, DeepSpeedZeRO3())
	mlp := run40B(t, MLPOffload())
	if thru := ds.Mean.UpdateThroughput(); thru < 100 || thru > 300 {
		t.Errorf("DS update throughput = %.0f M/s, want 100-300", thru)
	}
	if thru := mlp.Mean.UpdateThroughput(); thru < 350 || thru > 800 {
		t.Errorf("MLP update throughput = %.0f M/s, want 350-800", thru)
	}
}

func TestGradAccumAmortizes(t *testing.T) {
	// Figure 13: with gradient accumulation the update cost is amortized
	// but MLP-Offload still wins by >= 40%.
	m, _ := model.ByName("40B")
	runBatch := func(ap Approach, accum int) float64 {
		r, err := Run(Config{
			Testbed: cluster.Testbed1(), Model: m, Approach: ap,
			MicroBatch: 8, GradAccumSteps: accum,
			Iterations: 3, Warmup: 1, TraceIteration: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.IterTime()
	}
	ds1 := runBatch(DeepSpeedZeRO3(), 1)
	ds16 := runBatch(DeepSpeedZeRO3(), 16)
	mlp16 := runBatch(MLPOffload(), 16)
	if ds16 <= ds1 {
		t.Errorf("16x accumulation should lengthen the iteration: %.1f vs %.1f", ds16, ds1)
	}
	if gain := ds16 / mlp16; gain < 1.4 {
		t.Errorf("MLP gain at batch 512 = %.2fx, want >= 1.4x", gain)
	}
}

func TestWeakScaling(t *testing.T) {
	// Figure 11/12 shape: on Testbed-2, iteration time per model shrinks
	// (or holds) as nodes grow with model size, and MLP stays ~2x faster.
	cases := []struct {
		model string
		nodes int
	}{
		{"40B", 1}, {"70B", 2}, {"130B", 4},
	}
	var prevDS float64
	for i, c := range cases {
		m, _ := model.ByName(c.model)
		ds, err := Run(Config{
			Testbed: cluster.Testbed2(), Model: m, Nodes: c.nodes,
			Approach: DeepSpeedZeRO3(), Iterations: 3, Warmup: 1, TraceIteration: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		mlp, err := Run(Config{
			Testbed: cluster.Testbed2(), Model: m, Nodes: c.nodes,
			Approach: MLPOffload(), Iterations: 3, Warmup: 1, TraceIteration: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sp := ds.IterTime() / mlp.IterTime(); sp < 1.4 {
			t.Errorf("%s/%d nodes: speedup %.2fx, want >= 1.4x", c.model, c.nodes, sp)
		}
		if i > 0 && ds.IterTime() > prevDS*1.6 {
			t.Errorf("weak scaling degrades too fast: %.1f -> %.1f", prevDS, ds.IterTime())
		}
		prevDS = ds.IterTime()
	}
}

func TestTraceRecorded(t *testing.T) {
	m, _ := model.ByName("40B")
	r, err := Run(Config{
		Testbed: cluster.Testbed1(), Model: m, Approach: DeepSpeedZeRO3(),
		Iterations: 3, Warmup: 1, TraceIteration: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no per-subgroup trace recorded")
	}
	for _, pt := range r.Trace {
		if pt.ReadBW < 0 || pt.WriteBW < 0 || pt.Pos < 0 {
			t.Errorf("bad trace point %+v", pt)
		}
		if pt.ReadBW > cluster.Testbed1().NVMe.ReadBW*1.01 {
			t.Errorf("trace read BW %.2e exceeds device peak", pt.ReadBW)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := run40B(t, MLPOffload())
	b := run40B(t, MLPOffload())
	if a.IterTime() != b.IterTime() {
		t.Errorf("simulation not deterministic: %.6f vs %.6f", a.IterTime(), b.IterTime())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	tiny := model.Config{Name: "tiny", NominalParams: 100}
	if _, err := Run(Config{Testbed: cluster.Testbed1(), Model: tiny, Nodes: 1000, TraceIteration: -1, Iterations: 2, Warmup: 0}); err == nil {
		t.Error("model too small for worker count accepted")
	}
}

func TestAdaptivePlacementUnderPFSPressure(t *testing.T) {
	// Extension scenario (§3.3 / future work): the PFS loses 80% of its
	// bandwidth mid-run. Adaptive replanning migrates subgroups toward
	// the NVMe and must beat a static microbenchmark split.
	m, _ := model.ByName("40B")
	runOne := func(adaptive bool) float64 {
		ap := MLPOffload()
		ap.AdaptivePlacement = adaptive
		r, err := Run(Config{
			Testbed: cluster.Testbed1(), Model: m, Approach: ap,
			Iterations: 10, Warmup: 4, TraceIteration: -1,
			PFSLoadFactor: 0.2, PFSLoadAfter: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Mean over post-degradation, post-adaptation iterations.
		return r.Mean.Phases.Total()
	}
	static := runOne(false)
	adaptive := runOne(true)
	if adaptive >= static {
		t.Errorf("adaptive (%.1fs) should beat static (%.1fs) under PFS pressure", adaptive, static)
	}
}

func TestPFSLoadSlowsStaticPlacement(t *testing.T) {
	m, _ := model.ByName("40B")
	ap := MLPOffload()
	ap.AdaptivePlacement = false
	clean, err := Run(Config{
		Testbed: cluster.Testbed1(), Model: m, Approach: ap,
		Iterations: 4, Warmup: 1, TraceIteration: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Run(Config{
		Testbed: cluster.Testbed1(), Model: m, Approach: ap,
		Iterations: 4, Warmup: 1, TraceIteration: -1,
		PFSLoadFactor: 0.2, PFSLoadAfter: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.IterTime() <= clean.IterTime() {
		t.Errorf("PFS pressure had no effect: %.1f vs %.1f", loaded.IterTime(), clean.IterTime())
	}
}
