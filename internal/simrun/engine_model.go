// The scheduler-based pipeline: the DES model of the engine as PRs 3/4/8
// left it. Where the original paper pipeline (simrun.go) moves bytes
// directly over tier links, this variant routes every tier operation
// through a des.Sched per (tier, GPU worker) — the analogue of the aio
// engine objects the runtime instantiates per storage path per process —
// adding class-based priority with aging, background live migration after
// replans, codec wire-vs-raw accounting, vectored fetch coalescing,
// per-op submission overhead, co-tenant checkpoint storms, and mid-run
// tier failures.
package simrun

import (
	"fmt"

	"github.com/datastates/mlpoffload/internal/aio"
	"github.com/datastates/mlpoffload/internal/cluster"
	"github.com/datastates/mlpoffload/internal/des"
	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/metrics"
	"github.com/datastates/mlpoffload/internal/placement"
)

// schedTier is one storage device in the scheduler pipeline. The device
// itself is either the paper's half-duplex unit-capacity device-time link
// or (FullDuplex) a pair of independent byte-rate links matching
// storage.Throttled's two token buckets. One Sched per GPU worker feeds it.
type schedTier struct {
	name       string
	spec       cluster.StorageTierSpec
	dev        *des.Link // half-duplex device-time link (nil when full duplex)
	rdev, wdev *des.Link // full-duplex byte links (nil when half duplex)
	mu         *des.Mutex
	scheds     []*des.Sched
}

// scale shifts the tier's delivered bandwidth (external PFS load, mid-run
// device failure). Half-duplex transfers are priced at admission from the
// spec; full-duplex links change rate for in-flight transfers too.
func (t *schedTier) scale(f float64) {
	t.spec.ReadBW *= f
	t.spec.WriteBW *= f
	if t.rdev != nil {
		t.rdev.SetPeak(t.spec.ReadBW)
		t.wdev.SetPeak(t.spec.WriteBW)
	}
}

// schedRun carries the shared state of one scheduler-pipeline run.
type schedRun struct {
	cfg      Config
	sim      *des.Sim
	tiers    []*schedTier
	est      *placement.Estimator
	plan     placement.Plan
	sgParams []int64

	classes []string
	classOf func(aio.Class) int

	codecRatio float64 // raw/wire; 1 = no codec
	encBW      float64 // raw bytes/s; 0 = free
	decBW      float64

	clients   int
	stormStop bool

	fetchLat   []float64
	ckptLat    []float64
	ckptOps    int64
	migrations int64
	migBytes   float64
	traceLog   []string
}

// release drops one pipeline client (worker, storm job, migrator); the
// last one out closes every scheduler so idle service procs exit.
func (r *schedRun) release() {
	r.clients--
	if r.clients == 0 {
		for _, t := range r.tiers {
			for _, sc := range t.scheds {
				sc.Close()
			}
		}
	}
}

// wire converts raw caller bytes to device-level bytes under the codec.
func (r *schedRun) wire(raw float64) float64 { return raw / r.codecRatio }

// readExec returns the service closure for a read: exclusive lock, device
// transfer of the wire bytes, estimator observation, decode cost.
func (r *schedRun) readExec(t *schedTier, raw, wireB float64) func(p *des.Proc) {
	return func(p *des.Proc) {
		if t.mu != nil {
			t.mu.Lock(p)
		}
		t0 := p.Now()
		if t.rdev != nil {
			t.rdev.Transfer(p, wireB)
		} else {
			t.dev.Transfer(p, wireB/t.spec.ReadBW)
		}
		xfer := p.Now() - t0
		if t.mu != nil {
			t.mu.Unlock(p)
		}
		r.est.ObserveRead(t.name, wireB, xfer)
		if r.decBW > 0 && r.codecRatio > 1 {
			p.Sleep(raw / r.decBW)
		}
	}
}

// writeExec is readExec's mirror: encode cost, then the device transfer.
func (r *schedRun) writeExec(t *schedTier, raw, wireB float64) func(p *des.Proc) {
	return func(p *des.Proc) {
		if r.encBW > 0 && r.codecRatio > 1 {
			p.Sleep(raw / r.encBW)
		}
		if t.mu != nil {
			t.mu.Lock(p)
		}
		t0 := p.Now()
		if t.wdev != nil {
			t.wdev.Transfer(p, wireB)
		} else {
			t.dev.Transfer(p, wireB/t.spec.WriteBW)
		}
		xfer := p.Now() - t0
		if t.mu != nil {
			t.mu.Unlock(p)
		}
		r.est.ObserveWrite(t.name, wireB, xfer)
	}
}

// submitWrite queues a write and a bridge proc that records it into the
// iteration accumulator and fires ev on completion.
func (r *schedRun) submitWrite(w int, t *schedTier, class aio.Class, name string, raw float64, it *metrics.Iteration, ev *des.Event) {
	wireB := r.wire(raw)
	op := t.scheds[w].Submit(r.classOf(class), name, raw, r.writeExec(t, raw, wireB))
	r.sim.Spawn(name+".done", func(p *des.Proc) {
		op.Wait(p)
		it.BytesWritten += raw
		it.WireBytesWritten += wireB
		it.WriteTime += op.Latency()
		it.RecordClassIO(r.classes[op.Class()], raw, wireB, op.QueueDelay(), op.Latency()-op.QueueDelay())
		if ev != nil {
			ev.Fire()
		}
	})
}

// pendingFetch tracks one subgroup's in-flight fetch for the update loop.
type pendingFetch struct {
	ev    *des.Event
	op    *des.SchedOp // nil while gated on a migration
	sched *des.Sched
}

// submitFetchBatch queues one (possibly vectored) state read covering the
// batch, plus per-subgroup gradient reads in no-skip mode, and a bridge
// proc that accounts the op and fires each member's event.
func (r *schedRun) submitFetchBatch(w int, tierIdx int, batch []int, grads bool, it *metrics.Iteration, fetches map[int]*pendingFetch) {
	t := r.tiers[tierIdx]
	sc := t.scheds[w]
	var stateRaw float64
	for _, sg := range batch {
		stateRaw += float64(r.sgParams[sg]) * 12
	}
	stateWire := r.wire(stateRaw)
	op := sc.Submit(r.classOf(aio.Prefetch), fmt.Sprintf("w%d.fetch%d", w, batch[0]),
		stateRaw, r.readExec(t, stateRaw, stateWire))
	var gradOps []*des.SchedOp
	var gradRaw float64
	if grads {
		for _, sg := range batch {
			raw := float64(r.sgParams[sg]) * 4
			gradRaw += raw
			gradOps = append(gradOps, sc.Submit(r.classOf(aio.GradRead),
				fmt.Sprintf("w%d.grad%d", w, sg), raw, r.readExec(t, raw, r.wire(raw))))
		}
	}
	evs := make([]*des.Event, len(batch))
	for i, sg := range batch {
		evs[i] = r.sim.NewEvent()
		fetches[sg] = &pendingFetch{ev: evs[i], op: op, sched: sc}
	}
	submitT := r.sim.Now()
	r.sim.Spawn(fmt.Sprintf("w%d.fetch%d.done", w, batch[0]), func(p *des.Proc) {
		op.Wait(p)
		it.RecordClassIO(r.classes[op.Class()], stateRaw, stateWire, op.QueueDelay(), op.Latency()-op.QueueDelay())
		for i, g := range gradOps {
			g.Wait(p)
			raw := float64(r.sgParams[batch[i]]) * 4
			it.RecordClassIO(r.classes[g.Class()], raw, r.wire(raw), g.QueueDelay(), g.Latency()-g.QueueDelay())
		}
		perceived := p.Now() - submitT
		it.BytesRead += stateRaw + gradRaw
		it.WireBytesRead += stateWire + r.wire(gradRaw)
		it.ReadTime += perceived
		r.fetchLat = append(r.fetchLat, perceived)
		for _, ev := range evs {
			ev.Fire()
		}
	})
}

// runSched executes the scheduler-based pipeline. Structure parallels Run;
// see simrun.go for the shared modeling commentary.
func runSched(cfg Config) (*Result, error) {
	tb := cfg.Testbed
	ap := cfg.Approach
	W := tb.GPUsPerNode
	totalParams := cfg.Model.Params()
	shardParams := totalParams / int64(W*cfg.Nodes)
	if shardParams <= 0 {
		return nil, fmt.Errorf("simrun: model too small for %d workers", W*cfg.Nodes)
	}
	M := int((shardParams + cfg.SubgroupParams - 1) / cfg.SubgroupParams)

	sim := des.New()
	r := &schedRun{cfg: cfg, sim: sim, est: placement.NewEstimator(0.5), codecRatio: 1}
	if ap.CodecRatio > 1 {
		r.codecRatio = ap.CodecRatio
		r.encBW = ap.CodecEncBW
		r.decBW = ap.CodecDecBW
	}
	if ap.PriorityIO {
		r.classes = make([]string, aio.NumClasses)
		for i, c := range aio.Classes() {
			r.classes[i] = c.String()
		}
		r.classOf = func(c aio.Class) int { return int(c) }
	} else {
		// Flat FIFO: the pre-PR-3 engine, kept as the storm scenario's
		// contrast arm.
		r.classes = []string{"fifo"}
		r.classOf = func(aio.Class) int { return 0 }
	}
	aging := 0.0
	if ap.PriorityIO {
		aging = ap.AgingThreshold
		if aging <= 0 {
			aging = 0.05 // aio.DefaultAgingThreshold
		}
	}
	ioWorkers := cfg.IOWorkers
	if ioWorkers <= 0 {
		ioWorkers = 2 // aio default worker pool per engine object
	}
	var traceFn func(string)
	if cfg.TraceEvents {
		traceFn = func(line string) { r.traceLog = append(r.traceLog, line) }
	}

	mkTier := func(spec cluster.StorageTierSpec) *schedTier {
		curve := des.CappedInterference(spec.InterferenceAlpha, W)
		t := &schedTier{name: spec.Name, spec: spec}
		if cfg.FullDuplex {
			t.rdev = sim.NewLink(spec.Name+".r", spec.ReadBW, curve)
			t.wdev = sim.NewLink(spec.Name+".w", spec.WriteBW, curve)
		} else {
			t.dev = sim.NewLink(spec.Name, 1.0, curve)
		}
		if ap.ExclusiveIO {
			t.mu = sim.NewMutex()
		}
		t.scheds = make([]*des.Sched, W)
		for w := 0; w < W; w++ {
			t.scheds[w] = sim.NewSched(fmt.Sprintf("%s.w%d", spec.Name, w), des.SchedConfig{
				Workers:  ioWorkers,
				Classes:  r.classes,
				Aging:    aging,
				Overhead: cfg.OpOverhead,
				Trace:    traceFn,
			})
		}
		return t
	}
	if !cfg.CPUOnly {
		r.tiers = append(r.tiers, mkTier(tb.NVMe))
		if ap.UsePFS {
			r.tiers = append(r.tiers, mkTier(tb.PFS))
		}
	}
	if len(r.tiers) == 0 && cfg.CheckpointJobs > 0 {
		return nil, fmt.Errorf("simrun: checkpoint storm needs a storage tier")
	}

	cpu := sim.NewLink("cpu", tb.CPUUpdateParamsPerSec, nil)

	tierNames := make([]string, len(r.tiers))
	if len(r.tiers) > 0 {
		tbw := make([]placement.TierBandwidth, len(r.tiers))
		for i, t := range r.tiers {
			tbw[i] = placement.TierBandwidth{Name: t.name, BW: t.spec.MinBW()}
			r.est.Seed(t.name, t.spec.ReadBW, t.spec.WriteBW)
			tierNames[i] = t.name
		}
		r.plan = placement.NewPlan(M, tbw)
	}

	stateBytesPerSG := float64(cfg.SubgroupParams) * 12
	var slots int
	if ap.Order == hostcache.Alternating {
		cache := tb.HostCacheBytes(totalParams/int64(cfg.Nodes), ap.SkipGradFlush)
		slots = int(float64(cache) / float64(W) / stateBytesPerSG)
		if slots < 3 {
			slots = 3
		}
		if slots > M {
			slots = M
		}
	} else {
		slots = 3
	}
	if cfg.CacheSlots > 0 {
		slots = min(cfg.CacheSlots, M)
	}
	prefetchDepth := min(4, slots)
	if ap.Order != hostcache.Alternating {
		prefetchDepth = 1
	}
	if cfg.PrefetchDepth > 0 {
		prefetchDepth = min(cfg.PrefetchDepth, M)
	}
	coalesce := ap.CoalesceFetches
	if coalesce < 2 {
		coalesce = 1
	}
	migWindow := ap.MigrationWindow
	if migWindow <= 0 {
		migWindow = 2
	}

	tokensPerStep := float64(cfg.Model.SeqLen * cfg.MicroBatch)
	fwdTime := cfg.Model.FLOPsPerToken() * tokensPerStep / (tb.GPU.TFLOPS * 1e12)
	bwdComputeTime := 3 * fwdTime
	commTime := cluster.CollectiveTime(2*2*float64(totalParams)/float64(W), cfg.Nodes, tb.InterconnectBW)

	r.sgParams = make([]int64, M)
	for i := range r.sgParams {
		n := cfg.SubgroupParams
		if rem := shardParams - int64(i)*cfg.SubgroupParams; rem < n {
			n = rem
		}
		r.sgParams[i] = n
	}

	type schedWorkerState struct {
		workerState
		migrating map[int]*des.Event
		migQueue  []int
		migActive int
	}
	workers := make([]*schedWorkerState, W)
	for w := range workers {
		ws := &schedWorkerState{
			workerState: workerState{lru: hostcache.NewLRU(slots), loc: make([]int, M)},
			migrating:   make(map[int]*des.Event),
		}
		for i := range ws.loc {
			if cfg.CPUOnly {
				ws.loc[i] = -1
			} else {
				ws.loc[i] = r.plan.TierFor(i)
			}
		}
		workers[w] = ws
	}

	iters := make([]metrics.Iteration, cfg.Iterations)
	for i := range iters {
		iters[i].TierBytes = make(map[string]float64)
	}
	type phaseStamp struct{ fwdEnd, bwdEnd, updEnd, start float64 }
	stamps := make([]phaseStamp, cfg.Iterations)

	barrier := sim.NewBarrier(W)

	const fp16Bytes = 2.0
	d2h := tb.GPU.D2HBandwidth
	conv := tb.CPUConvertBytesPerSec

	// kickMigration drains a worker's misplaced subgroups toward the plan
	// in the background: up to migWindow concurrent copies at Migration
	// class, each a read from the stale tier plus a write to the planned
	// one (the engine's migrator loop).
	kickMigration := func(w int, ws *schedWorkerState) {
		for sg := 0; sg < M; sg++ {
			if ws.loc[sg] >= 0 && ws.loc[sg] != r.plan.TierFor(sg) && ws.migrating[sg] == nil {
				ws.migQueue = append(ws.migQueue, sg)
				ws.migrating[sg] = sim.NewEvent()
			}
		}
		for ws.migActive < migWindow && len(ws.migQueue) > 0 {
			ws.migActive++
			r.clients++
			sim.Spawn(fmt.Sprintf("w%d.migrator%d", w, ws.migActive), func(p *des.Proc) {
				for len(ws.migQueue) > 0 {
					sg := ws.migQueue[0]
					ws.migQueue = ws.migQueue[1:]
					ev := ws.migrating[sg]
					src, dst := ws.loc[sg], r.plan.TierFor(sg)
					if src < 0 || src == dst {
						delete(ws.migrating, sg)
						ev.Fire()
						continue
					}
					raw := float64(r.sgParams[sg]) * 12
					rd := r.tiers[src].scheds[w].Submit(r.classOf(aio.Migration),
						fmt.Sprintf("w%d.mig%d.r", w, sg), raw, r.readExec(r.tiers[src], raw, r.wire(raw)))
					rd.Wait(p)
					wr := r.tiers[dst].scheds[w].Submit(r.classOf(aio.Migration),
						fmt.Sprintf("w%d.mig%d.w", w, sg), raw, r.writeExec(r.tiers[dst], raw, r.wire(raw)))
					wr.Wait(p)
					ws.loc[sg] = dst
					r.migrations++
					r.migBytes += raw
					delete(ws.migrating, sg)
					ev.Fire()
				}
				ws.migActive--
				r.release()
			})
		}
	}

	fetchBytesOf := func(sg int) float64 {
		if ap.SkipGradFlush {
			return float64(r.sgParams[sg]) * 12
		}
		return float64(r.sgParams[sg]) * 16
	}

	r.clients = W
	for w := 0; w < W; w++ {
		w := w
		ws := workers[w]
		sim.Spawn(fmt.Sprintf("worker%d", w), func(p *des.Proc) {
			for iter := 0; iter < cfg.Iterations; iter++ {
				it := &iters[iter]
				if w == 0 {
					stamps[iter].start = p.Now()
					if cfg.PFSLoadFactor > 0 && cfg.PFSLoadFactor < 1 &&
						iter == cfg.PFSLoadAfter && ap.UsePFS && len(r.tiers) > 1 {
						r.tiers[1].scale(cfg.PFSLoadFactor)
					}
					if cfg.TierFailFactor > 0 && cfg.TierFailFactor < 1 &&
						iter == cfg.TierFailAfter && cfg.TierFailTier < len(r.tiers) {
						r.tiers[cfg.TierFailTier].scale(cfg.TierFailFactor)
					}
				}

				// ---- Forward ----
				p.Sleep(fwdTime * float64(cfg.GradAccumSteps))
				barrier.Await(p)
				if w == 0 {
					stamps[iter].fwdEnd = p.Now()
				}

				// ---- Backward ----
				var prevGradFlush *des.Event
				for a := 0; a < cfg.GradAccumSteps; a++ {
					last := a == cfg.GradAccumSteps-1
					for i := 0; i < M; i++ {
						n := float64(r.sgParams[i])
						p.Sleep(bwdComputeTime / float64(M))
						p.Sleep(n * fp16Bytes / d2h)
						if !ap.SkipGradFlush && last && !cfg.CPUOnly {
							p.Sleep(n * 4 / conv)
							if prevGradFlush != nil {
								prevGradFlush.Wait(p)
							}
							tier := r.tiers[tierOf(ws.loc[i], r.plan, i)]
							ev := sim.NewEvent()
							prevGradFlush = ev
							r.submitWrite(w, tier, aio.Flush, fmt.Sprintf("w%d.gflush%d", w, i), n*4, it, ev)
						}
					}
				}
				if prevGradFlush != nil {
					prevGradFlush.Wait(p)
				}
				if cfg.Nodes > 1 {
					p.Sleep(commTime)
				}
				barrier.Await(p)
				if w == 0 {
					stamps[iter].bwdEnd = p.Now()
				}

				// ---- Update ----
				order := hostcache.UpdateOrder(ap.Order, M, ws.phase)
				fetches := make(map[int]*pendingFetch, prefetchDepth)
				var flushEvents []*des.Event
				inflight := 0
				pending := make([]int, len(order))
				copy(pending, order)
				issue := func() {
					for len(pending) > 0 && inflight < prefetchDepth {
						sgID := pending[0]
						pending = pending[1:]
						if cfg.CPUOnly || ws.loc[sgID] == -1 {
							continue
						}
						if mig := ws.migrating[sgID]; mig != nil {
							// Gated on a background copy: a waiter proc
							// fetches from the post-migration location.
							inflight++
							pf := &pendingFetch{ev: sim.NewEvent()}
							fetches[sgID] = pf
							sg := sgID
							submitT := sim.Now()
							sim.Spawn(fmt.Sprintf("w%d.migwait%d", w, sg), func(mp *des.Proc) {
								mig.Wait(mp)
								if ws.loc[sg] == -1 {
									pf.ev.Fire()
									return
								}
								t := r.tiers[ws.loc[sg]]
								raw := fetchBytesOf(sg)
								wireB := r.wire(raw)
								op := t.scheds[w].Submit(r.classOf(aio.Prefetch),
									fmt.Sprintf("w%d.fetch%d", w, sg), raw, r.readExec(t, raw, wireB))
								pf.op, pf.sched = op, t.scheds[w]
								op.Wait(mp)
								perceived := mp.Now() - submitT
								it.BytesRead += raw
								it.WireBytesRead += wireB
								it.ReadTime += perceived
								it.RecordClassIO(r.classes[op.Class()], raw, wireB, op.QueueDelay(), op.Latency()-op.QueueDelay())
								r.fetchLat = append(r.fetchLat, perceived)
								pf.ev.Fire()
							})
							continue
						}
						tier := ws.loc[sgID]
						batch := []int{sgID}
						// Vectored gather: fill the batch with same-tier
						// subgroups from the prefetch window, skipping (not
						// dropping) entries bound elsewhere — the engine's
						// vectored reads batch per pool file, not per
						// consume-order run. The head is always issued, so a
						// partial batch can never stall the consumer, and
						// the depth window rounds up to batch granularity
						// (outstanding objects <= depth+coalesce-1).
						for i := 0; i < len(pending) && i < prefetchDepth && len(batch) < coalesce; {
							next := pending[i]
							if ws.loc[next] == tier && ws.migrating[next] == nil {
								batch = append(batch, next)
								pending = append(pending[:i], pending[i+1:]...)
							} else {
								i++
							}
						}
						inflight += len(batch)
						r.submitFetchBatch(w, tier, batch, !ap.SkipGradFlush && !cfg.CPUOnly, it, fetches)
					}
				}
				issue()
				for _, sgID := range order {
					n := float64(r.sgParams[sgID])
					if pf, ok := fetches[sgID]; ok {
						if !pf.ev.Fired() && pf.op != nil {
							// The consumer is blocked on it right now:
							// promote prefetch → demand fetch (aio's
							// promotion path).
							pf.sched.Promote(pf.op)
						}
						pf.ev.Wait(p)
						delete(fetches, sgID)
						inflight--
						it.CacheMisses++
						ws.loc[sgID] = -1
					} else if !cfg.CPUOnly {
						it.CacheHits++
					}
					if ap.SkipGradFlush {
						p.Sleep(n * 4 / conv)
					}
					t0 := p.Now()
					cpu.Transfer(p, n)
					it.UpdateComputeTime += p.Now() - t0
					p.Sleep(n * fp16Bytes / d2h)
					if !cfg.CPUOnly {
						evicted, did := ws.lru.Touch(sgID)
						if did {
							if len(flushEvents) >= 2 {
								flushEvents[len(flushEvents)-2].Wait(p)
							}
							dst := r.plan.TierFor(evicted)
							ws.loc[evicted] = dst
							ev := sim.NewEvent()
							flushEvents = append(flushEvents, ev)
							r.submitWrite(w, r.tiers[dst], aio.Flush,
								fmt.Sprintf("w%d.flush%d", w, evicted), float64(r.sgParams[evicted])*12, it, ev)
						}
					}
					issue()
				}
				for _, ev := range flushEvents {
					ev.Wait(p)
				}
				ws.phase++
				it.ParamsUpdated += shardParams
				barrier.Await(p)
				if w == 0 {
					stamps[iter].updEnd = p.Now()
					if ap.AdaptivePlacement && len(r.tiers) > 1 {
						r.plan = placement.NewPlan(M, r.est.Bandwidths(tierNames, 1))
					}
				}
				barrier.Await(p)
				// Background convergence toward the fresh plan; skipped
				// after the final iteration (nothing left to serve).
				if ap.LiveMigration && len(r.tiers) > 1 && iter < cfg.Iterations-1 {
					kickMigration(w, ws)
				}
			}
			if w == 0 {
				r.stormStop = true
			}
			r.release()
		})
	}

	// Co-tenant checkpoint storm: each job keeps one Checkpoint-class
	// write in flight against the persistent tier for the whole run.
	if cfg.CheckpointJobs > 0 {
		target := r.tiers[len(r.tiers)-1]
		ckptBytes := cfg.CheckpointBytes
		if ckptBytes <= 0 {
			ckptBytes = stateBytesPerSG
		}
		r.clients += cfg.CheckpointJobs
		for j := 0; j < cfg.CheckpointJobs; j++ {
			j := j
			w := j % W
			sim.Spawn(fmt.Sprintf("ckptjob%d", j), func(p *des.Proc) {
				if cfg.CheckpointInterval > 0 {
					// Staggered starts: real co-tenants are not in lockstep.
					p.Sleep(cfg.CheckpointInterval * float64(j) / float64(cfg.CheckpointJobs))
				}
				for !r.stormStop {
					// External tenants bypass our codec: raw == wire.
					op := target.scheds[w].Submit(r.classOf(aio.Checkpoint),
						fmt.Sprintf("ckpt%d", j), ckptBytes, r.writeExec(target, ckptBytes, ckptBytes))
					op.Wait(p)
					r.ckptOps++
					r.ckptLat = append(r.ckptLat, op.Latency())
					if cfg.CheckpointInterval > 0 {
						p.Sleep(cfg.CheckpointInterval)
					}
				}
				r.release()
			})
		}
	}

	if err := sim.Run(); err != nil {
		return nil, fmt.Errorf("simrun: %w", err)
	}

	res := &Result{Config: cfg, CacheSlotsPerWorker: slots}
	if len(r.tiers) > 0 {
		res.PlanRatio = r.plan.Ratio()
	}
	res.Series.Warmup = cfg.Warmup
	for i := range iters {
		st := stamps[i]
		iters[i].Phases = metrics.Phases{
			Forward:  st.fwdEnd - st.start,
			Backward: st.bwdEnd - st.fwdEnd,
			Update:   st.updEnd - st.bwdEnd,
		}
		res.Series.Append(iters[i])
	}
	plainWorkers := make([]*workerState, W)
	for w := range workers {
		plainWorkers[w] = &workers[w].workerState
	}
	mean := res.Series.Mean()
	mean.TierBytes = schedTierDistribution(plainWorkers, r.sgParams, r.tiers)
	res.Mean = mean

	// Run-level class accounting, aggregated across every scheduler in a
	// fixed (tier, worker) order so percentile inputs are deterministic.
	res.Classes = make(map[string]ClassStat, len(r.classes))
	for c, name := range r.classes {
		var cs ClassStat
		var lat []float64
		for _, t := range r.tiers {
			for _, sc := range t.scheds {
				st := sc.ClassStats(c)
				cs.Ops += st.Ops
				cs.Bytes += st.Bytes
				cs.QueueDelay += st.QueueDelay
				cs.Service += st.Service
				lat = append(lat, sc.Latencies(c)...)
			}
		}
		cs.WireBytes = cs.Bytes / r.codecRatio
		cs.P50 = des.Percentile(lat, 50)
		cs.P95 = des.Percentile(lat, 95)
		if cs.Ops > 0 {
			res.Classes[name] = cs
		}
	}
	res.Migrations = r.migrations
	res.MigratedBytes = r.migBytes
	res.FetchP50 = des.Percentile(r.fetchLat, 50)
	res.FetchP95 = des.Percentile(r.fetchLat, 95)
	res.CheckpointOps = r.ckptOps
	res.CheckpointP95 = des.Percentile(r.ckptLat, 95)
	res.EventTrace = r.traceLog
	for _, ws := range workers {
		for sg, loc := range ws.loc {
			if loc >= 0 && loc != r.plan.TierFor(sg) {
				res.MisplacedEnd++
			}
		}
	}
	return res, nil
}

// schedTierDistribution mirrors tierDistribution for the scheduler
// pipeline's tier type.
func schedTierDistribution(workers []*workerState, sgParams []int64, tiers []*schedTier) map[string]float64 {
	out := make(map[string]float64)
	for _, ws := range workers {
		for i, loc := range ws.loc {
			b := float64(sgParams[i]) * 12
			if loc == -1 {
				out["host"] += b
			} else {
				out[tiers[loc].name] += b
			}
		}
	}
	return out
}
