// Calibration: deriving simulator inputs from measured BENCH trajectory
// documents (the schema-1 JSON cmd/benchmerge emits in CI). The simulator's
// hardware numbers come from the paper's Table 1; the quantities Table 1
// does not provide — kernel rates, per-op submission overhead, codec
// ratios and transform throughputs — are exactly the ones the bench
// pipeline measures on every push, so the matrix reads them from there.
package simrun

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/datastates/mlpoffload/internal/cluster"
)

// benchDoc is the subset of the schema-1 BENCH document calibration reads.
type benchDoc struct {
	Schema       int    `json:"schema"`
	Run          string `json:"run"`
	GoBenchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"go_benchmarks"`
	Reports map[string]json.RawMessage `json:"reports"`
}

// seqFetchReport is the iobench -seq report shape (cmd/iobench).
type seqFetchReport struct {
	Config struct {
		ObjectBytes int `json:"object_bytes"`
		Batch       int `json:"batch"`
	} `json:"config"`
	Results []struct {
		Mode    string  `json:"mode"`
		Ops     int64   `json:"ops"`
		AvgOpUS float64 `json:"avg_op_us"`
	} `json:"results"`
}

// codecBenchReport is the iobench -codec report shape (cmd/iobench).
type codecBenchReport struct {
	Config struct {
		TierBW float64 `json:"tier_bw_bytes_per_sec"`
	} `json:"config"`
	Results []struct {
		Mode      string  `json:"mode"`
		WriteMBps float64 `json:"write_mbps"`
		ReadMBps  float64 `json:"read_mbps"`
		Ratio     float64 `json:"compression_ratio"`
	} `json:"results"`
}

// LoadCalibration reads a BENCH_*.json file and derives a Calibration.
func LoadCalibration(path string) (cluster.Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return cluster.Calibration{}, err
	}
	return CalibrationFromBench(data)
}

// CalibrationFromBench derives measured rates from one schema-1 BENCH
// document. Quantities whose source benchmark is absent stay zero (the
// testbed's defaults apply); an unparseable or wrong-schema document is an
// error.
func CalibrationFromBench(data []byte) (cluster.Calibration, error) {
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return cluster.Calibration{}, fmt.Errorf("calibrate: %w", err)
	}
	if doc.Schema != 1 {
		return cluster.Calibration{}, fmt.Errorf("calibrate: unsupported BENCH schema %d", doc.Schema)
	}
	var cal cluster.Calibration

	// Adam kernel rate: the StepFP16KernelPool benchmark reports MB/s of
	// optimizer-state traffic at 14 B/param (P+M+V+G16); take the best
	// variant (serial vs pooled — whichever this machine ran faster).
	for _, b := range doc.GoBenchmarks {
		if !strings.HasPrefix(b.Name, "BenchmarkStepFP16KernelPool") {
			continue
		}
		if mbps := b.Metrics["MB/s"]; mbps > 0 {
			if pps := mbps * 1e6 / 14; pps > cal.UpdateParamsPerSec {
				cal.UpdateParamsPerSec = pps
			}
		}
	}

	// Per-op submission overhead: the seq-fetch scenario measures the same
	// bytes per-object (one op each) and coalesced (one op per batch); the
	// per-object latency difference is the fixed cost batching amortizes.
	// Prefer the fdcache mode as the singleton baseline — the engine's
	// real path keeps descriptors cached, so reopen cost is not overhead.
	if raw, ok := doc.Reports["iobench-seq-fetch"]; ok {
		var rep seqFetchReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return cluster.Calibration{}, fmt.Errorf("calibrate: iobench-seq-fetch: %w", err)
		}
		batch := rep.Config.Batch
		if batch < 1 {
			batch = 1
		}
		var single, coalesced float64
		for _, r := range rep.Results {
			switch r.Mode {
			case "per-object":
				if single == 0 {
					single = r.AvgOpUS
				}
			case "fdcache":
				single = r.AvgOpUS
			case "coalesced":
				coalesced = r.AvgOpUS / float64(batch)
			}
		}
		if single > 0 && coalesced > 0 && single > coalesced {
			cal.OpOverheadSec = (single - coalesced) * 1e-6
		}
	}

	// Codec: ratio plus encode/decode CPU throughput, inverted from the
	// effective bandwidths — 1/effective = 1/(ratio*device) + 1/transform.
	if raw, ok := doc.Reports["iobench-codec"]; ok {
		var rep codecBenchReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return cluster.Calibration{}, fmt.Errorf("calibrate: iobench-codec: %w", err)
		}
		dev := rep.Config.TierBW
		for _, r := range rep.Results {
			if r.Mode == "off" || r.Ratio <= 1 {
				continue
			}
			cal.CodecRatio = r.Ratio
			cal.CodecEncBW = transformBW(r.WriteMBps*1e6, r.Ratio, dev)
			cal.CodecDecBW = transformBW(r.ReadMBps*1e6, r.Ratio, dev)
			break
		}
	}
	return cal, nil
}

// transformBW inverts the serial pipeline model: with effective raw-byte
// throughput eff over a device moving wire bytes at dev, the transform's
// throughput x satisfies 1/eff = 1/(ratio*dev) + 1/x. Returns 0 (free)
// when the measurement is missing or at/above the device ceiling.
func transformBW(eff, ratio, dev float64) float64 {
	if eff <= 0 || dev <= 0 {
		return 0
	}
	denom := 1/eff - 1/(ratio*dev)
	if denom <= 0 {
		return 0
	}
	return 1 / denom
}
