package simrun

import (
	"math"
	"testing"

	"github.com/datastates/mlpoffload/internal/cluster"
)

// TestCalibrationFromCommittedBench parses the committed PR-8 trajectory
// fixture and checks the derived rates against hand computation.
func TestCalibrationFromCommittedBench(t *testing.T) {
	cal, err := LoadCalibration("../../bench/BENCH_pr8.json")
	if err != nil {
		t.Fatal(err)
	}
	// Best StepFP16KernelPool in the fixture: 2067.28 MB/s at 14 B/param.
	wantPPS := 2067.28e6 / 14
	if math.Abs(cal.UpdateParamsPerSec-wantPPS)/wantPPS > 1e-9 {
		t.Errorf("UpdateParamsPerSec = %g, want %g", cal.UpdateParamsPerSec, wantPPS)
	}
	// fdcache avg 3.3223125 us minus coalesced 9.0328125/4 us.
	wantOv := (3.3223125 - 9.0328125/4) * 1e-6
	if math.Abs(cal.OpOverheadSec-wantOv) > 1e-12 {
		t.Errorf("OpOverheadSec = %g, want %g", cal.OpOverheadSec, wantOv)
	}
	// The fixture has no iobench-codec report: codec fields stay zero.
	if cal.CodecRatio != 0 || cal.CodecEncBW != 0 || cal.CodecDecBW != 0 {
		t.Errorf("codec fields = %+v, want zero", cal)
	}
	if cal.IsZero() {
		t.Error("calibration unexpectedly zero")
	}
}

// TestCalibrationFromSyntheticBench covers the codec inversion and schema
// rejection paths.
func TestCalibrationFromSyntheticBench(t *testing.T) {
	doc := []byte(`{
		"schema": 1, "run": "test",
		"go_benchmarks": [
			{"name": "BenchmarkStepFP16KernelPool/workers=2", "metrics": {"MB/s": 1400}},
			{"name": "BenchmarkUnrelated", "metrics": {"MB/s": 99999}}
		],
		"reports": {
			"iobench-codec": {
				"benchmark": "iobench-codec",
				"config": {"tier_bw_bytes_per_sec": 100e6},
				"results": [
					{"mode": "off", "write_mbps": 100, "read_mbps": 100, "compression_ratio": 1},
					{"mode": "transpose+deflate", "write_mbps": 120, "read_mbps": 150, "compression_ratio": 1.5}
				]
			}
		}
	}`)
	cal, err := CalibrationFromBench(doc)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1400e6 / 14.0; cal.UpdateParamsPerSec != want {
		t.Errorf("UpdateParamsPerSec = %g, want %g", cal.UpdateParamsPerSec, want)
	}
	if cal.CodecRatio != 1.5 {
		t.Errorf("CodecRatio = %g, want 1.5", cal.CodecRatio)
	}
	// 1/enc = 1/120e6 - 1/150e6 => enc = 600e6; 1/dec = 1/150e6 - 1/150e6 => free.
	if math.Abs(cal.CodecEncBW-600e6)/600e6 > 1e-9 {
		t.Errorf("CodecEncBW = %g, want 600e6", cal.CodecEncBW)
	}
	if cal.CodecDecBW != 0 {
		t.Errorf("CodecDecBW = %g, want 0 (at device ceiling)", cal.CodecDecBW)
	}

	if _, err := CalibrationFromBench([]byte(`{"schema": 2}`)); err == nil {
		t.Error("schema 2 accepted, want error")
	}
	if _, err := CalibrationFromBench([]byte(`not json`)); err == nil {
		t.Error("garbage accepted, want error")
	}
}

// TestCalibratedTestbed: substitution only where measurements exist.
func TestCalibratedTestbed(t *testing.T) {
	tb := cluster.Testbed1()
	cal := cluster.Calibration{UpdateParamsPerSec: 150e6}
	got := tb.Calibrated(cal)
	if got.CPUUpdateParamsPerSec != cal.UpdateParamsPerSec {
		t.Errorf("CPUUpdateParamsPerSec = %g, want %g", got.CPUUpdateParamsPerSec, cal.UpdateParamsPerSec)
	}
	if got.NVMe.ReadBW != tb.NVMe.ReadBW {
		t.Errorf("NVMe bandwidth changed by calibration")
	}
	zero := tb.Calibrated(cluster.Calibration{})
	if zero.CPUUpdateParamsPerSec != tb.CPUUpdateParamsPerSec {
		t.Errorf("zero calibration changed the testbed")
	}
	if !(cluster.Calibration{}).IsZero() {
		t.Error("zero calibration not IsZero")
	}
}
