// Package simrun executes the offloading pipelines of both runtimes —
// DeepSpeed ZeRO-3 and MLP-Offload — on the discrete-event simulator at
// paper scale (40B-280B parameters, terabytes of optimizer state), using
// the same policy packages as the real engine: hostcache ordering/LRU,
// placement (Eq. 1), and per-tier exclusive concurrency control.
//
// The hardware model comes from cluster.Testbed (Table 1): per-direction
// NVMe and PFS links with contention-efficiency curves, a processor-sharing
// CPU update resource, per-GPU D2H bandwidth, and the two calibration
// anchors the paper quotes (GPU forward time, CPU update rate). Everything
// the experiments report — phase breakdowns, update throughput, effective
// I/O, tier distribution, cache hits — is measured from simulated
// transfers, not computed analytically.
package simrun

import (
	"fmt"
	"math"

	"github.com/datastates/mlpoffload/internal/cluster"
	"github.com/datastates/mlpoffload/internal/des"
	"github.com/datastates/mlpoffload/internal/hostcache"
	"github.com/datastates/mlpoffload/internal/metrics"
	"github.com/datastates/mlpoffload/internal/model"
	"github.com/datastates/mlpoffload/internal/placement"
)

// Approach is a named bundle of the toggleable design principles.
type Approach struct {
	Name          string
	Order         hostcache.Order
	SkipGradFlush bool // delayed in-place FP16→FP32 conversion
	ExclusiveIO   bool // node-level per-tier exclusive access
	UsePFS        bool // multi-path virtual tier (NVMe + PFS)
	// AdaptivePlacement re-plans the subgroup→tier split at every
	// iteration boundary from EWMA-smoothed observed bandwidths (§3.3's
	// B_i adjustment); otherwise the microbenchmark split is kept.
	AdaptivePlacement bool

	// The fields below model the post-paper engine (PRs 3/4/8). Any of
	// them being set routes the run through the scheduler-based pipeline
	// (engine_model.go); all zero keeps the original paper pipeline
	// bit-for-bit.

	// PriorityIO routes every tier operation through a class-based
	// multi-level queue (DemandFetch > GradRead > Prefetch > Flush >
	// Checkpoint > Migration) with aging, mirroring internal/aio. When
	// false but another scheduler feature is on, ops run through a
	// single-class FIFO — the contrast the checkpoint-storm scenario
	// measures.
	PriorityIO bool
	// AgingThreshold is the starvation bound in seconds; 0 means the aio
	// default (50ms) when PriorityIO is on.
	AgingThreshold float64
	// LiveMigration moves misplaced offloaded subgroups toward the plan in
	// the background after each replan (PR 3), instead of waiting for
	// natural eviction traffic to converge.
	LiveMigration bool
	// MigrationWindow bounds concurrent background copies per worker
	// (0 = 2, the engine default).
	MigrationWindow int
	// CoalesceFetches batches up to this many adjacent same-tier fetches
	// into one vectored scheduler op (PR 8), paying the per-op overhead
	// once. <2 disables.
	CoalesceFetches int
	// CodecRatio > 1 models a compression codec on every tier (PR 4):
	// devices move bytes/CodecRatio wire bytes while the CPU pays
	// raw/CodecEncBW (writes) and raw/CodecDecBW (reads) seconds.
	// CodecEncBW/CodecDecBW of 0 mean free transforms.
	CodecRatio float64
	CodecEncBW float64
	CodecDecBW float64
}

// EngineTrue returns the approach matching the engine as PRs 1-8 left it:
// all paper principles plus priority scheduling, live migration, and fetch
// coalescing.
func EngineTrue() Approach {
	a := MLPOffload()
	a.Name = "MLP-Offload (engine)"
	a.PriorityIO = true
	a.LiveMigration = true
	a.CoalesceFetches = 4
	return a
}

// DeepSpeedZeRO3 is the baseline: sequential order, FP32 gradient flushes,
// shared uncoordinated NVMe access, no PFS.
func DeepSpeedZeRO3() Approach {
	return Approach{Name: "DeepSpeed ZeRO-3"}
}

// MLPOffload enables all design principles.
func MLPOffload() Approach {
	return Approach{
		Name:              "MLP-Offload",
		Order:             hostcache.Alternating,
		SkipGradFlush:     true,
		ExclusiveIO:       true,
		UsePFS:            true,
		AdaptivePlacement: true,
	}
}

// AblationLadderNVMe returns the Figure 14 ladder: optimizations enabled
// progressively, all NVMe-only.
func AblationLadderNVMe() []Approach {
	return []Approach{
		DeepSpeedZeRO3(),
		{Name: "Enable Caching", Order: hostcache.Alternating},
		{Name: "Skip Gradients", Order: hostcache.Alternating, SkipGradFlush: true},
		{Name: "Process Atomic R/W", Order: hostcache.Alternating, SkipGradFlush: true, ExclusiveIO: true},
	}
}

// AblationLadderMultiPath returns the Figure 15 ladder: NVMe+PFS with
// optimizations enabled progressively.
func AblationLadderMultiPath() []Approach {
	return []Approach{
		{Name: "Multi-Path (with caching)", Order: hostcache.Alternating, UsePFS: true},
		{Name: "MP Skip Grads", Order: hostcache.Alternating, SkipGradFlush: true, UsePFS: true},
		{Name: "Our Approach", Order: hostcache.Alternating, SkipGradFlush: true, ExclusiveIO: true, UsePFS: true},
	}
}

// Config describes one simulated run.
type Config struct {
	Testbed  cluster.Testbed
	Model    model.Config
	Nodes    int
	Approach Approach
	// SubgroupParams is the subgroup size (paper methodology: 100e6).
	SubgroupParams int64
	// MicroBatch is samples per GPU per forward/backward (paper default 1;
	// the gradient-accumulation study uses 8).
	MicroBatch int
	// GradAccumSteps is forward/backward passes per update phase.
	GradAccumSteps int
	// Iterations and Warmup control measurement (paper: 10 and 2).
	Iterations int
	Warmup     int
	// CPUOnly marks the 20B baseline whose optimizer state fits in host
	// memory: updates run from host with no third-level I/O.
	CPUOnly bool
	// TraceIteration, when >= 0, records per-subgroup I/O throughput for
	// worker 0 during that iteration (Figure 5).
	TraceIteration int
	// PFSLoadFactor, when in (0,1), scales the PFS bandwidth down from
	// iteration PFSLoadAfter onward — external batch jobs pressuring the
	// shared file system (the fluctuation scenario of §3.3 and the
	// paper's future-work discussion).
	PFSLoadFactor float64
	PFSLoadAfter  int

	// The fields below configure the scheduler-based pipeline
	// (engine_model.go); any non-zero value routes the run through it.

	// CheckpointJobs spawns that many co-tenant checkpoint streams, each
	// keeping one Checkpoint-class write in flight to the persistent tier
	// for the whole run — the "checkpoint storm from hundreds of
	// concurrent jobs" scenario.
	CheckpointJobs int
	// CheckpointBytes is the storm object size (0 = one subgroup's state).
	CheckpointBytes float64
	// CheckpointInterval is each storm job's think time in seconds between
	// writes (staggered starts). 0 = closed-loop: resubmit immediately,
	// saturating the tier.
	CheckpointInterval float64
	// TierFailFactor in (0,1) collapses tier TierFailTier's bandwidth to
	// that fraction at the start of iteration TierFailAfter — a device
	// failing mid-run. With AdaptivePlacement + LiveMigration the replan
	// triggers a migration storm toward the surviving paths.
	TierFailFactor float64
	TierFailTier   int
	TierFailAfter  int
	// OpOverhead is a fixed per-scheduler-op setup cost in seconds
	// (calibrated from BENCH seq-fetch data); this is the cost coalescing
	// amortizes.
	OpOverhead float64
	// FullDuplex models each tier as independent read and write links at
	// their nominal bandwidths (the semantics of storage.Throttled's two
	// token buckets) instead of the paper's half-duplex shared device.
	// Used when cross-validating against the real engine.
	FullDuplex bool
	// CacheSlots / PrefetchDepth / IOWorkers override the derived values
	// when > 0 (IOWorkers is scheduler workers per tier per GPU worker,
	// default 2 — the aio engine default).
	CacheSlots    int
	PrefetchDepth int
	IOWorkers     int
	// TraceEvents records a deterministic per-op completion trace into
	// Result.EventTrace (scheduler pipeline only).
	TraceEvents bool
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.SubgroupParams <= 0 {
		c.SubgroupParams = 100e6
	}
	if c.MicroBatch <= 0 {
		c.MicroBatch = 1
	}
	if c.GradAccumSteps <= 0 {
		c.GradAccumSteps = 1
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	if c.Warmup < 0 || c.Warmup >= c.Iterations {
		c.Warmup = min(2, c.Iterations-1)
	}
	if c.Testbed.GPUsPerNode <= 0 {
		return fmt.Errorf("simrun: testbed has no GPUs")
	}
	if c.Model.Params() <= 0 {
		return fmt.Errorf("simrun: model has no parameters")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SubgroupIO is one Figure 5 trace point: the I/O throughput worker 0
// observed for one subgroup's fetch and flush.
type SubgroupIO struct {
	Pos     int     // position in the update order
	ReadBW  float64 // bytes/second (0 for cache hits)
	WriteBW float64 // bytes/second (0 when not flushed)
}

// ClassStat aggregates one priority class's traffic over the whole run
// (scheduler pipeline only).
type ClassStat struct {
	Ops        int64
	Bytes      float64
	WireBytes  float64
	QueueDelay float64 // total seconds queued before service
	Service    float64 // total seconds of service
	P50        float64 // completion-latency percentiles, seconds
	P95        float64
}

// Result is the outcome of a simulated run.
type Result struct {
	Config Config
	Series metrics.Series
	Mean   metrics.Iteration
	Trace  []SubgroupIO
	// PlanRatio describes the subgroup placement, e.g. "nvme:pfs = 67:33".
	PlanRatio string
	// CacheSlotsPerWorker is the host-cache capacity used.
	CacheSlotsPerWorker int

	// Scheduler-pipeline extras (zero on the paper pipeline).
	Classes       map[string]ClassStat
	Migrations    int64   // background copies completed
	MigratedBytes float64 //
	MisplacedEnd  int     // offloaded subgroups off-plan at end of run
	FetchP50      float64 // perceived update-fetch latency percentiles, s
	FetchP95      float64
	CheckpointOps int64   // storm writes completed
	CheckpointP95 float64 // storm write completion-latency p95, seconds
	EventTrace    []string
}

// IterTime returns the mean iteration duration in seconds.
func (r Result) IterTime() float64 { return r.Mean.Phases.Total() }

// tierRes models one storage device as a half-duplex resource: reads and
// writes share the device, so one byte read costs 1/ReadBW device-seconds
// and one byte written costs 1/WriteBW. The underlying link has unit
// capacity (one device-second per second); concurrent uncoordinated
// clients additionally pay the interference curve, while exclusive access
// (the MLP-Offload concurrency control) serializes via the mutex and sees
// the full device.
type tierRes struct {
	name string
	dev  *des.Link  // unit-capacity device-time link
	mu   *des.Mutex // nil when access is uncoordinated
	spec cluster.StorageTierSpec
}

// readOp performs one fetch. total is the duration the runtime perceives
// (queueing for exclusive access included, matching how the paper measures
// per-subgroup I/O time); xfer is the device transfer time alone, which is
// what the bandwidth estimator must observe — feeding queue delay back
// into placement would destabilize it.
func (t *tierRes) readOp(p *des.Proc, bytes float64) (total, xfer float64) {
	t0 := p.Now()
	if t.mu != nil {
		t.mu.Lock(p)
		defer t.mu.Unlock(p)
	}
	t1 := p.Now()
	t.dev.Transfer(p, bytes/t.spec.ReadBW)
	return p.Now() - t0, p.Now() - t1
}

// writeOp performs one flush; see readOp for timing semantics.
func (t *tierRes) writeOp(p *des.Proc, bytes float64) (total, xfer float64) {
	t0 := p.Now()
	if t.mu != nil {
		t.mu.Lock(p)
		defer t.mu.Unlock(p)
	}
	t1 := p.Now()
	t.dev.Transfer(p, bytes/t.spec.WriteBW)
	return p.Now() - t0, p.Now() - t1
}

// usesSched reports whether the run needs the scheduler-based pipeline
// (any post-paper engine feature requested). Everything else takes the
// original paper pipeline, bit-for-bit.
func (c Config) usesSched() bool {
	ap := c.Approach
	return ap.PriorityIO || ap.LiveMigration || ap.CoalesceFetches >= 2 ||
		ap.CodecRatio > 1 || c.CheckpointJobs > 0 || c.OpOverhead > 0 ||
		c.FullDuplex || (c.TierFailFactor > 0 && c.TierFailFactor < 1)
}

// Run simulates one node of the configured system (nodes are symmetric;
// inter-node collective cost is added to the backward pass) and returns
// the measured result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.usesSched() {
		return runSched(cfg)
	}
	tb := cfg.Testbed
	ap := cfg.Approach
	W := tb.GPUsPerNode
	totalParams := cfg.Model.Params()
	shardParams := totalParams / int64(W*cfg.Nodes)
	if shardParams <= 0 {
		return nil, fmt.Errorf("simrun: model too small for %d workers", W*cfg.Nodes)
	}
	M := int((shardParams + cfg.SubgroupParams - 1) / cfg.SubgroupParams)

	sim := des.New()

	// Storage resources.
	var tiers []*tierRes
	mkTier := func(spec cluster.StorageTierSpec) *tierRes {
		// Interference counts competing processes (one per GPU), not raw
		// in-flight ops: deeper queues from one worker do not add device
		// interference, they just wait their turn.
		curve := des.CappedInterference(spec.InterferenceAlpha, W)
		t := &tierRes{
			name: spec.Name,
			dev:  sim.NewLink(spec.Name, 1.0, curve), // unit device-time capacity
			spec: spec,
		}
		if ap.ExclusiveIO {
			t.mu = sim.NewMutex()
		}
		return t
	}
	if !cfg.CPUOnly {
		tiers = append(tiers, mkTier(tb.NVMe))
		if ap.UsePFS {
			tiers = append(tiers, mkTier(tb.PFS))
		}
	}

	// CPU update resource: processor-sharing across workers, measured in
	// parameters/second.
	cpu := sim.NewLink("cpu", tb.CPUUpdateParamsPerSec, nil)

	// Placement plan (per worker; identical for all workers), seeded from
	// the microbenchmark bandwidths and — with adaptive placement — re-fit
	// each iteration from EWMA-smoothed observed bandwidths.
	var plan placement.Plan
	est := placement.NewEstimator(0.5)
	tierNames := make([]string, len(tiers))
	if len(tiers) > 0 {
		tbw := make([]placement.TierBandwidth, len(tiers))
		for i, t := range tiers {
			tbw[i] = placement.TierBandwidth{Name: t.name, BW: t.spec.MinBW()}
			est.Seed(t.name, t.spec.ReadBW, t.spec.WriteBW)
			tierNames[i] = t.name
		}
		plan = placement.NewPlan(M, tbw)
	}

	// Host cache capacity.
	stateBytesPerSG := float64(cfg.SubgroupParams) * 12
	var slots int
	if ap.Order == hostcache.Alternating {
		cache := tb.HostCacheBytes(totalParams/int64(cfg.Nodes), ap.SkipGradFlush)
		slots = int(float64(cache) / float64(W) / stateBytesPerSG)
		if slots < 3 {
			slots = 3
		}
		if slots > M {
			slots = M
		}
	} else {
		// DeepNVMe's rotating buffers: one prefetched, one updating, one
		// flushing.
		slots = 3
	}
	prefetchDepth := min(4, slots)
	if ap.Order != hostcache.Alternating {
		prefetchDepth = 1
	}

	// Compute-time model.
	tokensPerStep := float64(cfg.Model.SeqLen * cfg.MicroBatch)
	fwdTime := cfg.Model.FLOPsPerToken() * tokensPerStep / (tb.GPU.TFLOPS * 1e12)
	bwdComputeTime := 3 * fwdTime // 2x backward + 1x activation recompute
	// Inter-node collectives (tensor parallel intra-node, data parallel
	// across nodes): FP16 gradient reduce-scatter + parameter all-gather,
	// sharded 1/W by tensor parallelism.
	commTime := cluster.CollectiveTime(2*2*float64(totalParams)/float64(W), cfg.Nodes, tb.InterconnectBW)

	fetchBytesPerParam := 12.0
	if !ap.SkipGradFlush {
		fetchBytesPerParam = 16.0
	}

	// Per-worker state.
	workers := make([]*workerState, W)
	sgParams := make([]int64, M)
	for i := range sgParams {
		n := cfg.SubgroupParams
		if rem := shardParams - int64(i)*cfg.SubgroupParams; rem < n {
			n = rem
		}
		sgParams[i] = n
	}
	for w := range workers {
		ws := &workerState{lru: hostcache.NewLRU(slots), loc: make([]int, M)}
		for i := range ws.loc {
			if cfg.CPUOnly {
				ws.loc[i] = -1
			} else {
				ws.loc[i] = plan.TierFor(i)
			}
		}
		workers[w] = ws
	}

	// Measurement state (DES is single-threaded: plain fields suffice).
	iters := make([]metrics.Iteration, cfg.Iterations)
	for i := range iters {
		iters[i].TierBytes = make(map[string]float64)
	}
	var trace []SubgroupIO
	type phaseStamp struct{ fwdEnd, bwdEnd, updEnd, start float64 }
	stamps := make([]phaseStamp, cfg.Iterations)

	barrier := sim.NewBarrier(W)

	const fp16Bytes = 2.0
	d2h := tb.GPU.D2HBandwidth
	conv := tb.CPUConvertBytesPerSec

	for w := 0; w < W; w++ {
		w := w
		ws := workers[w]
		sim.Spawn(fmt.Sprintf("worker%d", w), func(p *des.Proc) {
			for iter := 0; iter < cfg.Iterations; iter++ {
				it := &iters[iter]
				if w == 0 {
					stamps[iter].start = p.Now()
					// External PFS pressure kicks in at the configured
					// iteration: the shared file system delivers only a
					// fraction of its microbenchmarked bandwidth.
					if cfg.PFSLoadFactor > 0 && cfg.PFSLoadFactor < 1 &&
						iter == cfg.PFSLoadAfter && ap.UsePFS && len(tiers) > 1 {
						tiers[1].spec.ReadBW *= cfg.PFSLoadFactor
						tiers[1].spec.WriteBW *= cfg.PFSLoadFactor
					}
				}

				// ---- Forward ----
				p.Sleep(fwdTime * float64(cfg.GradAccumSteps))
				barrier.Await(p)
				if w == 0 {
					stamps[iter].fwdEnd = p.Now()
				}

				// ---- Backward ----
				// Grad flushes are asynchronous but bounded to one in
				// flight per worker, as DeepNVMe's submission queue is:
				// when the device falls behind, the backward pass stalls
				// waiting for the previous flush — exactly the "large
				// asynchronous FP32 gradient flushes that can delay the
				// backward pass" the paper eliminates.
				var prevGradFlush *des.Event
				for a := 0; a < cfg.GradAccumSteps; a++ {
					last := a == cfg.GradAccumSteps-1
					for i := 0; i < M; i++ {
						n := float64(sgParams[i])
						p.Sleep(bwdComputeTime / float64(M))
						p.Sleep(n * fp16Bytes / d2h) // FP16 grads D2H
						if !ap.SkipGradFlush && last && !cfg.CPUOnly {
							// Upscale to FP32 and flush to the subgroup's
							// tier asynchronously.
							p.Sleep(n * 4 / conv)
							if prevGradFlush != nil {
								prevGradFlush.Wait(p)
							}
							tier := tiers[tierOf(ws.loc[i], plan, i)]
							ev := sim.NewEvent()
							prevGradFlush = ev
							bytes := n * 4
							sim.Spawn(fmt.Sprintf("w%d.gflush%d", w, i), func(fp *des.Proc) {
								d, _ := tier.writeOp(fp, bytes)
								it.BytesWritten += bytes
								it.WriteTime += d
								ev.Fire()
							})
						}
					}
				}
				if prevGradFlush != nil {
					prevGradFlush.Wait(p)
				}
				if cfg.Nodes > 1 {
					p.Sleep(commTime)
				}
				barrier.Await(p)
				if w == 0 {
					stamps[iter].bwdEnd = p.Now()
				}

				// ---- Update (Algorithm 1) ----
				order := hostcache.UpdateOrder(ap.Order, M, ws.phase)
				tracing := w == 0 && iter == cfg.TraceIteration && cfg.TraceIteration >= 0
				fetchEvents := make(map[int]*des.Event, prefetchDepth)
				fetchDur := make(map[int]float64, prefetchDepth)
				var flushEvents []*des.Event
				inflight := 0
				issued := 0
				issue := func() {
					for issued < M && inflight < prefetchDepth {
						sgID := order[issued]
						pos := issued
						issued++
						if cfg.CPUOnly || ws.loc[sgID] == -1 {
							continue
						}
						inflight++
						tier := tiers[ws.loc[sgID]]
						bytes := float64(sgParams[sgID]) * fetchBytesPerParam
						ev := sim.NewEvent()
						fetchEvents[sgID] = ev
						sim.Spawn(fmt.Sprintf("w%d.fetch%d", w, sgID), func(fp *des.Proc) {
							d, xfer := tier.readOp(fp, bytes)
							it.BytesRead += bytes
							it.ReadTime += d
							fetchDur[sgID] = d
							est.ObserveRead(tier.name, bytes, xfer)
							if tracing {
								trace = append(trace, SubgroupIO{Pos: pos, ReadBW: bytes / d})
							}
							ev.Fire()
						})
					}
				}
				issue()
				for _, sgID := range order {
					n := float64(sgParams[sgID])
					if ev, ok := fetchEvents[sgID]; ok {
						ev.Wait(p)
						delete(fetchEvents, sgID)
						inflight--
						it.CacheMisses++
						ws.loc[sgID] = -1
					} else if !cfg.CPUOnly {
						it.CacheHits++
					}
					if ap.SkipGradFlush {
						p.Sleep(n * 4 / conv) // delayed FP16→FP32 conversion
					}
					t0 := p.Now()
					cpu.Transfer(p, n) // Adam kernel (params as units)
					it.UpdateComputeTime += p.Now() - t0
					p.Sleep(n * fp16Bytes / d2h) // FP16 params H2D
					if !cfg.CPUOnly {
						evicted, did := ws.lru.Touch(sgID)
						if did {
							// Lazy flush, bounded to two in flight per
							// worker (the staging-buffer backpressure of a
							// real async engine: one flushing + one queued).
							if len(flushEvents) >= 2 {
								flushEvents[len(flushEvents)-2].Wait(p)
							}
							dst := plan.TierFor(evicted)
							tier := tiers[dst]
							ws.loc[evicted] = dst
							bytes := float64(sgParams[evicted]) * 12
							ev := sim.NewEvent()
							flushEvents = append(flushEvents, ev)
							pos := posOf(order, evicted)
							sim.Spawn(fmt.Sprintf("w%d.flush%d", w, evicted), func(fp *des.Proc) {
								d, xfer := tier.writeOp(fp, bytes)
								it.BytesWritten += bytes
								it.WriteTime += d
								est.ObserveWrite(tier.name, bytes, xfer)
								if tracing {
									trace = append(trace, SubgroupIO{Pos: pos, WriteBW: bytes / d})
								}
								ev.Fire()
							})
						}
					}
					issue()
				}
				for _, ev := range flushEvents {
					ev.Wait(p)
				}
				ws.phase++
				it.ParamsUpdated += shardParams
				barrier.Await(p)
				if w == 0 {
					stamps[iter].updEnd = p.Now()
					// Re-fit the placement (Eq. 1) from observed
					// bandwidths; subsequent flushes migrate subgroups
					// toward the faster paths.
					if ap.AdaptivePlacement && len(tiers) > 1 {
						plan = placement.NewPlan(M, est.Bandwidths(tierNames, 1))
					}
				}
				barrier.Await(p) // replanning visible to all before next iteration
			}
		})
	}

	if err := sim.Run(); err != nil {
		return nil, fmt.Errorf("simrun: %w", err)
	}

	// Assemble node-level iteration records.
	res := &Result{Config: cfg, Trace: trace, CacheSlotsPerWorker: slots}
	if len(tiers) > 0 {
		res.PlanRatio = plan.Ratio()
	}
	res.Series.Warmup = cfg.Warmup
	for i := range iters {
		st := stamps[i]
		iters[i].Phases = metrics.Phases{
			Forward:  st.fwdEnd - st.start,
			Backward: st.bwdEnd - st.fwdEnd,
			Update:   st.updEnd - st.bwdEnd,
		}
		// Tier distribution snapshot (end of run state applies to each
		// iteration equally once warm; recompute cheaply from final loc).
		res.Series.Append(iters[i])
	}
	mean := res.Series.Mean()
	mean.TierBytes = tierDistribution(workers, sgParams, tiers, W)
	res.Mean = mean
	return res, nil
}

// tierOf resolves the tier for a subgroup that may be host-resident (use
// its planned tier for gradient objects).
func tierOf(loc int, plan placement.Plan, sg int) int {
	if loc >= 0 {
		return loc
	}
	return plan.TierFor(sg)
}

func posOf(order []int, sg int) int {
	for i, v := range order {
		if v == sg {
			return i
		}
	}
	return -1
}

// workerState is one worker's residency bookkeeping.
type workerState struct {
	lru   *hostcache.LRU
	loc   []int // -1 = host, else tier index
	phase int
}

// tierDistribution sums optimizer-state bytes by final location across all
// workers of the node.
func tierDistribution(workers []*workerState, sgParams []int64, tiers []*tierRes, W int) map[string]float64 {
	out := make(map[string]float64)
	for _, ws := range workers {
		for i, loc := range ws.loc {
			b := float64(sgParams[i]) * 12
			if loc == -1 {
				out["host"] += b
			} else {
				out[tiers[loc].name] += b
			}
		}
	}
	return out
}

// DiskIOFraction estimates the fraction of the update phase spent waiting
// on storage I/O rather than compute: 1 - compute/(update wall time), per
// worker averaged — the Figure 3 metric.
func DiskIOFraction(m metrics.Iteration, workersPerNode int) float64 {
	if m.Phases.Update <= 0 {
		return 0
	}
	perWorkerCompute := m.UpdateComputeTime / float64(workersPerNode)
	f := 1 - perWorkerCompute/m.Phases.Update
	return math.Max(0, math.Min(1, f))
}
