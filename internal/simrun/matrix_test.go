package simrun

import (
	"reflect"
	"strings"
	"testing"

	"github.com/datastates/mlpoffload/internal/cluster"
	"github.com/datastates/mlpoffload/internal/model"
)

// ciOpts is the CI-sized matrix: enough iterations for every mechanism
// (failure -> replan -> migration needs a post-replan iteration) while
// staying fast under -race -count=2.
var ciOpts = MatrixOptions{Iterations: 4, Warmup: 1, CheckpointJobs: 32}

// TestMatrixCells runs the full matrix at CI size and checks each cell's
// physics: the mechanism a scenario exists to show must be visible in its
// report.
func TestMatrixCells(t *testing.T) {
	reps, err := RunMatrix(nil, ciOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) < 6 {
		t.Fatalf("matrix produced %d cells, want >= 6", len(reps))
	}
	byName := make(map[string]*CellReport, len(reps))
	for _, rep := range reps {
		if !strings.HasPrefix(rep.Benchmark, "simmatrix-") {
			t.Errorf("report name %q lacks simmatrix- prefix", rep.Benchmark)
		}
		if len(rep.Results) < 2 {
			t.Errorf("%s: %d results, want >= 2", rep.Benchmark, len(rep.Results))
		}
		for _, r := range rep.Results {
			if r.IterSec <= 0 {
				t.Errorf("%s/%s: iter_sec = %g, want > 0", rep.Benchmark, r.Variant, r.IterSec)
			}
		}
		if rep.Speedup <= 0 {
			t.Errorf("%s: speedup = %g, want > 0", rep.Benchmark, rep.Speedup)
		}
		byName[rep.Config.Scenario] = rep
	}

	// Baseline: the engine-true pipeline must beat DeepSpeed ZeRO-3.
	if rep := byName["baseline-40b"]; rep != nil && rep.Speedup <= 1 {
		t.Errorf("baseline-40b: engine speedup over DeepSpeed = %g, want > 1", rep.Speedup)
	}

	// Tier failure: the migration variant must actually migrate, and end
	// with no more misplaced subgroups than the replan-only variant.
	if rep := byName["tier-failure-40b"]; rep != nil {
		nomig, mig := rep.Results[0], rep.Results[1]
		if mig.Migrations == 0 {
			t.Errorf("tier-failure-40b/%s: 0 migrations after tier failure", mig.Variant)
		}
		if nomig.Migrations != 0 {
			t.Errorf("tier-failure-40b/%s: %d migrations without LiveMigration", nomig.Variant, nomig.Migrations)
		}
		if mig.MisplacedEnd > nomig.MisplacedEnd {
			t.Errorf("tier-failure-40b: migration left %d misplaced, replan-only %d",
				mig.MisplacedEnd, nomig.MisplacedEnd)
		}
	}

	// Codec: wire bytes must shrink by the ratio; off-variant wire == raw.
	for _, name := range []string{"codec-40b", "codec-280b"} {
		rep := byName[name]
		if rep == nil {
			t.Errorf("%s missing", name)
			continue
		}
		off, on := rep.Results[0], rep.Results[1]
		if off.WireReadGB != off.ReadGB {
			t.Errorf("%s/codec-off: wire %g GB != raw %g GB", name, off.WireReadGB, off.ReadGB)
		}
		if on.WireReadGB >= on.ReadGB {
			t.Errorf("%s/codec-on: wire %g GB not below raw %g GB", name, on.WireReadGB, on.ReadGB)
		}
		if on.CompressionRatio <= 1 {
			t.Errorf("%s/codec-on: compression_ratio = %g, want > 1", name, on.CompressionRatio)
		}
	}

	// Checkpoint storm: classed priority must keep the fetch tail below
	// FIFO's while the storm jobs still make progress (aging bound).
	if rep := byName["ckpt-storm-pfs"]; rep != nil {
		fifo, classed := rep.Results[0], rep.Results[1]
		if fifo.CheckpointOps == 0 || classed.CheckpointOps == 0 {
			t.Errorf("ckpt-storm-pfs: checkpoint ops fifo=%d classed=%d, want > 0",
				fifo.CheckpointOps, classed.CheckpointOps)
		}
		if rep.Speedup <= 1 {
			t.Errorf("ckpt-storm-pfs: classed fetch p95 %.3fms not below fifo %.3fms",
				classed.FetchP95MS, fifo.FetchP95MS)
		}
	}

	// Coalescing: with per-op overhead at iobench scale, batch=8 must beat
	// batch=1 on the overhead-dominated update phase.
	if rep := byName["coalesce-microfetch"]; rep != nil && rep.Speedup <= 1 {
		t.Errorf("coalesce-microfetch: batch-8 speedup = %g, want > 1", rep.Speedup)
	}
}

// TestMatrixCellDeterministic runs one full cell twice and requires
// bit-identical reports.
func TestMatrixCellDeterministic(t *testing.T) {
	sc, err := ScenarioByName("tier-failure-40b")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Run(ciOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run(ciOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs of %s differ:\n%+v\n%+v", sc.Name, a, b)
	}
}

// TestEventTraceDeterministic exercises priority + migration + codec in one
// config with event tracing on: two runs must produce identical traces.
func TestEventTraceDeterministic(t *testing.T) {
	m, err := model.ByName("40B")
	if err != nil {
		t.Fatal(err)
	}
	ap := codecApproach(EngineTrue(), cluster.Calibration{})
	cfg := Config{
		Testbed: cluster.Testbed1(), Model: m, Approach: ap,
		Iterations: 4, Warmup: 1,
		TierFailFactor: 0.15, TierFailTier: 0, TierFailAfter: 2,
		TraceEvents: true,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EventTrace) == 0 {
		t.Fatal("TraceEvents produced no events")
	}
	if !reflect.DeepEqual(a.EventTrace, b.EventTrace) {
		n := min(len(a.EventTrace), len(b.EventTrace))
		for i := 0; i < n; i++ {
			if a.EventTrace[i] != b.EventTrace[i] {
				t.Fatalf("trace diverges at event %d:\n  %s\n  %s", i, a.EventTrace[i], b.EventTrace[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(a.EventTrace), len(b.EventTrace))
	}
	if a.Migrations == 0 {
		t.Error("combined scenario produced no migrations")
	}
}

// TestScenarioByNameUnknown covers the error paths.
func TestScenarioByNameUnknown(t *testing.T) {
	if _, err := ScenarioByName("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := RunMatrix([]string{"nope"}, ciOpts); err == nil {
		t.Error("RunMatrix with unknown name accepted")
	}
}
