package simrun

import (
	"testing"

	"github.com/datastates/mlpoffload/internal/cluster"
	"github.com/datastates/mlpoffload/internal/model"
)

// TestSchedPathSanity pins the relationship between the two simulator
// pipelines: routing the paper's MLP-Offload configuration through the
// scheduler-based engine model (PriorityIO) must reproduce the original
// analytic pipeline's iteration time closely — same tiers, same plan,
// same cache — while additionally exposing per-class I/O statistics.
// A large gap here means one of the two transfer models drifted.
func TestSchedPathSanity(t *testing.T) {
	m, err := model.ByName("40B")
	if err != nil {
		t.Fatal(err)
	}
	run := func(ap Approach) *Result {
		res, err := Run(Config{
			Testbed:    cluster.Testbed1(),
			Model:      m,
			Approach:   ap,
			Iterations: 4,
			Warmup:     1,
		})
		if err != nil {
			t.Fatalf("%s: %v", ap.Name, err)
		}
		t.Logf("%s: iter=%.2fs update=%.2fs hits=%d misses=%d plan=%s",
			ap.Name, res.IterTime(), res.Mean.Phases.Update,
			res.Mean.CacheHits, res.Mean.CacheMisses, res.PlanRatio)
		return res
	}

	paper := run(MLPOffload())
	sched := MLPOffload()
	sched.Name = "MLP-Offload (sched path)"
	sched.PriorityIO = true
	viaSched := run(sched)

	if len(paper.Classes) != 0 {
		t.Errorf("paper pipeline reported class stats: %v", paper.Classes)
	}
	if len(viaSched.Classes) == 0 {
		t.Error("scheduler pipeline reported no class stats")
	}
	for _, class := range []string{"prefetch", "flush"} {
		if viaSched.Classes[class].Ops == 0 {
			t.Errorf("scheduler pipeline moved no %s ops: %v", class, viaSched.Classes)
		}
	}
	// Same physics, two mechanisms: iteration times must agree within a
	// modelling tolerance (the sched path resolves contention op by op,
	// the paper path via the interference curve).
	if d := relDrift(viaSched.IterTime(), paper.IterTime()); d > 0.15 {
		t.Errorf("sched path iter %.2fs vs paper path %.2fs: drift %.3f > 0.15",
			viaSched.IterTime(), paper.IterTime(), d)
	}
	if viaSched.Mean.CacheHits != paper.Mean.CacheHits ||
		viaSched.Mean.CacheMisses != paper.Mean.CacheMisses {
		t.Errorf("cache behaviour differs across pipelines: sched %d/%d, paper %d/%d",
			viaSched.Mean.CacheHits, viaSched.Mean.CacheMisses,
			paper.Mean.CacheHits, paper.Mean.CacheMisses)
	}
	// The engine-true configuration (adds migration + coalescing) must
	// still run and not be slower than the plain sched path.
	engine := run(EngineTrue())
	if engine.IterTime() > viaSched.IterTime()*1.10 {
		t.Errorf("engine-true config %.2fs is >10%% slower than plain sched path %.2fs",
			engine.IterTime(), viaSched.IterTime())
	}
}
