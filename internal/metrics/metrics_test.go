package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPhases(t *testing.T) {
	p := Phases{1, 2, 3}
	if p.Total() != 6 {
		t.Errorf("Total = %v", p.Total())
	}
	q := p.Add(Phases{1, 1, 1})
	if q.Total() != 9 {
		t.Errorf("Add = %+v", q)
	}
	r := p.Scale(2)
	if r.Forward != 2 || r.Update != 6 {
		t.Errorf("Scale = %+v", r)
	}
}

func TestIterationDerived(t *testing.T) {
	it := Iteration{
		Phases:        Phases{Update: 2},
		ParamsUpdated: 4e6,
		BytesRead:     100,
		BytesWritten:  50,
		ReadTime:      2,
		WriteTime:     1,
		CacheHits:     3,
		CacheMisses:   1,
	}
	if got := it.UpdateThroughput(); got != 2 {
		t.Errorf("UpdateThroughput = %v, want 2 Mparams/s", got)
	}
	if got := it.EffectiveIO(); got != 50 {
		t.Errorf("EffectiveIO = %v, want 50", got)
	}
	if got := it.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v", got)
	}
}

func TestIterationZeroGuards(t *testing.T) {
	var it Iteration
	if it.UpdateThroughput() != 0 || it.EffectiveIO() != 0 || it.HitRate() != 0 {
		t.Error("zero iteration should report zeroes")
	}
}

func TestSeriesWarmupMean(t *testing.T) {
	s := Series{Warmup: 2}
	// Two slow warmups then three fast iterations.
	for _, u := range []float64{100, 90, 10, 12, 14} {
		s.Append(Iteration{Phases: Phases{Update: u}, ParamsUpdated: 1000,
			TierBytes: map[string]float64{"nvme": u}})
	}
	m := s.Mean()
	if math.Abs(m.Phases.Update-12) > 1e-9 {
		t.Errorf("mean update = %v, want 12 (warmups excluded)", m.Phases.Update)
	}
	if m.ParamsUpdated != 1000 {
		t.Errorf("mean params = %d", m.ParamsUpdated)
	}
	if math.Abs(m.TierBytes["nvme"]-12) > 1e-9 {
		t.Errorf("mean tier bytes = %v", m.TierBytes["nvme"])
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	if len(s.Iterations()) != 5 {
		t.Error("Iterations copy wrong")
	}
}

func TestSeriesFewerThanWarmup(t *testing.T) {
	s := Series{Warmup: 5}
	s.Append(Iteration{Phases: Phases{Update: 4}})
	m := s.Mean()
	if m.Phases.Update != 4 {
		t.Errorf("short series mean = %v", m.Phases.Update)
	}
	var empty Series
	if got := empty.Mean(); got.Phases.Total() != 0 {
		t.Error("empty mean should be zero")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig X", "model", "time(s)")
	tb.AddRow("40B", "242.3")
	tb.AddRow("120B", "550.4")
	tb.AddRow("extra", "1", "dropped-cell")
	tb.AddNote("n=%d", 2)
	out := tb.Render()
	if !strings.Contains(out, "=== Fig X ===") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "model") || !strings.Contains(out, "242.3") {
		t.Error("missing content")
	}
	if !strings.Contains(out, "note: n=2") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + sep + 3 rows + note
	if len(lines) != 7 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Alignment: all data lines equal width or less than header width is
	// fine, but columns must start at same offsets — check separator row
	// dashes align under headers.
	if !strings.HasPrefix(lines[2], "-----") {
		t.Errorf("separator malformed: %q", lines[2])
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{512, "512B"},
		{2048, "2.0K"},
		{145 * 1024 * 1024 * 1024, "145G"},
		{1.5 * 1024 * 1024 * 1024 * 1024, "1.5T"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	sw.Start()
	if d := sw.Lap(); d < 0 {
		t.Error("negative lap")
	}
	if d := sw.Lap(); d < 0 {
		t.Error("negative second lap")
	}
}

func TestIterationMerge(t *testing.T) {
	var total Iteration
	a := Iteration{
		Phases:            Phases{Forward: 1, Backward: 2, Update: 3},
		ParamsUpdated:     100,
		BytesRead:         10,
		BytesWritten:      20,
		ReadTime:          0.5,
		WriteTime:         0.25,
		CacheHits:         3,
		CacheMisses:       7,
		UpdateComputeTime: 0.125,
		TierBytes:         map[string]float64{"nvme": 64},
	}
	b := Iteration{
		ParamsUpdated: 50,
		BytesRead:     5,
		CacheMisses:   1,
		TierBytes:     map[string]float64{"nvme": 16, "pfs": 8},
	}
	total.Merge(a)
	total.Merge(b)
	if total.ParamsUpdated != 150 || total.BytesRead != 15 || total.BytesWritten != 20 {
		t.Errorf("merged counters wrong: %+v", total)
	}
	if total.CacheHits != 3 || total.CacheMisses != 8 {
		t.Errorf("merged cache stats wrong: %+v", total)
	}
	if total.Phases.Total() != 6 || total.ReadTime != 0.5 || total.UpdateComputeTime != 0.125 {
		t.Errorf("merged timings wrong: %+v", total)
	}
	if total.TierBytes["nvme"] != 80 || total.TierBytes["pfs"] != 8 {
		t.Errorf("merged tier bytes wrong: %v", total.TierBytes)
	}
	// Merging into a zero Iteration must not alias the source map.
	b.TierBytes["pfs"] = 999
	if total.TierBytes["pfs"] != 8 {
		t.Error("Merge aliased the source TierBytes map")
	}
}

func TestClassIORecordAndMerge(t *testing.T) {
	var a Iteration
	a.RecordClassIO("demand-fetch", 100, 80, 0.01, 0.2)
	a.RecordClassIO("demand-fetch", 50, 40, 0.02, 0.1)
	a.RecordClassIO("flush", 30, 30, 0.00, 0.3)
	if c := a.ClassIO["demand-fetch"]; c.Ops != 2 || c.Bytes != 150 || c.WireBytes != 120 ||
		math.Abs(c.QueueDelay-0.03) > 1e-12 || math.Abs(c.Transfer-0.3) > 1e-12 {
		t.Errorf("recorded demand-fetch = %+v", c)
	}

	var b Iteration
	b.RecordClassIO("flush", 10, 10, 0.05, 0.1)
	b.RecordClassIO("migration", 500, 500, 1.5, 2.0)

	var total Iteration
	total.Merge(a)
	total.Merge(b)
	if c := total.ClassIO["flush"]; c.Ops != 2 || c.Bytes != 40 {
		t.Errorf("merged flush = %+v", c)
	}
	if c := total.ClassIO["migration"]; c.Ops != 1 || c.Bytes != 500 || c.QueueDelay != 1.5 {
		t.Errorf("merged migration = %+v", c)
	}
	if len(total.ClassIO) != 3 {
		t.Errorf("merged classes = %v", total.ClassIO)
	}
}

func TestSeriesMeanAveragesClassIO(t *testing.T) {
	var s Series // no warmup
	for i := 0; i < 2; i++ {
		var it Iteration
		it.RecordClassIO("prefetch", 100, 100, 0.1, 0.5)
		s.Append(it)
	}
	m := s.Mean()
	if c := m.ClassIO["prefetch"]; c.Ops != 1 || c.Bytes != 100 || c.Transfer != 0.5 {
		t.Errorf("mean prefetch = %+v", c)
	}
	// A series with no class stats keeps ClassIO nil.
	var empty Series
	empty.Append(Iteration{})
	if m := empty.Mean(); m.ClassIO != nil {
		t.Errorf("empty-series mean ClassIO = %v", m.ClassIO)
	}
}
