// Package metrics collects and renders the measurements the paper reports:
// per-phase iteration breakdowns, update throughput (million parameters per
// second), effective I/O throughput (the paper's 2*size/(read+write)
// formula), cache statistics, and per-tier byte distribution.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

// Phases is the forward/backward/update breakdown of one iteration.
type Phases struct {
	Forward  float64 // seconds
	Backward float64
	Update   float64
}

// Total returns the iteration duration.
func (p Phases) Total() float64 { return p.Forward + p.Backward + p.Update }

// Add accumulates another breakdown.
func (p Phases) Add(q Phases) Phases {
	return Phases{p.Forward + q.Forward, p.Backward + q.Backward, p.Update + q.Update}
}

// Scale multiplies all phases by f.
func (p Phases) Scale(f float64) Phases {
	return Phases{p.Forward * f, p.Backward * f, p.Update * f}
}

// Iteration captures one training iteration's measurements.
type Iteration struct {
	Phases Phases
	// ParamsUpdated counts optimizer parameters stepped this iteration.
	ParamsUpdated int64
	// I/O observed while fetching and flushing offloaded subgroups during
	// the update phase (storage tiers only; D2H is excluded, matching the
	// paper's metric). BytesRead/BytesWritten are raw (caller-side)
	// bytes; WireBytesRead/WireBytesWritten are the device-level counts,
	// which a codec-wrapped tier shrinks — their ratio is the iteration's
	// compression win, and bandwidth math must divide wire bytes (not
	// raw) by transfer time.
	BytesRead        float64
	BytesWritten     float64
	WireBytesRead    float64
	WireBytesWritten float64
	ReadTime         float64 // summed transfer seconds across subgroups
	WriteTime        float64
	// Cache behaviour.
	CacheHits   int
	CacheMisses int
	// TierBytes is the bytes of optimizer state resident on each tier at
	// the end of the iteration ("host" included).
	TierBytes map[string]float64
	// UpdateComputeTime is the CPU time inside the Adam kernel.
	UpdateComputeTime float64
	// ClassIO breaks the iteration's tier traffic down by I/O scheduler
	// priority class (keys are aio.Class strings: "demand-fetch",
	// "prefetch", "flush", "migration", ...). Queue delays expose
	// head-of-line blocking the aggregate Read/WriteTime hides.
	ClassIO map[string]ClassIO
}

// ClassIO aggregates one priority class's operations within an iteration.
// WireBytes is the device-level byte count (equal to Bytes unless the
// tier is codec-wrapped); Bytes/WireBytes is the class's compression
// ratio.
type ClassIO struct {
	Ops        int
	Bytes      float64
	WireBytes  float64
	QueueDelay float64 // seconds ops sat queued before dispatch
	Transfer   float64 // seconds of device transfer time
}

// Add folds another accumulation of the same class into c.
func (c ClassIO) Add(o ClassIO) ClassIO {
	return ClassIO{
		Ops:        c.Ops + o.Ops,
		Bytes:      c.Bytes + o.Bytes,
		WireBytes:  c.WireBytes + o.WireBytes,
		QueueDelay: c.QueueDelay + o.QueueDelay,
		Transfer:   c.Transfer + o.Transfer,
	}
}

// Scale multiplies every field by f (Ops rounds down).
func (c ClassIO) Scale(f float64) ClassIO {
	return ClassIO{
		Ops:        int(float64(c.Ops) * f),
		Bytes:      c.Bytes * f,
		WireBytes:  c.WireBytes * f,
		QueueDelay: c.QueueDelay * f,
		Transfer:   c.Transfer * f,
	}
}

// Ratio returns the class's compression ratio (raw/wire; 0 when no wire
// bytes were recorded).
func (c ClassIO) Ratio() float64 {
	if c.WireBytes <= 0 {
		return 0
	}
	return c.Bytes / c.WireBytes
}

// RecordClassIO accumulates one completed operation under its priority
// class. wireBytes is the operation's device-level size (aio
// Op.WireBytes); pass bytes again for unencoded tiers.
func (it *Iteration) RecordClassIO(class string, bytes, wireBytes, queueDelay, transfer float64) {
	if it.ClassIO == nil {
		it.ClassIO = make(map[string]ClassIO)
	}
	c := it.ClassIO[class]
	c.Ops++
	c.Bytes += bytes
	c.WireBytes += wireBytes
	c.QueueDelay += queueDelay
	c.Transfer += transfer
	it.ClassIO[class] = c
}

// Merge folds another iteration's counters into it. The concurrent update
// pipeline gives each worker a private Iteration accumulator and merges
// them in commit order, so the totals are deterministic for a given set of
// per-subgroup measurements regardless of worker interleaving.
func (it *Iteration) Merge(o Iteration) {
	it.Phases = it.Phases.Add(o.Phases)
	it.ParamsUpdated += o.ParamsUpdated
	it.BytesRead += o.BytesRead
	it.BytesWritten += o.BytesWritten
	it.WireBytesRead += o.WireBytesRead
	it.WireBytesWritten += o.WireBytesWritten
	it.ReadTime += o.ReadTime
	it.WriteTime += o.WriteTime
	it.CacheHits += o.CacheHits
	it.CacheMisses += o.CacheMisses
	it.UpdateComputeTime += o.UpdateComputeTime
	for k, v := range o.TierBytes {
		if it.TierBytes == nil {
			it.TierBytes = make(map[string]float64, len(o.TierBytes))
		}
		it.TierBytes[k] += v
	}
	for k, v := range o.ClassIO {
		if it.ClassIO == nil {
			it.ClassIO = make(map[string]ClassIO, len(o.ClassIO))
		}
		it.ClassIO[k] = it.ClassIO[k].Add(v)
	}
}

// UpdateThroughput returns million parameters updated per second of update
// phase. Zero-duration updates report 0.
func (it Iteration) UpdateThroughput() float64 {
	if it.Phases.Update <= 0 {
		return 0
	}
	return float64(it.ParamsUpdated) / it.Phases.Update / 1e6
}

// EffectiveIO returns the paper's effective I/O throughput in bytes/second:
// 2*subgroup_bytes/(read_time+write_time) aggregated over all subgroups,
// computed here as (bytes_read+bytes_written)/(read_time+write_time).
// Raw bytes over device time: under a codec tier this exceeds the wire
// bandwidth by the compression ratio — exactly the effective-bandwidth
// multiplication the codec buys.
func (it Iteration) EffectiveIO() float64 {
	d := it.ReadTime + it.WriteTime
	if d <= 0 {
		return 0
	}
	return (it.BytesRead + it.BytesWritten) / d
}

// WireIO returns the device-level I/O throughput in bytes/second — what
// the tiers physically sustained.
func (it Iteration) WireIO() float64 {
	d := it.ReadTime + it.WriteTime
	if d <= 0 {
		return 0
	}
	return (it.WireBytesRead + it.WireBytesWritten) / d
}

// CompressionRatio returns raw bytes moved per wire byte (1 when no
// codec is active, 0 when the iteration moved nothing).
func (it Iteration) CompressionRatio() float64 {
	wire := it.WireBytesRead + it.WireBytesWritten
	if wire <= 0 {
		return 0
	}
	return (it.BytesRead + it.BytesWritten) / wire
}

// HitRate returns the host-cache hit fraction in [0,1].
func (it Iteration) HitRate() float64 {
	n := it.CacheHits + it.CacheMisses
	if n == 0 {
		return 0
	}
	return float64(it.CacheHits) / float64(n)
}

// Series accumulates iterations and reports averages, with warmup
// exclusion (the paper averages 8 of 10 iterations, skipping 2 warmups).
type Series struct {
	Warmup int
	iters  []Iteration
}

// Append records an iteration.
func (s *Series) Append(it Iteration) { s.iters = append(s.iters, it) }

// Len returns the number of recorded iterations.
func (s *Series) Len() int { return len(s.iters) }

// measured returns the post-warmup iterations (all, if fewer than warmup).
func (s *Series) measured() []Iteration {
	if len(s.iters) > s.Warmup {
		return s.iters[s.Warmup:]
	}
	return s.iters
}

// Mean returns the average of the post-warmup iterations.
func (s *Series) Mean() Iteration {
	ms := s.measured()
	if len(ms) == 0 {
		return Iteration{}
	}
	var out Iteration
	tb := make(map[string]float64)
	cio := make(map[string]ClassIO)
	for _, it := range ms {
		out.Phases = out.Phases.Add(it.Phases)
		out.ParamsUpdated += it.ParamsUpdated
		out.BytesRead += it.BytesRead
		out.BytesWritten += it.BytesWritten
		out.WireBytesRead += it.WireBytesRead
		out.WireBytesWritten += it.WireBytesWritten
		out.ReadTime += it.ReadTime
		out.WriteTime += it.WriteTime
		out.CacheHits += it.CacheHits
		out.CacheMisses += it.CacheMisses
		out.UpdateComputeTime += it.UpdateComputeTime
		for k, v := range it.TierBytes {
			tb[k] += v
		}
		for k, v := range it.ClassIO {
			cio[k] = cio[k].Add(v)
		}
	}
	inv := 1.0 / float64(len(ms))
	out.Phases = out.Phases.Scale(inv)
	out.ParamsUpdated = int64(float64(out.ParamsUpdated) * inv)
	out.BytesRead *= inv
	out.BytesWritten *= inv
	out.WireBytesRead *= inv
	out.WireBytesWritten *= inv
	out.ReadTime *= inv
	out.WriteTime *= inv
	out.UpdateComputeTime *= inv
	// Cache hits/misses stay summed? Average them too for comparability.
	out.CacheHits = int(float64(out.CacheHits) * inv)
	out.CacheMisses = int(float64(out.CacheMisses) * inv)
	for k := range tb {
		tb[k] *= inv
	}
	out.TierBytes = tb
	if len(cio) > 0 {
		for k := range cio {
			cio[k] = cio[k].Scale(inv)
		}
		out.ClassIO = cio
	}
	return out
}

// Iterations returns a copy of all recorded iterations.
func (s *Series) Iterations() []Iteration {
	return append([]Iteration(nil), s.iters...)
}

// Stopwatch measures phase durations for the real engine. By default it
// reads the wall clock; StartOn binds it to any engine clock so phase
// breakdowns follow virtual time in deterministic runs.
type Stopwatch struct {
	t0  time.Time
	clk clock.Clock
}

// Start begins timing on the previously bound clock (wall, if none).
func (s *Stopwatch) Start() { s.StartOn(s.clk) }

// StartOn binds the stopwatch to clk (nil = wall clock) and begins
// timing.
func (s *Stopwatch) StartOn(clk clock.Clock) {
	s.clk = clock.Or(clk)
	s.t0 = s.clk.Now()
}

// Lap returns seconds since Start/last Lap and restarts.
func (s *Stopwatch) Lap() float64 {
	s.clk = clock.Or(s.clk)
	now := s.clk.Now()
	d := now.Sub(s.t0).Seconds()
	s.t0 = now
	return d
}

// Table renders aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the aligned table as a string.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// FormatBytes renders a byte count with a binary unit (the paper's figures
// use G for GiB-scale quantities).
func FormatBytes(b float64) string {
	units := []string{"B", "K", "M", "G", "T", "P"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	if b >= 100 {
		return fmt.Sprintf("%.0f%s", b, units[i])
	}
	return fmt.Sprintf("%.1f%s", b, units[i])
}

// SortedKeys returns map keys in sorted order (deterministic rendering).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
