package nn

import (
	"testing"

	"github.com/datastates/mlpoffload/internal/data"
)

// TestTrainOnSyntheticCorpus connects the data substrate to the model: a
// GPT trained on sampled sequences from the Zipfian synthetic corpus must
// reduce its loss below the corpus's unigram entropy bound would suggest
// for a bigram-aware model — concretely, below the initial (near-uniform)
// loss by a clear margin.
func TestTrainOnSyntheticCorpus(t *testing.T) {
	const vocab, seq = 48, 12
	corpus, err := data.SynthesizeCorpus(4800, vocab, 24, seq, 17)
	if err != nil {
		t.Fatal(err)
	}
	sampler := data.NewSampler(corpus, 3)

	g, err := NewGPT(GPTConfig{Vocab: vocab, Seq: seq, Dim: 16, Heads: 2, Layers: 1})
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float32, g.ParamCount())
	if err := g.Init(params, 5); err != nil {
		t.Fatal(err)
	}
	grads := make([]float32, g.ParamCount())

	evalLoss := func() float64 {
		var sum float64
		for i := 0; i < 8; i++ {
			s, _ := corpus.Sequence(i)
			l, err := g.Loss(params, s)
			if err != nil {
				t.Fatal(err)
			}
			sum += l
		}
		return sum / 8
	}

	first := evalLoss()
	const lr = 0.03
	for step := 0; step < 120; step++ {
		batch := sampler.Next(1)
		for i := range grads {
			grads[i] = 0
		}
		if _, err := g.Backward(params, batch[0], grads); err != nil {
			t.Fatal(err)
		}
		for i := range params {
			params[i] -= lr * grads[i]
		}
	}
	last := evalLoss()
	if last > first*0.8 {
		t.Errorf("corpus training barely helped: %.3f -> %.3f", first, last)
	}
	// The Zipfian skew means even a unigram-optimal model beats uniform.
	if ent := corpus.TokenEntropy(); last > first && last > ent {
		t.Errorf("loss %.3f above unigram entropy %.3f", last, ent)
	}
}
