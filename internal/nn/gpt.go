// Package nn implements a small decoder-only transformer language model
// (GPT-style) with a hand-written backward pass over a flat parameter
// vector. It is the training-computation substrate of the reproduction:
// instead of synthetic gradients, the offloading engine can be driven by
// the real gradients of a real next-token prediction loss, computed by
// exactly the architecture family the paper trains (Table 2's models are
// the same shape, three orders of magnitude larger).
//
// The flat []float32 parameter layout is what makes integration trivial:
// the engine shards the same vector into subgroups and offloads their
// optimizer state; nn computes loss and gradients over it.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// GPTConfig shapes the model.
type GPTConfig struct {
	Vocab  int // vocabulary size
	Seq    int // maximum sequence length
	Dim    int // embedding dimension
	Heads  int // attention heads (must divide Dim)
	Layers int // transformer blocks
}

// Validate rejects malformed configurations.
func (c GPTConfig) Validate() error {
	if c.Vocab < 2 || c.Seq < 2 || c.Dim < 1 || c.Heads < 1 || c.Layers < 1 {
		return fmt.Errorf("nn: degenerate config %+v", c)
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("nn: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	}
	return nil
}

// layerOffsets locates one block's parameters in the flat vector.
type layerOffsets struct {
	g1, b1         int // pre-attention layernorm
	wq, wk, wv, wo int // attention projections (D*D each)
	bq, bk, bv, bo int // attention biases (D each)
	g2, b2         int // pre-MLP layernorm
	w1, b1m        int // MLP up (D*4D, 4D)
	w2, b2m        int // MLP down (4D*D, D)
}

// GPT is the model: configuration plus the parameter layout. Parameters
// themselves live in a caller-owned flat slice.
type GPT struct {
	Cfg    GPTConfig
	wte    int // vocab embedding (V*D); also the tied output head
	wpe    int // positional embedding (Seq*D)
	layers []layerOffsets
	gf, bf int // final layernorm
	total  int
}

// NewGPT computes the parameter layout.
func NewGPT(cfg GPTConfig) (*GPT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPT{Cfg: cfg}
	d := cfg.Dim
	alloc := func(n int) int {
		off := g.total
		g.total += n
		return off
	}
	g.wte = alloc(cfg.Vocab * d)
	g.wpe = alloc(cfg.Seq * d)
	for l := 0; l < cfg.Layers; l++ {
		var lo layerOffsets
		lo.g1 = alloc(d)
		lo.b1 = alloc(d)
		lo.wq = alloc(d * d)
		lo.wk = alloc(d * d)
		lo.wv = alloc(d * d)
		lo.wo = alloc(d * d)
		lo.bq = alloc(d)
		lo.bk = alloc(d)
		lo.bv = alloc(d)
		lo.bo = alloc(d)
		lo.g2 = alloc(d)
		lo.b2 = alloc(d)
		lo.w1 = alloc(d * 4 * d)
		lo.b1m = alloc(4 * d)
		lo.w2 = alloc(4 * d * d)
		lo.b2m = alloc(d)
		g.layers = append(g.layers, lo)
	}
	g.gf = alloc(d)
	g.bf = alloc(d)
	return g, nil
}

// ParamCount returns the total number of parameters.
func (g *GPT) ParamCount() int64 { return int64(g.total) }

// Init writes a standard initialization into params (scaled normal
// weights, zero biases, unit layernorm gains). len(params) must equal
// ParamCount().
func (g *GPT) Init(params []float32, seed int64) error {
	if len(params) != g.total {
		return fmt.Errorf("nn: params len %d != %d", len(params), g.total)
	}
	rng := rand.New(rand.NewSource(seed))
	d := g.Cfg.Dim
	normal := func(off, n int, std float64) {
		for i := 0; i < n; i++ {
			params[off+i] = float32(rng.NormFloat64() * std)
		}
	}
	ones := func(off, n int) {
		for i := 0; i < n; i++ {
			params[off+i] = 1
		}
	}
	zeros := func(off, n int) {
		for i := 0; i < n; i++ {
			params[off+i] = 0
		}
	}
	std := 0.08
	normal(g.wte, g.Cfg.Vocab*d, std)
	normal(g.wpe, g.Cfg.Seq*d, std)
	for _, lo := range g.layers {
		ones(lo.g1, d)
		zeros(lo.b1, d)
		normal(lo.wq, d*d, std)
		normal(lo.wk, d*d, std)
		normal(lo.wv, d*d, std)
		normal(lo.wo, d*d, std/math.Sqrt(float64(2*g.Cfg.Layers)))
		zeros(lo.bq, d)
		zeros(lo.bk, d)
		zeros(lo.bv, d)
		zeros(lo.bo, d)
		ones(lo.g2, d)
		zeros(lo.b2, d)
		normal(lo.w1, d*4*d, std)
		zeros(lo.b1m, 4*d)
		normal(lo.w2, 4*d*d, std/math.Sqrt(float64(2*g.Cfg.Layers)))
		zeros(lo.b2m, d)
	}
	ones(g.gf, d)
	zeros(g.bf, d)
	return nil
}

// ---- forward/backward working set ----

// tape stores the activations one forward pass needs for backward.
type tape struct {
	T int       // sequence length used
	x []float32 // embedded input (T*D), pre-block
	// Per layer:
	ln1Out, ln1Mean, ln1Rstd []([]float32)
	q, k, v, attOut, attProb []([]float32)
	res1                     []([]float32) // x after attention residual
	ln2Out, ln2Mean, ln2Rstd []([]float32)
	mlpHidden, mlpAct        []([]float32) // pre/post GELU (T*4D)
	res2                     []([]float32) // x after MLP residual
	lnfOut, lnfMean, lnfRstd []float32
	probs                    []float32 // softmax over logits (T*V)
}

// Loss runs the forward pass and returns the mean next-token
// cross-entropy over tokens[0..T-1) predicting tokens[1..T).
func (g *GPT) Loss(params []float32, tokens []int) (float64, error) {
	_, loss, err := g.forward(params, tokens)
	return loss, err
}

// Backward computes the loss and accumulates dLoss/dParams into grads
// (which must be zeroed by the caller if fresh gradients are wanted).
func (g *GPT) Backward(params []float32, tokens []int, grads []float32) (float64, error) {
	if len(grads) != g.total {
		return 0, fmt.Errorf("nn: grads len %d != %d", len(grads), g.total)
	}
	tp, loss, err := g.forward(params, tokens)
	if err != nil {
		return 0, err
	}
	g.backward(params, tokens, grads, tp)
	return loss, nil
}

func (g *GPT) checkTokens(tokens []int) (int, error) {
	T := len(tokens)
	if T < 2 {
		return 0, fmt.Errorf("nn: need at least 2 tokens, got %d", T)
	}
	if T > g.Cfg.Seq {
		return 0, fmt.Errorf("nn: sequence %d exceeds max %d", T, g.Cfg.Seq)
	}
	for _, t := range tokens {
		if t < 0 || t >= g.Cfg.Vocab {
			return 0, fmt.Errorf("nn: token %d out of vocab %d", t, g.Cfg.Vocab)
		}
	}
	return T, nil
}
