// Package nn implements a small decoder-only transformer language model
// (GPT-style) with a hand-written backward pass over a flat parameter
// vector. It is the training-computation substrate of the reproduction:
// instead of synthetic gradients, the offloading engine can be driven by
// the real gradients of a real next-token prediction loss, computed by
// exactly the architecture family the paper trains (Table 2's models are
// the same shape, three orders of magnitude larger).
//
// The flat []float32 parameter layout is what makes integration trivial:
// the engine shards the same vector into subgroups and offloads their
// optimizer state; nn computes loss and gradients over it.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// GPTConfig shapes the model.
type GPTConfig struct {
	Vocab  int // vocabulary size
	Seq    int // maximum sequence length
	Dim    int // embedding dimension
	Heads  int // attention heads (must divide Dim)
	Layers int // transformer blocks
}

// Validate rejects malformed configurations.
func (c GPTConfig) Validate() error {
	if c.Vocab < 2 || c.Seq < 2 || c.Dim < 1 || c.Heads < 1 || c.Layers < 1 {
		return fmt.Errorf("nn: degenerate config %+v", c)
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("nn: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	}
	return nil
}

// layerOffsets locates one block's parameters in the flat vector.
type layerOffsets struct {
	g1, b1         int // pre-attention layernorm
	wq, wk, wv, wo int // attention projections (D*D each)
	bq, bk, bv, bo int // attention biases (D each)
	g2, b2         int // pre-MLP layernorm
	w1, b1m        int // MLP up (D*4D, 4D)
	w2, b2m        int // MLP down (4D*D, D)
}

// GPT is the model: configuration plus the parameter layout. Parameters
// themselves live in a caller-owned flat slice.
//
// Each instance owns one set of forward/backward scratch buffers
// (activations, tape, gradient temporaries), lazily sized on first use
// and reused across steps — a training loop allocates nothing per
// iteration. A GPT is therefore NOT safe for concurrent Loss/Backward
// calls; give each goroutine its own instance (the layout computation
// is cheap and parameters are caller-owned either way).
type GPT struct {
	Cfg    GPTConfig
	wte    int // vocab embedding (V*D); also the tied output head
	wpe    int // positional embedding (Seq*D)
	layers []layerOffsets
	gf, bf int // final layernorm
	total  int

	sc scratch // reused forward/backward working set
}

// NewGPT computes the parameter layout.
func NewGPT(cfg GPTConfig) (*GPT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPT{Cfg: cfg}
	d := cfg.Dim
	alloc := func(n int) int {
		off := g.total
		g.total += n
		return off
	}
	g.wte = alloc(cfg.Vocab * d)
	g.wpe = alloc(cfg.Seq * d)
	for l := 0; l < cfg.Layers; l++ {
		var lo layerOffsets
		lo.g1 = alloc(d)
		lo.b1 = alloc(d)
		lo.wq = alloc(d * d)
		lo.wk = alloc(d * d)
		lo.wv = alloc(d * d)
		lo.wo = alloc(d * d)
		lo.bq = alloc(d)
		lo.bk = alloc(d)
		lo.bv = alloc(d)
		lo.bo = alloc(d)
		lo.g2 = alloc(d)
		lo.b2 = alloc(d)
		lo.w1 = alloc(d * 4 * d)
		lo.b1m = alloc(4 * d)
		lo.w2 = alloc(4 * d * d)
		lo.b2m = alloc(d)
		g.layers = append(g.layers, lo)
	}
	g.gf = alloc(d)
	g.bf = alloc(d)
	return g, nil
}

// ParamCount returns the total number of parameters.
func (g *GPT) ParamCount() int64 { return int64(g.total) }

// Init writes a standard initialization into params (scaled normal
// weights, zero biases, unit layernorm gains). len(params) must equal
// ParamCount().
func (g *GPT) Init(params []float32, seed int64) error {
	if len(params) != g.total {
		return fmt.Errorf("nn: params len %d != %d", len(params), g.total)
	}
	rng := rand.New(rand.NewSource(seed))
	d := g.Cfg.Dim
	normal := func(off, n int, std float64) {
		for i := 0; i < n; i++ {
			params[off+i] = float32(rng.NormFloat64() * std)
		}
	}
	ones := func(off, n int) {
		for i := 0; i < n; i++ {
			params[off+i] = 1
		}
	}
	zeros := func(off, n int) {
		for i := 0; i < n; i++ {
			params[off+i] = 0
		}
	}
	std := 0.08
	normal(g.wte, g.Cfg.Vocab*d, std)
	normal(g.wpe, g.Cfg.Seq*d, std)
	for _, lo := range g.layers {
		ones(lo.g1, d)
		zeros(lo.b1, d)
		normal(lo.wq, d*d, std)
		normal(lo.wk, d*d, std)
		normal(lo.wv, d*d, std)
		normal(lo.wo, d*d, std/math.Sqrt(float64(2*g.Cfg.Layers)))
		zeros(lo.bq, d)
		zeros(lo.bk, d)
		zeros(lo.bv, d)
		zeros(lo.bo, d)
		ones(lo.g2, d)
		zeros(lo.b2, d)
		normal(lo.w1, d*4*d, std)
		zeros(lo.b1m, 4*d)
		normal(lo.w2, 4*d*d, std/math.Sqrt(float64(2*g.Cfg.Layers)))
		zeros(lo.b2m, d)
	}
	ones(g.gf, d)
	zeros(g.bf, d)
	return nil
}

// ---- forward/backward working set ----

// tape stores the activations one forward pass needs for backward. Its
// buffers live in the GPT's scratch and are reused across steps.
type tape struct {
	T int       // sequence length used
	x []float32 // embedded input (T*D), pre-block
	// Per layer:
	ln1Out, ln1Mean, ln1Rstd []([]float32)
	q, k, v, attOut, attProb []([]float32)
	res1                     []([]float32) // x after attention residual
	ln2Out, ln2Mean, ln2Rstd []([]float32)
	mlpHidden, mlpAct        []([]float32) // pre/post GELU (T*4D)
	res2                     []([]float32) // x after MLP residual
	lnfOut, lnfMean, lnfRstd []float32
	probs                    []float32 // softmax over logits (T*V)
}

// scratch is the per-instance working set: the forward tape plus every
// temporary the passes previously allocated per call. ensure sizes it
// for a sequence length; buffers that accumulate are zeroed at their
// point of use, full-overwrite buffers are reused as-is.
type scratch struct {
	T  int // sequence length the buffers are sized for
	tp tape

	xwork  []float32 // forward residual-stream working copy (T*D)
	branch []float32 // forward branch output staging (T*D)
	scores []float64 // attention softmax row (T)

	// Backward temporaries. dxA/dxB ping-pong as the residual-stream
	// gradient: at every layer boundary the live dx sits in dxA.
	dlnf          []float32 // T*D
	dxA, dxB      []float32 // T*D
	dact          []float32 // T*4D (doubles as dhidden)
	dln2          []float32 // T*D
	dctx          []float32 // T*D
	dq, dk, dv    []float32 // T*D
	dln1          []float32 // T*D
	dprob, dscore []float32 // T
}

// ensure (re)sizes the scratch for sequence length T. Growth is
// monotone: a shorter sequence reuses the larger buffers, re-sliced.
func (g *GPT) ensure(T int) *tape {
	sc := &g.sc
	d := g.Cfg.Dim
	L := g.Cfg.Layers
	V := g.Cfg.Vocab
	H := g.Cfg.Heads
	if sc.T >= T {
		sc.reslice(T, d, L, V, H)
		return &sc.tp
	}
	sc.T = T
	tp := &sc.tp
	tp.x = make([]float32, T*d)
	alloc2 := func(dst *[][]float32, per int) {
		s := make([][]float32, L)
		for l := range s {
			s[l] = make([]float32, per)
		}
		*dst = s
	}
	alloc2(&tp.ln1Out, T*d)
	alloc2(&tp.ln1Mean, T)
	alloc2(&tp.ln1Rstd, T)
	alloc2(&tp.q, T*d)
	alloc2(&tp.k, T*d)
	alloc2(&tp.v, T*d)
	alloc2(&tp.attOut, T*d)
	alloc2(&tp.attProb, H*T*T)
	alloc2(&tp.res1, T*d)
	alloc2(&tp.ln2Out, T*d)
	alloc2(&tp.ln2Mean, T)
	alloc2(&tp.ln2Rstd, T)
	alloc2(&tp.mlpHidden, T*4*d)
	alloc2(&tp.mlpAct, T*4*d)
	alloc2(&tp.res2, T*d)
	tp.lnfOut = make([]float32, T*d)
	tp.lnfMean = make([]float32, T)
	tp.lnfRstd = make([]float32, T)
	tp.probs = make([]float32, T*V)

	sc.xwork = make([]float32, T*d)
	sc.branch = make([]float32, T*d)
	sc.scores = make([]float64, T)
	sc.dlnf = make([]float32, T*d)
	sc.dxA = make([]float32, T*d)
	sc.dxB = make([]float32, T*d)
	sc.dact = make([]float32, T*4*d)
	sc.dln2 = make([]float32, T*d)
	sc.dctx = make([]float32, T*d)
	sc.dq = make([]float32, T*d)
	sc.dk = make([]float32, T*d)
	sc.dv = make([]float32, T*d)
	sc.dln1 = make([]float32, T*d)
	sc.dprob = make([]float32, T)
	sc.dscore = make([]float32, T)
	sc.reslice(T, d, L, V, H)
	return tp
}

// reslice trims every buffer to the lengths sequence length T needs
// (capacity may be larger after a longer earlier sequence).
func (sc *scratch) reslice(T, d, L, V, H int) {
	tp := &sc.tp
	tp.T = T
	tp.x = tp.x[:T*d]
	cut := func(s [][]float32, per int) {
		for l := range s {
			s[l] = s[l][:per]
		}
	}
	cut(tp.ln1Out, T*d)
	cut(tp.ln1Mean, T)
	cut(tp.ln1Rstd, T)
	cut(tp.q, T*d)
	cut(tp.k, T*d)
	cut(tp.v, T*d)
	cut(tp.attOut, T*d)
	cut(tp.attProb, H*T*T)
	cut(tp.res1, T*d)
	cut(tp.ln2Out, T*d)
	cut(tp.ln2Mean, T)
	cut(tp.ln2Rstd, T)
	cut(tp.mlpHidden, T*4*d)
	cut(tp.mlpAct, T*4*d)
	cut(tp.res2, T*d)
	tp.lnfOut = tp.lnfOut[:T*d]
	tp.lnfMean = tp.lnfMean[:T]
	tp.lnfRstd = tp.lnfRstd[:T]
	tp.probs = tp.probs[:T*V]
	sc.xwork = sc.xwork[:T*d]
	sc.branch = sc.branch[:T*d]
	sc.scores = sc.scores[:T]
	sc.dlnf = sc.dlnf[:T*d]
	sc.dxA = sc.dxA[:T*d]
	sc.dxB = sc.dxB[:T*d]
	sc.dact = sc.dact[:T*4*d]
	sc.dln2 = sc.dln2[:T*d]
	sc.dctx = sc.dctx[:T*d]
	sc.dq = sc.dq[:T*d]
	sc.dk = sc.dk[:T*d]
	sc.dv = sc.dv[:T*d]
	sc.dln1 = sc.dln1[:T*d]
	sc.dprob = sc.dprob[:T]
	sc.dscore = sc.dscore[:T]
}

// Loss runs the forward pass and returns the mean next-token
// cross-entropy over tokens[0..T-1) predicting tokens[1..T).
func (g *GPT) Loss(params []float32, tokens []int) (float64, error) {
	_, loss, err := g.forward(params, tokens)
	return loss, err
}

// Backward computes the loss and accumulates dLoss/dParams into grads
// (which must be zeroed by the caller if fresh gradients are wanted).
func (g *GPT) Backward(params []float32, tokens []int, grads []float32) (float64, error) {
	if len(grads) != g.total {
		return 0, fmt.Errorf("nn: grads len %d != %d", len(grads), g.total)
	}
	tp, loss, err := g.forward(params, tokens)
	if err != nil {
		return 0, err
	}
	g.backward(params, tokens, grads, tp)
	return loss, nil
}

func (g *GPT) checkTokens(tokens []int) (int, error) {
	T := len(tokens)
	if T < 2 {
		return 0, fmt.Errorf("nn: need at least 2 tokens, got %d", T)
	}
	if T > g.Cfg.Seq {
		return 0, fmt.Errorf("nn: sequence %d exceeds max %d", T, g.Cfg.Seq)
	}
	for _, t := range tokens {
		if t < 0 || t >= g.Cfg.Vocab {
			return 0, fmt.Errorf("nn: token %d out of vocab %d", t, g.Cfg.Vocab)
		}
	}
	return T, nil
}
