package nn

import "math"

// backward propagates dLoss through the tape, accumulating parameter
// gradients into grads. All formulas are the standard closed forms;
// correctness is pinned by the finite-difference gradient check in the
// tests. Gradient temporaries come from the instance scratch: the
// residual-stream gradient ping-pongs between two buffers (dxA holds it
// at every layer boundary), accumulating buffers are zeroed at their
// point of use, and layerNormBackwardInto fully overwrites its output.
func (g *GPT) backward(params []float32, tokens []int, grads []float32, tp *tape) {
	T := tp.T
	d := g.Cfg.Dim
	V := g.Cfg.Vocab
	L := g.Cfg.Layers
	sc := &g.sc

	// ---- head: softmax cross-entropy + tied embedding ----
	// dlogits[t,v] = (probs[t,v] - 1{v=target}) / (T-1)
	dlnf := sc.dlnf
	clear(dlnf)
	invN := float32(1 / float64(T-1))
	for t := 0; t < T-1; t++ {
		row := tp.probs[t*V : (t+1)*V]
		lnfRow := tp.lnfOut[t*d : (t+1)*d]
		dRow := dlnf[t*d : (t+1)*d]
		target := tokens[t+1]
		for vtok := 0; vtok < V; vtok++ {
			dl := row[vtok] * invN
			if vtok == target {
				dl -= invN
			}
			if dl == 0 {
				continue
			}
			w := params[g.wte+vtok*d : g.wte+(vtok+1)*d]
			dw := grads[g.wte+vtok*d : g.wte+(vtok+1)*d]
			for i := 0; i < d; i++ {
				dRow[i] += dl * w[i]
				dw[i] += dl * lnfRow[i]
			}
		}
	}

	// ---- final layernorm ----
	// Input to lnf is res2 of the last layer.
	xIn := tp.x
	if L > 0 {
		xIn = tp.res2[L-1]
	}
	dx := sc.dxA
	layerNormBackwardInto(dx, dlnf, xIn, params[g.gf:g.gf+d], tp.lnfMean, tp.lnfRstd,
		grads[g.gf:g.gf+d], grads[g.bf:g.bf+d], T, d)

	// ---- blocks in reverse ----
	for l := L - 1; l >= 0; l-- {
		lo := g.layers[l]
		// Residual 2: dx flows both into the MLP branch and straight
		// through.
		dmlpOut := dx // alias: gradient of the MLP output equals dx

		// MLP down: mout = act @ W2 + b2m.
		act := tp.mlpAct[l]
		dact := sc.dact
		clear(dact)
		linearBackward(dmlpOut, act, params[lo.w2:lo.w2+4*d*d],
			grads[lo.w2:lo.w2+4*d*d], grads[lo.b2m:lo.b2m+d], dact, T, 4*d, d)
		// GELU.
		hidden := tp.mlpHidden[l]
		dhidden := dact
		for i := range dhidden {
			dhidden[i] *= geluGrad(hidden[i])
		}
		// MLP up: hidden = ln2 @ W1 + b1m.
		ln2 := tp.ln2Out[l]
		dln2 := sc.dln2
		clear(dln2)
		linearBackward(dhidden, ln2, params[lo.w1:lo.w1+d*4*d],
			grads[lo.w1:lo.w1+d*4*d], grads[lo.b1m:lo.b1m+4*d], dln2, T, d, 4*d)
		// LayerNorm 2 over res1. dres1 lands in the buffer dx does not
		// occupy (dx is still read for the residual add below).
		dres1 := sc.other(dx)
		layerNormBackwardInto(dres1, dln2, tp.res1[l], params[lo.g2:lo.g2+d],
			tp.ln2Mean[l], tp.ln2Rstd[l], grads[lo.g2:lo.g2+d], grads[lo.b2:lo.b2+d], T, d)
		// Add the straight-through residual gradient.
		for i := range dres1 {
			dres1[i] += dx[i]
		}
		dx = dres1

		// Residual 1: dx splits into attention branch + passthrough.
		dattOut := dx
		// Output projection: att = ctx @ Wo + bo.
		ctx := tp.attOut[l]
		dctx := sc.dctx
		clear(dctx)
		linearBackward(dattOut, ctx, params[lo.wo:lo.wo+d*d],
			grads[lo.wo:lo.wo+d*d], grads[lo.bo:lo.bo+d], dctx, T, d, d)
		// Attention core.
		dq, dk, dv := sc.dq, sc.dk, sc.dv
		clear(dq)
		clear(dk)
		clear(dv)
		g.attentionBackward(dctx, tp.q[l], tp.k[l], tp.v[l], tp.attProb[l], dq, dk, dv, T)
		// QKV projections over ln1.
		ln1 := tp.ln1Out[l]
		dln1 := sc.dln1
		clear(dln1)
		linearBackward(dq, ln1, params[lo.wq:lo.wq+d*d],
			grads[lo.wq:lo.wq+d*d], grads[lo.bq:lo.bq+d], dln1, T, d, d)
		linearBackward(dk, ln1, params[lo.wk:lo.wk+d*d],
			grads[lo.wk:lo.wk+d*d], grads[lo.bk:lo.bk+d], dln1, T, d, d)
		linearBackward(dv, ln1, params[lo.wv:lo.wv+d*d],
			grads[lo.wv:lo.wv+d*d], grads[lo.bv:lo.bv+d], dln1, T, d, d)
		// LayerNorm 1 over the block input.
		blockIn := tp.x
		if l > 0 {
			blockIn = tp.res2[l-1]
		}
		dblockIn := sc.other(dx)
		layerNormBackwardInto(dblockIn, dln1, blockIn, params[lo.g1:lo.g1+d],
			tp.ln1Mean[l], tp.ln1Rstd[l], grads[lo.g1:lo.g1+d], grads[lo.b1:lo.b1+d], T, d)
		for i := range dblockIn {
			dblockIn[i] += dx[i]
		}
		dx = dblockIn
	}

	// ---- embeddings ----
	for t := 0; t < T; t++ {
		dwe := grads[g.wte+tokens[t]*d : g.wte+(tokens[t]+1)*d]
		dpe := grads[g.wpe+t*d : g.wpe+(t+1)*d]
		row := dx[t*d : (t+1)*d]
		for i := 0; i < d; i++ {
			dwe[i] += row[i]
			dpe[i] += row[i]
		}
	}
}

// other returns the residual-gradient ping-pong buffer dx does not
// currently occupy.
func (sc *scratch) other(dx []float32) []float32 {
	if &dx[0] == &sc.dxA[0] {
		return sc.dxB
	}
	return sc.dxA
}

// attentionBackward inverts the causal multi-head attention:
// ctx[t] = sum_s prob[t,s] v[s], prob = softmax(q.k/sqrt(hd)).
func (g *GPT) attentionBackward(dctx, q, k, v, prob []float32, dq, dk, dv []float32, T int) {
	d := g.Cfg.Dim
	H := g.Cfg.Heads
	hd := d / H
	scale := float32(1 / math.Sqrt(float64(hd)))
	dprob := g.sc.dprob
	dscore := g.sc.dscore
	for h := 0; h < H; h++ {
		off := h * hd
		for t := 0; t < T; t++ {
			p := prob[(h*T+t)*T:]
			dout := dctx[t*d+off : t*d+off+hd]
			// dv and dprob.
			for s := 0; s <= t; s++ {
				vs := v[s*d+off : s*d+off+hd]
				dvs := dv[s*d+off : s*d+off+hd]
				var dp float32
				ps := p[s]
				for i := 0; i < hd; i++ {
					dp += dout[i] * vs[i]
					dvs[i] += ps * dout[i]
				}
				dprob[s] = dp
			}
			// Softmax backward: dscore = p * (dprob - sum(p*dprob)).
			var acc float32
			for s := 0; s <= t; s++ {
				acc += p[s] * dprob[s]
			}
			for s := 0; s <= t; s++ {
				dscore[s] = p[s] * (dprob[s] - acc)
			}
			// Scores = q.k * scale.
			qt := q[t*d+off : t*d+off+hd]
			dqt := dq[t*d+off : t*d+off+hd]
			for s := 0; s <= t; s++ {
				ds := dscore[s] * scale
				if ds == 0 {
					continue
				}
				ks := k[s*d+off : s*d+off+hd]
				dks := dk[s*d+off : s*d+off+hd]
				for i := 0; i < hd; i++ {
					dqt[i] += ds * ks[i]
					dks[i] += ds * qt[i]
				}
			}
		}
	}
}

// linearBackward inverts y = x@W + b: accumulates dW, db and dx.
// dx may already hold gradient contributions (accumulated into).
func linearBackward(dy, x, w, dw, db, dx []float32, T, in, out int) {
	for t := 0; t < T; t++ {
		dyr := dy[t*out : (t+1)*out]
		xr := x[t*in : (t+1)*in]
		dxr := dx[t*in : (t+1)*in]
		for j := 0; j < out; j++ {
			db[j] += dyr[j]
		}
		for i := 0; i < in; i++ {
			wr := w[i*out : (i+1)*out]
			dwr := dw[i*out : (i+1)*out]
			xi := xr[i]
			var acc float32
			for j := 0; j < out; j++ {
				acc += wr[j] * dyr[j]
				dwr[j] += xi * dyr[j]
			}
			dxr[i] += acc
		}
	}
}

// layerNormBackwardInto inverts y = g*(x-mean)*rstd + b, writing dx into
// the caller's buffer (fully overwritten) and accumulating dg, db.
func layerNormBackwardInto(dx, dy, x, gain []float32, mean, rstd []float32, dg, db []float32, T, d int) {
	for t := 0; t < T; t++ {
		m := float64(mean[t])
		r := float64(rstd[t])
		xr := x[t*d : (t+1)*d]
		dyr := dy[t*d : (t+1)*d]
		dxr := dx[t*d : (t+1)*d]
		// Two reductions: mean(dxhat) and mean(dxhat*xhat).
		var s1, s2 float64
		for i := 0; i < d; i++ {
			xh := (float64(xr[i]) - m) * r
			dxh := float64(dyr[i]) * float64(gain[i])
			s1 += dxh
			s2 += dxh * xh
			dg[i] += dyr[i] * float32(xh)
			db[i] += dyr[i]
		}
		s1 /= float64(d)
		s2 /= float64(d)
		for i := 0; i < d; i++ {
			xh := (float64(xr[i]) - m) * r
			dxh := float64(dyr[i]) * float64(gain[i])
			dxr[i] = float32(r * (dxh - s1 - xh*s2))
		}
	}
}
