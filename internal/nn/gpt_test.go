package nn

import (
	"math"
	"math/rand"
	"testing"
)

func tinyGPT(t *testing.T) (*GPT, []float32) {
	t.Helper()
	g, err := NewGPT(GPTConfig{Vocab: 11, Seq: 8, Dim: 12, Heads: 3, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float32, g.ParamCount())
	if err := g.Init(params, 42); err != nil {
		t.Fatal(err)
	}
	return g, params
}

func TestConfigValidation(t *testing.T) {
	bad := []GPTConfig{
		{},
		{Vocab: 10, Seq: 8, Dim: 12, Heads: 5, Layers: 1}, // heads don't divide dim
		{Vocab: 1, Seq: 8, Dim: 12, Heads: 3, Layers: 1},  // vocab too small
	}
	for i, cfg := range bad {
		if _, err := NewGPT(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestParamCountFormula(t *testing.T) {
	g, _ := tinyGPT(t)
	d := 12
	perLayer := 2*d + 4*d*d + 4*d + 2*d + d*4*d + 4*d + 4*d*d + d
	want := 11*d + 8*d + 2*perLayer + 2*d
	if int(g.ParamCount()) != want {
		t.Errorf("params = %d, want %d", g.ParamCount(), want)
	}
}

func TestLossFiniteAndNearUniform(t *testing.T) {
	g, params := tinyGPT(t)
	tokens := []int{1, 2, 3, 4, 5, 6, 7, 8}
	loss, err := g.Loss(params, tokens)
	if err != nil {
		t.Fatal(err)
	}
	// A freshly initialized model predicts ~uniformly: loss ≈ ln(V).
	if math.IsNaN(loss) || math.Abs(loss-math.Log(11)) > 1.0 {
		t.Errorf("initial loss = %v, want ≈ ln(11) = %.2f", loss, math.Log(11))
	}
}

func TestTokenValidation(t *testing.T) {
	g, params := tinyGPT(t)
	if _, err := g.Loss(params, []int{1}); err == nil {
		t.Error("single token accepted")
	}
	if _, err := g.Loss(params, []int{1, 99}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	if _, err := g.Loss(params, make([]int, 100)); err == nil {
		t.Error("over-long sequence accepted")
	}
	if _, err := g.Backward(params, []int{1, 2}, make([]float32, 3)); err == nil {
		t.Error("wrong-size grads accepted")
	}
}

// TestGradCheck validates the entire backward pass against central finite
// differences — the definitive correctness proof for the transformer.
func TestGradCheck(t *testing.T) {
	g, err := NewGPT(GPTConfig{Vocab: 7, Seq: 5, Dim: 8, Heads: 2, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	params64 := make([]float32, g.ParamCount())
	if err := g.Init(params64, 7); err != nil {
		t.Fatal(err)
	}
	tokens := []int{1, 4, 2, 6, 3}
	grads := make([]float32, g.ParamCount())
	if _, err := g.Backward(params64, tokens, grads); err != nil {
		t.Fatal(err)
	}

	// Check a deterministic sample of parameters spanning every tensor.
	rng := rand.New(rand.NewSource(3))
	idxs := make([]int, 0, 60)
	for i := 0; i < 60; i++ {
		idxs = append(idxs, rng.Intn(int(g.ParamCount())))
	}
	// Ensure coverage of specific offsets: embeddings, attention, mlp, lnf.
	lo := g.layers[0]
	idxs = append(idxs, g.wte+3, g.wpe+5, lo.g1, lo.b1+2, lo.wq+9, lo.wo+4,
		lo.g2+1, lo.w1+17, lo.w2+23, lo.b2m, g.gf+2, g.bf)

	const eps = 1e-3
	bad := 0
	for _, idx := range idxs {
		orig := params64[idx]
		params64[idx] = orig + eps
		lp, err := g.Loss(params64, tokens)
		if err != nil {
			t.Fatal(err)
		}
		params64[idx] = orig - eps
		lm, err := g.Loss(params64, tokens)
		if err != nil {
			t.Fatal(err)
		}
		params64[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(grads[idx])
		// Central differences over a float32 forward carry ~1e-6/2e-3 ≈
		// 5e-4 of noise: accept either a small absolute error or a small
		// relative one.
		if math.Abs(numeric-analytic) < 7e-4 {
			continue
		}
		scale := math.Abs(numeric) + math.Abs(analytic)
		if math.Abs(numeric-analytic)/scale > 0.05 {
			t.Errorf("param %d: analytic %.6g vs numeric %.6g", idx, analytic, numeric)
			bad++
			if bad > 5 {
				t.Fatal("too many gradient mismatches")
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	g, params := tinyGPT(t)
	// A deterministic repeating sequence is learnable by heart.
	tokens := []int{1, 3, 5, 7, 9, 1, 3, 5}
	grads := make([]float32, g.ParamCount())
	first, err := g.Loss(params, tokens)
	if err != nil {
		t.Fatal(err)
	}
	lr := float32(0.05)
	for step := 0; step < 150; step++ {
		for i := range grads {
			grads[i] = 0
		}
		if _, err := g.Backward(params, tokens, grads); err != nil {
			t.Fatal(err)
		}
		for i := range params {
			params[i] -= lr * grads[i]
		}
	}
	last, err := g.Loss(params, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if last > first*0.5 {
		t.Errorf("loss did not halve: %.4f -> %.4f", first, last)
	}
}

func TestBackwardAccumulates(t *testing.T) {
	g, params := tinyGPT(t)
	tokens := []int{2, 4, 6, 8}
	g1 := make([]float32, g.ParamCount())
	if _, err := g.Backward(params, tokens, g1); err != nil {
		t.Fatal(err)
	}
	g2 := make([]float32, g.ParamCount())
	if _, err := g.Backward(params, tokens, g2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Backward(params, tokens, g2); err != nil {
		t.Fatal(err)
	}
	// g2 accumulated two passes: must equal 2*g1.
	for i := range g1 {
		if math.Abs(float64(g2[i]-2*g1[i])) > 1e-4+1e-3*math.Abs(float64(g1[i])) {
			t.Fatalf("accumulation broken at %d: %v vs 2*%v", i, g2[i], g1[i])
		}
	}
}

func TestDeterministicForward(t *testing.T) {
	g, params := tinyGPT(t)
	tokens := []int{1, 2, 3}
	a, _ := g.Loss(params, tokens)
	b, _ := g.Loss(params, tokens)
	if a != b {
		t.Errorf("forward not deterministic: %v vs %v", a, b)
	}
}

func TestGeluGradMatchesNumeric(t *testing.T) {
	for _, x := range []float32{-3, -1, -0.1, 0, 0.1, 1, 3} {
		const h = 1e-3
		numeric := (gelu(x+h) - gelu(x-h)) / (2 * h)
		analytic := geluGrad(x)
		if math.Abs(float64(numeric-analytic)) > 1e-3 {
			t.Errorf("gelu'(%v): analytic %v vs numeric %v", x, analytic, numeric)
		}
	}
}

func BenchmarkBackward(b *testing.B) {
	g, err := NewGPT(GPTConfig{Vocab: 64, Seq: 32, Dim: 64, Heads: 4, Layers: 4})
	if err != nil {
		b.Fatal(err)
	}
	params := make([]float32, g.ParamCount())
	if err := g.Init(params, 1); err != nil {
		b.Fatal(err)
	}
	tokens := make([]int, 32)
	for i := range tokens {
		tokens[i] = (i * 7) % 64
	}
	grads := make([]float32, g.ParamCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grads {
			grads[j] = 0
		}
		if _, err := g.Backward(params, tokens, grads); err != nil {
			b.Fatal(err)
		}
	}
}
