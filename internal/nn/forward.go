package nn

import "math"

const lnEps = 1e-5

// forward runs the model and returns the tape and mean cross-entropy.
func (g *GPT) forward(params []float32, tokens []int) (*tape, float64, error) {
	T, err := g.checkTokens(tokens)
	if err != nil {
		return nil, 0, err
	}
	d := g.Cfg.Dim
	L := g.Cfg.Layers
	tp := &tape{T: T}

	// Embedding.
	tp.x = make([]float32, T*d)
	for t := 0; t < T; t++ {
		we := g.wte + tokens[t]*d
		pe := g.wpe + t*d
		for i := 0; i < d; i++ {
			tp.x[t*d+i] = params[we+i] + params[pe+i]
		}
	}

	x := append([]float32(nil), tp.x...)
	for l := 0; l < L; l++ {
		lo := g.layers[l]

		ln1, m1, r1 := layerNorm(x, params[lo.g1:lo.g1+d], params[lo.b1:lo.b1+d], T, d)
		tp.ln1Out = append(tp.ln1Out, ln1)
		tp.ln1Mean = append(tp.ln1Mean, m1)
		tp.ln1Rstd = append(tp.ln1Rstd, r1)

		q := linear(ln1, params[lo.wq:lo.wq+d*d], params[lo.bq:lo.bq+d], T, d, d)
		k := linear(ln1, params[lo.wk:lo.wk+d*d], params[lo.bk:lo.bk+d], T, d, d)
		v := linear(ln1, params[lo.wv:lo.wv+d*d], params[lo.bv:lo.bv+d], T, d, d)
		tp.q = append(tp.q, q)
		tp.k = append(tp.k, k)
		tp.v = append(tp.v, v)

		ctx, prob := g.attention(q, k, v, T)
		tp.attProb = append(tp.attProb, prob)

		att := linear(ctx, params[lo.wo:lo.wo+d*d], params[lo.bo:lo.bo+d], T, d, d)
		tp.attOut = append(tp.attOut, ctx)

		for i := range x {
			x[i] += att[i]
		}
		res1 := append([]float32(nil), x...)
		tp.res1 = append(tp.res1, res1)

		ln2, m2, r2 := layerNorm(x, params[lo.g2:lo.g2+d], params[lo.b2:lo.b2+d], T, d)
		tp.ln2Out = append(tp.ln2Out, ln2)
		tp.ln2Mean = append(tp.ln2Mean, m2)
		tp.ln2Rstd = append(tp.ln2Rstd, r2)

		hidden := linear(ln2, params[lo.w1:lo.w1+d*4*d], params[lo.b1m:lo.b1m+4*d], T, d, 4*d)
		tp.mlpHidden = append(tp.mlpHidden, hidden)
		act := make([]float32, len(hidden))
		for i, h := range hidden {
			act[i] = gelu(h)
		}
		tp.mlpAct = append(tp.mlpAct, act)
		mout := linear(act, params[lo.w2:lo.w2+4*d*d], params[lo.b2m:lo.b2m+d], T, 4*d, d)

		for i := range x {
			x[i] += mout[i]
		}
		res2 := append([]float32(nil), x...)
		tp.res2 = append(tp.res2, res2)
	}

	lnf, mf, rf := layerNorm(x, params[g.gf:g.gf+d], params[g.bf:g.bf+d], T, d)
	tp.lnfOut = lnf
	tp.lnfMean = mf
	tp.lnfRstd = rf

	// Tied output head + softmax cross-entropy on next-token targets.
	V := g.Cfg.Vocab
	tp.probs = make([]float32, T*V)
	loss := 0.0
	n := 0
	for t := 0; t < T-1; t++ {
		row := tp.probs[t*V : (t+1)*V]
		maxL := float32(math.Inf(-1))
		for vtok := 0; vtok < V; vtok++ {
			s := dot(lnf[t*d:(t+1)*d], params[g.wte+vtok*d:g.wte+(vtok+1)*d])
			row[vtok] = s
			if s > maxL {
				maxL = s
			}
		}
		var sum float64
		for vtok := 0; vtok < V; vtok++ {
			e := math.Exp(float64(row[vtok] - maxL))
			row[vtok] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for vtok := 0; vtok < V; vtok++ {
			row[vtok] *= inv
		}
		loss += -math.Log(math.Max(float64(row[tokens[t+1]]), 1e-30))
		n++
	}
	return tp, loss / float64(n), nil
}

// attention computes causal multi-head attention. Returns the context
// (T*D) and the attention probabilities (heads*T*T) for the tape.
func (g *GPT) attention(q, k, v []float32, T int) (ctx, prob []float32) {
	d := g.Cfg.Dim
	H := g.Cfg.Heads
	hd := d / H
	scale := float32(1 / math.Sqrt(float64(hd)))
	ctx = make([]float32, T*d)
	prob = make([]float32, H*T*T)
	scores := make([]float64, T)
	for h := 0; h < H; h++ {
		off := h * hd
		for t := 0; t < T; t++ {
			maxS := math.Inf(-1)
			for s := 0; s <= t; s++ {
				sc := float64(dot(q[t*d+off:t*d+off+hd], k[s*d+off:s*d+off+hd]) * scale)
				scores[s] = sc
				if sc > maxS {
					maxS = sc
				}
			}
			var sum float64
			for s := 0; s <= t; s++ {
				scores[s] = math.Exp(scores[s] - maxS)
				sum += scores[s]
			}
			p := prob[(h*T+t)*T:]
			for s := 0; s <= t; s++ {
				p[s] = float32(scores[s] / sum)
			}
			out := ctx[t*d+off : t*d+off+hd]
			for s := 0; s <= t; s++ {
				ps := p[s]
				vs := v[s*d+off : s*d+off+hd]
				for i := 0; i < hd; i++ {
					out[i] += ps * vs[i]
				}
			}
		}
	}
	return ctx, prob
}

// layerNorm normalizes each row of x (T rows of width d) and applies
// gain/bias. Returns output, per-row means and reciprocal stddevs.
func layerNorm(x, g, b []float32, T, d int) (out, mean, rstd []float32) {
	out = make([]float32, T*d)
	mean = make([]float32, T)
	rstd = make([]float32, T)
	for t := 0; t < T; t++ {
		row := x[t*d : (t+1)*d]
		var m float64
		for _, v := range row {
			m += float64(v)
		}
		m /= float64(d)
		var va float64
		for _, v := range row {
			dv := float64(v) - m
			va += dv * dv
		}
		va /= float64(d)
		r := 1 / math.Sqrt(va+lnEps)
		mean[t] = float32(m)
		rstd[t] = float32(r)
		o := out[t*d : (t+1)*d]
		for i, v := range row {
			xh := (float64(v) - m) * r
			o[i] = float32(xh)*g[i] + b[i]
		}
	}
	return out, mean, rstd
}

// linear computes y = x@W + b with x (T*in), W (in*out, row-major), b (out).
func linear(x, w, b []float32, T, in, out int) []float32 {
	y := make([]float32, T*out)
	for t := 0; t < T; t++ {
		xr := x[t*in : (t+1)*in]
		yr := y[t*out : (t+1)*out]
		copy(yr, b)
		for i := 0; i < in; i++ {
			xi := xr[i]
			if xi == 0 {
				continue
			}
			wr := w[i*out : (i+1)*out]
			for j := 0; j < out; j++ {
				yr[j] += xi * wr[j]
			}
		}
	}
	return y
}

func dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

// gelu is the tanh-approximated GELU activation.
func gelu(x float32) float32 {
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(geluC*(xf+0.044715*xf*xf*xf))))
}

// geluGrad is d(gelu)/dx.
func geluGrad(x float32) float32 {
	xf := float64(x)
	u := geluC * (xf + 0.044715*xf*xf*xf)
	th := math.Tanh(u)
	du := geluC * (1 + 3*0.044715*xf*xf)
	return float32(0.5*(1+th) + 0.5*xf*(1-th*th)*du)
}
