package nn

import "math"

const lnEps = 1e-5

// forward runs the model and returns the tape and mean cross-entropy.
// All working buffers come from the instance scratch (see GPT doc):
// nothing is allocated per call, and every buffer is either fully
// overwritten here or zeroed at its point of use.
func (g *GPT) forward(params []float32, tokens []int) (*tape, float64, error) {
	T, err := g.checkTokens(tokens)
	if err != nil {
		return nil, 0, err
	}
	d := g.Cfg.Dim
	L := g.Cfg.Layers
	tp := g.ensure(T)

	// Embedding.
	for t := 0; t < T; t++ {
		we := g.wte + tokens[t]*d
		pe := g.wpe + t*d
		row := tp.x[t*d : (t+1)*d]
		for i := 0; i < d; i++ {
			row[i] = params[we+i] + params[pe+i]
		}
	}

	x := g.sc.xwork
	copy(x, tp.x)
	for l := 0; l < L; l++ {
		lo := g.layers[l]

		layerNormInto(tp.ln1Out[l], tp.ln1Mean[l], tp.ln1Rstd[l],
			x, params[lo.g1:lo.g1+d], params[lo.b1:lo.b1+d], T, d)
		ln1 := tp.ln1Out[l]

		linearInto(tp.q[l], ln1, params[lo.wq:lo.wq+d*d], params[lo.bq:lo.bq+d], T, d, d)
		linearInto(tp.k[l], ln1, params[lo.wk:lo.wk+d*d], params[lo.bk:lo.bk+d], T, d, d)
		linearInto(tp.v[l], ln1, params[lo.wv:lo.wv+d*d], params[lo.bv:lo.bv+d], T, d, d)

		// attOut stores the attention *context* (pre-projection), which
		// is what the backward pass needs.
		g.attentionInto(tp.attOut[l], tp.attProb[l], tp.q[l], tp.k[l], tp.v[l], T)

		// The projected attention output is only ever added into the
		// residual stream, so it stages through a transient branch
		// buffer rather than the tape.
		att := g.sc.branch
		linearInto(att, tp.attOut[l], params[lo.wo:lo.wo+d*d], params[lo.bo:lo.bo+d], T, d, d)
		for i := range x {
			x[i] += att[i]
		}
		copy(tp.res1[l], x)

		layerNormInto(tp.ln2Out[l], tp.ln2Mean[l], tp.ln2Rstd[l],
			x, params[lo.g2:lo.g2+d], params[lo.b2:lo.b2+d], T, d)

		linearInto(tp.mlpHidden[l], tp.ln2Out[l], params[lo.w1:lo.w1+d*4*d], params[lo.b1m:lo.b1m+4*d], T, d, 4*d)
		hidden := tp.mlpHidden[l]
		act := tp.mlpAct[l]
		for i, h := range hidden {
			act[i] = gelu(h)
		}
		mout := g.sc.branch
		linearInto(mout, act, params[lo.w2:lo.w2+4*d*d], params[lo.b2m:lo.b2m+d], T, 4*d, d)
		for i := range x {
			x[i] += mout[i]
		}
		copy(tp.res2[l], x)
	}

	layerNormInto(tp.lnfOut, tp.lnfMean, tp.lnfRstd,
		x, params[g.gf:g.gf+d], params[g.bf:g.bf+d], T, d)
	lnf := tp.lnfOut

	// Tied output head + softmax cross-entropy on next-token targets.
	V := g.Cfg.Vocab
	loss := 0.0
	n := 0
	for t := 0; t < T-1; t++ {
		row := tp.probs[t*V : (t+1)*V]
		maxL := float32(math.Inf(-1))
		for vtok := 0; vtok < V; vtok++ {
			s := dot(lnf[t*d:(t+1)*d], params[g.wte+vtok*d:g.wte+(vtok+1)*d])
			row[vtok] = s
			if s > maxL {
				maxL = s
			}
		}
		var sum float64
		for vtok := 0; vtok < V; vtok++ {
			e := math.Exp(float64(row[vtok] - maxL))
			row[vtok] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for vtok := 0; vtok < V; vtok++ {
			row[vtok] *= inv
		}
		loss += -math.Log(math.Max(float64(row[tokens[t+1]]), 1e-30))
		n++
	}
	return tp, loss / float64(n), nil
}

// attentionInto computes causal multi-head attention into ctx (T*D) and
// the attention probabilities into prob (heads*T*T), both scratch
// buffers: ctx accumulates and is zeroed here; prob rows are written
// for exactly the causal range the backward pass reads.
func (g *GPT) attentionInto(ctx, prob, q, k, v []float32, T int) {
	d := g.Cfg.Dim
	H := g.Cfg.Heads
	hd := d / H
	scale := float32(1 / math.Sqrt(float64(hd)))
	clear(ctx)
	scores := g.sc.scores
	for h := 0; h < H; h++ {
		off := h * hd
		for t := 0; t < T; t++ {
			maxS := math.Inf(-1)
			for s := 0; s <= t; s++ {
				sc := float64(dot(q[t*d+off:t*d+off+hd], k[s*d+off:s*d+off+hd]) * scale)
				scores[s] = sc
				if sc > maxS {
					maxS = sc
				}
			}
			var sum float64
			for s := 0; s <= t; s++ {
				scores[s] = math.Exp(scores[s] - maxS)
				sum += scores[s]
			}
			p := prob[(h*T+t)*T:]
			for s := 0; s <= t; s++ {
				p[s] = float32(scores[s] / sum)
			}
			out := ctx[t*d+off : t*d+off+hd]
			for s := 0; s <= t; s++ {
				ps := p[s]
				vs := v[s*d+off : s*d+off+hd]
				for i := 0; i < hd; i++ {
					out[i] += ps * vs[i]
				}
			}
		}
	}
}

// layerNormInto normalizes each row of x (T rows of width d) and applies
// gain/bias, writing output, per-row means and reciprocal stddevs into
// the caller's buffers (fully overwritten).
func layerNormInto(out, mean, rstd, x, g, b []float32, T, d int) {
	for t := 0; t < T; t++ {
		row := x[t*d : (t+1)*d]
		var m float64
		for _, v := range row {
			m += float64(v)
		}
		m /= float64(d)
		var va float64
		for _, v := range row {
			dv := float64(v) - m
			va += dv * dv
		}
		va /= float64(d)
		r := 1 / math.Sqrt(va+lnEps)
		mean[t] = float32(m)
		rstd[t] = float32(r)
		o := out[t*d : (t+1)*d]
		for i, v := range row {
			xh := (float64(v) - m) * r
			o[i] = float32(xh)*g[i] + b[i]
		}
	}
}

// linearInto computes y = x@W + b with x (T*in), W (in*out, row-major),
// b (out), writing into y (fully overwritten).
func linearInto(y, x, w, b []float32, T, in, out int) {
	for t := 0; t < T; t++ {
		xr := x[t*in : (t+1)*in]
		yr := y[t*out : (t+1)*out]
		copy(yr, b)
		for i := 0; i < in; i++ {
			xi := xr[i]
			if xi == 0 {
				continue
			}
			wr := w[i*out : (i+1)*out]
			for j := 0; j < out; j++ {
				yr[j] += xi * wr[j]
			}
		}
	}
}

func dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

// gelu is the tanh-approximated GELU activation.
func gelu(x float32) float32 {
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(geluC*(xf+0.044715*xf*xf*xf))))
}

// geluGrad is d(gelu)/dx.
func geluGrad(x float32) float32 {
	xf := float64(x)
	u := geluC * (xf + 0.044715*xf*xf*xf)
	th := math.Tanh(u)
	du := geluC * (1 + 3*0.044715*xf*xf)
	return float32(0.5*(1+th) + 0.5*xf*(1-th*th)*du)
}
