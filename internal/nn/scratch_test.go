package nn

import (
	"math/rand"
	"testing"
)

// TestScratchReuseMatchesFresh runs the same sequence through one
// reused instance and through fresh instances, with an interleaved
// shorter sequence to dirty the scratch: losses and gradients must be
// bit-identical (scratch reuse may not leak state between steps).
func TestScratchReuseMatchesFresh(t *testing.T) {
	cfg := GPTConfig{Vocab: 11, Seq: 9, Dim: 12, Heads: 3, Layers: 2}
	reused, err := NewGPT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float32, reused.ParamCount())
	if err := reused.Init(params, 7); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	mkTokens := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = rng.Intn(cfg.Vocab)
		}
		return out
	}

	seqs := [][]int{mkTokens(9), mkTokens(4), mkTokens(9), mkTokens(2), mkTokens(7)}
	for step, tokens := range seqs {
		fresh, err := NewGPT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gr := make([]float32, len(params))
		gf := make([]float32, len(params))
		lr, err := reused.Backward(params, tokens, gr)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := fresh.Backward(params, tokens, gf)
		if err != nil {
			t.Fatal(err)
		}
		if lr != lf {
			t.Fatalf("step %d: loss %v (reused) != %v (fresh)", step, lr, lf)
		}
		for i := range gr {
			if gr[i] != gf[i] {
				t.Fatalf("step %d: grad[%d] %v != %v", step, i, gr[i], gf[i])
			}
		}
	}
}

// TestBackwardSteadyStateAllocs pins the satellite claim: after warmup,
// a forward+backward step allocates nothing.
func TestBackwardSteadyStateAllocs(t *testing.T) {
	g, err := NewGPT(GPTConfig{Vocab: 11, Seq: 8, Dim: 12, Heads: 3, Layers: 2})
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float32, g.ParamCount())
	if err := g.Init(params, 3); err != nil {
		t.Fatal(err)
	}
	grads := make([]float32, len(params))
	tokens := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := g.Backward(params, tokens, grads); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := g.Backward(params, tokens, grads); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Backward allocates %v objects/step, want 0", allocs)
	}
}
