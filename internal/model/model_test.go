package model

import (
	"testing"
	"testing/quick"
)

func TestTable2Complete(t *testing.T) {
	cs := Table2()
	if len(cs) != 7 {
		t.Fatalf("Table2 has %d models, want 7", len(cs))
	}
	want := map[string]struct{ l, d, h int }{
		"40B":  {128, 5120, 40},
		"52B":  {64, 8192, 64},
		"70B":  {80, 8192, 64},
		"100B": {124, 8192, 64},
		"120B": {96, 10240, 80},
		"130B": {70, 12288, 96},
		"280B": {72, 16384, 128},
	}
	for _, c := range cs {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected model %s", c.Name)
			continue
		}
		if c.Layers != w.l || c.Hidden != w.d || c.Heads != w.h {
			t.Errorf("%s = (%d,%d,%d), want (%d,%d,%d)", c.Name, c.Layers, c.Hidden, c.Heads, w.l, w.d, w.h)
		}
	}
}

func TestNominalParamsPinned(t *testing.T) {
	c, err := ByName("40B")
	if err != nil {
		t.Fatal(err)
	}
	if c.Params() != 40e9 {
		t.Errorf("40B params = %d", c.Params())
	}
}

func TestDerivedParamsReasonable(t *testing.T) {
	// Without the nominal pin, the architecture-derived count should land
	// within 25% of the marketing size for every Table 2 model.
	for _, c := range Table2() {
		nominal := float64(c.Params())
		c.NominalParams = 0
		derived := float64(c.Params())
		ratio := derived / nominal
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%s derived %.2fB vs nominal %.2fB (ratio %.2f)", c.Name, derived/1e9, nominal/1e9, ratio)
		}
	}
}

func TestSizing(t *testing.T) {
	c, _ := ByName("120B")
	s := c.Size()
	// Paper: "at 120B parameters, the optimizer state reaches 1.8 TB".
	optTB := float64(s.OptimStateBytes) / 1e12
	if optTB < 1.35 || optTB > 1.55 {
		// 120e9 * 12 = 1.44e12. With the baseline's FP32 gradients the
		// moved volume per iteration is 16 B/param = 1.92 TB, matching
		// the paper's "reaches 1.8 TB" framing (state + grads in flight).
		t.Errorf("120B optimizer state = %.2f TB", optTB)
	}
	total := float64(s.OptimStateBytes+s.FP32GradBytes) / 1e12
	if total < 1.8 || total > 2.0 {
		t.Errorf("120B optimizer+grad volume = %.2f TB, want ~1.9", total)
	}
	if s.BaselineFetchBytesPerParam != 16 || s.MLPFetchBytesPerParam != 12 {
		t.Errorf("fetch bytes/param = %d/%d, want 16/12", s.BaselineFetchBytesPerParam, s.MLPFetchBytesPerParam)
	}
}

func TestSubgroupCount(t *testing.T) {
	c, _ := ByName("40B")
	// Paper methodology: subgroup size 100M params -> 400 subgroups at 40B.
	if got := c.SubgroupCount(100e6); got != 400 {
		t.Errorf("40B/100M subgroups = %d, want 400", got)
	}
	if got := c.SubgroupCount(1e9); got != 40 {
		t.Errorf("40B/1B subgroups = %d, want 40", got)
	}
}

func TestSubgroupCountCeil(t *testing.T) {
	c := Config{Name: "x", NominalParams: 101}
	if got := c.SubgroupCount(50); got != 3 {
		t.Errorf("ceil division broken: %d", got)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
	if c, err := ByName("20B"); err != nil || c.Params() != 20e9 {
		t.Errorf("20B lookup failed: %v %v", c, err)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 7 || names[0] != "40B" || names[len(names)-1] != "280B" {
		t.Errorf("Names() = %v", names)
	}
}

func TestScaled(t *testing.T) {
	c, _ := ByName("40B")
	s := c.Scaled(1000)
	if s.Params() != 40e6 {
		t.Errorf("scaled params = %d, want 40e6", s.Params())
	}
	if s.Layers != c.Layers || s.Hidden != c.Hidden {
		t.Error("Scaled must preserve architecture shape fields")
	}
}

func TestScaledPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Config{}.Scaled(0)
}

func TestPropertySubgroupCountCoversParams(t *testing.T) {
	f := func(pSeed, gSeed uint32) bool {
		p := int64(pSeed%1e9) + 1
		g := int64(gSeed%1e7) + 1
		c := Config{Name: "q", NominalParams: p}
		n := int64(c.SubgroupCount(g))
		return n*g >= p && (n-1)*g < p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFLOPsPerToken(t *testing.T) {
	c, _ := ByName("40B")
	if got := c.FLOPsPerToken(); got != 2*40e9 {
		t.Errorf("FLOPs/token = %g", got)
	}
}
