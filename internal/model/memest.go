package model

import "fmt"

// MemoryEstimate is the per-node memory breakdown for ZeRO-3 mixed
// precision training, in the style of the DeepSpeed memory estimator the
// paper references. It determines which offloading level a configuration
// needs: GPU-only, CPU (host) optimizer offload, or third-level (NVMe/PFS)
// offload.
type MemoryEstimate struct {
	// GPU-side, per node (aggregated over the node's GPUs).
	FP16ParamsBytes     int64 // working parameter copy
	ActivationCkptBytes int64 // activation checkpoints, micro-batch 1
	FP16GradBytes       int64 // one subgroup's transient gradients per GPU
	GPUTotalBytes       int64
	// Host-side, per node.
	OptimizerStateBytes int64 // FP32 params + momentum + variance
	RuntimeBufferBytes  int64 // gradient accumulation, all-reduce buckets, pinned staging
	HostTotalBytes      int64
}

// EstimateArgs parameterizes the estimate.
type EstimateArgs struct {
	GPUsPerNode    int
	Nodes          int
	SubgroupParams int64
	// RuntimeBufferBytes overrides the default runtime reservation
	// (0 = 2 bytes/param for the FP16 gradient accumulation buffer plus
	// 10% slack).
	RuntimeBufferBytes int64
}

// Estimate computes the node-level memory demand of training c under
// ZeRO-3 with host-offloaded optimizer state.
func (c Config) Estimate(a EstimateArgs) MemoryEstimate {
	if a.GPUsPerNode <= 0 {
		a.GPUsPerNode = 4
	}
	if a.Nodes <= 0 {
		a.Nodes = 1
	}
	if a.SubgroupParams <= 0 {
		a.SubgroupParams = 100e6
	}
	p := c.Params()
	perNodeParams := p / int64(a.Nodes)

	var m MemoryEstimate
	m.FP16ParamsBytes = perNodeParams * FP16Bytes
	// Activation checkpoints: one FP16 activation per layer boundary per
	// token (seq * hidden * layers * 2 bytes), per GPU micro-batch.
	seq := int64(c.SeqLen)
	if seq == 0 {
		seq = DefaultSeqLen
	}
	m.ActivationCkptBytes = int64(a.GPUsPerNode) * seq * int64(c.Hidden) * int64(c.Layers) * FP16Bytes
	m.FP16GradBytes = int64(a.GPUsPerNode) * a.SubgroupParams * FP16Bytes
	m.GPUTotalBytes = m.FP16ParamsBytes + m.ActivationCkptBytes + m.FP16GradBytes

	m.OptimizerStateBytes = perNodeParams * 3 * FP32Bytes
	if a.RuntimeBufferBytes > 0 {
		m.RuntimeBufferBytes = a.RuntimeBufferBytes
	} else {
		// FP16 gradient accumulation (2 B/param) plus all-reduce buckets
		// and pinned staging (~3 B/param) — consistent with the 250-350 GB
		// the paper reports for 40-120B models.
		m.RuntimeBufferBytes = perNodeParams * 5
	}
	m.HostTotalBytes = m.OptimizerStateBytes + m.RuntimeBufferBytes
	return m
}

// OffloadLevel classifies where a configuration's state must live.
type OffloadLevel int

const (
	// GPUOnly: everything fits in aggregated GPU memory.
	GPUOnly OffloadLevel = iota
	// CPUOffload: optimizer state fits in host memory.
	CPUOffload
	// ThirdLevel: optimizer state exceeds host memory and spills to
	// NVMe/PFS — the regime MLP-Offload targets.
	ThirdLevel
)

func (l OffloadLevel) String() string {
	switch l {
	case GPUOnly:
		return "gpu-only"
	case CPUOffload:
		return "cpu-offload"
	case ThirdLevel:
		return "third-level-offload"
	default:
		return fmt.Sprintf("OffloadLevel(%d)", int(l))
	}
}

// RequiredOffload decides the offloading level for a node with the given
// memory capacities.
func (m MemoryEstimate) RequiredOffload(gpuMemBytes, hostMemBytes int64) OffloadLevel {
	// GPU-only additionally needs the optimizer state plus FP32 gradients
	// on the GPUs (ZeRO-3's 16 B/param residency).
	fp32Grads := m.OptimizerStateBytes / 3
	if m.GPUTotalBytes+m.OptimizerStateBytes+fp32Grads <= gpuMemBytes {
		return GPUOnly
	}
	if m.HostTotalBytes <= hostMemBytes {
		return CPUOffload
	}
	return ThirdLevel
}

// FitsGPU reports whether the working set (excluding optimizer state)
// fits the node's aggregate GPU memory — the feasibility precondition the
// paper's methodology states ("aggregated GPU memory is sufficient to
// store FP16 parameters, activation checkpoints, and one subgroup's FP16
// gradients").
func (m MemoryEstimate) FitsGPU(gpuMemBytes int64) bool {
	return m.GPUTotalBytes <= gpuMemBytes
}
