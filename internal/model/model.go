// Package model describes the transformer model configurations used in the
// paper's evaluation (Table 2), parameter counting, and per-iteration
// memory/compute sizing for mixed-precision ZeRO-3 training.
package model

import (
	"fmt"
	"sort"
)

// Config is a decoder-only transformer configuration in the style of
// Table 2 of the paper.
type Config struct {
	Name      string
	Layers    int // N_L: number of transformer layers
	Hidden    int // D_H: hidden dimension
	Heads     int // A_H: attention heads
	VocabSize int // tokenizer vocabulary (LLaMA2 default)
	SeqLen    int // training sequence length

	// NominalParams, when non-zero, pins the advertised parameter count
	// (e.g. "40B") instead of the analytically derived one; the paper's
	// table names models by their marketing size.
	NominalParams int64
}

// DefaultVocab is the LLaMA2 tokenizer vocabulary size used throughout the
// paper's methodology.
const DefaultVocab = 32000

// DefaultSeqLen is the sequence length used in the paper (OPT-style 2048).
const DefaultSeqLen = 2048

// Params returns the model's parameter count. If NominalParams is set it
// wins; otherwise the count is derived from the architecture:
//
//	per-layer: 4*D^2 (attention QKVO) + 8*D^2 (MLP, 4x expansion) + 2*2*D (norms)
//	embeddings: V*D (+ D*V tied output) + final norm
func (c Config) Params() int64 {
	if c.NominalParams > 0 {
		return c.NominalParams
	}
	d := int64(c.Hidden)
	l := int64(c.Layers)
	v := int64(c.VocabSize)
	if v == 0 {
		v = DefaultVocab
	}
	perLayer := 12*d*d + 13*d // 12D^2 weights + biases/norms ~ 13D
	return l*perLayer + v*d + d
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("%s(L=%d,D=%d,H=%d,P=%.1fB)", c.Name, c.Layers, c.Hidden, c.Heads, float64(c.Params())/1e9)
}

// Bytes per element for the two precisions used in mixed-precision training.
const (
	FP16Bytes = 2
	FP32Bytes = 4
)

// Sizing captures the per-model memory footprint relevant to offloading.
type Sizing struct {
	Params          int64 // parameter count
	FP16ModelBytes  int64 // working copy used by fwd/bwd on GPU
	FP16GradBytes   int64 // gradient accumulation buffer (MLP-Offload keeps it on host)
	FP32GradBytes   int64 // upscaled gradients (baseline flushes these)
	OptimStateBytes int64 // FP32 params + momentum + variance (12 B/param)
	// SubgroupFetchBytes* are the bytes moved per parameter for one
	// subgroup fetch during the update phase.
	BaselineFetchBytesPerParam int64 // P32+M32+V32+G32 = 16
	MLPFetchBytesPerParam      int64 // P32+M32+V32     = 12
}

// Size computes the sizing for a configuration.
func (c Config) Size() Sizing {
	p := c.Params()
	return Sizing{
		Params:                     p,
		FP16ModelBytes:             p * FP16Bytes,
		FP16GradBytes:              p * FP16Bytes,
		FP32GradBytes:              p * FP32Bytes,
		OptimStateBytes:            p * 3 * FP32Bytes,
		BaselineFetchBytesPerParam: 16,
		MLPFetchBytesPerParam:      12,
	}
}

// SubgroupCount returns how many subgroups of subgroupParams parameters the
// model shards into (ceiling division).
func (c Config) SubgroupCount(subgroupParams int64) int {
	p := c.Params()
	if subgroupParams <= 0 {
		panic("model: subgroupParams must be positive")
	}
	return int((p + subgroupParams - 1) / subgroupParams)
}

// FLOPsPerToken returns the approximate training FLOPs per token for the
// forward pass (2*P multiply-accumulates -> ~2P FLOPs per token forward;
// backward is ~2x forward; activation checkpointing adds a forward
// recomputation, i.e. +1x forward inside backward).
func (c Config) FLOPsPerToken() float64 {
	return 2 * float64(c.Params())
}

// Table2 returns the evaluation models of the paper (Table 2), keyed by
// their marketing size. NominalParams pins the advertised sizes so derived
// optimizer-state volumes match the paper's narrative (e.g. "at 120B
// parameters the optimizer state reaches 1.8 TB").
func Table2() []Config {
	return []Config{
		{Name: "40B", Layers: 128, Hidden: 5120, Heads: 40, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 40e9},
		{Name: "52B", Layers: 64, Hidden: 8192, Heads: 64, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 52e9},
		{Name: "70B", Layers: 80, Hidden: 8192, Heads: 64, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 70e9},
		{Name: "100B", Layers: 124, Hidden: 8192, Heads: 64, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 100e9},
		{Name: "120B", Layers: 96, Hidden: 10240, Heads: 80, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 120e9},
		{Name: "130B", Layers: 70, Hidden: 12288, Heads: 96, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 130e9},
		{Name: "280B", Layers: 72, Hidden: 16384, Heads: 128, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 280e9},
	}
}

// Baseline20B is the 20B model whose optimizer state fits in 512 GB host
// memory, used as the CPU-offload baseline in Figure 3.
func Baseline20B() Config {
	return Config{Name: "20B", Layers: 44, Hidden: 6144, Heads: 48, VocabSize: DefaultVocab, SeqLen: DefaultSeqLen, NominalParams: 20e9}
}

// ByName looks up a Table 2 model (or the 20B baseline) by name.
func ByName(name string) (Config, error) {
	if name == "20B" {
		return Baseline20B(), nil
	}
	for _, c := range Table2() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown config %q", name)
}

// Names returns the Table 2 model names in ascending parameter order.
func Names() []string {
	cs := Table2()
	sort.Slice(cs, func(i, j int) bool { return cs[i].Params() < cs[j].Params() })
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

// Scaled returns a laptop-scale model preserving the architecture shape,
// used by the real engine: same layer/hidden ratios, parameter count
// scaled down by factor (e.g. 1000 turns 40B into 40M).
func (c Config) Scaled(factor int) Config {
	if factor <= 0 {
		panic("model: scale factor must be positive")
	}
	s := c
	s.Name = fmt.Sprintf("%s/%d", c.Name, factor)
	s.NominalParams = c.Params() / int64(factor)
	if s.NominalParams < 1 {
		s.NominalParams = 1
	}
	return s
}
