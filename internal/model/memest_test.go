package model

import (
	"testing"

	"github.com/datastates/mlpoffload/internal/cluster"
)

func TestEstimate20BFitsHost(t *testing.T) {
	// The paper's methodology: models below 40B are excluded because
	// their optimizer state fits in 512 GB host memory.
	tb := cluster.Testbed1()
	m := Baseline20B().Estimate(EstimateArgs{GPUsPerNode: tb.GPUsPerNode, Nodes: 1})
	if lvl := m.RequiredOffload(tb.AggregateGPUMem(), tb.HostMemBytes); lvl != CPUOffload {
		t.Errorf("20B offload level = %v, want cpu-offload", lvl)
	}
}

func TestEstimate40BNeedsThirdLevel(t *testing.T) {
	tb := cluster.Testbed1()
	c, _ := ByName("40B")
	m := c.Estimate(EstimateArgs{GPUsPerNode: tb.GPUsPerNode, Nodes: 1})
	if lvl := m.RequiredOffload(tb.AggregateGPUMem(), tb.HostMemBytes); lvl != ThirdLevel {
		t.Errorf("40B offload level = %v, want third-level", lvl)
	}
	// Optimizer state alone: 40e9*12 = 480 GB — just under 512 GB, but
	// runtime buffers push past it.
	if m.OptimizerStateBytes != 480e9 {
		t.Errorf("optimizer state = %d", m.OptimizerStateBytes)
	}
	if m.HostTotalBytes <= tb.HostMemBytes {
		t.Error("40B host demand should exceed 512 GB")
	}
}

func TestEstimateScalingSweepFitsGPU(t *testing.T) {
	// Fig 7 methodology: 40B-120B on one Testbed-1 node keep FP16 params
	// + activations + one subgroup's grads within 320 GB of GPU memory.
	tb := cluster.Testbed1()
	for _, name := range []string{"40B", "52B", "70B", "100B", "120B"} {
		c, _ := ByName(name)
		m := c.Estimate(EstimateArgs{GPUsPerNode: tb.GPUsPerNode, Nodes: 1, SubgroupParams: 100e6})
		if !m.FitsGPU(tb.AggregateGPUMem()) {
			t.Errorf("%s working set %d GB exceeds %d GB GPU memory",
				name, m.GPUTotalBytes/1e9, tb.AggregateGPUMem()/1e9)
		}
	}
}

func TestEstimate280BWeakScaling(t *testing.T) {
	// 280B on 8 Testbed-2 nodes (32x A100-40GB): per-node shard must fit.
	tb := cluster.Testbed2()
	c, _ := ByName("280B")
	m := c.Estimate(EstimateArgs{GPUsPerNode: tb.GPUsPerNode, Nodes: 8, SubgroupParams: 100e6})
	if !m.FitsGPU(tb.AggregateGPUMem()) {
		t.Errorf("280B/8-node working set %d GB exceeds %d GB",
			m.GPUTotalBytes/1e9, tb.AggregateGPUMem()/1e9)
	}
	if lvl := m.RequiredOffload(tb.AggregateGPUMem(), tb.HostMemBytes); lvl != ThirdLevel {
		t.Errorf("280B/8 nodes = %v, want third-level", lvl)
	}
}

func TestGPUOnlyLevelForTinyModel(t *testing.T) {
	tiny := Config{Name: "tiny", Layers: 2, Hidden: 64, SeqLen: 128, NominalParams: 1e6}
	m := tiny.Estimate(EstimateArgs{GPUsPerNode: 1, Nodes: 1, SubgroupParams: 1e6})
	if lvl := m.RequiredOffload(16e9, 64e9); lvl != GPUOnly {
		t.Errorf("tiny model = %v, want gpu-only", lvl)
	}
}

func TestOffloadLevelString(t *testing.T) {
	if GPUOnly.String() != "gpu-only" || ThirdLevel.String() != "third-level-offload" {
		t.Error("stringer broken")
	}
	if OffloadLevel(42).String() == "" {
		t.Error("unknown level should stringify")
	}
}

func TestEstimateDefaults(t *testing.T) {
	c, _ := ByName("40B")
	m := c.Estimate(EstimateArgs{})
	if m.GPUTotalBytes <= 0 || m.HostTotalBytes <= 0 {
		t.Error("defaulted estimate degenerate")
	}
	override := c.Estimate(EstimateArgs{RuntimeBufferBytes: 123})
	if override.RuntimeBufferBytes != 123 {
		t.Error("runtime buffer override ignored")
	}
}
