package optim

import (
	"math"
	"strings"
	"testing"

	"github.com/datastates/mlpoffload/internal/fp16"
)

func finiteGrads(n int) []fp16.Bits {
	g := make([]fp16.Bits, n)
	for i := range g {
		g[i] = fp16.FromFloat32(0.01)
	}
	return g
}

func TestScalerBackoffOnOverflow(t *testing.T) {
	s := NewLossScaler()
	start := s.Scale()
	bad := append(finiteGrads(4), fp16.PositiveInfinity)
	if s.Check(bad) {
		t.Fatal("overflow step should be skipped")
	}
	if s.Scale() != start/2 {
		t.Errorf("scale = %g, want %g", s.Scale(), start/2)
	}
	if s.Overflows() != 1 || s.SkippedSteps() != 1 {
		t.Errorf("counters = %d/%d", s.Overflows(), s.SkippedSteps())
	}
}

func TestScalerGrowthAfterWindow(t *testing.T) {
	s := NewLossScaler()
	s.window = 3
	start := s.Scale()
	g := finiteGrads(4)
	for i := 0; i < 3; i++ {
		if !s.Check(g) {
			t.Fatal("finite grads should pass")
		}
	}
	if s.Scale() != start*2 {
		t.Errorf("scale = %g, want %g", s.Scale(), start*2)
	}
	if s.GoodSteps() != 3 {
		t.Errorf("good steps = %d", s.GoodSteps())
	}
}

func TestScalerOverflowResetsWindow(t *testing.T) {
	s := NewLossScaler()
	s.window = 2
	g := finiteGrads(2)
	s.Check(g)                                                             // 1 clean
	s.Check(append(finiteGrads(1), fp16.FromFloat32(float32(math.NaN())))) // overflow
	s.Check(g)                                                             // 1 clean again — must NOT grow yet
	start := s.Scale()
	s.Check(g) // second clean -> grows now
	if s.Scale() != start*2 {
		t.Error("window did not reset after overflow")
	}
}

func TestScalerBounds(t *testing.T) {
	s := NewLossScaler()
	bad := []fp16.Bits{fp16.PositiveInfinity}
	for i := 0; i < 64; i++ {
		s.Check(bad)
	}
	if s.Scale() < 1 {
		t.Errorf("scale fell below minimum: %g", s.Scale())
	}
	s2 := NewLossScaler()
	s2.window = 1
	g := finiteGrads(1)
	for i := 0; i < 64; i++ {
		s2.Check(g)
	}
	if s2.Scale() > math.Pow(2, 24) {
		t.Errorf("scale exceeded maximum: %g", s2.Scale())
	}
}

func TestUnscale(t *testing.T) {
	s := NewLossScaler()
	s.scale = 4
	g := []float32{4, -8, 0}
	s.Unscale(g)
	want := []float32{1, -2, 0}
	for i := range want {
		if g[i] != want[i] {
			t.Errorf("g[%d] = %v", i, g[i])
		}
	}
}

func TestScalerString(t *testing.T) {
	if !strings.Contains(NewLossScaler().String(), "scale=65536") {
		t.Error("String malformed")
	}
}

func TestClipGradNorm(t *testing.T) {
	g := []float32{3, 4} // norm 5
	pre := ClipGradNorm(g, 1)
	if pre != 5 {
		t.Errorf("pre-clip norm = %v", pre)
	}
	if post := GradNorm(g); math.Abs(post-1) > 1e-6 {
		t.Errorf("post-clip norm = %v", post)
	}
	// Below the threshold: untouched.
	g2 := []float32{0.3, 0.4}
	ClipGradNorm(g2, 1)
	if g2[0] != 0.3 {
		t.Error("under-threshold grads modified")
	}
	// Disabled.
	g3 := []float32{30, 40}
	ClipGradNorm(g3, 0)
	if g3[0] != 30 {
		t.Error("disabled clipping modified grads")
	}
	// Zero grads: no NaN.
	g4 := []float32{0, 0}
	if ClipGradNorm(g4, 1) != 0 || g4[0] != 0 {
		t.Error("zero-grad clipping broken")
	}
}

func TestGlobalGradNorm(t *testing.T) {
	// Partial norms 3 and 4 combine to 5.
	if got := GlobalGradNorm([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("global norm = %v", got)
	}
	if GlobalGradNorm(nil) != 0 {
		t.Error("empty global norm should be 0")
	}
	// Consistency: splitting a buffer into subgroups must not change the
	// global norm (the clipping-is-global, update-is-local property the
	// engine relies on).
	full := []float32{1, 2, 3, 4, 5, 6}
	whole := GradNorm(full)
	parts := GlobalGradNorm([]float64{GradNorm(full[:2]), GradNorm(full[2:5]), GradNorm(full[5:])})
	if math.Abs(whole-parts) > 1e-6 {
		t.Errorf("split norm %v != whole %v", parts, whole)
	}
}
