// Package optim implements the CPU-based Adam optimizer used during the
// update phase of offloaded training. When the optimizer state lives on
// host memory or third-level storage, updates run on the CPU (transferring
// FP32 state to the GPU would negate its compute advantage), chunk-parallel
// across cores.
//
// Two gradient paths are provided:
//   - StepFP32: the baseline path — gradients were upscaled to FP32 during
//     the backward pass (and, in the ZeRO-3 baseline, flushed to and
//     re-fetched from disk alongside the optimizer state);
//   - StepFP16: MLP-Offload's delayed in-place conversion — FP16 gradients
//     straight from the host accumulation buffer are widened on the fly
//     inside the update kernel, eliminating the FP32 gradient I/O.
//
// Both produce bit-identical results given equal gradient values, which is
// the paper's correctness argument for the optimization (the same
// standardized numeric primitives, applied later).
package optim

import (
	"fmt"
	"math"

	"github.com/datastates/mlpoffload/internal/fp16"
)

// Hyper holds Adam hyperparameters.
type Hyper struct {
	LR    float64 // learning rate
	Beta1 float64
	Beta2 float64
	Eps   float64
	// WeightDecay is decoupled (AdamW-style); 0 disables.
	WeightDecay float64
}

// DefaultHyper returns the conventional LLM pre-training settings.
func DefaultHyper() Hyper {
	return Hyper{LR: 6e-5, Beta1: 0.9, Beta2: 0.95, Eps: 1e-8}
}

// Validate rejects out-of-range hyperparameters.
func (h Hyper) Validate() error {
	if h.LR <= 0 {
		return fmt.Errorf("optim: LR must be positive, got %g", h.LR)
	}
	if h.Beta1 < 0 || h.Beta1 >= 1 || h.Beta2 < 0 || h.Beta2 >= 1 {
		return fmt.Errorf("optim: betas must be in [0,1), got %g/%g", h.Beta1, h.Beta2)
	}
	if h.Eps <= 0 {
		return fmt.Errorf("optim: eps must be positive, got %g", h.Eps)
	}
	if h.WeightDecay < 0 {
		return fmt.Errorf("optim: weight decay must be non-negative, got %g", h.WeightDecay)
	}
	return nil
}

// State is one subgroup's FP32 optimizer state: master parameters plus
// first and second moments, all the same length.
type State struct {
	Params []float32
	M      []float32
	V      []float32
}

// NewState allocates zeroed moments for n parameters with the given
// initial master parameters (copied).
func NewState(params []float32) *State {
	p := make([]float32, len(params))
	copy(p, params)
	return &State{
		Params: p,
		M:      make([]float32, len(params)),
		V:      make([]float32, len(params)),
	}
}

// Len returns the parameter count.
func (s *State) Len() int { return len(s.Params) }

// checkLens panics on inconsistent state (always a bug).
func (s *State) checkLens(gradLen int) {
	if len(s.M) != len(s.Params) || len(s.V) != len(s.Params) || gradLen != len(s.Params) {
		panic(fmt.Sprintf("optim: inconsistent lengths p=%d m=%d v=%d g=%d",
			len(s.Params), len(s.M), len(s.V), gradLen))
	}
}

// stepRange applies Adam to indices [lo,hi) with the step-t bias
// correction factors precomputed. grad is accessed through g(i) so the
// same kernel serves the FP32 and delayed-FP16 paths.
func stepRange(s *State, h Hyper, c1, c2 float64, lo, hi int, g func(i int) float32) {
	lr := float32(h.LR)
	b1 := float32(h.Beta1)
	b2 := float32(h.Beta2)
	omb1 := float32(1 - h.Beta1)
	omb2 := float32(1 - h.Beta2)
	eps := float32(h.Eps)
	wd := float32(h.WeightDecay)
	ic1 := float32(1 / c1)
	ic2 := float32(1 / c2)
	for i := lo; i < hi; i++ {
		gi := g(i)
		m := b1*s.M[i] + omb1*gi
		v := b2*s.V[i] + omb2*gi*gi
		s.M[i] = m
		s.V[i] = v
		mhat := m * ic1
		vhat := v * ic2
		p := s.Params[i]
		if wd != 0 {
			p -= lr * wd * p
		}
		s.Params[i] = p - lr*mhat/(sqrt32(vhat)+eps)
	}
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// biasCorrections returns 1-beta1^t and 1-beta2^t for step t (t >= 1).
func biasCorrections(h Hyper, t int) (float64, float64) {
	if t < 1 {
		panic("optim: step must be >= 1")
	}
	return 1 - math.Pow(h.Beta1, float64(t)), 1 - math.Pow(h.Beta2, float64(t))
}

// StepFP32 applies one Adam step for step number t (1-based) using FP32
// gradients.
func StepFP32(s *State, grads []float32, h Hyper, t int) {
	s.checkLens(len(grads))
	c1, c2 := biasCorrections(h, t)
	stepRange(s, h, c1, c2, 0, s.Len(), func(i int) float32 { return grads[i] })
}

// StepFP16 applies one Adam step using FP16 gradients, widening each value
// on the fly (delayed in-place mixed-precision conversion). The results are
// identical to widening into a temporary FP32 buffer and calling StepFP32.
func StepFP16(s *State, grads []fp16.Bits, h Hyper, t int) {
	s.checkLens(len(grads))
	c1, c2 := biasCorrections(h, t)
	stepRange(s, h, c1, c2, 0, s.Len(), func(i int) float32 { return fp16.ToFloat32(grads[i]) })
}

// StepFP32Parallel is StepFP32 split across workers goroutines (0 means 1;
// chunking does not change results because elements are independent).
func StepFP32Parallel(s *State, grads []float32, h Hyper, t, workers int) {
	s.checkLens(len(grads))
	c1, c2 := biasCorrections(h, t)
	parallelChunks(s.Len(), workers, func(lo, hi int) {
		stepRange(s, h, c1, c2, lo, hi, func(i int) float32 { return grads[i] })
	})
}

// StepFP16Parallel is StepFP16 split across workers goroutines.
func StepFP16Parallel(s *State, grads []fp16.Bits, h Hyper, t, workers int) {
	s.checkLens(len(grads))
	c1, c2 := biasCorrections(h, t)
	parallelChunks(s.Len(), workers, func(lo, hi int) {
		stepRange(s, h, c1, c2, lo, hi, func(i int) float32 { return fp16.ToFloat32(grads[i]) })
	})
}

// Runner abstracts a shared kernel worker pool (internal/kernpool's
// Pool implements it): Run executes fn over [0, n) split into
// deterministic chunks whose boundaries do not depend on the worker
// count. The Step...On variants draw intra-subgroup parallelism from it
// instead of spawning per-call goroutines, so one engine-wide pool
// bounds total kernel parallelism across all concurrent update workers.
type Runner interface {
	Run(n int, fn func(lo, hi int))
}

// StepFP32On is StepFP32 fanned across the runner's workers. A nil
// runner runs serially. Chunking never changes results: every element's
// update is independent, so the outcome is bit-identical to StepFP32 at
// any pool size.
func StepFP32On(r Runner, s *State, grads []float32, h Hyper, t int) {
	s.checkLens(len(grads))
	c1, c2 := biasCorrections(h, t)
	run(r, s.Len(), func(lo, hi int) {
		stepRange(s, h, c1, c2, lo, hi, func(i int) float32 { return grads[i] })
	})
}

// StepFP16On is StepFP16 fanned across the runner's workers, widening
// each FP16 gradient on the fly. Bit-identical to StepFP16 at any pool
// size (see StepFP32On).
func StepFP16On(r Runner, s *State, grads []fp16.Bits, h Hyper, t int) {
	s.checkLens(len(grads))
	c1, c2 := biasCorrections(h, t)
	run(r, s.Len(), func(lo, hi int) {
		stepRange(s, h, c1, c2, lo, hi, func(i int) float32 { return fp16.ToFloat32(grads[i]) })
	})
}

// run dispatches through the runner, or inline when it is nil. A typed
// nil inside a non-nil interface is the runner's own problem —
// kernpool.Pool's methods accept a nil receiver.
func run(r Runner, n int, fn func(lo, hi int)) {
	if r == nil {
		fn(0, n)
		return
	}
	r.Run(n, fn)
}

func parallelChunks(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 8192 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	done := make(chan struct{}, workers)
	launched := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		launched++
		go func(lo, hi int) {
			fn(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
}

// GradNorm returns the L2 norm of an FP32 gradient buffer, used for the
// overflow/clipping checks mixed-precision training performs.
func GradNorm(grads []float32) float64 {
	var sum float64
	for _, g := range grads {
		sum += float64(g) * float64(g)
	}
	return math.Sqrt(sum)
}

// HasOverflow reports whether any FP16 gradient is NaN or Inf — the loss
// scaling overflow check run before applying an update.
func HasOverflow(grads []fp16.Bits) bool {
	for _, g := range grads {
		if fp16.IsNaN(g) || fp16.IsInf(g) {
			return true
		}
	}
	return false
}
