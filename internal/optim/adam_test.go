package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datastates/mlpoffload/internal/fp16"
)

// refAdam is an independent scalar float64 reference implementation.
func refAdam(p, m, v, g float64, h Hyper, t int) (np, nm, nv float64) {
	nm = h.Beta1*m + (1-h.Beta1)*g
	nv = h.Beta2*v + (1-h.Beta2)*g*g
	mhat := nm / (1 - math.Pow(h.Beta1, float64(t)))
	vhat := nv / (1 - math.Pow(h.Beta2, float64(t)))
	if h.WeightDecay != 0 {
		p -= h.LR * h.WeightDecay * p
	}
	np = p - h.LR*mhat/(math.Sqrt(vhat)+h.Eps)
	return
}

func TestStepMatchesReference(t *testing.T) {
	h := Hyper{LR: 0.001, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	rng := rand.New(rand.NewSource(1))
	n := 257
	params := make([]float32, n)
	grads := make([]float32, n)
	for i := range params {
		params[i] = rng.Float32()*2 - 1
		grads[i] = rng.Float32()*0.2 - 0.1
	}
	s := NewState(params)
	// Track reference state in float64 but quantize to float32 each step
	// to follow the implementation exactly.
	refP := make([]float64, n)
	refM := make([]float64, n)
	refV := make([]float64, n)
	for i := range params {
		refP[i] = float64(params[i])
	}
	for step := 1; step <= 3; step++ {
		StepFP32(s, grads, h, step)
		for i := 0; i < n; i++ {
			p, m, v := refAdam(refP[i], refM[i], refV[i], float64(grads[i]), h, step)
			refP[i] = float64(float32(p))
			refM[i] = float64(float32(m))
			refV[i] = float64(float32(v))
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(float64(s.Params[i])-refP[i]) > 1e-5 {
			t.Fatalf("param %d: got %v, ref %v", i, s.Params[i], refP[i])
		}
	}
}

func TestFP16PathMatchesFP32Path(t *testing.T) {
	// The delayed-conversion claim: updating from FP16 gradients widened
	// on the fly is bit-identical to widening first and using FP32.
	h := DefaultHyper()
	rng := rand.New(rand.NewSource(2))
	n := 1000
	params := make([]float32, n)
	g16 := make([]fp16.Bits, n)
	for i := range params {
		params[i] = rng.Float32()
		g16[i] = fp16.FromFloat32(rng.Float32()*0.02 - 0.01)
	}
	g32 := make([]float32, n)
	fp16.Decode(g32, g16)

	a := NewState(params)
	b := NewState(params)
	for step := 1; step <= 4; step++ {
		StepFP16(a, g16, h, step)
		StepFP32(b, g32, h, step)
	}
	for i := 0; i < n; i++ {
		if a.Params[i] != b.Params[i] || a.M[i] != b.M[i] || a.V[i] != b.V[i] {
			t.Fatalf("FP16 path diverges at %d: %v vs %v", i, a.Params[i], b.Params[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	h := DefaultHyper()
	rng := rand.New(rand.NewSource(3))
	n := 40000
	params := make([]float32, n)
	grads := make([]float32, n)
	for i := range params {
		params[i] = rng.Float32()
		grads[i] = rng.Float32() * 0.01
	}
	a := NewState(params)
	b := NewState(params)
	StepFP32(a, grads, h, 1)
	StepFP32Parallel(b, grads, h, 1, 4)
	for i := 0; i < n; i++ {
		if a.Params[i] != b.Params[i] {
			t.Fatalf("parallel diverges at %d", i)
		}
	}
	g16 := make([]fp16.Bits, n)
	fp16.Encode(g16, grads)
	c := NewState(params)
	d := NewState(params)
	StepFP16(c, g16, h, 1)
	StepFP16Parallel(d, g16, h, 1, 4)
	for i := 0; i < n; i++ {
		if c.Params[i] != d.Params[i] {
			t.Fatalf("fp16 parallel diverges at %d", i)
		}
	}
}

func TestConvergesOnQuadratic(t *testing.T) {
	// Minimize f(p) = 0.5*(p-3)^2 per-coordinate; Adam should approach 3.
	h := Hyper{LR: 0.05, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	s := NewState([]float32{0, 10, -5})
	grads := make([]float32, 3)
	for step := 1; step <= 2000; step++ {
		for i, p := range s.Params {
			grads[i] = p - 3
		}
		StepFP32(s, grads, h, step)
	}
	for i, p := range s.Params {
		if math.Abs(float64(p)-3) > 0.05 {
			t.Errorf("param %d = %v, want ~3", i, p)
		}
	}
}

func TestWeightDecay(t *testing.T) {
	h := Hyper{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.5}
	s := NewState([]float32{2})
	StepFP32(s, []float32{0}, h, 1)
	// Zero gradient: moments stay 0, update term is 0/(0+eps)=0, so only
	// decay applies: p = 2 - 0.1*0.5*2 = 1.9.
	if math.Abs(float64(s.Params[0])-1.9) > 1e-6 {
		t.Errorf("param = %v, want 1.9", s.Params[0])
	}
}

func TestValidate(t *testing.T) {
	good := DefaultHyper()
	if err := good.Validate(); err != nil {
		t.Errorf("default hyper invalid: %v", err)
	}
	bad := []Hyper{
		{LR: 0, Beta1: 0.9, Beta2: 0.99, Eps: 1e-8},
		{LR: 1e-3, Beta1: 1.0, Beta2: 0.99, Eps: 1e-8},
		{LR: 1e-3, Beta1: 0.9, Beta2: -0.1, Eps: 1e-8},
		{LR: 1e-3, Beta1: 0.9, Beta2: 0.99, Eps: 0},
		{LR: 1e-3, Beta1: 0.9, Beta2: 0.99, Eps: 1e-8, WeightDecay: -1},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad hyper %d passed validation", i)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	s := NewState([]float32{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	StepFP32(s, []float32{1}, DefaultHyper(), 1)
}

func TestStepZeroPanics(t *testing.T) {
	s := NewState([]float32{1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	StepFP32(s, []float32{0}, DefaultHyper(), 0)
}

func TestPropertyUpdateOrderIndependent(t *testing.T) {
	// The cache-friendly reordering claim: updating subgroup A then B
	// gives the same result as B then A (element independence).
	h := DefaultHyper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		pa := make([]float32, n)
		ga := make([]float32, n)
		pb := make([]float32, n)
		gb := make([]float32, n)
		for i := 0; i < n; i++ {
			pa[i] = rng.Float32()
			ga[i] = rng.Float32() * 0.1
			pb[i] = rng.Float32()
			gb[i] = rng.Float32() * 0.1
		}
		// Order 1: A then B.
		a1, b1 := NewState(pa), NewState(pb)
		StepFP32(a1, ga, h, 1)
		StepFP32(b1, gb, h, 1)
		// Order 2: B then A.
		a2, b2 := NewState(pa), NewState(pb)
		StepFP32(b2, gb, h, 1)
		StepFP32(a2, ga, h, 1)
		for i := 0; i < n; i++ {
			if a1.Params[i] != a2.Params[i] || b1.Params[i] != b2.Params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGradNorm(t *testing.T) {
	if got := GradNorm([]float32{3, 4}); math.Abs(got-5) > 1e-9 {
		t.Errorf("GradNorm = %v", got)
	}
	if GradNorm(nil) != 0 {
		t.Error("empty norm should be 0")
	}
}

func TestHasOverflow(t *testing.T) {
	ok := []fp16.Bits{fp16.FromFloat32(1), fp16.FromFloat32(-2)}
	if HasOverflow(ok) {
		t.Error("finite grads flagged")
	}
	bad := append(ok, fp16.PositiveInfinity)
	if !HasOverflow(bad) {
		t.Error("Inf not detected")
	}
	nan := append(ok, fp16.FromFloat32(float32(math.NaN())))
	if !HasOverflow(nan) {
		t.Error("NaN not detected")
	}
}

func BenchmarkStepFP32(b *testing.B) {
	n := 1 << 20
	s := NewState(make([]float32, n))
	grads := make([]float32, n)
	for i := range grads {
		grads[i] = 0.001
	}
	h := DefaultHyper()
	b.SetBytes(int64(n) * 16) // P+M+V+G traffic
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepFP32(s, grads, h, i+1)
	}
}

func BenchmarkStepFP16Fused(b *testing.B) {
	n := 1 << 20
	s := NewState(make([]float32, n))
	grads := make([]fp16.Bits, n)
	for i := range grads {
		grads[i] = fp16.FromFloat32(0.001)
	}
	h := DefaultHyper()
	b.SetBytes(int64(n) * 14) // P+M+V+G16 traffic
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepFP16(s, grads, h, i+1)
	}
}
