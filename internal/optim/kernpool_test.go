package optim

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/datastates/mlpoffload/internal/fp16"
	"github.com/datastates/mlpoffload/internal/kernpool"
)

// nastyValues fills a gradient slice with the hard cases: subnormals,
// values that flush to zero in FP16, Inf, NaN, and ordinary magnitudes.
func nastyValues(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		switch i % 7 {
		case 0:
			out[i] = 1e-5 // subnormal in FP16
		case 1:
			out[i] = -6.0e-8 // below FP16 subnormal: flushes to zero
		case 2:
			out[i] = float32(math.Inf(1))
		case 3:
			out[i] = float32(math.NaN())
		default:
			out[i] = float32(rng.NormFloat64()) * 0.01
		}
	}
	return out
}

// TestStepOnMatchesSerial: the pooled Step variants must be bit-identical
// to the serial kernels at any worker count — including odd lengths that
// don't divide into chunks and non-finite gradient values.
func TestStepOnMatchesSerial(t *testing.T) {
	h := DefaultHyper()
	for _, n := range []int{1, 1000, kernpool.ChunkElems, 2*kernpool.ChunkElems + 4097} {
		grads := nastyValues(n, 42)
		grads16 := make([]fp16.Bits, n)
		for i, g := range grads {
			grads16[i] = fp16.FromFloat32(g)
		}
		init := make([]float32, n)
		for i := range init {
			init[i] = float32(i%13) * 0.1
		}
		run32 := func(p *kernpool.Pool) *State {
			s := NewState(append([]float32(nil), init...))
			for step := 1; step <= 3; step++ {
				StepFP32On(p, s, grads, h, step)
			}
			return s
		}
		run16 := func(p *kernpool.Pool) *State {
			s := NewState(append([]float32(nil), init...))
			for step := 1; step <= 3; step++ {
				StepFP16On(p, s, grads16, h, step)
			}
			return s
		}
		want32, want16 := run32(nil), run16(nil)
		for _, workers := range []int{1, 2, 7} {
			p := kernpool.New(workers)
			got32, got16 := run32(p), run16(p)
			p.Close()
			for i := 0; i < n; i++ {
				a, b := want32.Params[i], got32.Params[i]
				if a != b && !(isNaN32(a) && isNaN32(b)) {
					t.Fatalf("n=%d workers=%d FP32 param %d: %v vs %v", n, workers, i, a, b)
				}
				a, b = want16.Params[i], got16.Params[i]
				if a != b && !(isNaN32(a) && isNaN32(b)) {
					t.Fatalf("n=%d workers=%d FP16 param %d: %v vs %v", n, workers, i, a, b)
				}
			}
		}
	}
}

func isNaN32(f float32) bool { return f != f }

// benchGrads16 builds a finite FP16 gradient set (NaN/Inf would make the
// kernel's work data-dependent across iterations).
func benchGrads16(n int) []fp16.Bits {
	out := make([]fp16.Bits, n)
	for i := range out {
		out[i] = fp16.FromFloat32(0.001 * float32(i%17))
	}
	return out
}

// BenchmarkStepFP16KernelPool measures the fused FP16 Adam step through
// the shared kernel pool at several worker counts; workers=serial is the
// nil-pool baseline the engine uses at KernelWorkers=1.
func BenchmarkStepFP16KernelPool(b *testing.B) {
	n := 1 << 20
	grads := benchGrads16(n)
	h := DefaultHyper()
	run := func(b *testing.B, p *kernpool.Pool) {
		s := NewState(make([]float32, n))
		b.SetBytes(int64(n) * 14) // P+M+V+G16 traffic
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			StepFP16On(p, s, grads, h, i+1)
		}
	}
	b.Run("workers=serial", func(b *testing.B) { run(b, nil) })
	for _, w := range []int{2, 4} {
		p := kernpool.New(w)
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) { run(b, p) })
		p.Close()
	}
}

// BenchmarkStepFP32KernelPool is the FP32 (baseline-path) counterpart.
func BenchmarkStepFP32KernelPool(b *testing.B) {
	n := 1 << 20
	grads := make([]float32, n)
	for i := range grads {
		grads[i] = 0.001 * float32(i%17)
	}
	h := DefaultHyper()
	run := func(b *testing.B, p *kernpool.Pool) {
		s := NewState(make([]float32, n))
		b.SetBytes(int64(n) * 16) // P+M+V+G traffic
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			StepFP32On(p, s, grads, h, i+1)
		}
	}
	b.Run("workers=serial", func(b *testing.B) { run(b, nil) })
	for _, w := range []int{2, 4} {
		p := kernpool.New(w)
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) { run(b, p) })
		p.Close()
	}
}
