package optim

import (
	"fmt"
	"math"

	"github.com/datastates/mlpoffload/internal/fp16"
)

// LossScaler implements dynamic loss scaling for FP16 mixed-precision
// training: the loss (and hence all gradients) is multiplied by a scale so
// small gradients survive the FP16 underflow threshold; when an overflow
// (Inf/NaN gradient) is detected the update is skipped and the scale
// halved; after a window of clean steps the scale doubles.
//
// This is the mechanism that made the one-step-delayed asynchronous update
// unsafe in ZeRO-Offload (a skipped step invalidates the overlapped
// compute), which is why MLP-Offload keeps updates synchronous and
// attacks I/O instead.
type LossScaler struct {
	scale     float64
	growth    float64
	backoff   float64
	window    int // clean steps before growing
	sinceGrow int
	maxScale  float64
	minScale  float64
	overflows int64
	skips     int64
	goodSteps int64
}

// NewLossScaler creates a scaler with the conventional defaults
// (initial 2^16, x2 growth every 2000 clean steps, x0.5 backoff).
func NewLossScaler() *LossScaler {
	return &LossScaler{
		scale:    65536,
		growth:   2,
		backoff:  0.5,
		window:   2000,
		maxScale: math.Pow(2, 24),
		minScale: 1,
	}
}

// Scale returns the current loss scale.
func (s *LossScaler) Scale() float64 { return s.scale }

// Overflows returns how many overflow events were observed.
func (s *LossScaler) Overflows() int64 { return s.overflows }

// SkippedSteps returns how many updates were skipped.
func (s *LossScaler) SkippedSteps() int64 { return s.skips }

// GoodSteps returns how many updates were applied.
func (s *LossScaler) GoodSteps() int64 { return s.goodSteps }

// Check inspects the FP16 gradients of one step. It returns true when the
// update should proceed (gradients finite), adjusting the scale either
// way. On overflow the caller must skip the optimizer step.
func (s *LossScaler) Check(grads []fp16.Bits) bool {
	if HasOverflow(grads) {
		s.overflows++
		s.skips++
		s.sinceGrow = 0
		s.scale *= s.backoff
		if s.scale < s.minScale {
			s.scale = s.minScale
		}
		return false
	}
	s.goodSteps++
	s.sinceGrow++
	if s.sinceGrow >= s.window {
		s.sinceGrow = 0
		s.scale *= s.growth
		if s.scale > s.maxScale {
			s.scale = s.maxScale
		}
	}
	return true
}

// ScalerState is the serializable snapshot of a LossScaler, persisted in
// checkpoint manifests so resumed training continues with the same
// dynamic scale and growth-window position.
type ScalerState struct {
	Scale     float64 `json:"scale"`
	SinceGrow int     `json:"sinceGrow"`
	Overflows int64   `json:"overflows"`
	Skips     int64   `json:"skips"`
	GoodSteps int64   `json:"goodSteps"`
}

// State snapshots the scaler for checkpointing.
func (s *LossScaler) State() ScalerState {
	return ScalerState{
		Scale:     s.scale,
		SinceGrow: s.sinceGrow,
		Overflows: s.overflows,
		Skips:     s.skips,
		GoodSteps: s.goodSteps,
	}
}

// SetState restores a snapshot taken by State. A non-positive scale is a
// corrupt snapshot and is rejected with an error — silently continuing
// on the default scale would diverge from the checkpointed run with no
// diagnostic.
func (s *LossScaler) SetState(st ScalerState) error {
	if st.Scale <= 0 {
		return fmt.Errorf("optim: scaler snapshot has non-positive scale %g", st.Scale)
	}
	s.scale = st.Scale
	s.sinceGrow = st.SinceGrow
	s.overflows = st.Overflows
	s.skips = st.Skips
	s.goodSteps = st.GoodSteps
	return nil
}

// Unscale divides an FP32 gradient buffer by the current scale in place,
// recovering true gradient magnitudes before the optimizer step.
func (s *LossScaler) Unscale(grads []float32) {
	inv := float32(1 / s.scale)
	for i := range grads {
		grads[i] *= inv
	}
}

// String summarizes the scaler state.
func (s *LossScaler) String() string {
	return fmt.Sprintf("scale=%g good=%d skipped=%d overflows=%d",
		s.scale, s.goodSteps, s.skips, s.overflows)
}

// ClipGradNorm scales grads in place so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm (the standard global norm
// clipping of LLM pre-training). maxNorm <= 0 disables clipping.
func ClipGradNorm(grads []float32, maxNorm float64) float64 {
	norm := GradNorm(grads)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	f := float32(maxNorm / norm)
	for i := range grads {
		grads[i] *= f
	}
	return norm
}

// GlobalGradNorm combines per-subgroup norms into the global L2 norm:
// sqrt(sum of squares) — subgroup updates are independent but clipping is
// global, so the engine computes per-subgroup partial norms first.
func GlobalGradNorm(partialNorms []float64) float64 {
	var sum float64
	for _, n := range partialNorms {
		sum += n * n
	}
	return math.Sqrt(sum)
}
