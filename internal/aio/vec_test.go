package aio

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/datastates/mlpoffload/internal/storage"
)

func TestSubmitReadVecClass(t *testing.T) {
	tier := storage.NewMemTier("m")
	e := New(tier, Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	const n = 5
	keys := make([]string, n)
	want := make([][]byte, n)
	dsts := make([][]byte, n)
	total := 0
	for i := range keys {
		keys[i] = fmt.Sprintf("sg%d", i)
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, 100*(i+1))
		dsts[i] = make([]byte, len(want[i]))
		total += len(want[i])
		if err := tier.Write(ctx, keys[i], want[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Metrics().OpsDone
	op, err := e.SubmitReadVecClass(Prefetch, keys, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range dsts {
		if !bytes.Equal(dsts[i], want[i]) {
			t.Fatalf("member %d differs", i)
		}
	}
	if op.Bytes != total {
		t.Fatalf("op.Bytes = %d, want batch total %d", op.Bytes, total)
	}
	if got := e.Metrics().OpsDone - before; got != 1 {
		t.Fatalf("batch accounted as %d ops, want 1", got)
	}
	if !strings.Contains(op.Key, "(+4)") {
		t.Fatalf("op.Key %q does not name the batch", op.Key)
	}
}

func TestSubmitReadVecClassSingleDegradesToRead(t *testing.T) {
	tier := storage.NewMemTier("m")
	e := New(tier, Config{})
	defer e.Close()
	if err := tier.Write(context.Background(), "k", []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4)
	op, err := e.SubmitReadVecClass(DemandFetch, []string{"k"}, [][]byte{dst})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	if op.Key != "k" || !bytes.Equal(dst, []byte("abcd")) {
		t.Fatalf("degraded read wrong: key %q dst %q", op.Key, dst)
	}
}

func TestSubmitReadVecClassErrors(t *testing.T) {
	tier := storage.NewMemTier("m")
	e := New(tier, Config{})
	defer e.Close()
	if _, err := e.SubmitReadVecClass(Prefetch, []string{"a"}, nil); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	if _, err := e.SubmitReadVecClass(Prefetch, nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	op, err := e.SubmitReadVecClass(Prefetch, []string{"missing", "also"}, [][]byte{make([]byte, 1), make([]byte, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing member: %v, want ErrNotFound", err)
	}
}
