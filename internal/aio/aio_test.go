package aio

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

func TestReadWriteRoundTrip(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 2})
	defer e.Close()

	payload := []byte{1, 2, 3, 4, 5}
	wop, err := e.SubmitWrite("k", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := wop.Wait(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	rop, err := e.SubmitRead("k", dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := rop.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatalf("round trip: %v", dst)
	}
	if wop.Kind.String() != "write" || rop.Kind.String() != "read" {
		t.Error("kind strings wrong")
	}
}

func TestSyncHelpers(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{})
	defer e.Close()
	if err := e.WriteSync("k", []byte{7}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1)
	if err := e.ReadSync("k", dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 7 {
		t.Fatal("sync round trip failed")
	}
}

func TestErrorPropagation(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{})
	defer e.Close()
	op, err := e.SubmitRead("missing", make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	m := e.Metrics()
	if m.OpsFailed != 1 {
		t.Errorf("OpsFailed = %d", m.OpsFailed)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 1})
	defer e.Close()
	for i := 0; i < 5; i++ {
		if err := e.WriteSync(fmt.Sprintf("k%d", i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if err := e.ReadSync(fmt.Sprintf("k%d", i), dst); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.BytesWritten != 500 || m.BytesRead != 300 {
		t.Errorf("bytes = %d/%d", m.BytesRead, m.BytesWritten)
	}
	if m.OpsDone != 8 {
		t.Errorf("OpsDone = %d", m.OpsDone)
	}
	if m.ReadBW() <= 0 || m.WriteBW() <= 0 {
		t.Error("bandwidth should be measurable")
	}
}

func TestMetricsZeroBW(t *testing.T) {
	var m Metrics
	if m.ReadBW() != 0 || m.WriteBW() != 0 {
		t.Error("empty metrics should report 0 bandwidth")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{})
	e.Close()
	e.Close() // idempotent
	if _, err := e.SubmitWrite("k", []byte{1}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}

func TestCloseWaitsForQueued(t *testing.T) {
	mem := storage.NewMemTier("m")
	e := New(mem, Config{Workers: 1, QueueDepth: 32})
	ops := make([]*Op, 0, 10)
	for i := 0; i < 10; i++ {
		op, err := e.SubmitWrite(fmt.Sprintf("k%d", i), make([]byte, 10))
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	e.Close()
	for i, op := range ops {
		select {
		case <-op.Done():
			if op.Err() != nil {
				t.Errorf("op %d failed: %v", i, op.Err())
			}
		default:
			t.Fatalf("op %d not complete after Close", i)
		}
	}
	keys, _ := mem.Keys(context.Background())
	if len(keys) != 10 {
		t.Errorf("only %d objects written", len(keys))
	}
}

func TestDrainBarrier(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 2, QueueDepth: 64})
	defer e.Close()
	for i := 0; i < 50; i++ {
		if _, err := e.SubmitWrite(fmt.Sprintf("k%d", i), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	m := e.Metrics()
	if m.OpsDone != 50 {
		t.Errorf("after Drain OpsDone = %d, want 50", m.OpsDone)
	}
}

func TestWaitCtx(t *testing.T) {
	// A slow tier lets us observe WaitCtx cancellation while the op runs.
	slow := storage.NewThrottled(storage.NewMemTier("m"), storage.ThrottleConfig{
		ReadBW: 1e9, WriteBW: 64 * 1024, // ~0.75s for a 64KiB write
	})
	e := New(slow, Config{Workers: 1})
	defer e.Close()
	op, err := e.SubmitWrite("k", make([]byte, 64*1024))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := op.WaitCtx(ctx); err == nil {
		t.Fatal("WaitCtx should time out")
	}
}

func TestExclusiveLockSerializesTierAccess(t *testing.T) {
	locks := tierlock.NewManager(true)
	// Two engines on the same tier name (two workers of one node).
	tier := storage.NewMemTier("nvme")
	e1 := New(tier, Config{Workers: 2, Locks: locks})
	e2 := New(tier, Config{Workers: 2, Locks: locks})
	defer e1.Close()
	defer e2.Close()

	var wg sync.WaitGroup
	for i, e := range []*Engine{e1, e2} {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if err := e.WriteSync(fmt.Sprintf("w%d-%d", i, k), make([]byte, 64)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, e)
	}
	wg.Wait()
	if s := locks.Stats("nvme"); s.Grants != 40 {
		t.Errorf("lock grants = %d, want 40", s.Grants)
	}
}

func TestOpTimings(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 1})
	defer e.Close()
	op, err := e.SubmitWrite("k", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	if op.QueueTime() < 0 || op.TransferTime() < 0 {
		t.Error("negative timings")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 4, QueueDepth: 16})
	defer e.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := e.WriteSync(key, []byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				dst := make([]byte, 2)
				if err := e.ReadSync(key, dst); err != nil {
					t.Error(err)
					return
				}
				if dst[0] != byte(w) || dst[1] != byte(i) {
					t.Errorf("corrupted read %v for %s", dst, key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m := e.Metrics(); m.OpsDone != 400 {
		t.Errorf("OpsDone = %d, want 400", m.OpsDone)
	}
}

func BenchmarkAsyncWriteThroughput(b *testing.B) {
	e := New(storage.NewMemTier("m"), Config{Workers: 4, QueueDepth: 128})
	defer e.Close()
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	ops := make([]*Op, 0, 128)
	for i := 0; i < b.N; i++ {
		op, err := e.SubmitWrite(fmt.Sprintf("k%d", i%256), buf)
		if err != nil {
			b.Fatal(err)
		}
		ops = append(ops, op)
		if len(ops) == 128 {
			for _, o := range ops {
				if err := o.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			ops = ops[:0]
		}
	}
	for _, o := range ops {
		_ = o.Wait()
	}
}
