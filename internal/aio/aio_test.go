package aio

//mlpvet:allowfile clockcheck real sleeps and timeout guards exercise genuine goroutine interleaving

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tiercodec"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

func TestReadWriteRoundTrip(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 2})
	defer e.Close()

	payload := []byte{1, 2, 3, 4, 5}
	wop, err := e.SubmitWrite("k", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := wop.Wait(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	rop, err := e.SubmitRead("k", dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := rop.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatalf("round trip: %v", dst)
	}
	if wop.Kind.String() != "write" || rop.Kind.String() != "read" {
		t.Error("kind strings wrong")
	}
}

func TestSyncHelpers(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{})
	defer e.Close()
	if err := e.WriteSync("k", []byte{7}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1)
	if err := e.ReadSync("k", dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 7 {
		t.Fatal("sync round trip failed")
	}
}

func TestErrorPropagation(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{})
	defer e.Close()
	op, err := e.SubmitRead("missing", make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	m := e.Metrics()
	if m.OpsFailed != 1 {
		t.Errorf("OpsFailed = %d", m.OpsFailed)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 1})
	defer e.Close()
	for i := 0; i < 5; i++ {
		if err := e.WriteSync(fmt.Sprintf("k%d", i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if err := e.ReadSync(fmt.Sprintf("k%d", i), dst); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.BytesWritten != 500 || m.BytesRead != 300 {
		t.Errorf("bytes = %d/%d", m.BytesRead, m.BytesWritten)
	}
	if m.OpsDone != 8 {
		t.Errorf("OpsDone = %d", m.OpsDone)
	}
	if m.ReadBW() <= 0 || m.WriteBW() <= 0 {
		t.Error("bandwidth should be measurable")
	}
}

func TestMetricsZeroBW(t *testing.T) {
	var m Metrics
	if m.ReadBW() != 0 || m.WriteBW() != 0 {
		t.Error("empty metrics should report 0 bandwidth")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{})
	e.Close()
	e.Close() // idempotent
	if _, err := e.SubmitWrite("k", []byte{1}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}

func TestCloseWaitsForQueued(t *testing.T) {
	mem := storage.NewMemTier("m")
	e := New(mem, Config{Workers: 1, QueueDepth: 32})
	ops := make([]*Op, 0, 10)
	for i := 0; i < 10; i++ {
		op, err := e.SubmitWrite(fmt.Sprintf("k%d", i), make([]byte, 10))
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	e.Close()
	for i, op := range ops {
		select {
		case <-op.Done():
			if op.Err() != nil {
				t.Errorf("op %d failed: %v", i, op.Err())
			}
		default:
			t.Fatalf("op %d not complete after Close", i)
		}
	}
	keys, _ := mem.Keys(context.Background())
	if len(keys) != 10 {
		t.Errorf("only %d objects written", len(keys))
	}
}

func TestDrainBarrier(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 2, QueueDepth: 64})
	defer e.Close()
	for i := 0; i < 50; i++ {
		if _, err := e.SubmitWrite(fmt.Sprintf("k%d", i), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	m := e.Metrics()
	if m.OpsDone != 50 {
		t.Errorf("after Drain OpsDone = %d, want 50", m.OpsDone)
	}
}

func TestWaitCtx(t *testing.T) {
	// A gate parks the op mid-execution so WaitCtx cancellation is
	// observed while the op genuinely runs — no real-time throttle needed.
	g := newGateTier()
	e := New(g, Config{Workers: 1})
	op, err := e.SubmitWrite("k", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := op.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitCtx = %v, want context.Canceled", err)
	}
	// The abandoned op keeps running: release it and verify it completes.
	close(g.gate)
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	e.Close()
}

func TestExclusiveLockSerializesTierAccess(t *testing.T) {
	locks := tierlock.NewManager(true)
	// Two engines on the same tier name (two workers of one node).
	tier := storage.NewMemTier("nvme")
	e1 := New(tier, Config{Workers: 2, Locks: locks})
	e2 := New(tier, Config{Workers: 2, Locks: locks})
	defer e1.Close()
	defer e2.Close()

	var wg sync.WaitGroup
	for i, e := range []*Engine{e1, e2} {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if err := e.WriteSync(fmt.Sprintf("w%d-%d", i, k), make([]byte, 64)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, e)
	}
	wg.Wait()
	if s := locks.Stats("nvme"); s.Grants != 40 {
		t.Errorf("lock grants = %d, want 40", s.Grants)
	}
}

func TestOpTimings(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 1})
	defer e.Close()
	op, err := e.SubmitWrite("k", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	if op.QueueTime() < 0 || op.TransferTime() < 0 {
		t.Error("negative timings")
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 4, QueueDepth: 16})
	defer e.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := e.WriteSync(key, []byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				dst := make([]byte, 2)
				if err := e.ReadSync(key, dst); err != nil {
					t.Error(err)
					return
				}
				if dst[0] != byte(w) || dst[1] != byte(i) {
					t.Errorf("corrupted read %v for %s", dst, key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m := e.Metrics(); m.OpsDone != 400 {
		t.Errorf("OpsDone = %d, want 400", m.OpsDone)
	}
}

// gateTier wraps a MemTier so the first operation blocks until release is
// closed, and records the order in which operations execute. It lets
// scheduler tests fill queues deterministically while the single worker is
// parked on the gate op.
type gateTier struct {
	storage.Tier
	gate  chan struct{}
	once  sync.Once
	mu    sync.Mutex
	order []string
}

func newGateTier() *gateTier {
	return &gateTier{Tier: storage.NewMemTier("g"), gate: make(chan struct{})}
}

func (g *gateTier) record(key string) {
	g.mu.Lock()
	g.order = append(g.order, key)
	g.mu.Unlock()
}

// hold makes the first op wait on the gate; later ops pass through.
func (g *gateTier) hold(key string) {
	first := false
	g.once.Do(func() { first = true })
	if first {
		<-g.gate
	}
	g.record(key)
}

func (g *gateTier) Read(ctx context.Context, key string, dst []byte) error {
	g.hold(key)
	return g.Tier.Read(ctx, key, dst)
}

func (g *gateTier) Write(ctx context.Context, key string, src []byte) error {
	g.hold(key)
	return g.Tier.Write(ctx, key, src)
}

func (g *gateTier) Delete(ctx context.Context, key string) error {
	g.hold(key)
	return g.Tier.Delete(ctx, key)
}

func (g *gateTier) executed() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

func TestClassOrderingUnderFullQueues(t *testing.T) {
	g := newGateTier()
	e := New(g, Config{Workers: 1, QueueDepth: 8, AgingThreshold: -1})
	defer e.Close()

	// Park the single worker on a gate op, then enqueue one op per class in
	// reverse priority order so FIFO arrival would invert the expected
	// service order.
	blocker, err := e.SubmitWriteClass(Migration, "blocker", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	for !workerParked(e) {
		time.Sleep(time.Millisecond)
	}
	classes := []Class{Migration, Checkpoint, Flush, Prefetch, GradRead, DemandFetch}
	ops := make([]*Op, 0, len(classes))
	for _, c := range classes {
		op, err := e.SubmitWriteClass(c, c.String(), []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	close(g.gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	got := g.executed()
	want := []string{"blocker", "demand-fetch", "grad-read", "prefetch", "flush", "checkpoint", "migration"}
	if len(got) != len(want) {
		t.Fatalf("executed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order %v, want %v", got, want)
		}
	}
}

// workerParked reports that the engine's worker picked up the gate op (the
// queues are empty and exactly one op is executing).
func workerParked(e *Engine) bool {
	if e.executing.Load() != 1 {
		return false
	}
	q := e.QueuedByClass()
	for _, n := range q {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestAgingPreventsMigrationStarvation(t *testing.T) {
	g := newGateTier()
	clk := clock.NewVirtual()
	e := New(g, Config{Workers: 1, QueueDepth: 64, AgingThreshold: 10 * time.Millisecond, Clock: clk})
	defer e.Close()

	blocker, err := e.SubmitWriteClass(DemandFetch, "blocker", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	for !workerParked(e) {
		time.Sleep(time.Millisecond)
	}
	mig, err := e.SubmitWriteClass(Migration, "migration", []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	// Age the migration op to *exactly* the threshold — the aging rule is
	// inclusive (age >= threshold), so this pins the boundary — then bury
	// it under a stream of zero-age demand fetches. Strict priority would
	// run all of them first; aging must dispatch the older migration op
	// ahead of them.
	clk.Advance(10 * time.Millisecond)
	var demands []*Op
	for i := 0; i < 16; i++ {
		op, err := e.SubmitWriteClass(DemandFetch, fmt.Sprintf("demand-%02d", i), []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		demands = append(demands, op)
	}
	close(g.gate)
	_ = blocker.Wait()
	_ = mig.Wait()
	for _, op := range demands {
		_ = op.Wait()
	}
	order := g.executed()
	if len(order) < 2 || order[1] != "migration" {
		t.Fatalf("aged migration op not served first: %v", order)
	}
	// Virtual time stood still after the advance, so the stamps are exact:
	// the migration op waited precisely the aging threshold.
	if got := mig.QueueTime(); got != 10*time.Millisecond {
		t.Errorf("aged op queue time = %v, want exactly 10ms", got)
	}
}

// TestExactQueueDelayMetrics pins the op-stamp math on a virtual clock:
// with the worker parked, a queued op's delay is exactly the virtual time
// advanced while it waited, and the per-class accumulator matches.
func TestExactQueueDelayMetrics(t *testing.T) {
	g := newGateTier()
	clk := clock.NewVirtual()
	e := New(g, Config{Workers: 1, QueueDepth: 8, Clock: clk})
	defer e.Close()

	blocker, err := e.SubmitWriteClass(DemandFetch, "blocker", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	for !workerParked(e) {
		time.Sleep(time.Millisecond)
	}
	op, err := e.SubmitWriteClass(Flush, "queued", []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Millisecond)
	close(g.gate)
	_ = blocker.Wait()
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := op.QueueTime(); got != 5*time.Millisecond {
		t.Errorf("QueueTime = %v, want exactly 5ms", got)
	}
	if got := op.TransferTime(); got != 0 {
		t.Errorf("TransferTime = %v, want exactly 0 (no virtual time passed in transfer)", got)
	}
	// The blocker spent the same 5ms inside its transfer (the advance
	// happened while it was gated mid-execution) and zero time queued.
	if got := blocker.QueueTime(); got != 0 {
		t.Errorf("blocker QueueTime = %v, want 0", got)
	}
	if got := blocker.TransferTime(); got != 5*time.Millisecond {
		t.Errorf("blocker TransferTime = %v, want exactly 5ms", got)
	}
	if m := e.ClassMetrics(Flush); m.QueueDelay != 5*time.Millisecond || m.Transfer != 0 {
		t.Errorf("flush class delay/transfer = %v/%v, want 5ms/0", m.QueueDelay, m.Transfer)
	}
}

func TestPromoteRaisesQueuedOp(t *testing.T) {
	g := newGateTier()
	e := New(g, Config{Workers: 1, QueueDepth: 8, AgingThreshold: -1})
	defer e.Close()

	blocker, err := e.SubmitWriteClass(DemandFetch, "blocker", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	for !workerParked(e) {
		time.Sleep(time.Millisecond)
	}
	pre, err := e.SubmitReadClass(Prefetch, "blocker", make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := e.SubmitWriteClass(Flush, "flush", []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Class() != Prefetch {
		t.Fatalf("class before promote = %v", pre.Class())
	}
	e.Promote(pre, DemandFetch)
	if pre.Class() != DemandFetch {
		t.Fatalf("class after promote = %v", pre.Class())
	}
	// Demote attempts are ignored.
	e.Promote(pre, Migration)
	if pre.Class() != DemandFetch {
		t.Fatalf("demote changed class to %v", pre.Class())
	}
	close(g.gate)
	_ = blocker.Wait()
	_ = pre.Wait()
	_ = fl.Wait()
	order := g.executed()
	if order[1] != "blocker" { // the promoted read (key "blocker") runs before the flush
		t.Fatalf("promoted op not served first: %v", order)
	}
	// blocker + the promoted read: the promoted op is accounted under the
	// class it was dispatched at, not the class it was submitted at.
	if m := e.ClassMetrics(DemandFetch); m.Ops != 2 {
		t.Errorf("promoted op accounted under wrong class: demand ops = %d, want 2", m.Ops)
	}
}

func TestCloseDrainsAllClasses(t *testing.T) {
	g := newGateTier()
	e := New(g, Config{Workers: 1, QueueDepth: 8})

	blocker, err := e.SubmitWriteClass(DemandFetch, "blocker", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	for !workerParked(e) {
		time.Sleep(time.Millisecond)
	}
	var ops []*Op
	for _, c := range Classes() {
		op, err := e.SubmitWriteClass(c, "k-"+c.String(), []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	close(g.gate)
	e.Close()
	if err := blocker.Err(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		select {
		case <-op.Done():
			if op.Err() != nil {
				t.Errorf("op %s failed: %v", op.Key, op.Err())
			}
		default:
			t.Fatalf("op %s (class %v) not complete after Close", op.Key, op.Class())
		}
	}
	if _, err := e.SubmitWriteClass(Checkpoint, "late", []byte{1}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
}

func TestPerClassQueueBounds(t *testing.T) {
	g := newGateTier()
	e := New(g, Config{Workers: 1, QueueDepth: 2, AgingThreshold: -1})
	defer e.Close()

	blocker, err := e.SubmitWriteClass(Checkpoint, "blocker", []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	for !workerParked(e) {
		time.Sleep(time.Millisecond)
	}
	// Fill the Checkpoint queue to its bound...
	var ckpt []*Op
	for i := 0; i < 2; i++ {
		op, err := e.SubmitWriteClass(Checkpoint, fmt.Sprintf("ckpt-%d", i), []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		ckpt = append(ckpt, op)
	}
	// ...then verify a DemandFetch submission is NOT blocked by it: the
	// whole point of per-class bounds is that a saturated checkpoint
	// stream cannot head-of-line-block the critical path at admission.
	submitted := make(chan *Op, 1)
	go func() {
		op, err := e.SubmitWriteClass(DemandFetch, "demand", []byte{1})
		if err != nil {
			t.Error(err)
		}
		submitted <- op
	}()
	var demand *Op
	select {
	case demand = <-submitted:
	case <-time.After(2 * time.Second):
		t.Fatal("DemandFetch Submit blocked behind a full Checkpoint queue")
	}
	close(g.gate)
	_ = blocker.Wait()
	_ = demand.Wait()
	for _, op := range ckpt {
		_ = op.Wait()
	}
}

func TestDeleteOp(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{})
	defer e.Close()
	if err := e.WriteSync("k", []byte{1}); err != nil {
		t.Fatal(err)
	}
	op, err := e.SubmitDelete(Migration, "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := e.ReadSync("k", make([]byte, 1)); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("object survived delete: %v", err)
	}
	// Deleting a missing key is not an error (Tier contract).
	op, err = e.SubmitDelete(Migration, "missing")
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestClassMetricsAccumulate(t *testing.T) {
	e := New(storage.NewMemTier("m"), Config{Workers: 1})
	defer e.Close()
	for i := 0; i < 3; i++ {
		op, err := e.SubmitWriteClass(Flush, fmt.Sprintf("k%d", i), make([]byte, 100))
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	op, err := e.SubmitReadClass(Checkpoint, "k0", make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	fm := e.ClassMetrics(Flush)
	if fm.Ops != 3 || fm.Bytes != 300 {
		t.Errorf("flush metrics = %+v", fm)
	}
	cm := e.ClassMetrics(Checkpoint)
	if cm.Ops != 1 || cm.Bytes != 100 {
		t.Errorf("checkpoint metrics = %+v", cm)
	}
	if dm := e.ClassMetrics(DemandFetch); dm.Ops != 0 {
		t.Errorf("demand metrics = %+v", dm)
	}
	per := e.PerClassMetrics()
	if per[Flush] != fm || per[Checkpoint] != cm {
		t.Error("PerClassMetrics disagrees with ClassMetrics")
	}
	// A failed op is accounted as Failed, not Ops.
	rop, err := e.SubmitReadClass(GradRead, "missing", make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}
	_ = rop.Wait()
	if gm := e.ClassMetrics(GradRead); gm.Ops != 0 || gm.Failed != 1 {
		t.Errorf("failed-op metrics = %+v", gm)
	}
}

func TestConcurrentMixedClassSubmitters(t *testing.T) {
	// Race coverage: many goroutines submitting different classes, with
	// promotes in flight, against several workers.
	e := New(storage.NewMemTier("m"), Config{Workers: 4, QueueDepth: 8})
	defer e.Close()
	var wg sync.WaitGroup
	classes := Classes()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				c := classes[(w+i)%len(classes)]
				key := fmt.Sprintf("w%d-%d", w, i)
				op, err := e.SubmitWriteClass(c, key, []byte{byte(w), byte(i)})
				if err != nil {
					t.Error(err)
					return
				}
				e.Promote(op, DemandFetch)
				if err := op.Wait(); err != nil {
					t.Error(err)
					return
				}
				dst := make([]byte, 2)
				if err := e.ReadSync(key, dst); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m := e.Metrics(); m.OpsDone != 480 {
		t.Errorf("OpsDone = %d, want 480", m.OpsDone)
	}
}

func BenchmarkAsyncWriteThroughput(b *testing.B) {
	e := New(storage.NewMemTier("m"), Config{Workers: 4, QueueDepth: 128})
	defer e.Close()
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	ops := make([]*Op, 0, 128)
	for i := 0; i < b.N; i++ {
		op, err := e.SubmitWrite(fmt.Sprintf("k%d", i%256), buf)
		if err != nil {
			b.Fatal(err)
		}
		ops = append(ops, op)
		if len(ops) == 128 {
			for _, o := range ops {
				if err := o.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			ops = ops[:0]
		}
	}
	for _, o := range ops {
		_ = o.Wait()
	}
}

// TestOpWireBytes pins the wire-byte contract: over a plain tier an op's
// wire size equals its raw size; over a codec-wrapped tier it is the
// encoded size the decorator recorded, and both engine- and class-level
// metrics accumulate it.
func TestOpWireBytes(t *testing.T) {
	// Compressible FP32-plane payload (constant words).
	payload := bytes.Repeat([]byte{0x3f, 0x80, 0x00, 0x00}, 16_384)

	plain := New(storage.NewMemTier("plain"), Config{Workers: 1})
	defer plain.Close()
	op, err := plain.SubmitWrite("k", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Wait(); err != nil {
		t.Fatal(err)
	}
	if op.WireBytes() != int64(len(payload)) {
		t.Fatalf("plain tier wire bytes %d, want raw %d", op.WireBytes(), len(payload))
	}

	ct, err := tiercodec.New(storage.NewMemTier("enc"), tiercodec.Spec{Compression: "flate", Integrity: true})
	if err != nil {
		t.Fatal(err)
	}
	enc := New(ct, Config{Workers: 1})
	defer enc.Close()
	wop, err := enc.SubmitWrite("k", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := wop.Wait(); err != nil {
		t.Fatal(err)
	}
	if wop.WireBytes() <= 0 || wop.WireBytes() >= int64(len(payload)) {
		t.Fatalf("codec tier write wire bytes %d, want in (0, %d)", wop.WireBytes(), len(payload))
	}
	dst := make([]byte, len(payload))
	rop, err := enc.SubmitRead("k", dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := rop.Wait(); err != nil {
		t.Fatal(err)
	}
	if rop.WireBytes() != wop.WireBytes() {
		t.Fatalf("read wire bytes %d != written %d", rop.WireBytes(), wop.WireBytes())
	}
	m := enc.Metrics()
	if m.WireBytesWritten != wop.WireBytes() || m.WireBytesRead != rop.WireBytes() {
		t.Fatalf("engine wire metrics %+v do not match ops (%d/%d)", m, wop.WireBytes(), rop.WireBytes())
	}
	if cm := enc.ClassMetrics(Flush); cm.WireBytes != wop.WireBytes() || cm.Bytes != int64(len(payload)) {
		t.Fatalf("flush class metrics %+v", cm)
	}
}
