// Package aio is the asynchronous I/O engine of the offloading runtime —
// the stand-in for DeepNVMe/libaio in the paper's implementation. Callers
// submit reads and writes against a storage tier and receive futures; a
// bounded worker pool per engine drains the submission queue. The engine
// integrates the tierlock concurrency control: when a lock manager is
// supplied, each operation holds the node-level exclusive lock for its
// tier while the device transfer is in flight.
//
// One engine object is created per storage path per worker process, as in
// the paper ("we instantiate multiple offloading engine objects per
// process, corresponding to the number of storage tiers").
//
// Concurrency contract: Submit/Wait and every metric accessor are safe for
// concurrent use — the update pipeline's issuer, workers and committer all
// submit against the same engines. Operations execute on the tier from
// Workers goroutines concurrently, so the backing storage.Tier must honor
// its own concurrency contract; completion order is not submission order,
// and callers needing read-after-write ordering on one key must wait for
// the write's Op before submitting the read.
package aio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// ErrEngineClosed is returned for submissions after Close.
var ErrEngineClosed = errors.New("aio: engine closed")

// OpKind distinguishes reads from writes.
type OpKind int

const (
	// Read fetches an object into the caller's buffer.
	Read OpKind = iota
	// Write flushes the caller's buffer to the tier.
	Write
)

func (k OpKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Op is one asynchronous I/O operation (a future). Wait blocks until
// completion and returns the operation error.
type Op struct {
	Kind  OpKind
	Key   string
	Bytes int

	done     chan struct{}
	err      error
	queuedAt time.Time
	started  time.Time
	finished time.Time
}

// Wait blocks until the operation completes and returns its error.
func (o *Op) Wait() error {
	<-o.done
	return o.err
}

// WaitCtx blocks until completion or context cancellation. The operation
// itself keeps running even if the wait is abandoned.
func (o *Op) WaitCtx(ctx context.Context) error {
	select {
	case <-o.done:
		return o.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done returns a channel closed at completion.
func (o *Op) Done() <-chan struct{} { return o.done }

// Err returns the operation error; valid only after Done.
func (o *Op) Err() error { return o.err }

// QueueTime returns how long the op sat in the submission queue.
func (o *Op) QueueTime() time.Duration { return o.started.Sub(o.queuedAt) }

// TransferTime returns how long the device transfer took (including the
// exclusive-lock wait when concurrency control is active).
func (o *Op) TransferTime() time.Duration { return o.finished.Sub(o.started) }

// Engine is an asynchronous I/O engine bound to one storage tier.
type Engine struct {
	tier   storage.Tier
	locks  *tierlock.Manager
	subCh  chan *task
	wg     sync.WaitGroup
	closed atomic.Bool
	ctx    context.Context
	cancel context.CancelFunc

	// metrics
	executing    atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	readTimeNS   atomic.Int64
	writeTimeNS  atomic.Int64
	opsDone      atomic.Int64
	opsFailed    atomic.Int64
}

type task struct {
	op  *Op
	buf []byte
}

// Config configures an Engine.
type Config struct {
	// Workers is the I/O parallelism against this tier (the paper: "a
	// worker can leverage the preferred I/O parallelism of the alternative
	// storage"). Default 2.
	Workers int
	// QueueDepth bounds pending submissions; Submit blocks when full.
	// Default 64.
	QueueDepth int
	// Locks, when non-nil, provides node-level exclusive access control.
	Locks *tierlock.Manager
}

// New creates an engine for the given tier.
func New(tier storage.Tier, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		tier:   tier,
		locks:  cfg.Locks,
		subCh:  make(chan *task, cfg.QueueDepth),
		ctx:    ctx,
		cancel: cancel,
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Tier returns the engine's storage tier.
func (e *Engine) Tier() storage.Tier { return e.tier }

func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.subCh {
		e.execute(t)
	}
}

func (e *Engine) execute(t *task) {
	e.executing.Add(1)
	defer e.executing.Add(-1)
	op := t.op
	op.started = time.Now()

	var rel tierlock.Release
	if e.locks != nil {
		var err error
		rel, err = e.locks.Acquire(e.ctx, e.tier.Name())
		if err != nil {
			e.finish(op, fmt.Errorf("aio: %s %s: lock: %w", op.Kind, op.Key, err))
			return
		}
	}
	var err error
	switch op.Kind {
	case Read:
		err = e.tier.Read(e.ctx, op.Key, t.buf)
	case Write:
		err = e.tier.Write(e.ctx, op.Key, t.buf)
	}
	if rel != nil {
		rel()
	}
	e.finish(op, err)
}

func (e *Engine) finish(op *Op, err error) {
	op.finished = time.Now()
	op.err = err
	d := op.finished.Sub(op.started).Nanoseconds()
	if err == nil {
		switch op.Kind {
		case Read:
			e.bytesRead.Add(int64(op.Bytes))
			e.readTimeNS.Add(d)
		case Write:
			e.bytesWritten.Add(int64(op.Bytes))
			e.writeTimeNS.Add(d)
		}
		e.opsDone.Add(1)
	} else {
		e.opsFailed.Add(1)
	}
	close(op.done)
}

// submit enqueues a task, blocking if the queue is full.
func (e *Engine) submit(kind OpKind, key string, buf []byte) (*Op, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	op := &Op{Kind: kind, Key: key, Bytes: len(buf), done: make(chan struct{}), queuedAt: time.Now()}
	select {
	case e.subCh <- &task{op: op, buf: buf}:
		return op, nil
	case <-e.ctx.Done():
		return nil, ErrEngineClosed
	}
}

// SubmitRead enqueues an asynchronous fetch of key into dst. The caller
// must not touch dst until the returned op completes.
func (e *Engine) SubmitRead(key string, dst []byte) (*Op, error) {
	return e.submit(Read, key, dst)
}

// SubmitWrite enqueues an asynchronous flush of src under key. The caller
// must not modify src until the returned op completes.
func (e *Engine) SubmitWrite(key string, src []byte) (*Op, error) {
	return e.submit(Write, key, src)
}

// ReadSync is a convenience synchronous read through the async path.
func (e *Engine) ReadSync(key string, dst []byte) error {
	op, err := e.SubmitRead(key, dst)
	if err != nil {
		return err
	}
	return op.Wait()
}

// WriteSync is a convenience synchronous write through the async path.
func (e *Engine) WriteSync(key string, src []byte) error {
	op, err := e.SubmitWrite(key, src)
	if err != nil {
		return err
	}
	return op.Wait()
}

// Metrics is a snapshot of engine counters.
type Metrics struct {
	BytesRead    int64
	BytesWritten int64
	ReadTime     time.Duration
	WriteTime    time.Duration
	OpsDone      int64
	OpsFailed    int64
}

// ReadBW returns the observed read bandwidth in bytes/second (0 when no
// reads completed).
func (m Metrics) ReadBW() float64 {
	if m.ReadTime <= 0 {
		return 0
	}
	return float64(m.BytesRead) / m.ReadTime.Seconds()
}

// WriteBW returns the observed write bandwidth in bytes/second.
func (m Metrics) WriteBW() float64 {
	if m.WriteTime <= 0 {
		return 0
	}
	return float64(m.BytesWritten) / m.WriteTime.Seconds()
}

// Metrics returns a snapshot of the engine counters.
func (e *Engine) Metrics() Metrics {
	return Metrics{
		BytesRead:    e.bytesRead.Load(),
		BytesWritten: e.bytesWritten.Load(),
		ReadTime:     time.Duration(e.readTimeNS.Load()),
		WriteTime:    time.Duration(e.writeTimeNS.Load()),
		OpsDone:      e.opsDone.Load(),
		OpsFailed:    e.opsFailed.Load(),
	}
}

// Drain waits for all currently queued and executing operations to finish.
// It is the barrier the engine uses at phase boundaries ("wait for all
// lazy flushes before starting the next backward pass"). Drain polls; it is
// a phase-boundary call, not a hot path.
func (e *Engine) Drain() {
	for {
		if len(e.subCh) == 0 && e.executing.Load() == 0 {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Close stops accepting submissions, waits for queued ops to finish, and
// releases workers. Close is idempotent.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	close(e.subCh)
	e.wg.Wait()
	e.cancel()
}
