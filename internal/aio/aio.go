// Package aio is the asynchronous I/O engine of the offloading runtime —
// the stand-in for DeepNVMe/libaio in the paper's implementation. Callers
// submit reads, writes and deletes against a storage tier and receive
// futures; a bounded worker pool per engine drains the submission queues.
// The engine integrates the tierlock concurrency control: when a lock
// manager is supplied, each operation holds the node-level exclusive lock
// for its tier while the device transfer is in flight.
//
// One engine object is created per storage path per worker process, as in
// the paper ("we instantiate multiple offloading engine objects per
// process, corresponding to the number of storage tiers").
//
// # Priority classes
//
// Operations carry a Class, and each engine schedules a per-tier
// multi-level queue instead of a flat FIFO: workers always serve the
// highest-priority non-empty class, so a background checkpoint stream can
// never head-of-line-block the demand fetch the update committer is
// stalled on. From most to least urgent:
//
//	DemandFetch  a fetch an update worker is blocked on right now
//	GradRead     synchronous gradient reads feeding an imminent update
//	Prefetch     speculative read-ahead issued by the update issuer
//	Flush        lazy eviction writes (durability needed by next phase)
//	Checkpoint   snapshot/write/read streams of checkpointing
//	Migration    background subgroup migration after a replan
//
// Strict priority alone would let a saturated high class starve the rest,
// so the scheduler ages: any queued operation older than the aging
// threshold is served oldest-first regardless of class. Every class is
// therefore guaranteed progress (an op waits at most the threshold plus
// the service times of ops already executing), while fresh demand fetches
// still overtake everything younger.
//
// QueueDepth bounds each class independently; a full Checkpoint queue
// blocks only checkpoint submitters, never a DemandFetch Submit.
//
// Concurrency contract: Submit/Wait/Promote and every metric accessor are
// safe for concurrent use — the update pipeline's issuer, workers and
// committer all submit against the same engines. Operations execute on
// the tier from Workers goroutines concurrently, so the backing
// storage.Tier must honor its own concurrency contract; completion order
// is neither submission order nor strict class order (Workers > 1), and
// callers needing read-after-write ordering on one key must wait for the
// write's Op before submitting the read.
package aio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// ErrEngineClosed is returned for submissions after Close.
var ErrEngineClosed = errors.New("aio: engine closed")

// OpKind distinguishes reads, writes and deletes.
type OpKind int

const (
	// Read fetches an object into the caller's buffer.
	Read OpKind = iota
	// Write flushes the caller's buffer to the tier.
	Write
	// Delete removes an object (migration cleanup of stale source copies).
	Delete
)

func (k OpKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "delete"
	}
}

// Class is an operation's scheduling priority (lower value = more urgent).
type Class int32

const (
	// DemandFetch is a read a consumer is blocked on right now.
	DemandFetch Class = iota
	// GradRead is a gradient read feeding an imminent optimizer update.
	GradRead
	// Prefetch is speculative read-ahead (promotable to DemandFetch).
	Prefetch
	// Flush is a lazy eviction write.
	Flush
	// Checkpoint is checkpoint snapshot/write/read stream traffic.
	Checkpoint
	// Migration is background subgroup migration after a replan.
	Migration

	// NumClasses is the number of priority classes.
	NumClasses = int(Migration) + 1
)

func (c Class) String() string {
	switch c {
	case DemandFetch:
		return "demand-fetch"
	case GradRead:
		return "grad-read"
	case Prefetch:
		return "prefetch"
	case Flush:
		return "flush"
	case Checkpoint:
		return "checkpoint"
	case Migration:
		return "migration"
	default:
		return fmt.Sprintf("class(%d)", int32(c))
	}
}

// Classes lists all priority classes from most to least urgent.
func Classes() []Class {
	return []Class{DemandFetch, GradRead, Prefetch, Flush, Checkpoint, Migration}
}

// Op is one asynchronous I/O operation (a future). Wait blocks until
// completion and returns the operation error.
type Op struct {
	Kind  OpKind
	Key   string
	Bytes int

	class    atomic.Int32
	done     chan struct{}
	err      error
	wire     int64
	queuedAt time.Time
	started  time.Time
	finished time.Time
}

// WireBytes returns the bytes the operation moved at the device level;
// valid only after Done. Under a codec-wrapped tier this is the encoded
// size (smaller than Bytes when compression won, header included); for
// plain tiers it equals Bytes. Bandwidth consumers — the placement
// estimator above all — must use it instead of Bytes, or compression
// silently inflates their device-bandwidth estimates.
func (o *Op) WireBytes() int64 { return o.wire }

// Class returns the op's current priority class (it can rise via Promote
// while the op is still queued).
func (o *Op) Class() Class { return Class(o.class.Load()) }

// Wait blocks until the operation completes and returns its error.
func (o *Op) Wait() error {
	<-o.done
	return o.err
}

// WaitCtx blocks until completion or context cancellation. The operation
// itself keeps running even if the wait is abandoned.
func (o *Op) WaitCtx(ctx context.Context) error {
	select {
	case <-o.done:
		return o.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done returns a channel closed at completion.
func (o *Op) Done() <-chan struct{} { return o.done }

// Err returns the operation error; valid only after Done.
func (o *Op) Err() error { return o.err }

// QueueTime returns how long the op sat in the submission queue.
func (o *Op) QueueTime() time.Duration { return o.started.Sub(o.queuedAt) }

// TransferTime returns how long the device transfer took (including the
// exclusive-lock wait when concurrency control is active).
func (o *Op) TransferTime() time.Duration { return o.finished.Sub(o.started) }

// Engine is an asynchronous I/O engine bound to one storage tier.
type Engine struct {
	tier  storage.Tier
	locks *tierlock.Manager
	clk   clock.Clock

	mu     sync.Mutex
	cond   *sync.Cond // enqueue/dequeue/close events
	queues [NumClasses][]*task
	queued int
	depth  int // per-class bound
	aging  time.Duration
	closed bool

	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	// metrics
	executing     atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	wireReadBytes atomic.Int64
	wireWritten   atomic.Int64
	readTimeNS    atomic.Int64
	writeTimeNS   atomic.Int64
	opsDone       atomic.Int64
	opsFailed     atomic.Int64
	perClass      [NumClasses]classCell
}

type task struct {
	op  *Op
	buf []byte
	// Vectored read batch (nil for single-object ops): one scheduling
	// decision fills bufs[i] with the object at keys[i].
	keys []string
	bufs [][]byte
}

// classCell accumulates one class's counters.
type classCell struct {
	ops       atomic.Int64
	failed    atomic.Int64
	bytes     atomic.Int64
	wireBytes atomic.Int64
	queueNS   atomic.Int64
	xferNS    atomic.Int64
}

// DefaultAgingThreshold is the queue age beyond which any op is served
// oldest-first regardless of class. It is a few times the transfer time of
// a large subgroup on the emulated tiers — long enough that urgent classes
// keep their edge, short enough that Migration never stalls indefinitely.
const DefaultAgingThreshold = 50 * time.Millisecond

// Config configures an Engine.
type Config struct {
	// Workers is the I/O parallelism against this tier (the paper: "a
	// worker can leverage the preferred I/O parallelism of the alternative
	// storage"). Default 2.
	Workers int
	// QueueDepth bounds pending submissions per class; Submit blocks when
	// the op's class queue is full. Default 64.
	QueueDepth int
	// AgingThreshold is the starvation bound: a queued op older than this
	// is dispatched oldest-first regardless of class. 0 means
	// DefaultAgingThreshold; negative disables aging (strict priority,
	// tests only — low classes can then starve).
	AgingThreshold time.Duration
	// Locks, when non-nil, provides node-level exclusive access control.
	Locks *tierlock.Manager
	// Clock is the time source for op stamps (queuedAt/started/finished)
	// and the aging pick. nil means the wall clock; a virtual clock makes
	// queue-delay and aging assertions exact (see internal/clock).
	Clock clock.Clock
}

// New creates an engine for the given tier.
func New(tier storage.Tier, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.AgingThreshold == 0 {
		cfg.AgingThreshold = DefaultAgingThreshold
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		tier:   tier,
		locks:  cfg.Locks,
		clk:    clock.Or(cfg.Clock),
		depth:  cfg.QueueDepth,
		aging:  cfg.AgingThreshold,
		ctx:    ctx,
		cancel: cancel,
	}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Tier returns the engine's storage tier.
func (e *Engine) Tier() storage.Tier { return e.tier }

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		t := e.next()
		if t == nil {
			return
		}
		e.execute(t)
	}
}

// next blocks until a task is schedulable and dequeues it, or returns nil
// once the engine is closed and fully drained. The executing counter is
// raised inside the same critical section that dequeues, so Drain can
// never observe queued == 0 with the op not yet counted as executing.
func (e *Engine) next() *task {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.queued == 0 {
		if e.closed {
			return nil
		}
		e.cond.Wait()
	}
	t := e.pick(e.clk.Now())
	e.queued--
	e.executing.Add(1)
	e.cond.Broadcast() // free a Submit slot, wake Drain pollers
	return t
}

// pick implements the multi-level policy: serve the oldest op whose queue
// age exceeds the aging threshold (starvation proofing, oldest first
// across all classes), otherwise the head of the highest-priority
// non-empty class. Caller holds mu and guarantees queued > 0.
func (e *Engine) pick(now time.Time) *task {
	best := -1
	if e.aging > 0 {
		for c := 0; c < NumClasses; c++ {
			q := e.queues[c]
			if len(q) == 0 || now.Sub(q[0].op.queuedAt) < e.aging {
				continue
			}
			if best == -1 || q[0].op.queuedAt.Before(e.queues[best][0].op.queuedAt) {
				best = c
			}
		}
	}
	if best == -1 {
		for c := 0; c < NumClasses; c++ {
			if len(e.queues[c]) > 0 {
				best = c
				break
			}
		}
	}
	t := e.queues[best][0]
	e.queues[best][0] = nil // release for GC
	e.queues[best] = e.queues[best][1:]
	return t
}

func (e *Engine) execute(t *task) {
	// The counter was raised in next(), under the queue lock; lower it
	// under the same lock and wake Drain waiters blocked on idleness.
	defer func() {
		e.mu.Lock()
		e.executing.Add(-1)
		e.cond.Broadcast()
		e.mu.Unlock()
	}()
	op := t.op
	op.started = e.clk.Now()

	var rel tierlock.Release
	if e.locks != nil {
		var err error
		rel, err = e.locks.Acquire(e.ctx, e.tier.Name())
		if err != nil {
			e.finish(op, 0, fmt.Errorf("aio: %s %s: lock: %w", op.Kind, op.Key, err))
			return
		}
	}
	// A codec decorator records the encoded (device-level) size of the
	// transfer into the wire-count cell; plain tiers leave it at zero and
	// the op's raw size stands in.
	var err error
	var wc *storage.WireCount
	ctx := e.ctx
	switch op.Kind {
	case Read:
		ctx, wc = storage.WithWireCount(ctx)
		if t.keys != nil {
			err = storage.ReadVec(ctx, e.tier, t.keys, t.bufs)
		} else {
			err = e.tier.Read(ctx, op.Key, t.buf)
		}
	case Write:
		ctx, wc = storage.WithWireCount(ctx)
		err = e.tier.Write(ctx, op.Key, t.buf)
	case Delete:
		err = e.tier.Delete(ctx, op.Key)
	}
	if rel != nil {
		rel()
	}
	wire := int64(op.Bytes)
	if wc != nil {
		if w := wc.Bytes(); w > 0 {
			wire = w
		}
	}
	e.finish(op, wire, err)
}

func (e *Engine) finish(op *Op, wire int64, err error) {
	op.finished = e.clk.Now()
	op.err = err
	op.wire = wire
	d := op.finished.Sub(op.started).Nanoseconds()
	cell := &e.perClass[op.Class()]
	cell.queueNS.Add(op.started.Sub(op.queuedAt).Nanoseconds())
	if err == nil {
		switch op.Kind {
		case Read:
			e.bytesRead.Add(int64(op.Bytes))
			e.wireReadBytes.Add(wire)
			e.readTimeNS.Add(d)
		case Write:
			e.bytesWritten.Add(int64(op.Bytes))
			e.wireWritten.Add(wire)
			e.writeTimeNS.Add(d)
		}
		e.opsDone.Add(1)
		cell.ops.Add(1)
		cell.bytes.Add(int64(op.Bytes))
		cell.wireBytes.Add(wire)
		cell.xferNS.Add(d)
	} else {
		e.opsFailed.Add(1)
		cell.failed.Add(1)
	}
	close(op.done)
}

// submit enqueues a single-object task at the given class.
func (e *Engine) submit(c Class, kind OpKind, key string, buf []byte) (*Op, error) {
	if c < 0 || int(c) >= NumClasses {
		return nil, fmt.Errorf("aio: invalid class %d", c)
	}
	op := &Op{Kind: kind, Key: key, Bytes: len(buf), done: make(chan struct{})}
	op.class.Store(int32(c))
	return e.enqueue(c, &task{op: op, buf: buf})
}

// enqueue inserts a prepared task into its class queue, blocking while
// that class is full.
func (e *Engine) enqueue(c Class, t *task) (*Op, error) {
	e.mu.Lock()
	for !e.closed && len(e.queues[c]) >= e.depth {
		e.cond.Wait()
	}
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	t.op.queuedAt = e.clk.Now()
	e.queues[c] = append(e.queues[c], t)
	e.queued++
	e.cond.Broadcast()
	e.mu.Unlock()
	return t.op, nil
}

// SubmitReadClass enqueues an asynchronous fetch of key into dst at the
// given priority class. The caller must not touch dst until the returned
// op completes.
func (e *Engine) SubmitReadClass(c Class, key string, dst []byte) (*Op, error) {
	return e.submit(c, Read, key, dst)
}

// SubmitReadVecClass enqueues one vectored fetch: a single operation —
// one queue slot, one scheduling decision, one worker dispatch — that
// fills dsts[i] with the object at keys[i] via the tier's vectored
// read path (storage.ReadVec). It exists for the issuer's read-ahead
// coalescing: a run of adjacent same-tier subgroup objects rides one op
// instead of len(keys) queue round trips. The caller must not touch any
// dst until the op completes. Failure is batch-granular (the op's error
// names the first failing member); callers needing attribution re-read
// members individually. A one-element batch degrades to a plain read.
func (e *Engine) SubmitReadVecClass(c Class, keys []string, dsts [][]byte) (*Op, error) {
	if c < 0 || int(c) >= NumClasses {
		return nil, fmt.Errorf("aio: invalid class %d", c)
	}
	if len(keys) != len(dsts) {
		return nil, fmt.Errorf("aio: vectored read: %d keys, %d buffers", len(keys), len(dsts))
	}
	if len(keys) == 0 {
		return nil, errors.New("aio: vectored read: empty batch")
	}
	if len(keys) == 1 {
		return e.submit(c, Read, keys[0], dsts[0])
	}
	total := 0
	for _, d := range dsts {
		total += len(d)
	}
	op := &Op{Kind: Read, Key: fmt.Sprintf("%s (+%d)", keys[0], len(keys)-1), Bytes: total, done: make(chan struct{})}
	op.class.Store(int32(c))
	return e.enqueue(c, &task{op: op, keys: keys, bufs: dsts})
}

// SubmitWriteClass enqueues an asynchronous flush of src under key at the
// given priority class. The caller must not modify src until the returned
// op completes.
func (e *Engine) SubmitWriteClass(c Class, key string, src []byte) (*Op, error) {
	return e.submit(c, Write, key, src)
}

// SubmitDelete enqueues an asynchronous removal of key at the given
// priority class. Deleting a missing key is not an error (Tier contract).
func (e *Engine) SubmitDelete(c Class, key string) (*Op, error) {
	return e.submit(c, Delete, key, nil)
}

// SubmitRead enqueues a fetch at DemandFetch priority — the default for
// callers that will block on the result immediately.
func (e *Engine) SubmitRead(key string, dst []byte) (*Op, error) {
	return e.submit(DemandFetch, Read, key, dst)
}

// SubmitWrite enqueues a flush at Flush priority — the default for lazy
// durability writes.
func (e *Engine) SubmitWrite(key string, src []byte) (*Op, error) {
	return e.submit(Flush, Write, key, src)
}

// Promote raises a queued op to a more urgent class (typically a Prefetch
// the update worker is now blocked on, promoted to DemandFetch). It is a
// no-op if the op already started executing, completed, or already has
// equal or higher priority.
func (e *Engine) Promote(op *Op, c Class) {
	if c < 0 || int(c) >= NumClasses {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := Class(op.class.Load())
	if c >= cur {
		return
	}
	q := e.queues[cur]
	for i, t := range q {
		if t.op != op {
			continue
		}
		copy(q[i:], q[i+1:])
		q[len(q)-1] = nil
		e.queues[cur] = q[:len(q)-1]
		e.queues[c] = append(e.queues[c], t)
		op.class.Store(int32(c))
		e.cond.Broadcast() // a slot opened in cur's queue
		return
	}
}

// ReadSync is a convenience synchronous read through the async path at
// DemandFetch priority.
func (e *Engine) ReadSync(key string, dst []byte) error {
	op, err := e.SubmitRead(key, dst)
	if err != nil {
		return err
	}
	return op.Wait()
}

// WriteSync is a convenience synchronous write through the async path at
// Flush priority.
func (e *Engine) WriteSync(key string, src []byte) error {
	op, err := e.SubmitWrite(key, src)
	if err != nil {
		return err
	}
	return op.Wait()
}

// Metrics is a snapshot of engine counters. Bytes are raw (caller-side)
// counts; WireBytes are the device-level counts, which differ under a
// codec-wrapped tier (see Op.WireBytes).
type Metrics struct {
	BytesRead        int64
	BytesWritten     int64
	WireBytesRead    int64
	WireBytesWritten int64
	ReadTime         time.Duration
	WriteTime        time.Duration
	OpsDone          int64
	OpsFailed        int64
}

// ReadBW returns the observed *effective* read bandwidth in bytes/second
// — raw bytes delivered per device second (0 when no reads completed).
func (m Metrics) ReadBW() float64 {
	if m.ReadTime <= 0 {
		return 0
	}
	return float64(m.BytesRead) / m.ReadTime.Seconds()
}

// WriteBW returns the observed effective write bandwidth in bytes/second.
func (m Metrics) WriteBW() float64 {
	if m.WriteTime <= 0 {
		return 0
	}
	return float64(m.BytesWritten) / m.WriteTime.Seconds()
}

// Metrics returns a snapshot of the engine counters.
func (e *Engine) Metrics() Metrics {
	return Metrics{
		BytesRead:        e.bytesRead.Load(),
		BytesWritten:     e.bytesWritten.Load(),
		WireBytesRead:    e.wireReadBytes.Load(),
		WireBytesWritten: e.wireWritten.Load(),
		ReadTime:         time.Duration(e.readTimeNS.Load()),
		WriteTime:        time.Duration(e.writeTimeNS.Load()),
		OpsDone:          e.opsDone.Load(),
		OpsFailed:        e.opsFailed.Load(),
	}
}

// ClassMetrics is a snapshot of one priority class's counters. Ops counts
// successful completions; an op promoted while queued is accounted under
// the class it was dispatched at. WireBytes is the device-level count
// (equal to Bytes unless the tier is codec-wrapped); Bytes/WireBytes is
// the class's compression ratio.
type ClassMetrics struct {
	Ops        int64
	Failed     int64
	Bytes      int64
	WireBytes  int64
	QueueDelay time.Duration // total time ops of this class sat queued
	Transfer   time.Duration // total device time of successful ops
}

// ClassMetrics returns a snapshot of one class's counters.
func (e *Engine) ClassMetrics(c Class) ClassMetrics {
	cell := &e.perClass[c]
	return ClassMetrics{
		Ops:        cell.ops.Load(),
		Failed:     cell.failed.Load(),
		Bytes:      cell.bytes.Load(),
		WireBytes:  cell.wireBytes.Load(),
		QueueDelay: time.Duration(cell.queueNS.Load()),
		Transfer:   time.Duration(cell.xferNS.Load()),
	}
}

// PerClassMetrics returns snapshots for all classes, indexed by Class.
func (e *Engine) PerClassMetrics() [NumClasses]ClassMetrics {
	var out [NumClasses]ClassMetrics
	for c := 0; c < NumClasses; c++ {
		out[c] = e.ClassMetrics(Class(c))
	}
	return out
}

// QueuedByClass reports the current queue length of each class (a
// scheduling observability hook; values are instantaneous).
func (e *Engine) QueuedByClass() [NumClasses]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out [NumClasses]int
	for c := 0; c < NumClasses; c++ {
		out[c] = len(e.queues[c])
	}
	return out
}

// Drain waits for all currently queued and executing operations to finish.
// It is the barrier the engine uses at phase boundaries ("wait for all
// lazy flushes before starting the next backward pass"). It blocks on the
// engine condition variable — no polling — and is woken by the same
// broadcasts that pace Submit: dequeue in next() and completion in
// execute(). The executing counter moves only under mu (raised in next,
// lowered in execute's defer), so "queued == 0 && executing == 0" is an
// atomic idleness observation, never a racy in-between.
func (e *Engine) Drain() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.queued > 0 || e.executing.Load() > 0 {
		e.cond.Wait()
	}
}

// Close stops accepting submissions, waits for queued ops of every class
// to finish, and releases workers. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	e.cancel()
}
