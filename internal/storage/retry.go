package storage

import (
	"errors"
	"io"
	"syscall"
)

// eintrRetryLimit bounds consecutive zero-progress retries in the
// short-read loops. EINTR can legitimately repeat under signal load,
// but an adversarial or broken reader must not spin forever.
const eintrRetryLimit = 100

// readAtFull reads len(dst) bytes at off, absorbing the partial results
// a network filesystem may deliver: a short ReadAt that made progress
// continues from where it stopped, and EINTR retries in place. It
// returns the bytes read and the first non-recoverable error — EOF
// before len(dst) means the object really is shorter than the caller
// expects and is surfaced, never looped on.
func readAtFull(r io.ReaderAt, dst []byte, off int64) (int, error) {
	total := 0
	spins := 0
	for total < len(dst) {
		n, err := r.ReadAt(dst[total:], off+int64(total))
		if n > 0 {
			total += n
			spins = 0
			continue // progress: keep reading regardless of err
		}
		if errors.Is(err, syscall.EINTR) {
			if spins++; spins > eintrRetryLimit {
				return total, err
			}
			continue
		}
		if err == nil {
			// Contract violation (no progress, no error): treat as a
			// truncated object rather than spinning.
			err = io.ErrUnexpectedEOF
		}
		return total, err
	}
	return total, nil
}
