package storage

import (
	"context"
	"fmt"
)

// VectoredReader is an optional Tier capability: fill dsts[i] with the
// complete object stored at keys[i], as one tier-level operation. Each
// object read keeps the Tier contract's per-key atomicity (a filled
// dst is some complete previously written object); the batch as a
// whole is not transactional — on error, dsts may be partially filled
// and the caller re-reads individually to attribute the failure.
//
// The capability exists for the engine's read-ahead coalescing: runs of
// adjacent same-tier subgroup objects are submitted as one aio op, so
// the tier sees the whole run at once — FileTier serves it over cached
// descriptors with preadv (O_DIRECT-capable), MemTier under a single
// lock acquisition.
type VectoredReader interface {
	ReadVec(ctx context.Context, keys []string, dsts [][]byte) error
}

// ReadVec reads keys[i] into dsts[i] through the tier's VectoredReader
// fast path when it has one, falling back to sequential whole-object
// Reads otherwise. Both paths return the first failing object's error.
func ReadVec(ctx context.Context, t Tier, keys []string, dsts [][]byte) error {
	if len(keys) != len(dsts) {
		return fmt.Errorf("storage: vectored read: %d keys, %d buffers", len(keys), len(dsts))
	}
	if vr, ok := t.(VectoredReader); ok {
		return vr.ReadVec(ctx, keys, dsts)
	}
	for i := range keys {
		if err := t.Read(ctx, keys[i], dsts[i]); err != nil {
			return err
		}
	}
	return nil
}
