// Package storage provides the storage-tier abstraction of the offloading
// engine: a key/value object store with whole-object reads and writes, the
// access pattern of subgroup offloading (each subgroup's optimizer state is
// one object, always fetched and flushed in full).
//
// Implementations:
//   - MemTier: host-memory store (second-level tier / test substrate),
//   - FileTier: directory-backed store (a real NVMe or PFS mount),
//   - Throttled: decorator imposing bandwidth, latency and contention so a
//     laptop reproduces the I/O behaviour of Table 1 devices.
package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/datastates/mlpoffload/internal/bufpool"
	"github.com/datastates/mlpoffload/internal/ratelimit"
)

// ErrNotFound is returned when a key does not exist in a tier.
var ErrNotFound = errors.New("storage: key not found")

// ErrTierDown is returned (wrapped) by every operation on a tier that
// has failed hard — an outage, not a transient fault: no retry against
// the same tier can succeed. Callers distinguish it from transient
// corruption (tiercodec.ErrCorrupt) to choose degradation over retry:
// re-placing subgroups onto surviving tiers, failing the phase cleanly,
// or triggering elastic recovery.
var ErrTierDown = errors.New("storage: tier down")

// Tier is an object store with whole-object semantics.
//
// Concurrency contract: implementations must be safe for concurrent use by
// multiple goroutines. The aio engine calls Read and Write from IOWorkers
// goroutines per tier, the engine's update pipeline adds UpdateWorkers
// concurrent callers on top, and several engine instances may share one
// Tier on a node (TestFourWorkersSharedNode). Concurrent operations on
// distinct keys must not interfere; concurrent operations on the same key
// must each behave atomically (a Read observes some complete previously
// written object, never a torn mix). Ordering between a concurrent Read
// and Write of one key is the caller's responsibility — the engine orders
// a refetch after its eviction flush explicitly.
type Tier interface {
	// Name identifies the tier (e.g. "nvme", "pfs").
	Name() string
	// Read fills dst with the object's bytes. The object size must equal
	// len(dst); subgroup objects have fixed, known sizes.
	Read(ctx context.Context, key string, dst []byte) error
	// Write stores src under key, replacing any previous object.
	Write(ctx context.Context, key string, src []byte) error
	// Delete removes key. Deleting a missing key is not an error.
	Delete(ctx context.Context, key string) error
	// Size returns the stored size of key, or ErrNotFound.
	Size(ctx context.Context, key string) (int64, error)
	// Keys lists stored keys (sorted), mainly for tests and tooling.
	Keys(ctx context.Context) ([]string, error)
	// Stats returns cumulative transfer statistics.
	Stats() Stats
}

// ErrCopyUnsupported is returned by a Copier whose backing store cannot
// perform server-side copies (e.g. a decorator over a plain Tier).
var ErrCopyUnsupported = errors.New("storage: server-side copy unsupported")

// Copier is an optional Tier capability: duplicate an object under a new
// key without moving its bytes through the host. Checkpoint pre-staging
// uses it to version persistent-tier objects "for free" — a hard link on
// FileTier, a buffer alias on MemTier. The copy must be isolated from
// later Writes to either key (Tier.Write always publishes a fresh
// object, never mutates in place, so link/alias implementations are
// safe). Implementations that merely delegate may return
// ErrCopyUnsupported; use TryCopy to fall back gracefully.
type Copier interface {
	Copy(ctx context.Context, srcKey, dstKey string) error
}

// TryCopy performs a server-side copy when the tier supports it. It
// reports whether the copy was performed; (false, nil) means the caller
// must fall back to a read+write.
func TryCopy(ctx context.Context, t Tier, srcKey, dstKey string) (bool, error) {
	c, ok := t.(Copier)
	if !ok {
		return false, nil
	}
	err := c.Copy(ctx, srcKey, dstKey)
	if errors.Is(err, ErrCopyUnsupported) {
		return false, nil
	}
	return true, err
}

// Stats accumulates tier traffic.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
}

// statsCell is an embeddable atomic Stats accumulator.
type statsCell struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
}

func (s *statsCell) addRead(n int64)  { s.bytesRead.Add(n); s.reads.Add(1) }
func (s *statsCell) addWrite(n int64) { s.bytesWritten.Add(n); s.writes.Add(1) }

func (s *statsCell) snapshot() Stats {
	return Stats{
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
	}
}

// MemTier is an in-memory Tier.
//
// Allocation discipline: stored buffers come from internal/bufpool and
// are recycled when a Write replaces them or a Delete removes them, so a
// steady-state training loop over a MemTier allocates nothing per
// operation. Two rules make that safe: all copies in and out of stored
// buffers happen *under the lock* (the lock, not buffer freshness, is
// what makes concurrent same-key operations atomic), and a buffer that
// Copy has aliased under a second key is marked shared and never
// recycled — it is released to the garbage collector instead.
type MemTier struct {
	name string
	mu   sync.RWMutex
	data map[string]memObj
	statsCell
}

// memObj is one stored object. shared marks buffers aliased under more
// than one key by Copy; they are never returned to the buffer pool.
type memObj struct {
	data   []byte
	shared bool
}

// NewMemTier creates an empty in-memory tier.
func NewMemTier(name string) *MemTier {
	return &MemTier{name: name, data: make(map[string]memObj)}
}

// Name implements Tier.
func (m *MemTier) Name() string { return m.name }

// Read implements Tier. The copy-out happens under the read lock:
// concurrent reads proceed in parallel while a same-key Write (which
// replaces and may recycle the buffer under the write lock) is excluded
// until the copy completes — the atomicity the Tier contract requires.
func (m *MemTier) Read(ctx context.Context, key string, dst []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.RLock()
	obj, ok := m.data[key]
	if !ok {
		m.mu.RUnlock()
		return fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, key)
	}
	if len(obj.data) != len(dst) {
		m.mu.RUnlock()
		return fmt.Errorf("storage: %s/%s size %d != dst %d", m.name, key, len(obj.data), len(dst))
	}
	copy(dst, obj.data)
	m.mu.RUnlock()
	m.addRead(int64(len(dst)))
	return nil
}

// ReadVec implements VectoredReader: the whole batch copies out under
// one read-lock acquisition instead of one per object — the MemTier
// analogue of the file tier's descriptor reuse. Per-object atomicity is
// unchanged (stronger, even: the batch is a consistent snapshot).
func (m *MemTier) ReadVec(ctx context.Context, keys []string, dsts [][]byte) error {
	if len(keys) != len(dsts) {
		return fmt.Errorf("storage: %s: vectored read: %d keys, %d buffers", m.name, len(keys), len(dsts))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.RLock()
	total := 0
	for i, key := range keys {
		obj, ok := m.data[key]
		if !ok {
			m.mu.RUnlock()
			return fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, key)
		}
		if len(obj.data) != len(dsts[i]) {
			m.mu.RUnlock()
			return fmt.Errorf("storage: %s/%s size %d != dst %d", m.name, key, len(obj.data), len(dsts[i]))
		}
		copy(dsts[i], obj.data)
		total += len(dsts[i])
	}
	m.mu.RUnlock()
	m.bytesRead.Add(int64(total))
	m.reads.Add(int64(len(keys)))
	return nil
}

// Write implements Tier. The buffer a Write replaces is recycled into
// the shared pool unless Copy aliased it under another key.
func (m *MemTier) Write(ctx context.Context, key string, src []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	buf := bufpool.Get(len(src))
	copy(buf, src)
	m.mu.Lock()
	if old, ok := m.data[key]; ok && !old.shared {
		bufpool.Put(old.data)
	}
	m.data[key] = memObj{data: buf}
	m.mu.Unlock()
	m.addWrite(int64(len(src)))
	return nil
}

// ReadObject implements ObjectReader: the returned buffer is one
// complete previously written object, copied out under the read lock
// (see Read). It is caller-owned pooled memory — recycling it with
// bufpool.Put when done closes the allocation loop, dropping it is
// equally correct.
func (m *MemTier) ReadObject(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	obj, ok := m.data[key]
	if !ok {
		m.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, key)
	}
	out := bufpool.Get(len(obj.data))
	copy(out, obj.data)
	m.mu.RUnlock()
	m.addRead(int64(len(out)))
	return out, nil
}

// Copy implements Copier by aliasing the stored buffer under the new
// key: MemTier never mutates stored buffers in place (Write replaces),
// so sharing is safe and the copy moves no bytes. Both entries are
// marked shared, which permanently exempts the buffer from pool
// recycling (the object graph, not the pool, then owns it).
func (m *MemTier) Copy(ctx context.Context, srcKey, dstKey string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	obj, ok := m.data[srcKey]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, srcKey)
	}
	obj.shared = true
	m.data[srcKey] = obj
	if old, ok := m.data[dstKey]; ok && !old.shared {
		bufpool.Put(old.data)
	}
	m.data[dstKey] = memObj{data: obj.data, shared: true}
	return nil
}

// Delete implements Tier.
func (m *MemTier) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	if old, ok := m.data[key]; ok && !old.shared {
		bufpool.Put(old.data)
	}
	delete(m.data, key)
	m.mu.Unlock()
	return nil
}

// Size implements Tier.
func (m *MemTier) Size(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	m.mu.RLock()
	obj, ok := m.data[key]
	m.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, m.name, key)
	}
	return int64(len(obj.data)), nil
}

// Keys implements Tier.
func (m *MemTier) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	out := make([]string, 0, len(m.data))
	for k := range m.data {
		out = append(out, k)
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// Stats implements Tier.
func (m *MemTier) Stats() Stats { return m.snapshot() }

// FileTier stores each object as a file under a directory, the layout the
// real system uses for /local/ (NVMe mount) and /remote/ (PFS mount)
// offload directories.
//
// Two below-the-allocator fast paths ride on the same contract (see
// FileTierOption): a bounded cache of open read descriptors, and an
// opt-in O_DIRECT mode on Linux that moves aligned object bodies
// between storage and the fetch buffers without the page cache.
type FileTier struct {
	name string
	dir  string
	fds  *fdCache // nil when descriptor caching is disabled

	direct   bool        // O_DIRECT requested (WithDirectIO)
	noDirect atomic.Bool // set when the filesystem rejected O_DIRECT; fall back for good
	statsCell
}

// FileTierOption customizes a FileTier; the zero set keeps today's
// portable semantics plus descriptor caching (safe everywhere — Write
// invalidates, so staleness cannot occur).
type FileTierOption func(*fileTierOpts)

type fileTierOpts struct {
	fdCache int
	direct  bool
}

// WithFDCache bounds the tier's cache of open read descriptors; n <= 0
// disables caching (every read reopens, the pre-cache behaviour).
func WithFDCache(n int) FileTierOption {
	return func(o *fileTierOpts) { o.fdCache = n }
}

// WithDirectIO requests O_DIRECT reads and writes where the platform
// and filesystem support them. The tier probes at first use and falls
// back to buffered I/O permanently on EINVAL/ENOTSUP (tmpfs, overlay),
// so enabling it is always safe — just not always effective. Alignment
// is handled internally: bodies whose buffer and length satisfy the
// bufpool.DirectAlign contract transfer in place, remainders bounce
// through an aligned scratch block.
func WithDirectIO(on bool) FileTierOption {
	return func(o *fileTierOpts) { o.direct = on }
}

// NewFileTier creates (if needed) dir and returns a tier backed by it.
func NewFileTier(name, dir string, opts ...FileTierOption) (*FileTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", dir, err)
	}
	o := fileTierOpts{fdCache: DefaultFDCacheSize}
	for _, opt := range opts {
		opt(&o)
	}
	return &FileTier{
		name:   name,
		dir:    dir,
		fds:    newFDCache(o.fdCache),
		direct: o.direct && directIOSupported,
	}, nil
}

// Close releases cached descriptors. The tier remains usable (reads
// reopen); Close exists so short-lived tiers do not pin fds until GC.
func (f *FileTier) Close() error {
	if f.fds != nil {
		f.fds.closeAll()
	}
	return nil
}

// directEnabled reports whether the O_DIRECT path is still live.
func (f *FileTier) directEnabled() bool { return f.direct && !f.noDirect.Load() }

// Name implements Tier.
func (f *FileTier) Name() string { return f.name }

// Dir returns the backing directory.
func (f *FileTier) Dir() string { return f.dir }

func (f *FileTier) path(key string) string {
	// Keys are flat; escape path separators defensively.
	safe := strings.ReplaceAll(key, string(os.PathSeparator), "_")
	return filepath.Join(f.dir, safe)
}

// fileHandle is an open read descriptor plus how to give it back:
// cached handles release into the fd cache, uncached ones close.
type fileHandle struct {
	f      *os.File
	direct bool // descriptor opened with O_DIRECT
	ent    *fdEntry
	cache  *fdCache
}

func (h *fileHandle) release() {
	if h.ent != nil {
		h.cache.release(h.ent)
		return
	}
	h.f.Close()
}

// openRead returns a descriptor for key's object, from the fd cache
// when enabled. The caller must release it exactly once.
func (f *FileTier) openRead(key string) (*fileHandle, error) {
	p := f.path(key)
	want := f.directEnabled()
	open := func() (*os.File, bool, error) {
		fh, direct, err := openReadFile(p, want)
		if err == nil && want && !direct {
			f.noDirect.Store(true) // filesystem said no; stop asking
		}
		return fh, direct, err
	}
	if f.fds == nil {
		fh, direct, err := open()
		if err != nil {
			return nil, err
		}
		return &fileHandle{f: fh, direct: direct}, nil
	}
	e, err := f.fds.acquire(p, open)
	if err != nil {
		return nil, err
	}
	return &fileHandle{f: e.f, direct: e.direct, ent: e, cache: f.fds}, nil
}

// readInto fills dst with key's object: the O_DIRECT vectored path when
// the descriptor supports it, otherwise a short-read/EINTR-hardened
// ReadAt loop (network filesystems may return partial reads that the
// old single-ReadAt call misreported as corruption).
func (f *FileTier) readInto(key string, dst []byte) error {
	h, err := f.openRead(key)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s/%s", ErrNotFound, f.name, key)
		}
		return err
	}
	defer h.release()
	if h.direct {
		if err := readDirect(h.f, dst); err != nil {
			return fmt.Errorf("storage: direct read %s/%s: %w", f.name, key, err)
		}
		return nil
	}
	if n, err := readAtFull(h.f, dst, 0); err != nil {
		return fmt.Errorf("storage: short read %s/%s (%d/%d): %w", f.name, key, n, len(dst), err)
	}
	return nil
}

// Read implements Tier.
func (f *FileTier) Read(ctx context.Context, key string, dst []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := f.readInto(key, dst); err != nil {
		return err
	}
	f.addRead(int64(len(dst)))
	return nil
}

// ReadVec implements VectoredReader. Each object is its own file (and
// so its own descriptor), so the batch cannot collapse into a single
// preadv; the win is per-run instead: one aio scheduling decision for
// the whole run, descriptors served from the fd cache, and each object
// moved by the same direct/vectored single-object path as Read.
func (f *FileTier) ReadVec(ctx context.Context, keys []string, dsts [][]byte) error {
	if len(keys) != len(dsts) {
		return fmt.Errorf("storage: %s: vectored read: %d keys, %d buffers", f.name, len(keys), len(dsts))
	}
	for i := range keys {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := f.readInto(keys[i], dsts[i]); err != nil {
			return err
		}
		f.addRead(int64(len(dsts[i])))
	}
	return nil
}

// ReadObject implements ObjectReader. One file descriptor serves the
// size probe and the whole read, and Write replaces objects via rename,
// so a concurrent writer can never make this observe a torn object: the
// opened inode stays the complete previous version. (With the fd cache
// the descriptor may predate a concurrent Write — same guarantee, the
// complete older version — and Write invalidates the cache entry so the
// staleness window is one in-flight read, not forever.) The returned
// buffer is caller-owned pooled memory (see MemTier.ReadObject).
func (f *FileTier) ReadObject(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := f.openRead(key)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, f.name, key)
		}
		return nil, err
	}
	defer h.release()
	st, err := h.f.Stat()
	if err != nil {
		return nil, err
	}
	data := bufpool.Get(int(st.Size()))
	if h.direct {
		if err := readDirect(h.f, data); err != nil {
			bufpool.Put(data)
			return nil, fmt.Errorf("storage: direct read %s/%s: %w", f.name, key, err)
		}
	} else if n, err := readAtFull(h.f, data, 0); err != nil {
		rerr := fmt.Errorf("storage: read %s/%s (%d/%d): %w", f.name, key, n, len(data), err)
		bufpool.Put(data)
		return nil, rerr
	}
	f.addRead(int64(len(data)))
	return data, nil
}

// Write implements Tier. Writes go to a uniquely named temp file and
// rename for atomicity: a crashed flush must not leave a torn subgroup
// object, and concurrent writers of one key must each publish a complete
// object (a shared temp path would let one writer rename another's
// half-written file into place).
func (f *FileTier) Write(ctx context.Context, key string, src []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p := f.path(key)
	if f.directEnabled() {
		switch err := f.writeDirect(p, src); {
		case err == nil:
			f.invalidate(p)
			f.addWrite(int64(len(src)))
			return nil
		case errors.Is(err, errDirectUnsupported):
			f.noDirect.Store(true) // buffered path below takes over
		default:
			return fmt.Errorf("storage: direct write %s/%s: %w", f.name, key, err)
		}
	}
	tmp, err := os.CreateTemp(f.dir, filepath.Base(p)+".*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(src); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil { // CreateTemp defaults to 0600
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	f.invalidate(p)
	f.addWrite(int64(len(src)))
	return nil
}

// invalidate drops any cached descriptor for p. Write and Copy publish
// via rename/remove, so a cached fd addresses the replaced inode and
// would serve the old object forever.
func (f *FileTier) invalidate(p string) {
	if f.fds != nil {
		f.fds.invalidate(p)
	}
}

// Copy implements Copier with a hard link: the destination shares the
// source's inode, so the copy is O(1) and survives later Writes of
// either key (Write publishes a fresh inode via rename, leaving linked
// snapshots untouched). Filesystems without link support fall back to a
// byte copy on the storage device — still no round trip through the
// engine's staging memory.
func (f *FileTier) Copy(ctx context.Context, srcKey, dstKey string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	src, dst := f.path(srcKey), f.path(dstKey)
	if _, err := os.Stat(src); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s/%s", ErrNotFound, f.name, srcKey)
		}
		return err
	}
	if err := os.Remove(dst); err != nil && !os.IsNotExist(err) {
		return err
	}
	f.invalidate(dst)
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	// Link failed (unsupported filesystem): copy within the tier.
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return f.Write(ctx, dstKey, data)
}

// Delete implements Tier.
func (f *FileTier) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p := f.path(key)
	err := os.Remove(p)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	f.invalidate(p)
	return nil
}

// Size implements Tier.
func (f *FileTier) Size(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	fi, err := os.Stat(f.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, f.name, key)
		}
		return 0, err
	}
	return fi.Size(), nil
}

// Keys implements Tier.
func (f *FileTier) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stats implements Tier.
func (f *FileTier) Stats() Stats { return f.snapshot() }

// Throttled decorates a Tier with read/write bandwidth limits, a fixed
// per-operation latency, and a contention gate reproducing the Fig. 4
// behaviour of shared devices. It is how a laptop impersonates Table 1's
// NVMe (6.9/5.3 GB/s) or PFS (3.6/3.6 GB/s) at scaled-down rates.
type Throttled struct {
	inner     Tier
	readLim   *ratelimit.Limiter
	writeLim  *ratelimit.Limiter
	gate      *ratelimit.Gate
	opLatency func() // called once per op to impose fixed latency
}

// ThrottleConfig configures a Throttled tier.
type ThrottleConfig struct {
	ReadBW  float64 // bytes/second; must be > 0
	WriteBW float64 // bytes/second; must be > 0
	// ReadBurst/WriteBurst are the token-bucket capacities in bytes
	// (0 = a quarter second's worth). Transfers much smaller than the
	// burst complete at memory speed, so tests that need *observed*
	// bandwidth to track the configured rate should set bursts below the
	// object size.
	ReadBurst  float64
	WriteBurst float64
	// Curve models aggregate efficiency under n concurrent ops; nil = ideal.
	Curve ratelimit.EfficiencyCurve
	// Clock for the limiters; nil = wall clock.
	Clock ratelimit.Clock
}

// NewThrottled wraps inner with the given throttle configuration.
func NewThrottled(inner Tier, cfg ThrottleConfig) *Throttled {
	if cfg.ReadBW <= 0 || cfg.WriteBW <= 0 {
		panic("storage: throttle bandwidths must be positive")
	}
	if cfg.ReadBurst <= 0 {
		cfg.ReadBurst = cfg.ReadBW / 4
	}
	if cfg.WriteBurst <= 0 {
		cfg.WriteBurst = cfg.WriteBW / 4
	}
	return &Throttled{
		inner:    inner,
		readLim:  ratelimit.NewLimiter(cfg.ReadBW, cfg.ReadBurst, cfg.Clock),
		writeLim: ratelimit.NewLimiter(cfg.WriteBW, cfg.WriteBurst, cfg.Clock),
		gate:     ratelimit.NewGate(cfg.Curve),
	}
}

// Name implements Tier.
func (t *Throttled) Name() string { return t.inner.Name() }

// SetRates changes the emulated read/write bandwidths mid-run (both must
// be positive), preserving accumulated tokens. This is how experiments
// simulate a tier slowing down under external load — e.g. to watch
// adaptive placement replan and the live migrator converge onto the new
// plan.
func (t *Throttled) SetRates(readBW, writeBW float64) {
	if readBW <= 0 || writeBW <= 0 {
		panic("storage: throttle bandwidths must be positive")
	}
	t.readLim.SetRate(readBW)
	t.writeLim.SetRate(writeBW)
}

// throttle charges n bytes against lim, inflated by the current contention
// penalty: with k concurrent streams and curve eff, the device-level cost
// of moving n bytes for this stream is n/eff(k) (the aggregate stays
// B*eff(k) while the limiter itself enforces B).
func (t *Throttled) throttle(ctx context.Context, lim *ratelimit.Limiter, n int) error {
	share, release := t.gate.Enter(1)
	defer release()
	// share = eff(k)/k for one stream of a unit device; the fair-share
	// slowdown (1/k) is already produced by k streams drawing from one
	// limiter concurrently, so only the efficiency loss is added here.
	k := t.gate.Active()
	if k < 1 {
		k = 1
	}
	eff := share * float64(k) // = eff(k)
	charged := int64(float64(n) / eff)
	return lim.WaitN(ctx, charged)
}

// Read implements Tier.
func (t *Throttled) Read(ctx context.Context, key string, dst []byte) error {
	if err := t.throttle(ctx, t.readLim, len(dst)); err != nil {
		return err
	}
	return t.inner.Read(ctx, key, dst)
}

// ReadVec implements VectoredReader: the batch is charged as one
// transfer of its total size (a coalesced read crosses the device link
// once), then delegates to the inner tier's vectored path when it has
// one.
func (t *Throttled) ReadVec(ctx context.Context, keys []string, dsts [][]byte) error {
	total := 0
	for _, d := range dsts {
		total += len(d)
	}
	if err := t.throttle(ctx, t.readLim, total); err != nil {
		return err
	}
	return ReadVec(ctx, t.inner, keys, dsts)
}

// ReadObject implements ObjectReader. The transfer is charged after the
// bytes are read (their count is unknown beforehand); aggregate
// bandwidth over many operations matches the configured rate exactly.
func (t *Throttled) ReadObject(ctx context.Context, key string) ([]byte, error) {
	data, err := ReadWholeObject(ctx, t.inner, key)
	if err != nil {
		return nil, err
	}
	if err := t.throttle(ctx, t.readLim, len(data)); err != nil {
		return nil, err
	}
	return data, nil
}

// Write implements Tier.
func (t *Throttled) Write(ctx context.Context, key string, src []byte) error {
	if err := t.throttle(ctx, t.writeLim, len(src)); err != nil {
		return err
	}
	return t.inner.Write(ctx, key, src)
}

// Copy implements Copier by delegating to the inner tier. A server-side
// copy never crosses the host link, so it is deliberately not throttled.
func (t *Throttled) Copy(ctx context.Context, srcKey, dstKey string) error {
	if c, ok := t.inner.(Copier); ok {
		return c.Copy(ctx, srcKey, dstKey)
	}
	return ErrCopyUnsupported
}

// Delete implements Tier.
func (t *Throttled) Delete(ctx context.Context, key string) error {
	return t.inner.Delete(ctx, key)
}

// Size implements Tier.
func (t *Throttled) Size(ctx context.Context, key string) (int64, error) {
	return t.inner.Size(ctx, key)
}

// Keys implements Tier.
func (t *Throttled) Keys(ctx context.Context) ([]string, error) {
	return t.inner.Keys(ctx)
}

// Stats implements Tier.
func (t *Throttled) Stats() Stats { return t.inner.Stats() }

// Unwrap returns the decorated tier.
func (t *Throttled) Unwrap() Tier { return t.inner }

// FaultTier injects failures for resilience testing: every Nth operation
// of the chosen kind fails with the given error.
type FaultTier struct {
	Tier
	mu         sync.Mutex
	FailEvery  int64 // fail ops where (op count % FailEvery) == 0; 0 disables
	Err        error
	ops        int64
	FailReads  bool
	FailWrites bool
}

// SetFailEvery rearms (or disarms, with 0) the injector. Unlike writing
// the field directly, it is safe while operations are in flight.
func (f *FaultTier) SetFailEvery(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.FailEvery = n
}

// shouldFail advances the op counter and reports whether to inject.
func (f *FaultTier) shouldFail() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailEvery <= 0 {
		return false
	}
	f.ops++
	return f.ops%f.FailEvery == 0
}

// Read implements Tier with read-fault injection.
func (f *FaultTier) Read(ctx context.Context, key string, dst []byte) error {
	if f.FailReads && f.shouldFail() {
		return f.Err
	}
	return f.Tier.Read(ctx, key, dst)
}

// Write implements Tier with write-fault injection.
func (f *FaultTier) Write(ctx context.Context, key string, src []byte) error {
	if f.FailWrites && f.shouldFail() {
		return f.Err
	}
	return f.Tier.Write(ctx, key, src)
}
