//go:build linux

package storage

// FileTier's Linux fast path: vectored preadv/pwritev over raw
// syscalls (the module is dependency-free, so no x/sys), plus the
// O_DIRECT machinery behind WithDirectIO. Alignment contract: buffer
// addresses, file offsets, and transfer lengths must be multiples of
// the logical block size; bufpool.DirectAlign (4 KiB) covers every
// deployed block size. Aligned object bodies transfer in place,
// remainders bounce through one aligned scratch block.
//
//mlpvet:allowfile unsafeconfine raw preadv/pwritev need iovec base pointers; the unsafe stays inside this build-tagged syscall shim

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"unsafe"

	"github.com/datastates/mlpoffload/internal/bufpool"
	"github.com/datastates/mlpoffload/internal/f32view"
)

// directIOSupported gates WithDirectIO at construction; off-Linux
// builds compile the same call sites against a false constant.
const directIOSupported = true

// errDirectUnsupported marks O_DIRECT rejections (tmpfs, overlayfs,
// some network mounts). The tier downgrades to buffered I/O for good
// instead of failing the operation.
var errDirectUnsupported = errors.New("storage: filesystem rejected O_DIRECT")

func isDirectUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.EOPNOTSUPP) ||
		errors.Is(err, syscall.ENOTTY)
}

// openReadFile opens p for reading, with O_DIRECT when direct is set
// and the filesystem accepts it. The returned bool reports whether the
// descriptor really is direct — false after a graceful downgrade.
func openReadFile(p string, direct bool) (*os.File, bool, error) {
	if direct {
		fh, err := os.OpenFile(p, os.O_RDONLY|syscall.O_DIRECT, 0)
		if err == nil {
			return fh, true, nil
		}
		if !isDirectUnsupported(err) {
			return nil, false, err
		}
	}
	fh, err := os.Open(p)
	return fh, false, err
}

// readDirect fills dst from an O_DIRECT descriptor, offset 0. The
// aligned body of dst is read in place; the tail rides in the same
// preadv as a second, aligned bounce iovec. A destination that fails
// the alignment contract entirely (foreign buffer, offset view) bounces
// whole — correct, just one extra copy.
func readDirect(fh *os.File, dst []byte) error {
	n := len(dst)
	if n == 0 {
		return nil
	}
	const align = bufpool.DirectAlign
	if body := n &^ (align - 1); body > 0 && f32view.AlignedTo(dst, align) {
		tail := n - body
		if tail == 0 {
			return preadvFull(fh, [][]byte{dst[:body]}, 0, n)
		}
		bounce := bufpool.GetAligned(align)
		defer bufpool.Put(bounce)
		if err := preadvFull(fh, [][]byte{dst[:body], bounce}, 0, n); err != nil {
			return err
		}
		copy(dst[body:], bounce[:tail])
		return nil
	}
	bounce := bufpool.GetAligned((n + align - 1) &^ (align - 1))
	defer bufpool.Put(bounce)
	if err := preadvFull(fh, [][]byte{bounce}, 0, n); err != nil {
		return err
	}
	copy(dst, bounce[:n])
	return nil
}

// writeDirect is Write's O_DIRECT variant: same temp-file + rename
// publication, but the payload goes down via pwritev with O_DIRECT set
// on the descriptor — aligned body in place, tail zero-padded to a full
// block in an aligned bounce, then the file truncated back to the true
// object length before rename.
func (f *FileTier) writeDirect(p string, src []byte) error {
	tmp, err := os.CreateTemp(f.dir, filepath.Base(p)+".*.tmp")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := setDirectFlag(tmp); err != nil {
		return fail(errDirectUnsupported)
	}
	const align = bufpool.DirectAlign
	n := len(src)
	body := 0
	if f32view.AlignedTo(src, align) {
		body = n &^ (align - 1)
	}
	var bufs [][]byte
	if body > 0 {
		bufs = append(bufs, src[:body])
	}
	var bounce []byte
	if tail := n - body; tail > 0 {
		bounce = bufpool.GetAligned((tail + align - 1) &^ (align - 1))
		copy(bounce, src[body:])
		clear(bounce[tail:])
		bufs = append(bufs, bounce)
	}
	total := body + len(bounce)
	err = pwritevFull(tmp, bufs, 0, total)
	if bounce != nil {
		bufpool.Put(bounce)
	}
	if err != nil {
		if isDirectUnsupported(err) {
			// fcntl accepted the flag but the write path refused it.
			return fail(errDirectUnsupported)
		}
		return fail(err)
	}
	if n != total {
		if err := tmp.Truncate(int64(n)); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// setDirectFlag turns on O_DIRECT for an already-open descriptor
// (CreateTemp owns the open, so the flag is added after the fact).
func setDirectFlag(fh *os.File) error {
	fd := fh.Fd()
	flags, _, errno := syscall.Syscall(syscall.SYS_FCNTL, fd, syscall.F_GETFL, 0)
	if errno != 0 {
		return errno
	}
	if _, _, errno := syscall.Syscall(syscall.SYS_FCNTL, fd, syscall.F_SETFL, flags|syscall.O_DIRECT); errno != 0 {
		return errno
	}
	return nil
}

// preadvFull reads at least want bytes at off into bufs in order,
// retrying EINTR and advancing the iovec view across short reads. The
// iovecs may cover more than want (a bounce block rounds the tail up);
// zero progress before want bytes means the object is truncated.
func preadvFull(fh *os.File, bufs [][]byte, off int64, want int) error {
	return vecFull(fh, bufs, off, want, syscall.SYS_PREADV, io.ErrUnexpectedEOF)
}

// pwritevFull writes exactly want bytes (the total of bufs) at off.
func pwritevFull(fh *os.File, bufs [][]byte, off int64, want int) error {
	return vecFull(fh, bufs, off, want, syscall.SYS_PWRITEV, io.ErrShortWrite)
}

func vecFull(fh *os.File, bufs [][]byte, off int64, want int, trap uintptr, stallErr error) error {
	done := 0
	spins := 0
	fd := fh.Fd()
	for done < want {
		iov := buildIovecs(bufs)
		if len(iov) == 0 {
			return stallErr
		}
		n, err := vecSyscall(trap, fd, iov, off+int64(done))
		if n > 0 {
			done += n
			bufs = advanceBufs(bufs, n)
			spins = 0
			continue
		}
		if err == syscall.EINTR {
			if spins++; spins > eintrRetryLimit {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		return stallErr
	}
	return nil
}

// vecSyscall issues preadv/pwritev. The raw syscall splits the offset
// into (pos_l, pos_h) halves; on 64-bit the kernel reads the whole
// offset from pos_l and ignores pos_h, on 32-bit the halves compose.
func vecSyscall(trap uintptr, fd uintptr, iov []syscall.Iovec, off int64) (int, error) {
	r, _, errno := syscall.Syscall6(trap, fd,
		uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)),
		uintptr(off), uintptr(uint64(off)>>32), 0)
	if errno != 0 {
		return 0, errno
	}
	return int(r), nil
}

func buildIovecs(bufs [][]byte) []syscall.Iovec {
	iov := make([]syscall.Iovec, 0, len(bufs))
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		var v syscall.Iovec
		v.Base = &b[0]
		v.SetLen(len(b))
		iov = append(iov, v)
	}
	return iov
}

// advanceBufs drops n consumed bytes off the front of the buffer list.
func advanceBufs(bufs [][]byte, n int) [][]byte {
	for len(bufs) > 0 && n >= len(bufs[0]) {
		n -= len(bufs[0])
		bufs = bufs[1:]
	}
	if len(bufs) > 0 && n > 0 {
		rest := make([][]byte, len(bufs))
		copy(rest, bufs)
		rest[0] = rest[0][n:]
		return rest
	}
	return bufs
}
