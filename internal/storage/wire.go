package storage

import (
	"context"
	"sync/atomic"

	"github.com/datastates/mlpoffload/internal/bufpool"
)

// Wire-byte accounting.
//
// A transparent codec decorator (internal/tiercodec) changes how many
// bytes an operation actually moves across the tier device: the caller
// reads and writes raw objects, the device sees encoded ones. The
// bandwidth-sensitive layers above (the aio engine's metrics, the
// placement estimator) must keep seeing *wire* bytes or their bandwidth
// estimates silently inflate by the compression ratio. WireCount is the
// side channel for that: the aio engine attaches a cell to the operation
// context, codec decorators record the encoded size they moved, and the
// engine reads it back when the operation completes. Tiers that move
// exactly what the caller handed them never record, and the engine falls
// back to the raw size.

// WireCount holds the device-level (encoded) byte count of one
// operation. Safe for concurrent use.
type WireCount struct {
	n atomic.Int64
}

// Bytes returns the recorded wire size (0 when nothing was recorded).
func (w *WireCount) Bytes() int64 { return w.n.Load() }

type wireCountKey struct{}

// WithWireCount derives a context carrying a fresh wire-byte cell for
// one operation. Nesting a fresh cell shadows any outer one, which is
// how stacked codec layers propagate the *deepest* measurement outward:
// each layer runs its inner operation under a private cell, resolves
// the device-level count from it (falling back to the bytes it moved
// itself when nothing deeper recorded), and records that resolved value
// exactly once into its caller's cell. Every cell therefore receives at
// most one record — from its direct child layer — and the outermost
// cell (the aio engine's) ends up with the count closest to the device
// regardless of how layers stack or whether they shrink or grow the
// object.
func WithWireCount(ctx context.Context) (context.Context, *WireCount) {
	w := &WireCount{}
	return context.WithValue(ctx, wireCountKey{}, w), w
}

// RecordWireBytes records the device-level size of the current
// operation into the context's wire-byte cell, if one is attached; a
// later record overwrites an earlier one (see WithWireCount — with the
// nesting discipline each cell is recorded at most once). It is a no-op
// under a context without a cell.
func RecordWireBytes(ctx context.Context, n int64) {
	if w, ok := ctx.Value(wireCountKey{}).(*WireCount); ok {
		w.n.Store(n)
	}
}

// ObjectReader is an optional Tier capability: read a whole object whose
// size the caller does not know, atomically, returning freshly allocated
// bytes. Codec decorators need it because an encoded object's stored
// size varies per write — a plain Size-then-Read pair could interleave
// with a concurrent same-key Write and observe a torn pair, while
// ReadObject observes one complete previously written object (the Tier
// concurrency contract).
type ObjectReader interface {
	ReadObject(ctx context.Context, key string) ([]byte, error)
}

// ReadWholeObject reads key's complete object: through ObjectReader when
// the tier supports it, otherwise via Size followed by Read. The
// fallback is not atomic against concurrent same-key writes; callers
// needing that ordering must provide it themselves (the engine always
// orders a refetch after its flush). The returned buffer is caller-owned
// pooled memory — recycle with bufpool.Put when done, or drop it.
func ReadWholeObject(ctx context.Context, t Tier, key string) ([]byte, error) {
	if or, ok := t.(ObjectReader); ok {
		return or.ReadObject(ctx, key)
	}
	size, err := t.Size(ctx, key)
	if err != nil {
		return nil, err
	}
	buf := bufpool.Get(int(size))
	if err := t.Read(ctx, key, buf); err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}
