package storage

import (
	"context"
	"fmt"
	"testing"

	"github.com/datastates/mlpoffload/internal/bufpool"
)

// benchFileTier builds a populated FileTier for the read benchmarks.
func benchFileTier(b *testing.B, objs, size int, opts ...FileTierOption) (*FileTier, []string, [][]byte) {
	b.Helper()
	ft, err := NewFileTier("bench", b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ft.Close() })
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	keys := make([]string, objs)
	dsts := make([][]byte, objs)
	for i := range keys {
		keys[i] = fmt.Sprintf("sg-%03d", i)
		if err := ft.Write(context.Background(), keys[i], payload); err != nil {
			b.Fatal(err)
		}
		dst := bufpool.GetAligned(size)
		b.Cleanup(func() { bufpool.Put(dst) })
		dsts[i] = dst
	}
	return ft, keys, dsts
}

// BenchmarkFileReadPerObject is the pre-fast-path baseline: one Read call
// per object, fd cache disabled — a cold open/read/close per object.
func BenchmarkFileReadPerObject(b *testing.B) {
	const objs, size = 8, 256 << 10
	ft, keys, dsts := benchFileTier(b, objs, size, WithFDCache(0))
	ctx := context.Background()
	b.SetBytes(int64(objs) * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			if err := ft.Read(ctx, keys[j], dsts[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFileReadVec reads the same object set through ReadVec with the
// fd handle cache on — the issuer's coalesced fetch path, minus the aio
// queueing that sits above it.
func BenchmarkFileReadVec(b *testing.B) {
	const objs, size = 8, 256 << 10
	for _, direct := range []bool{false, true} {
		name := "buffered"
		if direct {
			name = "direct"
		}
		b.Run(name, func(b *testing.B) {
			ft, keys, dsts := benchFileTier(b, objs, size, WithDirectIO(direct))
			ctx := context.Background()
			b.SetBytes(int64(objs) * size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ft.ReadVec(ctx, keys, dsts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
