package storage

import (
	"container/list"
	"os"
	"sync"
)

// DefaultFDCacheSize is the per-FileTier bound on cached read
// descriptors. 32 covers a full prefetch window of subgroup objects
// plus checkpoint traffic while staying far below any sane RLIMIT_NOFILE
// share, even with several file tiers open.
const DefaultFDCacheSize = 32

// fdCache is a bounded LRU of open read-only descriptors, keyed by
// path. Reopening a file per Read costs two syscalls (open/close) plus
// a dentry walk on every object fetch — on the syscall-bound sequential
// workloads the coalescing fast path targets, that overhead rivals the
// read itself. Entries are refcounted: eviction and invalidation mark
// an entry dead and drop it from the table, but the *os.File closes
// only when the last in-flight reader releases it, so a racing read
// never sees its descriptor closed underneath it.
//
// FileTier.Write/Delete/Copy invalidate the written path: Write
// publishes via rename, so a cached descriptor would still address the
// *old* inode and serve stale bytes forever.
type fdCache struct {
	mu   sync.Mutex
	cap  int
	ents map[string]*fdEntry
	lru  *list.List // front = most recently used; values are *fdEntry
}

type fdEntry struct {
	path   string
	f      *os.File
	direct bool // opened with O_DIRECT
	refs   int
	dead   bool // evicted/invalidated; close when refs reaches 0
	elem   *list.Element
}

func newFDCache(capacity int) *fdCache {
	if capacity <= 0 {
		return nil
	}
	return &fdCache{cap: capacity, ents: make(map[string]*fdEntry), lru: list.New()}
}

// acquire returns a live cached entry for path, or opens one via open
// and inserts it. The entry's refcount is incremented; the caller must
// release it exactly once. open runs outside the cache lock (it is a
// syscall); if two goroutines race to open the same path, the loser
// closes its descriptor and shares the winner's entry.
func (c *fdCache) acquire(path string, open func() (*os.File, bool, error)) (*fdEntry, error) {
	c.mu.Lock()
	if e, ok := c.ents[path]; ok {
		e.refs++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e, nil
	}
	c.mu.Unlock()

	f, direct, err := open()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if e, ok := c.ents[path]; ok { // lost the race: share theirs
		e.refs++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		f.Close()
		return e, nil
	}
	e := &fdEntry{path: path, f: f, direct: direct, refs: 1}
	e.elem = c.lru.PushFront(e)
	c.ents[path] = e
	var closing []*os.File
	for len(c.ents) > c.cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		if victim := c.unlinkLocked(back.Value.(*fdEntry)); victim != nil {
			closing = append(closing, victim)
		}
	}
	c.mu.Unlock()
	for _, v := range closing {
		v.Close()
	}
	return e, nil
}

// release drops one reference; a dead entry closes on its last release.
func (c *fdCache) release(e *fdEntry) {
	c.mu.Lock()
	e.refs--
	f := (*os.File)(nil)
	if e.dead && e.refs == 0 {
		f = e.f
	}
	c.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

// invalidate marks path's cached descriptor (if any) dead so future
// reads reopen and observe the current inode.
func (c *fdCache) invalidate(path string) {
	c.mu.Lock()
	var f *os.File
	if e, ok := c.ents[path]; ok {
		f = c.unlinkLocked(e)
	}
	c.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

// closeAll evicts every entry (in-flight readers still close lazily on
// their final release).
func (c *fdCache) closeAll() {
	c.mu.Lock()
	var closing []*os.File
	for _, e := range c.ents {
		if f := c.unlinkLocked(e); f != nil {
			closing = append(closing, f)
		}
	}
	c.mu.Unlock()
	for _, f := range closing {
		f.Close()
	}
}

// unlinkLocked removes e from the table and marks it dead, returning
// the file to close if no reader holds it (nil otherwise). Caller holds
// c.mu.
func (c *fdCache) unlinkLocked(e *fdEntry) *os.File {
	delete(c.ents, e.path)
	c.lru.Remove(e.elem)
	e.dead = true
	if e.refs == 0 {
		return e.f
	}
	return nil
}

// len reports live entries (for tests).
func (c *fdCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ents)
}
