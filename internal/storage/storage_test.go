package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/ratelimit"
)

func testTierBasics(t *testing.T, tier Tier) {
	t.Helper()
	ctx := context.Background()

	// Missing key.
	dst := make([]byte, 4)
	if err := tier.Read(ctx, "missing", dst); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read missing: %v", err)
	}
	if _, err := tier.Size(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size missing: %v", err)
	}

	// Round trip.
	payload := []byte{1, 2, 3, 4}
	if err := tier.Write(ctx, "k1", payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := tier.Read(ctx, "k1", got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got %v", got)
	}
	if sz, err := tier.Size(ctx, "k1"); err != nil || sz != 4 {
		t.Fatalf("Size = %d, %v", sz, err)
	}

	// Overwrite.
	if err := tier.Write(ctx, "k1", []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := tier.Read(ctx, "k1", got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatal("overwrite lost")
	}

	// Keys.
	if err := tier.Write(ctx, "a", []byte{0}); err != nil {
		t.Fatal(err)
	}
	keys, err := tier.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "k1" {
		t.Fatalf("Keys = %v", keys)
	}

	// Delete (idempotent).
	if err := tier.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tier.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Size(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete did not remove key")
	}

	// Stats recorded.
	st := tier.Stats()
	if st.BytesWritten == 0 || st.BytesRead == 0 || st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

func TestMemTier(t *testing.T) { testTierBasics(t, NewMemTier("mem")) }

func TestFileTier(t *testing.T) {
	ft, err := NewFileTier("nvme", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testTierBasics(t, ft)
}

func TestFileTierKeyEscaping(t *testing.T) {
	ft, err := NewFileTier("x", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := ft.Write(ctx, "a/b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 1)
	if err := ft.Read(ctx, "a/b", dst); err != nil {
		t.Fatal(err)
	}
}

func TestMemTierSizeMismatch(t *testing.T) {
	m := NewMemTier("m")
	ctx := context.Background()
	if err := m.Write(ctx, "k", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(ctx, "k", make([]byte, 5)); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestMemTierWriteCopies(t *testing.T) {
	m := NewMemTier("m")
	ctx := context.Background()
	src := []byte{1, 2, 3}
	if err := m.Write(ctx, "k", src); err != nil {
		t.Fatal(err)
	}
	src[0] = 99 // mutating caller buffer must not affect stored object
	got := make([]byte, 3)
	if err := m.Read(ctx, "k", got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("Write did not copy the payload")
	}
}

func TestContextCancellation(t *testing.T) {
	m := NewMemTier("m")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Write(ctx, "k", []byte{1}); err == nil {
		t.Fatal("canceled context should fail Write")
	}
	if err := m.Read(ctx, "k", make([]byte, 1)); err == nil {
		t.Fatal("canceled context should fail Read")
	}
}

func TestThrottledEnforcesBandwidth(t *testing.T) {
	clk := clock.NewVirtualAuto()
	tt := NewThrottled(NewMemTier("m"), ThrottleConfig{
		ReadBW: 1000, WriteBW: 500, Clock: clk,
	})
	ctx := context.Background()
	payload := make([]byte, 2000)
	start := clk.Now()
	if err := tt.Write(ctx, "k", payload); err != nil {
		t.Fatal(err)
	}
	// 2000 B at 500 B/s with the default 125 B burst credit: exactly
	// (2000-125)/500 = 3.75s of virtual time. All quantities are dyadic
	// rationals, so the token math is exact down to the nanosecond.
	if got, want := clk.Now().Sub(start), 3750*time.Millisecond; got != want {
		t.Errorf("write of 2000B at 500B/s took %v, want exactly %v", got, want)
	}
	start = clk.Now()
	if err := tt.Read(ctx, "k", payload); err != nil {
		t.Fatal(err)
	}
	// (2000-250)/1000 = 1.75s.
	if got, want := clk.Now().Sub(start), 1750*time.Millisecond; got != want {
		t.Errorf("read of 2000B at 1000B/s took %v, want exactly %v", got, want)
	}
}

func TestThrottledName(t *testing.T) {
	tt := NewThrottled(NewMemTier("nvme"), ThrottleConfig{ReadBW: 1, WriteBW: 1})
	if tt.Name() != "nvme" {
		t.Errorf("Name = %q", tt.Name())
	}
	if tt.Unwrap().Name() != "nvme" {
		t.Error("Unwrap broken")
	}
}

func TestThrottledPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewThrottled(NewMemTier("m"), ThrottleConfig{ReadBW: 0, WriteBW: 1})
}

func TestThrottledContentionSlowsConcurrent(t *testing.T) {
	// With an interference curve, a second concurrent writer pays the
	// efficiency penalty. On a manual virtual clock the entry order is
	// orchestrated, so the total is an exact closed-form figure instead of
	// a wall-time range: writer A enters alone (charged 32KiB at eff(1)=1),
	// writer B enters while A is parked in the limiter (charged
	// 32KiB/eff(2) = 48KiB), and the shared 64KiB/s bucket opens with
	// 16KiB of burst credit — (32KiB+48KiB-16KiB)/64KiB/s = exactly 1s.
	clk := clock.NewVirtual()
	tt := NewThrottled(NewMemTier("m"), ThrottleConfig{
		ReadBW: 1e9, WriteBW: 64 * 1024, Curve: ratelimit.InterferenceCurve(0.5),
		Clock: clk,
	})
	ctx := context.Background()
	payload := make([]byte, 32*1024)
	start := clk.Now()
	var wg sync.WaitGroup
	write := func(i int) {
		defer wg.Done()
		if err := tt.Write(ctx, fmt.Sprintf("k%d", i), payload); err != nil {
			t.Error(err)
		}
	}
	wg.Add(2)
	go write(0)
	clk.BlockUntil(1) // A holds the gate, parked on the limiter
	go write(1)
	clk.BlockUntil(2) // B charged at eff(2), parked behind A
	stop := make(chan struct{})
	go clk.Drive(stop)
	wg.Wait()
	close(stop)
	if got, want := clk.Now().Sub(start), time.Second; got != want {
		t.Errorf("contended writes took %v of virtual time, want exactly %v", got, want)
	}
}

// TestThrottledWallVirtualParity drives the same workload through a
// wall-clock and a virtual-clock throttled tier and checks the byte
// accounting is identical: the clock changes how time passes, never what
// the tier observes moving.
func TestThrottledWallVirtualParity(t *testing.T) {
	run := func(clk ratelimit.Clock) Stats {
		// High bandwidth so the wall-clock run completes at memory speed.
		tt := NewThrottled(NewMemTier("m"), ThrottleConfig{
			ReadBW: 1 << 30, WriteBW: 1 << 30, Clock: clk,
		})
		ctx := context.Background()
		payload := make([]byte, 8192)
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("k%d", i)
			if err := tt.Write(ctx, key, payload); err != nil {
				t.Fatal(err)
			}
			if err := tt.Read(ctx, key, payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := tt.Unwrap().Delete(ctx, "k0"); err != nil {
			t.Fatal(err)
		}
		return tt.Stats()
	}
	wall, virt := run(nil), run(clock.NewVirtualAuto())
	if wall != virt {
		t.Errorf("byte accounting diverged:\nwall    %+v\nvirtual %+v", wall, virt)
	}
}

func TestFaultTierInjectsErrors(t *testing.T) {
	boom := errors.New("boom")
	ft := &FaultTier{Tier: NewMemTier("m"), FailEvery: 2, Err: boom, FailWrites: true}
	ctx := context.Background()
	var fails int
	for i := 0; i < 6; i++ {
		if err := ft.Write(ctx, "k", []byte{1}); errors.Is(err, boom) {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("fails = %d, want 3", fails)
	}
	// Reads unaffected when FailReads is false.
	if err := ft.Read(ctx, "k", make([]byte, 1)); err != nil {
		t.Errorf("read failed: %v", err)
	}
}

func TestPropertyRoundTripArbitraryPayloads(t *testing.T) {
	m := NewMemTier("m")
	ctx := context.Background()
	f := func(key string, payload []byte) bool {
		if key == "" {
			key = "k"
		}
		if err := m.Write(ctx, key, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := m.Read(ctx, key, got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMemTierAccess(t *testing.T) {
	m := NewMemTier("m")
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("w%d", w)
			payload := bytes.Repeat([]byte{byte(w)}, 128)
			for i := 0; i < 50; i++ {
				if err := m.Write(ctx, key, payload); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 128)
				if err := m.Read(ctx, key, got); err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(w) {
					t.Errorf("cross-contamination on %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestFileTierErrorPaths(t *testing.T) {
	dir := t.TempDir()
	ft, err := NewFileTier("x", dir)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Dir() != dir {
		t.Errorf("Dir = %q", ft.Dir())
	}
	ctx := context.Background()
	// Short read: stored object smaller than dst.
	if err := ft.Write(ctx, "small", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Read(ctx, "small", make([]byte, 10)); err == nil {
		t.Error("short read not detected")
	}
	// Keys must hide temp files.
	if err := os.WriteFile(filepath.Join(dir, "junk.tmp"), []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := ft.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if strings.HasSuffix(k, ".tmp") {
			t.Errorf("temp file leaked into Keys: %v", keys)
		}
	}
	// Canceled context on every op.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := ft.Read(cctx, "small", make([]byte, 2)); err == nil {
		t.Error("canceled read accepted")
	}
	if _, err := ft.Size(cctx, "small"); err == nil {
		t.Error("canceled size accepted")
	}
	if _, err := ft.Keys(cctx); err == nil {
		t.Error("canceled keys accepted")
	}
	if err := ft.Delete(cctx, "small"); err == nil {
		t.Error("canceled delete accepted")
	}
}

func TestNewFileTierBadPath(t *testing.T) {
	// A file where a directory should be.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "f")
	if err := os.WriteFile(blocker, []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileTier("x", filepath.Join(blocker, "sub")); err == nil {
		t.Error("NewFileTier under a regular file should fail")
	}
}

// TestTiersConcurrencyContract exercises every Tier implementation from
// many goroutines — distinct keys, plus same-key read/write atomicity —
// under -race this verifies the concurrency contract documented on Tier
// that the parallel update pipeline relies on.
func TestTiersConcurrencyContract(t *testing.T) {
	mk := []struct {
		name string
		tier Tier
	}{
		{"mem", NewMemTier("mem")},
		{"file", func() Tier {
			ft, err := NewFileTier("file", t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return ft
		}()},
		{"throttled", NewThrottled(NewMemTier("th"), ThrottleConfig{
			ReadBW: 64 << 20, WriteBW: 64 << 20,
		})},
		{"fault", &FaultTier{Tier: NewMemTier("f")}}, // fault disabled: plumbing only
	}
	const n = 64
	for _, tc := range mk {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			// Seed the shared key so every read finds a complete object.
			shared := bytes.Repeat([]byte{0xAA}, n)
			if err := tc.tier.Write(ctx, "shared", shared); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					own := fmt.Sprintf("own-%d", w)
					payload := bytes.Repeat([]byte{byte(w + 1)}, n)
					for i := 0; i < 25; i++ {
						if err := tc.tier.Write(ctx, own, payload); err != nil {
							t.Error(err)
							return
						}
						got := make([]byte, n)
						if err := tc.tier.Read(ctx, own, got); err != nil {
							t.Error(err)
							return
						}
						if got[0] != byte(w+1) || got[n-1] != byte(w+1) {
							t.Errorf("%s: cross-key contamination", own)
							return
						}
						// Same-key concurrency: each writer stores a
						// uniform payload; a torn read would mix values.
						fill := bytes.Repeat([]byte{byte(w + 1)}, n)
						if err := tc.tier.Write(ctx, "shared", fill); err != nil {
							t.Error(err)
							return
						}
						if err := tc.tier.Read(ctx, "shared", got); err != nil {
							t.Error(err)
							return
						}
						for j := 1; j < n; j++ {
							if got[j] != got[0] {
								t.Errorf("torn read on shared key: %v", got[:8])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if _, err := tc.tier.Keys(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// testTierCopy exercises the Copier contract on a tier: the copy matches
// the source and stays isolated from later Writes of either key.
func testTierCopy(t *testing.T, tier Tier) {
	t.Helper()
	ctx := context.Background()
	c, ok := tier.(Copier)
	if !ok {
		t.Fatalf("%s does not implement Copier", tier.Name())
	}
	orig := []byte("generation-1")
	if err := tier.Write(ctx, "live", orig); err != nil {
		t.Fatal(err)
	}
	if err := c.Copy(ctx, "live", "snap"); err != nil {
		t.Fatal(err)
	}
	// Overwriting the live key must not touch the snapshot (Write always
	// publishes a fresh object — the invariant link/alias copies rely on).
	if err := tier.Write(ctx, "live", []byte("generation-2")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(orig))
	if err := tier.Read(ctx, "snap", got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Errorf("snapshot = %q, want the pre-overwrite %q", got, orig)
	}
	if err := c.Copy(ctx, "missing", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("copy of missing key: err = %v, want ErrNotFound", err)
	}
	// Copy over an existing destination replaces it.
	if err := c.Copy(ctx, "live", "snap"); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len("generation-2"))
	if err := tier.Read(ctx, "snap", got2); err != nil {
		t.Fatal(err)
	}
	if string(got2) != "generation-2" {
		t.Errorf("re-copy = %q, want generation-2", got2)
	}
}

func TestMemTierCopy(t *testing.T) { testTierCopy(t, NewMemTier("mem")) }

func TestFileTierCopy(t *testing.T) {
	tier, err := NewFileTier("file", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testTierCopy(t, tier)
}

func TestThrottledCopyDelegates(t *testing.T) {
	inner := NewMemTier("mem")
	th := NewThrottled(inner, ThrottleConfig{ReadBW: 1e6, WriteBW: 1e6})
	testTierCopy(t, th)
}

func TestTryCopyFallback(t *testing.T) {
	ctx := context.Background()
	// FaultTier embeds the Tier interface, so it exposes no Copy.
	plain := &FaultTier{Tier: NewMemTier("mem")}
	if copied, err := TryCopy(ctx, plain, "a", "b"); copied || err != nil {
		t.Errorf("TryCopy on plain tier = %v, %v; want unsupported", copied, err)
	}
	// Throttled over a non-Copier inner reports ErrCopyUnsupported, which
	// TryCopy maps to "not performed".
	th := NewThrottled(&FaultTier{Tier: NewMemTier("mem")}, ThrottleConfig{ReadBW: 1e6, WriteBW: 1e6})
	if copied, err := TryCopy(ctx, th, "a", "b"); copied || err != nil {
		t.Errorf("TryCopy through non-copier decorator = %v, %v; want unsupported", copied, err)
	}
	mem := NewMemTier("mem")
	if err := mem.Write(ctx, "a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if copied, err := TryCopy(ctx, mem, "a", "b"); !copied || err != nil {
		t.Errorf("TryCopy on MemTier = %v, %v; want performed", copied, err)
	}
}
