package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"testing"

	"github.com/datastates/mlpoffload/internal/bufpool"
	"github.com/datastates/mlpoffload/internal/f32view"
)

// flakyReaderAt injects the partial results a network filesystem can
// return: every ReadAt delivers at most chunk bytes, and the first
// len(interrupts) calls fail with the scripted error after zero bytes.
type flakyReaderAt struct {
	data       []byte
	chunk      int
	interrupts []error
	calls      int
}

func (r *flakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	r.calls++
	if len(r.interrupts) > 0 {
		err := r.interrupts[0]
		r.interrupts = r.interrupts[1:]
		return 0, err
	}
	if off >= int64(len(r.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.data[off:])
	if n > r.chunk {
		n = r.chunk
	}
	var err error
	if off+int64(n) >= int64(len(r.data)) {
		err = io.EOF
	}
	return n, err
}

func TestReadAtFullRetriesShortReadsAndEINTR(t *testing.T) {
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := &flakyReaderAt{
		data:       data,
		chunk:      777, // force many short reads
		interrupts: []error{syscall.EINTR, &os.PathError{Op: "read", Err: syscall.EINTR}},
	}
	dst := make([]byte, len(data))
	n, err := readAtFull(r, dst, 0)
	if err != nil || n != len(data) {
		t.Fatalf("readAtFull = (%d, %v), want (%d, nil)", n, err, len(data))
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("reassembled bytes differ from source")
	}
	if r.calls < len(data)/777 {
		t.Fatalf("expected many short reads, saw %d calls", r.calls)
	}
}

func TestReadAtFullSurfacesTruncation(t *testing.T) {
	r := &flakyReaderAt{data: make([]byte, 100), chunk: 100}
	dst := make([]byte, 200)
	n, err := readAtFull(r, dst, 0)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF for truncated object, got (%d, %v)", n, err)
	}
	if n != 100 {
		t.Fatalf("progress = %d, want 100", n)
	}
}

func TestReadAtFullBoundsEINTRStorm(t *testing.T) {
	storm := make([]error, eintrRetryLimit+10)
	for i := range storm {
		storm[i] = syscall.EINTR
	}
	r := &flakyReaderAt{data: make([]byte, 8), chunk: 8, interrupts: storm}
	if _, err := readAtFull(r, make([]byte, 8), 0); !errors.Is(err, syscall.EINTR) {
		t.Fatalf("want bounded EINTR error, got %v", err)
	}
}

// faultReaderAtTier wires flaky ReadAt behaviour into a real FileTier
// read path by pre-seeding the file, then reading through the tier —
// the tier-level assertion that Read survives partial reads is done via
// the os.File path (kernel reads of regular files do not short-read),
// so this test instead asserts the error text for genuinely short
// objects, the case the old single-ReadAt call conflated with EINTR.
func TestFileTierReadShortObject(t *testing.T) {
	ft, err := NewFileTier("nvme", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	ctx := context.Background()
	if err := ft.Write(ctx, "obj", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	err = ft.Read(ctx, "obj", make([]byte, 200))
	if err == nil || !errors.Is(err, io.EOF) {
		t.Fatalf("reading 200 bytes of a 100-byte object: got %v, want EOF-wrapping error", err)
	}
}

func TestFDCacheBoundsAndReuse(t *testing.T) {
	dir := t.TempDir()
	ft, err := NewFileTier("nvme", dir, WithFDCache(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	ctx := context.Background()
	payload := []byte("0123456789abcdef")
	for i := 0; i < 10; i++ {
		if err := ft.Write(ctx, fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, len(payload))
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			if err := ft.Read(ctx, fmt.Sprintf("k%d", i), dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, payload) {
				t.Fatalf("k%d round %d: bad bytes", i, round)
			}
		}
	}
	if n := ft.fds.len(); n > 4 {
		t.Fatalf("fd cache holds %d entries, cap 4", n)
	}
}

func TestFDCacheInvalidationOnWrite(t *testing.T) {
	ft, err := NewFileTier("nvme", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	ctx := context.Background()
	old := bytes.Repeat([]byte{1}, 64)
	fresh := bytes.Repeat([]byte{2}, 64)
	if err := ft.Write(ctx, "k", old); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := ft.Read(ctx, "k", dst); err != nil { // caches the old inode's fd
		t.Fatal(err)
	}
	if err := ft.Write(ctx, "k", fresh); err != nil { // rename: new inode
		t.Fatal(err)
	}
	if err := ft.Read(ctx, "k", dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fresh) {
		t.Fatal("read served stale bytes from a cached descriptor after Write")
	}
	if err := ft.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := ft.Read(ctx, "k", dst); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete: %v, want ErrNotFound", err)
	}
}

func TestFDCacheConcurrentReaders(t *testing.T) {
	ft, err := NewFileTier("nvme", t.TempDir(), WithFDCache(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	ctx := context.Background()
	const keys = 6
	payloads := make([][]byte, keys)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 4096)
		if err := ft.Write(ctx, fmt.Sprintf("k%d", i), payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]byte, 4096)
			for i := 0; i < 50; i++ {
				k := (w + i) % keys
				if err := ft.Read(ctx, fmt.Sprintf("k%d", k), dst); err != nil {
					errs <- err
					return
				}
				if dst[0] != byte(k+1) || dst[4095] != byte(k+1) {
					errs <- fmt.Errorf("k%d: wrong bytes", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func testReadVec(t *testing.T, tier Tier) {
	t.Helper()
	ctx := context.Background()
	sizes := []int{16, 4096, 100, 12288, 1}
	keys := make([]string, len(sizes))
	want := make([][]byte, len(sizes))
	for i, n := range sizes {
		keys[i] = fmt.Sprintf("vec%d", i)
		want[i] = bytes.Repeat([]byte{byte(i + 10)}, n)
		if err := tier.Write(ctx, keys[i], want[i]); err != nil {
			t.Fatal(err)
		}
	}
	dsts := make([][]byte, len(sizes))
	for i, n := range sizes {
		dsts[i] = make([]byte, n)
	}
	if err := ReadVec(ctx, tier, keys, dsts); err != nil {
		t.Fatal(err)
	}
	for i := range dsts {
		if !bytes.Equal(dsts[i], want[i]) {
			t.Fatalf("object %d differs after vectored read", i)
		}
	}
	// Missing member surfaces an error.
	bad := append(append([]string{}, keys...), "missing")
	badDst := append(append([][]byte{}, dsts...), make([]byte, 8))
	if err := ReadVec(ctx, tier, bad, badDst); !errors.Is(err, ErrNotFound) {
		t.Fatalf("vectored read with missing member: %v, want ErrNotFound", err)
	}
	if err := ReadVec(ctx, tier, keys, dsts[:1]); err == nil {
		t.Fatal("mismatched keys/buffers accepted")
	}
}

func TestMemTierReadVec(t *testing.T) { testReadVec(t, NewMemTier("mem")) }

func TestFileTierReadVec(t *testing.T) {
	ft, err := NewFileTier("nvme", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	testReadVec(t, ft)
}

func TestThrottledReadVecDelegates(t *testing.T) {
	th := NewThrottled(NewMemTier("mem"), ThrottleConfig{ReadBW: 1 << 30, WriteBW: 1 << 30})
	testReadVec(t, th)
}

// TestReadVecFallbackLoops exercises the non-VectoredReader path.
type plainTier struct{ Tier }

func TestReadVecFallbackLoops(t *testing.T) {
	testReadVec(t, plainTier{NewMemTier("mem")})
}

// TestFileTierDirectIO exercises the O_DIRECT path where the filesystem
// allows it and asserts the graceful buffered downgrade where it does
// not (tmpfs rejects O_DIRECT with EINVAL) — either way, bytes round
// trip for aligned and unaligned buffers and odd lengths.
func TestFileTierDirectIO(t *testing.T) {
	ft, err := NewFileTier("nvme", t.TempDir(), WithDirectIO(true))
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	ctx := context.Background()
	sizes := []int{1, 4095, 4096, 4097, 12288, 100003}
	// One closure per size keeps each pooled buffer's Get→Put lifecycle in
	// its own function scope.
	checkSize := func(n int) {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i*13 + n)
		}
		key := fmt.Sprintf("obj%d", n)
		if err := ft.Write(ctx, key, src); err != nil {
			t.Fatalf("write %d: %v", n, err)
		}
		aligned := bufpool.GetAligned(n)
		if err := ft.Read(ctx, key, aligned); err != nil {
			t.Fatalf("aligned read %d: %v", n, err)
		}
		if !bytes.Equal(aligned, src) {
			t.Fatalf("aligned read %d: bytes differ", n)
		}
		bufpool.Put(aligned)
		plain := make([]byte, n)
		if err := ft.Read(ctx, key, plain); err != nil {
			t.Fatalf("unaligned read %d: %v", n, err)
		}
		if !bytes.Equal(plain, src) {
			t.Fatalf("unaligned read %d: bytes differ", n)
		}
		obj, err := ft.ReadObject(ctx, key)
		if err != nil {
			t.Fatalf("ReadObject %d: %v", n, err)
		}
		if !bytes.Equal(obj, src) {
			t.Fatalf("ReadObject %d: bytes differ", n)
		}
		bufpool.Put(obj)
	}
	for _, n := range sizes {
		checkSize(n)
	}
	if ft.directEnabled() {
		t.Log("filesystem honoured O_DIRECT")
	} else {
		t.Log("filesystem rejected O_DIRECT; buffered fallback exercised")
	}
}

func TestGetAlignedContract(t *testing.T) {
	check := func(n int) {
		b := bufpool.GetAligned(n)
		if len(b) != n {
			t.Fatalf("GetAligned(%d) length %d", n, len(b))
		}
		if !f32view.AlignedTo(b, bufpool.DirectAlign) {
			t.Fatalf("GetAligned(%d) not %d-byte aligned", n, bufpool.DirectAlign)
		}
		bufpool.Put(b)
	}
	for _, n := range []int{1, 100, 4096, 10000, 1 << 20} {
		check(n)
	}
}
