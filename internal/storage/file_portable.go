//go:build !linux

package storage

// FileTier's portable fallback: no vectored syscalls, no O_DIRECT.
// NewFileTier compiles WithDirectIO call sites everywhere but the
// directIOSupported constant keeps the direct machinery dead code, so
// reads stay on the short-read-hardened ReadAt loop and writes on the
// buffered temp-file + rename path — exactly the pre-fast-path
// semantics. The fd cache is portable and stays on.

import (
	"errors"
	"os"
)

const directIOSupported = false

var errDirectUnsupported = errors.New("storage: O_DIRECT unsupported on this platform")

// openReadFile opens p buffered; the direct request is never honoured
// off-Linux, and the false return tells the tier so.
func openReadFile(p string, direct bool) (*os.File, bool, error) {
	_ = direct
	fh, err := os.Open(p)
	return fh, false, err
}

// readDirect is unreachable off-Linux (no descriptor is ever direct);
// it exists so the shared read path compiles.
func readDirect(fh *os.File, dst []byte) error {
	_, _ = fh, dst
	return errDirectUnsupported
}

// writeDirect is likewise unreachable: directEnabled() is always false.
func (f *FileTier) writeDirect(p string, src []byte) error {
	_, _ = p, src
	return errDirectUnsupported
}
