package train

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/wire"
)

// CoordinatorConfig configures the elastic run's coordinator.
type CoordinatorConfig struct {
	// Workers is the number of members (ranks) that must join before
	// training starts.
	Workers int
	// Iters is the total number of synchronized iterations.
	Iters int
	// CheckpointEvery commits a coordinated checkpoint whenever the
	// completed-iteration count is a multiple of it (<= 0 disables —
	// which also disables recovery, there would be nothing to roll back
	// to).
	CheckpointEvery int
	// Heartbeat is the cadence members send liveness beats at.
	// HeartbeatTimeout is how long a silent member stays presumed-alive;
	// at exactly the timeout it is declared dead and recovery starts.
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration
	// Timeout is the per-message send deadline on member connections.
	Timeout time.Duration
	// Addr is the listen address ("" = 127.0.0.1:0, tests and
	// single-host runs).
	Addr string
	// Clock drives liveness decisions and the detection poll. nil =
	// wall clock.
	Clock clock.Clock
}

// Recovery records one dead-rank recovery for the run report.
type Recovery struct {
	// Dead lists the members declared dead, ascending.
	Dead []int
	// Step is the newest common checkpoint step the run rolled back to.
	Step int
	// Adoptions maps each orphaned rank to the survivor that adopted it.
	Adoptions map[int]int
	// AtIter is the barrier iteration at which death was detected.
	AtIter int
}

// RunReport summarizes a completed elastic run.
type RunReport struct {
	// Iterations is the total iterations *executed*, re-runs included —
	// Iters plus the rollback distance of every recovery.
	Iterations int
	// Recoveries lists the dead-rank recoveries, in order.
	Recoveries []Recovery
}

// event is one frame (or connection failure) from a member, routed to
// the coordinator's single decision loop by that member's reader
// goroutine.
type event struct {
	member  int
	typ     byte
	payload []byte
	err     error
}

// Coordinator runs the elastic protocol's server side: membership,
// iteration barriers, digest bookkeeping, heartbeat-based death
// detection, and the recovery state machine (pause → select newest
// common checkpoint → re-shard → resume).
type Coordinator struct {
	cfg CoordinatorConfig
	clk clock.Clock
	ln  net.Listener

	conns    map[int]*wire.Conn
	owners   map[int][]int // member → ranks it trains
	live     *wire.Liveness
	events   chan event
	history  map[int]map[int]uint64 // iter → rank → digest
	overflow map[int]bool           // iter → any rank overflowed
	report   RunReport
}

// NewCoordinator opens the listener (cfg.Addr, default loopback) so
// members can start dialing before Run is called.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("train: coordinator needs Workers > 0, got %d", cfg.Workers)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 4 * cfg.Heartbeat
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := wire.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("train: coordinator listen %s: %w", addr, err)
	}
	clk := clock.Or(cfg.Clock)
	return &Coordinator{
		cfg:      cfg,
		clk:      clk,
		ln:       ln,
		conns:    make(map[int]*wire.Conn),
		owners:   make(map[int][]int),
		live:     wire.NewLiveness(clk, cfg.HeartbeatTimeout),
		events:   make(chan event, 64),
		history:  make(map[int]map[int]uint64),
		overflow: make(map[int]bool),
	}, nil
}

// Addr returns the listen address members dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close releases the listener and member connections.
func (c *Coordinator) Close() {
	c.ln.Close()
	for _, conn := range c.conns {
		conn.Close()
	}
}

// Run accepts cfg.Workers members, trains cfg.Iters synchronized
// iterations, and recovers from member deaths along the way. It returns
// when the run completes or recovery becomes impossible.
func (c *Coordinator) Run(ctx context.Context) (RunReport, error) {
	defer c.Close()
	if err := c.accept(ctx); err != nil {
		return c.report, err
	}
	welcome := welcomeMsg{
		Iter:      0,
		Iters:     c.cfg.Iters,
		CkptEvery: c.cfg.CheckpointEvery,
		HBEvery:   int64(c.cfg.Heartbeat),
		HBTimeout: int64(c.cfg.HeartbeatTimeout),
	}
	for member := range c.conns {
		c.live.Track(member)
		if err := sendJSON(c.conns[member], fWelcome, welcome); err != nil {
			return c.report, fmt.Errorf("train: welcome member %d: %w", member, err)
		}
	}
	for member, conn := range c.conns {
		go c.read(member, conn)
	}

	iter := 0
	for iter < c.cfg.Iters {
		next, err := c.barrier(ctx, iter)
		if err != nil {
			return c.report, err
		}
		c.report.Iterations++
		if next >= 0 {
			// Recovery rolled the run back; members already hold resume.
			iter = next
			continue
		}
		if err := c.broadcast(fProceed, proceedMsg{Iter: iter, Overflow: c.anyOverflow(iter)}); err != nil {
			return c.report, err
		}
		iter++
	}
	if err := c.broadcast(fDone, struct{}{}); err != nil {
		return c.report, err
	}
	c.awaitByes(ctx)
	return c.report, nil
}

// accept admits cfg.Workers members by their hello frames.
func (c *Coordinator) accept(ctx context.Context) error {
	for len(c.conns) < c.cfg.Workers {
		nc, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("train: accept: %w", err)
		}
		conn := wire.NewConn(nc, c.clk, c.cfg.Timeout)
		t, payload, err := conn.Recv(0)
		if err != nil || t != fHello {
			conn.Close()
			continue // a port scanner, or a member that died dialing
		}
		var h helloMsg
		if err := decode(t, payload, &h); err != nil {
			conn.Close()
			continue
		}
		if _, dup := c.conns[h.Rank]; dup || h.Rank < 0 || h.Rank >= c.cfg.Workers {
			conn.Close()
			return fmt.Errorf("train: member rank %d invalid or already joined", h.Rank)
		}
		c.conns[h.Rank] = conn
		c.owners[h.Rank] = []int{h.Rank}
	}
	return nil
}

// read pumps one member's frames into the decision loop, beating its
// liveness on every frame (all traffic proves liveness; heartbeats are
// just the guaranteed minimum).
func (c *Coordinator) read(member int, conn *wire.Conn) {
	for {
		t, payload, err := conn.Recv(-1)
		if err != nil {
			c.events <- event{member: member, err: err}
			return
		}
		c.live.Beat(member)
		if t == fHeartbeat {
			continue
		}
		c.events <- event{member: member, typ: t, payload: payload}
	}
}

// broadcast sends one frame to every live member.
func (c *Coordinator) broadcast(t byte, msg any) error {
	for member, conn := range c.conns {
		if err := sendJSON(conn, t, msg); err != nil {
			return fmt.Errorf("train: broadcast %#x to member %d: %w", t, member, err)
		}
	}
	return nil
}

// anyOverflow reports whether any rank overflowed at iter — the
// aggregate proceed carries so every member knows the global step was
// loss-scale skipped.
func (c *Coordinator) anyOverflow(iter int) bool { return c.overflow[iter] }

// barrier collects every live member's report for iter. It returns
// (-1, nil) on a normal barrier, or (resumeIter, nil) when a member
// died and recovery rolled the run back. Detection is time-driven: the
// wait polls liveness every quarter heartbeat-timeout on the injected
// clock, so a silent member is declared dead once clk.Since(lastBeat)
// reaches the timeout.
func (c *Coordinator) barrier(ctx context.Context, iter int) (int, error) {
	pending := c.pendingRanks()
	tick := c.cfg.HeartbeatTimeout / 4
	if tick <= 0 {
		tick = c.cfg.HeartbeatTimeout
	}
	for len(pending) > 0 {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case ev := <-c.events:
			if _, live := c.conns[ev.member]; !live {
				continue // stale: the member was already declared dead
			}
			if ev.err != nil {
				// Connection failure is immediate death — faster than the
				// heartbeat verdict, same recovery.
				return c.recover(ctx, iter, []int{ev.member}, pending)
			}
			if err := c.consumeReport(ev, iter, pending); err != nil {
				return 0, err
			}
		case <-c.clk.After(tick):
			if dead := c.live.Dead(); len(dead) > 0 {
				return c.recover(ctx, iter, dead, pending)
			}
		}
	}
	return -1, nil
}

// pendingRanks is the set of ranks that owe a report this barrier.
func (c *Coordinator) pendingRanks() map[int]bool {
	pending := make(map[int]bool)
	for _, ranks := range c.owners {
		for _, r := range ranks {
			pending[r] = true
		}
	}
	return pending
}

// consumeReport folds one report event into the digest history,
// failing the run on divergence: a re-executed iteration (after
// recovery) must reproduce the digest its rank reported the first time
// — for adopted ranks, the digest the *dead* member reported. That is
// the wire-level proof that restore + re-shard is bit-identical.
func (c *Coordinator) consumeReport(ev event, iter int, pending map[int]bool) error {
	if ev.typ != fReport {
		return fmt.Errorf("train: member %d sent frame %#x at barrier %d", ev.member, ev.typ, iter)
	}
	var rep reportMsg
	if err := decode(ev.typ, ev.payload, &rep); err != nil {
		return err
	}
	if rep.Iter != iter {
		return fmt.Errorf("train: member %d reported iteration %d at barrier %d", ev.member, rep.Iter, iter)
	}
	if c.history[iter] == nil {
		c.history[iter] = make(map[int]uint64)
	}
	for _, rr := range rep.Ranks {
		if prev, seen := c.history[iter][rr.Rank]; seen && prev != rr.Digest {
			return fmt.Errorf("train: rank %d diverged at iteration %d: digest %#x, previously %#x",
				rr.Rank, iter, rr.Digest, prev)
		}
		c.history[iter][rr.Rank] = rr.Digest
		if rr.Overflow {
			c.overflow[iter] = true
		}
		delete(pending, rr.Rank)
	}
	return nil
}

// recover is the dead-rank state machine. Survivors are all at barrier
// `iter` (proceed is broadcast only after every report, so no live
// member can be past it); they park awaiting proceed, which recovery
// withholds — that IS the pause. Steps: drain the survivors'
// outstanding reports, re-assign the orphaned ranks, select the newest
// step every rank has a complete valid manifest for, order the restore
// (survivors adopt via engine.NewRestored), and resume from that step.
func (c *Coordinator) recover(ctx context.Context, iter int, dead []int, pending map[int]bool) (int, error) {
	if c.cfg.CheckpointEvery <= 0 {
		return 0, fmt.Errorf("train: member(s) %v died with checkpointing disabled — nothing to roll back to", dead)
	}
	var orphans []int
	for _, member := range dead {
		if _, ok := c.conns[member]; !ok {
			continue // already handled (duplicate verdict)
		}
		orphans = append(orphans, c.owners[member]...)
		c.live.Forget(member)
		c.conns[member].Close()
		delete(c.conns, member)
		delete(c.owners, member)
	}
	sort.Ints(orphans)
	for _, r := range orphans {
		delete(pending, r)
	}
	if len(c.conns) == 0 {
		return 0, fmt.Errorf("train: all members dead at iteration %d", iter)
	}

	// Drain: every survivor finishes computing iter and reports; they
	// then block in Recv — the iteration barrier recovery needs.
	for len(pending) > 0 {
		ev, err := c.nextEvent(ctx, "drain survivors")
		if err != nil {
			return 0, err
		}
		if err := c.consumeReport(ev, iter, pending); err != nil {
			return 0, err
		}
	}

	// Re-shard: each orphan goes to the survivor owning the fewest ranks.
	adoptions := make(map[int]int, len(orphans))
	for _, orphan := range orphans {
		best, bestN := -1, int(^uint(0)>>1)
		for _, member := range c.sortedMembers() {
			if n := len(c.owners[member]); n < bestN {
				best, bestN = member, n
			}
		}
		c.owners[best] = append(c.owners[best], orphan)
		adoptions[orphan] = best
	}

	// Select the restore point: every survivor lists every rank's valid
	// steps from the shared tier; the newest step in the intersection of
	// all sets is the rollback target. Torn manifests (a rank died
	// mid-commit) fail validation and drop out here.
	var allRanks []int
	for r := range c.pendingRanks() {
		allRanks = append(allRanks, r)
	}
	sort.Ints(allRanks)
	if err := c.broadcast(fListSteps, listStepsMsg{Ranks: allRanks}); err != nil {
		return 0, err
	}
	var sets [][]int
	for range c.conns {
		ev, err := c.nextEvent(ctx, "collect step sets")
		if err != nil {
			return 0, err
		}
		if ev.typ != fSteps {
			return 0, fmt.Errorf("train: member %d sent frame %#x during step collection", ev.member, ev.typ)
		}
		var sm stepsMsg
		if err := decode(ev.typ, ev.payload, &sm); err != nil {
			return 0, err
		}
		for _, rs := range sm.Sets {
			sets = append(sets, rs.Steps)
		}
	}
	step, ok := checkpoint.NewestCommonStep(sets)
	if !ok {
		return 0, fmt.Errorf("train: no checkpoint step is complete across all ranks; cannot recover")
	}

	// Restore under the new ownership, then resume from the step.
	var assign []assignment
	for _, member := range c.sortedMembers() {
		for _, r := range c.owners[member] {
			assign = append(assign, assignment{Rank: r, Owner: member})
		}
	}
	sort.Slice(assign, func(i, j int) bool { return assign[i].Rank < assign[j].Rank })
	if err := c.broadcast(fRestore, restoreMsg{Step: step, Owners: assign}); err != nil {
		return 0, err
	}
	acked := make(map[int]bool)
	for len(acked) < len(c.conns) {
		ev, err := c.nextEvent(ctx, "await restores")
		if err != nil {
			return 0, err
		}
		if ev.typ != fRestored {
			return 0, fmt.Errorf("train: member %d sent frame %#x during restore", ev.member, ev.typ)
		}
		acked[ev.member] = true
	}
	if err := c.broadcast(fResume, resumeMsg{Iter: step}); err != nil {
		return 0, err
	}
	c.report.Recoveries = append(c.report.Recoveries, Recovery{
		Dead:      append([]int(nil), dead...),
		Step:      step,
		Adoptions: adoptions,
		AtIter:    iter,
	})
	return step, nil
}

// nextEvent pulls the next live-member event during recovery, treating
// any connection failure as a cascading fatal error (a second death
// during recovery is not survivable — the dying member's shard state is
// mid-restore). Events from already-removed members — the reader
// goroutine's final error after recovery closed the socket — are
// discarded.
func (c *Coordinator) nextEvent(ctx context.Context, phase string) (event, error) {
	for {
		select {
		case <-ctx.Done():
			return event{}, ctx.Err()
		case ev := <-c.events:
			if _, live := c.conns[ev.member]; !live {
				continue
			}
			if ev.err != nil {
				return event{}, fmt.Errorf("train: member %d failed while recovery was trying to %s: %w", ev.member, phase, ev.err)
			}
			return ev, nil
		}
	}
}

// sortedMembers returns the live member IDs ascending (deterministic
// adoption order).
func (c *Coordinator) sortedMembers() []int {
	members := make([]int, 0, len(c.conns))
	for m := range c.conns {
		members = append(members, m)
	}
	sort.Ints(members)
	return members
}

// awaitByes gives members a moment to depart cleanly; stragglers are
// cut off by Close.
func (c *Coordinator) awaitByes(ctx context.Context) {
	departed := make(map[int]bool)
	for len(departed) < len(c.conns) {
		select {
		case <-ctx.Done():
			return
		case ev := <-c.events:
			if _, live := c.conns[ev.member]; !live {
				continue // stale: a dead member's final reader error
			}
			if ev.err != nil || ev.typ == fBye {
				departed[ev.member] = true
			}
		case <-c.clk.After(c.cfg.HeartbeatTimeout):
			return
		}
	}
}
