package train

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/datastates/mlpoffload/internal/engine"
	"github.com/datastates/mlpoffload/internal/storage"
)

// elasticEngineFor builds the per-rank engine config every member (and
// the fault-free reference run) uses: deterministic geometry and
// gradients, a fresh private "nvme" tier per engine. Bit-identity
// across runs requires exactly this determinism.
func elasticEngineFor(rank int) (engine.Config, error) {
	tiers := []engine.TierSpec{
		{Tier: storage.NewMemTier("nvme"), ReadBW: 500, WriteBW: 500},
	}
	cfg := engine.MLPConfig(rank, 400, 100, tiers, nil)
	cfg.AdaptivePlacement = false
	cfg.Grad = engine.QuadraticGradFn(3)
	return cfg, nil
}

// referenceParams trains `workers` standalone engines for iters
// iterations with no networking and no faults, returning each rank's
// final FP32 master parameters — the bit-exact target the elastic run
// must hit despite a mid-run death.
func referenceParams(t *testing.T, workers, iters int) [][]float32 {
	t.Helper()
	out := make([][]float32, workers)
	for rank := 0; rank < workers; rank++ {
		cfg, err := elasticEngineFor(rank)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < iters; i++ {
			if _, err := e.TrainIteration(i); err != nil {
				t.Fatalf("reference rank %d iteration %d: %v", rank, i, err)
			}
		}
		params := make([]float32, len(e.Params16()))
		if err := e.GatherParams(params); err != nil {
			t.Fatal(err)
		}
		e.Close()
		out[rank] = params
	}
	return out
}

// TestElasticKillARankRecoversBitIdentical is the end-to-end fault
// drill: three members train over loopback TCP; rank 2 falls silent
// after computing iteration 3 (heartbeats stop, connection stays open).
// The coordinator must detect the death by missed heartbeats, pause the
// survivors at the barrier, roll back to the newest checkpoint step all
// ranks hold (step 2 — the step-4 checkpoint was never coordinated),
// re-shard rank 2 onto a survivor, resume, and finish — with every
// rank's final parameters bit-identical to a fault-free run. The
// coordinator's digest history cross-checks every re-executed iteration
// on the wire as it happens.
func TestElasticKillARankRecoversBitIdentical(t *testing.T) {
	const (
		workers   = 3
		iters     = 6
		ckptEvery = 2
		killAt    = 3
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:          workers,
		Iters:            iters,
		CheckpointEvery:  ckptEvery,
		Heartbeat:        10 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		Timeout:          5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	reportCh := make(chan RunReport, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := coord.Run(ctx)
		reportCh <- rep
		errCh <- err
	}()

	ckpt := storage.NewMemTier("ckpt")
	members := make([]*Member, workers)
	memberErrs := make([]error, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := MemberConfig{
				Rank:      rank,
				Addr:      coord.Addr(),
				EngineFor: elasticEngineFor,
				Ckpt:      ckpt,
				Prefix:    "elastic",
				Timeout:   5 * time.Second,
			}
			if rank == 2 {
				cfg.KillAtIter = killAt
			}
			members[rank], memberErrs[rank] = RunMember(ctx, cfg)
		}(rank)
	}
	wg.Wait()
	rep := <-reportCh
	if err := <-errCh; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for rank, err := range memberErrs {
		if err != nil {
			t.Fatalf("member %d: %v", rank, err)
		}
	}
	defer func() {
		for _, m := range members {
			if m != nil {
				m.Close()
			}
		}
	}()

	// The kill hook must have fired, and the recovery must be the one the
	// timeline dictates: death detected at barrier 3, rollback to step 2
	// (steps are multiples of 2; the step-4 checkpoint required proceed(3),
	// which the death withheld), rank 2 adopted by survivor 0 or 1.
	if !members[2].Killed() {
		t.Fatal("member 2 was not killed by the test hook")
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("recoveries = %+v, want exactly one", rep.Recoveries)
	}
	rec := rep.Recoveries[0]
	if len(rec.Dead) != 1 || rec.Dead[0] != 2 {
		t.Fatalf("dead = %v, want [2]", rec.Dead)
	}
	if rec.Step != 2 {
		t.Fatalf("rollback step = %d, want 2", rec.Step)
	}
	if rec.AtIter != killAt {
		t.Fatalf("death detected at iteration %d, want %d", rec.AtIter, killAt)
	}
	adopter, ok := rec.Adoptions[2]
	if !ok || (adopter != 0 && adopter != 1) {
		t.Fatalf("adoptions = %v, want rank 2 adopted by a survivor", rec.Adoptions)
	}
	// 4 barriers before the death (iters 0-3), then iters 2-5 re-run.
	if rep.Iterations != 8 {
		t.Fatalf("iterations executed = %d, want 8", rep.Iterations)
	}

	// Bit-identity: each rank's parameters — rank 2's from its adopter —
	// must equal the fault-free reference exactly.
	want := referenceParams(t, workers, iters)
	for rank := 0; rank < workers; rank++ {
		owner := members[rank]
		if rank == 2 {
			owner = members[adopter]
		}
		got, err := owner.GatherRank(rank)
		if err != nil {
			t.Fatalf("gather rank %d: %v", rank, err)
		}
		if len(got) != len(want[rank]) {
			t.Fatalf("rank %d: %d params, want %d", rank, len(got), len(want[rank]))
		}
		for i := range got {
			if got[i] != want[rank][i] {
				t.Fatalf("rank %d param %d = %v, want %v (post-recovery state not bit-identical)",
					rank, i, got[i], want[rank][i])
			}
		}
	}
}

// TestElasticCleanRun is the no-fault baseline of the same harness: two
// members, no kill hook, checkpoints on — the run must finish with zero
// recoveries and bit-identical parameters.
func TestElasticCleanRun(t *testing.T) {
	const (
		workers = 2
		iters   = 4
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:          workers,
		Iters:            iters,
		CheckpointEvery:  2,
		Heartbeat:        10 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		Timeout:          5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reportCh := make(chan RunReport, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := coord.Run(ctx)
		reportCh <- rep
		errCh <- err
	}()

	ckpt := storage.NewMemTier("ckpt")
	members := make([]*Member, workers)
	memberErrs := make([]error, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			members[rank], memberErrs[rank] = RunMember(ctx, MemberConfig{
				Rank:      rank,
				Addr:      coord.Addr(),
				EngineFor: elasticEngineFor,
				Ckpt:      ckpt,
				Prefix:    "clean",
				Timeout:   5 * time.Second,
			})
		}(rank)
	}
	wg.Wait()
	rep := <-reportCh
	if err := <-errCh; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for rank, err := range memberErrs {
		if err != nil {
			t.Fatalf("member %d: %v", rank, err)
		}
	}
	defer func() {
		for _, m := range members {
			if m != nil {
				m.Close()
			}
		}
	}()
	if len(rep.Recoveries) != 0 {
		t.Fatalf("recoveries = %+v, want none", rep.Recoveries)
	}
	if rep.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", rep.Iterations, iters)
	}
	want := referenceParams(t, workers, iters)
	for rank := 0; rank < workers; rank++ {
		got, err := members[rank].GatherRank(rank)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[rank][i] {
				t.Fatalf("rank %d param %d differs from fault-free reference", rank, i)
			}
		}
	}
}
