// Package train orchestrates multi-worker training on one node: one
// engine per GPU-attached worker process, all sharing the node's storage
// tiers and the node-level exclusive-access lock manager, synchronized at
// iteration boundaries like data-parallel replicas.
//
// This is the deployment shape of the paper's experiments (4 workers per
// node on both testbeds) expressed over the real engine.
package train

import (
	"context"
	"fmt"
	"sync"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/engine"
	"github.com/datastates/mlpoffload/internal/metrics"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/tierlock"
)

// NodeConfig configures a multi-worker training node.
type NodeConfig struct {
	// Workers is the number of worker processes (GPUs) on the node.
	Workers int
	// ParamsPerWorker is each worker's shard size.
	ParamsPerWorker int64
	// SubgroupParams is the subgroup granularity.
	SubgroupParams int64
	// Tiers are the node's shared storage paths.
	Tiers []engine.TierSpec
	// MLP selects MLP-Offload mode (all design principles) vs the
	// ZeRO-3-shaped baseline.
	MLP bool
	// Mutate, when non-nil, adjusts each worker's engine config before
	// construction (ablation hooks).
	Mutate func(rank int, cfg *engine.Config)
}

// Node is a running multi-worker training node.
type Node struct {
	cfg     NodeConfig
	locks   *tierlock.Manager
	engines []*engine.Engine
	iter    int
}

// NewNode constructs all worker engines. Construction offloads every
// worker's initial optimizer state to the tiers.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("train: Workers must be positive, got %d", cfg.Workers)
	}
	n := &Node{cfg: cfg, locks: tierlock.NewManager(cfg.MLP)}
	for rank := 0; rank < cfg.Workers; rank++ {
		var ec engine.Config
		if cfg.MLP {
			ec = engine.MLPConfig(rank, cfg.ParamsPerWorker, cfg.SubgroupParams, cfg.Tiers, n.locks)
		} else {
			ec = engine.BaselineConfig(rank, cfg.ParamsPerWorker, cfg.SubgroupParams, cfg.Tiers)
		}
		if cfg.Mutate != nil {
			cfg.Mutate(rank, &ec)
		}
		e, err := engine.New(ec)
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("train: worker %d: %w", rank, err)
		}
		n.engines = append(n.engines, e)
	}
	return n, nil
}

// Workers returns the per-worker engines (index = rank).
func (n *Node) Workers() []*engine.Engine { return n.engines }

// Locks returns the node's tier lock manager.
func (n *Node) Locks() *tierlock.Manager { return n.locks }

// IterationResult aggregates one synchronized iteration across workers.
type IterationResult struct {
	// PerWorker holds each rank's measurements.
	PerWorker []metrics.Iteration
	// Node is the node-level view: phase times are the max across
	// workers (the data-parallel barrier semantics), counters are summed.
	Node metrics.Iteration
}

// TrainIteration runs one data-parallel iteration: all workers execute
// concurrently and the call returns when the slowest finishes (the
// synchronization point of the update phase).
func (n *Node) TrainIteration() (IterationResult, error) {
	res := IterationResult{PerWorker: make([]metrics.Iteration, len(n.engines))}
	errs := make([]error, len(n.engines))
	var wg sync.WaitGroup
	for rank, e := range n.engines {
		wg.Add(1)
		go func(rank int, e *engine.Engine) {
			defer wg.Done()
			it, err := e.TrainIteration(n.iter)
			res.PerWorker[rank] = it
			errs[rank] = err
		}(rank, e)
	}
	wg.Wait()
	n.iter++
	for rank, err := range errs {
		if err != nil {
			return res, fmt.Errorf("train: worker %d iteration %d: %w", rank, n.iter-1, err)
		}
	}
	res.Node = aggregate(res.PerWorker)
	return res, nil
}

// Train runs iters synchronized iterations and returns the node-level
// series.
func (n *Node) Train(iters int) (*metrics.Series, error) {
	s := &metrics.Series{Warmup: min(2, iters-1)}
	for i := 0; i < iters; i++ {
		r, err := n.TrainIteration()
		if err != nil {
			return s, err
		}
		s.Append(r.Node)
	}
	return s, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// aggregate folds per-worker iterations into the node view.
func aggregate(workers []metrics.Iteration) metrics.Iteration {
	var out metrics.Iteration
	out.TierBytes = make(map[string]float64)
	for _, it := range workers {
		if it.Phases.Forward > out.Phases.Forward {
			out.Phases.Forward = it.Phases.Forward
		}
		if it.Phases.Backward > out.Phases.Backward {
			out.Phases.Backward = it.Phases.Backward
		}
		if it.Phases.Update > out.Phases.Update {
			out.Phases.Update = it.Phases.Update
		}
		out.ParamsUpdated += it.ParamsUpdated
		out.BytesRead += it.BytesRead
		out.BytesWritten += it.BytesWritten
		out.ReadTime += it.ReadTime
		out.WriteTime += it.WriteTime
		out.CacheHits += it.CacheHits
		out.CacheMisses += it.CacheMisses
		out.UpdateComputeTime += it.UpdateComputeTime
		for k, v := range it.TierBytes {
			out.TierBytes[k] += v
		}
	}
	return out
}

// rankPrefix namespaces one rank's checkpoint keys under the node prefix.
func rankPrefix(prefix string, rank int) string {
	return fmt.Sprintf("%s-rank%03d", prefix, rank)
}

// Checkpoint writes a coordinated checkpoint of every worker at the
// current iteration boundary: each rank flushes its plan and commits its
// manifest under a rank-qualified prefix on the shared checkpoint tier.
// The call returns after every rank's manifest has landed; a checkpoint is
// complete only when all ranks committed, which Resume enforces. It must
// not run concurrently with TrainIteration.
func (n *Node) Checkpoint(ctx context.Context, tier storage.Tier, prefix string) ([]checkpoint.Manifest, error) {
	mans := make([]checkpoint.Manifest, len(n.engines))
	errs := make([]error, len(n.engines))
	var wg sync.WaitGroup
	for rank, e := range n.engines {
		wg.Add(1)
		go func(rank int, e *engine.Engine) {
			defer wg.Done()
			w := checkpoint.NewWriter(tier, rankPrefix(prefix, rank))
			defer w.Close()
			mans[rank], errs[rank] = e.Checkpoint(ctx, n.iter, w)
		}(rank, e)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("train: checkpoint rank %d at iteration %d: %w", rank, n.iter, err)
		}
	}
	return mans, nil
}

// Resume restores every worker from the newest checkpoint step for which
// ALL ranks committed a valid manifest (a rank that crashed mid-checkpoint
// leaves that step incomplete — missing or torn manifest — and it is
// skipped), then positions the node at that iteration. It returns the
// iteration training continues from.
func (n *Node) Resume(ctx context.Context, tier storage.Tier, prefix string) (int, error) {
	// Intersect the per-rank restorable steps: ValidSteps checks manifest
	// content, so a truncated manifest from a mid-commit crash rolls the
	// node back to the previous common step instead of failing the resume.
	sets := make([][]int, len(n.engines))
	for rank := range n.engines {
		r := checkpoint.NewReader(tier, rankPrefix(prefix, rank))
		steps, err := r.ValidSteps(ctx)
		if err != nil {
			return 0, fmt.Errorf("train: resume rank %d: %w", rank, err)
		}
		sets[rank] = steps
	}
	step, ok := checkpoint.NewestCommonStep(sets)
	if !ok {
		return 0, fmt.Errorf("train: no complete checkpoint found under prefix %q", prefix)
	}

	errs := make([]error, len(n.engines))
	var wg sync.WaitGroup
	for rank, e := range n.engines {
		wg.Add(1)
		go func(rank int, e *engine.Engine) {
			defer wg.Done()
			r := checkpoint.NewReader(tier, rankPrefix(prefix, rank))
			m, err := r.ReadManifest(ctx, step)
			if err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = e.Restore(ctx, r, m)
		}(rank, e)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("train: resume rank %d from step %d: %w", rank, step, err)
		}
	}
	n.iter = step
	return step, nil
}

// resolveTier maps a manifest tier name to the node's tier handle.
func (n *Node) resolveTier(name string) storage.Tier {
	for _, ts := range n.cfg.Tiers {
		if ts.Tier.Name() == name {
			return ts.Tier
		}
	}
	return nil
}

// PruneCheckpoints removes, for every rank, committed checkpoints beyond
// the newest keep and sweeps orphaned objects from checkpoints whose
// manifest never landed — without it each checkpoint (and each failed
// attempt) leaves a full optimizer-state copy on storage forever.
// keep <= 0 skips the retention pass but still sweeps orphans.
func (n *Node) PruneCheckpoints(ctx context.Context, tier storage.Tier, prefix string, keep int) error {
	trainTiers := make([]storage.Tier, len(n.cfg.Tiers))
	for i, ts := range n.cfg.Tiers {
		trainTiers[i] = ts.Tier
	}
	for rank := range n.engines {
		r := checkpoint.NewReader(tier, rankPrefix(prefix, rank))
		if _, err := r.Prune(ctx, keep, n.resolveTier); err != nil {
			return fmt.Errorf("train: prune rank %d: %w", rank, err)
		}
		if _, err := r.SweepOrphans(ctx, trainTiers); err != nil {
			return fmt.Errorf("train: sweep rank %d: %w", rank, err)
		}
	}
	return nil
}

// GatherAll fetches every worker's FP32 master parameters into one slice
// (rank-major), for verification.
func (n *Node) GatherAll() ([]float32, error) {
	per := int(n.cfg.ParamsPerWorker)
	out := make([]float32, per*len(n.engines))
	for rank, e := range n.engines {
		if err := e.GatherParams(out[rank*per : (rank+1)*per]); err != nil {
			return nil, fmt.Errorf("train: gather rank %d: %w", rank, err)
		}
	}
	return out, nil
}

// Close shuts down all workers. Idempotent.
func (n *Node) Close() {
	for _, e := range n.engines {
		if e != nil {
			e.Close()
		}
	}
}
