package train

import (
	"fmt"
	"math"
	"testing"

	"github.com/datastates/mlpoffload/internal/engine"
	"github.com/datastates/mlpoffload/internal/storage"
)

func nodeTiers(bws ...float64) []engine.TierSpec {
	out := make([]engine.TierSpec, len(bws))
	for i, bw := range bws {
		out[i] = engine.TierSpec{
			Tier:    storage.NewMemTier(fmt.Sprintf("t%d", i)),
			ReadBW:  bw,
			WriteBW: bw,
		}
	}
	return out
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(NodeConfig{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewNode(NodeConfig{Workers: 1, ParamsPerWorker: 0, SubgroupParams: 10, Tiers: nodeTiers(1)}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestFourWorkerTraining(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 4, ParamsPerWorker: 500, SubgroupParams: 100,
		Tiers: nodeTiers(1000, 600), MLP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if len(n.Workers()) != 4 {
		t.Fatalf("workers = %d", len(n.Workers()))
	}
	s, err := n.Train(4)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Mean()
	if m.ParamsUpdated != 4*500 {
		t.Errorf("node params updated = %d, want 2000", m.ParamsUpdated)
	}
	if m.Phases.Update <= 0 {
		t.Error("update phase not timed")
	}
	// Exclusive locks exercised by all workers.
	if n.Locks().Stats("t0").Grants == 0 {
		t.Error("tier locks never taken")
	}
}

func TestNodeConvergence(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 2, ParamsPerWorker: 300, SubgroupParams: 60,
		Tiers: nodeTiers(1000), MLP: true,
		Mutate: func(_ int, cfg *engine.Config) {
			cfg.Hyper.LR = 0.05
			cfg.Grad = engine.QuadraticGradFn(4)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Train(200); err != nil {
		t.Fatal(err)
	}
	all, err := n.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 600 {
		t.Fatalf("gathered %d params", len(all))
	}
	for i, p := range all {
		if math.Abs(float64(p)-4) > 0.15 {
			t.Fatalf("param %d = %v, want ~4", i, p)
		}
	}
}

func TestBaselineNodeNoLocks(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 2, ParamsPerWorker: 200, SubgroupParams: 50,
		Tiers: nodeTiers(1000), MLP: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Locks().Exclusive() {
		t.Error("baseline node should not enforce exclusivity")
	}
	if _, err := n.Train(2); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateSemantics(t *testing.T) {
	r := IterationResult{}
	_ = r
	n, err := NewNode(NodeConfig{
		Workers: 3, ParamsPerWorker: 100, SubgroupParams: 50,
		Tiers: nodeTiers(500), MLP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	res, err := n.TrainIteration()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorker) != 3 {
		t.Fatalf("per-worker = %d", len(res.PerWorker))
	}
	// Node phases are maxima; counters are sums.
	var maxUpd float64
	var sumMisses int
	for _, it := range res.PerWorker {
		if it.Phases.Update > maxUpd {
			maxUpd = it.Phases.Update
		}
		sumMisses += it.CacheMisses
	}
	if res.Node.Phases.Update != maxUpd {
		t.Errorf("node update = %v, want max %v", res.Node.Phases.Update, maxUpd)
	}
	if res.Node.CacheMisses != sumMisses {
		t.Errorf("node misses = %d, want %d", res.Node.CacheMisses, sumMisses)
	}
}

func TestCloseIdempotent(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 1, ParamsPerWorker: 100, SubgroupParams: 50,
		Tiers: nodeTiers(500), MLP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close()
}

func TestMutatePerRank(t *testing.T) {
	seen := map[int]bool{}
	n, err := NewNode(NodeConfig{
		Workers: 3, ParamsPerWorker: 100, SubgroupParams: 50,
		Tiers: nodeTiers(500), MLP: true,
		Mutate: func(rank int, cfg *engine.Config) {
			seen[rank] = true
			if cfg.Rank != rank {
				t.Errorf("cfg.Rank = %d for rank %d", cfg.Rank, rank)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for r := 0; r < 3; r++ {
		if !seen[r] {
			t.Errorf("mutate not called for rank %d", r)
		}
	}
}
