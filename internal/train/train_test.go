package train

import (
	"context"
	"fmt"
	"math"
	"testing"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/engine"
	"github.com/datastates/mlpoffload/internal/storage"
)

func nodeTiers(bws ...float64) []engine.TierSpec {
	out := make([]engine.TierSpec, len(bws))
	for i, bw := range bws {
		out[i] = engine.TierSpec{
			Tier:    storage.NewMemTier(fmt.Sprintf("t%d", i)),
			ReadBW:  bw,
			WriteBW: bw,
		}
	}
	return out
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(NodeConfig{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewNode(NodeConfig{Workers: 1, ParamsPerWorker: 0, SubgroupParams: 10, Tiers: nodeTiers(1)}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestFourWorkerTraining(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 4, ParamsPerWorker: 500, SubgroupParams: 100,
		Tiers: nodeTiers(1000, 600), MLP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if len(n.Workers()) != 4 {
		t.Fatalf("workers = %d", len(n.Workers()))
	}
	s, err := n.Train(4)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Mean()
	if m.ParamsUpdated != 4*500 {
		t.Errorf("node params updated = %d, want 2000", m.ParamsUpdated)
	}
	if m.Phases.Update <= 0 {
		t.Error("update phase not timed")
	}
	// Exclusive locks exercised by all workers.
	if n.Locks().Stats("t0").Grants == 0 {
		t.Error("tier locks never taken")
	}
}

func TestNodeConvergence(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 2, ParamsPerWorker: 300, SubgroupParams: 60,
		Tiers: nodeTiers(1000), MLP: true,
		Mutate: func(_ int, cfg *engine.Config) {
			cfg.Hyper.LR = 0.05
			cfg.Grad = engine.QuadraticGradFn(4)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Train(200); err != nil {
		t.Fatal(err)
	}
	all, err := n.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 600 {
		t.Fatalf("gathered %d params", len(all))
	}
	for i, p := range all {
		if math.Abs(float64(p)-4) > 0.15 {
			t.Fatalf("param %d = %v, want ~4", i, p)
		}
	}
}

func TestBaselineNodeNoLocks(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 2, ParamsPerWorker: 200, SubgroupParams: 50,
		Tiers: nodeTiers(1000), MLP: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Locks().Exclusive() {
		t.Error("baseline node should not enforce exclusivity")
	}
	if _, err := n.Train(2); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateSemantics(t *testing.T) {
	r := IterationResult{}
	_ = r
	n, err := NewNode(NodeConfig{
		Workers: 3, ParamsPerWorker: 100, SubgroupParams: 50,
		Tiers: nodeTiers(500), MLP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	res, err := n.TrainIteration()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorker) != 3 {
		t.Fatalf("per-worker = %d", len(res.PerWorker))
	}
	// Node phases are maxima; counters are sums.
	var maxUpd float64
	var sumMisses int
	for _, it := range res.PerWorker {
		if it.Phases.Update > maxUpd {
			maxUpd = it.Phases.Update
		}
		sumMisses += it.CacheMisses
	}
	if res.Node.Phases.Update != maxUpd {
		t.Errorf("node update = %v, want max %v", res.Node.Phases.Update, maxUpd)
	}
	if res.Node.CacheMisses != sumMisses {
		t.Errorf("node misses = %d, want %d", res.Node.CacheMisses, sumMisses)
	}
}

func TestCloseIdempotent(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Workers: 1, ParamsPerWorker: 100, SubgroupParams: 50,
		Tiers: nodeTiers(500), MLP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close()
}

// TestNodeCheckpointResumeBitIdentical: a coordinated checkpoint at an
// iteration boundary, a crash that wipes the volatile tier, and a resume
// on a fresh node must reproduce the uninterrupted run exactly on every
// worker.
func TestNodeCheckpointResumeBitIdentical(t *testing.T) {
	const (
		k = 3 // crash after k iterations
		n = 6
	)
	ctx := context.Background()
	mkCfg := func(pfs storage.Tier) NodeConfig {
		return NodeConfig{
			Workers: 2, ParamsPerWorker: 400, SubgroupParams: 80,
			Tiers: []engine.TierSpec{
				{Tier: storage.NewMemTier("nvme"), ReadBW: 690, WriteBW: 530},
				{Tier: pfs, ReadBW: 360, WriteBW: 360, Persistent: true},
			},
			MLP: true,
			Mutate: func(_ int, cfg *engine.Config) {
				cfg.Grad = engine.QuadraticGradFn(2)
				cfg.Hyper.LR = 0.02
			},
		}
	}
	trainIters := func(nd *Node, iters int) {
		t.Helper()
		for i := 0; i < iters; i++ {
			if _, err := nd.TrainIteration(); err != nil {
				t.Fatal(err)
			}
		}
	}

	ref, err := NewNode(mkCfg(storage.NewMemTier("pfs")))
	if err != nil {
		t.Fatal(err)
	}
	trainIters(ref, n)
	want, err := ref.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	pfs := storage.NewMemTier("pfs") // persists across the crash
	nd, err := NewNode(mkCfg(pfs))
	if err != nil {
		t.Fatal(err)
	}
	trainIters(nd, k)
	ckptTier := storage.NewMemTier("ckpt")
	mans, err := nd.Checkpoint(ctx, ckptTier, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 2 {
		t.Fatalf("manifests = %d", len(mans))
	}
	for rank, m := range mans {
		if m.Step != k || m.Rank != rank {
			t.Errorf("rank %d manifest step=%d rank=%d", rank, m.Step, m.Rank)
		}
	}
	nd.Close() // crash: the nvme MemTiers die with the node

	nd2, err := NewNode(mkCfg(pfs))
	if err != nil {
		t.Fatal(err)
	}
	defer nd2.Close()
	step, err := nd2.Resume(ctx, ckptTier, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if step != k {
		t.Fatalf("resumed at %d, want %d", step, k)
	}
	trainIters(nd2, n-k)
	got, err := nd2.GatherAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("param %d differs after node resume: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestNodeResumeRequiresCompleteCheckpoint: a step is resumable only when
// every rank committed its manifest; a partial (crashed mid-checkpoint)
// step is skipped in favor of the newest complete one.
func TestNodeResumeRequiresCompleteCheckpoint(t *testing.T) {
	ctx := context.Background()
	cfg := NodeConfig{
		Workers: 2, ParamsPerWorker: 200, SubgroupParams: 50,
		Tiers: nodeTiers(1000), MLP: true,
	}
	nd, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	ckptTier := storage.NewMemTier("ckpt")
	if _, err := nd.Resume(ctx, ckptTier, "demo"); err == nil {
		t.Fatal("resume succeeded with no checkpoint")
	}

	for i := 0; i < 2; i++ {
		if _, err := nd.TrainIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nd.Checkpoint(ctx, ckptTier, "demo"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint at a later step: only rank 0's
	// manifest landed.
	orphan := checkpoint.NewWriter(ckptTier, rankPrefix("demo", 0))
	if err := orphan.WriteManifest(checkpoint.Manifest{FormatVersion: checkpoint.ManifestVersion, Step: 9}); err != nil {
		t.Fatal(err)
	}
	orphan.Close()

	step, err := nd.Resume(ctx, ckptTier, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if step != 2 {
		t.Errorf("resumed at step %d, want the complete step 2 (9 is partial)", step)
	}
}

func TestMutatePerRank(t *testing.T) {
	seen := map[int]bool{}
	n, err := NewNode(NodeConfig{
		Workers: 3, ParamsPerWorker: 100, SubgroupParams: 50,
		Tiers: nodeTiers(500), MLP: true,
		Mutate: func(rank int, cfg *engine.Config) {
			seen[rank] = true
			if cfg.Rank != rank {
				t.Errorf("cfg.Rank = %d for rank %d", cfg.Rank, rank)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for r := 0; r < 3; r++ {
		if !seen[r] {
			t.Errorf("mutate not called for rank %d", r)
		}
	}
}

// TestNodeResumeSkipsTornManifest: a rank whose newest manifest landed
// truncated (a crash mid-commit) silently rolls the whole node back to
// the previous step every rank holds intact.
func TestNodeResumeSkipsTornManifest(t *testing.T) {
	ctx := context.Background()
	cfg := NodeConfig{
		Workers: 2, ParamsPerWorker: 200, SubgroupParams: 50,
		Tiers: nodeTiers(1000), MLP: true,
	}
	nd, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	ckptTier := storage.NewMemTier("ckpt")
	for step := 1; step <= 2; step++ {
		if _, err := nd.TrainIteration(); err != nil {
			t.Fatal(err)
		}
		if _, err := nd.Checkpoint(ctx, ckptTier, "demo"); err != nil {
			t.Fatal(err)
		}
	}

	// Tear rank 1's step-2 manifest: keep the key, truncate the JSON.
	key := checkpoint.ManifestKey(rankPrefix("demo", 1), 2)
	size, err := ckptTier.Size(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if err := ckptTier.Read(ctx, key, buf); err != nil {
		t.Fatal(err)
	}
	if err := ckptTier.Write(ctx, key, buf[:size/2]); err != nil {
		t.Fatal(err)
	}

	step, err := nd.Resume(ctx, ckptTier, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if step != 1 {
		t.Errorf("resumed at step %d, want rollback to 1 (step 2 torn on rank 1)", step)
	}

	// Tear rank 0's only remaining manifest too: nothing common survives.
	key0 := checkpoint.ManifestKey(rankPrefix("demo", 0), 1)
	if err := ckptTier.Write(ctx, key0, []byte(`{"formatVe`)); err != nil {
		t.Fatal(err)
	}
	key1 := checkpoint.ManifestKey(rankPrefix("demo", 0), 2)
	if err := ckptTier.Write(ctx, key1, []byte(`{`)); err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Resume(ctx, ckptTier, "demo"); err == nil {
		t.Fatal("resume succeeded with every rank-0 manifest torn")
	}
}
