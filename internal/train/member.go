package train

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/datastates/mlpoffload/internal/checkpoint"
	"github.com/datastates/mlpoffload/internal/clock"
	"github.com/datastates/mlpoffload/internal/engine"
	"github.com/datastates/mlpoffload/internal/storage"
	"github.com/datastates/mlpoffload/internal/wire"
)

// MemberConfig configures one elastic training member: a process (or
// goroutine, in tests) owning one rank's engine, joined to a
// coordinator over TCP.
type MemberConfig struct {
	// Rank is this member's primary rank and its identity to the
	// coordinator.
	Rank int
	// Addr is the coordinator's listen address.
	Addr string
	// EngineFor builds the engine config for any rank — its own at
	// startup, a dead rank's when this member adopts its shard during
	// recovery. The returned config's tier handles are this member's
	// own; persistent tiers and the checkpoint tier must be shared
	// storage (every member sees every rank's manifests and snapshots),
	// local tiers are private (rank-scoped keys keep adopted shards from
	// colliding).
	EngineFor func(rank int) (engine.Config, error)
	// Ckpt is the shared checkpoint tier; Prefix namespaces this run's
	// checkpoints on it.
	Ckpt   storage.Tier
	Prefix string
	// Timeout is the per-message send deadline; <= 0 disables.
	Timeout time.Duration
	// DialBackoff paces connection attempts (the coordinator may not be
	// listening yet). Zero value = wire defaults.
	DialBackoff wire.Backoff
	// Clock drives heartbeats and retries. nil = wall clock.
	Clock clock.Clock

	// KillAtIter is a fault-injection hook for recovery tests: after
	// *computing* that iteration the member falls silent — heartbeats
	// stop, no report is sent, the connection stays open — forcing the
	// coordinator down the missed-heartbeat detection path exactly as a
	// hung process would. 0 disables (kill at iteration 0 is not a
	// supported scenario; there is nothing to recover).
	KillAtIter int
}

// Member is a running (or finished) elastic training member. After Run
// returns, the engines stay open for inspection; Close releases them.
type Member struct {
	cfg    MemberConfig
	clk    clock.Clock
	conn   *wire.Conn
	hbStop chan struct{}

	engines     map[int]*engine.Engine // rank → engine: own + adopted
	lastSkipped map[int]int64          // rank → SkippedSteps at last barrier
	killed      bool
}

// RunMember joins the coordinator at cfg.Addr and trains until the run
// completes, the member is test-killed, or an error occurs. The
// returned Member keeps its engines open either way (gather-and-verify,
// then Close).
func RunMember(ctx context.Context, cfg MemberConfig) (*Member, error) {
	m := &Member{
		cfg:         cfg,
		clk:         clock.Or(cfg.Clock),
		engines:     make(map[int]*engine.Engine),
		lastSkipped: make(map[int]int64),
	}
	ec, err := cfg.EngineFor(cfg.Rank)
	if err != nil {
		return m, fmt.Errorf("train: member %d engine config: %w", cfg.Rank, err)
	}
	e, err := engine.New(ec)
	if err != nil {
		return m, fmt.Errorf("train: member %d engine: %w", cfg.Rank, err)
	}
	m.engines[cfg.Rank] = e

	m.conn, err = wire.Dial(ctx, m.clk, cfg.Addr, cfg.Timeout, cfg.DialBackoff)
	if err != nil {
		return m, fmt.Errorf("train: member %d dial %s: %w", cfg.Rank, cfg.Addr, err)
	}
	if err := sendJSON(m.conn, fHello, helloMsg{Rank: cfg.Rank}); err != nil {
		return m, err
	}
	t, payload, err := m.conn.Recv(-1)
	if err != nil {
		return m, fmt.Errorf("train: member %d await welcome: %w", cfg.Rank, err)
	}
	if t != fWelcome {
		return m, fmt.Errorf("train: member %d expected welcome, got frame %#x", cfg.Rank, t)
	}
	var w welcomeMsg
	if err := decode(t, payload, &w); err != nil {
		return m, err
	}

	m.hbStop = make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		// A failed heartbeat send only hastens the death verdict the
		// coordinator would reach anyway.
		_ = wire.Heartbeat(m.clk, m.conn, fHeartbeat, time.Duration(w.HBEvery), m.hbStop)
	}()
	err = m.train(ctx, w)
	if !m.killed {
		close(m.hbStop)
	}
	<-hbDone
	return m, err
}

// Killed reports whether the test-kill hook fired.
func (m *Member) Killed() bool { return m.killed }

// Engines returns the ranks this member currently owns, ascending.
func (m *Member) Engines() map[int]*engine.Engine { return m.engines }

// GatherRank fetches one owned rank's FP32 master parameters.
func (m *Member) GatherRank(rank int) ([]float32, error) {
	e, ok := m.engines[rank]
	if !ok {
		return nil, fmt.Errorf("train: member %d does not own rank %d", m.cfg.Rank, rank)
	}
	dst := make([]float32, len(e.Params16()))
	if err := e.GatherParams(dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// Close releases the member's engines and connection. Idempotent.
func (m *Member) Close() {
	for _, e := range m.engines {
		e.Close()
	}
	m.engines = map[int]*engine.Engine{}
	if m.conn != nil {
		m.conn.Close()
	}
}

// ownedRanks returns the member's ranks ascending — deterministic
// iteration order for training and reporting.
func (m *Member) ownedRanks() []int {
	ranks := make([]int, 0, len(m.engines))
	for r := range m.engines {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// train is the member's main loop: compute, report, block at the
// barrier handling whatever control traffic arrives (proceed in the
// steady state; liststeps/restore/resume during a recovery).
func (m *Member) train(ctx context.Context, w welcomeMsg) error {
	iter := w.Iter
	for iter < w.Iters {
		report := reportMsg{Iter: iter}
		for _, rank := range m.ownedRanks() {
			e := m.engines[rank]
			if _, err := e.TrainIteration(iter); err != nil {
				return fmt.Errorf("train: member %d rank %d iteration %d: %w", m.cfg.Rank, rank, iter, err)
			}
			skipped := e.SkippedSteps()
			report.Ranks = append(report.Ranks, rankReport{
				Rank:     rank,
				Digest:   paramsDigest(e),
				Overflow: skipped > m.lastSkipped[rank],
			})
			m.lastSkipped[rank] = skipped
		}
		if m.cfg.KillAtIter > 0 && iter == m.cfg.KillAtIter {
			// Fall silent mid-iteration: computed, never reported. The
			// heartbeat loop stops; the connection stays open so only the
			// missed-heartbeat path can declare this member dead.
			close(m.hbStop)
			m.killed = true
			return nil
		}
		if err := sendJSON(m.conn, fReport, report); err != nil {
			return fmt.Errorf("train: member %d report iteration %d: %w", m.cfg.Rank, iter, err)
		}

	barrier:
		for {
			t, payload, err := m.conn.Recv(-1)
			if err != nil {
				return fmt.Errorf("train: member %d at barrier %d: %w", m.cfg.Rank, iter, err)
			}
			switch t {
			case fProceed:
				var p proceedMsg
				if err := decode(t, payload, &p); err != nil {
					return err
				}
				step := p.Iter + 1
				if w.CkptEvery > 0 && step%w.CkptEvery == 0 {
					if err := m.checkpoint(ctx, step); err != nil {
						return err
					}
				}
				iter = p.Iter + 1
				break barrier
			case fListSteps:
				var ls listStepsMsg
				if err := decode(t, payload, &ls); err != nil {
					return err
				}
				if err := m.replySteps(ctx, ls); err != nil {
					return err
				}
			case fRestore:
				var r restoreMsg
				if err := decode(t, payload, &r); err != nil {
					return err
				}
				if err := m.restore(ctx, r); err != nil {
					return err
				}
				if err := sendJSON(m.conn, fRestored, restoredMsg{Rank: m.cfg.Rank}); err != nil {
					return err
				}
			case fResume:
				var r resumeMsg
				if err := decode(t, payload, &r); err != nil {
					return err
				}
				iter = r.Iter
				break barrier
			default:
				return fmt.Errorf("train: member %d unexpected frame %#x at barrier %d", m.cfg.Rank, t, iter)
			}
		}
	}

	// Run complete: await the coordinator's done, depart cleanly.
	t, _, err := m.conn.Recv(-1)
	if err != nil {
		return fmt.Errorf("train: member %d await done: %w", m.cfg.Rank, err)
	}
	if t != fDone {
		return fmt.Errorf("train: member %d expected done, got frame %#x", m.cfg.Rank, t)
	}
	// Best-effort departure: the run already completed, and a coordinator
	// that stopped waiting for byes has closed its side.
	_ = sendJSON(m.conn, fBye, byeMsg{Rank: m.cfg.Rank})
	return nil
}

// checkpoint commits every owned rank's state at step under its
// rank-qualified prefix on the shared tier — the member-side half of
// the coordinated checkpoint Node.Checkpoint performs in-process.
func (m *Member) checkpoint(ctx context.Context, step int) error {
	for _, rank := range m.ownedRanks() {
		w := checkpoint.NewWriter(m.cfg.Ckpt, rankPrefix(m.cfg.Prefix, rank))
		_, err := m.engines[rank].Checkpoint(ctx, step, w)
		w.Close()
		if err != nil {
			return fmt.Errorf("train: member %d checkpoint rank %d step %d: %w", m.cfg.Rank, rank, step, err)
		}
	}
	return nil
}

// replySteps reads each requested rank's content-valid checkpoint steps
// from the shared tier. The coordinator never touches storage itself —
// members are its eyes on the checkpoint tier.
func (m *Member) replySteps(ctx context.Context, ls listStepsMsg) error {
	reply := stepsMsg{}
	for _, rank := range ls.Ranks {
		r := checkpoint.NewReader(m.cfg.Ckpt, rankPrefix(m.cfg.Prefix, rank))
		steps, err := r.ValidSteps(ctx)
		if err != nil {
			return fmt.Errorf("train: member %d list steps rank %d: %w", m.cfg.Rank, rank, err)
		}
		reply.Sets = append(reply.Sets, rankSteps{Rank: rank, Steps: steps})
	}
	return sendJSON(m.conn, fSteps, reply)
}

// restore rolls every rank this member owns under the new assignment
// back to msg.Step: existing engines restore in place, newly adopted
// ranks get a fresh engine built from this member's tiers and restored
// from the dead rank's manifest (engine.NewRestored — the re-shard
// entry point).
func (m *Member) restore(ctx context.Context, msg restoreMsg) error {
	for _, a := range msg.Owners {
		if a.Owner != m.cfg.Rank {
			continue
		}
		r := checkpoint.NewReader(m.cfg.Ckpt, rankPrefix(m.cfg.Prefix, a.Rank))
		man, err := r.ReadManifest(ctx, msg.Step)
		if err != nil {
			return fmt.Errorf("train: member %d restore rank %d: %w", m.cfg.Rank, a.Rank, err)
		}
		if e, ok := m.engines[a.Rank]; ok {
			if err := e.Restore(ctx, r, man); err != nil {
				return fmt.Errorf("train: member %d restore rank %d step %d: %w", m.cfg.Rank, a.Rank, msg.Step, err)
			}
			// Rollback rewinds the loss scaler too; rebase the overflow
			// delta so the re-run's flags match the original run's.
			m.lastSkipped[a.Rank] = e.SkippedSteps()
			continue
		}
		ec, err := m.cfg.EngineFor(a.Rank)
		if err != nil {
			return fmt.Errorf("train: member %d adopt rank %d config: %w", m.cfg.Rank, a.Rank, err)
		}
		e, err := engine.NewRestored(ctx, ec, r, man)
		if err != nil {
			return fmt.Errorf("train: member %d adopt rank %d: %w", m.cfg.Rank, a.Rank, err)
		}
		m.engines[a.Rank] = e
		// The adopted rank's scaler history restarts from the manifest;
		// overflow deltas restart with it.
		m.lastSkipped[a.Rank] = e.SkippedSteps()
	}
	return nil
}
