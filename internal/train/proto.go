// Elastic wire protocol: the message vocabulary coordinator and members
// exchange over internal/wire framed connections. Payloads are JSON —
// the control plane moves flags, digests, and step lists, never tensor
// data, so the encoding favors debuggability over density.
//
// The conversation, in order:
//
//	member               coordinator
//	hello{rank}    →
//	               ←     welcome{iter, iters, ckptEvery, hb config}
//	(per iteration)
//	report{iter,…} →
//	               ←     proceed{iter, overflow}
//	(heartbeats flow continuously on their own cadence)
//
//	(recovery, after a member misses heartbeats)
//	               ←     liststeps{ranks}
//	steps{sets}    →
//	               ←     restore{step, owners}
//	restored{id}   →
//	               ←     resume{iter}
//
//	(shutdown)
//	               ←     done
//	bye{rank}      →
package train

import (
	"encoding/json"
	"fmt"

	"github.com/datastates/mlpoffload/internal/engine"
	"github.com/datastates/mlpoffload/internal/wire"
)

// Frame types of the elastic protocol.
const (
	fHello     byte = 0x01 // member → coordinator: join with primary rank
	fWelcome   byte = 0x02 // coordinator → member: run parameters, start
	fHeartbeat byte = 0x03 // member → coordinator: liveness, empty payload
	fReport    byte = 0x04 // member → coordinator: iteration barrier report
	fProceed   byte = 0x05 // coordinator → member: barrier release
	fListSteps byte = 0x06 // coordinator → member: request checkpoint step sets
	fSteps     byte = 0x07 // member → coordinator: per-rank valid steps
	fRestore   byte = 0x08 // coordinator → member: roll back to step, ownership map
	fRestored  byte = 0x09 // member → coordinator: restore complete
	fResume    byte = 0x0A // coordinator → member: continue from iteration
	fDone      byte = 0x0B // coordinator → member: training complete
	fBye       byte = 0x0C // member → coordinator: clean departure
)

// helloMsg announces a joining member by its primary rank (the member's
// stable identity for liveness and ownership).
type helloMsg struct {
	Rank int `json:"rank"`
}

// welcomeMsg carries the run parameters every member trains under.
// Durations are nanoseconds (time.Duration's representation).
type welcomeMsg struct {
	Iter      int   `json:"iter"`  // first iteration to execute
	Iters     int   `json:"iters"` // total iterations in the run
	CkptEvery int   `json:"ckptEvery"`
	HBEvery   int64 `json:"hbEvery"`   // heartbeat send cadence, ns
	HBTimeout int64 `json:"hbTimeout"` // missed-heartbeat death threshold, ns
}

// rankReport is one rank's barrier state: the FNV-1a digest of its FP16
// working parameters and whether its update overflowed (loss-scaling
// skip) this iteration.
type rankReport struct {
	Rank     int    `json:"rank"`
	Digest   uint64 `json:"digest"`
	Overflow bool   `json:"overflow"`
}

// reportMsg is a member's iteration-barrier report covering every rank
// it owns (its own, plus any adopted after recoveries).
type reportMsg struct {
	Iter  int          `json:"iter"`
	Ranks []rankReport `json:"ranks"`
}

// proceedMsg releases the barrier for iter. Overflow aggregates the
// flag across all ranks — the global "this step was skipped" signal of
// data-parallel loss scaling.
type proceedMsg struct {
	Iter     int  `json:"iter"`
	Overflow bool `json:"overflow"`
}

// listStepsMsg asks a member to read, from the shared checkpoint tier,
// the content-valid checkpoint steps of each listed rank.
type listStepsMsg struct {
	Ranks []int `json:"ranks"`
}

// rankSteps is one rank's valid checkpoint steps as one member sees
// them on the shared tier.
type rankSteps struct {
	Rank  int   `json:"rank"`
	Steps []int `json:"steps"`
}

// stepsMsg answers listStepsMsg.
type stepsMsg struct {
	Sets []rankSteps `json:"sets"`
}

// assignment maps one rank to the member that owns (trains) it.
type assignment struct {
	Rank  int `json:"rank"`
	Owner int `json:"owner"`
}

// restoreMsg orders a rollback: every member restores each rank it owns
// under the new assignment from that rank's step-Step manifest —
// adopting dead ranks' shards where Owner changed.
type restoreMsg struct {
	Step   int          `json:"step"`
	Owners []assignment `json:"owners"`
}

// restoredMsg acknowledges a completed restoreMsg.
type restoredMsg struct {
	Rank int `json:"rank"`
}

// resumeMsg restarts training at Iter after a recovery.
type resumeMsg struct {
	Iter int `json:"iter"`
}

// byeMsg is a clean departure.
type byeMsg struct {
	Rank int `json:"rank"`
}

// sendJSON marshals msg and sends it as one frame of type t.
func sendJSON(c *wire.Conn, t byte, msg any) error {
	buf, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("train: encode frame %#x: %w", t, err)
	}
	return c.Send(t, buf)
}

// decode unmarshals a frame payload, naming the frame type on failure.
func decode(t byte, payload []byte, into any) error {
	if err := json.Unmarshal(payload, into); err != nil {
		return fmt.Errorf("train: decode frame %#x: %w", t, err)
	}
	return nil
}

// paramsDigest hashes an engine's FP16 working parameters (FNV-1a 64).
// At an iteration barrier this is a complete fingerprint of the shard's
// visible training state: two runs agree on every digest iff their
// parameter trajectories are bit-identical.
func paramsDigest(e *engine.Engine) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range e.Params16() {
		v := uint16(b)
		h ^= uint64(v & 0xFF)
		h *= prime
		h ^= uint64(v >> 8)
		h *= prime
	}
	return h
}
