// Package ratelimit provides byte-granularity bandwidth throttling used to
// emulate storage-tier bandwidth (NVMe, PFS) on hardware that does not have
// it, plus a contention model that reproduces the behaviour the paper
// measures in Figure 4: aggregate throughput of a shared device stays
// roughly flat as concurrent processes are added, while per-process latency
// degrades super-linearly.
package ratelimit

import (
	"context"
	"errors"
	"sync"
	"time"

	clockpkg "github.com/datastates/mlpoffload/internal/clock"
)

// ErrBurstExceeded is returned when a single request exceeds the burst
// capacity of a limiter and therefore can never be satisfied.
var ErrBurstExceeded = errors.New("ratelimit: request exceeds burst capacity")

// Clock is the engine-wide time source (see internal/clock): the limiter
// is driven by a virtual clock in tests and by the wall clock in
// production.
type Clock = clockpkg.Clock

// WallClock returns a Clock backed by the real time package.
func WallClock() Clock { return clockpkg.Wall() }

// Limiter is a token-bucket rate limiter measured in bytes per second.
// It is safe for concurrent use. A zero-rate limiter blocks forever and is
// rejected by NewLimiter.
type Limiter struct {
	mu       sync.Mutex
	rate     float64 // bytes per second
	burst    float64 // bucket capacity in bytes
	tokens   float64 // current tokens
	last     time.Time
	clock    Clock
	reserved time.Time // time through which tokens have been promised
}

// NewLimiter creates a limiter emitting rate bytes/second with the given
// burst (bucket size) in bytes. If burst <= 0 it defaults to one second's
// worth of tokens. clock may be nil for the wall clock.
func NewLimiter(rate float64, burst float64, clock Clock) *Limiter {
	if rate <= 0 {
		panic("ratelimit: rate must be positive")
	}
	if burst <= 0 {
		burst = rate
	}
	clock = clockpkg.Or(clock)
	now := clock.Now()
	return &Limiter{
		rate:     rate,
		burst:    burst,
		tokens:   burst,
		last:     now,
		clock:    clock,
		reserved: now,
	}
}

// Rate returns the configured rate in bytes per second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// SetRate changes the emission rate, preserving accumulated tokens.
func (l *Limiter) SetRate(rate float64) {
	if rate <= 0 {
		panic("ratelimit: rate must be positive")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advance(l.clock.Now())
	l.rate = rate
}

// advance refreshes the token count to time now. Caller holds mu.
func (l *Limiter) advance(now time.Time) {
	if now.After(l.last) {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
}

// reserveN reserves n bytes and returns the duration the caller must wait
// before the reservation is usable.
func (l *Limiter) reserveN(n int64) (time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if float64(n) > l.burst {
		return 0, ErrBurstExceeded
	}
	now := l.clock.Now()
	l.advance(now)
	l.tokens -= float64(n)
	if l.tokens >= 0 {
		return 0, nil
	}
	wait := time.Duration(-l.tokens / l.rate * float64(time.Second))
	return wait, nil
}

// WaitN blocks until n bytes worth of tokens are available or ctx is done.
// Requests larger than the burst are satisfied by splitting internally, so
// arbitrarily large transfers work (their duration is n/rate as expected).
func (l *Limiter) WaitN(ctx context.Context, n int64) error {
	for n > 0 {
		chunk := n
		l.mu.Lock()
		maxChunk := int64(l.burst)
		l.mu.Unlock()
		if chunk > maxChunk {
			chunk = maxChunk
		}
		wait, err := l.reserveN(chunk)
		if err != nil {
			return err
		}
		if wait > 0 {
			if err := sleepCtx(ctx, l.clock, wait); err != nil {
				return err
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

func sleepCtx(ctx context.Context, clock Clock, d time.Duration) error {
	if !clockpkg.IsWall(clock) {
		// Virtual clocks cannot be interrupted by a context deadline in a
		// meaningful way; check cancellation before and after.
		if err := ctx.Err(); err != nil {
			return err
		}
		clock.Sleep(d)
		return ctx.Err()
	}
	//mlpvet:allow clockcheck wall-clock branch: IsWall guarded above, a real timer is the only way to race ctx.Done
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Gate models device-level contention. The paper observes (Fig. 4) that a
// shared NVMe's aggregate throughput stays roughly constant as concurrent
// client processes increase, but per-process latency grows worse than
// linearly because of interference inside the storage subsystem. Gate
// tracks the number of concurrent streams and exposes an efficiency factor
// eff(n) in (0, 1]: with n concurrent streams the device delivers
// aggregate bandwidth B*eff(n), i.e. each fair-share stream sees
// B*eff(n)/n.
type Gate struct {
	mu     sync.Mutex
	active int
	curve  EfficiencyCurve
}

// EfficiencyCurve maps the number of concurrent streams to aggregate
// efficiency in (0,1]. Implementations must be monotonically non-increasing
// and return 1 for n <= 1.
type EfficiencyCurve func(n int) float64

// InterferenceCurve returns the curve eff(n) = 1/(1+alpha*(n-1)): linear
// growth of interference overhead per added stream. alpha=0 is an ideal
// device; alpha≈0.2 reproduces the ~40% aggregate loss at 4 writers the
// paper reports for its NVMe (3.2 GB/s effective vs 5.3 GB/s peak).
func InterferenceCurve(alpha float64) EfficiencyCurve {
	return func(n int) float64 {
		if n <= 1 {
			return 1
		}
		return 1 / (1 + alpha*float64(n-1))
	}
}

// FlatCurve returns an ideal device: eff(n) = 1.
func FlatCurve() EfficiencyCurve { return func(int) float64 { return 1 } }

// NewGate creates a contention gate with the given efficiency curve (nil
// means ideal).
func NewGate(curve EfficiencyCurve) *Gate {
	if curve == nil {
		curve = FlatCurve()
	}
	return &Gate{curve: curve}
}

// Enter registers a stream and returns the per-stream bandwidth share of a
// device with peak bandwidth, plus a release function. The share is the
// fair share at entry time; callers performing long transfers should
// re-query via Share if they want dynamic adaptation.
func (g *Gate) Enter(peak float64) (share float64, release func()) {
	g.mu.Lock()
	g.active++
	n := g.active
	g.mu.Unlock()
	share = peak * g.curve(n) / float64(n)
	var once sync.Once
	release = func() {
		once.Do(func() {
			g.mu.Lock()
			g.active--
			g.mu.Unlock()
		})
	}
	return share, release
}

// Share returns the current fair-share bandwidth for one stream of a device
// with peak bandwidth, assuming the caller is already registered.
func (g *Gate) Share(peak float64) float64 {
	g.mu.Lock()
	n := g.active
	g.mu.Unlock()
	if n < 1 {
		n = 1
	}
	return peak * g.curve(n) / float64(n)
}

// Active returns the number of registered streams.
func (g *Gate) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active
}
