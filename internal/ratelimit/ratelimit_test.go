package ratelimit

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/datastates/mlpoffload/internal/clock"
)

// newFakeClock returns a self-advancing virtual clock: the limiter's
// sleeps advance time instantly, so pacing assertions are exact with no
// real waiting.
func newFakeClock() *clock.VirtualClock {
	return clock.NewVirtualAuto()
}

func TestLimiterImmediateWithinBurst(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1000, 500, clk)
	start := clk.Now()
	if err := l.WaitN(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(start); got != 0 {
		t.Errorf("burst-sized request should not wait, waited %v", got)
	}
}

func TestLimiterThrottlesAtRate(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1000, 1000, clk) // 1000 B/s
	ctx := context.Background()
	start := clk.Now()
	// Drain the burst then ask for 2000 more: total wait should be ~2s.
	if err := l.WaitN(ctx, 1000); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitN(ctx, 2000); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(start).Seconds()
	if math.Abs(elapsed-2.0) > 0.01 {
		t.Errorf("elapsed = %.3fs, want ~2s", elapsed)
	}
}

func TestLimiterLargeTransferSplit(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(1e6, 1e4, clk) // 1 MB/s, 10 KB burst
	start := clk.Now()
	if err := l.WaitN(context.Background(), 5e6); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(start).Seconds()
	// 5 MB at 1 MB/s should take ~5s minus the initial burst credit.
	if elapsed < 4.9 || elapsed > 5.1 {
		t.Errorf("5MB at 1MB/s took %.3fs, want ~5s", elapsed)
	}
}

func TestLimiterContextCancel(t *testing.T) {
	l := NewLimiter(10, 10, nil) // 10 B/s wall clock: a 100B wait would take ~10s
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := l.WaitN(ctx, 100)
	if err == nil {
		t.Fatal("expected context error")
	}
}

func TestLimiterSetRate(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(100, 100, clk)
	if err := l.WaitN(context.Background(), 100); err != nil { // drain burst
		t.Fatal(err)
	}
	l.SetRate(1000)
	if got := l.Rate(); got != 1000 {
		t.Fatalf("Rate() = %v", got)
	}
	start := clk.Now()
	if err := l.WaitN(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(start).Seconds()
	if math.Abs(elapsed-1.0) > 0.01 {
		t.Errorf("after SetRate(1000), 1000B took %.3fs, want ~1s", elapsed)
	}
}

func TestLimiterRejectsNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for rate<=0")
		}
	}()
	NewLimiter(0, 10, nil)
}

func TestPropertyThroughputMatchesRate(t *testing.T) {
	// Property: for any rate and size, virtual elapsed time ≈ size/rate
	// once the burst is drained.
	f := func(rateSeed, sizeSeed uint16) bool {
		rate := float64(rateSeed%5000) + 1
		size := int64(sizeSeed)%100000 + 1
		clk := newFakeClock()
		l := NewLimiter(rate, rate/10+1, clk)
		// Drain initial tokens.
		if err := l.WaitN(context.Background(), int64(rate/10+1)); err != nil {
			return false
		}
		start := clk.Now()
		if err := l.WaitN(context.Background(), size); err != nil {
			return false
		}
		elapsed := clk.Now().Sub(start).Seconds()
		want := float64(size) / rate
		return math.Abs(elapsed-want) <= want*0.02+0.002
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGateFairShare(t *testing.T) {
	g := NewGate(FlatCurve())
	s1, r1 := g.Enter(100)
	if s1 != 100 {
		t.Errorf("single stream share = %v, want 100", s1)
	}
	s2, r2 := g.Enter(100)
	if s2 != 50 {
		t.Errorf("second stream share = %v, want 50", s2)
	}
	if got := g.Share(100); got != 50 {
		t.Errorf("Share with 2 active = %v, want 50", got)
	}
	r1()
	r1() // release is idempotent
	if got := g.Share(100); got != 100 {
		t.Errorf("Share after release = %v, want 100", got)
	}
	r2()
	if g.Active() != 0 {
		t.Errorf("Active = %d, want 0", g.Active())
	}
}

func TestInterferenceCurve(t *testing.T) {
	eff := InterferenceCurve(0.2)
	if eff(1) != 1 {
		t.Errorf("eff(1) = %v", eff(1))
	}
	// At 4 streams: 1/(1+0.6) = 0.625 — aggregate drops to ~62%,
	// matching the paper's 3.2-3.4 GB/s effective vs 5.3 GB/s peak.
	if got := eff(4); math.Abs(got-0.625) > 1e-9 {
		t.Errorf("eff(4) = %v, want 0.625", got)
	}
	// Monotone non-increasing.
	prev := 1.0
	for n := 1; n <= 64; n++ {
		e := eff(n)
		if e > prev+1e-12 {
			t.Fatalf("efficiency increased at n=%d", n)
		}
		prev = e
	}
}

func TestGateAggregateConstantLatencyGrows(t *testing.T) {
	// Reproduce the Fig. 4 shape: aggregate ~flat-ish, per-proc latency
	// grows faster than 1/n would predict.
	g := NewGate(InterferenceCurve(0.2))
	peak := 5.3 // GB/s
	perProc := make([]float64, 0, 3)
	for _, n := range []int{1, 2, 4} {
		rels := make([]func(), 0, n)
		var share float64
		for i := 0; i < n; i++ {
			s, r := g.Enter(peak)
			share = s
			rels = append(rels, r)
		}
		perProc = append(perProc, share)
		agg := share * float64(n)
		if agg > peak+1e-9 {
			t.Errorf("aggregate %v exceeds peak %v at n=%d", agg, peak, n)
		}
		for _, r := range rels {
			r()
		}
	}
	// Per-process latency (1/share) at 4 procs must be more than 4x the
	// single-process latency (interference adds to fair-share slowdown).
	lat1 := 1 / perProc[0]
	lat4 := 1 / perProc[2]
	if lat4 <= 4*lat1 {
		t.Errorf("per-proc latency at 4 procs (%v) should exceed 4x single (%v)", lat4, 4*lat1)
	}
}

func BenchmarkLimiterWaitN(b *testing.B) {
	clk := newFakeClock()
	l := NewLimiter(1e12, 1e12, clk)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.WaitN(ctx, 4096)
	}
}
