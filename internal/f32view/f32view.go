// Package f32view provides zero-copy views between []byte and []float32
// for the little-endian serialized layouts the offloading engine moves
// between host memory and storage tiers.
//
// The engine's premise is that the CPU-side update phase must keep pace
// with tier bandwidth; with compression shrinking wire time, the next
// bottleneck is CPU memory traffic — every scalar serialize/deserialize
// pass over a multi-megabyte subgroup is a full extra sweep of the
// buffer. On a little-endian machine the serialized FP32 payload *is*
// the in-memory float representation, so a correctly aligned []byte can
// be reinterpreted as []float32 in place (via unsafe.Slice) and the
// update kernel can run directly over the fetched bytes.
//
// The zero-copy view is a capability, not an assumption: Viewable
// reports whether a given buffer supports it (4-byte alignment, 4-byte
// multiple length, native little-endian), and the Decode/Encode bulk
// kernels — 8-wide unrolled scalar conversions — are the portable
// fallback that keeps unaligned buffers and big-endian hosts correct at
// full copy speed. Callers therefore branch once per buffer, never per
// element.
//
// Safety: a view aliases the byte buffer. Callers own the aliasing
// discipline — the buffer must stay live and unrecycled for as long as
// the view is reachable, and concurrent writers must be excluded the
// same way they would be for the byte slice itself.
package f32view

import (
	"math"
	"unsafe"
)

// nativeLittleEndian reports whether the host stores multi-byte values
// little-endian (amd64, arm64, riscv64, wasm — everything Go commonly
// targets except s390x). Detected once at init from a probe value, so
// the package needs no GOARCH list to stay correct.
var nativeLittleEndian = func() bool {
	probe := uint32(0x01020304)
	return *(*byte)(unsafe.Pointer(&probe)) == 0x04
}()

// NativeLittleEndian reports whether zero-copy views are representation
// compatible with the on-wire (little-endian) layout on this host.
func NativeLittleEndian() bool { return nativeLittleEndian }

// Aligned reports whether b's backing array starts on a 4-byte boundary.
// An empty slice is trivially aligned.
func Aligned(b []byte) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))&3 == 0
}

// AlignOffset returns how many bytes past b's base address the next
// align-byte boundary lies (0 when the base is already aligned). align
// must be a power of two. Empty slices report 0. It exists so address
// arithmetic stays confined to this package: bufpool's aligned size
// class and the O_DIRECT storage path consume the offset without
// touching unsafe themselves.
func AlignOffset(b []byte, align int) int {
	if len(b) == 0 {
		return 0
	}
	mask := uintptr(align) - 1
	addr := uintptr(unsafe.Pointer(&b[0]))
	return int((uintptr(align) - (addr & mask)) & mask)
}

// AlignedTo reports whether b's backing array starts on an align-byte
// boundary (align a power of two). Empty slices are trivially aligned.
func AlignedTo(b []byte, align int) bool { return AlignOffset(b, align) == 0 }

// Viewable reports whether View can reinterpret b in place: native
// little-endian byte order, a length that is a whole number of float32s,
// and a 4-byte-aligned base address.
func Viewable(b []byte) bool {
	return nativeLittleEndian && len(b)&3 == 0 && Aligned(b)
}

// View reinterprets b as a []float32 sharing b's memory. It returns
// ok=false (and a nil slice) when the buffer is not Viewable; callers
// then fall back to the Decode/Encode copying kernels. The returned
// slice aliases b: it is valid exactly as long as b is, and writes
// through either are visible through both.
func View(b []byte) ([]float32, bool) {
	if !Viewable(b) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// Bytes is the inverse view: it reinterprets f as the []byte holding its
// little-endian serialized form. ok=false on a big-endian host ([]float32
// is always 4-aligned, so only byte order can disqualify it).
func Bytes(f []float32) ([]byte, bool) {
	if !nativeLittleEndian {
		return nil, false
	}
	if len(f) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*4), true
}

// Decode converts len(dst) little-endian float32s from src into dst.
// src must hold at least 4*len(dst) bytes. On viewable buffers it is a
// single bulk copy; otherwise an 8-wide unrolled byte-assembling loop.
// Both paths produce bit-identical results.
func Decode(dst []float32, src []byte) {
	n := len(dst)
	_ = src[:4*n] // one bounds check for the whole kernel
	if v, ok := View(src[:4*n]); ok {
		copy(dst, v)
		return
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[4*i : 4*i+32 : 4*i+32]
		d[0] = math.Float32frombits(uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24)
		d[1] = math.Float32frombits(uint32(s[4]) | uint32(s[5])<<8 | uint32(s[6])<<16 | uint32(s[7])<<24)
		d[2] = math.Float32frombits(uint32(s[8]) | uint32(s[9])<<8 | uint32(s[10])<<16 | uint32(s[11])<<24)
		d[3] = math.Float32frombits(uint32(s[12]) | uint32(s[13])<<8 | uint32(s[14])<<16 | uint32(s[15])<<24)
		d[4] = math.Float32frombits(uint32(s[16]) | uint32(s[17])<<8 | uint32(s[18])<<16 | uint32(s[19])<<24)
		d[5] = math.Float32frombits(uint32(s[20]) | uint32(s[21])<<8 | uint32(s[22])<<16 | uint32(s[23])<<24)
		d[6] = math.Float32frombits(uint32(s[24]) | uint32(s[25])<<8 | uint32(s[26])<<16 | uint32(s[27])<<24)
		d[7] = math.Float32frombits(uint32(s[28]) | uint32(s[29])<<8 | uint32(s[30])<<16 | uint32(s[31])<<24)
	}
	for ; i < n; i++ {
		s := src[4*i : 4*i+4 : 4*i+4]
		dst[i] = math.Float32frombits(uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24)
	}
}

// Encode converts len(src) float32s into their little-endian bytes in
// dst. dst must hold at least 4*len(src) bytes. On viewable buffers it
// is a single bulk copy; otherwise an 8-wide unrolled store loop.
func Encode(dst []byte, src []float32) {
	n := len(src)
	_ = dst[:4*n]
	if v, ok := View(dst[:4*n]); ok {
		copy(v, src)
		return
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[4*i : 4*i+32 : 4*i+32]
		put4(d[0:4], math.Float32bits(s[0]))
		put4(d[4:8], math.Float32bits(s[1]))
		put4(d[8:12], math.Float32bits(s[2]))
		put4(d[12:16], math.Float32bits(s[3]))
		put4(d[16:20], math.Float32bits(s[4]))
		put4(d[20:24], math.Float32bits(s[5]))
		put4(d[24:28], math.Float32bits(s[6]))
		put4(d[28:32], math.Float32bits(s[7]))
	}
	for ; i < n; i++ {
		put4(dst[4*i:4*i+4], math.Float32bits(src[i]))
	}
}

func put4(d []byte, u uint32) {
	_ = d[3]
	d[0] = byte(u)
	d[1] = byte(u >> 8)
	d[2] = byte(u >> 16)
	d[3] = byte(u >> 24)
}
