package f32view

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// refEncode/refDecode are the obviously correct scalar references the
// kernels are compared against.
func refEncode(dst []byte, src []float32) {
	for i, f := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(f))
	}
}

func refDecode(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// testValues covers normals, denormals, zeros, infs and NaNs — every
// bit pattern class a bit-identity claim must survive.
func testValues(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		switch i % 7 {
		case 0:
			out[i] = float32(rng.NormFloat64())
		case 1:
			out[i] = math.Float32frombits(rng.Uint32()) // any bit pattern, NaNs included
		case 2:
			out[i] = 0
		case 3:
			out[i] = float32(math.Copysign(0, -1))
		case 4:
			out[i] = float32(math.Inf(1))
		case 5:
			out[i] = math.Float32frombits(1) // smallest denormal
		default:
			out[i] = -65504.0
		}
	}
	return out
}

func TestViewRoundTrip(t *testing.T) {
	if !NativeLittleEndian() {
		t.Skip("big-endian host: zero-copy views disabled by design")
	}
	src := testValues(1031, 1)
	buf := make([]byte, 4*len(src))
	refEncode(buf, src)

	v, ok := View(buf)
	if !ok {
		t.Fatalf("aligned buffer not viewable")
	}
	if len(v) != len(src) {
		t.Fatalf("view len %d, want %d", len(v), len(src))
	}
	for i := range src {
		if math.Float32bits(v[i]) != math.Float32bits(src[i]) {
			t.Fatalf("view[%d] = %x, want %x", i, math.Float32bits(v[i]), math.Float32bits(src[i]))
		}
	}
	// The view aliases: a write through it must land in the bytes.
	v[7] = 42
	if got := math.Float32frombits(binary.LittleEndian.Uint32(buf[28:])); got != 42 {
		t.Fatalf("write through view not visible in bytes: %v", got)
	}
	// And Bytes is the inverse.
	b, ok := Bytes(v)
	if !ok {
		t.Fatalf("Bytes not available on little-endian host")
	}
	if &b[0] != &buf[0] || len(b) != len(buf) {
		t.Fatalf("Bytes did not alias the original buffer")
	}
}

func TestViewableRejectsMisalignment(t *testing.T) {
	raw := make([]byte, 4*16+1)
	aligned := raw
	if !Aligned(aligned) {
		aligned = raw[1:] // whichever of the two is aligned
	}
	if !NativeLittleEndian() {
		if Viewable(aligned[:64]) {
			t.Fatal("big-endian host must never report Viewable")
		}
		return
	}
	if !Viewable(aligned[:64]) {
		t.Fatal("aligned 64-byte buffer should be viewable")
	}
	unaligned := aligned[1 : 1+60] // base off by one byte, len%4==0
	if Aligned(unaligned) {
		t.Fatal("test construction broken: expected unaligned slice")
	}
	if Viewable(unaligned) {
		t.Fatal("unaligned buffer must not be viewable")
	}
	if _, ok := View(unaligned); ok {
		t.Fatal("View must refuse unaligned buffers")
	}
	if Viewable(aligned[:63]) {
		t.Fatal("length not a multiple of 4 must not be viewable")
	}
}

func TestViewEmpty(t *testing.T) {
	if v, ok := View(nil); !ok || v != nil {
		if NativeLittleEndian() {
			t.Fatalf("empty view: got %v, %v", v, ok)
		}
	}
	if b, ok := Bytes(nil); ok && b != nil {
		t.Fatalf("empty bytes: got %v", b)
	}
}

// TestDecodeEncodeParity checks the bulk kernels against the scalar
// reference on aligned AND deliberately misaligned buffers (the
// misaligned case forces the 8-wide unrolled fallback on little-endian
// hosts, and is the only path on big-endian ones), across lengths that
// exercise the unroll remainder.
func TestDecodeEncodeParity(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 1000, 1031} {
		src := testValues(n, int64(n)+2)
		want := make([]byte, 4*n)
		refEncode(want, src)

		for _, off := range []int{0, 1, 2, 3} {
			raw := make([]byte, 4*n+8)
			base := raw
			if !Aligned(base) {
				base = raw[1:]
			}
			buf := base[off : off+4*n]

			Encode(buf, src)
			if !bytes.Equal(buf, want) {
				t.Fatalf("n=%d off=%d: Encode mismatch", n, off)
			}

			got := make([]float32, n)
			Decode(got, buf)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
					t.Fatalf("n=%d off=%d: Decode[%d] = %x, want %x",
						n, off, i, math.Float32bits(got[i]), math.Float32bits(src[i]))
				}
			}
		}
	}
}

func TestDecodeShortSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Decode over a short source must panic, not read out of bounds")
		}
	}()
	dst := make([]float32, 4)
	Decode(dst, make([]byte, 15))
}

func TestViewAliasBounds(t *testing.T) {
	if !NativeLittleEndian() {
		t.Skip("views disabled on big-endian hosts")
	}
	buf := make([]byte, 64)
	v, ok := View(buf)
	if !ok {
		t.Skip("allocator returned an unaligned buffer")
	}
	lo := uintptr(unsafe.Pointer(&buf[0]))
	hi := lo + uintptr(len(buf))
	vlo := uintptr(unsafe.Pointer(&v[0]))
	vhi := vlo + uintptr(len(v))*4
	if vlo < lo || vhi > hi {
		t.Fatalf("view [%x,%x) escapes buffer [%x,%x)", vlo, vhi, lo, hi)
	}
}

func BenchmarkDecode(b *testing.B) {
	const n = 1 << 20
	src := make([]byte, 4*n)
	dst := make([]float32, n)
	b.SetBytes(4 * n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(dst, src)
	}
}

func BenchmarkDecodeUnaligned(b *testing.B) {
	const n = 1 << 20
	raw := make([]byte, 4*n+8)
	src := raw[:4*n]
	if Aligned(src) {
		src = raw[1 : 1+4*n]
	}
	dst := make([]float32, n)
	b.SetBytes(4 * n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(dst, src)
	}
}

func BenchmarkEncode(b *testing.B) {
	const n = 1 << 20
	src := make([]float32, n)
	dst := make([]byte, 4*n)
	b.SetBytes(4 * n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(dst, src)
	}
}
