// Package data provides the training-data substrate of the paper's
// methodology (§4.1): the paper tokenizes a subset of the OSCAR-en corpus
// with the LLaMA2 tokenizer into fixed-length sequences (2048 tokens,
// micro-batch 1). Neither the corpus nor the tokenizer is available
// offline, so this package substitutes a deterministic synthetic corpus
// with OSCAR-like statistics (Zipfian token frequencies, document
// boundaries) and a byte-pair-free greedy vocabulary tokenizer — enough to
// exercise the same data path: tokenize → pack into sequences → sample
// micro-batches.
package data

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tokenizer maps text to token IDs with a fixed vocabulary of words and
// single bytes (greedy longest-match, lowercased), vaguely like a unigram
// LM tokenizer. Token 0 is reserved for <unk>/padding, token 1 for <doc>.
type Tokenizer struct {
	vocab map[string]int
	words []string
}

// Special token IDs.
const (
	TokUnk = 0
	TokDoc = 1
)

// NewTokenizer builds a tokenizer whose vocabulary is the given word list
// plus all single ASCII letters; IDs are assigned in order after the
// specials.
func NewTokenizer(words []string) *Tokenizer {
	t := &Tokenizer{vocab: make(map[string]int)}
	add := func(w string) {
		if _, ok := t.vocab[w]; !ok {
			t.vocab[w] = len(t.words) + 2 // after specials
			t.words = append(t.words, w)
		}
	}
	for _, w := range words {
		add(strings.ToLower(w))
	}
	for c := 'a'; c <= 'z'; c++ {
		add(string(c))
	}
	return t
}

// VocabSize returns the number of token IDs (including specials).
func (t *Tokenizer) VocabSize() int { return len(t.words) + 2 }

// Encode tokenizes text: words found in the vocabulary become their ID,
// unknown words decompose into letter tokens, anything else becomes <unk>.
func (t *Tokenizer) Encode(text string) []int {
	var out []int
	for _, w := range strings.Fields(strings.ToLower(text)) {
		if id, ok := t.vocab[w]; ok {
			out = append(out, id)
			continue
		}
		matched := false
		for _, r := range w {
			if id, ok := t.vocab[string(r)]; ok {
				out = append(out, id)
				matched = true
			}
		}
		if !matched {
			out = append(out, TokUnk)
		}
	}
	return out
}

// Decode maps IDs back to words (specials render symbolically).
func (t *Tokenizer) Decode(ids []int) string {
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		switch {
		case id == TokUnk:
			parts = append(parts, "<unk>")
		case id == TokDoc:
			parts = append(parts, "<doc>")
		case id-2 >= 0 && id-2 < len(t.words):
			parts = append(parts, t.words[id-2])
		default:
			parts = append(parts, fmt.Sprintf("<bad:%d>", id))
		}
	}
	return strings.Join(parts, " ")
}

// Corpus is a deterministic synthetic token stream with Zipfian token
// frequencies and document boundaries, standing in for tokenized OSCAR-en.
type Corpus struct {
	tokens []int
	seqLen int
}

// SynthesizeCorpus generates n tokens over the given vocabulary size with
// Zipf-distributed IDs (exponent ~1.1, like natural text) and a document
// boundary (TokDoc) roughly every docLen tokens.
func SynthesizeCorpus(n, vocab, docLen, seqLen int, seed int64) (*Corpus, error) {
	if vocab < 4 || n < seqLen || seqLen < 2 {
		return nil, fmt.Errorf("data: degenerate corpus spec n=%d vocab=%d seq=%d", n, vocab, seqLen)
	}
	if docLen < 2 {
		docLen = 64
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(vocab-3))
	toks := make([]int, n)
	for i := range toks {
		if i%docLen == 0 {
			toks[i] = TokDoc
			continue
		}
		toks[i] = int(zipf.Uint64()) + 2 // skip specials
	}
	return &Corpus{tokens: toks, seqLen: seqLen}, nil
}

// FromTokens wraps an existing token stream.
func FromTokens(tokens []int, seqLen int) (*Corpus, error) {
	if len(tokens) < seqLen || seqLen < 2 {
		return nil, fmt.Errorf("data: stream too short (%d) for seqLen %d", len(tokens), seqLen)
	}
	return &Corpus{tokens: tokens, seqLen: seqLen}, nil
}

// Len returns the token count.
func (c *Corpus) Len() int { return len(c.tokens) }

// Sequences returns how many non-overlapping sequences the corpus packs.
func (c *Corpus) Sequences() int { return len(c.tokens) / c.seqLen }

// Sequence returns the i-th packed sequence (no copy).
func (c *Corpus) Sequence(i int) ([]int, error) {
	if i < 0 || i >= c.Sequences() {
		return nil, fmt.Errorf("data: sequence %d out of %d", i, c.Sequences())
	}
	return c.tokens[i*c.seqLen : (i+1)*c.seqLen], nil
}

// Sampler yields micro-batches of sequences in shuffled epoch order,
// deterministic per seed — the per-iteration data feed of the trainer.
type Sampler struct {
	corpus *Corpus
	order  []int
	pos    int
	rng    *rand.Rand
	epoch  int
}

// NewSampler creates a sampler over the corpus.
func NewSampler(c *Corpus, seed int64) *Sampler {
	s := &Sampler{corpus: c, rng: rand.New(rand.NewSource(seed))}
	s.reshuffle()
	return s
}

func (s *Sampler) reshuffle() {
	n := s.corpus.Sequences()
	s.order = s.rng.Perm(n)
	s.pos = 0
}

// Next returns the next micro-batch of sequences, crossing epoch
// boundaries transparently.
func (s *Sampler) Next(microBatch int) [][]int {
	if microBatch < 1 {
		microBatch = 1
	}
	out := make([][]int, 0, microBatch)
	for len(out) < microBatch {
		if s.pos >= len(s.order) {
			s.epoch++
			s.reshuffle()
		}
		seq, _ := s.corpus.Sequence(s.order[s.pos])
		s.pos++
		out = append(out, seq)
	}
	return out
}

// Epoch returns the number of completed passes over the corpus.
func (s *Sampler) Epoch() int { return s.epoch }

// TokenEntropy estimates the empirical unigram entropy of the corpus in
// nats — a sanity statistic: Zipfian text has entropy well below the
// uniform log(V) bound, which is what makes next-token prediction
// learnable.
func (c *Corpus) TokenEntropy() float64 {
	counts := make(map[int]int)
	for _, t := range c.tokens {
		counts[t]++
	}
	n := float64(len(c.tokens))
	var h float64
	for _, cnt := range counts {
		p := float64(cnt) / n
		h -= p * math.Log(p)
	}
	return h
}
