package data

import (
	"math"
	"strings"
	"testing"
)

func TestTokenizerRoundTrip(t *testing.T) {
	tk := NewTokenizer([]string{"the", "gpu", "memory", "wall"})
	ids := tk.Encode("The GPU memory WALL")
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	for _, id := range ids {
		if id == TokUnk {
			t.Fatalf("known word mapped to <unk>: %v", ids)
		}
	}
	if got := tk.Decode(ids); got != "the gpu memory wall" {
		t.Errorf("Decode = %q", got)
	}
}

func TestTokenizerUnknownDecomposesToLetters(t *testing.T) {
	tk := NewTokenizer([]string{"known"})
	ids := tk.Encode("abc")
	if len(ids) != 3 {
		t.Fatalf("letter fallback broken: %v", ids)
	}
	if got := tk.Decode(ids); got != "a b c" {
		t.Errorf("Decode = %q", got)
	}
	// Pure punctuation becomes <unk>.
	ids = tk.Encode("!!!")
	if len(ids) != 1 || ids[0] != TokUnk {
		t.Errorf("punctuation ids = %v", ids)
	}
}

func TestTokenizerVocabSize(t *testing.T) {
	tk := NewTokenizer([]string{"a", "b", "unique"})
	// "a","b" collide with letter tokens added later — vocabulary must
	// not double-count.
	want := 3 + 24 + 2 // words (a,b,unique) + remaining letters + specials
	if got := tk.VocabSize(); got != want {
		t.Errorf("VocabSize = %d, want %d", got, want)
	}
}

func TestSynthesizeCorpus(t *testing.T) {
	c, err := SynthesizeCorpus(10000, 100, 64, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 10000 {
		t.Errorf("len = %d", c.Len())
	}
	if c.Sequences() != 10000/32 {
		t.Errorf("sequences = %d", c.Sequences())
	}
	seq, err := c.Sequence(0)
	if err != nil || len(seq) != 32 {
		t.Fatalf("sequence: %v %v", len(seq), err)
	}
	for _, tok := range c.tokens {
		if tok < 0 || tok >= 100 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
	// Document markers present at the configured cadence.
	if c.tokens[0] != TokDoc || c.tokens[64] != TokDoc {
		t.Error("document boundaries missing")
	}
	if _, err := c.Sequence(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.Sequence(c.Sequences()); err == nil {
		t.Error("overflow index accepted")
	}
}

func TestSynthesizeCorpusValidation(t *testing.T) {
	if _, err := SynthesizeCorpus(10, 2, 8, 32, 1); err == nil {
		t.Error("tiny vocab accepted")
	}
	if _, err := SynthesizeCorpus(10, 100, 8, 32, 1); err == nil {
		t.Error("corpus shorter than one sequence accepted")
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, _ := SynthesizeCorpus(1000, 50, 32, 16, 3)
	b, _ := SynthesizeCorpus(1000, 50, 32, 16, 3)
	for i := range a.tokens {
		if a.tokens[i] != b.tokens[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestZipfianEntropyBelowUniform(t *testing.T) {
	c, _ := SynthesizeCorpus(50000, 256, 64, 32, 11)
	h := c.TokenEntropy()
	uniform := math.Log(256)
	if h >= uniform*0.8 {
		t.Errorf("entropy %.2f too close to uniform %.2f — not Zipfian", h, uniform)
	}
	if h < 0.5 {
		t.Errorf("entropy %.2f degenerate", h)
	}
}

func TestSamplerCoversEpoch(t *testing.T) {
	c, _ := SynthesizeCorpus(320, 50, 16, 32, 5) // 10 sequences
	s := NewSampler(c, 1)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		for _, seq := range s.Next(1) {
			key := ""
			for _, t := range seq[:4] {
				key += string(rune('A' + t%26))
			}
			seen[keyOf(seq)] = seen[keyOf(seq)] + 1
			_ = key
		}
	}
	if s.Epoch() != 0 {
		t.Errorf("epoch = %d before exhaustion", s.Epoch())
	}
	// Each sequence seen exactly once in the epoch.
	for k, n := range seen {
		if n != 1 {
			t.Errorf("sequence %s sampled %d times in one epoch", k, n)
		}
	}
	// Crossing the boundary reshuffles and continues.
	s.Next(5)
	if s.Epoch() != 1 {
		t.Errorf("epoch = %d after crossing", s.Epoch())
	}
}

func keyOf(seq []int) string {
	var b strings.Builder
	for _, t := range seq[:8] {
		b.WriteString(string(rune('a' + t%26)))
	}
	return b.String()
}

func TestSamplerMicroBatch(t *testing.T) {
	c, _ := SynthesizeCorpus(640, 50, 16, 32, 5)
	s := NewSampler(c, 2)
	batch := s.Next(4)
	if len(batch) != 4 {
		t.Fatalf("batch = %d", len(batch))
	}
	if got := s.Next(0); len(got) != 1 {
		t.Errorf("Next(0) should clamp to 1, got %d", len(got))
	}
}

func TestFromTokens(t *testing.T) {
	c, err := FromTokens([]int{1, 2, 3, 4, 5, 6}, 3)
	if err != nil || c.Sequences() != 2 {
		t.Fatalf("FromTokens: %v %v", c, err)
	}
	if _, err := FromTokens([]int{1}, 3); err == nil {
		t.Error("short stream accepted")
	}
}
